// Ablation (DESIGN.md section 6): plan-selection policies under
// uncertainty. Extends the Section-5 analytical setting with a third,
// knee-shaped plan (a hash plan that spills past a memory budget) and
// compares, over the same 0-1% selectivity workload:
//   * classical point estimation (cost at the posterior mean),
//   * least-expected-cost (Chu-Halpern-Gehrke-style [6,7]),
//   * the paper's confidence-threshold policy at several T.
// Expected shape: LEC fixes classical's knee-blindness but still optimizes
// the mean only; the threshold policy is the only one whose variance can
// be dialed down.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/plan_selection_policies.h"
#include "stats_math/binomial_distribution.h"

using namespace robustqo;

namespace {

struct PolicyRun {
  std::string name;
  core::SelectionPolicy policy;
  double threshold;  // only used by the threshold policy
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation", "Plan-selection policies (classical / LEC / threshold)",
      "LEC > classical on nonlinear costs; threshold policy additionally "
      "trades mean for predictability");

  const double kRows = 6.0e6;
  // Cost per selectivity s (seconds), mirroring Section 5 plus a knee plan.
  std::vector<core::CostedPlan> plans;
  plans.push_back(core::LinearPlan("seqscan", 35.0, 3.5e-6 * kRows));
  plans.push_back(core::LinearPlan("ixsect", 5.0, 3.5e-3 * kRows));
  plans.push_back(
      core::KneePlan("hash-spill", 9.0, 1.0e-5 * kRows, 0.004,
                     3.0e-3 * kRows));

  const uint64_t n = 500;  // sample size
  std::vector<double> workload;
  for (int i = 0; i <= 20; ++i) workload.push_back(i * 0.0005);

  const PolicyRun runs[] = {
      {"classical(mean)", core::SelectionPolicy::kClassicalPointEstimate, 0},
      {"least-expected", core::SelectionPolicy::kLeastExpectedCost, 0},
      {"threshold@50%", core::SelectionPolicy::kConfidenceThreshold, 0.50},
      {"threshold@80%", core::SelectionPolicy::kConfidenceThreshold, 0.80},
      {"threshold@95%", core::SelectionPolicy::kConfidenceThreshold, 0.95},
      // threshold < 0 flags the minimax-regret policy below.
      {"minimax-regret", core::SelectionPolicy::kConfidenceThreshold, -1.0},
  };

  std::printf("%-18s %14s %14s  %s\n", "policy", "avg time (s)",
              "std dev (s)", "plan usage over (p,k) mass");
  for (const PolicyRun& run : runs) {
    double mean = 0.0;
    double second = 0.0;
    std::vector<double> usage(plans.size(), 0.0);
    for (double p : workload) {
      math::BinomialDistribution binom(static_cast<int64_t>(n), p);
      for (uint64_t k = 0; k <= n; ++k) {
        const double w = binom.Pmf(static_cast<int64_t>(k));
        if (w < 1e-12) continue;
        stats::SelectivityPosterior posterior(k, n);
        const size_t choice =
            run.threshold < 0.0
                ? core::SelectPlanMinimaxRegret(plans, posterior)
                : core::SelectPlan(plans, posterior, run.policy,
                                   run.threshold);
        const double cost = plans[choice].cost(p);
        mean += w * cost;
        second += w * cost * cost;
        usage[choice] += w;
      }
    }
    const double m = mean / workload.size();
    const double s2 = second / workload.size() - m * m;
    std::string usage_str;
    for (size_t i = 0; i < plans.size(); ++i) {
      usage_str += plans[i].name + " " +
                   std::to_string(static_cast<int>(
                       100.0 * usage[i] / workload.size())) +
                   "%  ";
    }
    std::printf("%-18s %14.3f %14.3f  %s\n", run.name.c_str(), m,
                std::sqrt(std::fmax(0.0, s2)), usage_str.c_str());
  }
  std::printf(
      "\nnote: with purely linear plan costs, classical and LEC coincide "
      "(E[cost] is cost at E[s]); the knee plan is what separates them.\n");
  return 0;
}
