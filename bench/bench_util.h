// Shared helpers for the figure-reproduction benches: consistent headers
// and series printing so every bench emits a self-describing text report.

#ifndef ROBUSTQO_BENCH_BENCH_UTIL_H_
#define ROBUSTQO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace robustqo {
namespace bench {

inline void PrintHeader(const std::string& figure,
                        const std::string& caption,
                        const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

/// Prints a table: first column `x_label` with values `xs`, then one column
/// per named series (all series must have xs.size() entries).
inline void PrintSeries(
    const std::string& x_label, const std::vector<double>& xs,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const char* value_format = "%14.4f") {
  std::printf("%-14s", x_label.c_str());
  for (const auto& [name, values] : series) {
    std::printf("%14s", name.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-14.5f", xs[i]);
    for (const auto& [name, values] : series) {
      std::printf(value_format, values[i]);
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace robustqo

#endif  // ROBUSTQO_BENCH_BENCH_UTIL_H_
