// Figure 10: Experiment 2 — lineitem |x| orders |x| part with a correlated
// two-band selection on part (Section 6.2.2). The free offset collapses the
// part predicate's joint selectivity through the low crossover between the
// indexed-nested-loop plan and the hash plans while both marginals stay at
// 10% (so AVI always answers 1%).

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/database.h"
#include "tpch/tpch_gen.h"
#include "workload/experiment_harness.h"
#include "workload/scenarios.h"

using namespace robustqo;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 10", "Experiment 2: three-table join (TPC-H, correlated part)",
      "same threshold trends as Experiment 1 on a join query; low "
      "crossover between INLJ-based and hash-based plans");

  core::Database db;
  tpch::TpchConfig data_config;
  data_config.scale_factor = 0.02;  // override: argv[1]
  if (argc > 1) data_config.scale_factor = std::atof(argv[1]);
  Status loaded = tpch::LoadTpch(db.catalog(), data_config);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  std::printf("data: TPC-H sf=%.3f (lineitem %llu, orders %llu, part %llu); "
              "x-axis: part-predicate selectivity\n\n",
              data_config.scale_factor,
              static_cast<unsigned long long>(
                  db.catalog()->GetTable("lineitem")->num_rows()),
              static_cast<unsigned long long>(
                  db.catalog()->GetTable("orders")->num_rows()),
              static_cast<unsigned long long>(
                  db.catalog()->GetTable("part")->num_rows()));

  workload::ThreeTableJoinScenario scenario;
  workload::QuerySweepExperiment experiment(
      &db, [&](double p) { return scenario.MakeQuery(p); },
      [&](double p) { return scenario.TrueSelectivity(*db.catalog(), p); });
  workload::SweepConfig config;
  config.params = workload::ThreeTableJoinScenario::DefaultParams();
  config.repetitions = 12;
  config.statistics.sample_size = 500;
  workload::SweepResult result = experiment.Run(config);
  std::printf("%s\n",
              workload::FormatSweepResult(result, "Experiment 2").c_str());

  // Plan-diversity check: the sweep should exercise at least two distinct
  // join strategies across thresholds.
  std::set<std::string> structures;
  for (const auto& [label, agg] : result.overall) {
    for (const auto& [plan, count] : agg.plan_counts) structures.insert(plan);
  }
  std::printf("distinct plan structures chosen: %zu (paper: 3 plan shapes "
              "in play)\n",
              structures.size());
  for (const auto& s : structures) std::printf("  %s\n", s.c_str());
  return 0;
}
