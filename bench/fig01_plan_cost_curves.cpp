// Figure 1: execution cost of two hypothetical plans as a function of query
// selectivity, crossing at ~26%.

#include "bench_util.h"
#include "core/cost_distribution.h"

using namespace robustqo;

int main() {
  bench::PrintHeader(
      "Figure 1", "Execution costs for two hypothetical plans",
      "Plan 1 cheaper below the ~26% crossover, Plan 2 above it");

  // Two linear plans over a 1000-row relation, calibrated to the figure:
  // plan 1 risky (steep), plan 2 stable (flat), crossing at s ~ 26%.
  const double rows = 1000.0;
  core::LinearCostPlan plan1{"Plan 1", 10.0, 80.0 / rows};
  core::LinearCostPlan plan2{"Plan 2", 30.0, 3.0 / rows};

  std::vector<double> sel;
  std::vector<double> c1;
  std::vector<double> c2;
  for (int i = 0; i <= 20; ++i) {
    const double s = i * 0.05;
    sel.push_back(s * 100.0);
    c1.push_back(plan1.CostAtSelectivity(s, rows));
    c2.push_back(plan2.CostAtSelectivity(s, rows));
  }
  bench::PrintSeries("sel(%)", sel, {{"Plan1", c1}, {"Plan2", c2}});

  const double crossover =
      (plan2.fixed - plan1.fixed) / (plan1.per_tuple - plan2.per_tuple) /
      rows;
  std::printf("\ncrossover selectivity: %.1f%% (paper: ~26%%)\n",
              crossover * 100.0);
  return 0;
}
