// Figure 8: when the crossover sits at a high selectivity (~5.2%), the
// threshold barely matters — estimates are relatively accurate there and
// wrong choices are cheap.

#include <cmath>

#include "bench_util.h"
#include "core/analytical_model.h"

using namespace robustqo;

int main() {
  core::TwoPlanAnalyticalModel model(core::HighCrossoverParams());
  bench::PrintHeader(
      "Figure 8", "Crossover point at higher selectivity (analytical)",
      "with pc ~ 5.2%, T=5%/50%/95% curves nearly coincide and track the "
      "per-plan optima");
  std::printf("crossover: %.2f%% (paper: ~5.2%%)\n\n",
              model.CrossoverSelectivity() * 100.0);

  const auto& params = model.params();
  std::vector<double> sel;
  std::vector<double> t5;
  std::vector<double> t50;
  std::vector<double> t95;
  std::vector<double> p1;
  std::vector<double> p2;
  for (int i = 0; i <= 20; ++i) {
    const double p = i * 0.01;  // 0..20%
    sel.push_back(p * 100.0);
    t5.push_back(model.ExpectedExecutionTime(p, 1000, 0.05));
    t50.push_back(model.ExpectedExecutionTime(p, 1000, 0.50));
    t95.push_back(model.ExpectedExecutionTime(p, 1000, 0.95));
    p1.push_back(params.p1.CostAtSelectivity(p, params.table_rows));
    p2.push_back(params.p2.CostAtSelectivity(p, params.table_rows));
  }
  bench::PrintSeries("sel(%)", sel,
                     {{"T=5%", t5},
                      {"T=50%", t50},
                      {"T=95%", t95},
                      {"Plan P1", p1},
                      {"Plan P2", p2}});

  double max_gap = 0.0;
  for (size_t i = 0; i < sel.size(); ++i) {
    max_gap = std::fmax(max_gap, std::fabs(t5[i] - t95[i]));
  }
  std::printf("\nmax gap between T=5%% and T=95%% curves: %.2fs over costs "
              "up to %.0fs — threshold choice is immaterial here "
              "(paper's conclusion)\n",
              max_gap, p1.back());
  return 0;
}
