// Ablation (paper Section 3.3): non-informative vs workload-fitted priors.
// Runs the Experiment-1 sweep twice — once with the Jeffreys prior, once
// with a Beta prior fitted (method of moments) to the workload's own true
// selectivities, simulating execution feedback — and compares the
// mean/std-dev tradeoff at each threshold.

#include <cstdio>

#include "bench_util.h"
#include "core/database.h"
#include "statistics/workload_prior.h"
#include "tpch/tpch_gen.h"
#include "workload/experiment_harness.h"
#include "workload/scenarios.h"

using namespace robustqo;

int main() {
  bench::PrintHeader(
      "Ablation", "Jeffreys prior vs workload-fitted prior (Experiment 1)",
      "the exact prior has little impact once samples carry real "
      "evidence; an informative prior mostly helps at small k");

  core::Database db;
  tpch::TpchConfig data_config;
  data_config.scale_factor = 0.02;
  Status loaded = tpch::LoadTpch(db.catalog(), data_config);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }

  workload::SingleTableScenario scenario;
  const auto params = workload::SingleTableScenario::DefaultParams();

  // "Feedback": the true selectivities of past queries from this template.
  stats::WorkloadPriorBuilder builder;
  for (double offset : params) {
    // Each parameter setting observed a few times with small jitter.
    const double sel = scenario.TrueSelectivity(*db.catalog(), offset);
    for (int i = 0; i < 3; ++i) builder.Observe(sel + 1e-5 * i);
  }
  auto fitted = builder.Fit(5);
  if (fitted.ok()) {
    std::printf("fitted workload prior: Beta(%.3f, %.1f), mean %.4f%%\n\n",
                fitted.value().alpha, fitted.value().beta,
                fitted.value().alpha /
                    (fitted.value().alpha + fitted.value().beta) * 100.0);
  } else {
    std::printf("prior fit failed (%s); comparing Jeffreys to uniform\n\n",
                fitted.status().ToString().c_str());
  }

  for (int use_fitted = 0; use_fitted <= 1; ++use_fitted) {
    if (use_fitted == 1 && fitted.ok()) {
      db.robust_estimator()->mutable_config()->custom_prior = fitted.value();
    } else {
      db.robust_estimator()->mutable_config()->custom_prior.reset();
    }
    workload::QuerySweepExperiment experiment(
        &db, [&](double p) { return scenario.MakeQuery(p); },
        [&](double p) { return scenario.TrueSelectivity(*db.catalog(), p); });
    workload::SweepConfig config;
    config.params = params;
    config.repetitions = 8;
    config.settings = {
        {"T=50%", core::EstimatorKind::kRobustSample, 0.50},
        {"T=80%", core::EstimatorKind::kRobustSample, 0.80},
        {"T=95%", core::EstimatorKind::kRobustSample, 0.95},
    };
    workload::SweepResult result = experiment.Run(config);
    std::printf("-- prior: %s --\n",
                use_fitted && fitted.ok() ? "workload-fitted" : "Jeffreys");
    for (const auto& [label, agg] : result.overall) {
      std::printf("  %-8s mean %7.3fs   std %7.3fs\n", label.c_str(),
                  agg.mean_seconds, agg.std_dev_seconds);
    }
  }
  std::printf("\npaper's Figure-4 conclusion carries over: the prior's "
              "effect is second-order next to sample size and threshold.\n");
  return 0;
}
