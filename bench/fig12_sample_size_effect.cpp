// Figure 12: Experiment 4 — effect of the sample size on the Experiment-1
// scenario at a fixed T = 50%, sweeping n from 50 to 2500 (Section 6.2.4).
// Larger samples improve both mean and variability; the 50-tuple sample is
// the "self-adjusting" exception that always picks the sequential scan.

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/database.h"
#include "tpch/tpch_gen.h"
#include "workload/experiment_harness.h"
#include "workload/scenarios.h"

using namespace robustqo;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 12", "Experiment 4: effect of sample size (T=50%)",
      "bigger samples: lower mean and std-dev; n=50 degenerates to "
      "always-seq-scan (very consistent, suboptimal at low selectivity)");

  core::Database db;
  tpch::TpchConfig data_config;
  data_config.scale_factor = 0.02;  // override: argv[1]
  if (argc > 1) data_config.scale_factor = std::atof(argv[1]);
  Status loaded = tpch::LoadTpch(db.catalog(), data_config);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }

  workload::SingleTableScenario scenario;
  std::printf("%-10s %14s %14s  %s\n", "n", "avg time (s)", "std dev (s)",
              "plans chosen");
  for (size_t n : {50u, 100u, 250u, 500u, 1000u, 2500u}) {
    workload::QuerySweepExperiment experiment(
        &db, [&](double p) { return scenario.MakeQuery(p); },
        [&](double p) { return scenario.TrueSelectivity(*db.catalog(), p); });
    workload::SweepConfig config;
    config.params = workload::SingleTableScenario::DefaultParams();
    config.repetitions = 12;
    config.statistics.sample_size = n;
    config.settings = {
        {"T=50%", core::EstimatorKind::kRobustSample, 0.50}};
    workload::SweepResult result = experiment.Run(config);
    const auto& agg = result.overall.at("T=50%");
    std::string plans;
    for (const auto& [plan, count] : agg.plan_counts) {
      plans += plan + " x" + std::to_string(count) + "; ";
    }
    std::printf("%-10zu %14.3f %14.3f  %s\n", n, agg.mean_seconds,
                agg.std_dev_seconds, plans.c_str());
  }

  // Histogram baseline reference point (sample size independent).
  {
    workload::QuerySweepExperiment experiment(
        &db, [&](double p) { return scenario.MakeQuery(p); },
        [&](double p) { return scenario.TrueSelectivity(*db.catalog(), p); });
    workload::SweepConfig config;
    config.params = workload::SingleTableScenario::DefaultParams();
    config.repetitions = 1;
    config.settings = {
        {"Histograms", core::EstimatorKind::kHistogram, 0.0}};
    workload::SweepResult result = experiment.Run(config);
    const auto& agg = result.overall.at("Histograms");
    std::printf("%-10s %14.3f %14.3f  (baseline)\n", "histograms",
                agg.mean_seconds, agg.std_dev_seconds);
  }
  return 0;
}
