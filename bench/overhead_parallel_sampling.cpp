// The parallel batched sampling engine vs the scalar uncached path it
// replaced. The workload models one optimizer run: P distinct conjuncts,
// each re-costed R times (the DP join enumerator re-costs a conjunct under
// many join-subset/context combinations).
//
//   baseline  per probe: expr::CountSatisfying (per-row tree interpretation
//             with boxed Values) + a fresh inverse-Beta Newton iteration.
//   engine    per probe: probe-count memo -> columnar batch scan on miss
//             (parallelized across predicates via perf::TaskPool) ->
//             inverse-Beta LRU for the quantile.
//
// The two paths must produce bit-identical selectivity estimates (q-error
// delta exactly 0); the bench verifies that before timing and exits
// non-zero on any mismatch or if the single-thread engine speedup falls
// under the contracted 4x. Thread scaling at 1/2/4/8 is reported
// separately — on a single-core host those numbers are honest ~1x.
//
// Usage: overhead_parallel_sampling [--json out.json]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/database.h"
#include "expr/expression.h"
#include "perf/batch_eval.h"
#include "perf/caches.h"
#include "perf/fingerprint.h"
#include "perf/task_pool.h"
#include "statistics/sample.h"
#include "statistics/selectivity_posterior.h"
#include "tpch/tpch_gen.h"
#include "util/stopwatch.h"

using namespace robustqo;

namespace {

constexpr double kThreshold = 0.80;
constexpr int kRepeats = 8;   // re-costings of each conjunct per workload pass
constexpr int kRounds = 5;    // best-of timing rounds

struct Probe {
  const storage::Table* sample_rows;
  std::string source;
  expr::ExprPtr predicate;
  uint64_t fingerprint;
};

std::vector<Probe> MakeWorkload(const stats::StatisticsCatalog* statistics) {
  using namespace expr;
  using storage::Value;
  struct Spec {
    const char* table;
    ExprPtr predicate;
  };
  const std::vector<Spec> specs = {
      {"lineitem", Lt(Col("l_quantity"), LitDouble(10.0))},
      {"lineitem", Between(Col("l_extendedprice"), Value::Double(1000.0),
                           Value::Double(20000.0))},
      {"lineitem", And({Ge(Col("l_discount"), LitDouble(0.02)),
                        Le(Col("l_discount"), LitDouble(0.06))})},
      {"lineitem", Gt(Col("l_shipdate"), LitDate(4000))},
      {"lineitem", And({Lt(Col("l_quantity"), LitDouble(25.0)),
                        Gt(Col("l_extendedprice"), LitDouble(5000.0))})},
      {"lineitem", Or({Lt(Col("l_linenumber"), LitInt(2)),
                       Gt(Col("l_quantity"), LitDouble(45.0))})},
      {"orders", Gt(Col("o_totalprice"), LitDouble(150000.0))},
      {"orders", Between(Col("o_orderdate"), Value::Date(1000),
                         Value::Date(3000))},
      {"orders", StringContains(Col("o_orderpriority"), "URGENT")},
      {"part", Lt(Col("p_size"), LitInt(20))},
      {"part", Gt(Col("p_retailprice"), LitDouble(1200.0))},
      {"part", And({Gt(Col("p_size"), LitInt(10)),
                    Lt(Col("p_retailprice"), LitDouble(1500.0))})},
  };
  std::vector<Probe> probes;
  for (const Spec& spec : specs) {
    const stats::TableSample* sample = statistics->GetSample(spec.table);
    if (sample == nullptr) std::abort();
    probes.push_back({&sample->rows(), std::string("sample:") + spec.table,
                      spec.predicate, perf::FingerprintExpr(*spec.predicate)});
  }
  return probes;
}

// Baseline: every probe interprets the expression tree per sample row and
// runs a fresh Newton inversion — no memo layers anywhere.
std::vector<double> RunBaseline(const std::vector<Probe>& probes) {
  std::vector<double> estimates;
  estimates.reserve(probes.size() * kRepeats);
  for (int r = 0; r < kRepeats; ++r) {
    for (const Probe& probe : probes) {
      const uint64_t k = expr::CountSatisfying(*probe.predicate,
                                               *probe.sample_rows);
      stats::SelectivityPosterior posterior(k, probe.sample_rows->num_rows());
      estimates.push_back(posterior.EstimateAtConfidence(kThreshold));
    }
  }
  return estimates;
}

// Engine: the estimator's three-phase structure. Phase A consults the
// probe memo sequentially, phase B fans the missing batch scans across the
// task pool, phase C inverts via the LRU sequentially in probe order.
std::vector<double> RunEngine(const std::vector<Probe>& probes,
                              perf::TaskPool* pool) {
  perf::ProbeCountCache probe_cache;
  perf::InverseBetaCache beta_cache;
  std::vector<double> estimates;
  estimates.reserve(probes.size() * kRepeats);
  std::vector<size_t> pending;
  std::vector<uint64_t> counts(probes.size());
  for (int r = 0; r < kRepeats; ++r) {
    pending.clear();
    for (size_t i = 0; i < probes.size(); ++i) {
      auto cached = probe_cache.Lookup(probes[i].source,
                                       probes[i].fingerprint);
      if (cached.has_value()) {
        counts[i] = cached->satisfying;
      } else {
        pending.push_back(i);
      }
    }
    pool->ParallelFor(pending.size(), [&](size_t j) {
      const Probe& probe = probes[pending[j]];
      counts[pending[j]] =
          perf::BatchCountSatisfying(*probe.predicate, *probe.sample_rows);
    });
    for (size_t i : pending) {
      probe_cache.Insert(probes[i].source, probes[i].fingerprint,
                         {counts[i], probes[i].sample_rows->num_rows()});
    }
    for (size_t i = 0; i < probes.size(); ++i) {
      stats::SelectivityPosterior posterior(counts[i],
                                            probes[i].sample_rows->num_rows());
      const math::BetaDistribution& d = posterior.distribution();
      estimates.push_back(beta_cache.Value(d.alpha(), d.beta(), kThreshold));
    }
  }
  return estimates;
}

template <typename Fn>
double BestRoundSeconds(Fn&& body) {
  double best = 1e100;
  Stopwatch watch;
  for (int round = 0; round < kRounds; ++round) {
    watch.Restart();
    body();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ConsumeJsonFlag(&argc, argv);

  core::Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.05;
  if (!tpch::LoadTpch(db.catalog(), config).ok()) return 2;
  stats::StatisticsConfig stats_config;
  stats_config.sample_size = 2000;
  db.UpdateStatistics(stats_config);

  const std::vector<Probe> probes = MakeWorkload(db.statistics());
  std::printf("parallel sampling engine: %zu conjuncts x %d re-costings, "
              "%llu-row samples\n",
              probes.size(), kRepeats,
              static_cast<unsigned long long>(probes[0].sample_rows->num_rows()));

  // Correctness first: engine estimates must equal the scalar uncached
  // path bit for bit, at every thread count (q-error delta exactly 0).
  const std::vector<double> reference = RunBaseline(probes);
  double max_abs_delta = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    perf::TaskPool pool(threads);
    const std::vector<double> engine = RunEngine(probes, &pool);
    if (engine.size() != reference.size()) return 3;
    for (size_t i = 0; i < engine.size(); ++i) {
      const double delta = std::abs(engine[i] - reference[i]);
      max_abs_delta = std::max(max_abs_delta, delta);
      if (delta != 0.0) {
        std::printf("FAIL: estimate %zu differs at %u threads: %.17g vs "
                    "%.17g\n",
                    i, threads, engine[i], reference[i]);
        return 3;
      }
    }
  }
  std::printf("estimates: engine == baseline bitwise at 1/2/4/8 threads "
              "(max |delta| = %g, q-error delta 0)\n\n",
              max_abs_delta);

  const double baseline_s =
      BestRoundSeconds([&] { (void)RunBaseline(probes); });
  std::printf("scalar uncached baseline:  %9.4f ms\n", baseline_s * 1e3);

  std::vector<std::pair<unsigned, double>> engine_runs;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    perf::TaskPool pool(threads);
    const double s = BestRoundSeconds([&] { (void)RunEngine(probes, &pool); });
    engine_runs.emplace_back(threads, s);
    std::printf("engine, %u thread%s:        %9.4f ms  (%.1fx vs baseline)\n",
                threads, threads == 1 ? " " : "s", s * 1e3, baseline_s / s);
  }

  const double speedup_1t = baseline_s / engine_runs[0].second;
  std::printf("\nbatching + memoization speedup at 1 thread: %.1fx "
              "(contract: >= 4x)\n",
              speedup_1t);
  std::printf("thread scaling is workload parallelism only; on a "
              "single-core host expect ~1x across thread counts\n");

  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.BeginObject();
    w.Field("bench", "overhead_parallel_sampling");
    w.Field("scale_factor", config.scale_factor);
    w.Field("sample_size", static_cast<uint64_t>(stats_config.sample_size));
    w.Field("conjuncts", static_cast<uint64_t>(probes.size()));
    w.Field("repeats", static_cast<uint64_t>(kRepeats));
    w.Field("confidence_threshold", kThreshold);
    w.Field("baseline_seconds", baseline_s);
    w.Key("engine_seconds_by_threads");
    w.BeginObject();
    for (const auto& [threads, seconds] : engine_runs) {
      w.Field(std::to_string(threads), seconds);
    }
    w.EndObject();
    w.Field("speedup_1thread", speedup_1t);
    w.Field("max_estimate_delta", max_abs_delta);
    w.Field("estimates_bit_identical", true);
    w.EndObject();
    if (!bench::WriteJsonFile(json_path, w.str())) return 2;
  }

  if (speedup_1t < 4.0) {
    std::printf("FAIL: engine speedup %.1fx < 4x\n", speedup_1t);
    return 1;
  }
  std::printf("PASS: engine >= 4x over the scalar uncached path\n");
  return 0;
}
