// Cluster serving overhead: the cost of constructing a coordinator and
// routing every eligible request through the scatter-gather path, versus
// the single-node serving path (nodes=1, which builds no coordinator and
// is byte-identical to the pre-cluster build).
//
// The enforced contract (docs/CLUSTER.md): a traffic run through a
// 1-node-configured service with the coordinator force-enabled stays
// under 5% overhead versus the identical run on the plain single-node
// path — the shadow-operator routing, per-wave partition check and stats
// sync must cost near nothing when there is only one replica. The 4-node
// run is reported as an informational ratio (the simulated network adds
// per-node charges to *simulated* time; wall time measures the real
// gather/merge work).
//
// Usage: overhead_cluster [--json out.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_json.h"
#include "core/database.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "workload/traffic_harness.h"

using namespace robustqo;

namespace {

constexpr int kRounds = 5;
constexpr int kItersPerRound = 3;

// Best-of-rounds wall seconds for `body` run kItersPerRound times.
template <typename Fn>
double BestRoundSeconds(Fn&& body) {
  double best = 1e100;
  Stopwatch watch;
  for (int round = 0; round < kRounds; ++round) {
    watch.Restart();
    for (int i = 0; i < kItersPerRound; ++i) body();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

std::unique_ptr<core::Database> MakeReadingsDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < 20000; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  if (!db->catalog()->AddTable(std::move(table)).ok()) std::abort();
  db->UpdateStatistics();
  return db;
}

workload::TrafficConfig MakeTraffic() {
  workload::TrafficConfig config;
  config.clients = 48;
  config.duration_seconds = 10.0;
  config.think_seconds = 5.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ConsumeJsonFlag(&argc, argv);
  const workload::TrafficConfig traffic = MakeTraffic();

  server::ServerConfig base_config;
  base_config.admission.max_concurrent = 8;
  base_config.admission.max_queue_depth = 128;

  // Baseline: the plain single-node path — nodes=1, coordinator disabled,
  // no cluster code on any request.
  std::unique_ptr<core::Database> base_db = MakeReadingsDatabase();
  server::QueryService base_service(base_db.get(), base_config);
  auto run_base = [&] {
    const workload::TrafficReport report =
        workload::RunTraffic(&base_service, traffic);
    if (report.completed == 0) std::abort();
  };

  // Enforced leg: one node but the coordinator force-enabled, so every
  // eligible request pays partitioning, routing, the shadow operators and
  // the single gather — the pure cluster-machinery cost.
  std::unique_ptr<core::Database> one_db = MakeReadingsDatabase();
  server::ServerConfig one_config = base_config;
  one_config.cluster.enabled = true;
  one_config.cluster.nodes = 1;
  server::QueryService one_service(one_db.get(), one_config);
  auto run_one = [&] {
    const workload::TrafficReport report =
        workload::RunTraffic(&one_service, traffic);
    if (report.completed == 0) std::abort();
  };

  // Informational leg: four nodes — real scatter-gather with per-node
  // partial aggregation and the k-way merge.
  std::unique_ptr<core::Database> four_db = MakeReadingsDatabase();
  server::ServerConfig four_config = base_config;
  four_config.cluster.nodes = 4;
  server::QueryService four_service(four_db.get(), four_config);
  auto run_four = [&] {
    const workload::TrafficReport report =
        workload::RunTraffic(&four_service, traffic);
    if (report.completed == 0) std::abort();
  };

  // Warm all three services (statistics, plan caches, partitions) untimed.
  run_base();
  run_one();
  run_four();

  const double baseline = BestRoundSeconds(run_base);
  const double one_node = BestRoundSeconds(run_one);
  const double four_node = BestRoundSeconds(run_four);
  const double coordinator_overhead = one_node / baseline - 1.0;
  const double four_node_ratio = four_node / baseline - 1.0;

  std::printf("traffic run (%llu clients), best of %d rounds x %d "
              "iterations:\n",
              static_cast<unsigned long long>(traffic.clients), kRounds,
              kItersPerRound);
  std::printf("  single-node path:      %.4f s\n", baseline);
  std::printf("  1-node coordinator:    %.4f s  (%+.1f%%)\n", one_node,
              coordinator_overhead * 100.0);
  std::printf("  4-node scatter-gather: %.4f s  (%+.1f%%, informational)\n",
              four_node, four_node_ratio * 100.0);

  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.BeginObject();
    w.Field("bench", "overhead_cluster");
    w.Field("baseline_seconds", baseline);
    w.Field("one_node_seconds", one_node);
    w.Field("four_node_seconds", four_node);
    w.Field("coordinator_overhead", coordinator_overhead);
    w.Field("four_node_ratio", four_node_ratio);
    w.EndObject();
    if (!bench::WriteJsonFile(json_path, w.str())) return 2;
  }

  // The enforced contract: with one replica the coordinator is a thin
  // veneer — one partition check per wave, one node sync per epoch bump
  // and a trivial single-partition gather per request.
  if (coordinator_overhead >= 0.05) {
    std::printf("FAIL: 1-node coordinator overhead %.1f%% >= 5%%\n",
                coordinator_overhead * 100.0);
    return 1;
  }
  std::printf("PASS: 1-node coordinator overhead under the 5%% bound\n");
  return 0;
}
