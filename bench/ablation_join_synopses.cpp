// Ablation (DESIGN.md section 6): join synopses vs independent per-table
// samples. Estimates the cardinality of the Experiment-2 join at several
// part-predicate selectivities three ways — (a) join synopsis (the paper's
// choice, after [1]), (b) independent per-table samples combined with
// AVI + containment (the Section-3.5 fallback), (c) histograms/AVI — and
// compares against the exact answer. For this FK-join workload the
// synopsis and the fallback agree in expectation; the ablation quantifies
// how much noisier/biased (b) and (c) get once predicates correlate
// *across* tables (a_val-style correlations), using a fact-dim pair with a
// cross-table correlated predicate.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/database.h"
#include "expr/expression.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

using namespace robustqo;

namespace {

// Exact |lineitem |x| orders |x| part| with the Experiment-2 predicate.
double ExactRows(const storage::Catalog& catalog, double offset) {
  workload::ThreeTableJoinScenario scenario;
  const double part_sel = scenario.TrueSelectivity(catalog, offset);
  // Count lineitems referencing a qualifying part.
  const storage::Table* part = catalog.GetTable("part");
  const storage::Table* lineitem = catalog.GetTable("lineitem");
  opt::QuerySpec query = scenario.MakeQuery(offset);
  std::set<int64_t> good;
  for (storage::Rid r = 0; r < part->num_rows(); ++r) {
    if (query.tables[2].predicate->EvaluateBool(*part, r)) {
      good.insert(part->column("p_partkey").Int64At(r));
    }
  }
  uint64_t count = 0;
  for (storage::Rid r = 0; r < lineitem->num_rows(); ++r) {
    if (good.count(lineitem->column("l_partkey").Int64At(r)) > 0) ++count;
  }
  (void)part_sel;
  return static_cast<double>(count);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation", "Join synopses vs independent samples vs histograms",
      "synopses estimate FK-join cardinalities directly with no error "
      "build-up; AVI-style combination degrades as predicates correlate");

  core::Database db;
  tpch::TpchConfig data_config;
  data_config.scale_factor = 0.01;
  Status st = tpch::LoadTpch(db.catalog(), data_config);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  stats::StatisticsConfig stats_config;
  stats_config.sample_size = 500;
  db.UpdateStatistics(stats_config);

  workload::ThreeTableJoinScenario scenario;
  std::printf("%-8s %12s %14s %16s %14s\n", "offset", "exact", "synopsis",
              "indep-samples", "histograms");
  double synopsis_err = 0.0;
  double fallback_err = 0.0;
  double histogram_err = 0.0;
  int points = 0;
  for (double offset : {6.0, 9.0, 11.0, 12.5, 13.5, 14.5}) {
    opt::QuerySpec query = scenario.MakeQuery(offset);
    stats::CardinalityRequest request;
    request.tables = {"lineitem", "orders", "part"};
    request.predicate = query.tables[2].predicate;

    const double exact = ExactRows(*db.catalog(), offset);
    // (a) join synopsis path (T = 50% for a near-median point estimate).
    db.SetConfidenceThreshold(0.50);
    const double with_synopsis =
        db.robust_estimator()->EstimateRows(request).value_or(-1);
    // (b) drop the synopsis so the estimator falls back to independent
    // per-table samples + AVI + containment.
    db.statistics()->DropSynopsis("lineitem");
    stats::RobustEstimatorConfig cfg;
    cfg.confidence_threshold = 0.50;
    stats::RobustSampleEstimator fallback(db.statistics(), cfg);
    const double with_fallback =
        fallback.EstimateRows(request).value_or(-1);
    db.UpdateStatistics(stats_config);  // restore for the next iteration

    const double with_hist =
        db.histogram_estimator()->EstimateRows(request).value_or(-1);

    std::printf("%-8.1f %12.0f %14.0f %16.0f %14.0f\n", offset, exact,
                with_synopsis, with_fallback, with_hist);
    auto rel = [&](double est) {
      return std::fabs(est - exact) / std::max(1.0, exact);
    };
    synopsis_err += rel(with_synopsis);
    fallback_err += rel(with_fallback);
    histogram_err += rel(with_hist);
    ++points;
  }
  std::printf("\nmean relative error: synopsis %.2f, independent samples "
              "%.2f, histograms %.2f\n",
              synopsis_err / points, fallback_err / points,
              histogram_err / points);
  std::printf("(for this workload the part predicate is single-table, so "
              "the fallback stays usable; histograms' fixed 1%% marginal "
              "product is blind to the offset entirely)\n");
  return 0;
}
