// Telemetry overhead: the cost of the full telemetry pipeline added on
// top of the base observability sites — per-query quantile-sketch
// observations on the execute path, exporter rendering, and the
// EXPLAIN-ANALYZE -> quality-monitor feedback join.
//
// The enforced contract (docs/OBSERVABILITY.md): the always-on production
// configuration — a metrics registry attached, which now includes the
// exec.query.* sketch observations — stays under 5% overhead versus an
// unsinked plan+execute. Exporter rendering and the quality join run on
// demand (a `.metrics` dump, an EXPLAIN ANALYZE), so they are reported as
// informational absolute costs, not gated.
//
// Usage: overhead_telemetry [--json out.json]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "core/database.h"
#include "core/explain_analyze.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/quality_monitor.h"
#include "tpch/tpch_gen.h"
#include "util/stopwatch.h"
#include "workload/quality_report.h"
#include "workload/scenarios.h"

using namespace robustqo;

namespace {

constexpr int kRounds = 7;
constexpr int kItersPerRound = 12;

// Best-of-rounds wall seconds for `body` run kItersPerRound times.
template <typename Fn>
double BestRoundSeconds(Fn&& body) {
  double best = 1e100;
  Stopwatch watch;
  for (int round = 0; round < kRounds; ++round) {
    watch.Restart();
    for (int i = 0; i < kItersPerRound; ++i) body();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ConsumeJsonFlag(&argc, argv);
  core::Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.02;
  if (!tpch::LoadTpch(db.catalog(), config).ok()) return 2;
  stats::StatisticsConfig stats_config;
  stats_config.sample_size = 500;
  db.UpdateStatistics(stats_config);

  workload::ThreeTableJoinScenario scenario;
  const opt::QuerySpec query = scenario.MakeQuery(13.0);

  auto plan_and_execute = [&] {
    auto plan = db.Plan(query, core::EstimatorKind::kRobustSample);
    if (!plan.ok()) std::abort();
    core::ExecutionResult result = db.ExecutePlan(plan.value()).value();
    if (result.rows.num_rows() == 0 && result.spj_rows == 0) std::abort();
  };

  // Warm up caches (statistics, allocator) before timing anything.
  plan_and_execute();

  const double baseline = BestRoundSeconds(plan_and_execute);

  // The always-on production path: counters + histograms + the per-query
  // exec.query.* quantile sketches, all recorded through the registry.
  obs::MetricsRegistry metrics;
  db.SetMetrics(&metrics);
  const double with_telemetry = BestRoundSeconds(plan_and_execute);

  // Exporter rendering cost on the registry the loop just filled, per call.
  std::string rendered;
  const double export_seconds = BestRoundSeconds([&] {
                                  rendered = obs::ToOpenMetrics(metrics);
                                  if (rendered.empty()) std::abort();
                                }) /
                                kItersPerRound;
  db.SetMetrics(nullptr);

  // The feedback join: EXPLAIN ANALYZE (tracer + annotated re-execution)
  // feeding the estimation-quality monitor. On-demand path, informational.
  obs::EstimationQualityMonitor monitor;
  const double quality_join = BestRoundSeconds([&] {
    auto analyzed =
        core::ExplainAnalyze(&db, query, core::EstimatorKind::kRobustSample);
    if (!analyzed.ok()) std::abort();
    workload::RecordAnalyzedPlan(analyzed.value(), &monitor);
  });

  const double telemetry_overhead = with_telemetry / baseline - 1.0;

#if ROBUSTQO_OBS_ENABLED
  std::printf("telemetry: compiled IN (ROBUSTQO_OBS=ON)\n");
#else
  std::printf(
      "telemetry: compiled OUT (ROBUSTQO_OBS=OFF) — attached sinks are "
      "ignored on the query path; exporters and the monitor still work "
      "when invoked directly\n");
#endif
  std::printf("plan+execute, best of %d rounds x %d iterations:\n", kRounds,
              kItersPerRound);
  std::printf("  no sinks:            %.4f s\n", baseline);
  std::printf("  metrics + sketches:  %.4f s  (%+.1f%%)\n", with_telemetry,
              telemetry_overhead * 100.0);
  std::printf("  OpenMetrics render:  %.1f us/call (informational, "
              "%zu bytes)\n",
              export_seconds * 1e6, rendered.size());
  std::printf("  quality join round:  %.4f s  (informational — EXPLAIN "
              "ANALYZE + monitor)\n",
              quality_join);
  std::printf("  monitor state:       %zu observations, %zu fingerprints\n",
              monitor.observation_count(), monitor.fingerprint_count());

  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.BeginObject();
    w.Field("bench", "overhead_telemetry");
    w.Field("baseline_seconds", baseline);
    w.Field("with_telemetry_seconds", with_telemetry);
    w.Field("telemetry_overhead", telemetry_overhead);
    w.Field("openmetrics_render_seconds", export_seconds);
    w.Field("quality_join_round_seconds", quality_join);
    w.EndObject();
    if (!bench::WriteJsonFile(json_path, w.str())) return 2;
  }

  // The enforced contract. 5% is the documented bound; the measured value
  // is normally well under 1% and the headroom absorbs timer noise.
  if (telemetry_overhead >= 0.05) {
    std::printf("FAIL: telemetry overhead %.1f%% >= 5%%\n",
                telemetry_overhead * 100.0);
    return 1;
  }
  std::printf("PASS: telemetry overhead under the 5%% bound\n");
  return 0;
}
