// Figure 3: cumulative cost distributions for the two plans; reading them
// at a confidence threshold T gives the robust cost estimates, and the
// preferred plan flips at T ~ 65%.

#include "bench_util.h"
#include "core/cost_distribution.h"

using namespace robustqo;

int main() {
  bench::PrintHeader(
      "Figure 3", "Cumulative probability for execution cost",
      "Plan 1 preferred below T~65%, Plan 2 above; e.g. at T=50%: "
      "30.2 vs 31.5, at T=80%: 33.5 vs 31.9 (paper's example numbers)");

  const double rows = 1000.0;
  core::LinearCostPlan plan1{"Plan 1", 10.0, 80.0 / rows};
  core::LinearCostPlan plan2{"Plan 2", 30.0, 3.0 / rows};
  stats::SelectivityPosterior posterior(50, 200);
  core::PlanCostDistribution d1(posterior, plan1, rows);
  core::PlanCostDistribution d2(posterior, plan2, rows);

  std::vector<double> cost;
  std::vector<double> f1;
  std::vector<double> f2;
  for (double c = 20.0; c <= 40.0; c += 0.5) {
    cost.push_back(c);
    f1.push_back(d1.CostCdf(c) * 100.0);
    f2.push_back(d2.CostCdf(c) * 100.0);
  }
  bench::PrintSeries("cost", cost,
                     {{"Plan1 cdf%", f1}, {"Plan2 cdf%", f2}});

  std::printf("\ncost estimates by confidence threshold:\n");
  std::printf("%-8s %10s %10s %10s\n", "T", "Plan1", "Plan2", "preferred");
  for (double t : {0.20, 0.50, 0.65, 0.80, 0.95}) {
    const double q1 = d1.CostQuantile(t);
    const double q2 = d2.CostQuantile(t);
    std::printf("%-8.0f %10.2f %10.2f %10s\n", t * 100.0, q1, q2,
                q1 <= q2 ? "Plan 1" : "Plan 2");
  }
  auto crossover = core::PreferenceCrossoverThreshold(d1, d2);
  if (crossover.has_value()) {
    std::printf("\npreference crossover threshold: %.1f%% (paper: ~65%%)\n",
                *crossover * 100.0);
  }
  // Sanity: the Section 3.1.1 shortcut equals explicit cdf inversion.
  std::printf("shortcut vs explicit inversion at T=80%%: %.6f vs %.6f\n",
              d1.CostQuantile(0.8), d1.CostQuantileByInversion(0.8));
  return 0;
}
