// Section 6.1: estimation overhead. Measures wall-clock optimization time
// with the histogram module vs the robust sample-based module (500-tuple
// samples), plus the summary-storage comparison. The paper's unoptimized
// prototype saw ~30-40% more optimization time for sampling; our
// implementation memoizes estimates, so the gap here is what a tuned
// integration would pay.

// Usage: overhead_estimation [--json out.json] [google-benchmark flags]

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_json.h"
#include "core/database.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

using namespace robustqo;

namespace {

core::Database* SharedDb() {
  static core::Database* db = [] {
    auto* d = new core::Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.02;
    Status st = tpch::LoadTpch(d->catalog(), config);
    if (!st.ok()) std::abort();
    stats::StatisticsConfig stats_config;
    stats_config.sample_size = 500;
    d->UpdateStatistics(stats_config);
    return d;
  }();
  return db;
}

void BM_OptimizeSingleTableHistogram(benchmark::State& state) {
  core::Database* db = SharedDb();
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(70);
  for (auto _ : state) {
    auto plan = db->Plan(query, core::EstimatorKind::kHistogram);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeSingleTableHistogram);

void BM_OptimizeSingleTableRobust(benchmark::State& state) {
  core::Database* db = SharedDb();
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(70);
  for (auto _ : state) {
    auto plan = db->Plan(query, core::EstimatorKind::kRobustSample);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeSingleTableRobust);

void BM_OptimizeThreeJoinHistogram(benchmark::State& state) {
  core::Database* db = SharedDb();
  workload::ThreeTableJoinScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(13.0);
  for (auto _ : state) {
    auto plan = db->Plan(query, core::EstimatorKind::kHistogram);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeThreeJoinHistogram);

void BM_OptimizeThreeJoinRobust(benchmark::State& state) {
  core::Database* db = SharedDb();
  workload::ThreeTableJoinScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(13.0);
  for (auto _ : state) {
    auto plan = db->Plan(query, core::EstimatorKind::kRobustSample);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeThreeJoinRobust);

// Raw estimator-call cost, isolated from plan enumeration.
// The paper's prototype "lacks even basic optimizations such as memoizing"
// (Section 6.1); this pair quantifies what memoization buys.
void BM_OptimizeRobustNoMemo(benchmark::State& state) {
  core::Database* db = SharedDb();
  workload::ThreeTableJoinScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(13.0);
  opt::OptimizerOptions options;
  options.enable_estimate_memo = false;
  for (auto _ : state) {
    auto plan = db->Plan(query, core::EstimatorKind::kRobustSample, options);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeRobustNoMemo);

void BM_EstimateCallHistogram(benchmark::State& state) {
  core::Database* db = SharedDb();
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(70);
  stats::CardinalityRequest request{{"lineitem"},
                                    query.tables[0].predicate};
  for (auto _ : state) {
    auto rows = db->histogram_estimator()->EstimateRows(request);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_EstimateCallHistogram);

void BM_EstimateCallRobust(benchmark::State& state) {
  core::Database* db = SharedDb();
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(70);
  stats::CardinalityRequest request{{"lineitem"},
                                    query.tables[0].predicate};
  for (auto _ : state) {
    auto rows = db->robust_estimator()->EstimateRows(request);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_EstimateCallRobust);

// The numeric kernel of every robust estimate: one inverse-beta-cdf
// evaluation. Sub-microsecond, i.e. negligible next to predicate
// evaluation over the sample.
void BM_BetaInverseCdf(benchmark::State& state) {
  stats::SelectivityPosterior posterior(17, 500);
  double t = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(posterior.EstimateAtConfidence(t));
    t += 0.09;
    if (t >= 1.0) t -= 0.94;
  }
}
BENCHMARK(BM_BetaInverseCdf);

}  // namespace

int main(int argc, char** argv) {
  // Strip --json before google-benchmark sees (and rejects) it.
  const std::string json_path = bench::ConsumeJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Storage-parity report (Section 6.1's space discussion).
  core::Database* db = SharedDb();
  const double summary_kib =
      static_cast<double>(db->statistics()->ApproximateSummaryBytes()) / 1024.0;
  std::printf(
      "\nsummary-statistics storage: %.1f KiB total (histograms + samples + "
      "join synopses), lineitem sample = 500 tuples x %zu numeric columns\n",
      summary_kib,
      db->catalog()->GetTable("lineitem")->schema().num_columns());
  std::printf("paper: 500-tuple sample ~ space parity with 250-bucket "
              "histograms per attribute; ~30-40%% optimization-time "
              "overhead for an unoptimized prototype\n");

  if (!json_path.empty()) {
    // Per-benchmark timings go through google-benchmark's own
    // --benchmark_format=json; this report carries the storage summary.
    bench::JsonWriter w;
    w.BeginObject();
    w.Field("bench", "overhead_estimation");
    w.Field("summary_statistics_kib", summary_kib);
    w.EndObject();
    if (!bench::WriteJsonFile(json_path, w.str())) return 2;
  }
  return 0;
}
