// Minimal machine-readable output for the bench harness: a tiny append-only
// JSON object writer plus the shared `--json <path>` flag handling, so CI
// and BENCH_*.json baselines consume the same numbers the text report
// prints. No external dependencies; doubles are emitted with %.17g so
// re-parsing round-trips the exact bits.

#ifndef ROBUSTQO_BENCH_BENCH_JSON_H_
#define ROBUSTQO_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstring>
#include <string>

namespace robustqo {
namespace bench {

/// Builds one JSON value (object/array tree) incrementally. Keys are
/// emitted in call order; the caller is responsible for proper nesting
/// (every Begin* has a matching End*).
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(1024); }

  void BeginObject() { Prefix(); out_ += '{'; first_ = true; }
  void EndObject() { out_ += '}'; first_ = false; }
  void BeginArray() { Prefix(); out_ += '['; first_ = true; }
  void EndArray() { out_ += ']'; first_ = false; }

  void Key(const std::string& name) {
    Prefix();
    AppendQuoted(name);
    out_ += ':';
    first_ = true;  // the upcoming value must not emit a comma
  }

  void Value(const std::string& v) { Prefix(); AppendQuoted(v); }
  void Value(const char* v) { Value(std::string(v)); }
  void Value(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    Prefix();
    out_ += buf;
  }
  void Value(uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    Prefix();
    out_ += buf;
  }
  void Value(int v) { Value(static_cast<uint64_t>(v < 0 ? 0 : v)); }
  void Value(bool v) { Prefix(); out_ += v ? "true" : "false"; }

  /// Key + scalar value in one call.
  template <typename T>
  void Field(const std::string& name, T v) {
    Key(name);
    Value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void Prefix() {
    if (!first_) out_ += ',';
    first_ = false;
  }
  void AppendQuoted(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      if (c == '"' || c == '\\') out_ += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;  // keys are ASCII
      out_ += c;
    }
    out_ += '"';
  }

  std::string out_;
  bool first_ = true;
};

/// Extracts `--json <path>` or `--json=<path>` from argv (removing it, so
/// downstream flag parsers like google-benchmark never see it). Returns
/// the path or "" when the flag is absent.
inline std::string ConsumeJsonFlag(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--json") == 0 && r + 1 < *argc) {
      path = argv[++r];
    } else if (std::strncmp(argv[r], "--json=", 7) == 0) {
      path = argv[r] + 7;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return path;
}

/// Writes `json` (plus a trailing newline) to `path`. Returns false and
/// prints to stderr on failure.
inline bool WriteJsonFile(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("json report written to %s\n", path.c_str());
  return true;
}

}  // namespace bench
}  // namespace robustqo

#endif  // ROBUSTQO_BENCH_BENCH_JSON_H_
