// Figure 9: Experiment 1 — single-table TPC-H lineitem query with two
// correlated date predicates (Section 6.2.1). Sweeps the receipt-window
// offset so the joint selectivity runs from ~0.7% down to 0 while both
// marginals stay fixed; optimizes at T in {5,20,50,80,95}% plus the
// histogram baseline; reports per-selectivity averages (9a) and the
// mean/std tradeoff (9b).

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/database.h"
#include "tpch/tpch_gen.h"
#include "workload/experiment_harness.h"
#include "workload/scenarios.h"

using namespace robustqo;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 9", "Experiment 1: two-predicate lineitem query (TPC-H)",
      "histograms always pick index intersection (bad at high sel); "
      "variance falls as T rises; best mean at T=80% then 50%");

  core::Database db;
  tpch::TpchConfig data_config;
  data_config.scale_factor = 0.02;  // override: argv[1]
  if (argc > 1) data_config.scale_factor = std::atof(argv[1]);  // ~120k lineitem rows
  Status loaded = tpch::LoadTpch(db.catalog(), data_config);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  std::printf("data: TPC-H sf=%.3f, lineitem rows=%llu; samples: 500 "
              "tuples, 12 redraws\n\n",
              data_config.scale_factor,
              static_cast<unsigned long long>(
                  db.catalog()->GetTable("lineitem")->num_rows()));

  workload::SingleTableScenario scenario;
  workload::QuerySweepExperiment experiment(
      &db, [&](double p) { return scenario.MakeQuery(p); },
      [&](double p) { return scenario.TrueSelectivity(*db.catalog(), p); });
  workload::SweepConfig config;
  config.params = workload::SingleTableScenario::DefaultParams();
  config.repetitions = 12;
  config.statistics.sample_size = 500;
  workload::SweepResult result = experiment.Run(config);
  std::printf("%s\n",
              workload::FormatSweepResult(result, "Experiment 1").c_str());

  const auto& hist = result.overall.at("Histograms");
  const auto& t80 = result.overall.at("T=80%");
  std::printf("check: robust T=80%% mean %.2fs vs histograms %.2fs "
              "(paper: robust clearly better) -> %s\n",
              t80.mean_seconds, hist.mean_seconds,
              t80.mean_seconds < hist.mean_seconds ? "OK" : "MISMATCH");
  return 0;
}
