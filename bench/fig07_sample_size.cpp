// Figure 7: effect of sample size — expected execution time vs selectivity
// at T=50% for n in {50, 100, 250, 500, 1000}.

#include "bench_util.h"
#include "core/analytical_model.h"

using namespace robustqo;

int main() {
  core::TwoPlanAnalyticalModel model;
  bench::PrintHeader(
      "Figure 7", "Effect of sample size (analytical model, T=50%)",
      "larger samples -> better plans; ~500 tuples already close to the "
      "n=1000 curve, below ~250 performance degrades");

  const std::vector<uint64_t> sizes{50, 100, 250, 500, 1000};
  std::vector<double> sel;
  std::vector<std::vector<double>> series(sizes.size());
  for (int i = 0; i <= 20; ++i) {
    const double p = i * 0.0005;
    sel.push_back(p * 100.0);
    for (size_t s = 0; s < sizes.size(); ++s) {
      series[s].push_back(model.ExpectedExecutionTime(p, sizes[s], 0.5));
    }
  }
  bench::PrintSeries("sel(%)", sel,
                     {{"n=50", series[0]},
                      {"n=100", series[1]},
                      {"n=250", series[2]},
                      {"n=500", series[3]},
                      {"n=1000", series[4]}});

  std::printf("\nworkload means:");
  std::vector<double> sels(sel.size());
  for (size_t i = 0; i < sel.size(); ++i) sels[i] = sel[i] / 100.0;
  for (size_t s = 0; s < sizes.size(); ++s) {
    std::printf("  n=%llu: %.2fs",
                static_cast<unsigned long long>(sizes[s]),
                model.SummarizeWorkload(sels, sizes[s], 0.5).mean_seconds);
  }
  std::printf("\nnote: tiny samples (n<=100 here) self-adjust to the safe "
              "plan (k*=0), trading optimality at very low selectivity for "
              "consistency — Section 6.2.4's effect; mid sizes (n=250) are "
              "worst on average because their risky choices are noisy\n");
  return 0;
}
