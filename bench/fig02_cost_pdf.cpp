// Figure 2: probability density of execution cost for the two plans when
// selectivity is inferred from a 200-tuple sample with 50 hits. Uncertainty
// hits the steep plan much harder than the flat one.

#include "bench_util.h"
#include "core/cost_distribution.h"

using namespace robustqo;

int main() {
  bench::PrintHeader(
      "Figure 2", "Probability density function for execution cost",
      "Plan 2's cost almost certainly in [30,33]; Plan 1's spans ~[20,40]");

  const double rows = 1000.0;
  core::LinearCostPlan plan1{"Plan 1", 10.0, 80.0 / rows};
  core::LinearCostPlan plan2{"Plan 2", 30.0, 3.0 / rows};
  // The paper derives this figure from a 200-tuple sample with 50 hits.
  stats::SelectivityPosterior posterior(50, 200);
  core::PlanCostDistribution d1(posterior, plan1, rows);
  core::PlanCostDistribution d2(posterior, plan2, rows);

  std::vector<double> cost;
  std::vector<double> f1;
  std::vector<double> f2;
  for (double c = 20.0; c <= 45.0; c += 0.5) {
    cost.push_back(c);
    f1.push_back(d1.CostPdf(c));
    f2.push_back(d2.CostPdf(c));
  }
  bench::PrintSeries("cost", cost, {{"Plan1 pdf", f1}, {"Plan2 pdf", f2}});

  std::printf("\n90%% cost intervals:  Plan1 [%.1f, %.1f]   Plan2 [%.1f, %.1f]\n",
              d1.CostQuantile(0.05), d1.CostQuantile(0.95),
              d2.CostQuantile(0.05), d2.CostQuantile(0.95));
  std::printf("expected costs:      Plan1 %.2f   Plan2 %.2f\n",
              d1.ExpectedCost(), d2.ExpectedCost());
  return 0;
}
