// The server's PREPARE/EXECUTE plan cache vs the cold per-statement path.
// The workload is a small TPC-H-style statement mix executed repeatedly,
// the shape a plan cache exists for:
//
//   cold    per EXECUTE: parse + full optimization (join enumeration with
//           robust sample-based estimation) + execution;
//   cached  per EXECUTE: fingerprint lookup in the warmed plan cache +
//           execution of the cached operator tree.
//
// Both paths must return identical answers — the bench verifies row counts
// and aggregate bytes before timing and exits non-zero on any mismatch or
// if the cached path's speedup falls under the contracted 3x. Planning is
// the dominant cost for these statements (sampling probes + DP join
// enumeration), which is exactly the work a cache hit elides.
//
// Usage: overhead_plan_cache [--json out.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/database.h"
#include "server/query_service.h"
#include "tpch/tpch_gen.h"
#include "util/stopwatch.h"

using namespace robustqo;

namespace {

constexpr int kRepeats = 12;  // EXECUTEs of each statement per pass
constexpr int kRounds = 5;    // best-of timing rounds

const char* kStatements[] = {
    // Selective shapes: index-range scans and filtered star joins, where
    // optimization (sampling probes + DP join enumeration) costs a
    // multiple of execution -- the serving workload a plan cache earns
    // its keep on.
    "SELECT COUNT(*) AS n FROM region, nation, customer, orders, lineitem "
    "WHERE r_regionkey = 2 "
    "AND o_orderdate BETWEEN DATE '1994-01-01' AND DATE '1994-01-05'",
    "SELECT SUM(l_extendedprice) AS revenue FROM lineitem "
    "WHERE l_shipdate BETWEEN DATE '1994-03-01' AND DATE '1994-03-03' "
    "AND l_discount BETWEEN 0.05 AND 0.07",
    "SELECT COUNT(*) AS n FROM region, nation, customer, orders, lineitem "
    "WHERE r_regionkey = 0 "
    "AND o_orderdate BETWEEN DATE '1995-06-01' AND DATE '1995-06-05'",
    "SELECT SUM(l_extendedprice) AS promo FROM lineitem, part "
    "WHERE p_size BETWEEN 1 AND 3 "
    "AND l_shipdate BETWEEN DATE '1995-09-01' AND DATE '1995-09-02'",
};

struct Answer {
  uint64_t rows = 0;
  uint64_t spj_rows = 0;
};

// Cold path: every EXECUTE pays parse + optimization + execution.
std::vector<Answer> RunCold(core::Database* db) {
  std::vector<Answer> answers;
  for (int r = 0; r < kRepeats; ++r) {
    for (const char* sql : kStatements) {
      auto result = db->ExecuteSql(sql);
      if (!result.ok()) std::abort();
      answers.push_back(
          {result.value().rows.num_rows(), result.value().spj_rows});
    }
  }
  return answers;
}

// Cached path: prepared statements through the service; after the first
// pass every plan comes from the cache.
std::vector<Answer> RunCached(server::QueryService* service,
                              server::SessionId session) {
  std::vector<Answer> answers;
  for (int r = 0; r < kRepeats; ++r) {
    for (size_t s = 0; s < std::size(kStatements); ++s) {
      server::QueryResponse response =
          service->ExecutePrepared(session, "q" + std::to_string(s));
      if (!response.status.ok()) std::abort();
      answers.push_back(
          {response.result->rows.num_rows(), response.result->spj_rows});
    }
  }
  return answers;
}

template <typename Fn>
double BestRoundSeconds(Fn&& body) {
  double best = 1e100;
  Stopwatch watch;
  for (int round = 0; round < kRounds; ++round) {
    watch.Restart();
    body();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ConsumeJsonFlag(&argc, argv);

  core::Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  if (!tpch::LoadTpch(db.catalog(), config).ok()) return 2;
  stats::StatisticsConfig stats_config;
  stats_config.sample_size = 4000;
  db.UpdateStatistics(stats_config);

  server::QueryService service(&db);
  server::SessionId session = service.OpenSession();
  for (size_t s = 0; s < std::size(kStatements); ++s) {
    if (!service.Prepare(session, "q" + std::to_string(s), kStatements[s])
             .ok()) {
      return 2;
    }
  }

  std::printf("plan cache: %zu statements x %d EXECUTEs per pass\n",
              std::size(kStatements), kRepeats);

  // Correctness first: the cached path must return the same answers as the
  // cold path on every EXECUTE.
  const std::vector<Answer> reference = RunCold(&db);
  const std::vector<Answer> cached = RunCached(&service, session);
  if (cached.size() != reference.size()) return 3;
  for (size_t i = 0; i < cached.size(); ++i) {
    if (cached[i].rows != reference[i].rows ||
        cached[i].spj_rows != reference[i].spj_rows) {
      std::printf("FAIL: answer %zu differs: rows %llu vs %llu\n", i,
                  static_cast<unsigned long long>(cached[i].rows),
                  static_cast<unsigned long long>(reference[i].rows));
      return 3;
    }
  }
  const auto& cache_stats = service.plan_cache()->stats();
  std::printf("answers: cached == cold on all %zu EXECUTEs "
              "(cache: %llu hits / %llu misses)\n\n",
              cached.size(),
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses));

  const double cold_s = BestRoundSeconds([&] { (void)RunCold(&db); });
  std::printf("cold parse+plan+execute:   %9.4f ms per pass\n", cold_s * 1e3);
  const double cached_s =
      BestRoundSeconds([&] { (void)RunCached(&service, session); });
  std::printf("cached EXECUTE:            %9.4f ms per pass\n",
              cached_s * 1e3);

  const double speedup = cold_s / cached_s;
  std::printf("\ncached EXECUTE speedup: %.1fx (contract: >= 3x)\n", speedup);

  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.BeginObject();
    w.Field("bench", "overhead_plan_cache");
    w.Field("scale_factor", config.scale_factor);
    w.Field("sample_size", static_cast<uint64_t>(stats_config.sample_size));
    w.Field("statements", static_cast<uint64_t>(std::size(kStatements)));
    w.Field("repeats", static_cast<uint64_t>(kRepeats));
    w.Field("cold_seconds", cold_s);
    w.Field("cached_seconds", cached_s);
    w.Field("speedup", speedup);
    w.Field("cache_hits", cache_stats.hits);
    w.Field("cache_misses", cache_stats.misses);
    w.Field("answers_identical", true);
    w.EndObject();
    if (!bench::WriteJsonFile(json_path, w.str())) return 2;
  }

  if (speedup < 3.0) {
    std::printf("FAIL: cached speedup %.1fx < 3x\n", speedup);
    return 1;
  }
  std::printf("PASS: cached EXECUTE >= 3x over the cold path\n");
  return 0;
}
