// Figure 11: Experiment 3 — four-table star join on the synthetic data
// warehouse (Section 6.2.3). Dimension filters are always 10%-selective;
// the offset steers which groups align, so the joining fact fraction runs
// from ~5% down to ~0.01% while AVI forever answers 0.1%.

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/database.h"
#include "workload/experiment_harness.h"
#include "workload/scenarios.h"
#include "workload/star_schema.h"

using namespace robustqo;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 11", "Experiment 3: four-table star join (synthetic DW)",
      "low T favors the semijoin plan (great at low join fractions, weak "
      "higher); high T gives consistent times; best mean at T=50-80%; "
      "histograms are offset-blind");

  core::Database db;
  workload::StarSchemaConfig data_config;
  data_config.fact_rows = 200000;  // paper: 10M; override: argv[1]
  if (argc > 1) data_config.fact_rows = static_cast<uint64_t>(std::atoll(argv[1]));
  data_config.dim_rows = 1000;
  Status loaded = workload::LoadStarSchema(db.catalog(), data_config);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  std::printf("data: fact %llu rows, 3 dims x %llu rows, 10%% filters\n\n",
              static_cast<unsigned long long>(data_config.fact_rows),
              static_cast<unsigned long long>(data_config.dim_rows));

  workload::StarJoinScenario scenario;
  workload::QuerySweepExperiment experiment(
      &db, [&](double p) { return scenario.MakeQuery(p); },
      [&](double p) { return scenario.TrueSelectivity(*db.catalog(), p); });
  workload::SweepConfig config;
  config.params = workload::StarJoinScenario::DefaultParams();
  config.repetitions = 12;
  config.statistics.sample_size = 500;
  workload::SweepResult result = experiment.Run(config);
  std::printf("%s\n",
              workload::FormatSweepResult(result, "Experiment 3").c_str());

  // The paper's three plan shapes: cascaded hash joins, full semijoin
  // strategy, and semijoin/hash hybrids.
  std::set<std::string> structures;
  for (const auto& [label, agg] : result.overall) {
    for (const auto& [plan, count] : agg.plan_counts) structures.insert(plan);
  }
  int semijoin = 0;
  int hybrid = 0;
  int hash_only = 0;
  for (const auto& s : structures) {
    const bool has_star = s.find("Star(") != std::string::npos;
    const bool has_hash_dim = s.find("HJ(Seq(dim") != std::string::npos;
    if (has_star && has_hash_dim) {
      ++hybrid;
    } else if (has_star) {
      ++semijoin;
    } else {
      ++hash_only;
    }
  }
  std::printf("plan shapes seen: %d semijoin, %d hybrid, %d hash-cascade "
              "(paper: all three occur)\n",
              semijoin, hybrid, hash_only);
  return 0;
}
