// Figure 4: "Sample Size Matters, Prior Doesn't" — posterior densities for
// (n=100, k=10) and (n=500, k=50) under the uniform and Jeffreys priors.

#include <cmath>

#include "bench_util.h"
#include "statistics/selectivity_posterior.h"

using namespace robustqo;

int main() {
  bench::PrintHeader(
      "Figure 4", "Posterior selectivity densities by prior and sample size",
      "uniform and Jeffreys priors nearly identical; n=500 much tighter "
      "than n=100");

  stats::SelectivityPosterior j100(10, 100, stats::PriorKind::kJeffreys);
  stats::SelectivityPosterior u100(10, 100, stats::PriorKind::kUniform);
  stats::SelectivityPosterior j500(50, 500, stats::PriorKind::kJeffreys);
  stats::SelectivityPosterior u500(50, 500, stats::PriorKind::kUniform);

  std::vector<double> sel;
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  std::vector<double> d;
  for (double s = 0.0; s <= 0.25; s += 0.005) {
    sel.push_back(s * 100.0);
    a.push_back(j100.Pdf(s));
    b.push_back(u100.Pdf(s));
    c.push_back(j500.Pdf(s));
    d.push_back(u500.Pdf(s));
  }
  bench::PrintSeries("sel(%)", sel,
                     {{"Jeff n=100", a},
                      {"Unif n=100", b},
                      {"Jeff n=500", c},
                      {"Unif n=500", d}});

  // Quantify the figure's two claims.
  double max_prior_gap_100 = 0.0;
  double max_prior_gap_500 = 0.0;
  for (double s = 0.01; s <= 0.25; s += 0.001) {
    max_prior_gap_100 =
        std::fmax(max_prior_gap_100, std::fabs(j100.Pdf(s) - u100.Pdf(s)));
    max_prior_gap_500 =
        std::fmax(max_prior_gap_500, std::fabs(j500.Pdf(s) - u500.Pdf(s)));
  }
  std::printf("\nmax density gap between priors: n=100: %.3f, n=500: %.3f "
              "(vs peak densities %.1f / %.1f)\n",
              max_prior_gap_100, max_prior_gap_500, j100.Pdf(0.1),
              j500.Pdf(0.1));
  std::printf("90%% credible width: n=100: %.4f, n=500: %.4f\n",
              j100.EstimateAtConfidence(0.95) - j100.EstimateAtConfidence(0.05),
              j500.EstimateAtConfidence(0.95) -
                  j500.EstimateAtConfidence(0.05));
  std::printf("paper Section 3.4 estimates (n=100,k=10): T=20%%: %.1f%%  "
              "T=50%%: %.1f%%  T=80%%: %.1f%%  (paper: 7.8 / 10.1 / 12.8)\n",
              j100.EstimateAtConfidence(0.2) * 100.0,
              j100.EstimateAtConfidence(0.5) * 100.0,
              j100.EstimateAtConfidence(0.8) * 100.0);
  return 0;
}
