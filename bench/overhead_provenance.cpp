// Plan-provenance overhead: the cost of the plan-choice observatory —
// snapshotting the winner plus top-K runner-up candidates on every fresh
// optimizer run, re-costing each at the posterior quantile grid, and
// filing the record (plus plan-diff bookkeeping) in the provenance store.
//
// The enforced contract (docs/OBSERVABILITY.md): a traffic run with
// provenance capture enabled stays under 5% overhead versus the identical
// run with the observatory off. The capture only runs on plan-cache
// misses — the hot path (cache hits) pays a single disabled-store check —
// so a cache-friendly workload amortizes the per-miss quantile costing to
// noise. `.whyplan` / JSON dump rendering happens on demand and is
// reported as an informational absolute cost, not gated.
//
// Usage: overhead_provenance [--json out.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_json.h"
#include "core/database.h"
#include "obs/plan_provenance.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "workload/traffic_harness.h"

using namespace robustqo;

namespace {

constexpr int kRounds = 5;
constexpr int kItersPerRound = 3;

// Best-of-rounds wall seconds for `body` run kItersPerRound times.
template <typename Fn>
double BestRoundSeconds(Fn&& body) {
  double best = 1e100;
  Stopwatch watch;
  for (int round = 0; round < kRounds; ++round) {
    watch.Restart();
    for (int i = 0; i < kItersPerRound; ++i) body();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

std::unique_ptr<core::Database> MakeReadingsDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < 20000; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  if (!db->catalog()->AddTable(std::move(table)).ok()) std::abort();
  db->UpdateStatistics();
  return db;
}

workload::TrafficConfig MakeTraffic() {
  workload::TrafficConfig config;
  config.clients = 48;
  config.duration_seconds = 10.0;
  config.think_seconds = 5.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ConsumeJsonFlag(&argc, argv);
  const workload::TrafficConfig traffic = MakeTraffic();

  // Baseline: the observatory off — plan misses run the pre-provenance
  // optimizer path (no candidate snapshot, no quantile re-costing).
  std::unique_ptr<core::Database> base_db = MakeReadingsDatabase();
  server::ServerConfig base_config;
  base_config.admission.max_concurrent = 8;
  base_config.admission.max_queue_depth = 128;
  base_config.provenance.enabled = false;
  server::QueryService base_service(base_db.get(), base_config);
  auto run_base = [&] {
    const workload::TrafficReport report =
        workload::RunTraffic(&base_service, traffic);
    if (report.completed == 0) std::abort();
  };

  // Instrumented: every fresh optimizer run snapshots its finalists,
  // re-costs winner + top-K runner-ups at six posterior quantiles, and
  // files the provenance record (diff bookkeeping on re-plans).
  std::unique_ptr<core::Database> prov_db = MakeReadingsDatabase();
  server::ServerConfig prov_config = base_config;
  prov_config.provenance.enabled = true;
  server::QueryService prov_service(prov_db.get(), prov_config);
  auto run_provenance = [&] {
    const workload::TrafficReport report =
        workload::RunTraffic(&prov_service, traffic);
    if (report.completed == 0) std::abort();
  };

  // Warm both services (statistics, plan caches, allocator) untimed.
  run_base();
  run_provenance();

  const double baseline = BestRoundSeconds(run_base);
  const double with_provenance = BestRoundSeconds(run_provenance);
  const double provenance_overhead = with_provenance / baseline - 1.0;

  // On-demand rendering on the store the loop just filled.
  std::string dump;
  const double dump_render =
      BestRoundSeconds([&] { dump = prov_service.provenance()->ToJson(); }) /
      kItersPerRound;
  std::string whyplan;
  const double whyplan_render =
      BestRoundSeconds([&] {
        const obs::PlanProvenanceRecord* latest =
            prov_service.provenance()->Latest();
        if (latest == nullptr) std::abort();
        whyplan = prov_service.provenance()->ReportFor(latest->fingerprint);
      }) /
      kItersPerRound;

  std::printf("traffic run (%llu clients), best of %d rounds x %d "
              "iterations:\n",
              static_cast<unsigned long long>(traffic.clients), kRounds,
              kItersPerRound);
  std::printf("  provenance off:       %.4f s\n", baseline);
  std::printf("  provenance on:        %.4f s  (%+.1f%%)\n", with_provenance,
              provenance_overhead * 100.0);
  std::printf("  store JSON render:    %.1f us/call (informational, "
              "%zu bytes, %zu records)\n",
              dump_render * 1e6, dump.size(),
              prov_service.provenance()->size());
  std::printf("  .whyplan render:      %.1f us/call (informational, "
              "%zu bytes)\n",
              whyplan_render * 1e6, whyplan.size());

  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.BeginObject();
    w.Field("bench", "overhead_provenance");
    w.Field("baseline_seconds", baseline);
    w.Field("with_provenance_seconds", with_provenance);
    w.Field("provenance_overhead", provenance_overhead);
    w.Field("dump_render_seconds", dump_render);
    w.Field("whyplan_render_seconds", whyplan_render);
    w.EndObject();
    if (!bench::WriteJsonFile(json_path, w.str())) return 2;
  }

  // The enforced contract. Capture only runs on plan-cache misses, and
  // this workload caches aggressively, so the measured value is normally
  // well under the bound with headroom for timer noise.
  if (provenance_overhead >= 0.05) {
    std::printf("FAIL: plan-provenance overhead %.1f%% >= 5%%\n",
                provenance_overhead * 100.0);
    return 1;
  }
  std::printf("PASS: plan-provenance overhead under the 5%% bound\n");
  return 0;
}
