// Figure 6: the performance/predictability tradeoff — std-dev vs mean of
// execution time across the Figure-5 workload, one point per confidence
// threshold.

#include "bench_util.h"
#include "core/analytical_model.h"

using namespace robustqo;

int main() {
  core::TwoPlanAnalyticalModel model;
  bench::PrintHeader(
      "Figure 6", "Performance vs predictability trade-off (analytical)",
      "higher T -> lower variance; lowest mean at T~80%, not at the "
      "unbiased 50%");

  std::vector<double> selectivities;
  for (int i = 0; i <= 20; ++i) selectivities.push_back(i * 0.0005);

  std::printf("%-8s %16s %16s\n", "T", "avg time (s)", "std dev (s)");
  double best_mean = 1e18;
  double best_t = 0.0;
  std::vector<std::pair<double, core::TwoPlanAnalyticalModel::WorkloadSummary>>
      points;
  for (double t : {0.05, 0.20, 0.50, 0.80, 0.95}) {
    const auto summary = model.SummarizeWorkload(selectivities, 1000, t);
    points.emplace_back(t, summary);
    std::printf("%-8.0f %16.3f %16.3f\n", t * 100.0, summary.mean_seconds,
                summary.std_dev_seconds);
    if (summary.mean_seconds < best_mean) {
      best_mean = summary.mean_seconds;
      best_t = t;
    }
  }
  std::printf("\nlowest average time at T=%.0f%% (paper: 80%%)\n",
              best_t * 100.0);
  bool variance_monotone = true;
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].second.std_dev_seconds >
        points[i - 1].second.std_dev_seconds + 1e-9) {
      variance_monotone = false;
    }
  }
  std::printf("std dev decreases monotonically in T: %s (paper: yes)\n",
              variance_monotone ? "yes" : "NO");
  return 0;
}
