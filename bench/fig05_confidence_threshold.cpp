// Figure 5: effect of the confidence threshold — expected execution time vs
// true selectivity for T in {5,20,50,80,95}%, n=1000 sample, paper Section
// 5.1 cost model (N=6M, crossover ~0.14%).

#include "bench_util.h"
#include "core/analytical_model.h"

using namespace robustqo;

int main() {
  core::TwoPlanAnalyticalModel model;
  bench::PrintHeader(
      "Figure 5", "Effect of the confidence threshold (analytical model)",
      "high T overestimates (flat-plan bias), low T underestimates "
      "(risky-plan bias); crossover pc ~ 0.14%");
  std::printf("model: N=%.0f, P1=%g+%g*x, P2=%g+%g*x, pc=%.4f%%\n\n",
              model.params().table_rows, model.params().p1.fixed,
              model.params().p1.per_tuple, model.params().p2.fixed,
              model.params().p2.per_tuple,
              model.CrossoverSelectivity() * 100.0);

  const uint64_t n = 1000;
  const std::vector<double> thresholds{0.05, 0.20, 0.50, 0.80, 0.95};
  std::vector<double> sel;
  std::vector<std::vector<double>> series(thresholds.size());
  std::vector<double> optimal;
  for (int i = 0; i <= 20; ++i) {
    const double p = i * 0.0005;  // 0% .. 1% in 0.05% steps, as the paper
    sel.push_back(p * 100.0);
    for (size_t t = 0; t < thresholds.size(); ++t) {
      series[t].push_back(model.ExpectedExecutionTime(p, n, thresholds[t]));
    }
    optimal.push_back(model.OptimalCost(p));
  }
  bench::PrintSeries("sel(%)", sel,
                     {{"T=5%", series[0]},
                      {"T=20%", series[1]},
                      {"T=50%", series[2]},
                      {"T=80%", series[3]},
                      {"T=95%", series[4]},
                      {"optimal", optimal}});

  std::printf("\nplan-1 threshold k* (min hits of %llu choosing seq scan):",
              static_cast<unsigned long long>(n));
  for (double t : thresholds) {
    std::printf("  T=%.0f%%: k*=%llu", t * 100.0,
                static_cast<unsigned long long>(model.Plan1ThresholdK(n, t)));
  }
  std::printf("\nnote: at T=95%% k*=0 — the risky plan is never chosen "
              "(paper Section 5.2.1)\n");
  return 0;
}
