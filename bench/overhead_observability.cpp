// Observability overhead: plan + execute a three-table join repeatedly
// with (a) no sinks attached, (b) a metrics registry attached, and (c) a
// tracer attached, and compare best-of-rounds wall time. The contract the
// obs layer is built around (docs/OBSERVABILITY.md):
//   * metrics attached: < 5% overhead (counter bumps on the hot paths);
//   * nothing attached: indistinguishable from an uninstrumented build
//     (one null-pointer test per instrumented site);
//   * -DROBUSTQO_OBS=OFF: the sites are compiled out entirely.
// Exits non-zero when the metrics overhead bound is violated.
//
// Usage: overhead_observability [--json out.json]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "core/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tpch/tpch_gen.h"
#include "util/stopwatch.h"
#include "workload/scenarios.h"

using namespace robustqo;

namespace {

constexpr int kRounds = 7;
constexpr int kItersPerRound = 12;

// Best-of-rounds wall seconds for `body` run kItersPerRound times.
template <typename Fn>
double BestRoundSeconds(Fn&& body) {
  double best = 1e100;
  Stopwatch watch;
  for (int round = 0; round < kRounds; ++round) {
    watch.Restart();
    for (int i = 0; i < kItersPerRound; ++i) body();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ConsumeJsonFlag(&argc, argv);
  core::Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.02;
  if (!tpch::LoadTpch(db.catalog(), config).ok()) return 2;
  stats::StatisticsConfig stats_config;
  stats_config.sample_size = 500;
  db.UpdateStatistics(stats_config);

  workload::ThreeTableJoinScenario scenario;
  const opt::QuerySpec query = scenario.MakeQuery(13.0);

  auto plan_and_execute = [&] {
    auto plan = db.Plan(query, core::EstimatorKind::kRobustSample);
    if (!plan.ok()) std::abort();
    core::ExecutionResult result = db.ExecutePlan(plan.value()).value();
    if (result.rows.num_rows() == 0 && result.spj_rows == 0) {
      // Keep the optimizer honest; never expected at this parameter.
      std::abort();
    }
  };

  // Warm up caches (statistics, allocator) before timing anything.
  plan_and_execute();

  const double baseline = BestRoundSeconds(plan_and_execute);

  obs::MetricsRegistry metrics;
  db.SetMetrics(&metrics);
  const double with_metrics = BestRoundSeconds(plan_and_execute);
  db.SetMetrics(nullptr);

  obs::Tracer tracer;
  db.SetTracer(&tracer);
  const double with_tracer = BestRoundSeconds([&] {
    plan_and_execute();
    tracer.Clear();  // per-query tracer lifecycle, as EXPLAIN ANALYZE uses it
  });
  db.SetTracer(nullptr);

  const double metrics_overhead = with_metrics / baseline - 1.0;
  const double tracer_overhead = with_tracer / baseline - 1.0;

#if ROBUSTQO_OBS_ENABLED
  std::printf("observability: compiled IN (ROBUSTQO_OBS=ON)\n");
#else
  std::printf(
      "observability: compiled OUT (ROBUSTQO_OBS=OFF) — attached sinks are "
      "ignored; all three configurations run identical code\n");
#endif
  std::printf("plan+execute, best of %d rounds x %d iterations:\n", kRounds,
              kItersPerRound);
  std::printf("  no sinks:         %.4f s\n", baseline);
  std::printf("  metrics attached: %.4f s  (%+.1f%%)\n", with_metrics,
              metrics_overhead * 100.0);
  std::printf("  tracer attached:  %.4f s  (%+.1f%%, informational — "
              "EXPLAIN ANALYZE path)\n",
              with_tracer, tracer_overhead * 100.0);

  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.BeginObject();
    w.Field("bench", "overhead_observability");
    w.Field("baseline_seconds", baseline);
    w.Field("with_metrics_seconds", with_metrics);
    w.Field("with_tracer_seconds", with_tracer);
    w.Field("metrics_overhead", metrics_overhead);
    w.Field("tracer_overhead", tracer_overhead);
    w.EndObject();
    if (!bench::WriteJsonFile(json_path, w.str())) return 2;
  }

  // The enforced contract. 5% is the documented bound; the measured value
  // is normally well under 1% and the headroom absorbs timer noise.
  if (metrics_overhead >= 0.05) {
    std::printf("FAIL: metrics overhead %.1f%% >= 5%%\n",
                metrics_overhead * 100.0);
    return 1;
  }
  std::printf("PASS: metrics overhead under the 5%% bound\n");
  return 0;
}
