// Flight-recorder overhead: the cost of per-request lifecycle tracing,
// the black-box ring buffer, and the SLO/regret watchdog added on top of
// the serving layer's admit/plan/execute/reduce path.
//
// The enforced contract (docs/OBSERVABILITY.md): a traffic run with the
// recorder enabled — every request gets a Tracer, a span tree, an SLO
// observation and an Offer() against the retention policy — stays under
// 5% overhead versus the identical run with request tracing off. Dump
// rendering (`.blackbox json` / `.blackbox trace`) happens on demand, so
// it is reported as an informational absolute cost, not gated.
//
// Usage: overhead_flight_recorder [--json out.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_json.h"
#include "core/database.h"
#include "obs/flight_recorder.h"
#include "obs/slo_monitor.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "workload/traffic_harness.h"

using namespace robustqo;

namespace {

constexpr int kRounds = 5;
constexpr int kItersPerRound = 3;

// Best-of-rounds wall seconds for `body` run kItersPerRound times.
template <typename Fn>
double BestRoundSeconds(Fn&& body) {
  double best = 1e100;
  Stopwatch watch;
  for (int round = 0; round < kRounds; ++round) {
    watch.Restart();
    for (int i = 0; i < kItersPerRound; ++i) body();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

std::unique_ptr<core::Database> MakeReadingsDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < 20000; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  if (!db->catalog()->AddTable(std::move(table)).ok()) std::abort();
  db->UpdateStatistics();
  return db;
}

workload::TrafficConfig MakeTraffic() {
  workload::TrafficConfig config;
  config.clients = 48;
  config.duration_seconds = 10.0;
  config.think_seconds = 5.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ConsumeJsonFlag(&argc, argv);
  const workload::TrafficConfig traffic = MakeTraffic();

  // Baseline: the serving layer with request tracing off (the recorder's
  // enabled flag gates tracer creation per request, so this is exactly
  // the pre-flight-recorder execute path).
  std::unique_ptr<core::Database> base_db = MakeReadingsDatabase();
  server::ServerConfig base_config;
  base_config.admission.max_concurrent = 8;
  base_config.admission.max_queue_depth = 128;
  server::QueryService base_service(base_db.get(), base_config);
  auto run_base = [&] {
    const workload::TrafficReport report =
        workload::RunTraffic(&base_service, traffic);
    if (report.completed == 0) std::abort();
  };

  // Instrumented: per-request tracing + ring-buffer retention + SLO/regret
  // observation on every completed request.
  std::unique_ptr<core::Database> rec_db = MakeReadingsDatabase();
  server::ServerConfig rec_config = base_config;
  rec_config.flight_recorder.enabled = true;
  server::QueryService rec_service(rec_db.get(), rec_config);
  auto run_recorded = [&] {
    const workload::TrafficReport report =
        workload::RunTraffic(&rec_service, traffic);
    if (report.completed == 0) std::abort();
  };

  // Warm both services (statistics, plan caches, allocator) untimed.
  run_base();
  run_recorded();

  const double baseline = BestRoundSeconds(run_base);
  const double with_recorder = BestRoundSeconds(run_recorded);
  const double recorder_overhead = with_recorder / baseline - 1.0;

  // On-demand dump rendering on the recorder the loop just filled.
  std::string blackbox;
  const double blackbox_render = BestRoundSeconds([&] {
                                   blackbox =
                                       rec_service.flight_recorder()->ToJson();
                                 }) /
                                 kItersPerRound;
  std::string slo_report;
  const double slo_render = BestRoundSeconds([&] {
                              slo_report =
                                  rec_service.slo_monitor()->ReportText();
                              if (slo_report.empty()) std::abort();
                            }) /
                            kItersPerRound;

#if ROBUSTQO_OBS_ENABLED
  std::printf("flight recorder: compiled IN (ROBUSTQO_OBS=ON)\n");
#else
  std::printf(
      "flight recorder: compiled OUT (ROBUSTQO_OBS=OFF) — request tracing "
      "never runs; both sides measure the bare serving path\n");
#endif
  std::printf("traffic run (%llu clients), best of %d rounds x %d "
              "iterations:\n",
              static_cast<unsigned long long>(traffic.clients), kRounds,
              kItersPerRound);
  std::printf("  tracing off:          %.4f s\n", baseline);
  std::printf("  recorder + SLO:       %.4f s  (%+.1f%%)\n", with_recorder,
              recorder_overhead * 100.0);
  std::printf("  blackbox JSON render: %.1f us/call (informational, "
              "%zu bytes, %zu traces)\n",
              blackbox_render * 1e6, blackbox.size(),
              rec_service.flight_recorder()->size());
  std::printf("  SLO report render:    %.1f us/call (informational, "
              "%zu bytes)\n",
              slo_render * 1e6, slo_report.size());

  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.BeginObject();
    w.Field("bench", "overhead_flight_recorder");
    w.Field("baseline_seconds", baseline);
    w.Field("with_recorder_seconds", with_recorder);
    w.Field("recorder_overhead", recorder_overhead);
    w.Field("blackbox_render_seconds", blackbox_render);
    w.Field("slo_report_render_seconds", slo_render);
    w.EndObject();
    if (!bench::WriteJsonFile(json_path, w.str())) return 2;
  }

  // The enforced contract. 5% is the documented bound; the spans and
  // retention bookkeeping are a small constant per request, so the
  // measured value is normally a few percent with headroom for timer
  // noise.
  if (recorder_overhead >= 0.05) {
    std::printf("FAIL: flight-recorder overhead %.1f%% >= 5%%\n",
                recorder_overhead * 100.0);
    return 1;
  }
  std::printf("PASS: flight-recorder overhead under the 5%% bound\n");
  return 0;
}
