// Learning-loop overhead: the cost of the estimation feedback loop added
// on top of the serving layer — per-request feedback-key capture at plan
// time, a FeedbackStore::Observe per completed read in the reduce phase,
// the learned-tier lookup inside every robust estimate, and the T% tuner
// retune between waves.
//
// The enforced contract (docs/LEARNING.md): a traffic run with learning
// enabled stays under 5% overhead versus the identical run with
// SET LEARNING OFF. The `.learning` report render is reported as an
// informational absolute cost, not gated.
//
// Usage: overhead_learning [--json out.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_json.h"
#include "core/database.h"
#include "learning/feedback_store.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "workload/traffic_harness.h"

using namespace robustqo;

namespace {

constexpr int kRounds = 5;
constexpr int kItersPerRound = 3;

// Best-of-rounds wall seconds for `body` run kItersPerRound times.
template <typename Fn>
double BestRoundSeconds(Fn&& body) {
  double best = 1e100;
  Stopwatch watch;
  for (int round = 0; round < kRounds; ++round) {
    watch.Restart();
    for (int i = 0; i < kItersPerRound; ++i) body();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

std::unique_ptr<core::Database> MakeReadingsDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < 20000; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  if (!db->catalog()->AddTable(std::move(table)).ok()) std::abort();
  db->UpdateStatistics();
  return db;
}

workload::TrafficConfig MakeTraffic() {
  workload::TrafficConfig config;
  config.clients = 48;
  config.duration_seconds = 10.0;
  config.think_seconds = 5.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ConsumeJsonFlag(&argc, argv);
  const workload::TrafficConfig traffic = MakeTraffic();

  // Baseline: learning off — the exact pre-learning serving path (no
  // feedback-key capture, no Observe, no learned lookups, no retune).
  std::unique_ptr<core::Database> base_db = MakeReadingsDatabase();
  server::ServerConfig base_config;
  base_config.admission.max_concurrent = 8;
  base_config.admission.max_queue_depth = 128;
  server::QueryService base_service(base_db.get(), base_config);
  base_service.SetLearningEnabled(false);
  auto run_base = [&] {
    const workload::TrafficReport report =
        workload::RunTraffic(&base_service, traffic);
    if (report.completed == 0) std::abort();
  };

  // Instrumented: the full loop — every completed read feeds the store,
  // every robust estimate consults it, the tuner retunes between waves.
  std::unique_ptr<core::Database> learn_db = MakeReadingsDatabase();
  server::QueryService learn_service(learn_db.get(), base_config);
  auto run_learning = [&] {
    const workload::TrafficReport report =
        workload::RunTraffic(&learn_service, traffic);
    if (report.completed == 0) std::abort();
  };

  // Warm both services (statistics, plan caches, allocator) untimed.
  run_base();
  run_learning();

  const double baseline = BestRoundSeconds(run_base);
  const double with_learning = BestRoundSeconds(run_learning);
  const double learning_overhead = with_learning / baseline - 1.0;

  // On-demand `.learning` render against the store the loop just filled.
  std::string report_text;
  const double report_render =
      BestRoundSeconds([&] {
        report_text = learn_service.LearningReportText();
        if (report_text.empty()) std::abort();
      }) /
      kItersPerRound;

  std::printf("traffic run (%llu clients), best of %d rounds x %d "
              "iterations:\n",
              static_cast<unsigned long long>(traffic.clients), kRounds,
              kItersPerRound);
  std::printf("  learning off:          %.4f s\n", baseline);
  std::printf("  learning on:           %.4f s  (%+.1f%%)\n", with_learning,
              learning_overhead * 100.0);
  std::printf("  .learning render:      %.1f us/call (informational, "
              "%zu bytes, %zu fingerprints, %llu observations)\n",
              report_render * 1e6, report_text.size(),
              learn_service.feedback_store()->fingerprints_tracked(),
              static_cast<unsigned long long>(
                  learn_service.feedback_store()->observations_total()));

  if (!json_path.empty()) {
    bench::JsonWriter w;
    w.BeginObject();
    w.Field("bench", "overhead_learning");
    w.Field("baseline_seconds", baseline);
    w.Field("with_learning_seconds", with_learning);
    w.Field("learning_overhead", learning_overhead);
    w.Field("report_render_seconds", report_render);
    w.EndObject();
    if (!bench::WriteJsonFile(json_path, w.str())) return 2;
  }

  // The enforced contract. The loop adds one map lookup per robust
  // estimate and one map upsert per completed read — a small constant per
  // request, so the measured value is normally a couple of percent with
  // headroom for timer noise.
  if (learning_overhead >= 0.05) {
    std::printf("FAIL: learning overhead %.1f%% >= 5%%\n",
                learning_overhead * 100.0);
    return 1;
  }
  std::printf("PASS: learning overhead under the 5%% bound\n");
  return 0;
}
