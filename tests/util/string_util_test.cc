#include "util/string_util.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace {

TEST(StrPrintfTest, FormatsBasicTypes) {
  EXPECT_EQ(StrPrintf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
}

TEST(StrPrintfTest, EmptyFormat) { EXPECT_EQ(StrPrintf("%s", ""), ""); }

TEST(StrPrintfTest, LongOutput) {
  std::string long_arg(5000, 'a');
  std::string out = StrPrintf("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrJoinTest, SingleAndEmpty) {
  EXPECT_EQ(StrJoin({"only"}, "-"), "only");
  EXPECT_EQ(StrJoin({}, "-"), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("lineitem", "line"));
  EXPECT_FALSE(StartsWith("line", "lineitem"));
  EXPECT_TRUE(EndsWith("lineitem", "item"));
  EXPECT_FALSE(EndsWith("item", "lineitem"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ContainsTest, Basics) {
  EXPECT_TRUE(Contains("hello world", "lo wo"));
  EXPECT_FALSE(Contains("hello", "world"));
  EXPECT_TRUE(Contains("abc", ""));
}

}  // namespace
}  // namespace robustqo
