#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace robustqo {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerateProbabilities) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithReplacementSizeAndRange) {
  Rng rng(29);
  auto sample = rng.SampleWithReplacement(50, 500);
  EXPECT_EQ(sample.size(), 500u);
  for (uint64_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(1000, 200);
  EXPECT_EQ(sample.size(), 200u);
  std::set<uint64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 200u);
  for (uint64_t v : sample) EXPECT_LT(v, 1000u);
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(64, 64);
  std::set<uint64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 64u);
}

TEST(RngTest, SampleWithReplacementIsUniform) {
  Rng rng(41);
  std::vector<int> counts(10, 0);
  auto sample = rng.SampleWithReplacement(10, 100000);
  for (uint64_t v : sample) ++counts[v];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(47);
  Rng child = a.Fork();
  // The child stream differs from the parent's continuation.
  EXPECT_NE(child.Next(), a.Next());
}

}  // namespace
}  // namespace robustqo
