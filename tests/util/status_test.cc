#include "util/status.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::NotFound("missing row").message(), "missing row");
}

TEST(StatusTest, RobustnessCodesRenderDistinctly) {
  EXPECT_EQ(Status::Unavailable("sample gone").ToString(),
            "Unavailable: sample gone");
  EXPECT_EQ(Status::ResourceExhausted("budget").ToString(),
            "ResourceExhausted: budget");
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "Cancelled: stop");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STRNE(StatusCodeName(StatusCode::kNotFound),
               StatusCodeName(StatusCode::kInternal));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Result<int> r(Status::NotFound("gone"));
  EXPECT_DEATH({ (void)r.value(); }, "NotFound");
}

TEST(ResultDeathTest, OkStatusPayloadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH({ Result<int> r{Status::OK()}; }, "without a value");
}

TEST(ResultTest, MutableValueAccess) {
  Result<std::string> r(std::string("abc"));
  r.value() += "d";
  EXPECT_EQ(r.value(), "abcd");
}

}  // namespace
}  // namespace robustqo
