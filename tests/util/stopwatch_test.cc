#include "util/stopwatch.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace {

TEST(MonotonicClockTest, IsCompileTimeMonotonic) {
  static_assert(MonotonicClock::kIsMonotonic);
}

TEST(MonotonicClockTest, NeverDecreases) {
  const MonotonicClock* clock = MonotonicClock::Instance();
  uint64_t prev = clock->NowNanos();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = clock->NowNanos();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

TEST(ManualClockTest, AdvancesOnlyWhenTold) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowNanos(), 100u);
  EXPECT_EQ(clock.NowNanos(), 100u);
  clock.AdvanceNanos(50);
  EXPECT_EQ(clock.NowNanos(), 150u);
  clock.AdvanceSeconds(2.0);
  EXPECT_EQ(clock.NowNanos(), 150u + 2'000'000'000u);
}

TEST(StopwatchTest, ElapsedTracksInjectedClock) {
  ManualClock clock;
  Stopwatch watch(&clock);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 0.0);
  clock.AdvanceSeconds(1.5);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(watch.ElapsedMicros(), 1.5e6);
  watch.Restart();
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 0.0);
  clock.AdvanceSeconds(0.25);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 0.25);
}

TEST(StopwatchTest, LapMeasuresSplitsWithoutMovingStart) {
  ManualClock clock;
  Stopwatch watch(&clock);
  clock.AdvanceSeconds(1.0);
  EXPECT_DOUBLE_EQ(watch.Lap(), 1.0);
  clock.AdvanceSeconds(2.0);
  EXPECT_DOUBLE_EQ(watch.Lap(), 2.0);
  // Laps consumed 3 s but the start point is untouched.
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 3.0);
  // A lap with no time passed is zero.
  EXPECT_DOUBLE_EQ(watch.Lap(), 0.0);
}

TEST(StopwatchTest, RestartResetsLapPoint) {
  ManualClock clock;
  Stopwatch watch(&clock);
  clock.AdvanceSeconds(5.0);
  watch.Restart();
  clock.AdvanceSeconds(1.0);
  EXPECT_DOUBLE_EQ(watch.Lap(), 1.0);
}

TEST(StopwatchTest, RealClockElapsedIsNonNegative) {
  Stopwatch watch;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  EXPECT_GE(watch.Lap(), 0.0);
}

}  // namespace
}  // namespace robustqo
