// TaskPool: coverage, ordered reduction, worker ids, seeding, and the
// global thread-count knob.

#include "perf/task_pool.h"

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace robustqo {
namespace perf {
namespace {

TEST(TaskPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    TaskPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(TaskPoolTest, EmptyAndSingleBatches) {
  TaskPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(TaskPoolTest, MapPreservesIndexOrder) {
  TaskPool pool(4);
  std::vector<int> out =
      pool.Map<int>(100, [](size_t i) { return static_cast<int>(i * i); });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(TaskPoolTest, ResultsIdenticalAcrossThreadCounts) {
  // The determinism contract, in miniature: a seeded per-task computation
  // reduced in index order gives bit-identical results at every width.
  auto run = [](unsigned threads) {
    TaskPool pool(threads);
    std::vector<uint64_t> slots(64);
    pool.ParallelFor(slots.size(), [&](size_t i) {
      Rng rng(TaskSeed(42, i));
      uint64_t acc = 0;
      for (int k = 0; k < 100; ++k) acc += rng.Next();
      slots[i] = acc;
    });
    return slots;
  };
  const std::vector<uint64_t> expected = run(1);
  EXPECT_EQ(expected, run(2));
  EXPECT_EQ(expected, run(4));
  EXPECT_EQ(expected, run(8));
}

TEST(TaskPoolTest, WorkerIdsAreInRange) {
  TaskPool pool(4);
  std::vector<unsigned> worker_of(500);
  pool.ParallelForWorker(worker_of.size(),
                         [&](unsigned worker, size_t i) {
                           ASSERT_LT(worker, pool.threads());
                           worker_of[i] = worker;
                         });
  // All indices were assigned to some valid worker.
  for (unsigned w : worker_of) EXPECT_LT(w, 4u);
}

TEST(TaskPoolTest, TaskSeedStreamsAreDistinct) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 1000; ++i) seeds.insert(TaskSeed(7, i));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(TaskSeed(7, 0), TaskSeed(8, 0));
}

TEST(TaskPoolTest, GlobalPoolFollowsThreadCountKnob) {
  const unsigned before = ThreadCount();
  SetThreadCount(3);
  EXPECT_EQ(ThreadCount(), 3u);
  EXPECT_EQ(TaskPool::Global()->threads(), 3u);
  SetThreadCount(1);
  EXPECT_EQ(TaskPool::Global()->threads(), 1u);
  SetThreadCount(before);
}

}  // namespace
}  // namespace perf
}  // namespace robustqo
