// Canonical expression fingerprints: structural equality, AND/OR child
// order insensitivity, and collision sanity over distinct predicates.

#include "perf/fingerprint.h"

#include <set>
#include <vector>

#include "expr/expression.h"
#include "gtest/gtest.h"
#include "storage/value.h"

namespace robustqo {
namespace perf {
namespace {

using expr::And;
using expr::Between;
using expr::Col;
using expr::Eq;
using expr::ExprPtr;
using expr::Gt;
using expr::LitDouble;
using expr::LitInt;
using expr::LitString;
using expr::Lt;
using expr::Not;
using expr::Or;
using expr::StringContains;
using storage::Value;

TEST(FingerprintTest, StructurallyEqualTreesCollide) {
  const ExprPtr a = And({Lt(Col("x"), LitInt(5)), Eq(Col("s"), LitString("a"))});
  const ExprPtr b = And({Lt(Col("x"), LitInt(5)), Eq(Col("s"), LitString("a"))});
  EXPECT_EQ(FingerprintExpr(*a), FingerprintExpr(*b));
}

TEST(FingerprintTest, AndOrChildOrderIsCanonical) {
  const ExprPtr p = Lt(Col("x"), LitInt(5));
  const ExprPtr q = Gt(Col("y"), LitDouble(0.5));
  const ExprPtr r = StringContains(Col("s"), "foo");
  EXPECT_EQ(FingerprintExpr(*And({p, q, r})), FingerprintExpr(*And({r, p, q})));
  EXPECT_EQ(FingerprintExpr(*Or({p, q})), FingerprintExpr(*Or({q, p})));
  // ...but AND and OR over the same children must not collide.
  EXPECT_NE(FingerprintExpr(*And({p, q})), FingerprintExpr(*Or({p, q})));
}

TEST(FingerprintTest, DistinctPredicatesGetDistinctFingerprints) {
  std::vector<ExprPtr> preds = {
      Lt(Col("x"), LitInt(5)),
      Lt(Col("x"), LitInt(6)),
      Lt(Col("x"), LitDouble(5.0)),  // same number, different type tag
      Lt(Col("y"), LitInt(5)),
      Gt(Col("x"), LitInt(5)),
      Lt(LitInt(5), Col("x")),  // operand order matters for comparisons
      Between(Col("x"), Value::Int64(1), Value::Int64(5)),
      Not(Lt(Col("x"), LitInt(5))),
      StringContains(Col("s"), "foo"),
      StringContains(Col("s"), "bar"),
      And({}),
      Or({}),
      nullptr,  // no predicate (TRUE) has its own reserved fingerprint
  };
  std::set<uint64_t> fps;
  for (const ExprPtr& p : preds) fps.insert(FingerprintExpr(p));
  EXPECT_EQ(fps.size(), preds.size());
}

TEST(FingerprintTest, DeterministicAcrossCalls) {
  const ExprPtr p =
      And({Between(Col("d"), Value::Date(100), Value::Date(200)),
           Or({Eq(Col("a"), LitInt(3)), StringContains(Col("s"), "x")})});
  const uint64_t first = FingerprintExpr(*p);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(FingerprintExpr(*p), first);
}

}  // namespace
}  // namespace perf
}  // namespace robustqo
