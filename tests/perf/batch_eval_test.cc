// Batch predicate evaluation must agree with the scalar expression
// interpreter bit-for-bit: every kernel path (column-vs-literal compares in
// all type pairings, BETWEEN, AND/OR/NOT bitmaps, string contains) and the
// per-row fallback (arithmetic, column-vs-column) are property-tested
// against expr::CountSatisfying / EvaluateBool on randomized tables.

#include "perf/batch_eval.h"

#include <string>
#include <vector>

#include "expr/expression.h"
#include "gtest/gtest.h"
#include "storage/table.h"
#include "util/rng.h"

namespace robustqo {
namespace perf {
namespace {

using expr::And;
using expr::Between;
using expr::Col;
using expr::Compare;
using expr::CompareOp;
using expr::Eq;
using expr::ExprPtr;
using expr::Ge;
using expr::Gt;
using expr::Le;
using expr::Lit;
using expr::LitDouble;
using expr::LitInt;
using expr::LitString;
using expr::Lt;
using expr::Ne;
using expr::Not;
using expr::Or;
using expr::StringContains;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

Table MakeRandomTable(uint64_t seed, size_t rows) {
  Table table("t", Schema({{"a", DataType::kInt64},
                           {"b", DataType::kDouble},
                           {"s", DataType::kString},
                           {"d", DataType::kDate}}));
  Rng rng(seed);
  const std::vector<std::string> words = {"alpha", "beta",  "gamma", "delta",
                                          "epsln", "zeta",  "",      "beta2",
                                          "ALPHA", "a b c", "xyzzy", "betamax"};
  for (size_t i = 0; i < rows; ++i) {
    table.AppendRow(
        {Value::Int64(rng.NextInRange(-20, 20)),
         Value::Double(rng.NextDoubleInRange(-2.0, 2.0)),
         Value::String(words[rng.NextBounded(words.size())]),
         Value::Date(rng.NextInRange(0, 50))});
  }
  return table;
}

// Verifies popcount AND per-row mask against the scalar interpreter.
void ExpectMatchesScalar(const ExprPtr& pred, const Table& table) {
  std::vector<uint8_t> mask;
  const uint64_t batch = BatchEvaluateMask(*pred, table, &mask);
  const uint64_t scalar = expr::CountSatisfying(*pred, table);
  ASSERT_EQ(batch, scalar) << pred->ToString();
  ASSERT_EQ(mask.size(), table.num_rows());
  for (storage::Rid rid = 0; rid < table.num_rows(); ++rid) {
    EXPECT_EQ(mask[rid] != 0, pred->EvaluateBool(table, rid))
        << pred->ToString() << " row " << rid;
  }
  EXPECT_EQ(BatchCountSatisfying(*pred, table), scalar);
}

class BatchEvalTest : public ::testing::Test {
 protected:
  BatchEvalTest() : table_(MakeRandomTable(17, 200)) {}
  Table table_;
};

TEST_F(BatchEvalTest, ComparisonKernelsAllOpsAllTypePairs) {
  const std::vector<CompareOp> ops = {CompareOp::kEq, CompareOp::kNe,
                                      CompareOp::kLt, CompareOp::kLe,
                                      CompareOp::kGt, CompareOp::kGe};
  const std::vector<std::pair<std::string, Value>> pairs = {
      {"a", Value::Int64(3)},        // int64 vs int64 — exact path
      {"a", Value::Double(2.5)},     // int64 vs double — widened path
      {"b", Value::Double(0.25)},    // double vs double
      {"b", Value::Int64(1)},        // double vs int64
      {"d", Value::Date(25)},        // date vs date — exact path
      {"d", Value::Int64(25)},       // date vs int64 — exact path
      {"s", Value::String("beta")},  // string vs string
  };
  for (CompareOp op : ops) {
    for (const auto& [col, lit] : pairs) {
      ExpectMatchesScalar(Compare(op, Col(col), Lit(lit)), table_);
      // Literal-on-the-left uses the flipped kernel.
      ExpectMatchesScalar(Compare(op, Lit(lit), Col(col)), table_);
    }
  }
}

TEST_F(BatchEvalTest, BetweenKernels) {
  ExpectMatchesScalar(Between(Col("a"), Value::Int64(-5), Value::Int64(5)),
                      table_);
  ExpectMatchesScalar(Between(Col("a"), Value::Int64(5), Value::Int64(-5)),
                      table_);  // empty range
  ExpectMatchesScalar(
      Between(Col("a"), Value::Double(-4.5), Value::Int64(12)), table_);
  ExpectMatchesScalar(
      Between(Col("b"), Value::Double(-0.5), Value::Double(0.5)), table_);
  ExpectMatchesScalar(Between(Col("d"), Value::Date(10), Value::Date(30)),
                      table_);
  ExpectMatchesScalar(
      Between(Col("s"), Value::String("b"), Value::String("c")), table_);
}

TEST_F(BatchEvalTest, BooleanConnectives) {
  const ExprPtr p = Lt(Col("a"), LitInt(0));
  const ExprPtr q = Gt(Col("b"), LitDouble(0.0));
  const ExprPtr r = StringContains(Col("s"), "a");
  ExpectMatchesScalar(And({p, q}), table_);
  ExpectMatchesScalar(Or({p, q, r}), table_);
  ExpectMatchesScalar(Not(p), table_);
  ExpectMatchesScalar(Not(And({p, Not(Or({q, r}))})), table_);
  ExpectMatchesScalar(And({}), table_);  // TRUE
  ExpectMatchesScalar(Or({}), table_);   // FALSE
}

TEST_F(BatchEvalTest, StringContainsKernel) {
  ExpectMatchesScalar(StringContains(Col("s"), "beta"), table_);
  ExpectMatchesScalar(StringContains(Col("s"), ""), table_);  // always true
  ExpectMatchesScalar(StringContains(Col("s"), "nope-never"), table_);
  ExpectMatchesScalar(StringContains(Col("s"), "a b"), table_);
}

TEST_F(BatchEvalTest, FallbackPathsMatchScalar) {
  // Arithmetic and column-vs-column comparisons have no kernel; they run
  // through the per-row fallback inside the same bitmap machinery.
  ExpectMatchesScalar(
      Lt(expr::Arith(expr::ArithOp::kAdd, Col("a"), LitInt(3)), LitInt(0)),
      table_);
  ExpectMatchesScalar(Gt(Col("a"), Col("d")), table_);
  ExpectMatchesScalar(
      And({Lt(Col("b"),
              expr::Arith(expr::ArithOp::kMul, Col("a"), LitDouble(0.1))),
           Ne(Col("s"), LitString(""))}),
      table_);
}

TEST_F(BatchEvalTest, EmptyTable) {
  Table empty("e", Schema({{"a", DataType::kInt64}}));
  std::vector<uint8_t> mask = {1, 2, 3};  // must be resized to zero
  EXPECT_EQ(BatchEvaluateMask(*Lt(Col("a"), LitInt(0)), empty, &mask), 0u);
  EXPECT_TRUE(mask.empty());
}

TEST_F(BatchEvalTest, RandomizedPredicateProperty) {
  // Fuzz: random shallow predicate trees over random tables must always
  // agree with the scalar interpreter.
  Rng rng(99);
  const std::vector<std::string> needles = {"a", "beta", "z", ""};
  auto random_leaf = [&]() -> ExprPtr {
    switch (rng.NextBounded(5)) {
      case 0:
        return Compare(static_cast<CompareOp>(rng.NextBounded(6)), Col("a"),
                       LitInt(rng.NextInRange(-20, 20)));
      case 1:
        return Compare(static_cast<CompareOp>(rng.NextBounded(6)), Col("b"),
                       LitDouble(rng.NextDoubleInRange(-2.0, 2.0)));
      case 2:
        return Between(Col("d"), Value::Date(rng.NextInRange(0, 25)),
                       Value::Date(rng.NextInRange(25, 50)));
      case 3:
        return StringContains(Col("s"), needles[rng.NextBounded(4)]);
      default:
        return Compare(static_cast<CompareOp>(rng.NextBounded(6)),
                       LitInt(rng.NextInRange(-20, 20)), Col("a"));
    }
  };
  for (int trial = 0; trial < 50; ++trial) {
    Table table = MakeRandomTable(1000 + trial, 64 + rng.NextBounded(64));
    std::vector<ExprPtr> leaves;
    const size_t n = 1 + rng.NextBounded(4);
    for (size_t i = 0; i < n; ++i) leaves.push_back(random_leaf());
    ExprPtr pred;
    switch (rng.NextBounded(3)) {
      case 0:
        pred = And(leaves);
        break;
      case 1:
        pred = Or(leaves);
        break;
      default:
        pred = Not(And(leaves));
        break;
    }
    ExpectMatchesScalar(pred, table);
  }
}

}  // namespace
}  // namespace perf
}  // namespace robustqo
