// The memo layers must be invisible to the numerics: a cached inverse-Beta
// quantile or (k, n) probe count is bit-identical to the uncached
// computation, including across LRU eviction boundaries.

#include "perf/caches.h"

#include <vector>

#include "gtest/gtest.h"
#include "stats_math/beta_distribution.h"

namespace robustqo {
namespace perf {
namespace {

TEST(ProbeCountCacheTest, MissThenHit) {
  ProbeCountCache cache;
  EXPECT_FALSE(cache.Lookup("sample:lineitem", 0xabcu).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert("sample:lineitem", 0xabcu, {7, 100});
  auto hit = cache.Lookup("sample:lineitem", 0xabcu);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->satisfying, 7u);
  EXPECT_EQ(hit->sample_size, 100u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProbeCountCacheTest, SourcesDoNotShareEntries) {
  ProbeCountCache cache;
  cache.Insert("sample:orders", 1u, {1, 10});
  cache.Insert("sample:lineitem", 1u, {9, 10});
  EXPECT_EQ(cache.Lookup("sample:orders", 1u)->satisfying, 1u);
  EXPECT_EQ(cache.Lookup("sample:lineitem", 1u)->satisfying, 9u);
  // Same source, different fingerprint is also distinct.
  EXPECT_FALSE(cache.Lookup("sample:orders", 2u).has_value());
}

TEST(ProbeCountCacheTest, ClearDropsEntriesAndCounters) {
  ProbeCountCache cache;
  cache.Insert("s", 1u, {1, 2});
  (void)cache.Lookup("s", 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.Lookup("s", 1u).has_value());
}

// Cached vs uncached cdf^{-1} identity — the estimator swaps
// EstimateAtConfidence for the memoized lookup, so any divergence here
// would silently change every estimate.
TEST(InverseBetaCacheTest, CachedEqualsUncachedBitwise) {
  InverseBetaCache cache;
  const double p = 0.8;
  for (double alpha : {0.5, 1.0, 3.5, 200.0}) {
    for (double beta : {0.5, 2.0, 77.25, 1000.0}) {
      const double direct = math::BetaDistribution(alpha, beta).InverseCdf(p);
      bool hit = true;
      EXPECT_EQ(cache.Value(alpha, beta, p, &hit), direct);
      EXPECT_FALSE(hit);
      EXPECT_EQ(cache.Value(alpha, beta, p, &hit), direct);  // now cached
      EXPECT_TRUE(hit);
    }
  }
}

TEST(InverseBetaCacheTest, IdenticalAcrossEvictionBoundaries) {
  // Capacity 4, 16 distinct keys: every key is evicted and recomputed
  // multiple times. Recomputed values must equal the first computation
  // exactly (same input bits -> same Newton iteration -> same output).
  InverseBetaCache cache(4);
  const double p = 0.95;
  std::vector<double> first(16);
  for (int i = 0; i < 16; ++i) {
    first[i] = cache.Value(0.5 + i, 10.5 + i, p);
  }
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(cache.Value(0.5 + i, 10.5 + i, p), first[i])
          << "key " << i << " round " << round;
      EXPECT_EQ(cache.Value(0.5 + i, 10.5 + i, p),
                math::BetaDistribution(0.5 + i, 10.5 + i).InverseCdf(p));
    }
  }
  EXPECT_LE(cache.size(), 4u);
}

TEST(InverseBetaCacheTest, LruEvictsLeastRecentlyUsed) {
  InverseBetaCache cache(2);
  bool hit = false;
  cache.Value(1.0, 1.0, 0.5);  // A
  cache.Value(2.0, 2.0, 0.5);  // B
  cache.Value(1.0, 1.0, 0.5, &hit);  // touch A -> B is now LRU
  EXPECT_TRUE(hit);
  cache.Value(3.0, 3.0, 0.5);  // C evicts B
  cache.Value(1.0, 1.0, 0.5, &hit);
  EXPECT_TRUE(hit);  // A survived
  cache.Value(2.0, 2.0, 0.5, &hit);
  EXPECT_FALSE(hit);  // B was evicted
}

TEST(InverseBetaCacheTest, SetCapacityShrinksImmediately) {
  InverseBetaCache cache(8);
  for (int i = 0; i < 8; ++i) cache.Value(1.0 + i, 2.0, 0.5);
  EXPECT_EQ(cache.size(), 8u);
  cache.set_capacity(3);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.capacity(), 3u);
  // Capacity 0 is clamped to 1 so the cache stays usable.
  cache.set_capacity(0);
  EXPECT_EQ(cache.capacity(), 1u);
  bool hit = true;
  cache.Value(42.0, 43.0, 0.5, &hit);
  EXPECT_FALSE(hit);
  cache.Value(42.0, 43.0, 0.5, &hit);
  EXPECT_TRUE(hit);
}

TEST(InverseBetaCacheTest, DistinctPercentilesAreDistinctKeys) {
  InverseBetaCache cache;
  const double lo = cache.Value(2.0, 8.0, 0.5);
  const double hi = cache.Value(2.0, 8.0, 0.95);
  EXPECT_LT(lo, hi);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace perf
}  // namespace robustqo
