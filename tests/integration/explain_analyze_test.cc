// EXPLAIN ANALYZE end to end: per-operator actuals must agree with an
// independent execution of the same query, the report must carry the
// estimator's per-predicate evidence, and the JSON snapshot must be
// byte-identical across same-seed runs. In a -DROBUSTQO_OBS=OFF build the
// report still works but carries no execution trace — asserted too.

#include "core/explain_analyze.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "obs/metrics.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

namespace robustqo {
namespace core {
namespace {

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.01;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
    stats::StatisticsConfig stats_config;
    stats_config.seed = 7;
    db_->UpdateStatistics(stats_config);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* ExplainAnalyzeTest::db_ = nullptr;

TEST_F(ExplainAnalyzeTest, ThreeTableJoinActualsMatchExecutor) {
  workload::ThreeTableJoinScenario scenario;
  const opt::QuerySpec query = scenario.MakeQuery(0.0);

  auto analyzed = ExplainAnalyze(db_, query, EstimatorKind::kRobustSample);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  const AnalyzedPlan& plan = analyzed.value();

  // Independent execution of the same query for cross-checking.
  auto executed = db_->Execute(query, EstimatorKind::kRobustSample);
  ASSERT_TRUE(executed.ok());

  EXPECT_EQ(plan.plan_label, executed.value().plan_label);
  EXPECT_EQ(plan.actual_rows, executed.value().rows.num_rows());
  EXPECT_EQ(plan.actual_spj_rows, executed.value().spj_rows);
  EXPECT_DOUBLE_EQ(plan.actual_cost_seconds,
                   executed.value().simulated_seconds);
  EXPECT_GE(plan.spj_q_error, 1.0);

  // Three base tables + at least one join + the aggregate.
  ASSERT_GE(plan.operators.size(), 5u);
  EXPECT_EQ(plan.operators.front().depth, 0);

#if ROBUSTQO_OBS_ENABLED
  EXPECT_TRUE(plan.instrumented);
  for (const OperatorReport& op : plan.operators) {
    EXPECT_TRUE(op.executed) << op.describe;
    EXPECT_GE(op.subtree_cost_seconds, op.self_cost_seconds);
  }
  // The plan root's traced rows are the query's result rows, and the
  // aggregate's input (its child's traced rows) is the SPJ result size the
  // executor reported.
  EXPECT_EQ(plan.operators.front().actual_rows, plan.actual_rows);
  ASSERT_GE(plan.operators.size(), 2u);
  EXPECT_EQ(plan.operators[1].actual_rows, plan.actual_spj_rows);
  // The root subtree's simulated cost is the whole query's cost.
  EXPECT_NEAR(plan.operators.front().subtree_cost_seconds,
              plan.actual_cost_seconds, 1e-9);

  // Per-predicate estimation evidence from the robust estimator: at least
  // one record with a k-of-n sample observation, its Beta posterior, and
  // the confidence threshold it was inverted at.
  ASSERT_FALSE(plan.predicates.empty());
  bool found_sample = false;
  for (const PredicateReport& p : plan.predicates) {
    if (p.has_sample) {
      found_sample = true;
      EXPECT_GT(p.sample_n, 0u);
      EXPECT_LE(p.sample_k, p.sample_n);
      EXPECT_GT(p.posterior_alpha, 0.0);
      EXPECT_GT(p.posterior_beta, 0.0);
      EXPECT_GT(p.confidence_threshold, 0.0);
      EXPECT_GE(p.selectivity, 0.0);
    }
  }
  EXPECT_TRUE(found_sample);
#else
  EXPECT_FALSE(plan.instrumented);
  for (const OperatorReport& op : plan.operators) {
    EXPECT_FALSE(op.executed);
  }
  EXPECT_TRUE(plan.predicates.empty());
#endif

  // The text rendering carries the headline numbers in all builds.
  const std::string text = plan.ToText();
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("SPJ rows"), std::string::npos);
  EXPECT_NE(text.find(plan.plan_label), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, EstimatedRowsAnnotatedOnEveryPlanOperator) {
  workload::ThreeTableJoinScenario scenario;
  auto analyzed =
      ExplainAnalyze(db_, scenario.MakeQuery(0.0), EstimatorKind::kRobustSample);
  ASSERT_TRUE(analyzed.ok());
  for (const OperatorReport& op : analyzed.value().operators) {
    EXPECT_GE(op.estimated_rows, 0.0) << op.describe;
  }
}

TEST_F(ExplainAnalyzeTest, JsonSnapshotIsByteIdenticalAcrossRuns) {
  workload::ThreeTableJoinScenario scenario;
  const opt::QuerySpec query = scenario.MakeQuery(2.0);
  auto first = ExplainAnalyze(db_, query, EstimatorKind::kRobustSample);
  auto second = ExplainAnalyze(db_, query, EstimatorKind::kRobustSample);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().ToJson(), second.value().ToJson());
  EXPECT_EQ(first.value().ToText(), second.value().ToText());
  EXPECT_EQ(first.value().ToDot(), second.value().ToDot());
}

TEST_F(ExplainAnalyzeTest, HistogramEstimatorReportsAviEvidence) {
  workload::ThreeTableJoinScenario scenario;
  auto analyzed = ExplainAnalyze(db_, scenario.MakeQuery(0.0),
                                 EstimatorKind::kHistogram);
  ASSERT_TRUE(analyzed.ok());
#if ROBUSTQO_OBS_ENABLED
  bool found_avi = false;
  for (const PredicateReport& p : analyzed.value().predicates) {
    if (p.source == "histogram-avi") found_avi = true;
  }
  EXPECT_TRUE(found_avi);
#endif
}

TEST_F(ExplainAnalyzeTest, DotOutputIsAWellFormedDigraph) {
  workload::ThreeTableJoinScenario scenario;
  auto analyzed =
      ExplainAnalyze(db_, scenario.MakeQuery(0.0), EstimatorKind::kRobustSample);
  ASSERT_TRUE(analyzed.ok());
  const std::string dot = analyzed.value().ToDot();
  EXPECT_NE(dot.find("digraph plan {"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST_F(ExplainAnalyzeTest, DatabaseMetricsSinkCountsQueries) {
  obs::MetricsRegistry registry;
  db_->SetMetrics(&registry);
  workload::SingleTableScenario scenario;
  auto result =
      db_->Execute(scenario.MakeQuery(10), EstimatorKind::kRobustSample);
  db_->SetMetrics(nullptr);
  ASSERT_TRUE(result.ok());
#if ROBUSTQO_OBS_ENABLED
  EXPECT_EQ(registry.GetCounter("db.queries_planned")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("db.queries_executed")->value(), 1u);
  EXPECT_GT(registry.GetCounter("exec.operators_run")->value(), 0u);
  EXPECT_GT(registry.GetCounter("optimizer.estimate_calls")->value(), 0u);
#else
  EXPECT_EQ(registry.GetCounter("db.queries_planned")->value(), 0u);
#endif
}

TEST_F(ExplainAnalyzeTest, ErrorsPropagate) {
  opt::QuerySpec bad;
  bad.tables.push_back({"no_such_table", nullptr});
  EXPECT_FALSE(ExplainAnalyze(db_, bad).ok());
}

}  // namespace
}  // namespace core
}  // namespace robustqo
