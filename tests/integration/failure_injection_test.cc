// Failure injection: the optimizer must keep producing correct, executable
// plans when its statistics inputs degrade or its estimator fails outright
// (paper Section 3.5: estimation falls back; errors stay confined).

#include <gtest/gtest.h>

#include "core/database.h"
#include "statistics/cardinality_estimator.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

namespace robustqo {
namespace {

// An estimator that always fails — models a broken/absent statistics
// subsystem.
class AlwaysFailingEstimator : public stats::CardinalityEstimator {
 public:
  Result<double> EstimateRows(
      const stats::CardinalityRequest& /*request*/) override {
    return Status::Internal("statistics subsystem unavailable");
  }
  std::string name() const override { return "always-failing"; }
};

// An estimator that answers garbage (negative / NaN-free but absurd).
class AdversarialEstimator : public stats::CardinalityEstimator {
 public:
  explicit AdversarialEstimator(double answer) : answer_(answer) {}
  Result<double> EstimateRows(
      const stats::CardinalityRequest& /*request*/) override {
    return answer_;
  }
  std::string name() const override { return "adversarial"; }

 private:
  double answer_;
};

class FailureInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new core::Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
    db_->UpdateStatistics();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  double ReferenceAnswer(const opt::QuerySpec& query) {
    auto result = db_->Execute(query, core::EstimatorKind::kRobustSample);
    EXPECT_TRUE(result.ok());
    return result.value().rows.ValueAt(0, 0).AsDouble();
  }

  static core::Database* db_;
};

core::Database* FailureInjectionTest::db_ = nullptr;

TEST_F(FailureInjectionTest, FailingEstimatorStillYieldsCorrectPlan) {
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(70);
  const double expected = ReferenceAnswer(query);

  AlwaysFailingEstimator broken;
  opt::Optimizer optimizer(db_->catalog(), &broken);
  auto plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  exec::ExecContext ctx;
  ctx.catalog = db_->catalog();
  storage::Table out = plan.value().root->Execute(&ctx).value();
  EXPECT_NEAR(out.ValueAt(0, 0).AsDouble(), expected,
              1e-6 * std::max(1.0, expected));
}

TEST_F(FailureInjectionTest, FailingEstimatorOnJoins) {
  workload::ThreeTableJoinScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(12.0);
  const double expected = ReferenceAnswer(query);
  AlwaysFailingEstimator broken;
  opt::Optimizer optimizer(db_->catalog(), &broken);
  auto plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok());
  exec::ExecContext ctx;
  ctx.catalog = db_->catalog();
  storage::Table out = plan.value().root->Execute(&ctx).value();
  EXPECT_NEAR(out.ValueAt(0, 0).AsDouble(), expected,
              1e-6 * std::max(1.0, expected));
}

TEST_F(FailureInjectionTest, AdversarialEstimatesNeverBreakCorrectness) {
  // Plans may be terrible, but answers must stay right.
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(64);
  const double expected = ReferenceAnswer(query);
  for (double answer : {0.0, 1.0, 1e12}) {
    AdversarialEstimator adversary(answer);
    opt::Optimizer optimizer(db_->catalog(), &adversary);
    auto plan = optimizer.Optimize(query);
    ASSERT_TRUE(plan.ok()) << "answer=" << answer;
    exec::ExecContext ctx;
    ctx.catalog = db_->catalog();
    storage::Table out = plan.value().root->Execute(&ctx).value();
    EXPECT_NEAR(out.ValueAt(0, 0).AsDouble(), expected,
                1e-6 * std::max(1.0, expected))
        << "answer=" << answer;
  }
}

TEST_F(FailureInjectionTest, NoStatisticsAtAllStillWorks) {
  // Fresh database, data loaded, UPDATE STATISTICS never ran: every
  // estimate must fall through to the magic numbers/distribution and the
  // query must still execute correctly.
  core::Database fresh;
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  ASSERT_TRUE(tpch::LoadTpch(fresh.catalog(), config).ok());
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(70);
  for (auto kind : {core::EstimatorKind::kHistogram,
                    core::EstimatorKind::kRobustSample}) {
    auto result = fresh.Execute(query, kind);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().rows.num_rows(), 1u);
  }
}

TEST_F(FailureInjectionTest, StatisticsOnStaleDataStillCorrect) {
  // Statistics built before additional inserts: estimates are stale but
  // execution runs against current data and must reflect it.
  core::Database fresh;
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  ASSERT_TRUE(tpch::LoadTpch(fresh.catalog(), config).ok());
  fresh.UpdateStatistics();
  // "Insert" new rows by appending to lineitem (copies of row 0 with a
  // ship date far outside every window).
  storage::Table* lineitem = fresh.catalog()->GetMutableTable("lineitem");
  const uint64_t before = lineitem->num_rows();
  std::vector<storage::Value> row = lineitem->RowAt(0);
  for (int i = 0; i < 100; ++i) lineitem->AppendRow(row);
  // Indexes are stale too — rebuild them (the catalog's responsibility).
  ASSERT_TRUE(fresh.catalog()->BuildIndex("lineitem", "l_shipdate").ok());
  ASSERT_TRUE(fresh.catalog()->BuildIndex("lineitem", "l_receiptdate").ok());

  opt::QuerySpec count_all;
  count_all.tables.push_back({"lineitem", nullptr});
  count_all.aggregates.push_back({exec::AggKind::kCount, "", "n"});
  auto result = fresh.Execute(count_all, core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.ValueAt(0, 0).AsInt64(),
            static_cast<int64_t>(before + 100));
}

}  // namespace
}  // namespace robustqo
