// The learning subsystem's acceptance arc, end to end: data drifts under
// stale statistics, the drift hook evicts the cached plan, and — with
// learning ON — the replans consult the feedback store's Beta
// pseudo-counts, so the drifted fingerprint's trailing-window median
// q-error collapses (>= 2x better than the no-learning baseline on the
// same data), realized regret shrinks, and the regret tuner raises the
// fingerprint's effective T%. Also pins the kill switch: SET LEARNING OFF
// (an attached-but-disabled store) reproduces the pre-learning plans
// bit-for-bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/database.h"
#include "core/explain_analyze.h"
#include "expr/expression.h"
#include "learning/feedback_store.h"
#include "perf/fingerprint.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/macros.h"
#include "util/rng.h"

namespace robustqo {
namespace {

constexpr uint64_t kBaseRows = 2000;
constexpr uint64_t kFloodRows = 3000;
constexpr int kMeasuredExecutions = 32;

std::unique_ptr<core::Database> MakeReadingsDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < kBaseRows; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  RQO_CHECK_MSG(db->catalog()->AddTable(std::move(table)).ok(),
                "table load failed");
  db->UpdateStatistics();
  return db;
}

opt::QuerySpec DriftingQuery() {
  // r_value < 50: ~5% selectivity until the flood below pushes the true
  // selectivity past 60% while the statistics stay stale.
  opt::QuerySpec query;
  query.tables.push_back(
      {"readings", expr::Lt(expr::Col("r_value"), expr::LitInt(50))});
  return query;
}

// Floods the table with predicate-matching rows WITHOUT rebuilding
// statistics — the staleness the feedback loop exists to survive.
void FloodMatchingRows(core::Database* db) {
  storage::Table* readings = db->catalog()->GetMutableTable("readings");
  ASSERT_NE(readings, nullptr);
  Rng rng(77);
  for (uint64_t i = 0; i < kFloodRows; ++i) {
    readings->AppendRow(
        {storage::Value::Int64(static_cast<int64_t>(kBaseRows + i)),
         storage::Value::Int64(static_cast<int64_t>(rng.NextBounded(50)))});
  }
}

struct ArcOutcome {
  double recent_median_q = 0.0;      ///< drifted fp, trailing window
  double tail_mean_regret = 0.0;     ///< mean positive regret, last 8 execs
  uint64_t feedback_observations = 0;
  uint64_t tuner_raises = 0;
};

// Runs the identical drift arc with learning on or off and reports how the
// post-eviction replans fared.
ArcOutcome RunDriftArc(bool learning) {
  std::unique_ptr<core::Database> db = MakeReadingsDatabase();

  server::ServerConfig config;
  config.quality.baseline_window = 16;
  config.quality.recent_window = 16;
  config.quality.min_observations = 8;
  config.quality.drift_factor = 4.0;
  // Keep the statistics stale: with background rebuild the service would
  // heal by re-sampling, and the learned corrections (which die with the
  // epoch, by design) would never need to carry the load.
  config.background_rebuild = false;
  server::QueryService service(db.get(), config);
  service.SetLearningEnabled(learning);
  const server::SessionId session = service.OpenSession();

  const opt::QuerySpec drifting = DriftingQuery();
  const uint64_t fingerprint = server::FingerprintQuery(drifting);

  // Healthy baseline, then the flood, then keep serving until the drift
  // hook evicts the cached (now badly wrong) plan.
  for (int round = 0; round < 20; ++round) {
    EXPECT_TRUE(service.ExecuteSpec(session, drifting).status.ok());
  }
  FloodMatchingRows(db.get());
  bool evicted = false;
  for (int round = 0; round < 40 && !evicted; ++round) {
    EXPECT_TRUE(service.ExecuteSpec(session, drifting).status.ok());
    evicted = service.plan_cache()->stats().invalidated_drift > 0;
  }
  EXPECT_TRUE(evicted) << service.quality_monitor()->ReportText();

  // Drift-blocked = replanned every time. With learning on, each replan
  // folds the feedback store's evidence into the selectivity posterior.
  std::vector<double> regrets;
  for (int round = 0; round < kMeasuredExecutions; ++round) {
    server::QueryResponse response = service.ExecuteSpec(session, drifting);
    EXPECT_TRUE(response.status.ok());
    EXPECT_FALSE(response.cache_hit);
    if (response.result.has_value()) {
      regrets.push_back(std::max(
          0.0, response.result->simulated_seconds -
                   response.result->estimated_cost));
    }
  }

  ArcOutcome outcome;
  for (const obs::FingerprintQuality& quality :
       service.quality_monitor()->Snapshot()) {
    if (quality.fingerprint == fingerprint) {
      outcome.recent_median_q = quality.recent_median_q;
    }
  }
  const size_t tail = std::min<size_t>(8, regrets.size());
  for (size_t i = regrets.size() - tail; i < regrets.size(); ++i) {
    outcome.tail_mean_regret += regrets[i];
  }
  if (tail > 0) outcome.tail_mean_regret /= static_cast<double>(tail);
  outcome.feedback_observations = service.feedback_store()->observations_total();
  outcome.tuner_raises = service.tpercent_tuner()->raised_total();

  // The recovery arc closes with fresh statistics: the epoch bump lifts
  // the drift block (and, by design, retires the learned evidence), and
  // the statement re-caches and serves hot again.
  service.UpdateStatistics();
  server::QueryResponse replanned = service.ExecuteSpec(session, drifting);
  EXPECT_TRUE(replanned.status.ok());
  EXPECT_FALSE(replanned.cache_hit);
  EXPECT_TRUE(service.ExecuteSpec(session, drifting).cache_hit);
  return outcome;
}

TEST(LearningFeedbackTest, LearnedCorrectionsRecoverDriftedEstimates) {
  const ArcOutcome without = RunDriftArc(false);
  const ArcOutcome with = RunDriftArc(true);

  // The whole point of the loop: on the identical drifted workload the
  // learned replans must at least halve the trailing-window median
  // q-error of the drifted fingerprint.
  ASSERT_GT(without.recent_median_q, 0.0);
  ASSERT_GT(with.recent_median_q, 0.0);
  EXPECT_GE(without.recent_median_q, 2.0 * with.recent_median_q)
      << "no-learning median q=" << without.recent_median_q
      << " learned median q=" << with.recent_median_q;

  // Learned estimates stop underselling the plan, so realized regret
  // shrinks with them.
  EXPECT_LT(with.tail_mean_regret, without.tail_mean_regret);

  // The loop actually ran: observations were folded in, and the chronic
  // regret drove the tuner to raise this fingerprint's effective T%.
  EXPECT_GT(with.feedback_observations, 0u);
  EXPECT_GT(with.tuner_raises, 0u);
  EXPECT_EQ(without.feedback_observations, 0u);
  EXPECT_EQ(without.tuner_raises, 0u);
}

TEST(LearningFeedbackTest, DisabledLearningReproducesPlansBitForBit) {
  std::unique_ptr<core::Database> db = MakeReadingsDatabase();
  FloodMatchingRows(db.get());
  const opt::QuerySpec query = DriftingQuery();

  // Reference: no feedback store attached at all.
  auto reference = db->Plan(query, core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Attach a store holding strong contrary evidence, but disabled: the
  // plan must be byte-identical to the detached run.
  learn::FeedbackStore store;
  const uint64_t pred_fp = perf::FingerprintExpr(
      *expr::Lt(expr::Col("r_value"), expr::LitInt(50)));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        store.Observe(pred_fp, "q", 0.05, 0.62, db->statistics()->epoch())
            .ok());
  }
  store.set_enabled(false);
  db->robust_estimator()->set_feedback_store(&store);
  auto disabled = db->Plan(query, core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(disabled.ok());
  EXPECT_EQ(disabled.value().estimated_spj_rows,
            reference.value().estimated_spj_rows);
  EXPECT_EQ(disabled.value().estimated_cost, reference.value().estimated_cost);
  EXPECT_EQ(disabled.value().label, reference.value().label);

  // Flip it on: the same evidence now moves the estimate.
  store.set_enabled(true);
  auto enabled = db->Plan(query, core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(enabled.ok());
  EXPECT_GT(enabled.value().estimated_spj_rows,
            reference.value().estimated_spj_rows);
  db->robust_estimator()->set_feedback_store(nullptr);
}

#if ROBUSTQO_OBS_ENABLED
TEST(LearningFeedbackTest, ExplainAnalyzeReportsLearnedProvenance) {
  std::unique_ptr<core::Database> db = MakeReadingsDatabase();
  FloodMatchingRows(db.get());

  learn::FeedbackStore store;
  const uint64_t pred_fp = perf::FingerprintExpr(
      *expr::Lt(expr::Col("r_value"), expr::LitInt(50)));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store
                    .Observe(pred_fp, "{readings} :: r_value < 50", 0.05,
                             0.62, db->statistics()->epoch())
                    .ok());
  }
  db->robust_estimator()->set_feedback_store(&store);

  auto analyzed = core::ExplainAnalyze(db.get(), DriftingQuery(),
                                       core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  bool saw_learned = false;
  for (const core::PredicateReport& predicate : analyzed.value().predicates) {
    if (predicate.source != "learned") continue;
    saw_learned = true;
    EXPECT_TRUE(predicate.learned);
    EXPECT_GT(predicate.learned_n, 0.0);
    EXPECT_EQ(predicate.learned_observations, 8u);
    // Both sides of the correction are visible: the raw (sample-only)
    // selectivity and the corrected one the optimizer actually used.
    EXPECT_GE(predicate.selectivity_raw, 0.0);
    EXPECT_GT(predicate.selectivity, predicate.selectivity_raw);
  }
  EXPECT_TRUE(saw_learned) << analyzed.value().ToText();
  const std::string text = analyzed.value().ToText();
  EXPECT_NE(text.find("learned"), std::string::npos);
  const std::string json = analyzed.value().ToJson();
  EXPECT_NE(json.find("\"learned\""), std::string::npos);
  EXPECT_NE(json.find("\"selectivity_raw\""), std::string::npos);
  db->robust_estimator()->set_feedback_store(nullptr);
}
#endif

}  // namespace
}  // namespace robustqo
