// The determinism contract of the parallel sampling engine, end to end:
// every user-visible artifact — EXPLAIN ANALYZE snapshots, chaos sweep
// reports, and the analytical-model figure series behind fig05/fig06 —
// must be byte-identical at 1, 4, and 8 threads. Parallelism may change
// wall-clock time, never results.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/analytical_model.h"
#include "core/database.h"
#include "core/explain_analyze.h"
#include "fault/fault_injector.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/task_pool.h"
#include "tpch/tpch_gen.h"
#include "util/macros.h"
#include "util/string_util.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"
#include "workload/chaos_harness.h"
#include "workload/scenarios.h"
#include "workload/traffic_harness.h"

namespace robustqo {
namespace {

std::unique_ptr<core::Database> MakeDatabase() {
  auto db = std::make_unique<core::Database>();
  tpch::TpchConfig config;
  config.scale_factor = 0.005;
  RQO_CHECK_MSG(tpch::LoadTpch(db->catalog(), config).ok(),
                "tpch load failed");
  stats::StatisticsConfig stats_config;
  stats_config.seed = 7;
  db->UpdateStatistics(stats_config);
  return db;
}

// A small single-table database used by the serving-layer legs: cheap to
// rebuild per thread count, deterministic contents (seeded Rng).
std::unique_ptr<core::Database> MakeReadingsDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < 2000; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  RQO_CHECK_MSG(db->catalog()->AddTable(std::move(table)).ok(),
                "table load failed");
  db->UpdateStatistics();
  return db;
}

std::vector<opt::QuerySpec> ScenarioQueries() {
  std::vector<opt::QuerySpec> queries;
  workload::SingleTableScenario single;
  queries.push_back(single.MakeQuery(70));
  workload::ThreeTableJoinScenario join;
  queries.push_back(join.MakeQuery(12.0));
  queries.push_back(join.MakeQuery(45.0));
  return queries;
}

constexpr unsigned kThreadCounts[] = {1, 4, 8};

// Restores the global thread count after each test.
class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = perf::ThreadCount(); }
  void TearDown() override { perf::SetThreadCount(saved_threads_); }

 private:
  unsigned saved_threads_ = 1;
};

TEST_F(DeterminismTest, ExplainAnalyzeSnapshotsIdenticalAcrossThreadCounts) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  workload::ThreeTableJoinScenario scenario;
  const opt::QuerySpec query = scenario.MakeQuery(2.0);

  std::string reference_json;
  std::string reference_text;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    auto analyzed =
        core::ExplainAnalyze(db.get(), query, core::EstimatorKind::kRobustSample);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    const std::string json = analyzed.value().ToJson();
    const std::string text = analyzed.value().ToText();
    if (threads == 1) {
      reference_json = json;
      reference_text = text;
    } else {
      EXPECT_EQ(json, reference_json) << "threads=" << threads;
      EXPECT_EQ(text, reference_text) << "threads=" << threads;
    }
  }
}

#if ROBUSTQO_OBS_ENABLED
TEST_F(DeterminismTest, PerfCacheCountersVisibleInExplainAnalyzeJson) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  workload::ThreeTableJoinScenario scenario;
  auto analyzed = core::ExplainAnalyze(db.get(), scenario.MakeQuery(2.0),
                                       core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  const std::string json = analyzed.value().ToJson();
  EXPECT_NE(json.find("\"perf.cache.hit\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"perf.cache.miss\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"probe_cache_hits\":"), std::string::npos);
  EXPECT_NE(json.find("\"beta_cache_hits\":"), std::string::npos);
}
#endif

TEST_F(DeterminismTest, ChaosSweepReportIdenticalAcrossThreadCounts) {
  // The primary database and every worker replica come from the same
  // deterministic factory, so a run's outcome is a function of (config,
  // run index) alone — the parallel sweep at 4 and 8 threads must produce
  // the exact report the sequential sweep does.
  std::unique_ptr<core::Database> db = MakeDatabase();
  workload::ChaosHarness harness(db.get());
  workload::ChaosConfig config;
  config.base_seed = 424242;
  config.runs = 24;
  config.database_factory = MakeDatabase;
  const auto queries = ScenarioQueries();

  std::string reference;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    workload::ChaosReport report = harness.Run(config, queries);
    EXPECT_EQ(report.runs, config.runs);
    if (threads == 1) {
      reference = report.Summary();
    } else {
      EXPECT_EQ(report.Summary(), reference) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference.empty());
}

// The serving layer's leg of the contract: a 1000-client traffic run —
// sessions, admission waves, plan-cache hits, quality feedback and the
// formatted summary — must be byte-identical at 1, 4 and 8 threads even
// though every admitted wave executes its requests concurrently.
TEST_F(DeterminismTest, TrafficHarnessSummaryIdenticalAcrossThreadCounts) {
  workload::TrafficConfig config;
  config.clients = 1000;
  config.duration_seconds = 10.0;
  config.think_seconds = 5.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};

  std::string reference;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    std::unique_ptr<core::Database> db = MakeReadingsDatabase();
    server::ServerConfig server_config;
    server_config.admission.max_concurrent = 8;
    server_config.admission.max_queue_depth = 128;
    server::QueryService service(db.get(), server_config);
    const workload::TrafficReport report =
        workload::RunTraffic(&service, config);
    EXPECT_GT(report.completed, 1000u);
    const std::string summary = report.Summary();
    if (threads == 1) {
      reference = summary;
    } else {
      EXPECT_EQ(summary, reference) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference.empty());
}

// The learning subsystem's leg of the contract: the feedback store is fed
// from the sequential reduce phase in admission order and the T% tuner
// retunes between waves, so after a traffic run the `.learning` report —
// per-fingerprint pseudo-counts, observation totals, and every override —
// must be byte-identical at 1, 4 and 8 threads, as must the traffic
// summary produced while learning was live.
TEST_F(DeterminismTest, LearningReportIdenticalAcrossThreadCounts) {
  workload::TrafficConfig config;
  config.clients = 200;
  config.duration_seconds = 10.0;
  config.think_seconds = 5.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};

  std::string reference_summary;
  std::string reference_learning;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    std::unique_ptr<core::Database> db = MakeReadingsDatabase();
    server::ServerConfig server_config;
    server_config.admission.max_concurrent = 8;
    server_config.admission.max_queue_depth = 128;
    server::QueryService service(db.get(), server_config);
    ASSERT_TRUE(service.learning_enabled());
    const workload::TrafficReport report =
        workload::RunTraffic(&service, config);
    EXPECT_GT(report.completed, 0u);
    const std::string summary = report.Summary();
    const std::string learning = service.LearningReportText();
    if (threads == 1) {
      reference_summary = summary;
      reference_learning = learning;
    } else {
      EXPECT_EQ(summary, reference_summary) << "threads=" << threads;
      EXPECT_EQ(learning, reference_learning) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference_learning.empty());
  // Learning actually ran during the measured run — the report is not
  // trivially identical because it is trivially empty.
  EXPECT_NE(reference_learning.find("learning feedback store: on"),
            std::string::npos);
  EXPECT_NE(reference_learning.find("obs="), std::string::npos)
      << reference_learning;
}

// The write-path acceptance criterion: mixed read/write traffic — where
// DML commits bump the data epoch, feed the statistics reservoir, and can
// trigger background rebuilds mid-run — must produce a byte-identical
// summary at every thread count. Writes apply sequentially in REDUCE and
// reads pin to the wave-start snapshot, so the epoch sequence (and with
// it every answer) is a pure function of the request sequence.
TEST_F(DeterminismTest, MixedReadWriteTrafficSummaryIdenticalAcrossThreadCounts) {
  workload::TrafficConfig config;
  config.clients = 200;
  config.duration_seconds = 20.0;
  config.think_seconds = 4.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};
  config.write_fraction = 0.25;
  config.write_statements = {
      "UPDATE readings SET r_value = r_value + 1 WHERE r_id < 20",
      "INSERT INTO readings VALUES (9001, 25), (9002, 613)",
      "DELETE FROM readings WHERE r_id = 9001",
  };

  std::string reference;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    std::unique_ptr<core::Database> db = MakeReadingsDatabase();
    server::ServerConfig server_config;
    server_config.admission.max_concurrent = 8;
    server_config.admission.max_queue_depth = 128;
    server::QueryService service(db.get(), server_config);
    const workload::TrafficReport report =
        workload::RunTraffic(&service, config);
    EXPECT_GT(report.completed, 100u);
    EXPECT_GT(report.writes_committed, 0u);
    EXPECT_EQ(report.final_data_epoch,
              static_cast<uint64_t>(db->catalog()->data_epoch()));
    const std::string summary = report.Summary();
    if (threads == 1) {
      reference = summary;
    } else {
      EXPECT_EQ(summary, reference) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference.empty());
  EXPECT_NE(reference.find("writes:"), std::string::npos);
}

// Chaos through the serving layer: with multi-session configs the sweep's
// queries route through admission control and the plan cache, and the
// report must still be byte-identical at every thread count.
TEST_F(DeterminismTest, MultiSessionChaosSweepIdenticalAcrossThreadCounts) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  workload::ChaosHarness harness(db.get());
  workload::ChaosConfig config;
  config.base_seed = 31337;
  config.runs = 16;
  config.sessions = 3;
  config.database_factory = MakeDatabase;
  const auto queries = ScenarioQueries();

  std::string reference;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    workload::ChaosReport report = harness.Run(config, queries);
    EXPECT_EQ(report.runs, config.runs);
    EXPECT_TRUE(report.ContractHolds()) << report.Summary();
    if (threads == 1) {
      reference = report.Summary();
    } else {
      EXPECT_EQ(report.Summary(), reference) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference.empty());
}

// The fig05/fig06 figure series: regenerate the exact numbers the benches
// print and pin them across thread counts (the analytical model must not
// read any thread-dependent state).
TEST_F(DeterminismTest, AnalyticalFigureSeriesIdenticalAcrossThreadCounts) {
  auto render = []() {
    core::TwoPlanAnalyticalModel model;
    std::string out;
    std::vector<double> selectivities;
    for (int i = 0; i <= 20; ++i) selectivities.push_back(i * 0.0005);
    for (double t : {0.05, 0.20, 0.50, 0.80, 0.95}) {
      // fig05: expected time per selectivity; fig06: workload summary.
      for (double p : selectivities) {
        out += StrPrintf("%.17g\n", model.ExpectedExecutionTime(p, 1000, t));
      }
      const auto summary = model.SummarizeWorkload(selectivities, 1000, t);
      out += StrPrintf("T=%g mean=%.17g sd=%.17g\n", t, summary.mean_seconds,
                       summary.std_dev_seconds);
    }
    return out;
  };

  std::string reference;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    const std::string rendered = render();
    if (threads == 1) {
      reference = rendered;
    } else {
      EXPECT_EQ(rendered, reference) << "threads=" << threads;
    }
  }
}

#if ROBUSTQO_OBS_ENABLED
// The exporter leg of the determinism contract: the OpenMetrics text of a
// chaos sweep's merged per-worker registries, and the Chrome-trace JSON of
// an EXPLAIN ANALYZE run, must be byte-identical at 1, 4 and 8 threads.
TEST_F(DeterminismTest, OpenMetricsExportIdenticalAcrossThreadCounts) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  workload::ChaosHarness harness(db.get());
  const auto queries = ScenarioQueries();

  std::string reference;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    obs::MetricsRegistry merged;
    workload::ChaosConfig config;
    config.base_seed = 424242;
    config.runs = 24;
    config.database_factory = MakeDatabase;
    config.metrics = &merged;
    harness.Run(config, queries);
    const std::string om = obs::ToOpenMetrics(merged);
    // The sweep recorded into the merged registry at all.
    EXPECT_NE(om.find("rqo_db_queries_executed_total"), std::string::npos);
    EXPECT_NE(om.find("rqo_exec_query_simulated_seconds"), std::string::npos);
    if (threads == 1) {
      reference = om;
    } else {
      EXPECT_EQ(om, reference) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST_F(DeterminismTest, ChromeTraceExportIdenticalAcrossThreadCounts) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  workload::ThreeTableJoinScenario scenario;
  const opt::QuerySpec query = scenario.MakeQuery(2.0);

  std::string reference;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    std::vector<obs::TraceEvent> trace;
    auto analyzed = core::ExplainAnalyze(
        db.get(), query, core::EstimatorKind::kRobustSample, {}, &trace);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    ASSERT_FALSE(trace.empty());
    const std::string json = obs::ToChromeTrace(trace);
    if (threads == 1) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "threads=" << threads;
    }
  }
  // Spans from execution made it into the export.
  EXPECT_NE(reference.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(reference.find("\"cat\":\"exec\""), std::string::npos);
}

// The flight recorder's leg: a traffic run with an armed fault site must
// retain the same requests with byte-identical JSON / Chrome-trace dumps at
// every thread count, and the dump must show each request's queue-wait
// charge, plan-cache outcome and the fault site that fired.
TEST_F(DeterminismTest, BlackboxDumpIdenticalAcrossThreadCounts) {
  workload::TrafficConfig config;
  config.clients = 64;
  config.duration_seconds = 10.0;
  config.think_seconds = 5.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};

  std::string reference_json;
  std::string reference_trace;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    std::unique_ptr<core::Database> db = MakeReadingsDatabase();
    // Planning is sequential in admission order, so "the 3rd plan-cache
    // lookup degrades" names the same request at every thread count.
    db->fault_injector()->Arm(fault::sites::kPlanCacheLookup,
                              fault::FaultSpec::OnNth(3));
    server::ServerConfig server_config;
    server_config.admission.max_concurrent = 4;
    server_config.admission.max_queue_depth = 128;
    server_config.flight_recorder.enabled = true;
    server::QueryService service(db.get(), server_config);
    const workload::TrafficReport report =
        workload::RunTraffic(&service, config);
    EXPECT_GT(report.completed, 64u);
    ASSERT_FALSE(report.blackbox_json.empty());
    EXPECT_EQ(report.blackbox_json, service.flight_recorder()->ToJson());
    const std::string chrome = service.flight_recorder()->ToChromeTrace();
    if (threads == 1) {
      reference_json = report.blackbox_json;
      reference_trace = chrome;
    } else {
      EXPECT_EQ(report.blackbox_json, reference_json) << "threads=" << threads;
      EXPECT_EQ(chrome, reference_trace) << "threads=" << threads;
    }
  }
  // The retained span trees carry the request-lifecycle facts the black box
  // exists for: the queue-wait charge, the plan-cache outcome, and the
  // armed site that fired.
  EXPECT_NE(reference_json.find("\"queue_wait_seconds\""), std::string::npos);
  EXPECT_NE(reference_json.find("degraded_fault"), std::string::npos);
  EXPECT_NE(reference_json.find("server.plan_cache.lookup"),
            std::string::npos);
  // ("incident" may share the retained list with "slow": the degraded
  // request replans, and the cold-planning charge also makes it slow.)
  EXPECT_NE(reference_json.find("\"incident\""), std::string::npos);
  EXPECT_NE(reference_trace.find("\"ph\":\"M\""), std::string::npos);
}
#endif

}  // namespace
}  // namespace robustqo
