// Chaos sweep: hundreds of seeded fault configurations over real queries.
// The contract under test is the PR's headline guarantee — under any
// combination of injected faults and governor budgets, a query either
// completes with a verified-correct answer or fails with a clean typed
// Status. No crashes, no wrong answers, no untyped errors.

#include <gtest/gtest.h>

#include "core/database.h"
#include "tpch/tpch_gen.h"
#include "workload/chaos_harness.h"
#include "workload/scenarios.h"

namespace robustqo {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new core::Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
    db_->UpdateStatistics();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static std::vector<opt::QuerySpec> ScenarioQueries() {
    std::vector<opt::QuerySpec> queries;
    workload::SingleTableScenario single;
    queries.push_back(single.MakeQuery(70));
    workload::ThreeTableJoinScenario join;
    queries.push_back(join.MakeQuery(12.0));
    queries.push_back(join.MakeQuery(45.0));
    return queries;
  }

  static core::Database* db_;
};

core::Database* ChaosTest::db_ = nullptr;

TEST_F(ChaosTest, TwoHundredSeededConfigsNeverViolateContract) {
  workload::ChaosHarness harness(db_);
  workload::ChaosConfig config;
  config.base_seed = 20240501;
  config.runs = 220;
  workload::ChaosReport report = harness.Run(config, ScenarioQueries());
  EXPECT_EQ(report.runs, 220u);
  EXPECT_TRUE(report.ContractHolds()) << report.Summary();
  EXPECT_EQ(report.completed + report.failed_typed, report.runs);
  // The sweep must actually exercise both outcomes: plenty of runs survive
  // their faults and plenty die typed. A sweep where everything passes (or
  // everything fails) isn't testing the boundary.
  EXPECT_GT(report.completed, 20u) << report.Summary();
  EXPECT_GT(report.failed_typed, 20u) << report.Summary();
  // Every fault site got armed at some point across 220 runs.
  EXPECT_EQ(report.armed_counts.size(), fault::KnownFaultSites().size())
      << report.Summary();
}

TEST_F(ChaosTest, SweepsAreReplayableBitForBit) {
  workload::ChaosHarness harness(db_);
  workload::ChaosConfig config;
  config.base_seed = 77;
  config.runs = 25;
  const auto queries = ScenarioQueries();
  workload::ChaosReport a = harness.Run(config, queries);
  workload::ChaosReport b = harness.Run(config, queries);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed_typed, b.failed_typed);
}

TEST_F(ChaosTest, DifferentSeedsProduceDifferentChaos) {
  workload::ChaosHarness harness(db_);
  workload::ChaosConfig a_cfg;
  a_cfg.base_seed = 1;
  a_cfg.runs = 40;
  workload::ChaosConfig b_cfg = a_cfg;
  b_cfg.base_seed = 2;
  const auto queries = ScenarioQueries();
  workload::ChaosReport a = harness.Run(a_cfg, queries);
  workload::ChaosReport b = harness.Run(b_cfg, queries);
  EXPECT_NE(a.Summary(), b.Summary());
}

TEST_F(ChaosTest, MultiSessionSweepHoldsContractThroughTheServiceLayer) {
  // Multi-session configs route every run through a server::QueryService —
  // admission control and the plan cache sit in front of the executor, and
  // the server.admission.enqueue / server.plan_cache.lookup fault sites
  // actually fire. Contract unchanged: correct answer or clean typed
  // failure.
  workload::ChaosHarness harness(db_);
  workload::ChaosConfig config;
  config.base_seed = 20260805;
  config.runs = 120;
  config.sessions = 4;
  workload::ChaosReport report = harness.Run(config, ScenarioQueries());
  EXPECT_EQ(report.runs, 120u);
  EXPECT_TRUE(report.ContractHolds()) << report.Summary();
  EXPECT_EQ(report.completed + report.failed_typed, report.runs);
  EXPECT_GT(report.completed, 10u) << report.Summary();
  EXPECT_GT(report.failed_typed, 10u) << report.Summary();
  // The serving-layer sites were armed across the sweep.
  EXPECT_GT(report.armed_counts["server.admission.enqueue"], 0u);
  EXPECT_GT(report.armed_counts["server.plan_cache.lookup"], 0u);
  // Replayable bit-for-bit like every other sweep.
  workload::ChaosReport again = harness.Run(config, ScenarioQueries());
  EXPECT_EQ(report.Summary(), again.Summary());
}

TEST_F(ChaosTest, MultiNodeSweepHoldsContractAndArmsClusterSites) {
  // Multi-node configs serve every run from a 4-node cluster coordinator,
  // so the cluster fault sites — lost replication messages pinning a node
  // on stale statistics, partitioned links, and seeded wire lag — fire
  // inside the sweep. Contract unchanged: in the default (non-strict)
  // mode partitioned links and stale replicas re-route to local
  // execution, so every surviving answer still matches the fault-free
  // reference.
  workload::ChaosHarness harness(db_);
  workload::ChaosConfig config;
  config.base_seed = 20260808;
  config.runs = 100;
  config.sessions = 3;
  config.nodes = 4;
  workload::ChaosReport report = harness.Run(config, ScenarioQueries());
  EXPECT_EQ(report.runs, 100u);
  EXPECT_TRUE(report.ContractHolds()) << report.Summary();
  EXPECT_EQ(report.completed + report.failed_typed, report.runs);
  EXPECT_GT(report.completed, 10u) << report.Summary();
  EXPECT_GT(report.failed_typed, 10u) << report.Summary();
  // The cluster sites were armed across the sweep.
  EXPECT_GT(report.armed_counts["net.partition"], 0u) << report.Summary();
  EXPECT_GT(report.armed_counts["net.lag"], 0u) << report.Summary();
  EXPECT_GT(report.armed_counts["replica.stale_stats"], 0u)
      << report.Summary();
  // Replayable bit-for-bit like every other sweep.
  workload::ChaosReport again = harness.Run(config, ScenarioQueries());
  EXPECT_EQ(report.Summary(), again.Summary());
}

TEST_F(ChaosTest, StrictClusterSweepFailsTypedNeverWrong) {
  // Strict mode flips the degradation policy: a partitioned link or a
  // stale replica fails the request with a clean typed Status instead of
  // re-routing locally. That exercises the typed-failure half of the
  // contract — more runs die, but none of them die untyped and none
  // return a wrong answer.
  workload::ChaosHarness harness(db_);
  workload::ChaosConfig config;
  config.base_seed = 20260809;
  config.runs = 60;
  config.sessions = 3;
  config.nodes = 4;
  config.cluster_strict = true;
  workload::ChaosReport report = harness.Run(config, ScenarioQueries());
  EXPECT_EQ(report.runs, 60u);
  EXPECT_TRUE(report.ContractHolds()) << report.Summary();
  EXPECT_EQ(report.completed + report.failed_typed, report.runs);
  EXPECT_GT(report.failed_typed, 10u) << report.Summary();
  EXPECT_GT(report.armed_counts["net.partition"], 0u) << report.Summary();
  // Replay of the failing configuration is bit-for-bit.
  workload::ChaosReport again = harness.Run(config, ScenarioQueries());
  EXPECT_EQ(report.Summary(), again.Summary());
}

std::vector<std::string> DmlStatements() {
  return {
      "UPDATE orders SET o_totalprice = o_totalprice * 1.01 "
      "WHERE o_orderkey < 40",
      "INSERT INTO lineitem VALUES (1, 1, 1, 99, 10.0, 1000.0, 0.05, "
      "DATE '1995-06-17', DATE '1995-07-01', DATE '1995-07-15')",
      "DELETE FROM orders WHERE o_orderkey > 1000000",
  };
}

TEST_F(ChaosTest, DmlSweepHoldsTheAtomicCommitContract) {
  // The write-path sweep: seeded fault configurations (including the
  // storage.write.apply / storage.write.commit / stats.reservoir.update
  // sites) over INSERT/UPDATE/DELETE. The contract is checked by table
  // checksum — after every run the catalog equals either the pre-write
  // state (clean full rollback) or the fault-free committed reference
  // (the retry healed it). Anything in between is a torn write.
  workload::ChaosHarness harness(db_);
  workload::ChaosConfig config;
  config.base_seed = 20260808;
  config.runs = 150;
  workload::ChaosReport report = harness.RunDml(config, DmlStatements());
  EXPECT_EQ(report.runs, 150u);
  EXPECT_TRUE(report.ContractHolds()) << report.Summary();
  EXPECT_EQ(report.completed + report.failed_typed, report.runs);
  // Both outcomes must occur: commits surviving their faults AND clean
  // typed rollbacks.
  EXPECT_GT(report.completed, 10u) << report.Summary();
  EXPECT_GT(report.failed_typed, 10u) << report.Summary();
  // The write-path sites were armed across the sweep.
  EXPECT_GT(report.armed_counts["storage.write.apply"], 0u);
  EXPECT_GT(report.armed_counts["storage.write.commit"], 0u);
  EXPECT_GT(report.armed_counts["stats.reservoir.update"], 0u);
}

TEST_F(ChaosTest, DmlSweepIsReplayableBitForBit) {
  workload::ChaosHarness harness(db_);
  workload::ChaosConfig config;
  config.base_seed = 424242;
  config.runs = 40;
  workload::ChaosReport a = harness.RunDml(config, DmlStatements());
  workload::ChaosReport b = harness.RunDml(config, DmlStatements());
  EXPECT_TRUE(a.ContractHolds()) << a.Summary();
  EXPECT_EQ(a.Summary(), b.Summary());
}

TEST_F(ChaosTest, DmlSweepLeavesDatabaseClean) {
  workload::ChaosHarness harness(db_);
  const uint64_t epoch_before = db_->catalog()->data_epoch();
  workload::ChaosConfig config;
  config.base_seed = 5;
  config.runs = 20;
  workload::ChaosReport report = harness.RunDml(config, DmlStatements());
  EXPECT_TRUE(report.ContractHolds()) << report.Summary();
  // Every run's effects were reverted: the data epoch and all faults and
  // limits are back to the pre-sweep state.
  EXPECT_EQ(db_->catalog()->data_epoch(), epoch_before);
  for (const std::string& site : fault::KnownFaultSites()) {
    EXPECT_FALSE(db_->fault_injector()->IsArmed(site)) << site;
  }
  EXPECT_TRUE(db_->governor_limits().Unlimited());
}

TEST_F(ChaosTest, HarnessLeavesDatabaseClean) {
  workload::ChaosHarness harness(db_);
  workload::ChaosConfig config;
  config.runs = 10;
  (void)harness.Run(config, ScenarioQueries());
  // No faults left armed, no governor limits left behind.
  for (const std::string& site : fault::KnownFaultSites()) {
    EXPECT_FALSE(db_->fault_injector()->IsArmed(site)) << site;
  }
  EXPECT_TRUE(db_->governor_limits().Unlimited());
  workload::SingleTableScenario scenario;
  auto result = db_->Execute(scenario.MakeQuery(70),
                             core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace robustqo
