// The drift-aware leg of the plan cache, end to end: a prepared statement
// is cached and served hot; its data then shifts underneath the (stale)
// statistics; the service's estimation-quality monitor flags the
// fingerprint and the cache provably evicts the plan and refuses to
// re-cache it until UPDATE STATISTICS runs through the service.

#include <gtest/gtest.h>

#include <memory>

#include "core/database.h"
#include "expr/expression.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"

namespace robustqo {
namespace {

// Drift detection rides on the quality monitor, which the service feeds
// from execution results; the estimated side comes from the cached plan's
// estimated_spj_rows, so this works with observability on or off — but the
// monitor's metrics assertions need obs.

constexpr uint64_t kBaseRows = 2000;

void LoadReadings(storage::Catalog* catalog) {
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < kBaseRows; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  ASSERT_TRUE(catalog->AddTable(std::move(table)).ok());
}

opt::QuerySpec DriftingQuery() {
  // r_value < 50: ~5% selectivity until the flood below.
  opt::QuerySpec query;
  query.tables.push_back(
      {"readings", expr::Lt(expr::Col("r_value"), expr::LitInt(50))});
  return query;
}

opt::QuerySpec HealthyQuery() {
  opt::QuerySpec query;
  query.tables.push_back(
      {"readings",
       expr::And({expr::Ge(expr::Col("r_value"), expr::LitInt(500)),
                  expr::Lt(expr::Col("r_value"), expr::LitInt(600))})});
  return query;
}

TEST(ServerDriftTest, DriftedFingerprintEvictsItsCachedPlanUntilStatsRebuild) {
  core::Database db;
  LoadReadings(db.catalog());
  db.UpdateStatistics();

  server::ServerConfig config;
  config.quality.baseline_window = 16;
  config.quality.recent_window = 16;
  config.quality.min_observations = 8;
  config.quality.drift_factor = 4.0;
  // This test exercises the *manual* recovery arc: drift must stay
  // blocked until UpdateStatistics. With background rebuild on (the
  // default) the service heals itself at the end of the flagging wave —
  // that automatic arc is covered by online_maintenance_test.cc.
  config.background_rebuild = false;
  server::QueryService service(&db, config);
  const server::SessionId session = service.OpenSession();

  const opt::QuerySpec drifting = DriftingQuery();
  const opt::QuerySpec healthy = HealthyQuery();
  const uint64_t drifting_fp = server::FingerprintQuery(drifting);
  const uint64_t healthy_fp = server::FingerprintQuery(healthy);

  // Baseline: both statements cache after their first execution and the
  // monitor sees estimates tracking actuals.
  for (int round = 0; round < 20; ++round) {
    server::QueryResponse d = service.ExecuteSpec(session, drifting);
    server::QueryResponse h = service.ExecuteSpec(session, healthy);
    ASSERT_TRUE(d.status.ok()) << d.status.ToString();
    ASSERT_TRUE(h.status.ok()) << h.status.ToString();
    if (round > 0) {
      EXPECT_TRUE(d.cache_hit);
      EXPECT_TRUE(h.cache_hit);
    }
  }
  EXPECT_TRUE(service.quality_monitor()->Drifted().empty())
      << service.quality_monitor()->ReportText();
  EXPECT_EQ(service.plan_cache()->stats().invalidated_drift, 0u);

  // The data moves underneath the statistics: flood the table with rows
  // matching the drifting predicate, WITHOUT rebuilding statistics. The
  // cached plan keeps estimating ~100 rows while actuals explode past
  // 3000 — exactly the staleness the drift hook exists for.
  storage::Table* readings = db.catalog()->GetMutableTable("readings");
  ASSERT_NE(readings, nullptr);
  Rng rng(77);
  for (uint64_t i = 0; i < 3000; ++i) {
    readings->AppendRow(
        {storage::Value::Int64(static_cast<int64_t>(kBaseRows + i)),
         storage::Value::Int64(static_cast<int64_t>(rng.NextBounded(50)))});
  }

  // Keep serving. The monitor needs recent_window observations of the
  // exploded q-error before it trips; after that the service must evict
  // the cached plan and subsequent executions must NOT be cache hits.
  bool evicted = false;
  for (int round = 0; round < 40 && !evicted; ++round) {
    ASSERT_TRUE(service.ExecuteSpec(session, drifting).status.ok());
    ASSERT_TRUE(service.ExecuteSpec(session, healthy).status.ok());
    evicted = service.plan_cache()->stats().invalidated_drift > 0;
  }
  ASSERT_TRUE(evicted) << "drift never tripped:\n"
                       << service.quality_monitor()->ReportText();
  EXPECT_TRUE(service.plan_cache()->IsDriftBlocked(drifting_fp));
  EXPECT_FALSE(service.plan_cache()->IsDriftBlocked(healthy_fp));

  // Drift-blocked: the statement still answers (re-planned every time),
  // but its plan is not re-cached — statistics are known-stale.
  server::QueryResponse blocked = service.ExecuteSpec(session, drifting);
  ASSERT_TRUE(blocked.status.ok());
  EXPECT_FALSE(blocked.cache_hit);
  EXPECT_GT(service.plan_cache()->stats().rejected_drifted, 0u);
  // The healthy statement's entry was untouched.
  EXPECT_TRUE(service.ExecuteSpec(session, healthy).cache_hit);

  // UPDATE STATISTICS through the service: epoch bump + drift blocks
  // lifted + monitor reset. The statement re-caches and serves hot again.
  service.UpdateStatistics();
  EXPECT_FALSE(service.plan_cache()->IsDriftBlocked(drifting_fp));
  server::QueryResponse replanned = service.ExecuteSpec(session, drifting);
  ASSERT_TRUE(replanned.status.ok());
  EXPECT_FALSE(replanned.cache_hit) << "fresh statistics, fresh plan";
  EXPECT_TRUE(service.ExecuteSpec(session, drifting).cache_hit);
  EXPECT_TRUE(service.quality_monitor()->Drifted().empty());
}

}  // namespace
}  // namespace robustqo
