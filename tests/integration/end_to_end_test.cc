// End-to-end reproduction checks: the qualitative claims of the paper's
// evaluation must hold on the full stack (data generator -> statistics ->
// optimizer -> executor) at test scale.

#include <gtest/gtest.h>

#include "core/database.h"
#include "tpch/tpch_gen.h"
#include "workload/experiment_harness.h"
#include "workload/scenarios.h"
#include "workload/star_schema.h"

namespace robustqo {
namespace {

using core::Database;
using core::EstimatorKind;
using workload::SingleTableScenario;
using workload::StarJoinScenario;

class EndToEndTpch : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.01;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
    stats::StatisticsConfig stats_config;
    stats_config.sample_size = 500;
    stats_config.seed = 424242;
    db_->UpdateStatistics(stats_config);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* EndToEndTpch::db_ = nullptr;

TEST_F(EndToEndTpch, HistogramsAlwaysPickIndexIntersection) {
  // Paper Section 6.2.1: "The standard estimation module always selected
  // the index intersection plan". AVI underestimates the correlated joint
  // selectivity regardless of the offset parameter.
  SingleTableScenario scenario;
  for (double offset : SingleTableScenario::DefaultParams()) {
    auto plan = db_->Plan(scenario.MakeQuery(offset),
                          EstimatorKind::kHistogram);
    ASSERT_TRUE(plan.ok());
    EXPECT_NE(plan.value().label.find("IxSect"), std::string::npos)
        << "offset " << offset << " chose " << plan.value().label;
  }
}

TEST_F(EndToEndTpch, ConservativeThresholdSticksToSeqScan) {
  // At T = 95% with 500-tuple samples, the optimizer can never be 95%
  // confident the risky plan is safe for this crossover (~0.15%).
  SingleTableScenario scenario;
  for (double offset : SingleTableScenario::DefaultParams()) {
    opt::OptimizerOptions options;
    options.confidence_threshold_hint = 0.95;
    auto plan = db_->Plan(scenario.MakeQuery(offset),
                          EstimatorKind::kRobustSample, options);
    ASSERT_TRUE(plan.ok());
    EXPECT_NE(plan.value().label.find("Seq("), std::string::npos)
        << "offset " << offset << " chose " << plan.value().label;
  }
}

TEST_F(EndToEndTpch, AggressiveThresholdTakesTheRiskAtZeroSelectivity) {
  SingleTableScenario scenario;
  opt::OptimizerOptions options;
  options.confidence_threshold_hint = 0.05;
  auto plan = db_->Plan(scenario.MakeQuery(95),  // true selectivity 0
                        EstimatorKind::kRobustSample, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().label.find("IxSect"), std::string::npos)
      << plan.value().label;
}

TEST_F(EndToEndTpch, RobustBeatsHistogramsOnCorrelatedWorkload) {
  // Figure 9(b)'s headline: on the correlated scenario, the robust
  // estimator at T = 80% dominates the histogram baseline in average time.
  SingleTableScenario scenario;
  workload::QuerySweepExperiment experiment(
      db_, [&](double p) { return scenario.MakeQuery(p); },
      [&](double p) { return scenario.TrueSelectivity(*db_->catalog(), p); });
  workload::SweepConfig config;
  config.params = SingleTableScenario::DefaultParams();
  config.repetitions = 4;
  config.statistics.seed = 7;
  config.settings = {
      {"T=80%", EstimatorKind::kRobustSample, 0.80},
      {"T=95%", EstimatorKind::kRobustSample, 0.95},
      {"Histograms", EstimatorKind::kHistogram, 0.0},
  };
  workload::SweepResult result = experiment.Run(config);
  const auto& robust80 = result.overall.at("T=80%");
  const auto& robust95 = result.overall.at("T=95%");
  const auto& hist = result.overall.at("Histograms");
  EXPECT_LT(robust80.mean_seconds, hist.mean_seconds);
  EXPECT_LT(robust80.std_dev_seconds, hist.std_dev_seconds);
  // Higher threshold, lower variance (Figure 9(b) vertical ordering).
  EXPECT_LE(robust95.std_dev_seconds, robust80.std_dev_seconds + 1e-9);
}

TEST_F(EndToEndTpch, ExecutedCostsTrackPlanShape) {
  // The risky plan's execution cost grows with selectivity; the stable
  // plan's stays flat — the Figure 1 premise measured on the real engine.
  SingleTableScenario scenario;
  auto time_with = [&](const std::string& want, double offset, double hint) {
    opt::OptimizerOptions options;
    options.confidence_threshold_hint = hint;
    auto result = db_->Execute(scenario.MakeQuery(offset),
                               EstimatorKind::kRobustSample, options);
    EXPECT_NE(result.value().plan_label.find(want), std::string::npos)
        << result.value().plan_label;
    return result.value().simulated_seconds;
  };
  // Seq scan: flat across selectivities (conservative threshold).
  const double seq_low = time_with("Seq(", 88, 0.95);
  const double seq_high = time_with("Seq(", 58, 0.95);
  EXPECT_NEAR(seq_low, seq_high, 0.05 * seq_high);
  // Index intersection via histograms: cost rises with selectivity.
  auto hist_run = [&](double offset) {
    auto r = db_->Execute(scenario.MakeQuery(offset),
                          EstimatorKind::kHistogram);
    return r.value().simulated_seconds;
  };
  EXPECT_GT(hist_run(58), 2.0 * hist_run(90));
}

class EndToEndStar : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    workload::StarSchemaConfig config;
    config.fact_rows = 50000;
    config.dim_rows = 1000;
    ASSERT_TRUE(workload::LoadStarSchema(db_->catalog(), config).ok());
    stats::StatisticsConfig stats_config;
    stats_config.sample_size = 500;
    db_->UpdateStatistics(stats_config);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* EndToEndStar::db_ = nullptr;

TEST_F(EndToEndStar, HistogramEstimateIsOffsetBlind) {
  // Paper Section 6.2.3: "The standard histogram-based optimizer always
  // estimated that 0.1% of the rows joined successfully."
  StarJoinScenario scenario;
  stats::HistogramEstimator* est = db_->histogram_estimator();
  double first = -1.0;
  for (double offset : {0.0, 4.0, 9.0}) {
    opt::QuerySpec query = scenario.MakeQuery(offset);
    stats::CardinalityRequest request;
    request.tables = query.TableNames();
    std::vector<expr::ExprPtr> preds;
    for (const auto& t : query.tables) {
      if (t.predicate) preds.push_back(t.predicate);
    }
    request.predicate = expr::And(preds);
    auto rows = est->EstimateRows(request);
    ASSERT_TRUE(rows.ok());
    if (first < 0) {
      first = rows.value();
    } else {
      EXPECT_NEAR(rows.value(), first, 1e-6);
    }
  }
  // ~0.1% of 50000 = 50.
  EXPECT_NEAR(first, 50.0, 10.0);
}

TEST_F(EndToEndStar, RobustEstimateTracksTrueJoinFraction) {
  StarJoinScenario scenario;
  double prev = 1e18;
  for (double offset : {0.0, 2.0, 5.0}) {
    opt::QuerySpec query = scenario.MakeQuery(offset);
    stats::CardinalityRequest request;
    request.tables = query.TableNames();
    std::vector<expr::ExprPtr> preds;
    for (const auto& t : query.tables) {
      if (t.predicate) preds.push_back(t.predicate);
    }
    request.predicate = expr::And(preds);
    auto rows = db_->robust_estimator()->EstimateRows(request);
    ASSERT_TRUE(rows.ok());
    EXPECT_LT(rows.value(), prev);
    prev = rows.value();
  }
}

TEST_F(EndToEndStar, PlansAdaptToAlignment) {
  // Aligned filters (many joining fact rows): hash cascade. Misaligned
  // (few rows): the semijoin-style star plan, at a moderate threshold.
  StarJoinScenario scenario;
  opt::OptimizerOptions options;
  options.confidence_threshold_hint = 0.5;
  auto aligned = db_->Plan(scenario.MakeQuery(0),
                           EstimatorKind::kRobustSample, options);
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned.value().label.find("Star("), std::string::npos)
      << aligned.value().label;
  auto misaligned = db_->Plan(scenario.MakeQuery(8),
                              EstimatorKind::kRobustSample, options);
  ASSERT_TRUE(misaligned.ok());
  EXPECT_NE(misaligned.value().label.find("Star("), std::string::npos)
      << misaligned.value().label;
}

TEST_F(EndToEndStar, AllPlansComputeIdenticalAggregates) {
  StarJoinScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(1);
  double reference = 0.0;
  bool first = true;
  for (double hint : {0.05, 0.5, 0.95}) {
    opt::OptimizerOptions options;
    options.confidence_threshold_hint = hint;
    auto result =
        db_->Execute(query, EstimatorKind::kRobustSample, options);
    ASSERT_TRUE(result.ok());
    const double sum = result.value().rows.ValueAt(0, 0).AsDouble();
    if (first) {
      reference = sum;
      first = false;
    } else {
      EXPECT_NEAR(sum, reference, 1e-6 * std::max(1.0, reference));
    }
  }
  auto hist = db_->Execute(query, EstimatorKind::kHistogram);
  ASSERT_TRUE(hist.ok());
  EXPECT_NEAR(hist.value().rows.ValueAt(0, 0).AsDouble(), reference,
              1e-6 * std::max(1.0, reference));
}

}  // namespace
}  // namespace robustqo
