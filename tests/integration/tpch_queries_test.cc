// A broader workload: TPC-H-inspired queries (adapted to the generated
// schema subset) running through the SQL front end under both estimation
// modules. Verifies the full pipeline on query shapes beyond the paper's
// three experiment templates, and that the two estimators always agree on
// answers even when they disagree on plans.

#include <gtest/gtest.h>

#include "core/database.h"
#include "tpch/tpch_gen.h"

namespace robustqo {
namespace {

const char* kQueries[] = {
    // Q1-style: big scan + grouped aggregation.
    "SELECT COUNT(*) AS n, SUM(l_extendedprice) AS revenue, "
    "AVG(l_discount) AS avg_disc FROM lineitem "
    "WHERE l_shipdate <= DATE '1998-08-01' GROUP BY l_suppkey",
    // Q3-style: customer-orders-lineitem chain with date bounds.
    "SELECT SUM(l_extendedprice) AS revenue FROM customer, orders, lineitem "
    "WHERE c_acctbal >= 0 AND o_orderdate < DATE '1995-03-15' "
    "AND l_shipdate > DATE '1995-03-15'",
    // Q5-style: five-table chain down to region.
    "SELECT COUNT(*) AS n FROM region, nation, customer, orders, lineitem "
    "WHERE r_regionkey = 2 "
    "AND o_orderdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'",
    // Q6-style: the classic selective-scan aggregate.
    "SELECT SUM(l_extendedprice) AS revenue FROM lineitem "
    "WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31' "
    "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
    // Q14-ish: lineitem-part join with a part filter.
    "SELECT SUM(l_extendedprice) AS promo FROM lineitem, part "
    "WHERE p_size BETWEEN 1 AND 15 "
    "AND l_shipdate BETWEEN DATE '1995-09-01' AND DATE '1995-09-30'",
    // Supplier rollup.
    "SELECT COUNT(*) AS n FROM supplier, lineitem "
    "WHERE s_acctbal > 0 GROUP BY l_suppkey",
};

class TpchQueriesTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    db_ = new core::Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
    db_->UpdateStatistics();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static core::Database* db_;
};

core::Database* TpchQueriesTest::db_ = nullptr;

TEST_P(TpchQueriesTest, ParsesPlansExecutesAndAgreesAcrossEstimators) {
  const std::string sql = GetParam();
  auto robust = db_->ExecuteSql(sql, core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(robust.ok()) << sql << "\n" << robust.status().ToString();
  auto hist = db_->ExecuteSql(sql, core::EstimatorKind::kHistogram);
  ASSERT_TRUE(hist.ok()) << sql << "\n" << hist.status().ToString();

  const storage::Table& a = robust.value().rows;
  const storage::Table& b = hist.value().rows;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << sql;
  ASSERT_EQ(a.schema().num_columns(), b.schema().num_columns());
  for (storage::Rid r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      const storage::Value va = a.ValueAt(r, c);
      const storage::Value vb = b.ValueAt(r, c);
      if (va.type() == storage::DataType::kDouble) {
        EXPECT_NEAR(va.AsDouble(), vb.AsDouble(),
                    1e-6 * std::max(1.0, std::abs(va.AsDouble())))
            << sql << " row " << r << " col " << c;
      } else {
        EXPECT_EQ(va.ToString(), vb.ToString())
            << sql << " row " << r << " col " << c;
      }
    }
  }
  EXPECT_GT(robust.value().simulated_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AdaptedTpch, TpchQueriesTest,
                         ::testing::ValuesIn(kQueries));

TEST_F(TpchQueriesTest, ThresholdSweepNeverChangesAnswers) {
  const std::string sql = kQueries[3];  // Q6-style
  double reference = 0.0;
  bool first = true;
  for (double t : {0.05, 0.35, 0.65, 0.95}) {
    opt::OptimizerOptions options;
    options.confidence_threshold_hint = t;
    auto result =
        db_->ExecuteSql(sql, core::EstimatorKind::kRobustSample, options);
    ASSERT_TRUE(result.ok());
    const double revenue = result.value().rows.ValueAt(0, 0).AsDouble();
    if (first) {
      reference = revenue;
      first = false;
    } else {
      EXPECT_NEAR(revenue, reference, 1e-6 * std::max(1.0, reference));
    }
  }
}

}  // namespace
}  // namespace robustqo
