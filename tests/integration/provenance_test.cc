// The plan-choice provenance observatory, end to end: the serving layer
// files a record for every fresh optimizer run (why the winner won, how
// fragile it is across the selectivity posterior), re-plans file plan-diff
// records naming the PlanCacheOutcome trigger, every surface is
// byte-identical across thread counts, and SET PROVENANCE OFF restores
// the pre-provenance report and metric bytes. Also pins the
// report-overwrite regression: a request whose fault fires span both the
// PLAN and EXECUTE phases must report every fire in its retained trace —
// including when planning itself fails (the aborted-trace path used to
// drop the PLAN-phase fires).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/explain_analyze.h"
#include "expr/expression.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/plan_provenance.h"
#include "perf/task_pool.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/macros.h"
#include "util/rng.h"
#include "workload/traffic_harness.h"

namespace robustqo {
namespace {

constexpr uint64_t kBaseRows = 2000;

std::unique_ptr<core::Database> MakeReadingsDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < kBaseRows; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  RQO_CHECK_MSG(db->catalog()->AddTable(std::move(table)).ok(),
                "table load failed");
  db->UpdateStatistics();
  return db;
}

opt::QuerySpec ReadingsQuery(int64_t below) {
  opt::QuerySpec query;
  query.tables.push_back(
      {"readings", expr::Lt(expr::Col("r_value"), expr::LitInt(below))});
  return query;
}

constexpr unsigned kThreadCounts[] = {1, 4, 8};

class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = perf::ThreadCount(); }
  void TearDown() override { perf::SetThreadCount(saved_threads_); }

 private:
  unsigned saved_threads_ = 1;
};

TEST_F(ProvenanceTest, ServiceFilesRecordOnPlanMissOnly) {
  std::unique_ptr<core::Database> db = MakeReadingsDatabase();
  server::QueryService service(db.get(), {});
  ASSERT_TRUE(service.provenance()->enabled());
  const server::SessionId session = service.OpenSession();

  const opt::QuerySpec query = ReadingsQuery(50);
  const uint64_t fp = server::FingerprintQuery(query);
  ASSERT_TRUE(service.ExecuteSpec(session, query).status.ok());
  ASSERT_EQ(service.provenance()->size(), 1u);
  const obs::PlanProvenanceRecord* record = service.provenance()->Find(fp);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->estimator, "robust");
  EXPECT_FALSE(record->plan_label.empty());
  EXPECT_GT(record->estimated_cost, 0.0);
  ASSERT_TRUE(record->sensitivity.captured);
  ASSERT_TRUE(record->sensitivity.available)
      << record->sensitivity.unavailable_reason;
  EXPECT_EQ(record->sensitivity.grid.size(), 6u);
  EXPECT_EQ(record->sensitivity.selectivity.size(), 6u);
  ASSERT_FALSE(record->sensitivity.candidates.empty());
  EXPECT_EQ(record->sensitivity.candidates.front().label,
            record->sensitivity.plan_label);
  EXPECT_FALSE(record->sensitivity.verdict.empty());
  // The winner's curve reproduces its ranking cost at the planning
  // threshold's own selectivity — the cost_at(1.0) == cost invariant.
  EXPECT_FALSE(record->sensitivity.candidates.front().cost_at.empty());

  // A cache hit must not refresh or duplicate the record.
  server::QueryResponse hit = service.ExecuteSpec(session, query);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(service.provenance()->size(), 1u);
  EXPECT_EQ(service.provenance()->stats().recorded, 1u);
}

TEST_F(ProvenanceTest, DisablingProvenanceRestoresPreProvenanceBytes) {
  // Reference: a service with the observatory off behaves byte-for-byte
  // like a pre-provenance build — no records, no provenance metrics.
  std::unique_ptr<core::Database> db = MakeReadingsDatabase();
  server::QueryService service(db.get(), {});
  service.SetProvenanceEnabled(false);
  const server::SessionId session = service.OpenSession();
  ASSERT_TRUE(service.ExecuteSpec(session, ReadingsQuery(50)).status.ok());
  EXPECT_EQ(service.provenance()->size(), 0u);
  obs::MetricsRegistry metrics;
  service.PublishMetrics(&metrics);
  EXPECT_EQ(metrics.ToJson().find("optimizer.provenance"), std::string::npos);
  EXPECT_EQ(metrics.ToJson().find("optimizer.sensitivity"), std::string::npos);

  // The database-level capture is equally silent when off: EXPLAIN
  // ANALYZE text carries no sensitivity section.
  auto analyzed = core::ExplainAnalyze(db.get(), ReadingsQuery(50),
                                       core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed.value().ToText().find("sensitivity:"),
            std::string::npos);
  EXPECT_EQ(analyzed.value().ToJson().find("\"sensitivity\""),
            std::string::npos);
}

TEST_F(ProvenanceTest, ExplainAnalyzeCarriesSensitivityWhenCaptureIsOn) {
  std::unique_ptr<core::Database> db = MakeReadingsDatabase();
  db->SetProvenanceCapture(true);
  auto analyzed = core::ExplainAnalyze(db.get(), ReadingsQuery(50),
                                       core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(analyzed.ok());
  const std::string text = analyzed.value().ToText();
  EXPECT_NE(text.find("sensitivity:"), std::string::npos);
  EXPECT_NE(text.find("[winner]"), std::string::npos);
  EXPECT_NE(text.find("verdict:"), std::string::npos);
  const std::string json = analyzed.value().ToJson();
  EXPECT_NE(json.find("\"sensitivity\":{\"captured\":true"),
            std::string::npos);
  const std::string dot = analyzed.value().ToDot();
  EXPECT_NE(dot.find("sensitivity [shape=note"), std::string::npos);
}

// The ISSUE's drift arc: a plan is cached and served hot; its data floods
// underneath the stale statistics; the drift watchdog evicts the plan;
// the forced re-plan files a plan-diff record whose trigger names the
// plan-cache outcome and whose curves allow a cost-curve delta.
TEST_F(ProvenanceTest, DriftEvictionFilesPlanDiffWithTriggerAndCurves) {
  std::unique_ptr<core::Database> db = MakeReadingsDatabase();
  server::ServerConfig config;
  config.quality.baseline_window = 16;
  config.quality.recent_window = 16;
  config.quality.min_observations = 8;
  config.quality.drift_factor = 4.0;
  config.background_rebuild = false;
  server::QueryService service(db.get(), config);
  const server::SessionId session = service.OpenSession();

  const opt::QuerySpec drifting = ReadingsQuery(50);
  const uint64_t fp = server::FingerprintQuery(drifting);
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(service.ExecuteSpec(session, drifting).status.ok());
  }
  ASSERT_EQ(service.provenance()->size(), 1u);
  ASSERT_TRUE(service.provenance()->Diffs().empty());
  const uint64_t first_epoch = service.provenance()->Find(fp)->epoch;

  // Flood rows matching the predicate without rebuilding statistics.
  storage::Table* readings = db->catalog()->GetMutableTable("readings");
  ASSERT_NE(readings, nullptr);
  Rng rng(77);
  for (uint64_t i = 0; i < 3000; ++i) {
    readings->AppendRow(
        {storage::Value::Int64(static_cast<int64_t>(kBaseRows + i)),
         storage::Value::Int64(static_cast<int64_t>(rng.NextBounded(50)))});
  }
  bool evicted = false;
  for (int round = 0; round < 40 && !evicted; ++round) {
    ASSERT_TRUE(service.ExecuteSpec(session, drifting).status.ok());
    evicted = service.plan_cache()->stats().invalidated_drift > 0;
  }
  ASSERT_TRUE(evicted);

  // The evicted fingerprint is re-planned (drift-blocked: planned fresh,
  // not re-cached) and the observatory files the diff.
  ASSERT_TRUE(service.ExecuteSpec(session, drifting).status.ok());
  const auto diffs = service.provenance()->Diffs();
  ASSERT_FALSE(diffs.empty());
  const obs::PlanDiffRecord* diff = diffs.front();
  EXPECT_EQ(diff->fingerprint, fp);
  EXPECT_EQ(diff->trigger, "drift_blocked");
  EXPECT_FALSE(diff->old_label.empty());
  EXPECT_FALSE(diff->new_label.empty());
  // Both sides captured sensitivity, so the record supports a per-quantile
  // cost-curve delta on a shared grid.
  ASSERT_FALSE(diff->grid.empty());
  EXPECT_EQ(diff->old_curve.size(), diff->grid.size());
  EXPECT_EQ(diff->new_curve.size(), diff->grid.size());
  EXPECT_FALSE(diff->new_verdict.empty());
  // The refreshed record supersedes the pre-flood one under the same key.
  EXPECT_GE(service.provenance()->Find(fp)->epoch, first_epoch);
  // The .whyplan body stitches the arc together.
  const std::string report = service.provenance()->ReportFor(fp);
  EXPECT_NE(report.find("[drift_blocked]"), std::string::npos);
  EXPECT_NE(report.find("curve delta:"), std::string::npos);
}

TEST_F(ProvenanceTest, WhyplanAndTrafficBytesIdenticalAcrossThreadCounts) {
  workload::TrafficConfig config;
  config.clients = 200;
  config.duration_seconds = 10.0;
  config.think_seconds = 4.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};

  std::string reference_summary;
  std::string reference_json;
  std::string reference_whyplan;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    std::unique_ptr<core::Database> db = MakeReadingsDatabase();
    server::ServerConfig server_config;
    server_config.admission.max_concurrent = 8;
    server_config.admission.max_queue_depth = 128;
    server::QueryService service(db.get(), server_config);
    const workload::TrafficReport report =
        workload::RunTraffic(&service, config);
    EXPECT_GT(report.completed, 100u);
    ASSERT_GT(service.provenance()->size(), 0u);
    std::string whyplan = service.provenance()->ReportText();
    for (const obs::PlanProvenanceRecord* record :
         service.provenance()->Snapshot()) {
      whyplan += service.provenance()->ReportFor(record->fingerprint);
    }
    if (threads == 1) {
      reference_summary = report.Summary();
      reference_json = report.provenance_json;
      reference_whyplan = whyplan;
    } else {
      EXPECT_EQ(report.Summary(), reference_summary) << "threads=" << threads;
      EXPECT_EQ(report.provenance_json, reference_json)
          << "threads=" << threads;
      EXPECT_EQ(whyplan, reference_whyplan) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference_json.empty());
  EXPECT_FALSE(reference_whyplan.empty());
}

#if ROBUSTQO_OBS_ENABLED
// Report-overwrite regression (the satellite sweep's find): fault fires
// counted in the PLAN phase must survive into the retained trace when the
// request later fails — in EXECUTE, and on the aborted path where
// planning itself fails (OfferAbortedTrace used to zero them).
TEST_F(ProvenanceTest, FaultFiresAccumulateAcrossPlanAndExecutePhases) {
  std::unique_ptr<core::Database> db = MakeReadingsDatabase();
  server::ServerConfig config;
  config.flight_recorder.enabled = true;
  server::QueryService service(db.get(), config);
  const server::SessionId session = service.OpenSession();

  // PLAN-phase fire: every plan-cache lookup degrades to a miss.
  // EXECUTE-phase fire: every operator workspace allocation fails.
  db->fault_injector()->Arm(fault::sites::kPlanCacheLookup,
                            fault::FaultSpec::Always());
  fault::FaultSpec alloc = fault::FaultSpec::Always();
  alloc.code = StatusCode::kResourceExhausted;
  db->fault_injector()->Arm(fault::sites::kOperatorAlloc, alloc);

  server::QueryResponse failed = service.ExecuteSpec(session, ReadingsQuery(50));
  EXPECT_FALSE(failed.status.ok());
  auto traces = service.flight_recorder()->Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0]->failed);
  EXPECT_GE(traces[0]->fault_fires, 2u)
      << "PLAN-phase fire lost: trace reports " << traces[0]->fault_fires;
  db->fault_injector()->DisarmAll();
}

TEST_F(ProvenanceTest, AbortedPlanTraceKeepsPlanPhaseFaultFires) {
  std::unique_ptr<core::Database> db = MakeReadingsDatabase();
  server::ServerConfig config;
  config.flight_recorder.enabled = true;
  server::QueryService service(db.get(), config);
  const server::SessionId session = service.OpenSession();

  db->fault_injector()->Arm(fault::sites::kPlanCacheLookup,
                            fault::FaultSpec::Always());
  // Planning fails outright: the spec names a table the catalog lacks.
  opt::QuerySpec bogus;
  bogus.tables.push_back({"no_such_table", nullptr});
  server::QueryResponse failed = service.ExecuteSpec(session, bogus);
  EXPECT_FALSE(failed.status.ok());
  auto traces = service.flight_recorder()->Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0]->failed);
  EXPECT_GE(traces[0]->fault_fires, 1u)
      << "aborted-plan trace dropped the degraded-lookup fire";
  db->fault_injector()->DisarmAll();
}
#endif  // ROBUSTQO_OBS_ENABLED

}  // namespace
}  // namespace robustqo
