// The full online-maintenance arc, end to end and hands-free: write
// traffic through the query service feeds the per-table reservoir and
// modification counters; crossing the maintenance threshold (or a drift
// flag) marks the table pending; the end-of-wave background rebuild
// redraws its statistics and bumps the statistics epoch; and the plan
// cache's lazy epoch invalidation drops the stale plan and re-caches a
// fresh one — with no manual UPDATE STATISTICS anywhere.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "server/query_service.h"
#include "statistics/statistics_catalog.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace robustqo {
namespace {

constexpr uint64_t kBaseRows = 1000;

std::unique_ptr<core::Database> MakeDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < kBaseRows; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  EXPECT_TRUE(db->catalog()->AddTable(std::move(table)).ok());
  db->UpdateStatistics();
  return db;
}

const char kCountSql[] = "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50";

stats::StatisticsCatalog::MaintenanceEntry ReadingsMaintenance(
    core::Database* db) {
  for (const auto& entry : db->statistics()->MaintenanceState()) {
    if (entry.table == "readings") return entry;
  }
  ADD_FAILURE() << "no maintenance state for readings";
  return {};
}

TEST(OnlineMaintenanceTest, WriteFloodTriggersRebuildAndPlanRecache) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  server::QueryService service(db.get());
  const server::SessionId session = service.OpenSession();
  ASSERT_TRUE(service.Prepare(session, "count", kCountSql).ok());

  // Cache the read's plan under the initial statistics epoch.
  const uint64_t epoch0 = db->statistics()->epoch();
  server::QueryResponse cold = service.ExecutePrepared(session, "count");
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(service.ExecutePrepared(session, "count").cache_hit);

  // Flood: INSERT batches through the service until the maintenance
  // policy's 20%-of-table threshold flags the table. Each wave commits,
  // feeds the reservoir, and runs the background rebuild check; the
  // rebuild must fire on its own before the flood ends.
  Rng rng(7);
  uint64_t next_id = 10000;
  for (int wave = 0; wave < 30 && db->statistics()->epoch() == epoch0;
       ++wave) {
    std::string sql = "INSERT INTO readings VALUES ";
    for (int row = 0; row < 10; ++row) {
      if (row > 0) sql += ", ";
      sql += StrPrintf("(%llu, %llu)",
                       static_cast<unsigned long long>(next_id++),
                       static_cast<unsigned long long>(rng.NextBounded(50)));
    }
    server::QueryResponse w = service.ExecuteSql(session, sql);
    ASSERT_TRUE(w.status.ok()) << w.status.ToString();
    ASSERT_TRUE(w.dml.has_value());
  }

  // The background rebuild bumped the statistics epoch — no manual
  // UpdateStatistics anywhere in this test.
  EXPECT_GT(db->statistics()->epoch(), epoch0);
  // The rebuild reset the table's maintenance counters.
  stats::StatisticsCatalog::MaintenanceEntry entry = ReadingsMaintenance(db.get());
  EXPECT_FALSE(entry.pending_rebuild);

  // The cached plan was built under epoch0: the next lookup lazily drops
  // it and the replan re-caches under the fresh epoch.
  const uint64_t invalidated_before =
      service.plan_cache()->stats().invalidated_epoch;
  server::QueryResponse replanned = service.ExecutePrepared(session, "count");
  ASSERT_TRUE(replanned.status.ok());
  EXPECT_FALSE(replanned.cache_hit);
  EXPECT_GT(service.plan_cache()->stats().invalidated_epoch,
            invalidated_before);
  EXPECT_TRUE(service.ExecutePrepared(session, "count").cache_hit);
}

TEST(OnlineMaintenanceTest, ReservoirFollowsCommittedWritesOnly) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  server::QueryService service(db.get());
  const server::SessionId session = service.OpenSession();

  const stats::StatisticsCatalog::MaintenanceEntry before =
      ReadingsMaintenance(db.get());

  server::QueryResponse w = service.ExecuteSql(
      session, "INSERT INTO readings VALUES (9001, 1), (9002, 2)");
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();

  const stats::StatisticsCatalog::MaintenanceEntry after =
      ReadingsMaintenance(db.get());
  EXPECT_EQ(after.reservoir_seen, before.reservoir_seen + 2);
  EXPECT_EQ(after.modifications, before.modifications + 2);

  // A parse-failed statement commits nothing and feeds nothing.
  ASSERT_FALSE(
      service.ExecuteSql(session, "INSERT INTO readings VALUES ('x', 1)")
          .status.ok());
  EXPECT_EQ(ReadingsMaintenance(db.get()).reservoir_seen,
            after.reservoir_seen);
}

TEST(OnlineMaintenanceTest, BackgroundRebuildCanBeDisabled) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  server::ServerConfig config;
  config.background_rebuild = false;
  server::QueryService service(db.get(), config);
  const server::SessionId session = service.OpenSession();

  const uint64_t epoch0 = db->statistics()->epoch();
  Rng rng(7);
  uint64_t next_id = 10000;
  for (int wave = 0; wave < 30; ++wave) {
    std::string sql = "INSERT INTO readings VALUES ";
    for (int row = 0; row < 10; ++row) {
      if (row > 0) sql += ", ";
      sql += StrPrintf("(%llu, %llu)",
                       static_cast<unsigned long long>(next_id++),
                       static_cast<unsigned long long>(rng.NextBounded(50)));
    }
    ASSERT_TRUE(service.ExecuteSql(session, sql).status.ok());
  }

  // The threshold tripped (the table is flagged) but nothing rebuilt.
  EXPECT_EQ(db->statistics()->epoch(), epoch0);
  EXPECT_TRUE(ReadingsMaintenance(db.get()).pending_rebuild);

  // The database-level hook is the manual escape hatch.
  EXPECT_GT(db->RebuildPendingStatistics(), 0u);
  EXPECT_GT(db->statistics()->epoch(), epoch0);
  EXPECT_FALSE(ReadingsMaintenance(db.get()).pending_rebuild);
}

}  // namespace
}  // namespace robustqo
