// The cluster determinism contract, end to end: a multi-node service must
// produce byte-identical query results, traffic summaries, `.cluster`
// reports and metric exports at every RQO_THREADS x RQO_NODES combination
// — and a single-node service (nodes=1, the default) must be
// byte-identical to the pre-cluster build, because no coordinator is
// constructed at all. See docs/CLUSTER.md.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "core/database.h"
#include "fault/fault_injector.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "perf/task_pool.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/table.h"
#include "util/macros.h"
#include "util/rng.h"
#include "workload/traffic_harness.h"

namespace robustqo {
namespace {

constexpr unsigned kThreadCounts[] = {1, 4, 8};
constexpr size_t kNodeCounts[] = {1, 2, 4};

std::unique_ptr<core::Database> MakeReadingsDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < 2000; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  RQO_CHECK_MSG(db->catalog()->AddTable(std::move(table)).ok(),
                "table load failed");
  db->UpdateStatistics();
  return db;
}

server::ServerConfig MakeServerConfig(size_t nodes) {
  server::ServerConfig config;
  config.admission.max_concurrent = 8;
  config.admission.max_queue_depth = 128;
  config.cluster.nodes = nodes;
  return config;
}

workload::TrafficConfig MakeTraffic() {
  workload::TrafficConfig config;
  config.clients = 200;
  config.duration_seconds = 10.0;
  config.think_seconds = 5.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};
  return config;
}

std::string Csv(const storage::Table& table) {
  std::ostringstream out;
  RQO_CHECK_MSG(storage::WriteCsv(table, &out).ok(), "csv dump failed");
  return out.str();
}

// Restores the global thread count after each test.
class ClusterDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = perf::ThreadCount(); }
  void TearDown() override { perf::SetThreadCount(saved_threads_); }

 private:
  unsigned saved_threads_ = 1;
};

// The acceptance pin: one traffic summary reference, captured on the
// single-node service at one thread (which constructs no coordinator and
// IS the pre-cluster serving path), matched byte-for-byte by every
// RQO_THREADS x RQO_NODES combination.
TEST_F(ClusterDeterminismTest, TrafficSummaryIdenticalAcrossThreadsAndNodes) {
  const workload::TrafficConfig traffic = MakeTraffic();
  std::string reference;
  for (size_t nodes : kNodeCounts) {
    for (unsigned threads : kThreadCounts) {
      perf::SetThreadCount(threads);
      std::unique_ptr<core::Database> db = MakeReadingsDatabase();
      server::QueryService service(db.get(), MakeServerConfig(nodes));
      EXPECT_EQ(service.cluster() != nullptr, nodes > 1);
      const workload::TrafficReport report =
          workload::RunTraffic(&service, traffic);
      EXPECT_GT(report.completed, 200u);
      const std::string summary = report.Summary();
      if (reference.empty()) {
        reference = summary;
      } else {
        EXPECT_EQ(summary, reference)
            << "nodes=" << nodes << " threads=" << threads;
      }
      // Multi-node services actually routed work — the identity is not
      // vacuous.
      if (nodes > 1) {
        const std::string cluster_report = service.ClusterReportText();
        EXPECT_EQ(cluster_report.find("requests: routed=0 "),
                  std::string::npos)
            << cluster_report;
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

// Direct query-result pin: the same statement executed through a 1-, 2-
// and 4-node service returns a byte-identical result table, simulated
// seconds and plan label.
TEST_F(ClusterDeterminismTest, QueryResultsIdenticalAcrossNodeCounts) {
  std::string reference_csv;
  double reference_seconds = 0.0;
  std::string reference_label;
  for (size_t nodes : kNodeCounts) {
    std::unique_ptr<core::Database> db = MakeReadingsDatabase();
    server::QueryService service(db.get(), MakeServerConfig(nodes));
    const server::SessionId session = service.OpenSession();
    const server::QueryResponse response = service.ExecuteSql(
        session, "SELECT r_id, r_value FROM readings WHERE r_value < 250");
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_TRUE(response.result.has_value());
    const std::string csv = Csv(response.result->rows);
    if (nodes == 1) {
      reference_csv = csv;
      reference_seconds = response.result->simulated_seconds;
      reference_label = response.result->plan_label;
    } else {
      EXPECT_EQ(csv, reference_csv) << "nodes=" << nodes;
      EXPECT_EQ(response.result->simulated_seconds, reference_seconds)
          << "nodes=" << nodes;
      EXPECT_EQ(response.result->plan_label, reference_label)
          << "nodes=" << nodes;
    }
  }
  EXPECT_FALSE(reference_csv.empty());
}

// The `.cluster` report is wave-accumulated state: it must not see thread
// scheduling at all.
TEST_F(ClusterDeterminismTest, ClusterReportIdenticalAcrossThreadCounts) {
  const workload::TrafficConfig traffic = MakeTraffic();
  for (size_t nodes : {size_t{2}, size_t{4}}) {
    std::string reference;
    for (unsigned threads : kThreadCounts) {
      perf::SetThreadCount(threads);
      std::unique_ptr<core::Database> db = MakeReadingsDatabase();
      server::QueryService service(db.get(), MakeServerConfig(nodes));
      workload::RunTraffic(&service, traffic);
      const std::string report = service.ClusterReportText();
      if (threads == 1) {
        reference = report;
      } else {
        EXPECT_EQ(report, reference)
            << "nodes=" << nodes << " threads=" << threads;
      }
    }
    EXPECT_NE(reference.find("partition: epoch=0"), std::string::npos)
        << reference;
    EXPECT_NE(reference.find("stats sync:"), std::string::npos);
  }
  // Single-node: no coordinator, fixed report.
  std::unique_ptr<core::Database> db = MakeReadingsDatabase();
  server::QueryService service(db.get(), MakeServerConfig(1));
  EXPECT_EQ(service.ClusterReportText(),
            "cluster: single-node (no coordinator)\n");
}

#if ROBUSTQO_OBS_ENABLED
// Metric export leg: cluster.* counters publish from REDUCE-accumulated
// totals, so the OpenMetrics text is byte-identical across thread counts
// — and single-node exports contain no cluster metrics at all.
TEST_F(ClusterDeterminismTest, MetricsExportIdenticalAcrossThreadCounts) {
  const workload::TrafficConfig traffic = MakeTraffic();
  for (size_t nodes : kNodeCounts) {
    std::string reference;
    for (unsigned threads : kThreadCounts) {
      perf::SetThreadCount(threads);
      std::unique_ptr<core::Database> db = MakeReadingsDatabase();
      server::QueryService service(db.get(), MakeServerConfig(nodes));
      workload::RunTraffic(&service, traffic);
      obs::MetricsRegistry registry;
      service.PublishMetrics(&registry);
      const std::string om = obs::ToOpenMetrics(registry);
      EXPECT_EQ(om.find("rqo_cluster_") != std::string::npos, nodes > 1);
      if (threads == 1) {
        reference = om;
      } else {
        EXPECT_EQ(om, reference)
            << "nodes=" << nodes << " threads=" << threads;
      }
    }
    EXPECT_FALSE(reference.empty());
  }
}
#endif

// The armed leg of the acceptance pin: with replica.stale_stats armed the
// sweep still answers every query correctly (stale nodes re-route to
// local execution), the summary stays byte-identical to the unarmed
// reference, and the `.cluster` report — which records the pinned sync
// and the per-request stale detections — is identical at every thread
// count.
TEST_F(ClusterDeterminismTest, StaleStatsArmedRunIdenticalAcrossThreadCounts) {
  const workload::TrafficConfig traffic = MakeTraffic();

  perf::SetThreadCount(1);
  std::string unarmed_summary;
  {
    std::unique_ptr<core::Database> db = MakeReadingsDatabase();
    server::QueryService service(db.get(), MakeServerConfig(4));
    unarmed_summary = workload::RunTraffic(&service, traffic).Summary();
  }

  std::string reference_summary;
  std::string reference_report;
  for (unsigned threads : kThreadCounts) {
    perf::SetThreadCount(threads);
    std::unique_ptr<core::Database> db = MakeReadingsDatabase();
    // Sync probes run sequentially in the wave prologue, so "the 3rd
    // replication message is lost" pins the same node at every thread
    // count.
    db->fault_injector()->Arm(fault::sites::kReplicaStaleStats,
                              fault::FaultSpec::OnNth(3));
    server::QueryService service(db.get(), MakeServerConfig(4));
    const workload::TrafficReport report =
        workload::RunTraffic(&service, traffic);
    EXPECT_GT(report.completed, 200u);
    const std::string summary = report.Summary();
    const std::string cluster_report = service.ClusterReportText();
    if (threads == 1) {
      reference_summary = summary;
      reference_report = cluster_report;
    } else {
      EXPECT_EQ(summary, reference_summary) << "threads=" << threads;
      EXPECT_EQ(cluster_report, reference_report) << "threads=" << threads;
    }
  }
  // Correct-result contract: the fault changed routing, never answers.
  EXPECT_EQ(reference_summary, unarmed_summary);
  // The pinned sync and its downstream detections are on the record.
  EXPECT_NE(reference_report.find(" stale=1 "), std::string::npos)
      << reference_report;
  EXPECT_NE(reference_report.find("stale_events=1"), std::string::npos)
      << reference_report;
}

}  // namespace
}  // namespace robustqo
