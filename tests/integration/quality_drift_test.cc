// Estimation-quality monitoring end to end: a >= 100-query workload whose
// EXPLAIN ANALYZE feedback flows through workload::RecordAnalyzedPlan into
// the obs::EstimationQualityMonitor. One query shape keeps estimating well;
// a second has its data mutated underneath the (now stale) statistics, and
// the monitor must flag exactly that fingerprint as drifted while
// reporting per-fingerprint q-error quantiles and the T%-bound hit-rate.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/database.h"
#include "core/explain_analyze.h"
#include "expr/expression.h"
#include "obs/quality_monitor.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"
#include "workload/quality_report.h"

namespace robustqo {
namespace {

// The estimate/actual join rides on estimator trace events (that is where
// the fingerprints come from), which compile out with -DROBUSTQO_OBS=OFF.
#if ROBUSTQO_OBS_ENABLED

using core::Database;
using core::EstimatorKind;

constexpr uint64_t kBaseRows = 2000;

// A statistics-only table (no indexes), so mutating rows after statistics
// are built changes plans' actuals but never their correctness: every plan
// is a sequential scan over live data.
void LoadReadings(storage::Catalog* catalog) {
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < kBaseRows; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  ASSERT_TRUE(catalog->AddTable(std::move(table)).ok());
}

opt::QuerySpec DriftingQuery() {
  // r_value < 50: ~5% selectivity until the drift phase floods the table
  // with qualifying rows.
  opt::QuerySpec query;
  query.tables.push_back(
      {"readings", expr::Lt(expr::Col("r_value"), expr::LitInt(50))});
  return query;
}

opt::QuerySpec HealthyQuery() {
  // 500 <= r_value < 600: ~10% selectivity, unaffected by the mutation.
  opt::QuerySpec query;
  query.tables.push_back(
      {"readings",
       expr::And({expr::Ge(expr::Col("r_value"), expr::LitInt(500)),
                  expr::Lt(expr::Col("r_value"), expr::LitInt(600))})});
  return query;
}

TEST(QualityDriftTest, MonitorFlagsTheDriftedFingerprintOver100Queries) {
  Database db;
  LoadReadings(db.catalog());
  db.UpdateStatistics();

  obs::QualityMonitorConfig config;
  config.baseline_window = 16;
  config.recent_window = 16;
  config.min_observations = 8;
  config.drift_factor = 4.0;
  obs::EstimationQualityMonitor monitor(config);

  const std::vector<opt::QuerySpec> queries = {DriftingQuery(),
                                               HealthyQuery()};
  size_t executed = 0;
  auto run_round = [&](size_t rounds) {
    for (size_t r = 0; r < rounds; ++r) {
      for (const opt::QuerySpec& query : queries) {
        auto analyzed =
            core::ExplainAnalyze(&db, query, EstimatorKind::kRobustSample);
        ASSERT_TRUE(analyzed.ok());
        ASSERT_TRUE(analyzed.value().execution_error.empty());
        ASSERT_EQ(workload::RecordAnalyzedPlan(analyzed.value(), &monitor),
                  1u);
        ++executed;
      }
    }
  };

  // Baseline phase: statistics are fresh, estimates track actuals.
  run_round(20);
  EXPECT_TRUE(monitor.Drifted().empty())
      << "nothing should drift while statistics are fresh:\n"
      << monitor.ReportText();

  // Data moves underneath the statistics: flood the table with rows
  // matching the drifting predicate, WITHOUT rebuilding statistics. The
  // stale sample keeps estimating ~5% for r_value < 50 while the actual
  // count explodes.
  storage::Table* readings = db.catalog()->GetMutableTable("readings");
  ASSERT_NE(readings, nullptr);
  Rng rng(77);
  for (uint64_t i = 0; i < 3000; ++i) {
    readings->AppendRow(
        {storage::Value::Int64(static_cast<int64_t>(kBaseRows + i)),
         storage::Value::Int64(static_cast<int64_t>(rng.NextBounded(50)))});
  }

  run_round(40);
  ASSERT_GE(executed, 100u);
  EXPECT_EQ(monitor.observation_count(), executed);
  EXPECT_EQ(monitor.fingerprint_count(), 2u);

  // Exactly the mutated fingerprint is flagged.
  const std::vector<obs::FingerprintQuality> drifted = monitor.Drifted();
  ASSERT_EQ(drifted.size(), 1u) << monitor.ReportText();
  const uint64_t drifting_fp = drifted[0].fingerprint;
  EXPECT_GE(drifted[0].drift_ratio, 4.0);
  EXPECT_GT(drifted[0].q_p99, drifted[0].baseline_median_q);

  // Per-fingerprint profiles carry q-error quantiles and calibration
  // tallies over the whole run.
  for (const obs::FingerprintQuality& q : monitor.Snapshot()) {
    EXPECT_EQ(q.observations, 60u);
    EXPECT_GT(q.q_p50, 0.9);  // q-error >= 1 up to sketch accuracy
    EXPECT_GE(q.q_p99, q.q_p50);
    EXPECT_EQ(q.bound_checks, 60u) << "every robust estimate carries T";
    EXPECT_GT(q.mean_threshold, 0.0);
    if (q.fingerprint == drifting_fp) {
      // The posterior upper bound cannot survive a 10x actuals explosion.
      EXPECT_LT(q.bound_hit_rate, 0.9);
    } else {
      // The healthy shape's T%-bound keeps holding.
      EXPECT_GT(q.bound_hit_rate, 0.9);
    }
  }

  // The drift report renders both fingerprints and marks the drifted one.
  const std::string report = monitor.ReportText();
  EXPECT_NE(report.find("DRIFTED"), std::string::npos);
  EXPECT_NE(report.find("ok"), std::string::npos);

  // estimator.quality.* metrics publish the same picture.
  obs::MetricsRegistry metrics;
  monitor.PublishMetrics(&metrics);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("estimator.quality.fingerprints")->value(),
                   2.0);
  EXPECT_DOUBLE_EQ(
      metrics.GetGauge("estimator.quality.drifted_fingerprints")->value(),
      1.0);
  EXPECT_EQ(metrics.GetSketch("estimator.quality.q_error")->count(), executed);
}

#endif  // ROBUSTQO_OBS_ENABLED

}  // namespace
}  // namespace robustqo
