#include "stats_math/beta_distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace robustqo {
namespace math {
namespace {

TEST(BetaDistributionTest, MeanAndVariance) {
  BetaDistribution d(2.0, 3.0);
  EXPECT_NEAR(d.Mean(), 0.4, 1e-12);
  EXPECT_NEAR(d.Variance(), 2.0 * 3.0 / (25.0 * 6.0), 1e-12);
}

TEST(BetaDistributionTest, UniformSpecialCase) {
  BetaDistribution d(1.0, 1.0);
  EXPECT_NEAR(d.Pdf(0.3), 1.0, 1e-12);
  EXPECT_NEAR(d.Cdf(0.3), 0.3, 1e-12);
  EXPECT_NEAR(d.InverseCdf(0.7), 0.7, 1e-9);
}

TEST(BetaDistributionTest, PdfIntegratesToOne) {
  BetaDistribution d(3.5, 7.0);
  double integral = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    const double x = (i + 0.5) / steps;
    integral += d.Pdf(x) / steps;
  }
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(BetaDistributionTest, PdfMatchesNumericalCdfDerivative) {
  BetaDistribution d(5.0, 12.0);
  for (double x : {0.1, 0.25, 0.5, 0.75}) {
    const double h = 1e-6;
    const double numeric = (d.Cdf(x + h) - d.Cdf(x - h)) / (2 * h);
    EXPECT_NEAR(d.Pdf(x), numeric, 1e-4 * std::max(1.0, d.Pdf(x)));
  }
}

TEST(BetaDistributionTest, BoundaryPdfBehaviour) {
  EXPECT_EQ(BetaDistribution(2.0, 2.0).Pdf(0.0), 0.0);
  EXPECT_EQ(BetaDistribution(2.0, 2.0).Pdf(1.0), 0.0);
  EXPECT_TRUE(std::isinf(BetaDistribution(0.5, 0.5).Pdf(0.0)));
  EXPECT_TRUE(std::isinf(BetaDistribution(0.5, 0.5).Pdf(1.0)));
  EXPECT_EQ(BetaDistribution(2.0, 2.0).Pdf(-0.1), 0.0);
  EXPECT_EQ(BetaDistribution(2.0, 2.0).Pdf(1.1), 0.0);
}

TEST(BetaDistributionTest, ModeInteriorForShapesAboveOne) {
  BetaDistribution d(3.0, 5.0);
  EXPECT_NEAR(d.Mode(), 2.0 / 6.0, 1e-12);
  // The pdf is maximized at the mode.
  const double at_mode = d.Pdf(d.Mode());
  EXPECT_GT(at_mode, d.Pdf(d.Mode() + 0.05));
  EXPECT_GT(at_mode, d.Pdf(d.Mode() - 0.05));
}

TEST(BetaDistributionTest, SampleMomentsMatch) {
  BetaDistribution d(10.5, 90.5);
  Rng rng(99);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = d.Sample(&rng);
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, d.Mean(), 0.002);
  EXPECT_NEAR(sq / n - mean * mean, d.Variance(), 0.0005);
}

TEST(BetaDistributionTest, SampleWithSubUnitShape) {
  BetaDistribution d(0.5, 0.5);
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += d.Sample(&rng);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(BetaDistributionTest, CdfInverseCdfConsistency) {
  BetaDistribution d(50.5, 450.5);
  for (double p : {0.05, 0.5, 0.8, 0.95}) {
    EXPECT_NEAR(d.Cdf(d.InverseCdf(p)), p, 1e-9);
  }
}

}  // namespace
}  // namespace math
}  // namespace robustqo
