#include "stats_math/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace robustqo {
namespace math {
namespace {

TEST(LogGammaTest, KnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-12);
}

TEST(LogBetaTest, SymmetryAndKnownValues) {
  EXPECT_NEAR(LogBeta(2.0, 3.0), LogBeta(3.0, 2.0), 1e-14);
  // B(1,1) = 1, B(2,3) = 1/12.
  EXPECT_NEAR(LogBeta(1.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogBeta(2.0, 3.0), std::log(1.0 / 12.0), 1e-10);
  // Jeffreys prior normalizer: B(1/2, 1/2) = pi.
  EXPECT_NEAR(LogBeta(0.5, 0.5), std::log(M_PI), 1e-10);
}

TEST(LogBinomialCoefficientTest, SmallCases) {
  EXPECT_NEAR(LogBinomialCoefficient(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(LogBinomialCoefficient(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(50, 25),
              std::log(126410606437752.0), 1e-8);
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.73, 0.99}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBetaTest, ClosedFormForIntegerParams) {
  // I_x(2,1) = x^2, I_x(1,2) = 1-(1-x)^2 = 2x - x^2.
  for (double x : {0.1, 0.4, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 1.0, x), x * x, 1e-12);
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 2.0, x), 2 * x - x * x, 1e-12);
  }
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.05, 0.3, 0.6, 0.95}) {
    for (double a : {0.5, 2.0, 10.5}) {
      for (double b : {0.5, 3.0, 40.0}) {
        EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x),
                    1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x), 1e-10);
      }
    }
  }
}

TEST(IncompleteBetaTest, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.01) {
    const double v = RegularizedIncompleteBeta(3.5, 7.5, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(IncompleteBetaTest, MedianOfSymmetricIsHalf) {
  EXPECT_NEAR(RegularizedIncompleteBeta(4.0, 4.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(RegularizedIncompleteBeta(0.5, 0.5, 0.5), 0.5, 1e-12);
}

// Property sweep: the inverse is a true inverse across a parameter grid,
// including the large shape values of posterior distributions on big
// samples.
using InvBetaParam = std::tuple<double, double>;
class InverseBetaRoundtrip : public ::testing::TestWithParam<InvBetaParam> {};

TEST_P(InverseBetaRoundtrip, CdfOfInverseIsIdentity) {
  const auto [a, b] = GetParam();
  for (double p : {0.001, 0.01, 0.05, 0.2, 0.5, 0.8, 0.95, 0.99, 0.999}) {
    const double x = InverseRegularizedIncompleteBeta(a, b, p);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x), p, 1e-9)
        << "a=" << a << " b=" << b << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, InverseBetaRoundtrip,
    ::testing::Values(InvBetaParam{0.5, 0.5}, InvBetaParam{0.5, 500.5},
                      InvBetaParam{1.0, 1.0}, InvBetaParam{1.5, 99.5},
                      InvBetaParam{10.5, 90.5}, InvBetaParam{50.5, 450.5},
                      InvBetaParam{2500.0, 2500.0}, InvBetaParam{3.0, 1.0},
                      InvBetaParam{1.0, 2500.0}, InvBetaParam{0.5, 2.5}));

TEST(InverseBetaTest, DegenerateProbabilities) {
  EXPECT_EQ(InverseRegularizedIncompleteBeta(2.0, 5.0, 0.0), 0.0);
  EXPECT_EQ(InverseRegularizedIncompleteBeta(2.0, 5.0, 1.0), 1.0);
}

TEST(InverseBetaTest, MonotoneInP) {
  double prev = 0.0;
  for (double p = 0.01; p < 1.0; p += 0.01) {
    const double x = InverseRegularizedIncompleteBeta(10.5, 990.5, p);
    EXPECT_GE(x, prev);
    prev = x;
  }
}

TEST(InverseBetaTest, PaperExampleQuantiles) {
  // Paper Section 3.4: 10 of 100 sample tuples satisfy the predicate;
  // posterior Beta(10.5, 90.5). Confidence thresholds 20%/50%/80% give
  // estimates ~7.8% / ~10.1% / ~12.8%.
  const double a = 10.5;
  const double b = 90.5;
  EXPECT_NEAR(InverseRegularizedIncompleteBeta(a, b, 0.20), 0.078, 0.002);
  EXPECT_NEAR(InverseRegularizedIncompleteBeta(a, b, 0.50), 0.101, 0.002);
  EXPECT_NEAR(InverseRegularizedIncompleteBeta(a, b, 0.80), 0.128, 0.002);
}

}  // namespace
}  // namespace math
}  // namespace robustqo
