#include "stats_math/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace robustqo {
namespace math {
namespace {

TEST(DescriptiveTest, Mean) {
  EXPECT_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Mean({7}), 7.0);
}

TEST(DescriptiveTest, PopulationVsSampleVariance) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(PopulationVariance(xs), 4.0, 1e-12);
  EXPECT_NEAR(SampleVariance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(PopulationStdDev(xs), 2.0, 1e-12);
}

TEST(DescriptiveTest, VarianceDegenerateCases) {
  EXPECT_EQ(PopulationVariance({}), 0.0);
  EXPECT_EQ(SampleVariance({5.0}), 0.0);
  EXPECT_EQ(PopulationVariance({3.0, 3.0, 3.0}), 0.0);
}

TEST(DescriptiveTest, PercentileInterpolation) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_EQ(Percentile(xs, 1.0), 40.0);
  EXPECT_NEAR(Percentile(xs, 0.5), 25.0, 1e-12);
  EXPECT_NEAR(Percentile(xs, 1.0 / 3.0), 20.0, 1e-9);
}

TEST(DescriptiveTest, PercentileUnsortedInput) {
  EXPECT_NEAR(Percentile({40, 10, 30, 20}, 0.5), 25.0, 1e-12);
}

TEST(DescriptiveTest, SummaryFields) {
  Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.p25, 2.0);
  EXPECT_EQ(s.p75, 4.0);
  EXPECT_NEAR(s.std_dev, std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace math
}  // namespace robustqo
