#include "stats_math/binomial_distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace robustqo {
namespace math {
namespace {

TEST(BinomialTest, PmfSmallCase) {
  BinomialDistribution d(4, 0.5);
  EXPECT_NEAR(d.Pmf(0), 1.0 / 16, 1e-12);
  EXPECT_NEAR(d.Pmf(1), 4.0 / 16, 1e-12);
  EXPECT_NEAR(d.Pmf(2), 6.0 / 16, 1e-12);
  EXPECT_NEAR(d.Pmf(4), 1.0 / 16, 1e-12);
}

TEST(BinomialTest, PmfSumsToOne) {
  BinomialDistribution d(100, 0.13);
  double sum = 0.0;
  for (int64_t k = 0; k <= 100; ++k) sum += d.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(BinomialTest, PmfOutsideSupportIsZero) {
  BinomialDistribution d(10, 0.4);
  EXPECT_EQ(d.Pmf(-1), 0.0);
  EXPECT_EQ(d.Pmf(11), 0.0);
}

TEST(BinomialTest, DegenerateProbabilities) {
  BinomialDistribution zero(10, 0.0);
  EXPECT_EQ(zero.Pmf(0), 1.0);
  EXPECT_EQ(zero.Pmf(1), 0.0);
  EXPECT_EQ(zero.Cdf(0), 1.0);
  BinomialDistribution one(10, 1.0);
  EXPECT_EQ(one.Pmf(10), 1.0);
  EXPECT_EQ(one.Pmf(9), 0.0);
  EXPECT_EQ(one.Cdf(9), 0.0);
  EXPECT_EQ(one.Cdf(10), 1.0);
}

TEST(BinomialTest, CdfMatchesPmfPrefixSums) {
  BinomialDistribution d(60, 0.07);
  double run = 0.0;
  for (int64_t k = 0; k <= 60; ++k) {
    run += d.Pmf(k);
    EXPECT_NEAR(d.Cdf(k), run, 1e-9) << "k=" << k;
  }
}

TEST(BinomialTest, CdfBoundaries) {
  BinomialDistribution d(10, 0.3);
  EXPECT_EQ(d.Cdf(-1), 0.0);
  EXPECT_EQ(d.Cdf(10), 1.0);
  EXPECT_EQ(d.Cdf(100), 1.0);
}

TEST(BinomialTest, MeanAndVariance) {
  BinomialDistribution d(1000, 0.002);
  EXPECT_NEAR(d.Mean(), 2.0, 1e-12);
  EXPECT_NEAR(d.Variance(), 1000 * 0.002 * 0.998, 1e-12);
}

TEST(BinomialTest, LargeNStability) {
  // The Section-5 model uses n up to 2500; log-space evaluation must not
  // underflow to garbage.
  BinomialDistribution d(2500, 0.0014);
  double sum = 0.0;
  for (int64_t k = 0; k <= 30; ++k) sum += d.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(d.Pmf(3), 0.0);
}

TEST(BinomialTest, SampleMeanConverges) {
  BinomialDistribution d(50, 0.2);
  Rng rng(3);
  double total = 0.0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(d.Sample(&rng));
  }
  EXPECT_NEAR(total / trials, 10.0, 0.2);
}

}  // namespace
}  // namespace math
}  // namespace robustqo
