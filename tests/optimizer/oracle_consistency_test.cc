// With exact cardinalities, the optimizer's predicted cost for the chosen
// plan must equal the cost the executor actually meters (the two share the
// same formulas; estimation error is the only permitted divergence). This
// pins the "cost model consistency" substitution claim in DESIGN.md.

#include <gtest/gtest.h>

#include "exec/operator.h"
#include "optimizer/optimizer.h"
#include "oracle_estimator.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"
#include "workload/star_schema.h"

namespace robustqo {
namespace {

double RelativeGap(double a, double b) {
  return std::abs(a - b) / std::max(1e-9, std::max(a, b));
}

class OracleConsistencyTpch : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new storage::Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;  // ~12k lineitem rows: fast full joins
    ASSERT_TRUE(tpch::LoadTpch(catalog_, config).ok());
    oracle_ = new testing_support::OracleEstimator(catalog_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete catalog_;
    oracle_ = nullptr;
    catalog_ = nullptr;
  }

  void CheckConsistency(const opt::QuerySpec& query) {
    opt::Optimizer optimizer(catalog_, oracle_);
    Result<opt::PlannedQuery> plan = optimizer.Optimize(query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    exec::ExecContext ctx;
    ctx.catalog = catalog_;
    storage::Table out = plan.value().root->Execute(&ctx).value();
    EXPECT_LT(RelativeGap(plan.value().estimated_cost,
                          ctx.meter.total_seconds()),
              1e-6)
        << "plan " << plan.value().label << ": predicted "
        << plan.value().estimated_cost << " vs metered "
        << ctx.meter.total_seconds();
  }

  static storage::Catalog* catalog_;
  static testing_support::OracleEstimator* oracle_;
};

storage::Catalog* OracleConsistencyTpch::catalog_ = nullptr;
testing_support::OracleEstimator* OracleConsistencyTpch::oracle_ = nullptr;

TEST_F(OracleConsistencyTpch, SingleTableAcrossSelectivities) {
  workload::SingleTableScenario scenario;
  for (double offset : {40.0, 70.0, 92.0}) {
    CheckConsistency(scenario.MakeQuery(offset));
  }
}

TEST_F(OracleConsistencyTpch, ThreeTableJoinAcrossSelectivities) {
  workload::ThreeTableJoinScenario scenario;
  for (double offset : {10.0, 13.5, 15.0}) {
    CheckConsistency(scenario.MakeQuery(offset));
  }
}

TEST_F(OracleConsistencyTpch, TwoTableJoinNoPredicates) {
  opt::QuerySpec query;
  query.tables.push_back({"lineitem", nullptr});
  query.tables.push_back({"orders", nullptr});
  query.aggregates.push_back({exec::AggKind::kCount, "", "n"});
  CheckConsistency(query);
}

TEST_F(OracleConsistencyTpch, OrdersCustomerChain) {
  opt::QuerySpec query;
  query.tables.push_back({"orders", nullptr});
  query.tables.push_back(
      {"customer",
       expr::Between(expr::Col("c_acctbal"), storage::Value::Double(0.0),
                     storage::Value::Double(1000.0))});
  query.aggregates.push_back({exec::AggKind::kSum, "o_totalprice", "s"});
  CheckConsistency(query);
}

TEST_F(OracleConsistencyTpch, SortMergePlansAlsoConsistent) {
  // Restrict the plan space so sort-fed merge joins are chosen, and check
  // the SortCost formula agrees with ChargeSortWork end to end.
  workload::ThreeTableJoinScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(11.0);
  opt::Optimizer optimizer(catalog_, oracle_);
  opt::OptimizerOptions options;
  options.enable_hash_join = false;
  options.enable_index_nested_loop = false;
  Result<opt::PlannedQuery> plan = optimizer.Optimize(query, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  exec::ExecContext ctx;
  ctx.catalog = catalog_;
  storage::Table out = plan.value().root->Execute(&ctx).value();
  EXPECT_LT(RelativeGap(plan.value().estimated_cost,
                        ctx.meter.total_seconds()),
            1e-6)
      << plan.value().label;
}

TEST_F(OracleConsistencyTpch, OrderByLimitDecorationsConsistent) {
  opt::QuerySpec query;
  query.tables.push_back(
      {"part", expr::Le(expr::Col("p_size"), expr::LitInt(25))});
  query.select_columns = {"p_partkey", "p_size"};
  query.order_by = "p_size";
  query.limit = 10;
  CheckConsistency(query);
}

TEST_F(OracleConsistencyTpch, OracleRowPredictionsExact) {
  // The chosen plan's estimated row count must equal the actual result
  // size of the pre-aggregation tree for an exact estimator.
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(60);
  query.aggregates.clear();  // return join rows directly
  opt::Optimizer optimizer(catalog_, oracle_);
  Result<opt::PlannedQuery> plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok());
  exec::ExecContext ctx;
  ctx.catalog = catalog_;
  storage::Table out = plan.value().root->Execute(&ctx).value();
  EXPECT_DOUBLE_EQ(plan.value().estimated_rows,
                   static_cast<double>(out.num_rows()));
}

class OracleConsistencyStar : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::StarSchemaConfig config;
    config.fact_rows = 20000;
    config.dim_rows = 100;
    ASSERT_TRUE(workload::LoadStarSchema(&catalog_, config).ok());
    oracle_ = std::make_unique<testing_support::OracleEstimator>(&catalog_);
  }

  storage::Catalog catalog_;
  std::unique_ptr<testing_support::OracleEstimator> oracle_;
};

TEST_F(OracleConsistencyStar, StarJoinAllOffsets) {
  workload::StarJoinScenario scenario;
  for (double offset : {0.0, 2.0, 6.0, 9.0}) {
    opt::QuerySpec query = scenario.MakeQuery(offset);
    opt::Optimizer optimizer(&catalog_, oracle_.get());
    Result<opt::PlannedQuery> plan = optimizer.Optimize(query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    exec::ExecContext ctx;
    ctx.catalog = &catalog_;
    storage::Table out = plan.value().root->Execute(&ctx).value();
    EXPECT_LT(RelativeGap(plan.value().estimated_cost,
                          ctx.meter.total_seconds()),
              1e-6)
        << "offset " << offset << " plan " << plan.value().label;
  }
}

TEST_F(OracleConsistencyStar, OracleChoosesSemijoinOnlyWhenFewSurvivors) {
  // At offset 9 (few joining fact rows) the semijoin-style plan should win
  // under exact cardinalities; at offset 0 (max alignment, ~5%) the
  // hash-cascade should win.
  workload::StarJoinScenario scenario;
  opt::Optimizer optimizer(&catalog_, oracle_.get());
  auto low = optimizer.Optimize(scenario.MakeQuery(9));
  ASSERT_TRUE(low.ok());
  EXPECT_NE(low.value().label.find("Star("), std::string::npos)
      << low.value().label;
  auto high = optimizer.Optimize(scenario.MakeQuery(0));
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high.value().label.find("Star("), std::string::npos)
      << high.value().label;
}

}  // namespace
}  // namespace robustqo
