// Test helper: a cardinality "estimator" that computes exact cardinalities
// by materializing the full foreign-key join and counting. With exact
// cardinalities, the optimizer's predicted plan cost must equal the cost
// meter's measured cost — the consistency property the oracle tests lock in.

#ifndef ROBUSTQO_TESTS_OPTIMIZER_ORACLE_ESTIMATOR_H_
#define ROBUSTQO_TESTS_OPTIMIZER_ORACLE_ESTIMATOR_H_

#include <map>
#include <memory>
#include <string>

#include "expr/expression.h"
#include "statistics/cardinality_estimator.h"
#include "statistics/join_synopsis.h"
#include "storage/catalog.h"
#include "util/rng.h"

namespace robustqo {
namespace testing_support {

class OracleEstimator : public stats::CardinalityEstimator {
 public:
  explicit OracleEstimator(const storage::Catalog* catalog)
      : catalog_(catalog) {}

  Result<double> EstimateRows(
      const stats::CardinalityRequest& request) override {
    auto root = catalog_->FindRootTable(request.tables);
    if (!root.ok()) return root.status();
    const storage::Table& wide = FullJoin(root.value());
    if (request.predicate == nullptr) {
      return static_cast<double>(
          catalog_->GetTable(root.value())->num_rows());
    }
    const std::string key =
        root.value() + "|" + request.predicate->ToString();
    auto it = count_cache_.find(key);
    if (it != count_cache_.end()) return it->second;
    const double rows = static_cast<double>(
        expr::CountSatisfying(*request.predicate, wide));
    count_cache_.emplace(key, rows);
    return rows;
  }

  std::string name() const override { return "oracle"; }

 private:
  // The full FK join rooted at `root` (every root row, chased through all
  // foreign keys), built once. A join synopsis whose "sample" is the whole
  // table without replacement is exactly this join.
  const storage::Table& FullJoin(const std::string& root) {
    auto it = joins_.find(root);
    if (it == joins_.end()) {
      Rng rng(1);
      auto synopsis = std::make_unique<stats::JoinSynopsis>(
          *catalog_, root,
          static_cast<size_t>(catalog_->GetTable(root)->num_rows()),
          stats::SamplingMode::kWithoutReplacement, &rng);
      it = joins_.emplace(root, std::move(synopsis)).first;
    }
    return it->second->rows();
  }

  const storage::Catalog* catalog_;
  std::map<std::string, std::unique_ptr<stats::JoinSynopsis>> joins_;
  std::map<std::string, double> count_cache_;
};

}  // namespace testing_support
}  // namespace robustqo

#endif  // ROBUSTQO_TESTS_OPTIMIZER_ORACLE_ESTIMATOR_H_
