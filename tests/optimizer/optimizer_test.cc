#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/database.h"
#include "exec/operator.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"
#include "workload/star_schema.h"

namespace robustqo {
namespace opt {
namespace {

// Shared tiny TPC-H database with statistics.
class OptimizerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new core::Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
    stats::StatisticsConfig stats_config;
    stats_config.sample_size = 500;
    db_->UpdateStatistics(stats_config);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static core::Database* db_;
};

core::Database* OptimizerTest::db_ = nullptr;

TEST_F(OptimizerTest, RejectsEmptyQuery) {
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  QuerySpec query;
  EXPECT_FALSE(optimizer.Optimize(query).ok());
}

TEST_F(OptimizerTest, RejectsUnknownTable) {
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  QuerySpec query;
  query.tables.push_back({"nope", nullptr});
  EXPECT_EQ(optimizer.Optimize(query).status().code(),
            StatusCode::kNotFound);
}

TEST_F(OptimizerTest, RejectsDisconnectedJoin) {
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  QuerySpec query;
  query.tables.push_back({"part", nullptr});
  query.tables.push_back({"customer", nullptr});
  EXPECT_FALSE(optimizer.Optimize(query).ok());
}

PlanCandidate MakeCandidate(double cost, const std::string& label,
                            const std::string& sort_order = "") {
  PlanCandidate candidate;
  candidate.cost = cost;
  candidate.rows = 10.0;
  candidate.label = label;
  candidate.sort_order = sort_order;
  return candidate;
}

TEST(PruneCandidatesTest, EmptyInputStaysEmpty) {
  std::vector<PlanCandidate> candidates;
  Optimizer::PruneCandidates(&candidates);
  EXPECT_TRUE(candidates.empty());
}

TEST(PruneCandidatesTest, SingleCandidateSurvivesUnchanged) {
  std::vector<PlanCandidate> candidates = {MakeCandidate(2.0, "Seq(t)")};
  Optimizer::PruneCandidates(&candidates);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].label, "Seq(t)");
  EXPECT_DOUBLE_EQ(candidates[0].cost, 2.0);
}

TEST(PruneCandidatesTest, KeepsCheapestPerSortOrder) {
  std::vector<PlanCandidate> candidates = {
      MakeCandidate(5.0, "HJ(a,b)"),
      MakeCandidate(3.0, "INLJ(a,b)"),
      MakeCandidate(9.0, "MJ(a,b)", "a_key"),
      MakeCandidate(7.0, "MJx(a,b)", "a_key"),
  };
  Optimizer::PruneCandidates(&candidates);
  ASSERT_EQ(candidates.size(), 2u);
  // Survivors sorted by (cost, label): the cheap unsorted winner first.
  EXPECT_EQ(candidates[0].label, "INLJ(a,b)");
  EXPECT_EQ(candidates[1].label, "MJx(a,b)");
}

TEST(PruneCandidatesTest, SortedCandidateSurvivesThoughDominatedByUnsorted) {
  // A sorted candidate is kept even when an unsorted one is strictly
  // cheaper: its order is an enumeration asset (merge joins upstream).
  std::vector<PlanCandidate> candidates = {
      MakeCandidate(1.0, "Seq(t)"),
      MakeCandidate(4.0, "Ix(t)", "t_key"),
  };
  Optimizer::PruneCandidates(&candidates);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].label, "Seq(t)");
  EXPECT_EQ(candidates[1].label, "Ix(t)");
  EXPECT_EQ(candidates[1].sort_order, "t_key");
}

TEST(PruneCandidatesTest, ExactCostTieIsPinnedByLabel) {
  // Generation order must not leak into the survivor: the tie at cost 2.0
  // resolves to the lexicographically smaller label either way.
  std::vector<PlanCandidate> forward = {
      MakeCandidate(2.0, "HJ(a,b)"),
      MakeCandidate(2.0, "INLJ(a,b)"),
  };
  std::vector<PlanCandidate> reversed = {
      MakeCandidate(2.0, "INLJ(a,b)"),
      MakeCandidate(2.0, "HJ(a,b)"),
  };
  Optimizer::PruneCandidates(&forward);
  Optimizer::PruneCandidates(&reversed);
  ASSERT_EQ(forward.size(), 1u);
  ASSERT_EQ(reversed.size(), 1u);
  EXPECT_EQ(forward[0].label, "HJ(a,b)");
  EXPECT_EQ(reversed[0].label, "HJ(a,b)");
}

TEST(PruneCandidatesTest, SurvivorOrderIsDeterministicAcrossInputOrder) {
  std::vector<PlanCandidate> forward = {
      MakeCandidate(3.0, "b", ""),
      MakeCandidate(3.0, "a", "k1"),
      MakeCandidate(5.0, "c", "k2"),
  };
  std::vector<PlanCandidate> reversed(forward.rbegin(), forward.rend());
  Optimizer::PruneCandidates(&forward);
  Optimizer::PruneCandidates(&reversed);
  ASSERT_EQ(forward.size(), reversed.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i].label, reversed[i].label) << "index " << i;
  }
  EXPECT_EQ(forward[0].label, "a");  // cost tie at 3.0 -> smaller label
}

TEST_F(OptimizerTest, SensitivityCapturedWhenProvenanceEnabled) {
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  workload::SingleTableScenario scenario;
  OptimizerOptions options;
  options.provenance_enabled = true;
  auto planned = optimizer.Optimize(scenario.MakeQuery(70), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const obs::PlanSensitivity& s = optimizer.last_sensitivity();
  ASSERT_TRUE(s.captured);
  ASSERT_TRUE(s.available) << s.unavailable_reason;
  EXPECT_EQ(s.grid, Optimizer::SensitivityGrid());
  EXPECT_EQ(s.selectivity.size(), s.grid.size());
  ASSERT_FALSE(s.candidates.empty());
  EXPECT_LE(s.candidates.size(), options.provenance_top_k + 1);
  EXPECT_EQ(s.candidates.front().label, s.plan_label);
  EXPECT_FALSE(s.verdict.empty());
  // Posterior selectivities ride the Beta quantile function: monotone
  // nondecreasing along the grid.
  for (size_t i = 1; i < s.selectivity.size(); ++i) {
    EXPECT_GE(s.selectivity[i], s.selectivity[i - 1]);
  }
  // Every candidate curve has one cost per grid point.
  for (const obs::CandidateCurve& cand : s.candidates) {
    EXPECT_EQ(cand.cost_at.size(), s.grid.size()) << cand.label;
  }
}

TEST_F(OptimizerTest, SensitivityNotCapturedByDefault) {
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  workload::SingleTableScenario scenario;
  ASSERT_TRUE(optimizer.Optimize(scenario.MakeQuery(70)).ok());
  EXPECT_FALSE(optimizer.last_sensitivity().captured);
}

TEST_F(OptimizerTest, SensitivityUnavailableForHistogramEstimator) {
  Optimizer optimizer(db_->catalog(), db_->histogram_estimator());
  workload::SingleTableScenario scenario;
  OptimizerOptions options;
  options.provenance_enabled = true;
  auto planned = optimizer.Optimize(scenario.MakeQuery(70), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const obs::PlanSensitivity& s = optimizer.last_sensitivity();
  EXPECT_TRUE(s.captured);
  EXPECT_FALSE(s.available);
  EXPECT_EQ(s.unavailable_reason, "estimator has no posterior");
}

TEST_F(OptimizerTest, TopKBoundsRetainedRunnerUps) {
  workload::ThreeTableJoinScenario scenario;
  OptimizerOptions options;
  options.provenance_enabled = true;
  options.provenance_top_k = 1;
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  auto planned = optimizer.Optimize(scenario.MakeQuery(12.0), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const obs::PlanSensitivity& s = optimizer.last_sensitivity();
  ASSERT_TRUE(s.captured);
  EXPECT_LE(s.candidates.size(), 2u);  // winner + 1 runner-up
}

TEST_F(OptimizerTest, SensitivityCurveReproducesRankingCostAtRatioOne) {
  // cost_at evaluated at the planning threshold's own selectivity (ratio
  // 1.0) must reproduce the candidate's ranking cost bit-for-bit, so the
  // curves anchor to exactly what the optimizer compared. The capture
  // evaluates posterior quantiles, not ratio 1.0, so probe it directly:
  // plan twice, once with the threshold's own quantile inserted into the
  // grid via the public invariant on the winner.
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  workload::SingleTableScenario scenario;
  OptimizerOptions options;
  options.provenance_enabled = true;
  auto planned = optimizer.Optimize(scenario.MakeQuery(70), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const obs::PlanSensitivity& s = optimizer.last_sensitivity();
  ASSERT_TRUE(s.available) << s.unavailable_reason;
  // The winner's ranking cost lies within the span of its own curve
  // whenever the threshold quantile lies inside [p10, p95] — with T=80%
  // it does, and the curve is monotone in the scan-dominated single-table
  // case.
  const obs::CandidateCurve& winner = s.candidates.front();
  ASSERT_FALSE(winner.cost_at.empty());
  const double lo =
      *std::min_element(winner.cost_at.begin(), winner.cost_at.end());
  const double hi =
      *std::max_element(winner.cost_at.begin(), winner.cost_at.end());
  EXPECT_GE(winner.cost, lo - 1e-9);
  EXPECT_LE(winner.cost, hi + 1e-9);
}

TEST_F(OptimizerTest, SingleTableNoPredicateUsesSeqScan) {
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  QuerySpec query;
  query.tables.push_back({"lineitem", nullptr});
  auto plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().label, "Seq(lineitem)");
}

TEST_F(OptimizerTest, PlanExecutesAndAggregates) {
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  QuerySpec query;
  query.tables.push_back({"orders", nullptr});
  query.aggregates.push_back({exec::AggKind::kCount, "", "n"});
  auto plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok());
  exec::ExecContext ctx;
  ctx.catalog = db_->catalog();
  storage::Table out = plan.value().root->Execute(&ctx).value();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.ValueAt(0, 0).AsInt64(),
            static_cast<int64_t>(
                db_->catalog()->GetTable("orders")->num_rows()));
}

TEST_F(OptimizerTest, GroupByPlanExecutes) {
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  QuerySpec query;
  query.tables.push_back({"orders", nullptr});
  query.group_by = {"o_custkey"};
  query.aggregates.push_back({exec::AggKind::kCount, "", "n"});
  auto plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok());
  exec::ExecContext ctx;
  ctx.catalog = db_->catalog();
  storage::Table out = plan.value().root->Execute(&ctx).value();
  EXPECT_GT(out.num_rows(), 1u);
  EXPECT_TRUE(out.schema().HasColumn("o_custkey"));
}

TEST_F(OptimizerTest, SelectColumnsProjectsOutput) {
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  QuerySpec query;
  query.tables.push_back({"part", nullptr});
  query.select_columns = {"p_partkey", "p_size"};
  auto plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok());
  exec::ExecContext ctx;
  ctx.catalog = db_->catalog();
  storage::Table out = plan.value().root->Execute(&ctx).value();
  EXPECT_EQ(out.schema().num_columns(), 2u);
}

TEST_F(OptimizerTest, ThresholdHintSwingsAccessPathChoice) {
  // At a very low true selectivity, the aggressive threshold should pick
  // the index-intersection plan while the conservative one stays with the
  // sequential scan (paper Figure 5's mechanism).
  workload::SingleTableScenario scenario;
  QuerySpec query = scenario.MakeQuery(91);  // near-zero selectivity
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  OptimizerOptions aggressive;
  aggressive.confidence_threshold_hint = 0.05;
  auto risky = optimizer.Optimize(query, aggressive);
  ASSERT_TRUE(risky.ok());
  EXPECT_NE(risky.value().label.find("IxSect"), std::string::npos)
      << risky.value().label;
  OptimizerOptions conservative;
  conservative.confidence_threshold_hint = 0.95;
  auto safe = optimizer.Optimize(query, conservative);
  ASSERT_TRUE(safe.ok());
  EXPECT_NE(safe.value().label.find("Seq("), std::string::npos)
      << safe.value().label;
}

TEST_F(OptimizerTest, ThresholdHintIsRestoredAfterOptimize) {
  const double before = db_->robust_estimator()->config().confidence_threshold;
  workload::SingleTableScenario scenario;
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  OptimizerOptions options;
  options.confidence_threshold_hint = 0.0123;
  ASSERT_TRUE(optimizer.Optimize(scenario.MakeQuery(70), options).ok());
  EXPECT_EQ(db_->robust_estimator()->config().confidence_threshold, before);
}

TEST_F(OptimizerTest, DisablingIndexIntersectionRemovesCandidate) {
  workload::SingleTableScenario scenario;
  QuerySpec query = scenario.MakeQuery(91);
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  OptimizerOptions options;
  options.confidence_threshold_hint = 0.05;  // would pick IxSect
  options.enable_index_intersection = false;
  auto plan = optimizer.Optimize(query, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().label.find("IxSect"), std::string::npos);
}

TEST_F(OptimizerTest, ThreeWayJoinProducesCorrectResult) {
  workload::ThreeTableJoinScenario scenario;
  QuerySpec query = scenario.MakeQuery(11.0);
  Optimizer optimizer(db_->catalog(), db_->histogram_estimator());
  auto plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok());
  exec::ExecContext ctx;
  ctx.catalog = db_->catalog();
  storage::Table out = plan.value().root->Execute(&ctx).value();
  ASSERT_EQ(out.num_rows(), 1u);

  // Reference: count lineitems whose part satisfies the predicate.
  const storage::Table* lineitem = db_->catalog()->GetTable("lineitem");
  const storage::Table* part = db_->catalog()->GetTable("part");
  std::set<int64_t> good_parts;
  const auto& pred = query.tables[2].predicate;
  for (storage::Rid r = 0; r < part->num_rows(); ++r) {
    if (pred->EvaluateBool(*part, r)) {
      good_parts.insert(part->column("p_partkey").Int64At(r));
    }
  }
  double expected = 0.0;
  for (storage::Rid r = 0; r < lineitem->num_rows(); ++r) {
    if (good_parts.count(lineitem->column("l_partkey").Int64At(r)) > 0) {
      expected += lineitem->column("l_extendedprice").DoubleAt(r);
    }
  }
  EXPECT_NEAR(out.ValueAt(0, 0).AsDouble(), expected,
              1e-6 * std::max(1.0, expected));
}

TEST_F(OptimizerTest, JoinPlanResultIndependentOfEstimator) {
  // Different estimators may choose different plans, but every plan must
  // compute the same answer.
  workload::ThreeTableJoinScenario scenario;
  QuerySpec query = scenario.MakeQuery(13.0);
  double reference = 0.0;
  bool first = true;
  for (auto* estimator :
       {static_cast<stats::CardinalityEstimator*>(db_->histogram_estimator()),
        static_cast<stats::CardinalityEstimator*>(db_->robust_estimator())}) {
    Optimizer optimizer(db_->catalog(), estimator);
    for (double hint : {0.05, 0.95}) {
      OptimizerOptions options;
      options.confidence_threshold_hint = hint;
      auto plan = optimizer.Optimize(query, options);
      ASSERT_TRUE(plan.ok());
      exec::ExecContext ctx;
      ctx.catalog = db_->catalog();
      storage::Table out = plan.value().root->Execute(&ctx).value();
      const double answer = out.ValueAt(0, 0).AsDouble();
      if (first) {
        reference = answer;
        first = false;
      } else {
        EXPECT_NEAR(answer, reference, 1e-6 * std::max(1.0, reference));
      }
    }
  }
}

TEST_F(OptimizerTest, MetricsPopulated) {
  workload::SingleTableScenario scenario;
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  ASSERT_TRUE(optimizer.Optimize(scenario.MakeQuery(70)).ok());
  const Optimizer::Metrics& m = optimizer.last_metrics();
  EXPECT_GT(m.estimator_calls, 0u);
  EXPECT_GT(m.candidates, 2u);  // seq scan + 2 index scans + intersection
  EXPECT_LE(m.estimator_misses, m.estimator_calls);
}

TEST_F(OptimizerTest, EstimationCacheDeduplicates) {
  workload::ThreeTableJoinScenario scenario;
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  ASSERT_TRUE(optimizer.Optimize(scenario.MakeQuery(12.0)).ok());
  const Optimizer::Metrics& m = optimizer.last_metrics();
  EXPECT_LT(m.estimator_misses, m.estimator_calls);
}

TEST_F(OptimizerTest, ExplainRendersTree) {
  workload::SingleTableScenario scenario;
  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  auto plan = optimizer.Optimize(scenario.MakeQuery(70));
  ASSERT_TRUE(plan.ok());
  const std::string tree = plan.value().Explain();
  EXPECT_NE(tree.find("ScalarAggregate"), std::string::npos);
  EXPECT_NE(tree.find("\n"), std::string::npos);
}

TEST_F(OptimizerTest, SortEnabledMergeJoinWhenHashAndInljDisabled) {
  // Force the enumerator away from hash joins and INLJ: it must still find
  // a plan, using merge joins with explicit sorts where inputs are not
  // clustered on the join key.
  workload::ThreeTableJoinScenario scenario;
  QuerySpec query = scenario.MakeQuery(12.0);
  Optimizer optimizer(db_->catalog(), db_->histogram_estimator());
  OptimizerOptions options;
  options.enable_hash_join = false;
  options.enable_index_nested_loop = false;
  auto plan = optimizer.Optimize(query, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().label.find("MJ("), std::string::npos)
      << plan.value().label;
  // The part side is not clustered on p_partkey output order after
  // filtering? (it is — part is clustered by its PK). At least one sort
  // appears somewhere in the label for the unclustered side orderings.
  // Execute and verify the answer matches the unrestricted plan's.
  exec::ExecContext ctx;
  ctx.catalog = db_->catalog();
  storage::Table restricted = plan.value().root->Execute(&ctx).value();
  auto free_plan = optimizer.Optimize(query);
  ASSERT_TRUE(free_plan.ok());
  exec::ExecContext ctx2;
  ctx2.catalog = db_->catalog();
  storage::Table free = free_plan.value().root->Execute(&ctx2).value();
  EXPECT_NEAR(restricted.ValueAt(0, 0).AsDouble(),
              free.ValueAt(0, 0).AsDouble(), 1e-6);
}

TEST_F(OptimizerTest, DisablingEverythingButSeqAndMergeStillPlans) {
  QuerySpec query;
  query.tables.push_back({"lineitem", nullptr});
  query.tables.push_back({"part", nullptr});
  query.aggregates.push_back({exec::AggKind::kCount, "", "n"});
  Optimizer optimizer(db_->catalog(), db_->histogram_estimator());
  OptimizerOptions options;
  options.enable_hash_join = false;
  options.enable_index_nested_loop = false;
  options.enable_index_intersection = false;
  auto plan = optimizer.Optimize(query, options);
  ASSERT_TRUE(plan.ok());
  // lineitem |x| part joins on l_partkey/p_partkey; lineitem is clustered
  // on l_orderkey, so its side needs an explicit sort.
  EXPECT_NE(plan.value().label.find("Sort("), std::string::npos)
      << plan.value().label;
  exec::ExecContext ctx;
  ctx.catalog = db_->catalog();
  storage::Table out = plan.value().root->Execute(&ctx).value();
  EXPECT_EQ(out.ValueAt(0, 0).AsInt64(),
            static_cast<int64_t>(
                db_->catalog()->GetTable("lineitem")->num_rows()));
}

TEST_F(OptimizerTest, GroupByUsesDistinctEstimates) {
  // Grouping orders by o_custkey: both estimators should size the output
  // near the customer count rather than the 1000-row fallback heuristic.
  QuerySpec query;
  query.tables.push_back({"orders", nullptr});
  query.group_by = {"o_custkey"};
  query.aggregates.push_back({exec::AggKind::kCount, "", "n"});
  const double customers = static_cast<double>(
      db_->catalog()->GetTable("customer")->num_rows());
  for (auto* estimator :
       {static_cast<stats::CardinalityEstimator*>(db_->histogram_estimator()),
        static_cast<stats::CardinalityEstimator*>(db_->robust_estimator())}) {
    Optimizer optimizer(db_->catalog(), estimator);
    auto plan = optimizer.Optimize(query);
    ASSERT_TRUE(plan.ok());
    EXPECT_GT(plan.value().estimated_rows, customers * 0.3)
        << estimator->name();
    EXPECT_LT(plan.value().estimated_rows, customers * 3.0)
        << estimator->name();
  }
}

TEST_F(OptimizerTest, FiveTableChainPlansAndExecutes) {
  // lineitem -> orders -> customer -> nation -> region: a 5-deep FK chain
  // exercises the subset DP well beyond the paper's experiments.
  QuerySpec query;
  query.tables.push_back({"lineitem", nullptr});
  query.tables.push_back({"orders", nullptr});
  query.tables.push_back({"customer", nullptr});
  query.tables.push_back(
      {"nation", expr::Le(expr::Col("n_nationkey"), expr::LitInt(11))});
  query.tables.push_back(
      {"region", expr::Le(expr::Col("r_regionkey"), expr::LitInt(2))});
  query.aggregates.push_back({exec::AggKind::kCount, "", "n"});

  Optimizer optimizer(db_->catalog(), db_->robust_estimator());
  auto plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  exec::ExecContext ctx;
  ctx.catalog = db_->catalog();
  storage::Table out = plan.value().root->Execute(&ctx).value();
  ASSERT_EQ(out.num_rows(), 1u);

  // Reference: walk the chain by hand.
  const storage::Catalog& cat = *db_->catalog();
  const storage::Table* nation = cat.GetTable("nation");
  const storage::Table* customer = cat.GetTable("customer");
  const storage::Table* orders = cat.GetTable("orders");
  const storage::Table* lineitem = cat.GetTable("lineitem");
  std::set<int64_t> good_nations;
  for (storage::Rid r = 0; r < nation->num_rows(); ++r) {
    if (nation->column("n_nationkey").Int64At(r) <= 11 &&
        nation->column("n_regionkey").Int64At(r) <= 2) {
      good_nations.insert(nation->column("n_nationkey").Int64At(r));
    }
  }
  std::set<int64_t> good_customers;
  for (storage::Rid r = 0; r < customer->num_rows(); ++r) {
    if (good_nations.count(customer->column("c_nationkey").Int64At(r))) {
      good_customers.insert(customer->column("c_custkey").Int64At(r));
    }
  }
  std::set<int64_t> good_orders;
  for (storage::Rid r = 0; r < orders->num_rows(); ++r) {
    if (good_customers.count(orders->column("o_custkey").Int64At(r))) {
      good_orders.insert(orders->column("o_orderkey").Int64At(r));
    }
  }
  int64_t expected = 0;
  for (storage::Rid r = 0; r < lineitem->num_rows(); ++r) {
    if (good_orders.count(lineitem->column("l_orderkey").Int64At(r))) {
      ++expected;
    }
  }
  EXPECT_EQ(out.ValueAt(0, 0).AsInt64(), expected);
}

TEST_F(OptimizerTest, FourDimensionStarEnumeratesSemijoinShapes) {
  // Star strategies must generalize beyond the paper's 3 dimensions: with
  // 4 dims and misaligned (empty-intersection) filters, some semijoin or
  // hybrid plan should win under an exact-ish low estimate.
  core::Database star_db;
  workload::StarSchemaConfig config;
  config.fact_rows = 20000;
  config.dim_rows = 100;
  config.num_dims = 4;
  ASSERT_TRUE(workload::LoadStarSchema(star_db.catalog(), config).ok());
  star_db.UpdateStatistics();

  QuerySpec query;
  query.tables.push_back({"fact", nullptr});
  for (int d = 1; d <= 4; ++d) {
    const std::string attr = "d" + std::to_string(d) + "_attr";
    // dim1 filters group 0; the rest filter group 9: nearly no fact row
    // aligns (offset 9 has ~0.01% weight).
    query.tables.push_back(
        {"dim" + std::to_string(d),
         expr::Eq(expr::Col(attr), expr::LitInt(d == 1 ? 0 : 9))});
  }
  query.aggregates.push_back({exec::AggKind::kSum, "f_m1", "s"});

  Optimizer optimizer(star_db.catalog(), star_db.robust_estimator());
  OptimizerOptions options;
  options.confidence_threshold_hint = 0.5;
  auto plan = optimizer.Optimize(query, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().label.find("Star("), std::string::npos)
      << plan.value().label;
  // The plan executes and produces one row.
  exec::ExecContext ctx;
  ctx.catalog = star_db.catalog();
  storage::Table out = plan.value().root->Execute(&ctx).value();
  EXPECT_EQ(out.num_rows(), 1u);
}

TEST_F(OptimizerTest, QueryToStringRendersSql) {
  workload::ThreeTableJoinScenario scenario;
  const std::string sql = scenario.MakeQuery(12.0).ToString();
  EXPECT_NE(sql.find("FROM lineitem"), std::string::npos);
  EXPECT_NE(sql.find("NATURAL JOIN"), std::string::npos);
  EXPECT_NE(sql.find("WHERE"), std::string::npos);
}

}  // namespace
}  // namespace opt
}  // namespace robustqo
