#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace robustqo {
namespace obs {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, ObservationsLandInInclusiveBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (bounds are inclusive)
  h.Observe(2.0);    // <= 10
  h.Observe(100.0);  // <= 100
  h.Observe(1e6);    // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 2.0 + 100.0 + 1e6);
}

TEST(HistogramTest, NanGoesToDedicatedBucketAndNeverPoisonsSum) {
  Histogram h({1.0, 10.0});
  h.Observe(5.0);
  h.Observe(std::nan(""));
  h.Observe(std::nan(""));
  // NaN is outside count() and the buckets entirely.
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.bucket_counts()[0] + h.bucket_counts()[1] + h.bucket_counts()[2],
            1u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
  EXPECT_TRUE(std::isfinite(h.sum()));
}

TEST(HistogramTest, InfinitiesBucketCorrectlyAndStayOutOfSum) {
  Histogram h({1.0, 10.0});
  h.Observe(HUGE_VAL);   // overflow bucket
  h.Observe(-HUGE_VAL);  // first bucket (-inf <= 1.0)
  h.Observe(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.nan_count(), 0u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);  // -inf
  EXPECT_EQ(h.bucket_counts()[1], 1u);  // 2.0
  EXPECT_EQ(h.bucket_counts()[2], 1u);  // +inf overflow
  // Only the finite observation reaches the sum.
  EXPECT_DOUBLE_EQ(h.sum(), 2.0);
}

TEST(HistogramTest, ResetClearsNanBucket) {
  Histogram h({1.0});
  h.Observe(std::nan(""));
  ASSERT_EQ(h.nan_count(), 1u);
  h.Reset();
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(HistogramTest, ResetKeepsBounds) {
  Histogram h({1.0, 2.0});
  h.Observe(1.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  ASSERT_EQ(h.upper_bounds().size(), 2u);
  for (uint64_t c : h.bucket_counts()) EXPECT_EQ(c, 0u);
}

TEST(MetricsRegistryTest, PointersAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(registry.GetCounter("x")->value(), 1u);
  // Distinct names get distinct metrics.
  EXPECT_NE(registry.GetCounter("y"), a);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedAtFirstRegistration) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {1.0, 2.0});
  Histogram* again = registry.GetHistogram("lat", {99.0});
  EXPECT_EQ(h, again);
  ASSERT_EQ(h->upper_bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h->upper_bounds()[1], 2.0);
}

TEST(MetricsRegistryTest, ResetZeroesEverythingButKeepsPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h", {1.0});
  c->Increment(5);
  g->Set(2.0);
  h->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // The same pointers keep working after Reset.
  c->Increment();
  EXPECT_EQ(registry.GetCounter("c")->value(), 1u);
}

TEST(MetricsRegistryTest, JsonIsSortedAndDeterministic) {
  auto populate = [](MetricsRegistry* r) {
    // Register in non-alphabetical order; JSON must sort by name.
    r->GetCounter("zeta")->Increment(2);
    r->GetCounter("alpha")->Increment(1);
    r->GetGauge("mid")->Set(0.5);
    r->GetHistogram("hist", {1.0, 10.0})->Observe(3.0);
  };
  MetricsRegistry a;
  MetricsRegistry b;
  populate(&a);
  populate(&b);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  const std::string json = a.ToJson();
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(MetricsRegistry::Global(), MetricsRegistry::Global());
}

TEST(MetricsRegistryTest, SketchAccuracyFixedAtFirstRegistration) {
  MetricsRegistry registry;
  QuantileSketch* s = registry.GetSketch("lat", 0.05);
  QuantileSketch* again = registry.GetSketch("lat", 0.001);
  EXPECT_EQ(s, again);
  EXPECT_DOUBLE_EQ(s->relative_accuracy(), 0.05);
  s->Observe(2.0);
  registry.Reset();
  EXPECT_EQ(s->count(), 0u);
}

TEST(MetricsRegistryTest, MergeFromSumsCountersAndHistograms) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("c")->Increment(3);
  b.GetCounter("c")->Increment(4);
  b.GetCounter("only_b")->Increment(1);
  a.GetHistogram("h", {1.0, 10.0})->Observe(0.5);
  b.GetHistogram("h", {1.0, 10.0})->Observe(5.0);
  b.GetHistogram("h", {1.0, 10.0})->Observe(std::nan(""));
  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("c")->value(), 7u);
  EXPECT_EQ(a.GetCounter("only_b")->value(), 1u);
  Histogram* h = a.GetHistogram("h", {1.0, 10.0});
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->nan_count(), 1u);
  EXPECT_EQ(h->bucket_counts()[0], 1u);
  EXPECT_EQ(h->bucket_counts()[1], 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 5.5);
}

TEST(MetricsRegistryTest, MergeFromTakesGaugeMaximum) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetGauge("peak")->Set(2.0);
  b.GetGauge("peak")->Set(7.0);
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.GetGauge("peak")->value(), 7.0);
  // Merging the smaller side in keeps the maximum.
  MetricsRegistry c;
  c.GetGauge("peak")->Set(1.0);
  a.MergeFrom(c);
  EXPECT_DOUBLE_EQ(a.GetGauge("peak")->value(), 7.0);
}

TEST(MetricsRegistryTest, MergeFromMergesSketches) {
  MetricsRegistry a;
  MetricsRegistry b;
  for (int i = 1; i <= 50; ++i) {
    a.GetSketch("s")->Observe(static_cast<double>(i));
    b.GetSketch("s")->Observe(static_cast<double>(50 + i));
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.GetSketch("s")->count(), 100u);
  EXPECT_NEAR(a.GetSketch("s")->Quantile(0.5), 50.0, 2.0);
}

TEST(MetricsRegistryTest, JsonIncludesSketchesAndNanCounts) {
  MetricsRegistry registry;
  registry.GetSketch("lat")->Observe(4.0);
  registry.GetHistogram("h", {1.0})->Observe(std::nan(""));
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"sketches\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"nan\":1"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace robustqo
