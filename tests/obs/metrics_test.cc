#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace obs {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, ObservationsLandInInclusiveBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (bounds are inclusive)
  h.Observe(2.0);    // <= 10
  h.Observe(100.0);  // <= 100
  h.Observe(1e6);    // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 2.0 + 100.0 + 1e6);
}

TEST(HistogramTest, ResetKeepsBounds) {
  Histogram h({1.0, 2.0});
  h.Observe(1.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  ASSERT_EQ(h.upper_bounds().size(), 2u);
  for (uint64_t c : h.bucket_counts()) EXPECT_EQ(c, 0u);
}

TEST(MetricsRegistryTest, PointersAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(registry.GetCounter("x")->value(), 1u);
  // Distinct names get distinct metrics.
  EXPECT_NE(registry.GetCounter("y"), a);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedAtFirstRegistration) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {1.0, 2.0});
  Histogram* again = registry.GetHistogram("lat", {99.0});
  EXPECT_EQ(h, again);
  ASSERT_EQ(h->upper_bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h->upper_bounds()[1], 2.0);
}

TEST(MetricsRegistryTest, ResetZeroesEverythingButKeepsPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h", {1.0});
  c->Increment(5);
  g->Set(2.0);
  h->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // The same pointers keep working after Reset.
  c->Increment();
  EXPECT_EQ(registry.GetCounter("c")->value(), 1u);
}

TEST(MetricsRegistryTest, JsonIsSortedAndDeterministic) {
  auto populate = [](MetricsRegistry* r) {
    // Register in non-alphabetical order; JSON must sort by name.
    r->GetCounter("zeta")->Increment(2);
    r->GetCounter("alpha")->Increment(1);
    r->GetGauge("mid")->Set(0.5);
    r->GetHistogram("hist", {1.0, 10.0})->Observe(3.0);
  };
  MetricsRegistry a;
  MetricsRegistry b;
  populate(&a);
  populate(&b);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  const std::string json = a.ToJson();
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(MetricsRegistry::Global(), MetricsRegistry::Global());
}

}  // namespace
}  // namespace obs
}  // namespace robustqo
