#include "obs/quantile_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace robustqo {
namespace obs {
namespace {

TEST(QuantileSketchTest, EmptySketchReturnsZero) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.ApproxSum(), 0.0);
}

TEST(QuantileSketchTest, QuantilesWithinRelativeAccuracy) {
  QuantileSketch s(0.01);
  for (int i = 1; i <= 1000; ++i) s.Observe(static_cast<double>(i));
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact = q * 999.0 + 1.0;  // rank over 1..1000
    const double approx = s.Quantile(q);
    EXPECT_NEAR(approx, exact, 0.025 * exact) << "q=" << q;
  }
}

TEST(QuantileSketchTest, ApproxSumTracksTrueSum) {
  QuantileSketch s(0.01);
  double exact = 0.0;
  for (int i = 1; i <= 500; ++i) {
    s.Observe(static_cast<double>(i) * 0.37);
    exact += static_cast<double>(i) * 0.37;
  }
  EXPECT_NEAR(s.ApproxSum(), exact, 0.02 * exact);
}

TEST(QuantileSketchTest, HandlesNegativesZeroAndOrder) {
  QuantileSketch s;
  s.Observe(-100.0);
  s.Observe(-1.0);
  s.Observe(0.0);
  s.Observe(1.0);
  s.Observe(100.0);
  EXPECT_EQ(s.count(), 5u);
  // The median of {-100,-1,0,1,100} is 0.
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_LT(s.Quantile(0.0), -99.0);
  EXPECT_GT(s.Quantile(1.0), 99.0);
}

TEST(QuantileSketchTest, NonFiniteObservationsNeverPoison) {
  QuantileSketch s;
  s.Observe(std::nan(""));
  s.Observe(HUGE_VAL);
  s.Observe(-HUGE_VAL);
  s.Observe(5.0);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.nan_count(), 1u);
  // NaN is excluded from ranking; the median of {-inf, 5, +inf} is 5.
  EXPECT_NEAR(s.Quantile(0.5), 5.0, 0.1);
  // Infinite observations at the extreme ranks surface as ±inf.
  EXPECT_TRUE(std::isinf(s.Quantile(0.0)));
  EXPECT_TRUE(std::isinf(s.Quantile(1.0)));
  // The sum stays finite.
  EXPECT_TRUE(std::isfinite(s.ApproxSum()));
}

// The determinism contract: merging per-worker shards — in any grouping —
// must reproduce the sequential sketch exactly, not just approximately.
TEST(QuantileSketchTest, MergeIsExactlyPartitionIndependent) {
  std::vector<double> values;
  for (int i = 0; i < 400; ++i) {
    values.push_back(0.001 * static_cast<double>(i * i + 1));
  }
  QuantileSketch sequential(0.01);
  for (double v : values) sequential.Observe(v);

  for (size_t shards : {2u, 3u, 7u}) {
    std::vector<QuantileSketch> workers(shards, QuantileSketch(0.01));
    for (size_t i = 0; i < values.size(); ++i) {
      workers[i % shards].Observe(values[i]);
    }
    QuantileSketch merged(0.01);
    for (const QuantileSketch& w : workers) merged.Merge(w);
    EXPECT_EQ(merged.count(), sequential.count());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      // Bit-exact, not approximately equal.
      EXPECT_EQ(merged.Quantile(q), sequential.Quantile(q))
          << "shards=" << shards << " q=" << q;
    }
    EXPECT_EQ(merged.ApproxSum(), sequential.ApproxSum());
  }
}

TEST(QuantileSketchTest, ResetKeepsAccuracy) {
  QuantileSketch s(0.05);
  s.Observe(10.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.relative_accuracy(), 0.05);
  s.Observe(3.0);
  EXPECT_NEAR(s.Quantile(0.5), 3.0, 0.5);
}

}  // namespace
}  // namespace obs
}  // namespace robustqo
