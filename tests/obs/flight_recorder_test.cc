#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace robustqo {
namespace obs {
namespace {

RequestTrace MakeTrace(uint64_t request_id, double service_seconds,
                       bool failed = false) {
  RequestTrace trace;
  trace.request_id = request_id;
  trace.session_id = 1;
  trace.session_label = "s";
  trace.ticket = request_id;
  trace.fingerprint = 0xABCDu;
  trace.service_seconds = service_seconds;
  trace.failed = failed;
  if (failed) trace.status = "Unavailable";
  Tracer tracer;
  const uint64_t span = tracer.BeginSpan("server", "request");
  tracer.EndSpan(span);
  trace.events = tracer.ReleaseEvents();
  return trace;
}

std::vector<uint64_t> RetainedIds(const FlightRecorder& recorder) {
  std::vector<uint64_t> ids;
  for (const RequestTrace* trace : recorder.Snapshot()) {
    ids.push_back(trace->request_id);
  }
  return ids;
}

TEST(FlightRecorderTest, RetainsIncidentsAndEvictsOldestFirst) {
  FlightRecorderConfig config;
  config.incident_capacity = 2;
  config.slowest_k = 0;
  FlightRecorder recorder(config);
  recorder.Offer(MakeTrace(1, 0.1, /*failed=*/true));
  recorder.Offer(MakeTrace(2, 0.1, /*failed=*/true));
  recorder.Offer(MakeTrace(3, 0.1, /*failed=*/false));  // not an incident
  EXPECT_EQ(RetainedIds(recorder), (std::vector<uint64_t>{1, 2}));
  recorder.Offer(MakeTrace(4, 0.1, /*failed=*/true));
  // FIFO ring: the oldest incident (request 1) is evicted.
  EXPECT_EQ(RetainedIds(recorder), (std::vector<uint64_t>{2, 4}));
  EXPECT_EQ(recorder.stats().offered, 4u);
  EXPECT_EQ(recorder.stats().retained_incident, 3u);
  EXPECT_EQ(recorder.stats().evicted_incident, 1u);
  EXPECT_EQ(recorder.stats().retained_slow, 0u);
}

TEST(FlightRecorderTest, GovernorTripAndFaultFiresAreIncidents) {
  RequestTrace tripped = MakeTrace(1, 0.0);
  tripped.governor_tripped = true;
  EXPECT_TRUE(tripped.IsIncident());
  RequestTrace faulted = MakeTrace(2, 0.0);
  faulted.fault_fires = 3;
  EXPECT_TRUE(faulted.IsIncident());
  EXPECT_FALSE(MakeTrace(3, 0.0).IsIncident());
}

TEST(FlightRecorderTest, KeepsSlowestKAndEvictsLeastSlow) {
  FlightRecorderConfig config;
  config.incident_capacity = 0;
  config.slowest_k = 2;
  FlightRecorder recorder(config);
  recorder.Offer(MakeTrace(1, 1.0));
  recorder.Offer(MakeTrace(2, 3.0));
  recorder.Offer(MakeTrace(3, 2.0));  // bumps request 1 (1.0s is least slow)
  EXPECT_EQ(RetainedIds(recorder), (std::vector<uint64_t>{2, 3}));
  recorder.Offer(MakeTrace(4, 0.5));  // slower than nothing retained
  EXPECT_EQ(RetainedIds(recorder), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(recorder.stats().retained_slow, 3u);
  EXPECT_EQ(recorder.stats().evicted_slow, 1u);
}

TEST(FlightRecorderTest, SlowTiesBreakTowardLowerRequestId) {
  FlightRecorderConfig config;
  config.incident_capacity = 0;
  config.slowest_k = 2;
  FlightRecorder recorder(config);
  recorder.Offer(MakeTrace(5, 1.0));
  recorder.Offer(MakeTrace(7, 1.0));
  // Same seconds, lower id: wins the slot from the higher-id incumbent.
  recorder.Offer(MakeTrace(3, 1.0));
  EXPECT_EQ(RetainedIds(recorder), (std::vector<uint64_t>{5, 3}));
  // Same seconds, higher id than both incumbents: loses.
  recorder.Offer(MakeTrace(9, 1.0));
  EXPECT_EQ(RetainedIds(recorder), (std::vector<uint64_t>{5, 3}));
}

TEST(FlightRecorderTest, WouldRetainSlowMatchesOfferOutcome) {
  FlightRecorderConfig config;
  config.incident_capacity = 0;
  config.slowest_k = 2;
  FlightRecorder recorder(config);
  EXPECT_TRUE(recorder.WouldRetainSlow(0.0, 1));  // slots free
  recorder.Offer(MakeTrace(5, 1.0));
  recorder.Offer(MakeTrace(7, 2.0));
  EXPECT_TRUE(recorder.WouldRetainSlow(1.5, 9));   // beats 1.0
  EXPECT_FALSE(recorder.WouldRetainSlow(0.9, 9));  // loses to 1.0
  EXPECT_TRUE(recorder.WouldRetainSlow(1.0, 3));   // tie, lower id wins
  EXPECT_FALSE(recorder.WouldRetainSlow(1.0, 9));  // tie, higher id loses
  EXPECT_FALSE(recorder.WouldRetainSlow(1.0, 5));  // full tie: incumbent wins
}

TEST(FlightRecorderTest, DualReasonTraceIsStoredOnceAndSurvivesOneEviction) {
  FlightRecorderConfig config;
  config.incident_capacity = 1;
  config.slowest_k = 1;
  FlightRecorder recorder(config);
  recorder.Offer(MakeTrace(1, 5.0, /*failed=*/true));  // incident + slowest
  EXPECT_EQ(recorder.size(), 1u);
  // A new slower trace takes the slow slot; request 1 stays as incident.
  recorder.Offer(MakeTrace(2, 9.0));
  EXPECT_EQ(RetainedIds(recorder), (std::vector<uint64_t>{1, 2}));
  // A new incident takes the ring slot; request 1 now holds nothing.
  recorder.Offer(MakeTrace(3, 0.1, /*failed=*/true));
  EXPECT_EQ(RetainedIds(recorder), (std::vector<uint64_t>{2, 3}));
}

TEST(FlightRecorderTest, AbsorbMergesInOrderAndTagsRuns) {
  FlightRecorderConfig config;
  config.incident_capacity = 4;
  config.slowest_k = 0;
  FlightRecorder sweep(config);

  FlightRecorder run0(config);
  run0.Offer(MakeTrace(1, 0.1, /*failed=*/true));
  FlightRecorder run1(config);
  run1.Offer(MakeTrace(1, 0.2, /*failed=*/true));
  run1.Offer(MakeTrace(2, 0.3, /*failed=*/true));

  sweep.Absorb(std::move(run0), "run=0");
  sweep.Absorb(std::move(run1), "run=1");
  std::vector<const RequestTrace*> traces = sweep.Snapshot();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0]->tag, "run=0");
  EXPECT_EQ(traces[1]->tag, "run=1");
  EXPECT_EQ(traces[2]->tag, "run=1");
  EXPECT_EQ(traces[1]->request_id, 1u);
  EXPECT_EQ(traces[2]->request_id, 2u);
  EXPECT_EQ(run1.size(), 0u);  // donor cleared
  // Nested absorption prefixes: tag/existing.
  FlightRecorder outer(config);
  outer.Absorb(std::move(sweep), "sweep");
  EXPECT_EQ(outer.Snapshot()[0]->tag, "sweep/run=0");
}

TEST(FlightRecorderTest, DumpsAreDeterministic) {
  FlightRecorderConfig config;
  config.incident_capacity = 4;
  config.slowest_k = 2;
  const auto build = [&config]() {
    FlightRecorder recorder(config);
    // Fast failure: starts incident+slow, loses its slow slot to request 3.
    recorder.Offer(MakeTrace(1, 0.1, /*failed=*/true));
    recorder.Offer(MakeTrace(2, 2.5));
    recorder.Offer(MakeTrace(3, 0.5));
    return recorder;
  };
  const FlightRecorder a = build();
  const FlightRecorder b = build();
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.ToChromeTrace(), b.ToChromeTrace());
  EXPECT_EQ(a.ReportText(), b.ReportText());
  EXPECT_NE(a.ToJson().find("\"retained\":[\"incident\"]"), std::string::npos);
  EXPECT_NE(a.ToJson().find("\"retained\":[\"slow\"]"), std::string::npos);
}

TEST(FlightRecorderTest, ChromeTraceGroupsLanesBySession) {
  FlightRecorderConfig config;
  config.incident_capacity = 4;
  FlightRecorder recorder(config);
  RequestTrace second = MakeTrace(2, 0.1, /*failed=*/true);
  second.session_id = 9;
  second.session_label = "other";
  recorder.Offer(std::move(second));
  recorder.Offer(MakeTrace(1, 0.1, /*failed=*/true));
  const std::string json = recorder.ToChromeTrace();
  // Metadata names both sessions and both request lanes.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("other"), std::string::npos);
  // Session 1's lane sorts before session 9's even though offered later.
  EXPECT_LT(json.find("request 1 [Unavailable]"),
            json.find("request 2 [Unavailable]"));
}

TEST(FlightRecorderTest, PublishMetricsIsIdempotent) {
  FlightRecorderConfig config;
  config.incident_capacity = 1;
  config.slowest_k = 1;
  FlightRecorder recorder(config);
  recorder.Offer(MakeTrace(1, 1.0, /*failed=*/true));
  recorder.Offer(MakeTrace(2, 2.0, /*failed=*/true));
  MetricsRegistry metrics;
  recorder.PublishMetrics(&metrics);
  recorder.PublishMetrics(&metrics);
  EXPECT_EQ(metrics.GetCounter("server.flight_recorder.offered")->value(), 2u);
  EXPECT_EQ(
      metrics.GetCounter("server.flight_recorder.retained.incident")->value(),
      2u);
  EXPECT_EQ(
      metrics.GetCounter("server.flight_recorder.evicted.incident")->value(),
      1u);
  // Request 1 lost both its ring slot and its slow slot to request 2, so
  // only one trace remains stored.
  EXPECT_EQ(metrics.GetGauge("server.flight_recorder.size")->value(), 1.0);
}

TEST(FlightRecorderTest, ClearResetsEverything) {
  FlightRecorder recorder({/*enabled=*/true, /*incident_capacity=*/4,
                           /*slowest_k=*/4});
  recorder.Offer(MakeTrace(1, 1.0, /*failed=*/true));
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.stats().offered, 0u);
  EXPECT_EQ(recorder.ToJson(),
            FlightRecorder({/*enabled=*/true, /*incident_capacity=*/4,
                            /*slowest_k=*/4})
                .ToJson());
}

}  // namespace
}  // namespace obs
}  // namespace robustqo
