#include "obs/plan_provenance.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace robustqo {
namespace obs {
namespace {

PlanSensitivity MakeSensitivity(std::vector<CandidateCurve> candidates) {
  PlanSensitivity s;
  s.captured = true;
  s.available = true;
  s.threshold = 0.8;
  s.grid = {0.10, 0.50, 0.95};
  s.selectivity = {0.05, 0.10, 0.20};
  s.plan_label = candidates.empty() ? "" : candidates.front().label;
  s.candidates = std::move(candidates);
  FinalizeSensitivity(&s);
  return s;
}

PlanProvenanceRecord MakeRecord(uint64_t fingerprint, uint64_t epoch,
                                const std::string& label, double cost) {
  PlanProvenanceRecord record;
  record.fingerprint = fingerprint;
  record.threshold_bits = 0x3FE999999999999Au;
  record.estimator = "robust";
  record.epoch = epoch;
  record.plan_label = label;
  record.estimated_cost = cost;
  record.estimated_rows = 100.0;
  record.sensitivity =
      MakeSensitivity({{label, cost, 100.0, true, {cost, cost, cost}}});
  return record;
}

TEST(FinalizeSensitivityTest, StableWhenWinnerDominatesEverywhere) {
  PlanSensitivity s = MakeSensitivity({
      {"HJ", 0.5, 100.0, true, {0.50, 0.52, 0.55}},
      {"INLJ", 0.6, 100.0, true, {0.58, 0.61, 0.66}},
  });
  EXPECT_TRUE(s.stable);
  EXPECT_DOUBLE_EQ(s.max_regret_pct, 0.0);
  EXPECT_DOUBLE_EQ(s.crossover_quantile, -1.0);
  EXPECT_EQ(s.verdict,
            "winner dominates at every grid point across p10-p95 (stable)");
}

TEST(FinalizeSensitivityTest, CrossoverInterpolatesBetweenGridPoints) {
  // Winner flat at 0.5; rival goes 0.4 -> 0.6 between p10 and p50, so the
  // curves cross halfway: p30. The rival is cheaper at p10 already? No —
  // rival is 0.6 at p10 and 0.4 at p95: make it cross inside the grid.
  PlanSensitivity s = MakeSensitivity({
      {"Seq", 0.5, 100.0, true, {0.50, 0.50, 0.50}},
      {"Ix", 0.55, 100.0, true, {0.60, 0.40, 0.30}},
  });
  EXPECT_FALSE(s.stable);
  // Gap winner-rival goes -0.10 at p10 to +0.10 at p50: crossing at the
  // midpoint quantile 0.30.
  EXPECT_NEAR(s.crossover_quantile, 0.30, 1e-9);
  EXPECT_EQ(s.crossover_rival, "Ix");
  EXPECT_GT(s.max_regret_pct, 0.0);
  EXPECT_NE(s.verdict.find("crossover at p30 vs Ix"), std::string::npos);
}

TEST(FinalizeSensitivityTest, CrossoverAtFirstGridPointUsesThatQuantile) {
  PlanSensitivity s = MakeSensitivity({
      {"Seq", 0.5, 100.0, true, {0.50, 0.50, 0.50}},
      {"Ix", 0.55, 100.0, true, {0.40, 0.45, 0.60}},
  });
  EXPECT_FALSE(s.stable);
  EXPECT_NEAR(s.crossover_quantile, 0.10, 1e-9);
}

TEST(FinalizeSensitivityTest, UnavailableKeepsReason) {
  PlanSensitivity s;
  s.captured = true;
  s.available = false;
  s.unavailable_reason = "estimator has no posterior";
  FinalizeSensitivity(&s);
  EXPECT_FALSE(s.stable);
  EXPECT_EQ(s.verdict,
            "sensitivity unavailable (estimator has no posterior)");
}

TEST(FinalizeSensitivityTest, IsIdempotent) {
  PlanSensitivity s = MakeSensitivity({
      {"Seq", 0.5, 100.0, true, {0.50, 0.50, 0.50}},
      {"Ix", 0.55, 100.0, true, {0.60, 0.40, 0.30}},
  });
  PlanSensitivity again = s;
  FinalizeSensitivity(&again);
  EXPECT_EQ(again.verdict, s.verdict);
  EXPECT_DOUBLE_EQ(again.crossover_quantile, s.crossover_quantile);
  EXPECT_DOUBLE_EQ(again.max_regret_pct, s.max_regret_pct);
}

TEST(QuantileLabelTest, RendersPercentiles) {
  EXPECT_EQ(QuantileLabel(0.10), "p10");
  EXPECT_EQ(QuantileLabel(0.83), "p83");
  EXPECT_EQ(QuantileLabel(0.95), "p95");
}

TEST(PlanProvenanceStoreTest, RecordsAndFindsByFingerprint) {
  PlanProvenanceStore store;
  store.Record(MakeRecord(0xAA, 1, "Seq(t)", 0.5));
  store.Record(MakeRecord(0xBB, 1, "Ix(t)", 0.3));
  ASSERT_EQ(store.size(), 2u);
  const PlanProvenanceRecord* found = store.Find(0xAA);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->plan_label, "Seq(t)");
  EXPECT_EQ(store.Find(0xCC), nullptr);
  const PlanProvenanceRecord* latest = store.Latest();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->fingerprint, 0xBBu);
}

TEST(PlanProvenanceStoreTest, RefreshKeepsOneRecordPerKey) {
  PlanProvenanceStore store;
  store.Record(MakeRecord(0xAA, 1, "Seq(t)", 0.5));
  store.Record(MakeRecord(0xAA, 2, "Ix(t)", 0.4));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().recorded, 2u);
  EXPECT_EQ(store.Find(0xAA)->plan_label, "Ix(t)");
  EXPECT_EQ(store.Find(0xAA)->epoch, 2u);
}

TEST(PlanProvenanceStoreTest, EvictsLeastRecentlyRecorded) {
  PlanProvenanceConfig config;
  config.capacity = 2;
  PlanProvenanceStore store(config);
  store.Record(MakeRecord(0xAA, 1, "a", 0.1));
  store.Record(MakeRecord(0xBB, 1, "b", 0.2));
  // Refresh 0xAA so 0xBB becomes the LRU victim.
  store.Record(MakeRecord(0xAA, 2, "a2", 0.15));
  store.Record(MakeRecord(0xCC, 1, "c", 0.3));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().evicted, 1u);
  EXPECT_NE(store.Find(0xAA), nullptr);
  EXPECT_EQ(store.Find(0xBB), nullptr);
  EXPECT_NE(store.Find(0xCC), nullptr);
}

TEST(PlanProvenanceStoreTest, DiffsAreFifoBounded) {
  PlanProvenanceConfig config;
  config.diff_capacity = 2;
  PlanProvenanceStore store(config);
  for (uint64_t i = 0; i < 3; ++i) {
    PlanDiffRecord diff;
    diff.fingerprint = i;
    diff.trigger = "stale-epoch";
    store.RecordDiff(std::move(diff));
  }
  const auto diffs = store.Diffs();
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0]->fingerprint, 1u);
  EXPECT_EQ(diffs[1]->fingerprint, 2u);
  EXPECT_EQ(store.stats().diffs, 3u);
  EXPECT_EQ(store.stats().diffs_evicted, 1u);
}

TEST(PlanProvenanceStoreTest, DisabledStoreDropsOffers) {
  PlanProvenanceConfig config;
  config.enabled = false;
  PlanProvenanceStore store(config);
  store.Record(MakeRecord(0xAA, 1, "a", 0.1));
  PlanDiffRecord diff;
  store.RecordDiff(std::move(diff));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Diffs().empty());
  EXPECT_EQ(store.stats().recorded, 0u);
  // Disabled stores publish nothing, so the metric surface is untouched.
  MetricsRegistry metrics;
  store.PublishMetrics(&metrics);
  EXPECT_EQ(metrics.ToJson(), MetricsRegistry().ToJson());
}

TEST(PlanProvenanceStoreTest, TracksFragileAndStableCounts) {
  PlanProvenanceStore store;
  store.Record(MakeRecord(0xAA, 1, "stable", 0.5));  // single candidate
  PlanProvenanceRecord fragile = MakeRecord(0xBB, 1, "Seq", 0.5);
  fragile.sensitivity = MakeSensitivity({
      {"Seq", 0.5, 100.0, true, {0.50, 0.50, 0.50}},
      {"Ix", 0.55, 100.0, true, {0.60, 0.40, 0.30}},
  });
  store.Record(std::move(fragile));
  EXPECT_EQ(store.stats().stable, 1u);
  EXPECT_EQ(store.stats().fragile, 1u);
}

TEST(PlanProvenanceStoreTest, AbsorbPrefixesTagsAndKeepsOrder) {
  PlanProvenanceStore sink;
  PlanProvenanceStore donor;
  donor.Record(MakeRecord(0xAA, 1, "a", 0.1));
  PlanDiffRecord diff;
  diff.fingerprint = 0xAA;
  diff.trigger = "drift-blocked";
  donor.RecordDiff(std::move(diff));
  donor.Record(MakeRecord(0xBB, 1, "b", 0.2));
  sink.Absorb(std::move(donor), "run=3");
  EXPECT_EQ(donor.size(), 0u);
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.stats().absorbed, 3u);
  EXPECT_EQ(sink.Find(0xAA)->tag, "run=3");
  // Donor order is preserved: record 0xAA, then the diff, then 0xBB.
  const auto records = sink.Snapshot();
  EXPECT_EQ(records[0]->fingerprint, 0xAAu);
  EXPECT_EQ(records[1]->fingerprint, 0xBBu);
  ASSERT_EQ(sink.Diffs().size(), 1u);
  EXPECT_EQ(sink.Diffs()[0]->tag, "run=3");
  EXPECT_GT(sink.Diffs()[0]->sequence, records[0]->sequence);
  EXPECT_LT(sink.Diffs()[0]->sequence, records[1]->sequence);
}

TEST(PlanProvenanceStoreTest, AbsorbStacksTagsAcrossLevels) {
  PlanProvenanceStore leaf;
  leaf.Record(MakeRecord(0xAA, 1, "a", 0.1));
  PlanProvenanceStore mid;
  mid.Absorb(std::move(leaf), "run=1");
  PlanProvenanceStore root;
  root.Absorb(std::move(mid), "sweep=0");
  EXPECT_EQ(root.Find(0xAA)->tag, "sweep=0/run=1");
}

TEST(PlanProvenanceStoreTest, ReportForMissIsOneLineNotice) {
  PlanProvenanceStore store;
  EXPECT_EQ(store.ReportFor(0xAB),
            "whyplan: no provenance retained for fp=00000000000000ab\n");
}

TEST(PlanProvenanceStoreTest, ReportForShowsCurvesVerdictAndDiffs) {
  PlanProvenanceStore store;
  PlanProvenanceRecord record = MakeRecord(0xAB, 2, "Seq", 0.5);
  record.sensitivity = MakeSensitivity({
      {"Seq", 0.5, 100.0, true, {0.50, 0.50, 0.50}},
      {"Ix", 0.55, 100.0, false, {0.55, 0.55, 0.55}},
  });
  store.Record(std::move(record));
  PlanDiffRecord diff;
  diff.fingerprint = 0xAB;
  diff.trigger = "stale-epoch";
  diff.old_epoch = 1;
  diff.new_epoch = 2;
  diff.old_label = "Ix";
  diff.new_label = "Seq";
  diff.old_cost = 0.4;
  diff.new_cost = 0.5;
  diff.plan_changed = true;
  diff.grid = {0.10, 0.50, 0.95};
  diff.old_curve = {0.40, 0.40, 0.40};
  diff.new_curve = {0.50, 0.50, 0.50};
  diff.new_verdict = "winner dominates";
  store.RecordDiff(std::move(diff));

  const std::string report = store.ReportFor(0xAB);
  EXPECT_NE(report.find("whyplan fp=00000000000000ab"), std::string::npos);
  EXPECT_NE(report.find("[winner]"), std::string::npos);
  EXPECT_NE(report.find("(flat: no curve)"), std::string::npos);
  EXPECT_NE(report.find("verdict: winner dominates at every grid point"),
            std::string::npos);
  EXPECT_NE(report.find("[stale-epoch] epoch 1->2 plan Ix -> Seq"),
            std::string::npos);
  EXPECT_NE(report.find("curve delta: p10=+0.1 p50=+0.1 p95=+0.1"),
            std::string::npos);
  EXPECT_NE(report.find("now: winner dominates"), std::string::npos);
}

TEST(PlanProvenanceStoreTest, JsonAndReportsAreDeterministic) {
  auto build = [] {
    PlanProvenanceStore store;
    store.Record(MakeRecord(0xAA, 1, "a", 0.1));
    store.Record(MakeRecord(0xBB, 2, "b", 0.2));
    PlanDiffRecord diff;
    diff.fingerprint = 0xAA;
    diff.trigger = "lru-evicted";
    store.RecordDiff(std::move(diff));
    return store;
  };
  EXPECT_EQ(build().ToJson(), build().ToJson());
  EXPECT_EQ(build().ReportText(), build().ReportText());
  EXPECT_EQ(build().ToChromeTrace(), build().ToChromeTrace());
}

TEST(PlanProvenanceStoreTest, PublishMetricsSyncsToRegistryValues) {
  PlanProvenanceStore store;
  store.Record(MakeRecord(0xAA, 1, "a", 0.1));
  MetricsRegistry metrics;
  store.PublishMetrics(&metrics);
  EXPECT_EQ(metrics.GetCounter("optimizer.provenance.recorded")->value(), 1u);
  EXPECT_EQ(metrics.GetGauge("optimizer.provenance.records")->value(), 1.0);
  // Publishing twice must not double-count: the store syncs absolute
  // values, counter-delta style, like the flight recorder.
  store.PublishMetrics(&metrics);
  EXPECT_EQ(metrics.GetCounter("optimizer.provenance.recorded")->value(), 1u);
  store.Record(MakeRecord(0xBB, 1, "b", 0.2));
  store.PublishMetrics(&metrics);
  EXPECT_EQ(metrics.GetCounter("optimizer.provenance.recorded")->value(), 2u);
  EXPECT_EQ(metrics.GetGauge("optimizer.provenance.records")->value(), 2.0);
}

TEST(PlanProvenanceStoreTest, ClearEmptiesRecordsAndDiffs) {
  PlanProvenanceStore store;
  store.Record(MakeRecord(0xAA, 1, "a", 0.1));
  PlanDiffRecord diff;
  store.RecordDiff(std::move(diff));
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Diffs().empty());
  EXPECT_EQ(store.Latest(), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace robustqo
