#include "obs/slo_monitor.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace robustqo {
namespace obs {
namespace {

SloObservation Obs(double actual, double estimated, bool cache_hit = true,
                   uint64_t waves = 0, bool failed = false) {
  SloObservation o;
  o.session = 1;
  o.session_label = "s1";
  o.fingerprint = 0xF00Du;
  o.failed = failed;
  o.cache_hit = cache_hit;
  o.queue_waves = waves;
  o.actual_seconds = actual;
  o.estimated_seconds = estimated;
  return o;
}

TEST(SloMonitorTest, ChargesQueueWaitAndColdPlanning) {
  SloMonitorConfig config;
  config.wave_delay_seconds = 0.1;
  config.plan_charge_seconds = 0.5;
  SloMonitor monitor(config);
  EXPECT_DOUBLE_EQ(monitor.QueueWaitSeconds(3), 0.3);
  EXPECT_DOUBLE_EQ(monitor.ServiceSeconds(1.0, /*cache_hit=*/true), 1.0);
  EXPECT_DOUBLE_EQ(monitor.ServiceSeconds(1.0, /*cache_hit=*/false), 1.5);
  monitor.ConfigureCharging(0.2, 1.0);
  EXPECT_DOUBLE_EQ(monitor.QueueWaitSeconds(3), 0.6);
  EXPECT_DOUBLE_EQ(monitor.ServiceSeconds(1.0, /*cache_hit=*/false), 2.0);
}

TEST(SloMonitorTest, RecordsIntoAllThreeScopes) {
  SloMonitor monitor;
  monitor.Record(Obs(1.0, 1.0));
  SloObservation other = Obs(2.0, 2.0);
  other.session_label = "s2";
  other.fingerprint = 0xBEEFu;
  monitor.Record(other);
  EXPECT_EQ(monitor.global().observed, 2u);
  EXPECT_EQ(monitor.sessions_tracked(), 2u);
  EXPECT_EQ(monitor.fingerprints_tracked(), 2u);
  ASSERT_NE(monitor.SessionScope("s1"), nullptr);
  EXPECT_EQ(monitor.SessionScope("s1")->observed, 1u);
  ASSERT_NE(monitor.FingerprintScope(0xBEEFu), nullptr);
  EXPECT_EQ(monitor.FingerprintScope(0xBEEFu)->observed, 1u);
  EXPECT_EQ(monitor.SessionScope("nope"), nullptr);
  EXPECT_EQ(monitor.FingerprintScope(0x1234u), nullptr);
}

TEST(SloMonitorTest, RegretClampsAtZeroAndTracksWorstRatio) {
  SloMonitor monitor;
  monitor.Record(Obs(0.5, 1.0));  // plan beat its estimate: no regret
  EXPECT_EQ(monitor.global().regret_positive, 0u);
  EXPECT_DOUBLE_EQ(monitor.global().regret.Quantile(0.5), 0.0);
  monitor.Record(Obs(3.0, 1.0));  // 3x the promise
  EXPECT_EQ(monitor.global().regret_positive, 1u);
  EXPECT_DOUBLE_EQ(monitor.global().worst_regret_ratio, 3.0);
  monitor.Record(Obs(1.5, 1.0));  // worse than promise, better than worst
  EXPECT_EQ(monitor.global().regret_positive, 2u);
  EXPECT_DOUBLE_EQ(monitor.global().worst_regret_ratio, 3.0);
}

TEST(SloMonitorTest, FailedRequestsCountQueueWaitButNotService) {
  SloMonitorConfig config;
  config.wave_delay_seconds = 0.05;
  SloMonitor monitor(config);
  monitor.Record(Obs(0.0, 1.0, /*cache_hit=*/false, /*waves=*/4,
                     /*failed=*/true));
  EXPECT_EQ(monitor.global().observed, 1u);
  EXPECT_EQ(monitor.global().failed, 1u);
  EXPECT_EQ(monitor.global().queue_wait.count(), 1u);
  EXPECT_EQ(monitor.global().service.count(), 0u);
  EXPECT_EQ(monitor.global().regret.count(), 0u);
  EXPECT_EQ(monitor.global().regret_positive, 0u);
}

TEST(SloMonitorTest, BreachCountersRespectThresholds) {
  SloMonitorConfig config;
  config.wave_delay_seconds = 0.1;
  config.plan_charge_seconds = 0.0;
  config.queue_wait_breach_seconds = 0.25;
  config.service_breach_seconds = 2.0;
  config.regret_breach_seconds = 0.5;
  SloMonitor monitor(config);
  monitor.Record(Obs(1.0, 1.0, /*cache_hit=*/true, /*waves=*/1));  // no breach
  monitor.Record(Obs(3.0, 1.0, /*cache_hit=*/true, /*waves=*/3));  // all three
  EXPECT_EQ(monitor.global().breach_queue_wait, 1u);
  EXPECT_EQ(monitor.global().breach_service, 1u);
  EXPECT_EQ(monitor.global().breach_regret, 1u);
  // Disabled thresholds (0) never count.
  SloMonitor unlimited;
  unlimited.Record(Obs(100.0, 1.0, /*cache_hit=*/true, /*waves=*/50));
  EXPECT_EQ(unlimited.global().breach_queue_wait, 0u);
  EXPECT_EQ(unlimited.global().breach_service, 0u);
  EXPECT_EQ(unlimited.global().breach_regret, 0u);
}

TEST(SloMonitorTest, ReportAndJsonAreDeterministic) {
  const auto build = []() {
    SloMonitor monitor;
    monitor.Record(Obs(1.0, 1.0));
    SloObservation other = Obs(2.0, 1.0, /*cache_hit=*/false, /*waves=*/2);
    other.session_label = "s2";
    monitor.Record(other);
    monitor.Record(Obs(0.0, 1.0, true, 0, /*failed=*/true));
    return monitor;
  };
  const SloMonitor a = build();
  const SloMonitor b = build();
  EXPECT_EQ(a.ReportText(), b.ReportText());
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_NE(a.ReportText().find("slo: observed=3 failed=1"),
            std::string::npos);
  EXPECT_NE(a.ToJson().find("\"sessions\""), std::string::npos);
}

TEST(SloMonitorTest, PublishMetricsIsIdempotent) {
  SloMonitor monitor;
  monitor.Record(Obs(2.0, 1.0));
  monitor.Record(Obs(1.0, 1.0, /*cache_hit=*/true, /*waves=*/1));
  MetricsRegistry metrics;
  monitor.PublishMetrics(&metrics);
  monitor.PublishMetrics(&metrics);
  EXPECT_EQ(metrics.GetCounter("server.slo.observed")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("optimizer.regret.positive")->value(), 1u);
  EXPECT_EQ(metrics.GetSketch("server.slo.service_seconds")->count(), 2u);
  EXPECT_EQ(metrics.GetSketch("optimizer.regret.seconds")->count(), 2u);
  EXPECT_EQ(metrics.GetGauge("optimizer.regret.worst_ratio")->value(), 2.0);
}

TEST(SloMonitorTest, ResetClearsAllScopes) {
  SloMonitor monitor;
  monitor.Record(Obs(1.0, 1.0));
  monitor.Reset();
  EXPECT_EQ(monitor.global().observed, 0u);
  EXPECT_EQ(monitor.sessions_tracked(), 0u);
  EXPECT_EQ(monitor.fingerprints_tracked(), 0u);
  EXPECT_EQ(monitor.global().queue_wait.count(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace robustqo
