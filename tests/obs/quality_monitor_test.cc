#include "obs/quality_monitor.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace robustqo {
namespace obs {
namespace {

QualityObservation Obs(uint64_t fingerprint, double est, double act,
                       double threshold = 0.0) {
  QualityObservation o;
  o.fingerprint = fingerprint;
  o.label = "{t} :: pred";
  o.estimated_rows = est;
  o.actual_rows = act;
  o.confidence_threshold = threshold;
  return o;
}

TEST(QualityMonitorTest, IgnoresZeroFingerprint) {
  EstimationQualityMonitor monitor;
  monitor.Record(Obs(0, 100.0, 50.0));
  EXPECT_EQ(monitor.observation_count(), 0u);
  EXPECT_EQ(monitor.fingerprint_count(), 0u);
}

TEST(QualityMonitorTest, TracksPerFingerprintQErrorQuantiles) {
  EstimationQualityMonitor monitor;
  // q-errors exactly 2.0 (est 100 vs act 50), a hundred times.
  for (int i = 0; i < 100; ++i) monitor.Record(Obs(7, 100.0, 50.0));
  ASSERT_EQ(monitor.fingerprint_count(), 1u);
  const FingerprintQuality q = monitor.Snapshot()[0];
  EXPECT_EQ(q.fingerprint, 7u);
  EXPECT_EQ(q.observations, 100u);
  EXPECT_NEAR(q.q_p50, 2.0, 0.05);
  EXPECT_NEAR(q.q_p99, 2.0, 0.05);
  EXPECT_DOUBLE_EQ(q.q_max, 2.0);
  EXPECT_FALSE(q.drifted);
}

TEST(QualityMonitorTest, CalibrationTalliesTrackTheBound) {
  EstimationQualityMonitor monitor;
  // 9 of 10 bounds hold at T=90%.
  for (int i = 0; i < 9; ++i) monitor.Record(Obs(3, 120.0, 100.0, 0.9));
  monitor.Record(Obs(3, 120.0, 500.0, 0.9));  // bound violated
  const FingerprintQuality q = monitor.Snapshot()[0];
  EXPECT_EQ(q.bound_checks, 10u);
  EXPECT_EQ(q.bound_holds, 9u);
  EXPECT_DOUBLE_EQ(q.bound_hit_rate, 0.9);
  EXPECT_NEAR(q.mean_threshold, 0.9, 1e-12);
}

TEST(QualityMonitorTest, EstimatesWithoutThresholdAreNotCalibrationChecked) {
  EstimationQualityMonitor monitor;
  monitor.Record(Obs(3, 120.0, 100.0, 0.0));
  const FingerprintQuality q = monitor.Snapshot()[0];
  EXPECT_EQ(q.bound_checks, 0u);
  EXPECT_DOUBLE_EQ(q.bound_hit_rate, 0.0);
}

TEST(QualityMonitorTest, FlagsDriftWhenRecentWindowRegresses) {
  QualityMonitorConfig config;
  config.baseline_window = 16;
  config.recent_window = 16;
  config.min_observations = 8;
  config.drift_factor = 4.0;
  EstimationQualityMonitor monitor(config);
  // Baseline: near-perfect estimates (q-error ~1).
  for (int i = 0; i < 16; ++i) monitor.Record(Obs(11, 100.0, 100.0));
  EXPECT_TRUE(monitor.Drifted().empty());
  // Then the data moves under the statistics: actuals 10x the estimates.
  for (int i = 0; i < 16; ++i) monitor.Record(Obs(11, 100.0, 1000.0));
  const std::vector<FingerprintQuality> drifted = monitor.Drifted();
  ASSERT_EQ(drifted.size(), 1u);
  EXPECT_EQ(drifted[0].fingerprint, 11u);
  EXPECT_NEAR(drifted[0].drift_ratio, 10.0, 0.5);
  EXPECT_TRUE(drifted[0].drifted);
  // A healthy sibling fingerprint stays unflagged.
  for (int i = 0; i < 40; ++i) monitor.Record(Obs(12, 100.0, 110.0));
  EXPECT_EQ(monitor.Drifted().size(), 1u);
}

TEST(QualityMonitorTest, SnapshotOrdersByFingerprint) {
  EstimationQualityMonitor monitor;
  monitor.Record(Obs(99, 10.0, 10.0));
  monitor.Record(Obs(1, 10.0, 10.0));
  monitor.Record(Obs(50, 10.0, 10.0));
  const std::vector<FingerprintQuality> all = monitor.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].fingerprint, 1u);
  EXPECT_EQ(all[1].fingerprint, 50u);
  EXPECT_EQ(all[2].fingerprint, 99u);
}

TEST(QualityMonitorTest, ReportsAreDeterministic) {
  auto build = [] {
    EstimationQualityMonitor monitor;
    for (int i = 0; i < 20; ++i) {
      monitor.Record(Obs(5, 100.0, 80.0, 0.95));
      monitor.Record(Obs(9, 40.0, 200.0));
    }
    return monitor.ReportJson() + "\n" + monitor.ReportText();
  };
  EXPECT_EQ(build(), build());
  const std::string report = build();
  EXPECT_NE(report.find("\"fingerprint\":\"0x0000000000000005\""),
            std::string::npos);
  EXPECT_NE(report.find("\"bound_hit_rate\":1"), std::string::npos);
}

TEST(QualityMonitorTest, PublishMetricsIsIdempotent) {
  EstimationQualityMonitor monitor;
  for (int i = 0; i < 10; ++i) monitor.Record(Obs(4, 100.0, 50.0, 0.9));
  MetricsRegistry metrics;
  monitor.PublishMetrics(&metrics);
  const std::string once = metrics.ToJson();
  monitor.PublishMetrics(&metrics);
  EXPECT_EQ(metrics.ToJson(), once);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("estimator.quality.fingerprints")->value(),
                   1.0);
  EXPECT_DOUBLE_EQ(
      metrics.GetGauge("estimator.quality.bound_hit_rate")->value(), 1.0);
  EXPECT_EQ(metrics.GetSketch("estimator.quality.q_error")->count(), 10u);
}

TEST(QualityMonitorTest, ResetClearsEverything) {
  EstimationQualityMonitor monitor;
  monitor.Record(Obs(4, 100.0, 50.0));
  monitor.Reset();
  EXPECT_EQ(monitor.observation_count(), 0u);
  EXPECT_EQ(monitor.fingerprint_count(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace robustqo
