#include "obs/trace.h"

#include <gtest/gtest.h>

#include "util/stopwatch.h"

namespace robustqo {
namespace obs {
namespace {

TEST(TracerTest, LogicalClockOrdersAllRecords) {
  Tracer tracer;
  const uint64_t outer = tracer.BeginSpan("exec", "outer");
  tracer.Event("exec", "tick");
  const uint64_t inner = tracer.BeginSpan("exec", "inner");
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);
  ASSERT_EQ(tracer.events().size(), 5u);
  for (size_t i = 0; i < tracer.events().size(); ++i) {
    EXPECT_EQ(tracer.events()[i].seq, i);
  }
  EXPECT_EQ(tracer.logical_clock(), 5u);
}

TEST(TracerTest, SpansNestViaParentIds) {
  Tracer tracer;
  const uint64_t outer = tracer.BeginSpan("exec", "outer");
  const uint64_t inner = tracer.BeginSpan("exec", "inner");
  EXPECT_NE(outer, inner);
  EXPECT_EQ(tracer.current_span(), inner);
  tracer.Event("exec", "leaf");
  tracer.EndSpan(inner);
  EXPECT_EQ(tracer.current_span(), outer);
  tracer.EndSpan(outer);
  EXPECT_EQ(tracer.current_span(), 0u);

  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, TraceKind::kSpanBegin);
  EXPECT_EQ(events[0].parent_id, 0u);       // outer is a root span
  EXPECT_EQ(events[1].parent_id, outer);    // inner nests under outer
  EXPECT_EQ(events[2].kind, TraceKind::kEvent);
  EXPECT_EQ(events[2].span_id, inner);      // event inside innermost span
  EXPECT_EQ(events[3].kind, TraceKind::kSpanEnd);
  EXPECT_EQ(events[3].span_id, inner);
  EXPECT_EQ(events[4].span_id, outer);
}

TEST(TracerTest, EndSpanCarriesResultAttributes) {
  Tracer tracer;
  const uint64_t span = tracer.BeginSpan("exec", "scan");
  tracer.EndSpan(span, {{"rows_out", AttrU64(42)}});
  const TraceEvent& end = tracer.events().back();
  ASSERT_EQ(end.attrs.size(), 1u);
  EXPECT_EQ(end.attrs[0].first, "rows_out");
  EXPECT_EQ(end.attrs[0].second, "42");
}

TEST(TracerTest, ClearResetsLogicalClockButNotSpanIds) {
  Tracer tracer;
  const uint64_t first = tracer.BeginSpan("a", "x");
  tracer.EndSpan(first);
  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.logical_clock(), 0u);
  const uint64_t second = tracer.BeginSpan("a", "y");
  // Span ids stay unique across Clear so records never alias.
  EXPECT_GT(second, first);
  // But the logical clock restarted from zero.
  EXPECT_EQ(tracer.events().front().seq, 0u);
}

TEST(TracerTest, JsonIsDeterministicWithoutWallTime) {
  auto record = [](Tracer* t) {
    const uint64_t span = t->BeginSpan("optimizer", "optimize",
                                       {{"tables", AttrU64(3)}});
    t->Event("estimator", "robust", {{"selectivity", AttrF(0.125)}});
    t->EndSpan(span, {{"candidates", AttrU64(7)}});
  };
  Tracer a;
  Tracer b;
  record(&a);
  record(&b);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  const std::string json = a.ToJson();
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
  EXPECT_NE(json.find("\"optimizer\""), std::string::npos);
  EXPECT_NE(json.find("\"selectivity\""), std::string::npos);
}

TEST(TracerTest, JsonRoundTripsAttributeOrderAndEscaping) {
  Tracer tracer;
  tracer.Event("estimator", "robust",
               {{"predicate", "a = \"b\"\n"}, {"k", AttrU64(1)}});
  const std::string json = tracer.ToJson();
  // Quotes and newline escaped, attribute order preserved.
  EXPECT_NE(json.find("a = \\\"b\\\"\\n"), std::string::npos) << json;
  EXPECT_LT(json.find("\"predicate\""), json.find("\"k\""));
}

TEST(TracerTest, WallTimeComesFromInjectedClock) {
  ManualClock clock;
  Tracer tracer(&clock);
  clock.AdvanceSeconds(1.0);
  tracer.Event("exec", "late");
  EXPECT_DOUBLE_EQ(tracer.events().back().wall_micros, 1e6);
  const std::string json = tracer.ToJson(/*include_wall_time=*/true);
  EXPECT_NE(json.find("wall_us"), std::string::npos);
}

TEST(SpanGuardTest, BeginsAndEndsAroundScope) {
  Tracer tracer;
  {
    SpanGuard guard(&tracer, "exec", "scoped");
    guard.Attr("rows", AttrU64(9));
    EXPECT_EQ(tracer.current_span(), guard.span_id());
  }
  EXPECT_EQ(tracer.current_span(), 0u);
  ASSERT_EQ(tracer.events().size(), 2u);
  const TraceEvent& end = tracer.events().back();
  EXPECT_EQ(end.kind, TraceKind::kSpanEnd);
  ASSERT_EQ(end.attrs.size(), 1u);
  EXPECT_EQ(end.attrs[0].second, "9");
}

TEST(SpanGuardTest, NullTracerIsANoOp) {
  SpanGuard guard(nullptr, "exec", "ignored");
  guard.Attr("k", "v");  // must not crash
  EXPECT_EQ(guard.span_id(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace robustqo
