#include "exec/sort_op.h"

#include <gtest/gtest.h>

#include <memory>

#include "exec/join_ops.h"
#include "exec/scan_ops.h"
#include "expr/expression.h"
#include "util/rng.h"

namespace robustqo {
namespace exec {
namespace {

using storage::Catalog;
using storage::DataType;
using storage::Rid;
using storage::Schema;
using storage::Table;
using storage::Value;

class SortOpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = std::make_unique<Table>(
        "t", Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
    Rng rng(9);
    for (int64_t i = 0; i < 500; ++i) {
      t->AppendRow({Value::Int64(rng.NextInRange(0, 99)), Value::Int64(i)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(t)).ok());
    ctx_.catalog = &catalog_;
  }

  Catalog catalog_;
  ExecContext ctx_;
};

TEST_F(SortOpTest, OutputSortedAndComplete) {
  SortOp sort(std::make_unique<SeqScanOp>("t", nullptr), "k");
  Table out = sort.Execute(&ctx_).value();
  ASSERT_EQ(out.num_rows(), 500u);
  int64_t prev = INT64_MIN;
  for (Rid r = 0; r < out.num_rows(); ++r) {
    const int64_t k = out.column("k").Int64At(r);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

TEST_F(SortOpTest, StableWithinEqualKeys) {
  SortOp sort(std::make_unique<SeqScanOp>("t", nullptr), "k");
  Table out = sort.Execute(&ctx_).value();
  int64_t prev_k = INT64_MIN;
  int64_t prev_v = INT64_MIN;
  for (Rid r = 0; r < out.num_rows(); ++r) {
    const int64_t k = out.column("k").Int64At(r);
    const int64_t v = out.column("v").Int64At(r);
    if (k == prev_k) EXPECT_GT(v, prev_v);  // original (v) order preserved
    prev_k = k;
    prev_v = v;
  }
}

TEST_F(SortOpTest, ChargesSortCostExactly) {
  SortOp sort(std::make_unique<SeqScanOp>("t", nullptr), "k");
  Table out = sort.Execute(&ctx_).value();
  CostModel m;
  const double expected = SeqScanCost(m, 500, 500) + SortCost(m, 500);
  EXPECT_NEAR(ctx_.meter.total_seconds(), expected, 1e-12);
}

TEST_F(SortOpTest, SortFeedsMergeJoin) {
  // Self-equi-join on k: merge join over explicitly sorted inputs must
  // produce the same result size as a hash join over unsorted inputs.
  ExecContext ctx_hash;
  ctx_hash.catalog = &catalog_;
  HashJoinOp hash(
      std::make_unique<SeqScanOp>("t", nullptr,
                                  std::vector<std::string>{"k"}),
      std::make_unique<SeqScanOp>("t", nullptr,
                                  std::vector<std::string>{"v", "k"}),
      "k", "k", std::vector<std::string>{"v"});
  const uint64_t expected_rows = hash.Execute(&ctx_hash).value().num_rows();

  ExecContext ctx_merge;
  ctx_merge.catalog = &catalog_;
  MergeJoinOp merge(
      std::make_unique<SortOp>(
          std::make_unique<SeqScanOp>("t", nullptr,
                                      std::vector<std::string>{"k"}),
          "k"),
      std::make_unique<SortOp>(
          std::make_unique<SeqScanOp>("t", nullptr,
                                      std::vector<std::string>{"v", "k"}),
          "k"),
      "k", "k", std::vector<std::string>{"v"});
  EXPECT_EQ(merge.Execute(&ctx_merge).value().num_rows(), expected_rows);
}

TEST_F(SortOpTest, EmptyInput) {
  auto scan = std::make_unique<SeqScanOp>(
      "t", expr::Eq(expr::Col("k"), expr::LitInt(-1)));
  SortOp sort(std::move(scan), "k");
  Table out = sort.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST_F(SortOpTest, DescribeAndTree) {
  SortOp sort(std::make_unique<SeqScanOp>("t", nullptr), "k");
  EXPECT_EQ(sort.Describe(), "Sort(k)");
  EXPECT_EQ(sort.children().size(), 1u);
}

}  // namespace
}  // namespace exec
}  // namespace robustqo
