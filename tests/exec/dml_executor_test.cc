// DmlExecutor: insert/update/delete semantics, snapshot-scoped targeting,
// governor row budgets on the write path, rollback + typed Status under
// injected faults, and the RetryWithBackoff heal on transient commit
// failures.

#include "exec/dml.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"
#include "fault/fault_injector.h"
#include "fault/governor.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace robustqo {
namespace exec {
namespace {

using storage::Value;

class DmlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = std::make_unique<storage::Table>(
        "items", storage::Schema({{"id", storage::DataType::kInt64},
                                  {"price", storage::DataType::kDouble}}));
    for (int64_t i = 0; i < 10; ++i) {
      table->AppendRow({Value::Int64(i), Value::Double(i * 1.0)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(table)).ok());
    table_ = catalog_.GetMutableTable("items");
    ctx_.catalog = &catalog_;
  }

  storage::Catalog catalog_;
  storage::Table* table_ = nullptr;
  ExecContext ctx_;
};

TEST_F(DmlExecutorTest, InsertAppendsAndPublishes) {
  DmlExecutor dml(&catalog_);
  auto r = dml.Insert(&ctx_, "items",
                      {{Value::Int64(10), Value::Double(10.0)},
                       {Value::Int64(11), Value::Double(11.0)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows_inserted, 2u);
  EXPECT_EQ(r.value().rows_affected(), 2u);
  EXPECT_EQ(r.value().epoch, 1u);
  EXPECT_EQ(r.value().retry.attempts, 1u);
  EXPECT_EQ(table_->VisibleRowCount(), 12u);
}

TEST_F(DmlExecutorTest, InsertCoercesIntLiteralToDoubleColumn) {
  DmlExecutor dml(&catalog_);
  auto r = dml.Insert(&ctx_, "items", {{Value::Int64(10), Value::Int64(7)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(table_->ValueAt(10, 1).AsDouble(), 7.0);
}

TEST_F(DmlExecutorTest, InsertUnknownTableIsNotFound) {
  DmlExecutor dml(&catalog_);
  auto r = dml.Insert(&ctx_, "nope", {{Value::Int64(1)}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(DmlExecutorTest, InsertTypeMismatchIsInvalidArgument) {
  DmlExecutor dml(&catalog_);
  auto r = dml.Insert(&ctx_, "items",
                      {{Value::String("x"), Value::Double(1.0)}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog_.data_epoch(), 0u);
  EXPECT_EQ(table_->num_rows(), 10u);
}

TEST_F(DmlExecutorTest, UpdateRewritesMatchingRows) {
  DmlExecutor dml(&catalog_);
  // UPDATE items SET price = price * 2 WHERE id < 3
  std::vector<std::pair<std::string, expr::ExprPtr>> sets;
  sets.emplace_back("price", expr::Arith(expr::ArithOp::kMul,
                                         expr::Col("price"),
                                         expr::LitDouble(2.0)));
  auto r = dml.Update(&ctx_, "items", sets,
                      expr::Lt(expr::Col("id"), expr::LitInt(3)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows_matched, 3u);
  EXPECT_EQ(r.value().rows_updated, 3u);
  EXPECT_EQ(r.value().rows_affected(), 3u);
  // Old versions dead, new versions live; net row count unchanged.
  EXPECT_EQ(table_->VisibleRowCount(), 10u);
  double sum = 0;
  for (storage::Rid rid = 0; rid < table_->num_rows(); ++rid) {
    if (table_->VisibleAt(rid)) sum += table_->ValueAt(rid, 1).AsDouble();
  }
  // 0+1+2 doubled adds 3 to the original 45.
  EXPECT_DOUBLE_EQ(sum, 48.0);
}

TEST_F(DmlExecutorTest, UpdateMatchingNothingDoesNotGrowTable) {
  DmlExecutor dml(&catalog_);
  std::vector<std::pair<std::string, expr::ExprPtr>> sets;
  sets.emplace_back("price", expr::LitDouble(0.0));
  auto r = dml.Update(&ctx_, "items", sets,
                      expr::Gt(expr::Col("id"), expr::LitInt(1000)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows_matched, 0u);
  EXPECT_EQ(r.value().rows_affected(), 0u);
  EXPECT_EQ(table_->num_rows(), 10u);
}

TEST_F(DmlExecutorTest, DeleteStampsMatchingRows) {
  DmlExecutor dml(&catalog_);
  auto r = dml.Delete(&ctx_, "items",
                      expr::Ge(expr::Col("id"), expr::LitInt(7)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows_deleted, 3u);
  EXPECT_EQ(table_->VisibleRowCount(), 7u);
  // The physical rows are still there for older snapshots.
  EXPECT_EQ(table_->num_rows(), 10u);
  EXPECT_EQ(table_->VisibleRowCount(0), 10u);
}

TEST_F(DmlExecutorTest, DeleteWithoutWhereTargetsEveryRow) {
  DmlExecutor dml(&catalog_);
  auto r = dml.Delete(&ctx_, "items", nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows_deleted, 10u);
  EXPECT_EQ(table_->VisibleRowCount(), 0u);
}

TEST_F(DmlExecutorTest, SnapshotScopedTargetingIgnoresNewerVersions) {
  DmlExecutor dml(&catalog_);
  // Commit a delete at epoch 1.
  ASSERT_TRUE(
      dml.Delete(&ctx_, "items", expr::Eq(expr::Col("id"), expr::LitInt(0)))
          .ok());
  // A writer pinned to the pre-delete snapshot still targets row 0.
  ExecContext old_ctx;
  old_ctx.catalog = &catalog_;
  old_ctx.snapshot_epoch = 0;
  std::vector<std::pair<std::string, expr::ExprPtr>> sets;
  sets.emplace_back("price", expr::LitDouble(-1.0));
  auto r = dml.Update(&old_ctx, "items", sets,
                      expr::Eq(expr::Col("id"), expr::LitInt(0)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows_matched, 1u);
}

TEST_F(DmlExecutorTest, GovernorRowBudgetTripsTargetingScan) {
  DmlExecutor dml(&catalog_);
  fault::GovernorLimits limits;
  limits.row_limit = 5;  // the targeting scan reads all 10 rows
  fault::QueryGovernor governor(limits);
  ctx_.governor = &governor;
  auto r = dml.Delete(&ctx_, "items",
                      expr::Eq(expr::Col("id"), expr::LitInt(1)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(table_->VisibleRowCount(), 10u);
  EXPECT_EQ(catalog_.data_epoch(), 0u);
}

TEST_F(DmlExecutorTest, ApplyFaultRollsBackWithTypedStatus) {
  DmlExecutor dml(&catalog_);
  fault::RetryPolicy no_retry;
  no_retry.max_attempts = 1;
  dml.set_retry_policy(no_retry);
  fault::FaultInjector injector(11);
  injector.Arm(fault::sites::kWriteApply, fault::FaultSpec::Always());
  ctx_.fault = &injector;

  const uint64_t before = table_->VisibleChecksum();
  auto r = dml.Delete(&ctx_, "items",
                      expr::Lt(expr::Col("id"), expr::LitInt(5)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(table_->VisibleChecksum(), before);
  EXPECT_EQ(catalog_.data_epoch(), 0u);
}

TEST_F(DmlExecutorTest, TransientCommitFaultHealsUnderRetry) {
  DmlExecutor dml(&catalog_);
  fault::FaultInjector injector(11);
  injector.Arm(fault::sites::kWriteCommit, fault::FaultSpec::FirstN(2));
  ctx_.fault = &injector;

  auto r = dml.Insert(&ctx_, "items", {{Value::Int64(10), Value::Double(1.0)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Two faulted attempts rolled back cleanly; the third landed.
  EXPECT_EQ(r.value().retry.attempts, 3u);
  EXPECT_GT(r.value().retry.backoff_units, 0u);
  EXPECT_FALSE(r.value().retry.exhausted);
  EXPECT_EQ(r.value().epoch, 1u);
  EXPECT_EQ(table_->VisibleRowCount(), 11u);
}

TEST_F(DmlExecutorTest, ExhaustedRetriesLeavePreWriteState) {
  DmlExecutor dml(&catalog_);
  fault::FaultInjector injector(11);
  injector.Arm(fault::sites::kWriteCommit, fault::FaultSpec::Always());
  ctx_.fault = &injector;

  const uint64_t before = table_->VisibleChecksum();
  auto r = dml.Insert(&ctx_, "items", {{Value::Int64(10), Value::Double(1.0)}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(table_->VisibleChecksum(), before);
  EXPECT_EQ(table_->num_rows(), 10u);
  EXPECT_EQ(catalog_.data_epoch(), 0u);
}

TEST_F(DmlExecutorTest, SequentialCommitsBumpEpochMonotonically) {
  DmlExecutor dml(&catalog_);
  for (uint64_t i = 1; i <= 3; ++i) {
    auto r = dml.Insert(&ctx_, "items",
                        {{Value::Int64(int64_t(100 + i)), Value::Double(0.0)}});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().epoch, i);
  }
  EXPECT_EQ(catalog_.data_epoch(), 3u);
}

}  // namespace
}  // namespace exec
}  // namespace robustqo
