#include <gtest/gtest.h>

#include <memory>

#include "exec/agg_ops.h"
#include "exec/join_ops.h"
#include "exec/scan_ops.h"
#include "exec/star_ops.h"
#include "expr/expression.h"
#include "util/rng.h"
#include "workload/star_schema.h"

namespace robustqo {
namespace exec {
namespace {

using expr::Col;
using expr::Eq;
using expr::Ge;
using expr::LitInt;
using storage::Catalog;
using storage::DataType;
using storage::Rid;
using storage::Schema;
using storage::Table;
using storage::Value;

// A small star schema via the workload generator.
class StarOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::StarSchemaConfig config;
    config.fact_rows = 20000;
    config.dim_rows = 100;
    config.groups = 10;
    config.seed = 3;
    ASSERT_TRUE(workload::LoadStarSchema(&catalog_, config).ok());
    ctx_.catalog = &catalog_;
  }

  std::vector<DimSemiJoin> AllDims(int64_t v1, int64_t v2, int64_t v3) {
    return {
        {"dim1", Eq(Col("d1_attr"), LitInt(v1)), "d1_id", "f_d1"},
        {"dim2", Eq(Col("d2_attr"), LitInt(v2)), "d2_id", "f_d2"},
        {"dim3", Eq(Col("d3_attr"), LitInt(v3)), "d3_id", "f_d3"},
    };
  }

  // Reference result: cascaded hash joins.
  uint64_t HashPlanCount(int64_t v1, int64_t v2, int64_t v3) {
    ExecContext ctx;
    ctx.catalog = &catalog_;
    OperatorPtr plan = std::make_unique<SeqScanOp>("fact", nullptr);
    const char* dims[] = {"dim1", "dim2", "dim3"};
    const char* attrs[] = {"d1_attr", "d2_attr", "d3_attr"};
    const char* pks[] = {"d1_id", "d2_id", "d3_id"};
    const char* fks[] = {"f_d1", "f_d2", "f_d3"};
    const int64_t vals[] = {v1, v2, v3};
    for (int d = 0; d < 3; ++d) {
      auto dim_scan = std::make_unique<SeqScanOp>(
          dims[d], Eq(Col(attrs[d]), LitInt(vals[d])),
          std::vector<std::string>{pks[d]});
      plan = std::make_unique<HashJoinOp>(std::move(dim_scan),
                                          std::move(plan), pks[d], fks[d]);
    }
    return plan->Execute(&ctx).value().num_rows();
  }

  Catalog catalog_;
  ExecContext ctx_;
};

TEST_F(StarOpsTest, SemiJoinMatchesHashCascade) {
  for (int64_t offset : {0, 1, 5}) {
    StarSemiJoinOp semi("fact", AllDims(2, (2 + offset) % 10,
                                        (2 + offset) % 10));
    ExecContext ctx;
    ctx.catalog = &catalog_;
    Table out = semi.Execute(&ctx).value();
    EXPECT_EQ(out.num_rows(),
              HashPlanCount(2, (2 + offset) % 10, (2 + offset) % 10))
        << "offset=" << offset;
  }
}

TEST_F(StarOpsTest, SemiJoinOutputsFactColumnsOnly) {
  StarSemiJoinOp semi("fact", AllDims(0, 0, 0), {"f_id", "f_m1"});
  Table out = semi.Execute(&ctx_).value();
  EXPECT_EQ(out.schema().num_columns(), 2u);
  EXPECT_TRUE(out.schema().HasColumn("f_m1"));
}

TEST_F(StarOpsTest, SemiJoinChargesFetchPerSurvivor) {
  StarSemiJoinOp semi("fact", AllDims(0, 0, 0));
  Table out = semi.Execute(&ctx_).value();
  EXPECT_EQ(ctx_.meter.random_ios(), out.num_rows());
  // One index probe per selected dimension row (10% of 100 rows x 3 dims).
  EXPECT_EQ(ctx_.meter.index_seeks(), 30u);
}

TEST_F(StarOpsTest, PartialSemiJoinPlusHash) {
  // Semijoin two dims, hash the third — the paper's hybrid plan.
  std::vector<DimSemiJoin> two = {AllDims(1, 1, 1)[0], AllDims(1, 1, 1)[1]};
  auto semi = std::make_unique<StarSemiJoinOp>("fact", two);
  auto dim3 = std::make_unique<SeqScanOp>(
      "dim3", Eq(Col("d3_attr"), LitInt(1)),
      std::vector<std::string>{"d3_id"});
  HashJoinOp hybrid(std::move(dim3), std::move(semi), "d3_id", "f_d3");
  ExecContext ctx;
  ctx.catalog = &catalog_;
  Table out = hybrid.Execute(&ctx).value();
  EXPECT_EQ(out.num_rows(), HashPlanCount(1, 1, 1));
}

TEST_F(StarOpsTest, SemiJoinDisjointGroupsYieldFewRows) {
  // Misaligned dim2/dim3 filters: only the rare non-aligned offsets match.
  StarSemiJoinOp aligned("fact", AllDims(4, 4, 4));
  ExecContext ctx1;
  ctx1.catalog = &catalog_;
  const uint64_t aligned_rows = aligned.Execute(&ctx1).value().num_rows();
  StarSemiJoinOp misaligned("fact", AllDims(4, 5, 6));
  ExecContext ctx2;
  ctx2.catalog = &catalog_;
  const uint64_t misaligned_rows = misaligned.Execute(&ctx2).value().num_rows();
  EXPECT_GT(aligned_rows, 10 * std::max<uint64_t>(1, misaligned_rows));
}

class AggOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = std::make_unique<Table>(
        "t", Schema({{"g", DataType::kInt64},
                     {"x", DataType::kInt64},
                     {"w", DataType::kDouble}}));
    // g in {0,1,2}; x = 10*g + i.
    for (int64_t g = 0; g < 3; ++g) {
      for (int64_t i = 0; i < 4; ++i) {
        t->AppendRow({Value::Int64(g), Value::Int64(10 * g + i),
                      Value::Double(0.5 * static_cast<double>(i))});
      }
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(t)).ok());
    ctx_.catalog = &catalog_;
  }

  OperatorPtr Scan() { return std::make_unique<SeqScanOp>("t", nullptr); }

  Catalog catalog_;
  ExecContext ctx_;
};

TEST_F(AggOpsTest, ScalarAggregates) {
  ScalarAggregateOp agg(Scan(), {{AggKind::kCount, "", "n"},
                                 {AggKind::kSum, "x", "sx"},
                                 {AggKind::kMin, "x", "mn"},
                                 {AggKind::kMax, "x", "mx"},
                                 {AggKind::kAvg, "w", "aw"}});
  Table out = agg.Execute(&ctx_).value();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.column("n").Int64At(0), 12);
  EXPECT_EQ(out.column("sx").DoubleAt(0), 0 + 1 + 2 + 3 + 10 + 11 + 12 + 13 +
                                              20 + 21 + 22 + 23);
  EXPECT_EQ(out.column("mn").DoubleAt(0), 0.0);
  EXPECT_EQ(out.column("mx").DoubleAt(0), 23.0);
  EXPECT_DOUBLE_EQ(out.column("aw").DoubleAt(0), (0.0 + 0.5 + 1.0 + 1.5) / 4);
}

TEST_F(AggOpsTest, ScalarAggregateOnEmptyInput) {
  auto scan = std::make_unique<SeqScanOp>(
      "t", Eq(Col("g"), LitInt(99)));
  ScalarAggregateOp agg(std::move(scan), {{AggKind::kCount, "", "n"},
                                          {AggKind::kSum, "x", "s"}});
  Table out = agg.Execute(&ctx_).value();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.column("n").Int64At(0), 0);
  EXPECT_EQ(out.column("s").DoubleAt(0), 0.0);
}

TEST_F(AggOpsTest, GroupByAggregates) {
  GroupByAggregateOp agg(Scan(), {"g"},
                         {{AggKind::kCount, "", "n"},
                          {AggKind::kSum, "x", "sx"}});
  Table out = agg.Execute(&ctx_).value();
  ASSERT_EQ(out.num_rows(), 3u);
  // Deterministic output order (sorted by group key).
  for (Rid r = 0; r < 3; ++r) {
    EXPECT_EQ(out.column("g").Int64At(r), static_cast<int64_t>(r));
    EXPECT_EQ(out.column("n").Int64At(r), 4);
    EXPECT_EQ(out.column("sx").DoubleAt(r),
              static_cast<double>(40 * r + 6));
  }
}

TEST_F(AggOpsTest, FilterOp) {
  FilterOp filter(Scan(), Ge(Col("x"), LitInt(12)));
  Table out = filter.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), 6u);
  EXPECT_EQ(out.schema().num_columns(), 3u);
}

TEST_F(AggOpsTest, ProjectOp) {
  ProjectOp project(Scan(), {"w", "g"});
  Table out = project.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), 12u);
  ASSERT_EQ(out.schema().num_columns(), 2u);
  EXPECT_EQ(out.schema().column(0).name, "w");
  EXPECT_EQ(out.schema().column(1).name, "g");
}

TEST_F(AggOpsTest, DescribeStrings) {
  ScalarAggregateOp agg(Scan(), {{AggKind::kSum, "x", "s"}});
  EXPECT_NE(agg.Describe().find("SUM(x)"), std::string::npos);
  GroupByAggregateOp gagg(Scan(), {"g"}, {{AggKind::kCount, "", "n"}});
  EXPECT_NE(gagg.Describe().find("COUNT(*)"), std::string::npos);
  FilterOp filter(Scan(), Ge(Col("x"), LitInt(1)));
  EXPECT_NE(filter.Describe().find("Filter"), std::string::npos);
  ProjectOp project(Scan(), {"g"});
  EXPECT_NE(project.Describe().find("Project(g)"), std::string::npos);
}

}  // namespace
}  // namespace exec
}  // namespace robustqo
