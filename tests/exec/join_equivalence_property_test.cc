// Property sweep: every join method must compute exactly the same multiset
// of result rows, for arbitrary data seeds, filter selectivities and key
// skews. (This is the guarantee that lets the experiments attribute every
// performance difference purely to plan choice.)

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>

#include "exec/join_ops.h"
#include "exec/scan_ops.h"
#include "exec/sort_op.h"
#include "expr/expression.h"
#include "util/rng.h"

namespace robustqo {
namespace exec {
namespace {

using expr::Col;
using expr::Lt;
using expr::LitInt;
using storage::Catalog;
using storage::DataType;
using storage::Rid;
using storage::Schema;
using storage::Table;
using storage::Value;

// (seed, filter bound on dim attr 0..99, key skew: max duplicates per key)
using Param = std::tuple<uint64_t, int64_t, int64_t>;

class JoinEquivalence : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [seed, bound, skew] = GetParam();
    bound_ = bound;
    Rng rng(seed);
    auto dim = std::make_unique<Table>(
        "jdim", Schema({{"jd_id", DataType::kInt64},
                        {"jd_attr", DataType::kInt64}}));
    const int64_t dim_rows = 200;
    for (int64_t i = 1; i <= dim_rows; ++i) {
      dim->AppendRow({Value::Int64(i),
                      Value::Int64(rng.NextInRange(0, 99))});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(dim)).ok());

    auto fact = std::make_unique<Table>(
        "jfact", Schema({{"jf_id", DataType::kInt64},
                         {"jf_fk", DataType::kInt64}}));
    int64_t id = 0;
    for (int64_t d = 1; d <= dim_rows; ++d) {
      const int64_t copies = rng.NextInRange(0, skew);
      for (int64_t c = 0; c < copies; ++c) {
        fact->AppendRow({Value::Int64(++id), Value::Int64(d)});
      }
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(fact)).ok());
    ASSERT_TRUE(catalog_.BuildIndex("jfact", "jf_fk").ok());
  }

  // The canonical result: sorted list of (jd_id, jf_id) pairs.
  static std::vector<std::pair<int64_t, int64_t>> Canonicalize(
      const Table& out) {
    std::vector<std::pair<int64_t, int64_t>> rows;
    rows.reserve(out.num_rows());
    for (Rid r = 0; r < out.num_rows(); ++r) {
      rows.emplace_back(out.column("jd_id").Int64At(r),
                        out.column("jf_id").Int64At(r));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  OperatorPtr DimScan() {
    return std::make_unique<SeqScanOp>(
        "jdim", Lt(Col("jd_attr"), LitInt(bound_)),
        std::vector<std::string>{"jd_id"});
  }
  OperatorPtr FactScan() {
    return std::make_unique<SeqScanOp>("jfact", nullptr);
  }

  Table Run(PhysicalOperator* op) {
    ExecContext ctx;
    ctx.catalog = &catalog_;
    return op->Execute(&ctx).value();
  }

  Catalog catalog_;
  int64_t bound_ = 0;
};

TEST_P(JoinEquivalence, AllMethodsAgree) {
  HashJoinOp hash(DimScan(), FactScan(), "jd_id", "jf_fk",
                  {"jd_id", "jf_id"});
  const auto reference = Canonicalize(Run(&hash));

  // Hash join, reversed build/probe.
  HashJoinOp hash_rev(FactScan(), DimScan(), "jf_fk", "jd_id",
                      {"jd_id", "jf_id"});
  EXPECT_EQ(Canonicalize(Run(&hash_rev)), reference);

  // Merge join over explicit sorts.
  MergeJoinOp merge(
      std::make_unique<SortOp>(DimScan(), "jd_id"),
      std::make_unique<SortOp>(FactScan(), "jf_fk"), "jd_id", "jf_fk",
      std::vector<std::string>{"jd_id", "jf_id"});
  EXPECT_EQ(Canonicalize(Run(&merge)), reference);

  // Indexed nested-loop join probing the fact FK index.
  IndexNestedLoopJoinOp inlj(DimScan(), "jd_id", "jfact", "jf_fk", nullptr,
                             std::vector<std::string>{"jd_id", "jf_id"});
  EXPECT_EQ(Canonicalize(Run(&inlj)), reference);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinEquivalence,
    ::testing::Values(Param{1, 100, 3},   // no filter, light skew
                      Param{2, 50, 3},    // half the dims
                      Param{3, 10, 3},    // selective filter
                      Param{4, 0, 3},     // empty dim side
                      Param{5, 100, 0},   // empty fact side
                      Param{6, 100, 10},  // heavy duplication
                      Param{7, 25, 1},    // sparse fact (0-1 per key)
                      Param{8, 75, 6}, Param{9, 33, 4}, Param{10, 90, 8}));

}  // namespace
}  // namespace exec
}  // namespace robustqo
