#include "exec/join_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "exec/scan_ops.h"
#include "expr/expression.h"
#include "util/rng.h"

namespace robustqo {
namespace exec {
namespace {

using expr::Col;
using expr::Ge;
using expr::LitInt;
using storage::Catalog;
using storage::DataType;
using storage::Rid;
using storage::Schema;
using storage::Table;
using storage::Value;

// orders(o_id, o_attr) referenced by items(i_id, i_oid, i_qty);
// both generated sorted by their keys (clustered), FK many-to-one.
class JoinOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto orders = std::make_unique<Table>(
        "orders", Schema({{"o_id", DataType::kInt64},
                          {"o_attr", DataType::kInt64}}));
    for (int64_t i = 1; i <= 100; ++i) {
      orders->AppendRow({Value::Int64(i), Value::Int64(i % 7)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(orders)).ok());

    auto items = std::make_unique<Table>(
        "items", Schema({{"i_id", DataType::kInt64},
                         {"i_oid", DataType::kInt64},
                         {"i_qty", DataType::kInt64}}));
    Rng rng(5);
    int64_t id = 0;
    for (int64_t o = 1; o <= 100; ++o) {
      const int64_t lines = rng.NextInRange(0, 5);
      for (int64_t l = 0; l < lines; ++l) {
        items->AppendRow({Value::Int64(++id), Value::Int64(o),
                          Value::Int64(rng.NextInRange(1, 50))});
      }
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(items)).ok());
    ASSERT_TRUE(catalog_.BuildIndex("items", "i_oid").ok());
    ASSERT_TRUE(catalog_.BuildIndex("orders", "o_id").ok());
    ctx_.catalog = &catalog_;
  }

  // Reference join result size: items matching orders with o_attr >= lo.
  uint64_t BruteForceJoinSize(int64_t attr_lo) {
    const Table* orders = catalog_.GetTable("orders");
    const Table* items = catalog_.GetTable("items");
    uint64_t count = 0;
    for (Rid i = 0; i < items->num_rows(); ++i) {
      const int64_t oid = items->column("i_oid").Int64At(i);
      // o_id is 1..100 and dense: attr = oid % 7.
      if (oid % 7 >= attr_lo) ++count;
    }
    (void)orders;
    return count;
  }

  OperatorPtr ScanOrders(int64_t attr_lo) {
    return std::make_unique<SeqScanOp>(
        "orders", attr_lo > 0 ? Ge(Col("o_attr"), LitInt(attr_lo)) : nullptr);
  }
  OperatorPtr ScanItems() {
    return std::make_unique<SeqScanOp>("items", nullptr);
  }

  Catalog catalog_;
  ExecContext ctx_;
};

TEST_F(JoinOpsTest, HashJoinMatchesBruteForce) {
  HashJoinOp join(ScanOrders(3), ScanItems(), "o_id", "i_oid");
  Table out = join.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), BruteForceJoinSize(3));
  EXPECT_EQ(out.schema().num_columns(), 5u);
}

TEST_F(JoinOpsTest, HashJoinNoFilterIsFullJoin) {
  HashJoinOp join(ScanOrders(0), ScanItems(), "o_id", "i_oid");
  Table out = join.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), catalog_.GetTable("items")->num_rows());
}

TEST_F(JoinOpsTest, HashJoinProjection) {
  HashJoinOp join(ScanOrders(0), ScanItems(), "o_id", "i_oid",
                  {"i_id", "o_attr"});
  Table out = join.Execute(&ctx_).value();
  EXPECT_EQ(out.schema().num_columns(), 2u);
  EXPECT_TRUE(out.schema().HasColumn("i_id"));
  EXPECT_TRUE(out.schema().HasColumn("o_attr"));
}

TEST_F(JoinOpsTest, HashJoinJoinedValuesConsistent) {
  HashJoinOp join(ScanOrders(0), ScanItems(), "o_id", "i_oid");
  Table out = join.Execute(&ctx_).value();
  for (Rid r = 0; r < out.num_rows(); ++r) {
    EXPECT_EQ(out.column("o_id").Int64At(r),
              out.column("i_oid").Int64At(r));
    EXPECT_EQ(out.column("o_attr").Int64At(r),
              out.column("o_id").Int64At(r) % 7);
  }
}

TEST_F(JoinOpsTest, HashJoinChargesBuildAndProbe) {
  HashJoinOp join(ScanOrders(0), ScanItems(), "o_id", "i_oid");
  join.Execute(&ctx_).value();
  // Seq scans charge their own tuples; hash charges cpu for build+probe.
  const uint64_t items = catalog_.GetTable("items")->num_rows();
  EXPECT_EQ(ctx_.meter.cpu_tuples(), 100u + items);
}

TEST_F(JoinOpsTest, MergeJoinMatchesHashJoin) {
  HashJoinOp hash(ScanOrders(2), ScanItems(), "o_id", "i_oid");
  Table hash_out = hash.Execute(&ctx_).value();
  ExecContext ctx2;
  ctx2.catalog = &catalog_;
  // Both scans emit in clustered (key) order.
  MergeJoinOp merge(ScanOrders(2), ScanItems(), "o_id", "i_oid");
  Table merge_out = merge.Execute(&ctx2).value();
  EXPECT_EQ(merge_out.num_rows(), hash_out.num_rows());
}

TEST_F(JoinOpsTest, MergeJoinHandlesDuplicateRuns) {
  // Join items with itself on i_oid: many-to-many duplicate keys.
  MergeJoinOp merge(ScanItems(), ScanItems(), "i_oid", "i_oid");
  // Self-join would duplicate column names; project each side first.
  // Instead verify via orders x items which is 1-to-many.
  ExecContext ctx2;
  ctx2.catalog = &catalog_;
  MergeJoinOp simple(ScanOrders(0), ScanItems(), "o_id", "i_oid");
  Table out = simple.Execute(&ctx2).value();
  EXPECT_EQ(out.num_rows(), catalog_.GetTable("items")->num_rows());
}

TEST_F(JoinOpsTest, MergeJoinOutputSortedByKey) {
  MergeJoinOp merge(ScanOrders(0), ScanItems(), "o_id", "i_oid");
  Table out = merge.Execute(&ctx_).value();
  int64_t prev = -1;
  for (Rid r = 0; r < out.num_rows(); ++r) {
    const int64_t key = out.column("o_id").Int64At(r);
    EXPECT_GE(key, prev);
    prev = key;
  }
}

TEST_F(JoinOpsTest, IndexNestedLoopJoinMatchesHashJoin) {
  HashJoinOp hash(ScanOrders(4), ScanItems(), "o_id", "i_oid");
  Table expected = hash.Execute(&ctx_).value();
  ExecContext ctx2;
  ctx2.catalog = &catalog_;
  IndexNestedLoopJoinOp inlj(ScanOrders(4), "o_id", "items", "i_oid");
  Table out = inlj.Execute(&ctx2).value();
  EXPECT_EQ(out.num_rows(), expected.num_rows());
}

TEST_F(JoinOpsTest, InljChargesSeekPerOuterRowAndFetchPerMatch) {
  IndexNestedLoopJoinOp inlj(ScanOrders(0), "o_id", "items", "i_oid");
  Table out = inlj.Execute(&ctx_).value();
  EXPECT_EQ(ctx_.meter.index_seeks(), 100u);
  EXPECT_EQ(ctx_.meter.random_ios(), out.num_rows());
}

TEST_F(JoinOpsTest, InljAppliesInnerResidual) {
  auto residual = Ge(Col("i_qty"), LitInt(25));
  IndexNestedLoopJoinOp inlj(ScanOrders(0), "o_id", "items", "i_oid",
                             residual);
  Table out = inlj.Execute(&ctx_).value();
  const Table* items = catalog_.GetTable("items");
  uint64_t expected = 0;
  for (Rid i = 0; i < items->num_rows(); ++i) {
    if (items->column("i_qty").Int64At(i) >= 25) ++expected;
  }
  EXPECT_EQ(out.num_rows(), expected);
  for (Rid r = 0; r < out.num_rows(); ++r) {
    EXPECT_GE(out.column("i_qty").Int64At(r), 25);
  }
}

TEST_F(JoinOpsTest, DescribeAndChildren) {
  HashJoinOp join(ScanOrders(0), ScanItems(), "o_id", "i_oid");
  EXPECT_NE(join.Describe().find("HashJoin"), std::string::npos);
  EXPECT_EQ(join.children().size(), 2u);
  IndexNestedLoopJoinOp inlj(ScanOrders(0), "o_id", "items", "i_oid");
  EXPECT_EQ(inlj.children().size(), 1u);
  EXPECT_NE(inlj.TreeString().find("SeqScan"), std::string::npos);
}

}  // namespace
}  // namespace exec
}  // namespace robustqo
