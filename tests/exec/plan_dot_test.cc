#include "exec/plan_dot.h"

#include <gtest/gtest.h>

#include <memory>

#include "exec/agg_ops.h"
#include "exec/join_ops.h"
#include "exec/scan_ops.h"

namespace robustqo {
namespace exec {
namespace {

TEST(PlanDotTest, SingleNode) {
  SeqScanOp scan("t", nullptr);
  const std::string dot = PlanToDot(scan);
  EXPECT_NE(dot.find("digraph plan {"), std::string::npos);
  EXPECT_NE(dot.find("SeqScan(t)"), std::string::npos);
  EXPECT_EQ(dot.find("->"), std::string::npos);  // no edges
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(PlanDotTest, TreeWithEdgesAndEscaping) {
  auto build = std::make_unique<SeqScanOp>(
      "orders", expr::Eq(expr::Col("o_status"), expr::LitString("\"F\"")));
  auto probe = std::make_unique<SeqScanOp>("items", nullptr);
  auto join = std::make_unique<HashJoinOp>(std::move(build), std::move(probe),
                                           "o_id", "i_oid");
  ScalarAggregateOp agg(std::move(join), {{AggKind::kCount, "", "n"}});
  const std::string dot = PlanToDot(agg, "g1");
  EXPECT_NE(dot.find("digraph g1 {"), std::string::npos);
  // 4 nodes, 3 edges.
  size_t edges = 0;
  for (size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 3u);
  // Quotes in the predicate are escaped.
  EXPECT_NE(dot.find("\\\"F\\\""), std::string::npos);
}

}  // namespace
}  // namespace exec
}  // namespace robustqo
