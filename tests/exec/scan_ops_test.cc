#include "exec/scan_ops.h"

#include <gtest/gtest.h>

#include <memory>

#include "expr/expression.h"
#include "util/rng.h"

namespace robustqo {
namespace exec {
namespace {

using expr::And;
using expr::Between;
using expr::Col;
using expr::Ge;
using expr::LitInt;
using storage::Catalog;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

// One table with two indexed int columns (a, b) and a payload.
class ScanOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = std::make_unique<Table>(
        "t", Schema({{"id", DataType::kInt64},
                     {"a", DataType::kInt64},
                     {"b", DataType::kInt64},
                     {"v", DataType::kDouble}}));
    Rng rng(77);
    for (int64_t i = 0; i < 2000; ++i) {
      t->AppendRow({Value::Int64(i), Value::Int64(rng.NextInRange(0, 99)),
                    Value::Int64(rng.NextInRange(0, 99)),
                    Value::Double(rng.NextDouble())});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(t)).ok());
    ASSERT_TRUE(catalog_.BuildIndex("t", "a").ok());
    ASSERT_TRUE(catalog_.BuildIndex("t", "b").ok());
    ctx_.catalog = &catalog_;
  }

  uint64_t BruteForceCount(const expr::Expr& pred) {
    return expr::CountSatisfying(pred, *catalog_.GetTable("t"));
  }

  Catalog catalog_;
  ExecContext ctx_;
};

TEST_F(ScanOpsTest, SeqScanNoPredicateReturnsAllRows) {
  SeqScanOp scan("t", nullptr);
  Table out = scan.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), 2000u);
  EXPECT_EQ(out.schema().num_columns(), 4u);
  EXPECT_EQ(ctx_.meter.seq_tuples(), 2000u);
  EXPECT_EQ(ctx_.meter.output_tuples(), 2000u);
}

TEST_F(ScanOpsTest, SeqScanFiltersAndProjects) {
  auto pred = Ge(Col("a"), LitInt(50));
  SeqScanOp scan("t", pred, {"id", "v"});
  Table out = scan.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), BruteForceCount(*pred));
  EXPECT_EQ(out.schema().num_columns(), 2u);
  EXPECT_TRUE(out.schema().HasColumn("id"));
  EXPECT_FALSE(out.schema().HasColumn("a"));
}

TEST_F(ScanOpsTest, SeqScanPreservesRowOrder) {
  SeqScanOp scan("t", Ge(Col("id"), LitInt(1990)), {"id"});
  Table out = scan.Execute(&ctx_).value();
  ASSERT_EQ(out.num_rows(), 10u);
  for (storage::Rid r = 0; r < 10; ++r) {
    EXPECT_EQ(out.ValueAt(r, 0).AsInt64(), 1990 + static_cast<int64_t>(r));
  }
}

TEST_F(ScanOpsTest, IndexRangeScanMatchesBruteForce) {
  auto pred = Between(Col("a"), Value::Int64(10), Value::Int64(19));
  IndexRangeScanOp scan("t", {"a", 10.0, 19.0}, pred);
  Table out = scan.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), BruteForceCount(*pred));
  // Cost shape: one seek, entries == fetched rows here.
  EXPECT_EQ(ctx_.meter.index_seeks(), 1u);
  EXPECT_EQ(ctx_.meter.index_entries(), out.num_rows());
  EXPECT_EQ(ctx_.meter.random_ios(), out.num_rows());
  EXPECT_EQ(ctx_.meter.seq_tuples(), 0u);
}

TEST_F(ScanOpsTest, IndexRangeScanAppliesResidual) {
  // Index covers a BETWEEN 10 AND 19; residual keeps only b >= 50.
  auto full = And({Between(Col("a"), Value::Int64(10), Value::Int64(19)),
                   Ge(Col("b"), LitInt(50))});
  IndexRangeScanOp scan("t", {"a", 10.0, 19.0}, full);
  Table out = scan.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), BruteForceCount(*full));
  // Fetches cover the whole index range; output is smaller.
  EXPECT_GT(ctx_.meter.random_ios(), out.num_rows());
}

TEST_F(ScanOpsTest, IndexRangeScanOpenBounds) {
  IndexRangeScanOp scan("t", {"a", std::nullopt, 4.0},
                        Between(Col("a"), Value::Int64(0), Value::Int64(4)));
  Table out = scan.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(),
            BruteForceCount(
                *Between(Col("a"), Value::Int64(0), Value::Int64(4))));
}

TEST_F(ScanOpsTest, IndexIntersectionMatchesBruteForce) {
  auto full = And({Between(Col("a"), Value::Int64(0), Value::Int64(29)),
                   Between(Col("b"), Value::Int64(0), Value::Int64(29))});
  IndexIntersectionOp scan(
      "t", {{"a", 0.0, 29.0}, {"b", 0.0, 29.0}}, full);
  Table out = scan.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), BruteForceCount(*full));
  EXPECT_EQ(ctx_.meter.index_seeks(), 2u);
  // Only the intersection survivors are fetched.
  EXPECT_EQ(ctx_.meter.random_ios(), out.num_rows());
  EXPECT_GT(ctx_.meter.index_entries(), out.num_rows());
}

TEST_F(ScanOpsTest, IndexIntersectionEmptyResult) {
  auto full = And({Between(Col("a"), Value::Int64(0), Value::Int64(0)),
                   Between(Col("b"), Value::Int64(99), Value::Int64(99))});
  IndexIntersectionOp scan("t", {{"a", 0.0, 0.0}, {"b", 99.0, 99.0}}, full);
  Table out = scan.Execute(&ctx_).value();
  // Could be zero or a few rows; must match brute force exactly.
  EXPECT_EQ(out.num_rows(), BruteForceCount(*full));
}

TEST_F(ScanOpsTest, IndexIntersectionThreeIndexes) {
  ASSERT_TRUE(catalog_.BuildIndex("t", "id").ok());
  auto full = And({Between(Col("a"), Value::Int64(0), Value::Int64(49)),
                   Between(Col("b"), Value::Int64(0), Value::Int64(49)),
                   Between(Col("id"), Value::Int64(0), Value::Int64(999))});
  IndexIntersectionOp scan(
      "t", {{"a", 0.0, 49.0}, {"b", 0.0, 49.0}, {"id", 0.0, 999.0}}, full);
  Table out = scan.Execute(&ctx_).value();
  EXPECT_EQ(out.num_rows(), BruteForceCount(*full));
  EXPECT_EQ(ctx_.meter.index_seeks(), 3u);
}

TEST_F(ScanOpsTest, DescribeStrings) {
  EXPECT_NE(SeqScanOp("t", nullptr).Describe().find("SeqScan(t"),
            std::string::npos);
  EXPECT_NE(IndexRangeScanOp("t", {"a", 0.0, 1.0}, nullptr)
                .Describe()
                .find("t.a"),
            std::string::npos);
  IndexIntersectionOp ix("t", {{"a", 0.0, 1.0}, {"b", 0.0, 1.0}}, nullptr);
  EXPECT_NE(ix.Describe().find("a & b"), std::string::npos);
}

}  // namespace
}  // namespace exec
}  // namespace robustqo
