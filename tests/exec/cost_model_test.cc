#include "exec/cost_model.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace exec {
namespace {

TEST(CostModelTest, DefaultsMatchPaperCalibration) {
  CostModel m = CostModel::Default();
  // 6M-row sequential scan ~ 35 simulated seconds (Section 5.1's f1).
  EXPECT_NEAR(m.seq_tuple_cost * 6.0e6, 35.0, 1e-9);
  // One RID fetch = 3.5 ms (Section 5.1's v2).
  EXPECT_NEAR(m.random_io_cost, 3.5e-3, 1e-12);
  // Per-tuple CPU = 3.5 us (Section 5.1's v1).
  EXPECT_NEAR(m.cpu_tuple_cost, 3.5e-6, 1e-12);
}

TEST(CostMeterTest, ChargesAccumulate) {
  CostModel m;
  CostMeter meter;
  meter.ChargeSeqTuples(m, 1000);
  meter.ChargeRandomIo(m, 10);
  meter.ChargeCpuTuples(m, 100);
  meter.ChargeOutputTuples(m, 5);
  EXPECT_EQ(meter.seq_tuples(), 1000u);
  EXPECT_EQ(meter.random_ios(), 10u);
  EXPECT_EQ(meter.cpu_tuples(), 100u);
  EXPECT_EQ(meter.output_tuples(), 5u);
  const double expected = m.seq_tuple_cost * 1000 + m.random_io_cost * 10 +
                          m.cpu_tuple_cost * 100 + m.output_tuple_cost * 5;
  EXPECT_NEAR(meter.total_seconds(), expected, 1e-15);
}

TEST(CostMeterTest, IndexProbeChargesSeekPlusEntries) {
  CostModel m;
  CostMeter meter;
  meter.ChargeIndexProbe(m, 200);
  EXPECT_EQ(meter.index_seeks(), 1u);
  EXPECT_EQ(meter.index_entries(), 200u);
  EXPECT_NEAR(meter.total_seconds(),
              m.index_seek_cost + 200 * m.index_entry_cost, 1e-15);
}

TEST(CostMeterTest, HashJoinCharges) {
  CostModel m;
  CostMeter meter;
  meter.ChargeHashJoin(m, 100, 1000);
  EXPECT_NEAR(meter.total_seconds(),
              100 * m.hash_build_cost + 1000 * m.hash_probe_cost, 1e-15);
}

TEST(CostMeterTest, ResetClearsEverything) {
  CostModel m;
  CostMeter meter;
  meter.ChargeSeqTuples(m, 10);
  meter.Reset();
  EXPECT_EQ(meter.total_seconds(), 0.0);
  EXPECT_EQ(meter.seq_tuples(), 0u);
}

TEST(CostMeterTest, ToStringMentionsCounters) {
  CostModel m;
  CostMeter meter;
  meter.ChargeSeqTuples(m, 7);
  EXPECT_NE(meter.ToString().find("seq=7"), std::string::npos);
}

TEST(CostFormulaTest, SeqScanLinearInRows) {
  CostModel m;
  EXPECT_NEAR(SeqScanCost(m, 6.0e6, 0.0), 35.0, 1e-9);
  EXPECT_GT(SeqScanCost(m, 1000, 100), SeqScanCost(m, 1000, 0));
}

TEST(CostFormulaTest, IndexIntersectionDominatedByFetches) {
  CostModel m;
  const double cheap = IndexIntersectionCost(m, 2, 1000, 10, 10);
  const double expensive = IndexIntersectionCost(m, 2, 1000, 10000, 10000);
  EXPECT_GT(expensive, cheap + 30.0);  // 10k random IOs ~ 35s
}

TEST(CostFormulaTest, CrossoverBetweenScanAndIntersection) {
  // The paper's central cost structure: at low selectivity the
  // intersection wins, at high selectivity the scan wins.
  CostModel m;
  const double rows = 6.0e6;
  const double entries = 2 * 0.0364 * rows;  // two ~3.6% marginal ranges
  auto scan = [&](double sel) { return SeqScanCost(m, rows, sel * rows); };
  auto ix = [&](double sel) {
    return IndexIntersectionCost(m, 2, entries, sel * rows, sel * rows);
  };
  EXPECT_LT(ix(0.0001), scan(0.0001));
  EXPECT_GT(ix(0.01), scan(0.01));
}

TEST(CostFormulaTest, JoinFormulasScaleWithInputs) {
  CostModel m;
  EXPECT_GT(HashJoinCost(m, 1000, 10000, 100),
            HashJoinCost(m, 100, 1000, 100));
  EXPECT_GT(MergeJoinCost(m, 10000, 10000, 0),
            MergeJoinCost(m, 100, 100, 0));
  EXPECT_GT(IndexNestedLoopJoinCost(m, 1000, 1000, 1000, 1000),
            IndexNestedLoopJoinCost(m, 10, 10, 10, 10));
}

TEST(CostFormulaTest, InljPaysPerOuterRowSeek) {
  CostModel m;
  const double few_outer = IndexNestedLoopJoinCost(m, 10, 0, 0, 0);
  const double many_outer = IndexNestedLoopJoinCost(m, 10000, 0, 0, 0);
  EXPECT_NEAR(many_outer - few_outer, m.index_seek_cost * 9990, 1e-9);
}

TEST(CostFormulaTest, AggregateLinear) {
  CostModel m;
  EXPECT_NEAR(AggregateCost(m, 1000, 1),
              1000 * m.cpu_tuple_cost + m.output_tuple_cost, 1e-15);
}

}  // namespace
}  // namespace exec
}  // namespace robustqo
