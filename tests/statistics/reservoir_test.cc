#include "statistics/reservoir.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault_injector.h"
#include "statistics/statistics_catalog.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "storage/write_batch.h"

namespace robustqo {
namespace stats {
namespace {

TEST(ReservoirTest, FillsToCapacityFirst) {
  ReservoirSample<int> reservoir(10, 1);
  for (int i = 0; i < 7; ++i) reservoir.Add(i);
  EXPECT_EQ(reservoir.items().size(), 7u);
  EXPECT_EQ(reservoir.seen(), 7u);
  // The first `capacity` items are kept verbatim.
  for (int i = 0; i < 7; ++i) EXPECT_EQ(reservoir.items()[i], i);
}

TEST(ReservoirTest, CapacityNeverExceeded) {
  ReservoirSample<int> reservoir(10, 2);
  for (int i = 0; i < 1000; ++i) reservoir.Add(i);
  EXPECT_EQ(reservoir.items().size(), 10u);
  EXPECT_EQ(reservoir.seen(), 1000u);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Every stream element must appear with probability capacity/stream_len.
  const int capacity = 20;
  const int stream_len = 200;
  const int trials = 3000;
  std::vector<int> inclusion(stream_len, 0);
  for (int t = 0; t < trials; ++t) {
    ReservoirSample<int> reservoir(capacity, 1000 + t);
    for (int i = 0; i < stream_len; ++i) reservoir.Add(i);
    for (int kept : reservoir.items()) ++inclusion[kept];
  }
  const double expected = static_cast<double>(capacity) / stream_len * trials;
  for (int i = 0; i < stream_len; ++i) {
    EXPECT_NEAR(inclusion[i], expected, expected * 0.25) << "element " << i;
  }
}

TEST(ReservoirTest, ResetClears) {
  ReservoirSample<int> reservoir(5, 3);
  for (int i = 0; i < 100; ++i) reservoir.Add(i);
  reservoir.Reset();
  EXPECT_EQ(reservoir.seen(), 0u);
  EXPECT_TRUE(reservoir.items().empty());
}

TEST(MaintenancePolicyTest, FreshPolicyWantsBuild) {
  SampleMaintenancePolicy policy;
  EXPECT_TRUE(policy.RebuildDue());
}

TEST(MaintenancePolicyTest, TriggersAtFraction) {
  SampleMaintenancePolicy policy(0.20);
  policy.RecordRebuild(1000);
  EXPECT_FALSE(policy.RebuildDue());
  policy.RecordModifications(150);
  EXPECT_FALSE(policy.RebuildDue());
  policy.RecordModifications(50);  // total 200 = 20% of 1000
  EXPECT_TRUE(policy.RebuildDue());
  EXPECT_EQ(policy.modifications_since_rebuild(), 200u);
}

TEST(ReservoirTest, ReplacementSequenceIsDeterministic) {
  // Two identically-seeded reservoirs over the same stream keep exactly
  // the same items in the same slots — the property the determinism
  // contract extends to online maintenance.
  ReservoirSample<int> a(16, 99);
  ReservoirSample<int> b(16, 99);
  for (int i = 0; i < 5000; ++i) {
    a.Add(i);
    b.Add(i);
  }
  EXPECT_EQ(a.items(), b.items());
  EXPECT_EQ(a.seen(), b.seen());

  // A different seed diverges once replacement starts.
  ReservoirSample<int> c(16, 100);
  for (int i = 0; i < 5000; ++i) c.Add(i);
  EXPECT_NE(a.items(), c.items());
}

TEST(ReservoirTest, ReplaySkipsPrefixIdentically) {
  // The replacement decisions for the first k elements are independent of
  // what comes later: replaying a longer stream reproduces the state the
  // shorter one passed through (the reservoir is an online algorithm).
  ReservoirSample<int> shorter(8, 7);
  for (int i = 0; i < 200; ++i) shorter.Add(i);
  std::vector<int> at_200 = shorter.items();

  ReservoirSample<int> longer(8, 7);
  for (int i = 0; i < 200; ++i) longer.Add(i);
  EXPECT_EQ(longer.items(), at_200);
  for (int i = 200; i < 400; ++i) longer.Add(i);
  EXPECT_EQ(longer.seen(), 400u);
}

// Catalog-level consistency: the reservoir observes exactly the commits
// that publish, so a faulted (rolled-back) write leaves it untouched.
class ReservoirConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = std::make_unique<storage::Table>(
        "t", storage::Schema({{"id", storage::DataType::kInt64}}));
    for (int64_t i = 0; i < 20; ++i) {
      table->AppendRow({storage::Value::Int64(i)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(table)).ok());
    table_ = catalog_.GetMutableTable("t");
    statistics_ = std::make_unique<StatisticsCatalog>(&catalog_);
  }

  // Commits `rows` through a WriteBatch with the ObserveCommit pre-publish
  // hook wired the way DmlExecutor wires it.
  Result<storage::CommitStats> CommitInsert(int64_t first_id, int count) {
    storage::WriteBatch batch(&catalog_, table_);
    std::vector<StatisticsCatalog::ReservoirRow> rows;
    for (int i = 0; i < count; ++i) {
      std::vector<storage::Value> row = {storage::Value::Int64(first_id + i)};
      batch.StageInsert(row);
      rows.push_back(row);
    }
    return batch.Commit(statistics_->fault_injector(),
                        [&](const storage::CommitStats&) {
                          return statistics_->ObserveCommit("t", rows, 0);
                        });
  }

  storage::Catalog catalog_;
  storage::Table* table_ = nullptr;
  std::unique_ptr<StatisticsCatalog> statistics_;
};

TEST_F(ReservoirConsistencyTest, CommittedRowsFeedTheReservoir) {
  ASSERT_TRUE(CommitInsert(100, 3).ok());
  const auto* reservoir = statistics_->Reservoir("t");
  ASSERT_NE(reservoir, nullptr);
  EXPECT_EQ(reservoir->seen(), 3u);
  EXPECT_EQ(reservoir->items().size(), 3u);
  EXPECT_EQ(reservoir->items()[0][0].AsInt64(), 100);
}

TEST_F(ReservoirConsistencyTest, FaultedWriteLeavesSampleAndTableTogether) {
  ASSERT_TRUE(CommitInsert(100, 3).ok());
  const uint64_t table_checksum = table_->VisibleChecksum();

  // Arm the reservoir-update site: the next commit must fail typed and
  // roll back BOTH the table and the sample — they always move together.
  fault::FaultInjector injector(13);
  injector.Arm(fault::sites::kReservoirUpdate, fault::FaultSpec::FirstN(1));
  statistics_->SetFaultInjector(&injector);

  auto failed = CommitInsert(200, 5);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(table_->VisibleChecksum(), table_checksum);
  const auto* reservoir = statistics_->Reservoir("t");
  ASSERT_NE(reservoir, nullptr);
  EXPECT_EQ(reservoir->seen(), 3u) << "rolled-back rows leaked into sample";

  // The FirstN fault has passed: the retried commit lands and the sample
  // advances in lockstep with the table.
  auto healed = CommitInsert(200, 5);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(statistics_->Reservoir("t")->seen(), 8u);
  EXPECT_EQ(table_->VisibleRowCount(), 28u);
}

TEST(MaintenancePolicyTest, RebuildResetsCounter) {
  SampleMaintenancePolicy policy(0.10);
  policy.RecordRebuild(100);
  policy.RecordModifications(10);
  EXPECT_TRUE(policy.RebuildDue());
  policy.RecordRebuild(110);
  EXPECT_FALSE(policy.RebuildDue());
  EXPECT_EQ(policy.modifications_since_rebuild(), 0u);
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
