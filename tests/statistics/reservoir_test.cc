#include "statistics/reservoir.h"

#include <gtest/gtest.h>

#include <vector>

namespace robustqo {
namespace stats {
namespace {

TEST(ReservoirTest, FillsToCapacityFirst) {
  ReservoirSample<int> reservoir(10, 1);
  for (int i = 0; i < 7; ++i) reservoir.Add(i);
  EXPECT_EQ(reservoir.items().size(), 7u);
  EXPECT_EQ(reservoir.seen(), 7u);
  // The first `capacity` items are kept verbatim.
  for (int i = 0; i < 7; ++i) EXPECT_EQ(reservoir.items()[i], i);
}

TEST(ReservoirTest, CapacityNeverExceeded) {
  ReservoirSample<int> reservoir(10, 2);
  for (int i = 0; i < 1000; ++i) reservoir.Add(i);
  EXPECT_EQ(reservoir.items().size(), 10u);
  EXPECT_EQ(reservoir.seen(), 1000u);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Every stream element must appear with probability capacity/stream_len.
  const int capacity = 20;
  const int stream_len = 200;
  const int trials = 3000;
  std::vector<int> inclusion(stream_len, 0);
  for (int t = 0; t < trials; ++t) {
    ReservoirSample<int> reservoir(capacity, 1000 + t);
    for (int i = 0; i < stream_len; ++i) reservoir.Add(i);
    for (int kept : reservoir.items()) ++inclusion[kept];
  }
  const double expected = static_cast<double>(capacity) / stream_len * trials;
  for (int i = 0; i < stream_len; ++i) {
    EXPECT_NEAR(inclusion[i], expected, expected * 0.25) << "element " << i;
  }
}

TEST(ReservoirTest, ResetClears) {
  ReservoirSample<int> reservoir(5, 3);
  for (int i = 0; i < 100; ++i) reservoir.Add(i);
  reservoir.Reset();
  EXPECT_EQ(reservoir.seen(), 0u);
  EXPECT_TRUE(reservoir.items().empty());
}

TEST(MaintenancePolicyTest, FreshPolicyWantsBuild) {
  SampleMaintenancePolicy policy;
  EXPECT_TRUE(policy.RebuildDue());
}

TEST(MaintenancePolicyTest, TriggersAtFraction) {
  SampleMaintenancePolicy policy(0.20);
  policy.RecordRebuild(1000);
  EXPECT_FALSE(policy.RebuildDue());
  policy.RecordModifications(150);
  EXPECT_FALSE(policy.RebuildDue());
  policy.RecordModifications(50);  // total 200 = 20% of 1000
  EXPECT_TRUE(policy.RebuildDue());
  EXPECT_EQ(policy.modifications_since_rebuild(), 200u);
}

TEST(MaintenancePolicyTest, RebuildResetsCounter) {
  SampleMaintenancePolicy policy(0.10);
  policy.RecordRebuild(100);
  policy.RecordModifications(10);
  EXPECT_TRUE(policy.RebuildDue());
  policy.RecordRebuild(110);
  EXPECT_FALSE(policy.RebuildDue());
  EXPECT_EQ(policy.modifications_since_rebuild(), 0u);
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
