#include "statistics/distinct_estimator.h"

#include <gtest/gtest.h>

#include "storage/table.h"
#include "util/rng.h"

namespace robustqo {
namespace stats {
namespace {

TEST(FrequencyProfileTest, CountsFrequencies) {
  // values: 1 once, 2 twice, 3 three times.
  SampleFrequencyProfile p = ProfileValues({1, 2, 2, 3, 3, 3});
  EXPECT_EQ(p.sample_size, 6u);
  EXPECT_EQ(p.distinct_in_sample, 3u);
  EXPECT_EQ(p.f(1), 1u);
  EXPECT_EQ(p.f(2), 1u);
  EXPECT_EQ(p.f(3), 1u);
  EXPECT_EQ(p.f(4), 0u);
}

TEST(FrequencyProfileTest, EmptyInput) {
  SampleFrequencyProfile p = ProfileValues({});
  EXPECT_EQ(p.sample_size, 0u);
  EXPECT_EQ(p.distinct_in_sample, 0u);
  EXPECT_EQ(EstimateDistinct(p, 1000), 0.0);
}

TEST(DistinctEstimatorTest, AllUniqueSample) {
  // 100 unique values out of a 10000-row population: GEE scales f1 by
  // sqrt(N/n) = 10 -> estimate 1000.
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 100; ++i) values.push_back(i);
  SampleFrequencyProfile p = ProfileValues(values);
  EXPECT_NEAR(EstimateDistinct(p, 10000, DistinctMethod::kGee), 1000.0,
              1e-9);
  EXPECT_NEAR(EstimateDistinct(p, 10000, DistinctMethod::kNaiveScaleUp),
              10000.0, 1e-9);
}

TEST(DistinctEstimatorTest, AllDuplicatesSample) {
  // A single value repeated: every estimator should answer ~1.
  std::vector<int64_t> values(200, 7);
  SampleFrequencyProfile p = ProfileValues(values);
  for (auto method : {DistinctMethod::kGee, DistinctMethod::kChao}) {
    EXPECT_NEAR(EstimateDistinct(p, 100000, method), 1.0, 1e-9);
  }
  // Naive scale-up is exactly the estimator the literature improves on:
  // it blindly multiplies by N/n and lands at 500 here.
  EXPECT_NEAR(EstimateDistinct(p, 100000, DistinctMethod::kNaiveScaleUp),
              500.0, 1e-9);
}

TEST(DistinctEstimatorTest, ClampedToValidRange) {
  SampleFrequencyProfile p = ProfileValues({1, 2, 3});
  // Estimates can never drop below observed distinct or exceed N.
  EXPECT_GE(EstimateDistinct(p, 4, DistinctMethod::kGee), 3.0);
  EXPECT_LE(EstimateDistinct(p, 4, DistinctMethod::kNaiveScaleUp), 4.0);
}

class DistinctAccuracy
    : public ::testing::TestWithParam<std::tuple<int64_t, DistinctMethod>> {};

TEST_P(DistinctAccuracy, RecoversTrueDistinctWithinFactorTwo) {
  const auto [true_distinct, method] = GetParam();
  const uint64_t population = 100000;
  const size_t sample_size = 2000;
  Rng rng(static_cast<uint64_t>(true_distinct) * 31 + 7);
  std::vector<int64_t> sample;
  sample.reserve(sample_size);
  // Uniform value distribution over `true_distinct` values.
  for (size_t i = 0; i < sample_size; ++i) {
    sample.push_back(rng.NextInRange(0, true_distinct - 1));
  }
  SampleFrequencyProfile p = ProfileValues(sample);
  const double est = EstimateDistinct(p, population, method);
  EXPECT_GT(est, 0.4 * static_cast<double>(true_distinct));
  EXPECT_LT(est, 3.0 * static_cast<double>(true_distinct));
}

INSTANTIATE_TEST_SUITE_P(
    UniformValues, DistinctAccuracy,
    ::testing::Combine(::testing::Values<int64_t>(100, 500, 1000),
                       ::testing::Values(DistinctMethod::kGee,
                                         DistinctMethod::kChao)));

TEST(DistinctEstimatorTest, ProfileFromSampleColumn) {
  storage::Table t("t", storage::Schema({{"k", storage::DataType::kInt64},
                                         {"s", storage::DataType::kString}}));
  for (int64_t i = 0; i < 1000; ++i) {
    t.AppendRow({storage::Value::Int64(i % 50), storage::Value::String("x")});
  }
  Rng rng(3);
  TableSample sample(t, 400, SamplingMode::kWithReplacement, &rng);
  auto profile = ProfileSampleColumn(sample, "k");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().sample_size, 400u);
  EXPECT_LE(profile.value().distinct_in_sample, 50u);
  EXPECT_GE(profile.value().distinct_in_sample, 40u);
  // Strings unsupported; unknown column is NotFound.
  EXPECT_FALSE(ProfileSampleColumn(sample, "s").ok());
  EXPECT_FALSE(ProfileSampleColumn(sample, "nope").ok());
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
