#include <gtest/gtest.h>

#include <memory>

#include "expr/expression.h"
#include "statistics/histogram_estimator.h"
#include "statistics/magic.h"
#include "statistics/robust_sample_estimator.h"
#include "statistics/statistics_catalog.h"
#include "util/rng.h"

namespace robustqo {
namespace stats {
namespace {

using expr::And;
using expr::Between;
using expr::Col;
using expr::Eq;
using expr::LitInt;
using storage::Catalog;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

// fact(5000 rows) -> dim(100 rows). fact.x and fact.y are perfectly
// correlated (y = x); each is uniform over 0..9. dim_attr uniform 0..4.
class EstimatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dim = std::make_unique<Table>(
        "dim", Schema({{"dim_id", DataType::kInt64},
                       {"dim_attr", DataType::kInt64}}));
    for (int64_t i = 0; i < 100; ++i) {
      dim->AppendRow({Value::Int64(i), Value::Int64(i % 5)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(dim)).ok());

    auto fact = std::make_unique<Table>(
        "fact", Schema({{"fact_id", DataType::kInt64},
                        {"x", DataType::kInt64},
                        {"y", DataType::kInt64},
                        {"fk", DataType::kInt64}}));
    Rng rng(99);
    for (int64_t i = 0; i < 5000; ++i) {
      const int64_t x = rng.NextInRange(0, 9);
      fact->AppendRow({Value::Int64(i), Value::Int64(x), Value::Int64(x),
                       Value::Int64(rng.NextInRange(0, 99))});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(fact)).ok());
    ASSERT_TRUE(catalog_.SetPrimaryKey("dim", "dim_id").ok());
    ASSERT_TRUE(catalog_.AddForeignKey({"fact", "fk", "dim", "dim_id"}).ok());

    statistics_ = std::make_unique<StatisticsCatalog>(&catalog_);
    statistics_->BuildAllHistograms(250);
    StatisticsConfig config;
    config.sample_size = 500;
    config.seed = 5;
    statistics_->BuildAllSamples(config);
  }

  CardinalityRequest SingleTable(expr::ExprPtr pred) {
    return {{"fact"}, std::move(pred)};
  }

  Catalog catalog_;
  std::unique_ptr<StatisticsCatalog> statistics_;
};

TEST_F(EstimatorsTest, HistogramSinglePredicateAccurate) {
  HistogramEstimator est(statistics_.get());
  // x = 3 has true selectivity ~10%.
  Result<double> rows = est.EstimateRows(SingleTable(Eq(Col("x"), LitInt(3))));
  ASSERT_TRUE(rows.ok());
  EXPECT_NEAR(rows.value(), 500.0, 75.0);
}

TEST_F(EstimatorsTest, HistogramAviUnderestimatesCorrelation) {
  HistogramEstimator est(statistics_.get());
  // x = 3 AND y = 3: truth ~10% (perfect correlation); AVI says ~1%.
  auto pred = And({Eq(Col("x"), LitInt(3)), Eq(Col("y"), LitInt(3))});
  Result<double> rows = est.EstimateRows(SingleTable(pred));
  ASSERT_TRUE(rows.ok());
  EXPECT_LT(rows.value(), 120.0);  // ~50 expected: an order of magnitude low
}

TEST_F(EstimatorsTest, RobustEstimatorSeesThroughCorrelation) {
  RobustSampleEstimator est(statistics_.get(), RobustEstimatorConfig{});
  auto pred = And({Eq(Col("x"), LitInt(3)), Eq(Col("y"), LitInt(3))});
  Result<double> rows = est.EstimateRows(SingleTable(pred));
  ASSERT_TRUE(rows.ok());
  // Truth ~500 rows; at T = 80% the estimate must be in the right ballpark,
  // not the AVI ~50.
  EXPECT_GT(rows.value(), 350.0);
  EXPECT_LT(rows.value(), 750.0);
}

TEST_F(EstimatorsTest, RobustEstimateGrowsWithThreshold) {
  double prev = 0.0;
  for (double t : {0.05, 0.5, 0.95}) {
    RobustEstimatorConfig config;
    config.confidence_threshold = t;
    RobustSampleEstimator est(statistics_.get(), config);
    Result<double> rows =
        est.EstimateRows(SingleTable(Eq(Col("x"), LitInt(3))));
    ASSERT_TRUE(rows.ok());
    EXPECT_GT(rows.value(), prev);
    prev = rows.value();
  }
}

TEST_F(EstimatorsTest, NullPredicateReturnsRootRows) {
  HistogramEstimator hist(statistics_.get());
  RobustSampleEstimator robust(statistics_.get(), RobustEstimatorConfig{});
  EXPECT_EQ(hist.EstimateRows(SingleTable(nullptr)).value(), 5000.0);
  EXPECT_EQ(robust.EstimateRows(SingleTable(nullptr)).value(), 5000.0);
}

TEST_F(EstimatorsTest, JoinRequestUsesRootRowCount) {
  // fact |x| dim with a 20%-selective dim predicate: ~1000 rows.
  CardinalityRequest req{{"fact", "dim"}, Eq(Col("dim_attr"), LitInt(2))};
  HistogramEstimator hist(statistics_.get());
  RobustSampleEstimator robust(statistics_.get(), RobustEstimatorConfig{});
  EXPECT_NEAR(hist.EstimateRows(req).value(), 1000.0, 150.0);
  EXPECT_NEAR(robust.EstimateRows(req).value(), 1000.0, 250.0);
}

TEST_F(EstimatorsTest, ObservationExposesSampleCounts) {
  RobustSampleEstimator est(statistics_.get(), RobustEstimatorConfig{});
  auto obs = est.Observe(SingleTable(Eq(Col("x"), LitInt(3))));
  ASSERT_TRUE(obs.ok());
  EXPECT_EQ(obs.value().sample_size, 500u);
  EXPECT_EQ(obs.value().root_rows, 5000u);
  EXPECT_NEAR(static_cast<double>(obs.value().satisfying), 50.0, 25.0);
}

TEST_F(EstimatorsTest, PosteriorMatchesObservation) {
  RobustSampleEstimator est(statistics_.get(), RobustEstimatorConfig{});
  auto req = SingleTable(Eq(Col("x"), LitInt(3)));
  auto obs = est.Observe(req);
  auto posterior = est.EstimatePosterior(req);
  ASSERT_TRUE(obs.ok());
  ASSERT_TRUE(posterior.ok());
  EXPECT_EQ(posterior.value().k(), obs.value().satisfying);
  EXPECT_EQ(posterior.value().n(), obs.value().sample_size);
}

TEST_F(EstimatorsTest, FallbackToPerTableSamples) {
  // Drop the fact synopsis: the robust estimator should fall back to the
  // per-table sample (which for a single-table request is equivalent data).
  statistics_->DropSynopsis("fact");
  RobustSampleEstimator est(statistics_.get(), RobustEstimatorConfig{});
  EXPECT_FALSE(est.Observe(SingleTable(Eq(Col("x"), LitInt(3)))).ok());
  Result<double> rows =
      est.EstimateRows(SingleTable(Eq(Col("x"), LitInt(3))));
  ASSERT_TRUE(rows.ok());
  // The per-table sample survives the drop, so the estimate is still a
  // real sample-based cardinality for the ~10% predicate.
  EXPECT_GT(rows.value(), 200.0);
  EXPECT_LT(rows.value(), 1000.0);
}

TEST_F(EstimatorsTest, DefaultWideFallbackRespondsToThreshold) {
  // No samples and no histograms: the estimator bottoms out at the
  // default-wide posterior, whose quantile still responds to T.
  statistics_->ClearSamples();
  statistics_->ClearHistograms();
  RobustEstimatorConfig lo_cfg;
  lo_cfg.confidence_threshold = 0.05;
  RobustEstimatorConfig hi_cfg;
  hi_cfg.confidence_threshold = 0.95;
  RobustSampleEstimator lo(statistics_.get(), lo_cfg);
  RobustSampleEstimator hi(statistics_.get(), hi_cfg);
  auto pred = Eq(Col("x"), LitInt(3));
  EXPECT_LT(lo.EstimateRows(SingleTable(pred)).value(),
            hi.EstimateRows(SingleTable(pred)).value());
}

TEST_F(EstimatorsTest, SamplingModesAgreeForSmallSamplingFractions) {
  // The Bayesian model assumes with-replacement draws; for samples far
  // smaller than the table the two modes must produce estimates within
  // sampling noise of each other.
  StatisticsConfig with;
  with.sample_size = 400;
  with.sampling_mode = SamplingMode::kWithReplacement;
  with.seed = 21;
  StatisticsConfig without = with;
  without.sampling_mode = SamplingMode::kWithoutReplacement;

  auto pred = Eq(Col("x"), LitInt(3));
  statistics_->BuildAllSamples(with);
  RobustSampleEstimator est_with(statistics_.get(),
                                 RobustEstimatorConfig{});
  const double rows_with =
      est_with.EstimateRows(SingleTable(pred)).value();
  statistics_->BuildAllSamples(without);
  RobustSampleEstimator est_without(statistics_.get(),
                                    RobustEstimatorConfig{});
  const double rows_without =
      est_without.EstimateRows(SingleTable(pred)).value();
  // Truth ~500; both estimates in the same ballpark (3-sigma of a
  // 400-tuple binomial at p=0.1 is ~±90 rows scaled to 5000).
  EXPECT_NEAR(rows_with, rows_without, 300.0);
}

TEST_F(EstimatorsTest, SelectivityHelper) {
  HistogramEstimator est(statistics_.get());
  Result<double> sel = est.EstimateSelectivity(
      SingleTable(Eq(Col("x"), LitInt(3))), 5000.0);
  ASSERT_TRUE(sel.ok());
  EXPECT_NEAR(sel.value(), 0.1, 0.015);
}

TEST_F(EstimatorsTest, EstimatorNames) {
  HistogramEstimator hist(statistics_.get());
  EXPECT_EQ(hist.name(), "histogram-avi");
  RobustEstimatorConfig config;
  config.confidence_threshold = 0.8;
  RobustSampleEstimator robust(statistics_.get(), config);
  EXPECT_EQ(robust.name(), "robust-sample@T=80%");
}

TEST_F(EstimatorsTest, DisconnectedTablesRejected) {
  RobustSampleEstimator est(statistics_.get(), RobustEstimatorConfig{});
  CardinalityRequest req{{"dim"}, nullptr};
  EXPECT_TRUE(est.EstimateRows(req).ok());  // single table fine
  // dim alone is fine; {dim, fact} is fine; an unknown table is not.
  CardinalityRequest bad{{"nope"}, nullptr};
  EXPECT_FALSE(est.EstimateRows(bad).ok());
}

TEST_F(EstimatorsTest, SummaryBytesAccounting) {
  EXPECT_GT(statistics_->ApproximateSummaryBytes(), 0u);
  statistics_->ClearHistograms();
  statistics_->ClearSamples();
  EXPECT_EQ(statistics_->ApproximateSummaryBytes(), 0u);
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
