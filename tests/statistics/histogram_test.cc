#include "statistics/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace robustqo {
namespace stats {
namespace {

using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

Table UniformTable(int n, int64_t lo, int64_t hi, uint64_t seed) {
  Table t("t", Schema({{"x", DataType::kInt64}}));
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    t.AppendRow({Value::Int64(rng.NextInRange(lo, hi))});
  }
  return t;
}

TEST(HistogramTest, BucketInvariants) {
  Table t = UniformTable(10000, 0, 999, 1);
  EquiDepthHistogram hist(t, "x", 250);
  EXPECT_LE(hist.num_buckets(), 260u);  // ~250, duplicates may stretch a bit
  uint64_t total = 0;
  double prev_hi = -1e300;
  for (const auto& b : hist.buckets()) {
    EXPECT_LE(b.lo, b.hi);
    EXPECT_GT(b.lo, prev_hi);  // buckets are disjoint and ordered
    EXPECT_GE(b.row_count, 1u);
    EXPECT_GE(b.distinct_count, 1u);
    EXPECT_LE(b.distinct_count, b.row_count);
    prev_hi = b.hi;
    total += b.row_count;
  }
  EXPECT_EQ(total, 10000u);
}

TEST(HistogramTest, FullRangeSelectivityIsOne) {
  Table t = UniformTable(5000, -100, 100, 2);
  EquiDepthHistogram hist(t, "x");
  EXPECT_NEAR(hist.EstimateRangeSelectivity(std::nullopt, std::nullopt), 1.0,
              1e-12);
  EXPECT_NEAR(hist.EstimateRangeSelectivity(-100, 100), 1.0, 1e-12);
}

TEST(HistogramTest, EmptyRangeSelectivityIsZero) {
  Table t = UniformTable(1000, 0, 99, 3);
  EquiDepthHistogram hist(t, "x");
  EXPECT_EQ(hist.EstimateRangeSelectivity(200, 300), 0.0);
  EXPECT_EQ(hist.EstimateRangeSelectivity(50, 40), 0.0);
}

TEST(HistogramTest, RangeAccuracyOnUniformData) {
  Table t = UniformTable(100000, 0, 9999, 4);
  EquiDepthHistogram hist(t, "x", 250);
  // [2500, 4999] covers ~25% of a uniform domain.
  EXPECT_NEAR(hist.EstimateRangeSelectivity(2500, 4999), 0.25, 0.01);
  EXPECT_NEAR(hist.EstimateRangeSelectivity(std::nullopt, 999), 0.10, 0.01);
}

TEST(HistogramTest, RangeEstimateMonotoneInWidth) {
  Table t = UniformTable(20000, 0, 999, 5);
  EquiDepthHistogram hist(t, "x");
  double prev = 0.0;
  for (int hi = 0; hi <= 999; hi += 37) {
    const double sel = hist.EstimateRangeSelectivity(0, hi);
    EXPECT_GE(sel, prev - 1e-12);
    prev = sel;
  }
}

TEST(HistogramTest, EqualityOnSkewedData) {
  // 900 copies of 1, 100 distinct values 1000..1099.
  Table t("t", Schema({{"x", DataType::kInt64}}));
  for (int i = 0; i < 900; ++i) t.AppendRow({Value::Int64(1)});
  for (int i = 0; i < 100; ++i) t.AppendRow({Value::Int64(1000 + i)});
  EquiDepthHistogram hist(t, "x", 50);
  // The heavy value sits alone in its bucket(s): frequency ~90%.
  EXPECT_NEAR(hist.EstimateEqualSelectivity(1), 0.9, 0.02);
  EXPECT_EQ(hist.EstimateEqualSelectivity(5000), 0.0);
}

TEST(HistogramTest, DuplicatesNeverStraddleBuckets) {
  Table t("t", Schema({{"x", DataType::kInt64}}));
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    t.AppendRow({Value::Int64(rng.NextInRange(0, 49))});  // heavy duplication
  }
  EquiDepthHistogram hist(t, "x", 250);
  // With only 50 distinct values, each bucket holds >= 1 full value run.
  EXPECT_LE(hist.num_buckets(), 50u);
  EXPECT_EQ(hist.TotalDistinct(), 50u);
}

TEST(HistogramTest, SingleValueColumn) {
  Table t("t", Schema({{"x", DataType::kInt64}}));
  for (int i = 0; i < 100; ++i) t.AppendRow({Value::Int64(42)});
  EquiDepthHistogram hist(t, "x");
  EXPECT_EQ(hist.num_buckets(), 1u);
  EXPECT_NEAR(hist.EstimateEqualSelectivity(42), 1.0, 1e-12);
  EXPECT_NEAR(hist.EstimateRangeSelectivity(42, 42), 1.0, 1e-12);
  EXPECT_EQ(hist.EstimateRangeSelectivity(43, 50), 0.0);
}

TEST(HistogramTest, EmptyTable) {
  Table t("t", Schema({{"x", DataType::kInt64}}));
  EquiDepthHistogram hist(t, "x");
  EXPECT_EQ(hist.num_buckets(), 0u);
  EXPECT_EQ(hist.EstimateRangeSelectivity(0, 10), 0.0);
  EXPECT_EQ(hist.EstimateEqualSelectivity(0), 0.0);
}

TEST(HistogramTest, DoubleColumn) {
  Table t("t", Schema({{"x", DataType::kDouble}}));
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    t.AppendRow({Value::Double(rng.NextDouble())});
  }
  EquiDepthHistogram hist(t, "x");
  EXPECT_NEAR(hist.EstimateRangeSelectivity(0.25, 0.75), 0.5, 0.02);
}

TEST(HistogramTest, FewBucketsStillSane) {
  Table t = UniformTable(10000, 0, 999, 8);
  EquiDepthHistogram hist(t, "x", 4);
  EXPECT_LE(hist.num_buckets(), 5u);
  EXPECT_NEAR(hist.EstimateRangeSelectivity(0, 499), 0.5, 0.05);
}

TEST(HistogramTest, PartialBucketInterpolation) {
  // One bucket [0, 99] with 1000 uniform rows; a half-window should
  // interpolate to ~50%.
  Table t = UniformTable(1000, 0, 99, 9);
  EquiDepthHistogram hist(t, "x", 1);
  EXPECT_EQ(hist.num_buckets(), 1u);
  EXPECT_NEAR(hist.EstimateRangeSelectivity(0, 49), 0.5, 0.03);
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
