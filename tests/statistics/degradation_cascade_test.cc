// The robust estimator's graceful degradation cascade: join synopsis ->
// per-table sample -> histogram/AVI -> default-wide posterior. Each tier
// loss is exercised both by *removing* the statistic and by *injecting* a
// read fault, and every fallback must be observable through the
// estimator.degraded.* counters and "degraded" trace events.

#include <gtest/gtest.h>

#include <memory>

#include "core/database.h"
#include "expr/expression.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "statistics/histogram_estimator.h"
#include "statistics/robust_sample_estimator.h"
#include "statistics/statistics_catalog.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

namespace robustqo {
namespace stats {
namespace {

using expr::And;
using expr::Col;
using expr::Eq;
using expr::LitInt;
using storage::Catalog;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

// fact(4000 rows) -> dim(50 rows); fact.x uniform 0..9.
class DegradationCascadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dim = std::make_unique<Table>(
        "dim", Schema({{"dim_id", DataType::kInt64},
                       {"dim_attr", DataType::kInt64}}));
    for (int64_t i = 0; i < 50; ++i) {
      dim->AppendRow({Value::Int64(i), Value::Int64(i % 5)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(dim)).ok());
    auto fact = std::make_unique<Table>(
        "fact", Schema({{"fact_id", DataType::kInt64},
                        {"x", DataType::kInt64},
                        {"fk", DataType::kInt64}}));
    Rng rng(17);
    for (int64_t i = 0; i < 4000; ++i) {
      fact->AppendRow({Value::Int64(i), Value::Int64(rng.NextInRange(0, 9)),
                       Value::Int64(rng.NextInRange(0, 49))});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(fact)).ok());
    ASSERT_TRUE(catalog_.SetPrimaryKey("dim", "dim_id").ok());
    ASSERT_TRUE(catalog_.AddForeignKey({"fact", "fk", "dim", "dim_id"}).ok());

    statistics_ = std::make_unique<StatisticsCatalog>(&catalog_);
    statistics_->BuildAllHistograms(100);
    StatisticsConfig config;
    config.sample_size = 400;
    config.seed = 3;
    statistics_->BuildAllSamples(config);
    statistics_->SetFaultInjector(&injector_);
  }

  CardinalityRequest Request() { return {{"fact"}, Eq(Col("x"), LitInt(3))}; }

  uint64_t Counter(const char* name) {
    return metrics_.GetCounter(name)->value();
  }

  RobustSampleEstimator MakeEstimator() {
    RobustSampleEstimator est(statistics_.get(), RobustEstimatorConfig{});
    est.set_metrics(&metrics_);
    est.set_tracer(&tracer_);
    return est;
  }

  Catalog catalog_;
  std::unique_ptr<StatisticsCatalog> statistics_;
  fault::FaultInjector injector_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
};

#if ROBUSTQO_OBS_ENABLED

TEST_F(DegradationCascadeTest, FullStatisticsStayOnTierOne) {
  RobustSampleEstimator est = MakeEstimator();
  ASSERT_TRUE(est.EstimateRows(Request()).ok());
  EXPECT_EQ(Counter("estimator.degraded.synopsis_miss"), 0u);
  EXPECT_EQ(Counter("estimator.degraded.sample_miss"), 0u);
  EXPECT_EQ(Counter("estimator.degraded.to_histogram"), 0u);
  EXPECT_EQ(Counter("estimator.degraded.to_default"), 0u);
}

TEST_F(DegradationCascadeTest, MissingSynopsisFallsToSample) {
  statistics_->DropSynopsis("fact");
  RobustSampleEstimator est = MakeEstimator();
  Result<double> rows = est.EstimateRows(Request());
  ASSERT_TRUE(rows.ok());
  // Sample-based estimate of a ~10% predicate stays in the ballpark.
  EXPECT_GT(rows.value(), 200.0);
  EXPECT_LT(rows.value(), 800.0);
  EXPECT_EQ(Counter("estimator.degraded.synopsis_miss"), 1u);
  EXPECT_EQ(Counter("estimator.degraded.to_histogram"), 0u);
  bool saw_event = false;
  for (const auto& e : tracer_.events()) {
    if (e.category != "estimator" || e.name != "degraded") continue;
    saw_event = true;
    for (const auto& [k, v] : e.attrs) {
      if (k == "tier_to") EXPECT_EQ(v, "table-sample");
      if (k == "reason") EXPECT_EQ(v, "missing");
    }
  }
  EXPECT_TRUE(saw_event);
}

TEST_F(DegradationCascadeTest, InjectedSynopsisFaultFallsToSample) {
  // The synopsis exists but its storage is down hard: after the retry
  // budget is exhausted the estimator degrades with reason "unavailable"
  // and the estimate matches the dropped-synopsis baseline exactly.
  injector_.Arm(fault::sites::kSynopsisRead, fault::FaultSpec::Always());
  RobustSampleEstimator est = MakeEstimator();
  Result<double> rows = est.EstimateRows(Request());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(Counter("estimator.degraded.synopsis_unavailable"), 1u);

  injector_.DisarmAll();
  statistics_->DropSynopsis("fact");
  RobustSampleEstimator baseline = MakeEstimator();
  EXPECT_DOUBLE_EQ(rows.value(), baseline.EstimateRows(Request()).value());
}

TEST_F(DegradationCascadeTest, TransientSynopsisFaultHealsViaRetry) {
  // Two failures then recovery: the default 3-attempt retry rides it out
  // and the estimator never degrades.
  injector_.Arm(fault::sites::kSynopsisRead, fault::FaultSpec::FirstN(2));
  RobustSampleEstimator est = MakeEstimator();
  ASSERT_TRUE(est.EstimateRows(Request()).ok());
  EXPECT_EQ(Counter("estimator.degraded.synopsis_unavailable"), 0u);
  EXPECT_EQ(Counter("estimator.degraded.synopsis_miss"), 0u);
  EXPECT_EQ(Counter("fault.retry.attempts"), 2u);
}

TEST_F(DegradationCascadeTest, MissingSampleFallsToHistogram) {
  statistics_->DropSynopsis("fact");
  statistics_->ClearSamples();
  RobustSampleEstimator est = MakeEstimator();
  Result<double> rows = est.EstimateRows(Request());
  ASSERT_TRUE(rows.ok());
  // Must agree with the histogram baseline over the same statistics.
  HistogramEstimator hist(statistics_.get());
  EXPECT_DOUBLE_EQ(rows.value(), hist.EstimateRows(Request()).value());
  EXPECT_GE(Counter("estimator.degraded.sample_miss"), 1u);
  EXPECT_EQ(Counter("estimator.degraded.to_histogram"), 1u);
  EXPECT_EQ(Counter("estimator.degraded.to_default"), 0u);
}

TEST_F(DegradationCascadeTest, InjectedSampleFaultFallsToHistogram) {
  statistics_->DropSynopsis("fact");
  injector_.Arm(fault::sites::kSampleRead, fault::FaultSpec::Always());
  RobustSampleEstimator est = MakeEstimator();
  ASSERT_TRUE(est.EstimateRows(Request()).ok());
  EXPECT_GE(Counter("estimator.degraded.sample_unavailable"), 1u);
  EXPECT_EQ(Counter("estimator.degraded.to_histogram"), 1u);
}

TEST_F(DegradationCascadeTest, NothingLeftFallsToDefaultWide) {
  statistics_->DropSynopsis("fact");
  statistics_->ClearSamples();
  statistics_->ClearHistograms();
  RobustSampleEstimator est = MakeEstimator();
  Result<double> rows = est.EstimateRows(Request());
  ASSERT_TRUE(rows.ok());
  EXPECT_GE(rows.value(), 0.0);
  EXPECT_LE(rows.value(), 4000.0);
  EXPECT_EQ(rows.value(), est.DefaultWideSelectivity() * 4000.0);
  EXPECT_EQ(Counter("estimator.degraded.to_default"), 1u);
}

TEST_F(DegradationCascadeTest, DefaultWideIsMonotonicInThreshold) {
  statistics_->DropSynopsis("fact");
  statistics_->ClearSamples();
  statistics_->ClearHistograms();
  double prev = 0.0;
  for (double t : {0.05, 0.5, 0.95}) {
    RobustEstimatorConfig config;
    config.confidence_threshold = t;
    RobustSampleEstimator est(statistics_.get(), config);
    const double rows = est.EstimateRows(Request()).value();
    EXPECT_GT(rows, prev) << "T=" << t;
    prev = rows;
  }
}

#endif  // ROBUSTQO_OBS_ENABLED

TEST(DegradationPlanChoiceTest, MissingAndFaultedSynopsisAgreeOnPlan) {
  // The integration claim from the issue: when the join synopsis is gone,
  // the optimizer's plan choice must match the per-table-sample baseline —
  // and an *unreadable* synopsis (fault armed) must behave exactly like a
  // *missing* one.
  core::Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.005;
  ASSERT_TRUE(tpch::LoadTpch(db.catalog(), config).ok());
  db.UpdateStatistics();
  workload::ThreeTableJoinScenario scenario;
  const opt::QuerySpec query = scenario.MakeQuery(12.0);

  // Baseline: drop every join synopsis so tier 2 is the best available.
  for (const auto& table : db.catalog()->TableNames()) {
    db.statistics()->DropSynopsis(table);
  }
  auto dropped = db.Plan(query, core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();

  // Fresh statistics, synopsis present but unreadable.
  db.UpdateStatistics();
  db.fault_injector()->Arm(fault::sites::kSynopsisRead,
                           fault::FaultSpec::Always());
  auto faulted = db.Plan(query, core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(dropped.value().label, faulted.value().label);

  // And the faulted plan still executes to a correct answer.
  db.fault_injector()->DisarmAll();
  auto reference = db.Execute(query, core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(reference.ok());
  db.fault_injector()->Arm(fault::sites::kSynopsisRead,
                           fault::FaultSpec::Always());
  auto run = db.ExecutePlan(faulted.value());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().rows.ValueAt(0, 0).ToString(),
            reference.value().rows.ValueAt(0, 0).ToString());
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
