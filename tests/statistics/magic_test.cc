#include "statistics/magic.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace stats {
namespace {

TEST(MagicTest, ConstantsInSaneRanges) {
  EXPECT_GT(kMagicEqualitySelectivity, 0.0);
  EXPECT_LT(kMagicEqualitySelectivity, 1.0);
  EXPECT_NEAR(kMagicRangeSelectivity, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(kMagicUnknownSelectivity, 1.0 / 3.0, 1e-12);
}

TEST(MagicTest, DistributionMeanMatchesRangeMagicNumber) {
  EXPECT_NEAR(MagicDistribution().Mean(), 1.0 / 3.0, 1e-12);
}

TEST(MagicTest, QuantileRespondsToThreshold) {
  // The point of the "magic distribution" (Section 3.5): the effective
  // magic number grows with the confidence threshold.
  const double aggressive = MagicSelectivityAtConfidence(0.05);
  const double moderate = MagicSelectivityAtConfidence(0.50);
  const double conservative = MagicSelectivityAtConfidence(0.95);
  EXPECT_LT(aggressive, moderate);
  EXPECT_LT(moderate, conservative);
  EXPECT_GT(aggressive, 0.0);
  EXPECT_LT(conservative, 1.0);
}

TEST(MagicTest, MedianBelowMean) {
  // Beta(1/2, 1) is right-skewed: median < mean.
  EXPECT_LT(MagicSelectivityAtConfidence(0.5), MagicDistribution().Mean());
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
