// Paper Section 3.2's worked example, reproduced literally: for the query
// A |x| B |x| C with A -> B -> C foreign keys, the optimizer needs
// cardinalities for seven logical expressions; the sample (synopsis) for A
// answers A, A|x|B, A|x|C and A|x|B|x|C; B's answers B and B|x|C; C's
// answers C — every estimate direct from one sample, no error build-up.

#include <gtest/gtest.h>

#include <memory>

#include "expr/expression.h"
#include "storage/date.h"
#include "statistics/robust_sample_estimator.h"
#include "statistics/statistics_catalog.h"
#include "tpch/tpch_gen.h"

namespace robustqo {
namespace stats {
namespace {

// A = lineitem, B = orders, C = customer (lineitem -> orders -> customer).
class Section32Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new storage::Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(catalog_, config).ok());
    statistics_ = new StatisticsCatalog(catalog_);
    StatisticsConfig stats_config;
    stats_config.sample_size = 300;
    statistics_->BuildAllSamples(stats_config);
  }
  static void TearDownTestSuite() {
    delete statistics_;
    delete catalog_;
    statistics_ = nullptr;
    catalog_ = nullptr;
  }

  static storage::Catalog* catalog_;
  static StatisticsCatalog* statistics_;
};

storage::Catalog* Section32Test::catalog_ = nullptr;
StatisticsCatalog* Section32Test::statistics_ = nullptr;

TEST_F(Section32Test, EachSubexpressionResolvesToTheRightSynopsis) {
  struct Case {
    std::set<std::string> tables;
    const char* expected_root;
  };
  const Case cases[] = {
      {{"lineitem"}, "lineitem"},
      {{"orders"}, "orders"},
      {{"customer"}, "customer"},
      {{"lineitem", "orders"}, "lineitem"},
      {{"lineitem", "customer"}, "lineitem"},  // A|x|C via transitive FKs
      {{"orders", "customer"}, "orders"},
      {{"lineitem", "orders", "customer"}, "lineitem"},
  };
  for (const Case& c : cases) {
    const JoinSynopsis* synopsis = statistics_->FindCoveringSynopsis(c.tables);
    ASSERT_NE(synopsis, nullptr);
    EXPECT_EQ(synopsis->root_table(), c.expected_root);
  }
}

TEST_F(Section32Test, AllSevenEstimatesComeFromSamplesDirectly) {
  RobustSampleEstimator estimator(statistics_, RobustEstimatorConfig{});
  // Selection predicates on each relation.
  auto pred_a = expr::Lt(expr::Col("l_quantity"), expr::LitInt(10));
  auto pred_b = expr::Gt(expr::Col("o_totalprice"), expr::LitDouble(1e5));
  auto pred_c = expr::Gt(expr::Col("c_acctbal"), expr::LitDouble(0.0));
  const std::set<std::string> a{"lineitem"};
  const std::set<std::string> ab{"lineitem", "orders"};
  const std::set<std::string> abc{"lineitem", "orders", "customer"};
  const std::set<std::string> bc{"orders", "customer"};
  for (const auto& request : std::vector<CardinalityRequest>{
           {a, pred_a},
           {{"orders"}, pred_b},
           {{"customer"}, pred_c},
           {ab, expr::And({pred_a, pred_b})},
           {{"lineitem", "customer"}, expr::And({pred_a, pred_c})},
           {bc, expr::And({pred_b, pred_c})},
           {abc, expr::And({pred_a, pred_b, pred_c})},
       }) {
    // Every request is answered by the primary (synopsis) path — the
    // Observe() call succeeds, meaning no AVI fallback was needed.
    EXPECT_TRUE(estimator.Observe(request).ok());
    Result<double> rows = estimator.EstimateRows(request);
    ASSERT_TRUE(rows.ok());
    EXPECT_GE(rows.value(), 0.0);
  }
}

TEST_F(Section32Test, NoErrorBuildUpComparedToAviChaining) {
  // A strongly correlated pair across the A |x| B join: a lineitem ships
  // 1-121 days after its order's date, so a window on o_orderdate and a
  // window on l_shipdate overlap far more often than independence would
  // predict. The joint estimate from the A-synopsis must track the truth;
  // multiplying the marginals (AVI chaining) is biased an order of
  // magnitude low.
  const int64_t start = storage::DateToDays(1995, 3, 1);
  auto pred_orders = expr::Between(expr::Col("o_orderdate"),
                                   storage::Value::Date(start),
                                   storage::Value::Date(start + 59));
  auto pred_ship = expr::Between(expr::Col("l_shipdate"),
                                 storage::Value::Date(start),
                                 storage::Value::Date(start + 89));
  auto pred = expr::And({pred_ship, pred_orders});
  CardinalityRequest joint{{"lineitem", "orders"}, pred};

  RobustSampleEstimator estimator(statistics_, RobustEstimatorConfig{});
  auto direct = estimator.Observe(joint);
  ASSERT_TRUE(direct.ok());

  // Ground truth by counting over the actual join.
  const storage::Table* lineitem = catalog_->GetTable("lineitem");
  const storage::Table* orders = catalog_->GetTable("orders");
  std::unordered_map<int64_t, int64_t> order_date;
  for (storage::Rid r = 0; r < orders->num_rows(); ++r) {
    order_date[orders->column("o_orderkey").Int64At(r)] =
        orders->column("o_orderdate").Int64At(r);
  }
  uint64_t truth = 0;
  uint64_t marginal_a = 0;
  uint64_t marginal_b_rows = 0;
  for (storage::Rid r = 0; r < lineitem->num_rows(); ++r) {
    const int64_t ship = lineitem->column("l_shipdate").Int64At(r);
    const int64_t odate =
        order_date[lineitem->column("l_orderkey").Int64At(r)];
    const bool a_hit = ship >= start && ship <= start + 89;
    const bool b_hit = odate >= start && odate <= start + 59;
    if (a_hit) ++marginal_a;
    if (b_hit) ++marginal_b_rows;
    if (a_hit && b_hit) ++truth;
  }
  const double n = static_cast<double>(lineitem->num_rows());
  const double truth_sel = static_cast<double>(truth) / n;
  const double avi_sel = (static_cast<double>(marginal_a) / n) *
                         (static_cast<double>(marginal_b_rows) / n);
  // The correlation must be real for this test to mean anything.
  ASSERT_GT(truth_sel, 2.0 * avi_sel);

  const double direct_sel =
      static_cast<double>(direct.value().satisfying) /
      static_cast<double>(direct.value().sample_size);
  // Direct estimate lands within a factor ~2 of truth; AVI is biased low
  // by the correlation factor.
  EXPECT_GT(direct_sel, truth_sel * 0.5);
  EXPECT_LT(direct_sel, truth_sel * 2.0);
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
