#include "statistics/workload_prior.h"

#include <gtest/gtest.h>

#include "stats_math/beta_distribution.h"
#include "util/rng.h"

namespace robustqo {
namespace stats {
namespace {

TEST(WorkloadPriorTest, RequiresEnoughObservations) {
  WorkloadPriorBuilder builder;
  for (int i = 0; i < 5; ++i) builder.Observe(0.1);
  EXPECT_FALSE(builder.Fit(10).ok());
  EXPECT_EQ(builder.count(), 5u);
}

TEST(WorkloadPriorTest, DegenerateConstantObservations) {
  WorkloadPriorBuilder builder;
  for (int i = 0; i < 50; ++i) builder.Observe(0.2);
  EXPECT_FALSE(builder.Fit().ok());  // zero variance
}

TEST(WorkloadPriorTest, ObservationsClamped) {
  WorkloadPriorBuilder builder;
  builder.Observe(-0.5);
  builder.Observe(1.5);
  EXPECT_EQ(builder.observations()[0], 0.0);
  EXPECT_EQ(builder.observations()[1], 1.0);
}

TEST(WorkloadPriorTest, RecoversKnownBetaParameters) {
  // Draw selectivities from Beta(2, 30) and check the fit is close.
  math::BetaDistribution truth(2.0, 30.0);
  Rng rng(17);
  WorkloadPriorBuilder builder;
  for (int i = 0; i < 20000; ++i) builder.Observe(truth.Sample(&rng));
  auto fit = builder.Fit();
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().alpha, 2.0, 0.3);
  EXPECT_NEAR(fit.value().beta, 30.0, 4.0);
}

TEST(WorkloadPriorTest, InformativePriorTightensPosterior) {
  // A workload with tiny selectivities (Beta(1, 99), mean 1%). After a
  // weak observation (k=1 of n=50), the fitted prior keeps the posterior
  // much closer to the workload's range than Jeffreys does.
  math::BetaDistribution truth(1.0, 99.0);
  Rng rng(23);
  WorkloadPriorBuilder builder;
  for (int i = 0; i < 5000; ++i) builder.Observe(truth.Sample(&rng));
  auto fit = builder.Fit();
  ASSERT_TRUE(fit.ok());

  SelectivityPosterior informed(1, 50, fit.value());
  SelectivityPosterior jeffreys(1, 50, PriorKind::kJeffreys);
  // Both see the same data, but the informed posterior's conservative
  // (95%) estimate is far smaller: it knows selectivities here are tiny.
  EXPECT_LT(informed.EstimateAtConfidence(0.95),
            jeffreys.EstimateAtConfidence(0.95) * 0.8);
  // And it remains a calibrated distribution (cdf inverse round trip).
  EXPECT_NEAR(informed.Cdf(informed.EstimateAtConfidence(0.5)), 0.5, 1e-9);
}

TEST(WorkloadPriorTest, ClearResets) {
  WorkloadPriorBuilder builder;
  for (int i = 0; i < 100; ++i) builder.Observe(0.1 + 0.001 * i);
  ASSERT_TRUE(builder.Fit().ok());
  builder.Clear();
  EXPECT_EQ(builder.count(), 0u);
  EXPECT_FALSE(builder.Fit().ok());
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
