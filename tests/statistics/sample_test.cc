#include "statistics/sample.h"

#include <gtest/gtest.h>

#include <set>

namespace robustqo {
namespace stats {
namespace {

using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

Table SequentialTable(int n) {
  Table t("base", Schema({{"id", DataType::kInt64}}));
  for (int i = 0; i < n; ++i) t.AppendRow({Value::Int64(i)});
  return t;
}

TEST(TableSampleTest, SizeAndMetadata) {
  Table t = SequentialTable(1000);
  Rng rng(1);
  TableSample sample(t, 200, SamplingMode::kWithReplacement, &rng);
  EXPECT_EQ(sample.size(), 200u);
  EXPECT_EQ(sample.source_table(), "base");
  EXPECT_EQ(sample.source_row_count(), 1000u);
  EXPECT_EQ(sample.rows().schema().num_columns(), 1u);
  EXPECT_EQ(sample.source_rids().size(), 200u);
}

TEST(TableSampleTest, SampledValuesComeFromSource) {
  Table t = SequentialTable(100);
  Rng rng(2);
  TableSample sample(t, 500, SamplingMode::kWithReplacement, &rng);
  for (storage::Rid r = 0; r < sample.size(); ++r) {
    const int64_t v = sample.rows().ValueAt(r, 0).AsInt64();
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
    EXPECT_EQ(static_cast<int64_t>(sample.source_rids()[r]), v);
  }
}

TEST(TableSampleTest, WithoutReplacementDistinct) {
  Table t = SequentialTable(500);
  Rng rng(3);
  TableSample sample(t, 200, SamplingMode::kWithoutReplacement, &rng);
  std::set<storage::Rid> rids(sample.source_rids().begin(),
                              sample.source_rids().end());
  EXPECT_EQ(rids.size(), 200u);
}

TEST(TableSampleTest, WithoutReplacementCappedAtTableSize) {
  Table t = SequentialTable(50);
  Rng rng(4);
  TableSample sample(t, 500, SamplingMode::kWithoutReplacement, &rng);
  EXPECT_EQ(sample.size(), 50u);
}

TEST(TableSampleTest, WithReplacementCanExceedTableSize) {
  Table t = SequentialTable(50);
  Rng rng(5);
  TableSample sample(t, 500, SamplingMode::kWithReplacement, &rng);
  EXPECT_EQ(sample.size(), 500u);
}

TEST(TableSampleTest, EmptySource) {
  Table t = SequentialTable(0);
  Rng rng(6);
  TableSample sample(t, 100, SamplingMode::kWithReplacement, &rng);
  EXPECT_EQ(sample.size(), 0u);
}

TEST(TableSampleTest, UniformityAcrossSource) {
  Table t = SequentialTable(10);
  Rng rng(7);
  TableSample sample(t, 100000, SamplingMode::kWithReplacement, &rng);
  std::vector<int> counts(10, 0);
  for (storage::Rid r : sample.source_rids()) ++counts[r];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(TableSampleTest, DifferentSeedsDifferentSamples) {
  Table t = SequentialTable(10000);
  Rng rng_a(8);
  Rng rng_b(9);
  TableSample a(t, 100, SamplingMode::kWithReplacement, &rng_a);
  TableSample b(t, 100, SamplingMode::kWithReplacement, &rng_b);
  EXPECT_NE(a.source_rids(), b.source_rids());
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
