#include "statistics/selectivity_posterior.h"

#include <gtest/gtest.h>

#include <tuple>

#include "stats_math/binomial_distribution.h"
#include "util/rng.h"

namespace robustqo {
namespace stats {
namespace {

TEST(PriorTest, NamedPriors) {
  BetaPrior jeffreys = BetaPrior::For(PriorKind::kJeffreys);
  EXPECT_EQ(jeffreys.alpha, 0.5);
  EXPECT_EQ(jeffreys.beta, 0.5);
  BetaPrior uniform = BetaPrior::For(PriorKind::kUniform);
  EXPECT_EQ(uniform.alpha, 1.0);
  EXPECT_EQ(uniform.beta, 1.0);
}

TEST(SelectivityPosteriorTest, PosteriorShapeParameters) {
  SelectivityPosterior p(10, 100, PriorKind::kJeffreys);
  EXPECT_EQ(p.distribution().alpha(), 10.5);
  EXPECT_EQ(p.distribution().beta(), 90.5);
  SelectivityPosterior u(10, 100, PriorKind::kUniform);
  EXPECT_EQ(u.distribution().alpha(), 11.0);
  EXPECT_EQ(u.distribution().beta(), 91.0);
}

TEST(SelectivityPosteriorTest, NoEvidenceReproducesPrior) {
  SelectivityPosterior p(0, 0, PriorKind::kJeffreys);
  EXPECT_EQ(p.distribution().alpha(), 0.5);
  EXPECT_EQ(p.distribution().beta(), 0.5);
  // The Jeffreys prior is symmetric: median 0.5.
  EXPECT_NEAR(p.EstimateAtConfidence(0.5), 0.5, 1e-9);
}

TEST(SelectivityPosteriorTest, PaperSection34Example) {
  // 10 of 100 sample tuples satisfy the predicate; T = 20/50/80% yield
  // estimates of ~7.8% / ~10.1% / ~12.8% (paper Section 3.4).
  SelectivityPosterior p(10, 100);
  EXPECT_NEAR(p.EstimateAtConfidence(0.20), 0.078, 0.002);
  EXPECT_NEAR(p.EstimateAtConfidence(0.50), 0.101, 0.002);
  EXPECT_NEAR(p.EstimateAtConfidence(0.80), 0.128, 0.002);
}

TEST(SelectivityPosteriorTest, EstimateMonotoneInThreshold) {
  SelectivityPosterior p(5, 500);
  double prev = 0.0;
  for (double t : {0.05, 0.2, 0.5, 0.8, 0.95}) {
    const double est = p.EstimateAtConfidence(t);
    EXPECT_GT(est, prev);
    prev = est;
  }
}

TEST(SelectivityPosteriorTest, EstimateMonotoneInK) {
  double prev = -1.0;
  for (uint64_t k : {0, 1, 5, 20, 100, 400, 500}) {
    SelectivityPosterior p(k, 500);
    const double est = p.EstimateAtConfidence(0.8);
    EXPECT_GT(est, prev);
    prev = est;
  }
}

TEST(SelectivityPosteriorTest, LargerSampleTightens) {
  // Same observed fraction, bigger n: the 5%-95% interval shrinks
  // (paper Figure 4: "sample size matters").
  SelectivityPosterior small(10, 100);
  SelectivityPosterior large(50, 500);
  const double small_width =
      small.EstimateAtConfidence(0.95) - small.EstimateAtConfidence(0.05);
  const double large_width =
      large.EstimateAtConfidence(0.95) - large.EstimateAtConfidence(0.05);
  EXPECT_LT(large_width, small_width * 0.6);
}

TEST(SelectivityPosteriorTest, PriorBarelyMatters) {
  // Paper Figure 4: "prior doesn't [matter]" — uniform vs Jeffreys agree
  // closely already at n = 100.
  SelectivityPosterior jeffreys(10, 100, PriorKind::kJeffreys);
  SelectivityPosterior uniform(10, 100, PriorKind::kUniform);
  for (double t : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(jeffreys.EstimateAtConfidence(t),
                uniform.EstimateAtConfidence(t), 0.01);
  }
}

TEST(SelectivityPosteriorTest, MeanAndMle) {
  SelectivityPosterior p(10, 100, PriorKind::kJeffreys);
  EXPECT_NEAR(p.Mean(), 10.5 / 101.0, 1e-12);
  EXPECT_EQ(p.MaxLikelihoodEstimate(), 0.1);
  SelectivityPosterior empty(0, 0);
  EXPECT_EQ(empty.MaxLikelihoodEstimate(), 0.0);
}

TEST(SelectivityPosteriorTest, ZeroHitsStillLeaveUpperMass) {
  // Even k = 0 leaves real probability of non-trivial selectivity — the
  // basis of the "self-adjusting" behaviour with tiny samples
  // (Section 6.2.4): at n = 50, the median estimate stays above typical
  // crossover selectivities.
  SelectivityPosterior tiny(0, 50);
  EXPECT_GT(tiny.EstimateAtConfidence(0.50), 0.004);
  SelectivityPosterior big(0, 1000);
  EXPECT_LT(big.EstimateAtConfidence(0.50), 0.0005);
}

TEST(SelectivityPosteriorTest, CustomPrior) {
  SelectivityPosterior p(3, 10, BetaPrior{2.0, 8.0});
  EXPECT_EQ(p.distribution().alpha(), 5.0);
  EXPECT_EQ(p.distribution().beta(), 15.0);
}

TEST(SelectivityPosteriorTest, CdfQuantileRoundTrip) {
  SelectivityPosterior p(42, 500);
  for (double t : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(p.Cdf(p.EstimateAtConfidence(t)), t, 1e-9);
  }
}

// Bayesian calibration property: if the true selectivity is drawn from the
// prior and k ~ Binomial(n, p), then the credible interval
// [cdf^{-1}(lo), cdf^{-1}(hi)] contains p with probability hi - lo.
using CalibParam = std::tuple<uint64_t, double, double>;  // n, lo, hi
class PosteriorCalibration : public ::testing::TestWithParam<CalibParam> {};

TEST_P(PosteriorCalibration, CredibleIntervalCoverage) {
  const auto [n, lo, hi] = GetParam();
  Rng rng(1234 + n);
  math::BetaDistribution prior(1.0, 1.0);  // draw truths from uniform
  int covered = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const double p = prior.Sample(&rng);
    const int64_t k = math::BinomialDistribution(
                          static_cast<int64_t>(n), p)
                          .Sample(&rng);
    SelectivityPosterior posterior(static_cast<uint64_t>(k), n,
                                   PriorKind::kUniform);
    const double a = posterior.EstimateAtConfidence(lo);
    const double b = posterior.EstimateAtConfidence(hi);
    if (p >= a && p <= b) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_NEAR(coverage, hi - lo, 0.03)
      << "n=" << n << " interval=[" << lo << "," << hi << "]";
}

INSTANTIATE_TEST_SUITE_P(
    CoverageGrid, PosteriorCalibration,
    ::testing::Values(CalibParam{50, 0.05, 0.95}, CalibParam{200, 0.05, 0.95},
                      CalibParam{500, 0.10, 0.90}, CalibParam{500, 0.25, 0.75},
                      CalibParam{1000, 0.05, 0.95}));

}  // namespace
}  // namespace stats
}  // namespace robustqo
