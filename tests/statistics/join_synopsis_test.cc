#include "statistics/join_synopsis.h"

#include <gtest/gtest.h>

#include <memory>

#include "expr/expression.h"

namespace robustqo {
namespace stats {
namespace {

using storage::Catalog;
using storage::ColumnDef;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

// Builds A -> B -> C: A(fact, 1000 rows), B(100 rows), C(10 rows).
// b_group = b_id % 10 links B to C; a_val correlates with b_flag.
class JoinSynopsisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto c = std::make_unique<Table>(
        "c", Schema({{"c_id", DataType::kInt64},
                     {"c_label", DataType::kInt64}}));
    for (int64_t i = 0; i < 10; ++i) {
      c->AppendRow({Value::Int64(i), Value::Int64(i * 100)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(c)).ok());

    auto b = std::make_unique<Table>(
        "b", Schema({{"b_id", DataType::kInt64},
                     {"b_cid", DataType::kInt64},
                     {"b_flag", DataType::kInt64}}));
    for (int64_t i = 0; i < 100; ++i) {
      b->AppendRow({Value::Int64(i), Value::Int64(i % 10),
                    Value::Int64(i < 50 ? 1 : 0)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(b)).ok());

    auto a = std::make_unique<Table>(
        "a", Schema({{"a_id", DataType::kInt64},
                     {"a_bid", DataType::kInt64},
                     {"a_val", DataType::kInt64}}));
    for (int64_t i = 0; i < 1000; ++i) {
      const int64_t bid = i % 100;
      // a_val perfectly correlates with the referenced b_flag.
      a->AppendRow({Value::Int64(i), Value::Int64(bid),
                    Value::Int64(bid < 50 ? 7 : 9)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(a)).ok());

    ASSERT_TRUE(catalog_.SetPrimaryKey("b", "b_id").ok());
    ASSERT_TRUE(catalog_.SetPrimaryKey("c", "c_id").ok());
    ASSERT_TRUE(catalog_.AddForeignKey({"a", "a_bid", "b", "b_id"}).ok());
    ASSERT_TRUE(catalog_.AddForeignKey({"b", "b_cid", "c", "c_id"}).ok());
  }

  Catalog catalog_;
};

TEST_F(JoinSynopsisTest, CoversFkClosure) {
  Rng rng(1);
  JoinSynopsis syn(catalog_, "a", 200, SamplingMode::kWithReplacement, &rng);
  EXPECT_EQ(syn.root_table(), "a");
  EXPECT_EQ(syn.root_row_count(), 1000u);
  EXPECT_EQ(syn.size(), 200u);
  EXPECT_EQ(syn.covered_tables(),
            (std::set<std::string>{"a", "b", "c"}));
}

TEST_F(JoinSynopsisTest, WideSchemaContainsAllColumns) {
  Rng rng(2);
  JoinSynopsis syn(catalog_, "a", 50, SamplingMode::kWithReplacement, &rng);
  const Schema& schema = syn.rows().schema();
  EXPECT_EQ(schema.num_columns(), 3u + 3u + 2u);
  EXPECT_TRUE(schema.HasColumn("a_val"));
  EXPECT_TRUE(schema.HasColumn("b_flag"));
  EXPECT_TRUE(schema.HasColumn("c_label"));
}

TEST_F(JoinSynopsisTest, JoinedValuesAreConsistent) {
  Rng rng(3);
  JoinSynopsis syn(catalog_, "a", 300, SamplingMode::kWithReplacement, &rng);
  const Table& rows = syn.rows();
  for (storage::Rid r = 0; r < rows.num_rows(); ++r) {
    const int64_t a_bid = rows.column("a_bid").Int64At(r);
    const int64_t b_id = rows.column("b_id").Int64At(r);
    EXPECT_EQ(a_bid, b_id);  // FK chase landed on the right B row
    const int64_t b_cid = rows.column("b_cid").Int64At(r);
    const int64_t c_id = rows.column("c_id").Int64At(r);
    EXPECT_EQ(b_cid, c_id);
    EXPECT_EQ(rows.column("c_label").Int64At(r), c_id * 100);
  }
}

TEST_F(JoinSynopsisTest, CapturesCrossTableCorrelation) {
  // a_val = 7 <=> referenced b_flag = 1 by construction; a synopsis-based
  // count must see (near-)perfect correlation where AVI would predict 25%.
  Rng rng(4);
  JoinSynopsis syn(catalog_, "a", 500, SamplingMode::kWithReplacement, &rng);
  auto pred = expr::And({expr::Eq(expr::Col("a_val"), expr::LitInt(7)),
                         expr::Eq(expr::Col("b_flag"), expr::LitInt(1))});
  const uint64_t k = expr::CountSatisfying(*pred, syn.rows());
  const double joint = static_cast<double>(k) / 500.0;
  EXPECT_NEAR(joint, 0.5, 0.08);  // true joint = 50%, AVI would say 25%
}

TEST_F(JoinSynopsisTest, MidChainRootCoversSuffix) {
  Rng rng(5);
  JoinSynopsis syn(catalog_, "b", 100, SamplingMode::kWithReplacement, &rng);
  EXPECT_EQ(syn.covered_tables(), (std::set<std::string>{"b", "c"}));
  EXPECT_TRUE(syn.Covers({"b", "c"}));
  EXPECT_TRUE(syn.Covers({"b"}));
  EXPECT_FALSE(syn.Covers({"a", "b"}));
  EXPECT_FALSE(syn.Covers({"c"}));  // synopsis is rooted at b, not c
}

TEST_F(JoinSynopsisTest, LeafRootHasNoJoins) {
  Rng rng(6);
  JoinSynopsis syn(catalog_, "c", 20, SamplingMode::kWithReplacement, &rng);
  EXPECT_EQ(syn.covered_tables(), (std::set<std::string>{"c"}));
  EXPECT_EQ(syn.rows().schema().num_columns(), 2u);
}

TEST_F(JoinSynopsisTest, WithoutReplacementMode) {
  Rng rng(7);
  JoinSynopsis syn(catalog_, "a", 100, SamplingMode::kWithoutReplacement,
                   &rng);
  EXPECT_EQ(syn.size(), 100u);
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
