#include "statistics/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "expr/expression.h"
#include "statistics/histogram_estimator.h"
#include "statistics/robust_sample_estimator.h"
#include "tpch/tpch_gen.h"

namespace robustqo {
namespace stats {
namespace {

namespace fs = std::filesystem;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rqo_stats_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);

    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(&catalog_, config).ok());
    statistics_ = std::make_unique<StatisticsCatalog>(&catalog_);
    statistics_->BuildAllHistograms(100);
    StatisticsConfig stats_config;
    stats_config.sample_size = 200;
    stats_config.seed = 5;
    statistics_->BuildAllSamples(stats_config);
  }
  void TearDown() override { fs::remove_all(dir_); }

  storage::Catalog catalog_;
  std::unique_ptr<StatisticsCatalog> statistics_;
  fs::path dir_;
};

TEST_F(PersistenceTest, SaveWritesOneFilePerEntry) {
  ASSERT_TRUE(SaveStatistics(*statistics_, dir_.string()).ok());
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".rqs");
    ++files;
  }
  EXPECT_EQ(files, statistics_->AllHistograms().size() +
                       statistics_->AllSamples().size() +
                       statistics_->AllSynopses().size());
}

TEST_F(PersistenceTest, RoundTripPreservesEstimates) {
  ASSERT_TRUE(SaveStatistics(*statistics_, dir_.string()).ok());

  StatisticsCatalog restored(&catalog_);
  ASSERT_TRUE(LoadStatistics(dir_.string(), &restored).ok());

  // Histogram estimates identical.
  HistogramEstimator hist_before(statistics_.get());
  HistogramEstimator hist_after(&restored);
  auto pred = expr::Between(expr::Col("l_shipdate"),
                            storage::Value::Date(10000),
                            storage::Value::Date(10100));
  CardinalityRequest request{{"lineitem"}, pred};
  EXPECT_NEAR(hist_after.EstimateRows(request).value(),
              hist_before.EstimateRows(request).value(), 1e-6);

  // Robust estimates identical (same sample tuples restored).
  RobustSampleEstimator robust_before(statistics_.get(),
                                      RobustEstimatorConfig{});
  RobustSampleEstimator robust_after(&restored, RobustEstimatorConfig{});
  EXPECT_NEAR(robust_after.EstimateRows(request).value(),
              robust_before.EstimateRows(request).value(), 1e-6);

  // Join requests still resolve through the restored synopsis.
  CardinalityRequest join_request{{"lineitem", "orders", "part"}, pred};
  EXPECT_NEAR(robust_after.EstimateRows(join_request).value(),
              robust_before.EstimateRows(join_request).value(), 1e-6);
}

TEST_F(PersistenceTest, RestoredSynopsisMetadataIntact) {
  ASSERT_TRUE(SaveStatistics(*statistics_, dir_.string()).ok());
  StatisticsCatalog restored(&catalog_);
  ASSERT_TRUE(LoadStatistics(dir_.string(), &restored).ok());
  const JoinSynopsis* synopsis = restored.GetSynopsis("lineitem");
  ASSERT_NE(synopsis, nullptr);
  EXPECT_EQ(synopsis->root_row_count(),
            catalog_.GetTable("lineitem")->num_rows());
  EXPECT_TRUE(synopsis->Covers({"lineitem", "orders", "part"}));
  EXPECT_EQ(synopsis->size(), 200u);
  const TableSample* sample = restored.GetSample("part");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->source_row_count(),
            catalog_.GetTable("part")->num_rows());
}

TEST_F(PersistenceTest, LoadMissingDirectoryFails) {
  StatisticsCatalog restored(&catalog_);
  EXPECT_EQ(
      LoadStatistics("/nonexistent/robustqo", &restored).code(),
      StatusCode::kNotFound);
}

TEST_F(PersistenceTest, MalformedFileRejected) {
  fs::create_directories(dir_);
  {
    std::FILE* f = std::fopen((dir_ / "bogus.rqs").c_str(), "w");
    std::fputs("not a statistics file\n", f);
    std::fclose(f);
  }
  StatisticsCatalog restored(&catalog_);
  EXPECT_EQ(LoadStatistics(dir_.string(), &restored).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PersistenceTest, NonStatisticsFilesIgnored) {
  ASSERT_TRUE(SaveStatistics(*statistics_, dir_.string()).ok());
  {
    std::FILE* f = std::fopen((dir_ / "README.txt").c_str(), "w");
    std::fputs("hello\n", f);
    std::fclose(f);
  }
  StatisticsCatalog restored(&catalog_);
  EXPECT_TRUE(LoadStatistics(dir_.string(), &restored).ok());
  EXPECT_NE(restored.GetSample("lineitem"), nullptr);
}

}  // namespace
}  // namespace stats
}  // namespace robustqo
