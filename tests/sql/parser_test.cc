#include "sql/parser.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "expr/analysis.h"
#include "storage/date.h"
#include "tpch/tpch_gen.h"

namespace robustqo {
namespace sql {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new core::Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
    db_->UpdateStatistics();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  opt::QuerySpec MustParse(const std::string& sql) {
    Result<opt::QuerySpec> r = ParseQuery(*db_->catalog(), sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.value() : opt::QuerySpec{};
  }

  Status ParseError(const std::string& sql) {
    Result<opt::QuerySpec> r = ParseQuery(*db_->catalog(), sql);
    EXPECT_FALSE(r.ok()) << sql << " unexpectedly parsed";
    return r.status();
  }

  static core::Database* db_;
};

core::Database* ParserTest::db_ = nullptr;

TEST_F(ParserTest, MinimalSelectStar) {
  opt::QuerySpec q = MustParse("SELECT * FROM part");
  ASSERT_EQ(q.tables.size(), 1u);
  EXPECT_EQ(q.tables[0].table, "part");
  EXPECT_TRUE(q.aggregates.empty());
  EXPECT_TRUE(q.select_columns.empty());
}

TEST_F(ParserTest, SelectColumns) {
  opt::QuerySpec q = MustParse("SELECT p_partkey, p_size FROM part");
  EXPECT_EQ(q.select_columns,
            (std::vector<std::string>{"p_partkey", "p_size"}));
}

TEST_F(ParserTest, Aggregates) {
  opt::QuerySpec q = MustParse(
      "SELECT SUM(l_extendedprice) AS revenue, COUNT(*), MIN(l_quantity) "
      "FROM lineitem");
  ASSERT_EQ(q.aggregates.size(), 3u);
  EXPECT_EQ(q.aggregates[0].kind, exec::AggKind::kSum);
  EXPECT_EQ(q.aggregates[0].column, "l_extendedprice");
  EXPECT_EQ(q.aggregates[0].output_name, "revenue");
  EXPECT_EQ(q.aggregates[1].kind, exec::AggKind::kCount);
  EXPECT_TRUE(q.aggregates[1].column.empty());
  EXPECT_EQ(q.aggregates[2].kind, exec::AggKind::kMin);
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  opt::QuerySpec q =
      MustParse("select count(*) from lineitem where l_quantity < 5");
  EXPECT_EQ(q.aggregates.size(), 1u);
  EXPECT_NE(q.tables[0].predicate, nullptr);
}

TEST_F(ParserTest, WherePredicatesAssignedToTables) {
  opt::QuerySpec q = MustParse(
      "SELECT COUNT(*) FROM lineitem, orders, part "
      "WHERE p_size >= 10 AND l_quantity < 20");
  ASSERT_EQ(q.tables.size(), 3u);
  EXPECT_NE(q.tables[0].predicate, nullptr);  // lineitem: l_quantity
  EXPECT_EQ(q.tables[1].predicate, nullptr);  // orders: none
  EXPECT_NE(q.tables[2].predicate, nullptr);  // part: p_size
}

TEST_F(ParserTest, BetweenWithDates) {
  opt::QuerySpec q = MustParse(
      "SELECT SUM(l_extendedprice) FROM lineitem WHERE "
      "l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-08-29'");
  const std::string rendered = q.tables[0].predicate->ToString();
  EXPECT_NE(rendered.find("1997-07-01"), std::string::npos);
  EXPECT_NE(rendered.find("BETWEEN"), std::string::npos);
}

TEST_F(ParserTest, BetweenWithDateArithmetic) {
  // The Experiment-1 template's "date + offset" bounds.
  opt::QuerySpec q = MustParse(
      "SELECT COUNT(*) FROM lineitem WHERE "
      "l_receiptdate BETWEEN DATE '1997-07-01' + 30 AND "
      "DATE '1997-08-29' + 30");
  auto range = expr::TryExtractColumnRange(q.tables[0].predicate);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->column, "l_receiptdate");
  EXPECT_EQ(*range->lo,
            static_cast<double>(storage::DateToDays(1997, 7, 31)));
}

TEST_F(ParserTest, BooleanStructure) {
  opt::QuerySpec q = MustParse(
      "SELECT COUNT(*) FROM part WHERE "
      "(p_size < 10 OR p_size > 40) AND NOT p_retailprice < 1000");
  const std::string s = q.tables[0].predicate->ToString();
  EXPECT_NE(s.find("OR"), std::string::npos);
  EXPECT_NE(s.find("NOT"), std::string::npos);
}

TEST_F(ParserTest, LikeContainment) {
  opt::QuerySpec q = MustParse(
      "SELECT COUNT(*) FROM part WHERE p_name LIKE '%azure%'");
  EXPECT_NE(q.tables[0].predicate->ToString().find("LIKE '%azure%'"),
            std::string::npos);
}

TEST_F(ParserTest, ArithmeticInPredicates) {
  opt::QuerySpec q = MustParse(
      "SELECT COUNT(*) FROM lineitem WHERE "
      "l_extendedprice * (1 - l_discount) > 1000");
  EXPECT_NE(q.tables[0].predicate, nullptr);
}

TEST_F(ParserTest, RedundantFkJoinPredicateDropped) {
  opt::QuerySpec q = MustParse(
      "SELECT COUNT(*) FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_quantity < 10");
  // The join condition is implied; only the selection remains.
  EXPECT_NE(q.tables[0].predicate, nullptr);
  EXPECT_EQ(q.tables[0].predicate->ToString().find("o_orderkey"),
            std::string::npos);
  EXPECT_EQ(q.tables[1].predicate, nullptr);
}

TEST_F(ParserTest, GroupBy) {
  opt::QuerySpec q = MustParse(
      "SELECT COUNT(*) FROM orders GROUP BY o_custkey");
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"o_custkey"}));
}

TEST_F(ParserTest, OrderByAndLimit) {
  opt::QuerySpec q = MustParse(
      "SELECT p_partkey, p_size FROM part ORDER BY p_size LIMIT 10");
  EXPECT_EQ(q.order_by, "p_size");
  EXPECT_EQ(q.limit, 10u);
  opt::QuerySpec asc = MustParse(
      "SELECT COUNT(*) AS n FROM orders GROUP BY o_custkey ORDER BY n ASC");
  EXPECT_EQ(asc.order_by, "n");
  EXPECT_EQ(asc.limit, 0u);
}

TEST_F(ParserTest, OrderByValidation) {
  // Aggregate query: ORDER BY must target an output.
  EXPECT_FALSE(ParseQuery(*db_->catalog(),
                          "SELECT COUNT(*) AS n FROM orders "
                          "GROUP BY o_custkey ORDER BY o_totalprice")
                   .ok());
  // Projection query: ORDER BY must be selected.
  EXPECT_FALSE(ParseQuery(*db_->catalog(),
                          "SELECT p_partkey FROM part ORDER BY p_size")
                   .ok());
  // LIMIT must be a positive integer.
  EXPECT_FALSE(
      ParseQuery(*db_->catalog(), "SELECT * FROM part LIMIT 0").ok());
  EXPECT_FALSE(
      ParseQuery(*db_->catalog(), "SELECT * FROM part LIMIT x").ok());
}

TEST_F(ParserTest, OrderByLimitExecutesEndToEnd) {
  auto result = db_->ExecuteSql(
      "SELECT COUNT(*) AS n FROM orders GROUP BY o_custkey "
      "ORDER BY n LIMIT 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const storage::Table& rows = result.value().rows;
  ASSERT_EQ(rows.num_rows(), 5u);
  // Ascending by count.
  int64_t prev = INT64_MIN;
  for (storage::Rid r = 0; r < rows.num_rows(); ++r) {
    const int64_t n = rows.column("n").Int64At(r);
    EXPECT_GE(n, prev);
    prev = n;
  }
  EXPECT_NE(result.value().plan_label.find("Limit5(Sort("),
            std::string::npos)
      << result.value().plan_label;
}

TEST_F(ParserTest, LimitWithoutOrderTruncates) {
  auto result = db_->ExecuteSql("SELECT p_partkey FROM part LIMIT 7");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.num_rows(), 7u);
}

TEST_F(ParserTest, Errors) {
  EXPECT_EQ(ParseError("SELECT * FROM nope").code(), StatusCode::kNotFound);
  EXPECT_FALSE(ParseQuery(*db_->catalog(), "FROM lineitem").ok());
  EXPECT_FALSE(
      ParseQuery(*db_->catalog(), "SELECT * FROM lineitem WHERE").ok());
  EXPECT_FALSE(ParseQuery(*db_->catalog(),
                          "SELECT * FROM lineitem GROUP BY l_quantity")
                   .ok());  // GROUP BY without aggregates
  EXPECT_FALSE(ParseQuery(*db_->catalog(),
                          "SELECT SUM(*) FROM lineitem")
                   .ok());  // '*' only for COUNT
  // Cross-table non-join predicate rejected.
  EXPECT_EQ(ParseError("SELECT COUNT(*) FROM lineitem, part "
                       "WHERE l_quantity = p_size")
                .code(),
            StatusCode::kUnsupported);
  // LIKE patterns other than containment rejected.
  EXPECT_FALSE(ParseQuery(*db_->catalog(),
                          "SELECT COUNT(*) FROM part WHERE p_name LIKE 'a%'")
                   .ok());
  // Trailing garbage rejected.
  EXPECT_FALSE(
      ParseQuery(*db_->catalog(), "SELECT * FROM part extra").ok());
}

TEST_F(ParserTest, EndToEndSqlExecution) {
  // The whole pipeline: SQL -> QuerySpec -> plan -> execute; the paper's
  // Experiment-1 query written as SQL.
  auto result = db_->ExecuteSql(
      "SELECT SUM(l_extendedprice) FROM lineitem WHERE "
      "l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-08-29' AND "
      "l_receiptdate BETWEEN DATE '1997-07-31' AND DATE '1997-09-28'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.num_rows(), 1u);
  EXPECT_GT(result.value().simulated_seconds, 0.0);
}

TEST_F(ParserTest, SqlJoinMatchesProgrammaticQuery) {
  auto via_sql = db_->ExecuteSql(
      "SELECT COUNT(*) FROM lineitem, orders WHERE o_totalprice > 100000");
  ASSERT_TRUE(via_sql.ok()) << via_sql.status().ToString();

  opt::QuerySpec q;
  q.tables.push_back({"lineitem", nullptr});
  q.tables.push_back({"orders", expr::Gt(expr::Col("o_totalprice"),
                                         expr::LitDouble(100000.0))});
  q.aggregates.push_back({exec::AggKind::kCount, "", "n"});
  auto programmatic = db_->Execute(q, core::EstimatorKind::kRobustSample);
  ASSERT_TRUE(programmatic.ok());
  EXPECT_EQ(via_sql.value().rows.ValueAt(0, 0).AsInt64(),
            programmatic.value().rows.ValueAt(0, 0).AsInt64());
}

}  // namespace
}  // namespace sql
}  // namespace robustqo
