// Robustness sweep for the SQL front end: pseudo-random token soups must
// never crash the lexer or parser — every input either parses or returns a
// clean Status. (Inputs are built from the parser's own vocabulary so a
// useful fraction get deep into the grammar.)

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "tpch/tpch_gen.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace robustqo {
namespace sql {
namespace {

const char* kVocabulary[] = {
    "SELECT", "FROM",  "WHERE",    "GROUP",    "BY",        "AND",
    "OR",     "NOT",   "BETWEEN",  "LIKE",     "AS",        "SUM",
    "COUNT",  "MIN",   "MAX",      "AVG",      "DATE",      "(",
    ")",      ",",     "*",        "+",        "-",         "/",
    "=",      "<",     ">",        "<=",       ">=",        "<>",
    "42",     "3.5",   "'x'",      "'1997-07-01'", "lineitem", "orders",
    "part",   "nope",  "l_quantity", "l_shipdate", "p_size",  "o_orderdate",
    "l_extendedprice", "0.05",     "''",       "l_discount"};

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new storage::Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.001;
    ASSERT_TRUE(tpch::LoadTpch(catalog_, config).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static storage::Catalog* catalog_;
};

storage::Catalog* ParserFuzzTest::catalog_ = nullptr;

TEST_P(ParserFuzzTest, RandomTokenSoupsNeverCrash) {
  Rng rng(GetParam());
  int parsed_ok = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::string> tokens;
    const int length = static_cast<int>(rng.NextInRange(1, 24));
    // Bias the first tokens towards a plausible prefix so some inputs
    // reach deep grammar productions.
    if (rng.NextBernoulli(0.7)) {
      tokens = {"SELECT", "COUNT", "(", "*", ")", "FROM", "lineitem",
                "WHERE"};
    }
    for (int i = 0; i < length; ++i) {
      tokens.push_back(
          kVocabulary[rng.NextBounded(std::size(kVocabulary))]);
    }
    const std::string sql = StrJoin(tokens, " ");
    Result<opt::QuerySpec> result = ParseQuery(*catalog_, sql);
    if (result.ok()) ++parsed_ok;  // either outcome is fine; no crash is the test
  }
  // Sanity: the generator isn't degenerate — a few inputs do parse.
  SUCCEED() << parsed_ok << " of 500 soups parsed";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ParserFuzzSingle, PathologicalInputs) {
  storage::Catalog catalog;
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  ASSERT_TRUE(tpch::LoadTpch(&catalog, config).ok());
  const char* inputs[] = {
      "",
      " ",
      "(((((((((((",
      "SELECT",
      "SELECT SELECT SELECT",
      "SELECT * FROM lineitem WHERE ((((l_quantity = 1",
      "SELECT * FROM lineitem WHERE l_quantity BETWEEN BETWEEN",
      "SELECT COUNT(*) FROM lineitem WHERE NOT NOT NOT NOT l_quantity = 1",
      "SELECT * FROM lineitem GROUP BY",
      "SELECT SUM( FROM lineitem",
      "SELECT * FROM lineitem WHERE l_shipdate BETWEEN DATE 'garbage' AND 1",
      "SELECT * FROM lineitem,",
      "SELECT * FROM lineitem WHERE 1 = 1 = 1",
  };
  for (const char* sql : inputs) {
    Result<opt::QuerySpec> result = ParseQuery(catalog, sql);
    // Must return (ok or error), never crash/hang.
    (void)result;
  }
  SUCCEED();
}

}  // namespace
}  // namespace sql
}  // namespace robustqo
