#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace sql {
namespace {

std::vector<Token> MustTokenize(const std::string& input) {
  Result<std::vector<Token>> r = Tokenize(input);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsUppercasedIdentifiersPreserved) {
  auto tokens = MustTokenize("select L_ShipDate from lineitem");
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "L_ShipDate");  // not a keyword: case kept
  EXPECT_EQ(tokens[2].text, "FROM");
  EXPECT_EQ(tokens[3].text, "lineitem");
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto tokens = MustTokenize("42 3.75 0.5");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.75);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 0.5);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = MustTokenize("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, SymbolsIncludingTwoChar) {
  auto tokens = MustTokenize("( ) , * + - / = < > <= >= <>");
  const char* expected[] = {"(", ")", ",", "*", "+", "-", "/",
                            "=", "<", ">", "<=", ">=", "<>"};
  for (size_t i = 0; i < 13; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kSymbol);
    EXPECT_EQ(tokens[i].text, expected[i]);
  }
}

TEST(LexerTest, SymbolsWithoutSpaces) {
  auto tokens = MustTokenize("a<=5");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[2].int_value, 5);
}

TEST(LexerTest, UnknownCharacterRejected) {
  EXPECT_FALSE(Tokenize("a ; b").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = MustTokenize("ab  cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 4u);
}

}  // namespace
}  // namespace sql
}  // namespace robustqo
