// Parser coverage for the DML surface: INSERT INTO … VALUES,
// UPDATE … SET … WHERE, DELETE FROM … WHERE — happy paths, type
// coercion, and the typed rejections for malformed statements.

#include <gtest/gtest.h>

#include "core/database.h"
#include "sql/parser.h"
#include "storage/date.h"
#include "tpch/tpch_gen.h"

namespace robustqo {
namespace sql {
namespace {

class DmlParserTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new core::Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  DmlSpec MustParseDml(const std::string& text) {
    Result<ParsedStatement> r = ParseStatement(*db_->catalog(), text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return r.ok() ? r.value().dml : DmlSpec{};
  }

  Status ParseError(const std::string& text) {
    Result<ParsedStatement> r = ParseStatement(*db_->catalog(), text);
    EXPECT_FALSE(r.ok()) << text << " unexpectedly parsed";
    return r.status();
  }

  static core::Database* db_;
};

core::Database* DmlParserTest::db_ = nullptr;

TEST_F(DmlParserTest, SelectStillParsesAsQuery) {
  Result<ParsedStatement> r =
      ParseStatement(*db_->catalog(), "SELECT COUNT(*) FROM part");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().kind, StatementKind::kQuery);
}

TEST_F(DmlParserTest, InsertFullRow) {
  DmlSpec dml = MustParseDml(
      "INSERT INTO region VALUES (7, 'MIDDLE EARTH')");
  EXPECT_EQ(dml.kind, StatementKind::kInsert);
  EXPECT_EQ(dml.table, "region");
  ASSERT_EQ(dml.insert_rows.size(), 1u);
  ASSERT_EQ(dml.insert_rows[0].size(), 2u);
  EXPECT_EQ(dml.insert_rows[0][0].AsInt64(), 7);
  EXPECT_EQ(dml.insert_rows[0][1].AsString(), "MIDDLE EARTH");
}

TEST_F(DmlParserTest, InsertMultipleRows) {
  DmlSpec dml = MustParseDml(
      "INSERT INTO region VALUES (7, 'A'), (8, 'B'), (9, 'C')");
  EXPECT_EQ(dml.insert_rows.size(), 3u);
  EXPECT_EQ(dml.insert_rows[2][0].AsInt64(), 9);
}

TEST_F(DmlParserTest, InsertWithColumnListReordersToSchema) {
  DmlSpec dml = MustParseDml(
      "INSERT INTO region (r_name, r_regionkey) VALUES ('Z', 11)");
  ASSERT_EQ(dml.insert_rows.size(), 1u);
  // Rows come back in schema order regardless of the written column order.
  EXPECT_EQ(dml.insert_rows[0][0].AsInt64(), 11);
  EXPECT_EQ(dml.insert_rows[0][1].AsString(), "Z");
}

TEST_F(DmlParserTest, InsertCoercesIntToDoubleAndDate) {
  DmlSpec dml = MustParseDml(
      "INSERT INTO orders VALUES (90001, 1, DATE '1996-01-02', 100, 'HIGH')");
  ASSERT_EQ(dml.insert_rows.size(), 1u);
  // o_totalprice is a double column; the literal 100 widens at parse time.
  EXPECT_EQ(dml.insert_rows[0][3].type(), storage::DataType::kDouble);
  EXPECT_EQ(dml.insert_rows[0][3].AsDouble(), 100.0);
  EXPECT_EQ(dml.insert_rows[0][2].type(), storage::DataType::kDate);
}

TEST_F(DmlParserTest, InsertRejectsUnknownTable) {
  Status s = ParseError("INSERT INTO nowhere VALUES (1)");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(DmlParserTest, InsertRejectsArityMismatch) {
  EXPECT_FALSE(ParseError("INSERT INTO region VALUES (7)").ok());
}

TEST_F(DmlParserTest, InsertRejectsPartialColumnList) {
  // The column list must cover every column (no defaults in this engine).
  EXPECT_FALSE(
      ParseError("INSERT INTO region (r_regionkey) VALUES (7)").ok());
}

TEST_F(DmlParserTest, InsertRejectsTypeMismatch) {
  EXPECT_FALSE(
      ParseError("INSERT INTO region VALUES ('not a key', 'X')").ok());
}

TEST_F(DmlParserTest, UpdateWithArithmeticAndWhere) {
  DmlSpec dml = MustParseDml(
      "UPDATE orders SET o_totalprice = o_totalprice * 1.1 "
      "WHERE o_orderkey < 100");
  EXPECT_EQ(dml.kind, StatementKind::kUpdate);
  EXPECT_EQ(dml.table, "orders");
  ASSERT_EQ(dml.set_exprs.size(), 1u);
  EXPECT_EQ(dml.set_exprs[0].first, "o_totalprice");
  ASSERT_NE(dml.set_exprs[0].second, nullptr);
  ASSERT_NE(dml.where, nullptr);
}

TEST_F(DmlParserTest, UpdateWithoutWhereTargetsEveryRow) {
  DmlSpec dml = MustParseDml("UPDATE region SET r_name = 'SAME'");
  EXPECT_EQ(dml.where, nullptr);
}

TEST_F(DmlParserTest, UpdateMultipleAssignments) {
  DmlSpec dml = MustParseDml(
      "UPDATE orders SET o_totalprice = 1.0, o_orderpriority = 'LOW' "
      "WHERE o_orderkey = 1");
  EXPECT_EQ(dml.set_exprs.size(), 2u);
}

TEST_F(DmlParserTest, UpdateRejectsUnknownColumn) {
  EXPECT_FALSE(
      ParseError("UPDATE orders SET o_nope = 1 WHERE o_orderkey = 1").ok());
}

TEST_F(DmlParserTest, UpdateRejectsColumnFromOtherTable) {
  EXPECT_FALSE(
      ParseError("UPDATE orders SET o_totalprice = 1 WHERE l_quantity > 0")
          .ok());
}

TEST_F(DmlParserTest, DeleteWithWhere) {
  DmlSpec dml =
      MustParseDml("DELETE FROM lineitem WHERE l_linenumber = 99");
  EXPECT_EQ(dml.kind, StatementKind::kDelete);
  EXPECT_EQ(dml.table, "lineitem");
  ASSERT_NE(dml.where, nullptr);
}

TEST_F(DmlParserTest, DeleteWithoutWhere) {
  DmlSpec dml = MustParseDml("DELETE FROM region");
  EXPECT_EQ(dml.where, nullptr);
}

TEST_F(DmlParserTest, DeleteRejectsTrailingGarbage) {
  EXPECT_FALSE(ParseError("DELETE FROM region extra tokens").ok());
}

TEST_F(DmlParserTest, ParseQueryStillRejectsDml) {
  Result<opt::QuerySpec> r =
      ParseQuery(*db_->catalog(), "DELETE FROM region");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace sql
}  // namespace robustqo
