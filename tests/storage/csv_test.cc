#include "storage/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "storage/date.h"

namespace robustqo {
namespace storage {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"name", DataType::kString},
                 {"ship", DataType::kDate}});
}

TEST(CsvReadTest, BasicRoundValues) {
  std::istringstream input(
      "id,price,name,ship\n"
      "1,9.50,widget,1997-07-01\n"
      "2,-3.25,gadget,1998-01-15\n");
  auto table = ReadCsv(&input, "t", TestSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const Table& t = *table.value();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ValueAt(0, 0).AsInt64(), 1);
  EXPECT_EQ(t.ValueAt(1, 1).AsDouble(), -3.25);
  EXPECT_EQ(t.ValueAt(0, 2).AsString(), "widget");
  EXPECT_EQ(t.ValueAt(1, 3).AsInt64(), DateToDays(1998, 1, 15));
}

TEST(CsvReadTest, NoHeaderOption) {
  std::istringstream input("7,1.0,x,1997-01-01\n");
  CsvOptions options;
  options.has_header = false;
  auto table = ReadCsv(&input, "t", TestSchema(), options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->num_rows(), 1u);
}

TEST(CsvReadTest, QuotedFieldsAndEscapes) {
  std::istringstream input(
      "id,price,name,ship\n"
      "1,2.0,\"a,b\",1997-01-01\n"
      "2,3.0,\"say \"\"hi\"\"\",1997-01-02\n");
  auto table = ReadCsv(&input, "t", TestSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->ValueAt(0, 2).AsString(), "a,b");
  EXPECT_EQ(table.value()->ValueAt(1, 2).AsString(), "say \"hi\"");
}

TEST(CsvReadTest, WindowsLineEndingsAndBlankLines) {
  std::istringstream input("id,price,name,ship\r\n1,2.0,x,1997-01-01\r\n\n");
  auto table = ReadCsv(&input, "t", TestSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->num_rows(), 1u);
}

TEST(CsvReadTest, ErrorsIncludeLineNumbers) {
  std::istringstream arity("id,price,name,ship\n1,2.0,x\n");
  Status s1 = ReadCsv(&arity, "t", TestSchema()).status();
  EXPECT_NE(s1.message().find("line 2"), std::string::npos);

  std::istringstream bad_int("id,price,name,ship\nxx,2.0,x,1997-01-01\n");
  Status s2 = ReadCsv(&bad_int, "t", TestSchema()).status();
  EXPECT_NE(s2.message().find("bad integer"), std::string::npos);

  std::istringstream bad_date("id,price,name,ship\n1,2.0,x,not-a-date\n");
  EXPECT_FALSE(ReadCsv(&bad_date, "t", TestSchema()).ok());

  std::istringstream unterminated("id,price,name,ship\n1,2.0,\"x,1997-01-01\n");
  EXPECT_FALSE(ReadCsv(&unterminated, "t", TestSchema()).ok());
}

TEST(CsvReadTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/file.csv", "t", TestSchema())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(CsvReadTest, TruncatedLastLineFailsCleanly) {
  // A file cut off mid-row (e.g. partial download) has too few fields on
  // its final line; the reader must return a typed error, not crash.
  std::istringstream input("id,price,name,ship\n1,2.0,x,1997-01-01\n2,3.5");
  Status s = ReadCsv(&input, "t", TestSchema()).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 3"), std::string::npos);
}

TEST(CsvReadTest, GarbageBytesFailCleanly) {
  std::istringstream garbage("\x01\x02\xff,\x7f,\",\n\"\"\"\n,,,,,,,,\n");
  CsvOptions options;
  options.has_header = false;
  EXPECT_FALSE(ReadCsv(&garbage, "t", TestSchema(), options).ok());
}

TEST(CsvReadTest, InjectedFaultAbortsMidFile) {
  std::istringstream input(
      "id,price,name,ship\n"
      "1,1.0,a,1997-01-01\n"
      "2,2.0,b,1997-01-02\n"
      "3,3.0,c,1997-01-03\n");
  fault::FaultInjector injector;
  // Header + two data lines read fine; the fault fires on line 4.
  injector.Arm(fault::sites::kCsvRead, fault::FaultSpec::OnNth(4));
  CsvOptions options;
  options.fault = &injector;
  Result<std::unique_ptr<Table>> table =
      ReadCsv(&input, "t", TestSchema(), options);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(table.status().message().find("line 4"), std::string::npos);
}

TEST(CsvReadTest, BadStreamIsUnavailable) {
  std::istringstream input("id,price,name,ship\n1,1.0,a,1997-01-01\n");
  input.setstate(std::ios::badbit);
  Status s = ReadCsv(&input, "t", TestSchema()).status();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

TEST(CsvWriteTest, RoundTrip) {
  Table original("t", TestSchema());
  original.AppendRow({Value::Int64(1), Value::Double(2.5),
                      Value::String("a,\"b\""), Value::Date(10000)});
  original.AppendRow({Value::Int64(-2), Value::Double(0.125),
                      Value::String("plain"), Value::Date(0)});
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(original, &out).ok());

  std::istringstream in(out.str());
  auto loaded = ReadCsv(&in, "t2", TestSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table& t = *loaded.value();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ValueAt(0, 0).AsInt64(), 1);
  EXPECT_EQ(t.ValueAt(0, 2).AsString(), "a,\"b\"");
  EXPECT_EQ(t.ValueAt(1, 3).AsInt64(), 0);
}

TEST(CsvWriteTest, HeaderMatchesSchema) {
  Table t("t", TestSchema());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, &out).ok());
  EXPECT_EQ(out.str(), "id,price,name,ship\n");
}

}  // namespace
}  // namespace storage
}  // namespace robustqo
