#include <gtest/gtest.h>

#include "storage/schema.h"
#include "storage/table.h"

namespace robustqo {
namespace storage {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"name", DataType::kString},
                 {"ship", DataType::kDate}});
}

TEST(SchemaTest, LookupByName) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  ASSERT_TRUE(s.ColumnIndex("price").ok());
  EXPECT_EQ(s.ColumnIndex("price").value(), 1u);
  EXPECT_TRUE(s.HasColumn("ship"));
  EXPECT_FALSE(s.HasColumn("nope"));
  EXPECT_FALSE(s.ColumnIndex("nope").ok());
}

TEST(SchemaTest, ColumnMetadata) {
  Schema s = TestSchema();
  EXPECT_EQ(s.column(0).name, "id");
  EXPECT_EQ(s.column(3).type, DataType::kDate);
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TestSchema().ToString(),
            "id INT64, price DOUBLE, name STRING, ship DATE");
}

TEST(SchemaTest, EmptySchema) {
  Schema s(std::vector<ColumnDef>{});
  EXPECT_EQ(s.num_columns(), 0u);
}

TEST(TableTest, AppendRowAndRead) {
  Table t("test", TestSchema());
  t.AppendRow({Value::Int64(1), Value::Double(9.5), Value::String("a"),
               Value::Date(100)});
  t.AppendRow({Value::Int64(2), Value::Double(8.5), Value::String("b"),
               Value::Date(200)});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ValueAt(0, 0).AsInt64(), 1);
  EXPECT_EQ(t.ValueAt(1, 1).AsDouble(), 8.5);
  EXPECT_EQ(t.ValueAt(1, 2).AsString(), "b");
  EXPECT_EQ(t.ValueAt(0, 3).type(), DataType::kDate);
}

TEST(TableTest, RowAtReturnsFullRow) {
  Table t("test", TestSchema());
  t.AppendRow({Value::Int64(7), Value::Double(1.0), Value::String("x"),
               Value::Date(5)});
  std::vector<Value> row = t.RowAt(0);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0].AsInt64(), 7);
  EXPECT_EQ(row[3].AsInt64(), 5);
}

TEST(TableTest, ColumnByName) {
  Table t("test", TestSchema());
  t.AppendRow({Value::Int64(3), Value::Double(2.0), Value::String("y"),
               Value::Date(9)});
  EXPECT_EQ(t.column("id").Int64At(0), 3);
  EXPECT_EQ(t.column("price").DoubleAt(0), 2.0);
  EXPECT_EQ(t.column("name").StringAt(0), "y");
}

TEST(TableTest, BulkLoadThroughColumns) {
  Table t("bulk", Schema({{"a", DataType::kInt64}, {"b", DataType::kDouble}}));
  for (int i = 0; i < 100; ++i) {
    t.mutable_column(0)->AppendInt64(i);
    t.mutable_column(1)->AppendDouble(i * 0.5);
  }
  t.FinalizeBulkLoad();
  EXPECT_EQ(t.num_rows(), 100u);
  EXPECT_EQ(t.column(0).Int64At(99), 99);
  EXPECT_EQ(t.column(1).DoubleAt(50), 25.0);
}

TEST(ColumnVectorTest, TypedAppendAndBoxedRead) {
  ColumnVector c(DataType::kDate);
  c.AppendInt64(12345);
  EXPECT_EQ(c.size(), 1u);
  Value v = c.ValueAt(0);
  EXPECT_EQ(v.type(), DataType::kDate);
  EXPECT_EQ(v.AsInt64(), 12345);
}

TEST(ColumnVectorTest, BoxedAppend) {
  ColumnVector c(DataType::kString);
  c.Append(Value::String("hello"));
  EXPECT_EQ(c.StringAt(0), "hello");
}

}  // namespace
}  // namespace storage
}  // namespace robustqo
