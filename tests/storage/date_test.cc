#include "storage/date.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace storage {
namespace {

TEST(DateTest, EpochIsZero) { EXPECT_EQ(DateToDays(1970, 1, 1), 0); }

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DateToDays(1970, 1, 2), 1);
  EXPECT_EQ(DateToDays(1969, 12, 31), -1);
  EXPECT_EQ(DateToDays(2000, 1, 1), 10957);
  EXPECT_EQ(DateToDays(1992, 1, 1), 8035);   // TPC-H min order date
  EXPECT_EQ(DateToDays(1998, 8, 2), 10440);  // TPC-H max order date
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_EQ(DateToDays(2000, 2, 29) - DateToDays(2000, 2, 28), 1);
  EXPECT_EQ(DateToDays(2000, 3, 1) - DateToDays(2000, 2, 29), 1);
  // 1900 was not a leap year.
  EXPECT_EQ(DateToDays(1900, 3, 1) - DateToDays(1900, 2, 28), 1);
}

TEST(DateTest, RoundTripAcrossRange) {
  for (int64_t days = DateToDays(1990, 1, 1); days <= DateToDays(2005, 1, 1);
       days += 13) {
    int y = 0;
    int m = 0;
    int d = 0;
    DaysToDate(days, &y, &m, &d);
    EXPECT_EQ(DateToDays(y, m, d), days);
    EXPECT_GE(m, 1);
    EXPECT_LE(m, 12);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 31);
  }
}

TEST(DateTest, ParseValid) {
  Result<int64_t> r = ParseDate("1997-07-01");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), DateToDays(1997, 7, 1));
}

TEST(DateTest, ParseInvalid) {
  EXPECT_FALSE(ParseDate("not a date").ok());
  EXPECT_FALSE(ParseDate("1997-13-01").ok());
  EXPECT_FALSE(ParseDate("1997-00-10").ok());
  EXPECT_FALSE(ParseDate("1997-01-42").ok());
}

TEST(DateTest, FormatRendering) {
  EXPECT_EQ(FormatDate(DateToDays(1997, 7, 1)), "1997-07-01");
  EXPECT_EQ(FormatDate(0), "1970-01-01");
  EXPECT_EQ(FormatDate(DateToDays(2000, 12, 31)), "2000-12-31");
}

TEST(DateTest, ParseFormatRoundTrip) {
  for (const char* s : {"1992-01-01", "1995-06-17", "1998-08-02"}) {
    Result<int64_t> r = ParseDate(s);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(FormatDate(r.value()), s);
  }
}

}  // namespace
}  // namespace storage
}  // namespace robustqo
