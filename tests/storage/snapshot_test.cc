// Snapshot versioning and the atomic write batch: epoch-stamped
// visibility, commit/rollback symmetry under injected faults, revert, and
// the visible checksum the chaos sweep's torn-write detector relies on.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault_injector.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "storage/write_batch.h"

namespace robustqo {
namespace storage {
namespace {

std::unique_ptr<Table> MakeLoadedTable() {
  auto table = std::make_unique<Table>(
      "t", Schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}}));
  for (int64_t i = 0; i < 5; ++i) {
    table->AppendRow({Value::Int64(i), Value::Double(i * 10.0)});
  }
  return table;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddTable(MakeLoadedTable()).ok());
    table_ = catalog_.GetMutableTable("t");
  }

  Catalog catalog_;
  Table* table_ = nullptr;
};

TEST_F(SnapshotTest, UnversionedTableSeesEveryRowAtEverySnapshot) {
  EXPECT_FALSE(table_->versioned());
  EXPECT_EQ(table_->VisibleRowCount(0), 5u);
  EXPECT_EQ(table_->VisibleRowCount(kLatestSnapshot), 5u);
  for (Rid r = 0; r < 5; ++r) {
    EXPECT_TRUE(table_->VisibleAt(r, 0));
  }
}

TEST_F(SnapshotTest, CommitPublishesEpochAndStampsVersions) {
  WriteBatch batch(&catalog_, table_);
  batch.StageInsert({Value::Int64(5), Value::Double(50.0)});
  batch.StageDelete(0);
  auto stats = batch.Commit(nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().epoch, 1u);
  EXPECT_EQ(stats.value().rows_inserted, 1u);
  EXPECT_EQ(stats.value().rows_deleted, 1u);
  EXPECT_EQ(catalog_.data_epoch(), 1u);

  EXPECT_TRUE(table_->versioned());
  // Pre-commit snapshot (epoch 0) still sees the original 5 rows.
  EXPECT_EQ(table_->VisibleRowCount(0), 5u);
  EXPECT_TRUE(table_->VisibleAt(0, 0));
  EXPECT_FALSE(table_->VisibleAt(5, 0));
  // The latest snapshot sees the delete and the insert.
  EXPECT_EQ(table_->VisibleRowCount(), 5u);
  EXPECT_FALSE(table_->VisibleAt(0));
  EXPECT_TRUE(table_->VisibleAt(5));
}

TEST_F(SnapshotTest, UpdateKeepsOldVersionVisibleToOlderSnapshots) {
  WriteBatch batch(&catalog_, table_);
  batch.StageUpdate(2, {Value::Int64(2), Value::Double(999.0)});
  ASSERT_TRUE(batch.Commit(nullptr).ok());

  // Snapshot 0 reads the pre-update value through the old version.
  EXPECT_TRUE(table_->VisibleAt(2, 0));
  EXPECT_EQ(table_->ValueAt(2, 1).AsDouble(), 20.0);
  // The latest snapshot reads the new version; the old one is dead.
  EXPECT_FALSE(table_->VisibleAt(2));
  EXPECT_TRUE(table_->VisibleAt(5));
  EXPECT_EQ(table_->ValueAt(5, 1).AsDouble(), 999.0);
  // Row counts agree at both snapshots: an update is not a net change.
  EXPECT_EQ(table_->VisibleRowCount(0), 5u);
  EXPECT_EQ(table_->VisibleRowCount(), 5u);
}

TEST_F(SnapshotTest, ApplyFaultRollsBackCompletely) {
  const uint64_t before = table_->VisibleChecksum();
  fault::FaultInjector injector(7);
  injector.Arm(fault::sites::kWriteApply, fault::FaultSpec::OnNth(2));

  WriteBatch batch(&catalog_, table_);
  batch.StageInsert({Value::Int64(6), Value::Double(60.0)});
  batch.StageInsert({Value::Int64(7), Value::Double(70.0)});
  batch.StageDelete(1);
  auto stats = batch.Commit(&injector);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);

  // Zero surviving effects: row count, epoch, checksum all pre-write.
  EXPECT_EQ(table_->num_rows(), 5u);
  EXPECT_EQ(table_->VisibleRowCount(), 5u);
  EXPECT_EQ(catalog_.data_epoch(), 0u);
  EXPECT_EQ(table_->VisibleChecksum(), before);
  for (Rid r = 0; r < 5; ++r) {
    EXPECT_TRUE(table_->VisibleAt(r)) << "rid " << r;
  }
}

TEST_F(SnapshotTest, CommitFaultRollsBackAndRetrySucceeds) {
  const uint64_t before = table_->VisibleChecksum();
  fault::FaultInjector injector(7);
  injector.Arm(fault::sites::kWriteCommit, fault::FaultSpec::FirstN(1));

  WriteBatch batch(&catalog_, table_);
  batch.StageDelete(4);
  auto first = batch.Commit(&injector);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(table_->VisibleChecksum(), before);
  EXPECT_EQ(catalog_.data_epoch(), 0u);

  // A failed commit restores the base state and keeps the staged vectors,
  // so re-committing the same batch is safe — and the FirstN fault has
  // passed, so it lands.
  auto second = batch.Commit(&injector);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().epoch, 1u);
  EXPECT_EQ(table_->VisibleRowCount(), 4u);
}

TEST_F(SnapshotTest, PrePublishFailureRollsBack) {
  const uint64_t before = table_->VisibleChecksum();
  WriteBatch batch(&catalog_, table_);
  batch.StageInsert({Value::Int64(6), Value::Double(60.0)});
  auto stats = batch.Commit(nullptr, [](const CommitStats&) {
    return Status::Unavailable("reservoir update failed");
  });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(table_->VisibleChecksum(), before);
  EXPECT_EQ(table_->num_rows(), 5u);
  EXPECT_EQ(catalog_.data_epoch(), 0u);
}

TEST_F(SnapshotTest, EmptyBatchCommitsCleanly) {
  // A WHERE matching zero rows is an empty batch: it still publishes an
  // epoch (commit order stays a pure function of request order) but never
  // forces the table onto the versioned path.
  WriteBatch batch(&catalog_, table_);
  EXPECT_TRUE(batch.empty());
  auto stats = batch.Commit(nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rows_inserted, 0u);
  EXPECT_EQ(stats.value().rows_deleted, 0u);
  EXPECT_EQ(catalog_.data_epoch(), 1u);
  EXPECT_FALSE(table_->versioned());
  EXPECT_EQ(table_->VisibleRowCount(), 5u);
}

TEST_F(SnapshotTest, RevertWritesAfterRestoresExactState) {
  const uint64_t checksum0 = table_->VisibleChecksum();

  WriteBatch first(&catalog_, table_);
  first.StageInsert({Value::Int64(6), Value::Double(60.0)});
  ASSERT_TRUE(first.Commit(nullptr).ok());
  const uint64_t checksum1 = table_->VisibleChecksum();

  WriteBatch second(&catalog_, table_);
  second.StageDelete(0);
  second.StageUpdate(3, {Value::Int64(3), Value::Double(-1.0)});
  ASSERT_TRUE(second.Commit(nullptr).ok());
  ASSERT_EQ(catalog_.data_epoch(), 2u);
  ASSERT_NE(table_->VisibleChecksum(), checksum1);

  catalog_.RevertWritesAfter(1);
  EXPECT_EQ(catalog_.data_epoch(), 1u);
  EXPECT_EQ(table_->VisibleChecksum(), checksum1);

  catalog_.RevertWritesAfter(0);
  EXPECT_EQ(catalog_.data_epoch(), 0u);
  EXPECT_EQ(table_->VisibleChecksum(), checksum0);
  EXPECT_EQ(table_->VisibleRowCount(), 5u);
}

TEST_F(SnapshotTest, VisibleChecksumTracksVisibleContentOnly) {
  const uint64_t before = table_->VisibleChecksum();

  // An update changes the visible content at latest but not at epoch 0.
  WriteBatch batch(&catalog_, table_);
  batch.StageUpdate(1, {Value::Int64(1), Value::Double(123.0)});
  ASSERT_TRUE(batch.Commit(nullptr).ok());
  EXPECT_NE(table_->VisibleChecksum(), before);
  EXPECT_EQ(table_->VisibleChecksum(0), before);
}

TEST_F(SnapshotTest, CommitRebuildsSecondaryIndexes) {
  ASSERT_TRUE(catalog_.BuildIndex("t", "id").ok());
  WriteBatch batch(&catalog_, table_);
  batch.StageInsert({Value::Int64(99), Value::Double(1.0)});
  ASSERT_TRUE(batch.Commit(nullptr).ok());
  const SortedIndex* index = catalog_.GetIndex("t", "id");
  ASSERT_NE(index, nullptr);
  // The index covers every physical row version, including the new one.
  EXPECT_EQ(index->num_entries(), table_->num_rows());
}

}  // namespace
}  // namespace storage
}  // namespace robustqo
