#include "storage/value.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace storage {
namespace {

TEST(ValueTest, ConstructionAndAccessors) {
  EXPECT_EQ(Value::Int64(42).AsInt64(), 42);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
  EXPECT_EQ(Value::Date(10000).AsInt64(), 10000);
  EXPECT_EQ(Value::Int64(42).type(), DataType::kInt64);
  EXPECT_EQ(Value::Date(1).type(), DataType::kDate);
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_EQ(v.type(), DataType::kInt64);
  EXPECT_EQ(v.AsInt64(), 0);
}

TEST(ValueTest, NumericValueWidens) {
  EXPECT_EQ(Value::Int64(3).NumericValue(), 3.0);
  EXPECT_EQ(Value::Date(100).NumericValue(), 100.0);
  EXPECT_EQ(Value::Double(0.5).NumericValue(), 0.5);
}

TEST(ValueTest, IntegerComparison) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::Int64(5).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(3).Compare(Value::Int64(3)), 0);
}

TEST(ValueTest, MixedNumericComparison) {
  EXPECT_TRUE(Value::Int64(2) < Value::Double(2.5));
  EXPECT_TRUE(Value::Double(2.5) > Value::Int64(2));
  EXPECT_TRUE(Value::Int64(2) == Value::Double(2.0));
  EXPECT_TRUE(Value::Date(100) == Value::Int64(100));
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // 2^62 and 2^62+1 are indistinguishable as doubles; the integer path
  // must keep them apart.
  const int64_t big = int64_t{1} << 62;
  EXPECT_TRUE(Value::Int64(big) < Value::Int64(big + 1));
  EXPECT_FALSE(Value::Int64(big) == Value::Int64(big + 1));
}

TEST(ValueTest, StringComparison) {
  EXPECT_TRUE(Value::String("apple") < Value::String("banana"));
  EXPECT_TRUE(Value::String("b") == Value::String("b"));
  EXPECT_TRUE(Value::String("c") != Value::String("b"));
}

TEST(ValueTest, RelationalOperators) {
  EXPECT_TRUE(Value::Int64(1) <= Value::Int64(1));
  EXPECT_TRUE(Value::Int64(1) >= Value::Int64(1));
  EXPECT_TRUE(Value::Int64(1) != Value::Int64(2));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int64(-7).ToString(), "-7");
  EXPECT_EQ(Value::String("xyz").ToString(), "xyz");
  EXPECT_EQ(Value::Date(0).ToString(), "1970-01-01");
}

TEST(ValueDeathTest, TypeMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH({ (void)Value::String("x").AsInt64(); }, "integer");
  EXPECT_DEATH({ (void)Value::Int64(1).AsString(); }, "string");
  EXPECT_DEATH({ (void)Value::String("x").NumericValue(); }, "string");
  EXPECT_DEATH({ (void)Value::String("a").Compare(Value::Int64(1)); },
               "compare");
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeName(DataType::kString), "STRING");
  EXPECT_STREQ(DataTypeName(DataType::kDate), "DATE");
}

TEST(DataTypeTest, IntegerPhysical) {
  EXPECT_TRUE(IsIntegerPhysical(DataType::kInt64));
  EXPECT_TRUE(IsIntegerPhysical(DataType::kDate));
  EXPECT_FALSE(IsIntegerPhysical(DataType::kDouble));
  EXPECT_FALSE(IsIntegerPhysical(DataType::kString));
}

}  // namespace
}  // namespace storage
}  // namespace robustqo
