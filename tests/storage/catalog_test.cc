#include "storage/catalog.h"

#include <gtest/gtest.h>

#include <memory>

namespace robustqo {
namespace storage {
namespace {

std::unique_ptr<Table> MakeTable(const std::string& name,
                                 std::vector<ColumnDef> cols) {
  return std::make_unique<Table>(name, Schema(std::move(cols)));
}

// A small FK chain: lineitem -> orders -> customer, lineitem -> part.
class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .AddTable(MakeTable("customer",
                                        {{"c_custkey", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable(MakeTable("orders",
                                        {{"o_orderkey", DataType::kInt64},
                                         {"o_custkey", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable(MakeTable("part",
                                        {{"p_partkey", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable(MakeTable("lineitem",
                                        {{"l_orderkey", DataType::kInt64},
                                         {"l_partkey", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(catalog_.SetPrimaryKey("customer", "c_custkey").ok());
    ASSERT_TRUE(catalog_.SetPrimaryKey("orders", "o_orderkey").ok());
    ASSERT_TRUE(catalog_.SetPrimaryKey("part", "p_partkey").ok());
    ASSERT_TRUE(
        catalog_
            .AddForeignKey({"orders", "o_custkey", "customer", "c_custkey"})
            .ok());
    ASSERT_TRUE(
        catalog_
            .AddForeignKey({"lineitem", "l_orderkey", "orders", "o_orderkey"})
            .ok());
    ASSERT_TRUE(
        catalog_
            .AddForeignKey({"lineitem", "l_partkey", "part", "p_partkey"})
            .ok());
  }

  Catalog catalog_;
};

TEST_F(CatalogTest, DuplicateTableRejected) {
  Status s = catalog_.AddTable(MakeTable("part", {{"x", DataType::kInt64}}));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, GetTable) {
  EXPECT_NE(catalog_.GetTable("orders"), nullptr);
  EXPECT_EQ(catalog_.GetTable("nope"), nullptr);
  EXPECT_NE(catalog_.GetMutableTable("orders"), nullptr);
}

TEST_F(CatalogTest, PrimaryKeys) {
  EXPECT_EQ(catalog_.PrimaryKeyOf("orders"), "o_orderkey");
  EXPECT_EQ(catalog_.PrimaryKeyOf("lineitem"), "");
}

TEST_F(CatalogTest, PrimaryKeyValidation) {
  EXPECT_EQ(catalog_.SetPrimaryKey("nope", "x").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog_.SetPrimaryKey("orders", "missing").code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, ForeignKeyMustReferencePrimaryKey) {
  Status s =
      catalog_.AddForeignKey({"lineitem", "l_orderkey", "orders", "o_custkey"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, ForeignKeysFrom) {
  auto fks = catalog_.ForeignKeysFrom("lineitem");
  EXPECT_EQ(fks.size(), 2u);
  EXPECT_TRUE(catalog_.ForeignKeysFrom("customer").empty());
}

TEST_F(CatalogTest, ForeignKeyBetween) {
  auto fk = catalog_.ForeignKeyBetween("orders", "lineitem");
  ASSERT_TRUE(fk.ok());
  EXPECT_EQ(fk.value().from_table, "lineitem");
  EXPECT_FALSE(catalog_.ForeignKeyBetween("part", "orders").ok());
}

TEST_F(CatalogTest, ReachableClosure) {
  auto reach = catalog_.ReachableViaForeignKeys("lineitem");
  EXPECT_EQ(reach.size(), 3u);
  EXPECT_TRUE(reach.count("orders"));
  EXPECT_TRUE(reach.count("customer"));
  EXPECT_TRUE(reach.count("part"));
  EXPECT_TRUE(catalog_.ReachableViaForeignKeys("customer").empty());
}

TEST_F(CatalogTest, FindRootTableSingle) {
  auto root = catalog_.FindRootTable({"orders"});
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), "orders");
}

TEST_F(CatalogTest, FindRootTableChain) {
  auto root = catalog_.FindRootTable({"lineitem", "orders", "part"});
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), "lineitem");
  auto root2 = catalog_.FindRootTable({"orders", "customer"});
  ASSERT_TRUE(root2.ok());
  EXPECT_EQ(root2.value(), "orders");
}

TEST_F(CatalogTest, FindRootTableDisconnected) {
  EXPECT_FALSE(catalog_.FindRootTable({"part", "customer"}).ok());
}

TEST_F(CatalogTest, IndexLifecycle) {
  EXPECT_FALSE(catalog_.HasIndex("orders", "o_custkey"));
  ASSERT_TRUE(catalog_.BuildIndex("orders", "o_custkey").ok());
  EXPECT_TRUE(catalog_.HasIndex("orders", "o_custkey"));
  EXPECT_NE(catalog_.GetIndex("orders", "o_custkey"), nullptr);
  EXPECT_EQ(catalog_.GetIndex("orders", "o_orderkey"), nullptr);
  EXPECT_EQ(catalog_.BuildIndex("nope", "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog_.BuildIndex("orders", "missing").code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, ClusteringColumns) {
  EXPECT_EQ(catalog_.ClusteringColumnOf("orders"), "");
  ASSERT_TRUE(catalog_.SetClusteringColumn("orders", "o_orderkey").ok());
  EXPECT_EQ(catalog_.ClusteringColumnOf("orders"), "o_orderkey");
  EXPECT_EQ(catalog_.SetClusteringColumn("orders", "missing").code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, FkCyclesDoNotHangTraversals) {
  // Declare a back-edge customer -> orders (legal: o_orderkey is the PK),
  // creating a cycle orders <-> customer. Traversals must terminate.
  auto cust = catalog_.GetMutableTable("customer");
  (void)cust;
  // Add a fake FK column to customer.
  Catalog cyclic;
  auto a = std::make_unique<Table>(
      "a", Schema(std::vector<ColumnDef>{{"a_id", DataType::kInt64},
                                         {"a_b", DataType::kInt64}}));
  auto b = std::make_unique<Table>(
      "b", Schema(std::vector<ColumnDef>{{"b_id", DataType::kInt64},
                                         {"b_a", DataType::kInt64}}));
  ASSERT_TRUE(cyclic.AddTable(std::move(a)).ok());
  ASSERT_TRUE(cyclic.AddTable(std::move(b)).ok());
  ASSERT_TRUE(cyclic.SetPrimaryKey("a", "a_id").ok());
  ASSERT_TRUE(cyclic.SetPrimaryKey("b", "b_id").ok());
  ASSERT_TRUE(cyclic.AddForeignKey({"a", "a_b", "b", "b_id"}).ok());
  ASSERT_TRUE(cyclic.AddForeignKey({"b", "b_a", "a", "a_id"}).ok());
  auto reach_a = cyclic.ReachableViaForeignKeys("a");
  EXPECT_EQ(reach_a, (std::set<std::string>{"b"}));
  auto reach_b = cyclic.ReachableViaForeignKeys("b");
  EXPECT_EQ(reach_b, (std::set<std::string>{"a"}));
  // Either table covers the pair; FindRootTable picks one deterministically.
  auto root = cyclic.FindRootTable({"a", "b"});
  ASSERT_TRUE(root.ok());
}

TEST_F(CatalogTest, TableNamesSorted) {
  auto names = catalog_.TableNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names.front(), "customer");
  EXPECT_EQ(names.back(), "part");
}

}  // namespace
}  // namespace storage
}  // namespace robustqo
