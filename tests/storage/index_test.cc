#include "storage/index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace robustqo {
namespace storage {
namespace {

Table MakeTable(const std::vector<int64_t>& keys) {
  Table t("t", Schema({{"k", DataType::kInt64}}));
  for (int64_t k : keys) t.AppendRow({Value::Int64(k)});
  return t;
}

TEST(SortedIndexTest, EqualLookupFindsAllDuplicates) {
  Table t = MakeTable({5, 3, 5, 1, 5, 2});
  SortedIndex index(t, "k");
  uint64_t entries = 0;
  std::vector<Rid> rids = index.EqualLookup(5.0, &entries);
  EXPECT_EQ(entries, 3u);
  std::sort(rids.begin(), rids.end());
  EXPECT_EQ(rids, (std::vector<Rid>{0, 2, 4}));
}

TEST(SortedIndexTest, EqualLookupMiss) {
  Table t = MakeTable({1, 2, 3});
  SortedIndex index(t, "k");
  uint64_t entries = 9;
  EXPECT_TRUE(index.EqualLookup(7.0, &entries).empty());
  EXPECT_EQ(entries, 0u);
}

TEST(SortedIndexTest, RangeLookupInclusive) {
  Table t = MakeTable({10, 20, 30, 40, 50});
  SortedIndex index(t, "k");
  std::vector<Rid> rids = index.RangeLookup(20.0, 40.0);
  std::sort(rids.begin(), rids.end());
  EXPECT_EQ(rids, (std::vector<Rid>{1, 2, 3}));
}

TEST(SortedIndexTest, OpenBounds) {
  Table t = MakeTable({10, 20, 30});
  SortedIndex index(t, "k");
  EXPECT_EQ(index.RangeLookup(std::nullopt, 20.0).size(), 2u);
  EXPECT_EQ(index.RangeLookup(20.0, std::nullopt).size(), 2u);
  EXPECT_EQ(index.RangeLookup(std::nullopt, std::nullopt).size(), 3u);
}

TEST(SortedIndexTest, EmptyRange) {
  Table t = MakeTable({10, 20, 30});
  SortedIndex index(t, "k");
  EXPECT_TRUE(index.RangeLookup(21.0, 29.0).empty());
  EXPECT_TRUE(index.RangeLookup(40.0, 50.0).empty());
  EXPECT_TRUE(index.RangeLookup(5.0, 9.0).empty());
}

TEST(SortedIndexTest, RidsReturnedInKeyOrder) {
  Table t = MakeTable({30, 10, 20});
  SortedIndex index(t, "k");
  std::vector<Rid> rids = index.RangeLookup(std::nullopt, std::nullopt);
  // Key order 10, 20, 30 -> rids 1, 2, 0.
  EXPECT_EQ(rids, (std::vector<Rid>{1, 2, 0}));
}

TEST(SortedIndexTest, CountRangeMatchesLookupSize) {
  Rng rng(5);
  std::vector<int64_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.NextInRange(0, 99));
  Table t = MakeTable(keys);
  SortedIndex index(t, "k");
  for (int lo = 0; lo < 100; lo += 7) {
    const double hi = lo + 12;
    EXPECT_EQ(index.CountRange(lo, hi), index.RangeLookup(lo, hi).size());
  }
}

TEST(SortedIndexTest, CountMatchesBruteForce) {
  Rng rng(6);
  std::vector<int64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.NextInRange(-50, 50));
  Table t = MakeTable(keys);
  SortedIndex index(t, "k");
  const double lo = -10;
  const double hi = 10;
  uint64_t expected = 0;
  for (int64_t k : keys) {
    if (k >= lo && k <= hi) ++expected;
  }
  EXPECT_EQ(index.CountRange(lo, hi), expected);
}

TEST(SortedIndexTest, DoubleColumn) {
  Table t("t", Schema({{"x", DataType::kDouble}}));
  for (double v : {0.5, 1.5, 2.5, 3.5}) t.AppendRow({Value::Double(v)});
  SortedIndex index(t, "x");
  EXPECT_EQ(index.RangeLookup(1.0, 3.0).size(), 2u);
}

TEST(SortedIndexTest, MetadataAccessors) {
  Table t = MakeTable({1, 2});
  SortedIndex index(t, "k");
  EXPECT_EQ(index.table_name(), "t");
  EXPECT_EQ(index.column_name(), "k");
  EXPECT_EQ(index.num_entries(), 2u);
}

TEST(SortedIndexTest, EntriesScannedEqualsResultSizeForRange) {
  Table t = MakeTable({1, 2, 2, 3, 4});
  SortedIndex index(t, "k");
  uint64_t entries = 0;
  auto rids = index.RangeLookup(2.0, 3.0, &entries);
  EXPECT_EQ(entries, rids.size());
  EXPECT_EQ(entries, 3u);
}

}  // namespace
}  // namespace storage
}  // namespace robustqo
