#include "learning/tpercent_tuner.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/slo_monitor.h"

namespace robustqo {
namespace learn {
namespace {

// Feeds `count` successful executions of `fingerprint` into the monitor,
// `regretted` of which realized more cost than the plan promised.
void FeedExecutions(obs::SloMonitor* slo, uint64_t fingerprint, int count,
                    int regretted) {
  for (int i = 0; i < count; ++i) {
    obs::SloObservation observation;
    observation.session = 1;
    observation.session_label = "tuner-test";
    observation.fingerprint = fingerprint;
    observation.cache_hit = true;
    observation.estimated_seconds = 1.0;
    observation.actual_seconds = i < regretted ? 2.0 : 0.5;
    slo->Record(observation);
  }
}

TEST(TPercentTunerTest, EffectiveThresholdDefaultsToBase) {
  TPercentTuner tuner;
  EXPECT_DOUBLE_EQ(tuner.EffectiveThreshold(42, 0.8), 0.8);
}

TEST(TPercentTunerTest, ChronicRegretRaisesTheThreshold) {
  obs::SloMonitor slo;
  // 32 successes, every one over its promise: regret rate 1.0 against a
  // (1 - 0.8) = 0.2 budget.
  FeedExecutions(&slo, 42, 32, 32);
  TPercentTuner tuner;
  tuner.Retune(slo, 0.8);
  EXPECT_EQ(tuner.overrides(), 1u);
  EXPECT_EQ(tuner.raised_total(), 1u);
  EXPECT_DOUBLE_EQ(tuner.EffectiveThreshold(42, 0.8), 0.85);
  // Still chronically over budget: the next retune raises another step.
  tuner.Retune(slo, 0.8);
  EXPECT_DOUBLE_EQ(tuner.EffectiveThreshold(42, 0.8), 0.9);
}

TEST(TPercentTunerTest, RaiseStopsAtMaxThreshold) {
  obs::SloMonitor slo;
  FeedExecutions(&slo, 42, 32, 32);
  TPercentTuner tuner;
  for (int i = 0; i < 20; ++i) tuner.Retune(slo, 0.8);
  EXPECT_LE(tuner.EffectiveThreshold(42, 0.8), tuner.config().max_threshold);
}

TEST(TPercentTunerTest, CalibratedFingerprintRelaxesBackToBase) {
  obs::SloMonitor regretful;
  FeedExecutions(&regretful, 42, 32, 32);
  TPercentTuner tuner;
  tuner.Retune(regretful, 0.8);
  tuner.Retune(regretful, 0.8);
  ASSERT_DOUBLE_EQ(tuner.EffectiveThreshold(42, 0.8), 0.9);

  // A fresh window with zero regret: the override walks back one step per
  // retune and disappears at the base.
  obs::SloMonitor calibrated;
  FeedExecutions(&calibrated, 42, 32, 0);
  tuner.Retune(calibrated, 0.8);
  EXPECT_DOUBLE_EQ(tuner.EffectiveThreshold(42, 0.8), 0.85);
  tuner.Retune(calibrated, 0.8);
  EXPECT_DOUBLE_EQ(tuner.EffectiveThreshold(42, 0.8), 0.8);
  EXPECT_EQ(tuner.overrides(), 0u);
  EXPECT_EQ(tuner.relaxed_total(), 2u);
}

TEST(TPercentTunerTest, TooFewObservationsAreLeftAlone) {
  obs::SloMonitor slo;
  FeedExecutions(&slo, 42, 8, 8);  // below min_observations = 16
  TPercentTuner tuner;
  tuner.Retune(slo, 0.8);
  EXPECT_EQ(tuner.overrides(), 0u);
}

TEST(TPercentTunerTest, InBudgetRegretNeverCreatesAnOverride) {
  obs::SloMonitor slo;
  // Regret rate 2/32 = 0.0625, well inside the 0.2 budget.
  FeedExecutions(&slo, 42, 32, 2);
  TPercentTuner tuner;
  tuner.Retune(slo, 0.8);
  EXPECT_EQ(tuner.overrides(), 0u);
  EXPECT_EQ(tuner.raised_total(), 0u);
}

TEST(TPercentTunerTest, DisabledTunerPassesBaseThrough) {
  obs::SloMonitor slo;
  FeedExecutions(&slo, 42, 32, 32);
  TPercentTuner tuner;
  tuner.Retune(slo, 0.8);
  ASSERT_GT(tuner.EffectiveThreshold(42, 0.8), 0.8);
  tuner.set_enabled(false);
  EXPECT_DOUBLE_EQ(tuner.EffectiveThreshold(42, 0.8), 0.8);
  tuner.set_enabled(true);
  EXPECT_DOUBLE_EQ(tuner.EffectiveThreshold(42, 0.8), 0.85);
}

TEST(TPercentTunerTest, ReportJsonAndMetrics) {
  obs::SloMonitor slo;
  FeedExecutions(&slo, 0x2a, 32, 32);
  TPercentTuner tuner;
  tuner.Retune(slo, 0.8);
  const std::string report = tuner.ReportText();
  EXPECT_NE(report.find("1 overrides (1 raises, 0 relaxes)"),
            std::string::npos);
  EXPECT_NE(report.find("000000000000002a T=85%"), std::string::npos);
  const std::string json = tuner.ToJson();
  EXPECT_NE(json.find("\"0x000000000000002a\""), std::string::npos);

  obs::MetricsRegistry metrics;
  tuner.PublishMetrics(&metrics);
  tuner.PublishMetrics(&metrics);  // idempotent
  EXPECT_EQ(metrics.GetGauge("optimizer.tpercent.overrides")->value(), 1.0);
  EXPECT_EQ(metrics.GetCounter("optimizer.tpercent.raised")->value(), 1u);
}

}  // namespace
}  // namespace learn
}  // namespace robustqo
