#include "learning/feedback_store.h"

#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace robustqo {
namespace learn {
namespace {

LearningConfig SmallConfig() {
  LearningConfig config;
  config.observation_weight = 32.0;
  config.max_equivalent_n = 128.0;
  config.min_observations = 3;
  config.max_fingerprints = 2;
  return config;
}

TEST(FeedbackStoreTest, AccumulatesBetaPseudoCounts) {
  FeedbackStore store;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Observe(0xabc, "{t} :: p", 0.1, 0.5, 1).ok());
  }
  auto evidence = store.Lookup(0xabc, 1);
  ASSERT_TRUE(evidence.has_value());
  // Each observation of s=0.5 at weight 32 contributes 16 to k_eq, 32 to
  // n_eq.
  EXPECT_DOUBLE_EQ(evidence->k_eq, 48.0);
  EXPECT_DOUBLE_EQ(evidence->n_eq, 96.0);
  EXPECT_EQ(evidence->observations, 3u);
  EXPECT_EQ(store.observations_total(), 3u);
}

TEST(FeedbackStoreTest, MinObservationsGateHidesWarmingEntries) {
  FeedbackStore store;
  ASSERT_TRUE(store.Observe(1, "q", 0.1, 0.5, 1).ok());
  ASSERT_TRUE(store.Observe(1, "q", 0.1, 0.5, 1).ok());
  EXPECT_FALSE(store.Lookup(1, 1).has_value());
  ASSERT_TRUE(store.Observe(1, "q", 0.1, 0.5, 1).ok());
  EXPECT_TRUE(store.Lookup(1, 1).has_value());
}

TEST(FeedbackStoreTest, DisabledStoreIsANoOp) {
  LearningConfig config;
  config.enabled = false;
  FeedbackStore store(config);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Observe(1, "q", 0.1, 0.5, 1).ok());
  }
  EXPECT_FALSE(store.Lookup(1, 1).has_value());
  EXPECT_EQ(store.fingerprints_tracked(), 0u);
  EXPECT_EQ(store.observations_total(), 0u);
}

TEST(FeedbackStoreTest, ZeroFingerprintIsRejected) {
  FeedbackStore store;
  EXPECT_EQ(store.Observe(0, "q", 0.1, 0.5, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(FeedbackStoreTest, StaleEpochIsInvisibleAndResetsLazily) {
  FeedbackStore store;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Observe(1, "q", 0.1, 0.5, 1).ok());
  }
  ASSERT_TRUE(store.Lookup(1, 1).has_value());
  // A statistics rebuild bumps the epoch: old evidence must not correct
  // estimates built on the fresh statistics.
  EXPECT_FALSE(store.Lookup(1, 2).has_value());
  ASSERT_TRUE(store.Observe(1, "q", 0.1, 0.9, 2).ok());
  EXPECT_EQ(store.epoch_resets_total(), 1u);
  EXPECT_FALSE(store.Lookup(1, 2).has_value());  // warming again
  ASSERT_TRUE(store.Observe(1, "q", 0.1, 0.9, 2).ok());
  ASSERT_TRUE(store.Observe(1, "q", 0.1, 0.9, 2).ok());
  auto evidence = store.Lookup(1, 2);
  ASSERT_TRUE(evidence.has_value());
  EXPECT_EQ(evidence->observations, 3u);
  EXPECT_DOUBLE_EQ(evidence->k_eq / evidence->n_eq, 0.9);
}

TEST(FeedbackStoreTest, EvidenceCapRescalesProportionally) {
  LearningConfig config = SmallConfig();
  FeedbackStore store(config);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Observe(1, "q", 0.1, 0.25, 1).ok());
  }
  auto evidence = store.Lookup(1, 1);
  ASSERT_TRUE(evidence.has_value());
  EXPECT_LE(evidence->n_eq, config.max_equivalent_n);
  // Rescaling preserves the learned mean.
  EXPECT_NEAR(evidence->k_eq / evidence->n_eq, 0.25, 1e-12);
}

TEST(FeedbackStoreTest, EvictsLeastObservedOldestFirst) {
  FeedbackStore store(SmallConfig());  // max_fingerprints = 2
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Observe(1, "a", 0.1, 0.5, 1).ok());
  }
  ASSERT_TRUE(store.Observe(2, "b", 0.1, 0.5, 1).ok());
  ASSERT_TRUE(store.Observe(3, "c", 0.1, 0.5, 1).ok());
  EXPECT_EQ(store.evictions_total(), 1u);
  EXPECT_EQ(store.fingerprints_tracked(), 2u);
  // Fingerprint 2 had the fewest observations (1 vs 3) and was older than
  // the incoming entry, so it is the deterministic victim.
  ASSERT_TRUE(store.Observe(1, "a", 0.1, 0.5, 1).ok());
  EXPECT_TRUE(store.Lookup(1, 1).has_value());
  ASSERT_TRUE(store.Observe(2, "b", 0.1, 0.5, 1).ok());
  EXPECT_EQ(store.evictions_total(), 2u);
}

TEST(FeedbackStoreTest, FaultSiteDropsObservationsAndBlocksApply) {
  fault::FaultInjector injector;
  injector.Arm(fault::sites::kLearningFeedbackApply,
               fault::FaultSpec::FirstN(2));
  FeedbackStore store;
  store.set_fault_injector(&injector);
  EXPECT_FALSE(store.CheckApply().ok());  // first probe fires
  EXPECT_FALSE(store.Observe(1, "q", 0.1, 0.5, 1).ok());
  EXPECT_EQ(store.dropped_total(), 1u);
  EXPECT_EQ(store.observations_total(), 0u);
  // The transient healed: both paths work again.
  EXPECT_TRUE(store.CheckApply().ok());
  EXPECT_TRUE(store.Observe(1, "q", 0.1, 0.5, 1).ok());
}

TEST(FeedbackStoreTest, ReportAndJsonAndMetrics) {
  FeedbackStore store;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Observe(0x2a, "{orders} :: o_total > 90", 0.05, 0.6, 7)
                    .ok());
  }
  const std::string report = store.ReportText();
  EXPECT_NE(report.find("learning feedback store: on, 1 fingerprints"),
            std::string::npos);
  EXPECT_NE(report.find("000000000000002a epoch=7 obs=3"), std::string::npos);
  EXPECT_NE(report.find("{orders} :: o_total > 90"), std::string::npos);
  const std::string json = store.ToJson();
  EXPECT_NE(json.find("\"fingerprints\":1"), std::string::npos);
  EXPECT_NE(json.find("\"0x000000000000002a\""), std::string::npos);

  obs::MetricsRegistry metrics;
  store.PublishMetrics(&metrics);
  store.PublishMetrics(&metrics);  // idempotent
  EXPECT_EQ(metrics.GetCounter("estimator.learned.observations")->value(), 3u);
  EXPECT_EQ(metrics.GetGauge("estimator.learned.fingerprints")->value(), 1.0);
}

}  // namespace
}  // namespace learn
}  // namespace robustqo
