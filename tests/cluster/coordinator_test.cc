#include "cluster/coordinator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "core/database.h"
#include "exec/agg_ops.h"
#include "exec/operator.h"
#include "exec/scan_ops.h"
#include "expr/expression.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/table.h"
#include "util/rng.h"

namespace robustqo {
namespace cluster {
namespace {

using expr::Col;
using expr::LitInt;
using expr::Lt;

std::unique_ptr<core::Database> MakeDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64},
                                   {"r_score", storage::DataType::kDouble}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < 2000; ++i) {
    table->AppendRow(
        {storage::Value::Int64(static_cast<int64_t>(i)),
         storage::Value::Int64(static_cast<int64_t>(rng.NextBounded(1000))),
         storage::Value::Double(rng.NextDouble())});
  }
  RQO_CHECK_MSG(db->catalog()->AddTable(std::move(table)).ok(),
                "table load failed");
  db->UpdateStatistics();
  return db;
}

std::string Csv(const storage::Table& table) {
  std::ostringstream out;
  RQO_CHECK_MSG(storage::WriteCsv(table, &out).ok(), "csv dump failed");
  return out.str();
}

exec::ExecContext MakeContext(core::Database* db) {
  exec::ExecContext ctx;
  ctx.catalog = db->catalog();
  ctx.cost_model = db->cost_model();
  return ctx;
}

ClusterConfig FourNodes() {
  ClusterConfig config;
  config.nodes = 4;
  config.enabled = true;
  return config;
}

// Every observable of a routed scan — rows, row order, and each cost-meter
// lane — must match the single-node operator byte for byte.
TEST(CoordinatorTest, RoutedScanIsByteIdenticalToSingleNode) {
  auto db = MakeDatabase();
  Coordinator coord(db.get(), FourNodes(), nullptr);
  coord.BeginWave(db->catalog()->data_epoch());

  exec::SeqScanOp scan("readings", Lt(Col("r_value"), LitInt(500)),
                       {"r_id", "r_value"});
  exec::ExecContext single = MakeContext(db.get());
  const storage::Table expected = scan.Run(&single).value();

  exec::ExecContext routed = MakeContext(db.get());
  RequestOutcome outcome;
  auto result = coord.Execute(&scan, &routed, /*request_seed=*/7, &outcome);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(outcome.routed);
  EXPECT_FALSE(outcome.fallback_local);
  EXPECT_EQ(outcome.rows_gathered, expected.num_rows());
  EXPECT_EQ(outcome.messages, 8u);  // 2 per node
  EXPECT_EQ(Csv(result.value()), Csv(expected));
  EXPECT_EQ(routed.meter.seq_tuples(), single.meter.seq_tuples());
  EXPECT_EQ(routed.meter.cpu_tuples(), single.meter.cpu_tuples());
  EXPECT_EQ(routed.meter.output_tuples(), single.meter.output_tuples());
  EXPECT_EQ(routed.meter.total_seconds(), single.meter.total_seconds());
}

TEST(CoordinatorTest, AggregatePushdownIsByteIdenticalToSingleNode) {
  auto db = MakeDatabase();
  Coordinator coord(db.get(), FourNodes(), nullptr);
  coord.BeginWave(db->catalog()->data_epoch());

  auto make_root = []() {
    auto scan = std::make_unique<exec::SeqScanOp>(
        "readings", Lt(Col("r_value"), LitInt(800)));
    std::vector<exec::AggSpec> aggs = {
        {exec::AggKind::kCount, "", "n"},
        {exec::AggKind::kSum, "r_value", "total"},
        {exec::AggKind::kAvg, "r_value", "mean"},
        {exec::AggKind::kMin, "r_value", "lo"},
        {exec::AggKind::kMax, "r_value", "hi"},
    };
    return std::make_unique<exec::ScalarAggregateOp>(std::move(scan),
                                                     std::move(aggs));
  };

  auto root = make_root();
  exec::ExecContext single = MakeContext(db.get());
  const storage::Table expected = root->Run(&single).value();

  exec::ExecContext routed = MakeContext(db.get());
  RequestOutcome outcome;
  auto result = coord.Execute(root.get(), &routed, 7, &outcome);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(outcome.routed);
  EXPECT_TRUE(outcome.pushdown);
  EXPECT_EQ(Csv(result.value()), Csv(expected));
  EXPECT_EQ(routed.meter.seq_tuples(), single.meter.seq_tuples());
  EXPECT_EQ(routed.meter.cpu_tuples(), single.meter.cpu_tuples());
  EXPECT_EQ(routed.meter.output_tuples(), single.meter.output_tuples());
  EXPECT_EQ(routed.meter.total_seconds(), single.meter.total_seconds());
  EXPECT_EQ(routed.aggregate_input_rows, single.aggregate_input_rows);
}

// SUM/AVG over a double column cannot be proven order-independent, so the
// push-down gate closes; the request still routes, gathers rows, and
// reduces exactly like the single-node operator.
TEST(CoordinatorTest, FloatSumRoutesWithoutPushdown) {
  auto db = MakeDatabase();
  Coordinator coord(db.get(), FourNodes(), nullptr);
  coord.BeginWave(db->catalog()->data_epoch());

  auto scan = std::make_unique<exec::SeqScanOp>(
      "readings", Lt(Col("r_value"), LitInt(800)));
  std::vector<exec::AggSpec> aggs = {{exec::AggKind::kSum, "r_score", "s"}};
  exec::ScalarAggregateOp root(std::move(scan), std::move(aggs));

  exec::ExecContext single = MakeContext(db.get());
  const storage::Table expected = root.Run(&single).value();

  exec::ExecContext routed = MakeContext(db.get());
  RequestOutcome outcome;
  auto result = coord.Execute(&root, &routed, 7, &outcome);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(outcome.routed);
  EXPECT_FALSE(outcome.pushdown);
  EXPECT_EQ(Csv(result.value()), Csv(expected));
  EXPECT_EQ(routed.meter.total_seconds(), single.meter.total_seconds());
}

TEST(CoordinatorTest, IneligibleRootsRunTheLocalPath) {
  auto db = MakeDatabase();
  Coordinator coord(db.get(), FourNodes(), nullptr);
  coord.BeginWave(db->catalog()->data_epoch());

  // An index access path is not a provable scatter-gather shape.
  exec::IndexRangeScanOp root("readings", {"r_value", 0.0, 100.0}, nullptr);
  exec::ExecContext single = MakeContext(db.get());
  const auto expected = root.Run(&single);

  exec::ExecContext routed = MakeContext(db.get());
  RequestOutcome outcome;
  auto result = coord.Execute(&root, &routed, 7, &outcome);
  EXPECT_FALSE(outcome.routed);
  EXPECT_EQ(result.ok(), expected.ok());
  if (result.ok()) EXPECT_EQ(Csv(result.value()), Csv(expected.value()));
}

TEST(CoordinatorTest, SnapshotMismatchRunsTheLocalPath) {
  auto db = MakeDatabase();
  Coordinator coord(db.get(), FourNodes(), nullptr);
  // No BeginWave: fragments were never built, so nothing can route.
  exec::SeqScanOp scan("readings", nullptr);
  exec::ExecContext ctx = MakeContext(db.get());
  RequestOutcome outcome;
  auto result = coord.Execute(&scan, &ctx, 7, &outcome);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(outcome.routed);
  EXPECT_EQ(result.value().num_rows(), 2000u);
}

TEST(CoordinatorTest, PartitionFaultReroutesToLocalExecution) {
  auto db = MakeDatabase();
  Coordinator coord(db.get(), FourNodes(), nullptr);
  coord.BeginWave(db->catalog()->data_epoch());

  exec::SeqScanOp scan("readings", Lt(Col("r_value"), LitInt(500)));
  exec::ExecContext single = MakeContext(db.get());
  const storage::Table expected = scan.Run(&single).value();

  fault::FaultInjector injector(7);
  injector.Arm(fault::sites::kNetPartition, fault::FaultSpec::Always());
  exec::ExecContext routed = MakeContext(db.get());
  routed.fault = &injector;
  RequestOutcome outcome;
  auto result = coord.Execute(&scan, &routed, 7, &outcome);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(outcome.fallback_local);
  EXPECT_GT(outcome.reroutes, 0u);
  EXPECT_EQ(Csv(result.value()), Csv(expected));
  EXPECT_EQ(routed.meter.total_seconds(), single.meter.total_seconds());
}

TEST(CoordinatorTest, PartitionFaultInStrictModeFailsTyped) {
  auto db = MakeDatabase();
  ClusterConfig config = FourNodes();
  config.strict = true;
  Coordinator coord(db.get(), config, nullptr);
  coord.BeginWave(db->catalog()->data_epoch());

  exec::SeqScanOp scan("readings", nullptr);
  fault::FaultInjector injector(7);
  injector.Arm(fault::sites::kNetPartition, fault::FaultSpec::Always());
  exec::ExecContext ctx = MakeContext(db.get());
  ctx.fault = &injector;
  RequestOutcome outcome;
  auto result = coord.Execute(&scan, &ctx, 7, &outcome);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(CoordinatorTest, NetLagFaultChargesTheMeter) {
  auto db = MakeDatabase();
  Coordinator coord(db.get(), FourNodes(), nullptr);
  coord.BeginWave(db->catalog()->data_epoch());

  exec::SeqScanOp scan("readings", nullptr);
  exec::ExecContext single = MakeContext(db.get());
  const storage::Table expected = scan.Run(&single).value();

  fault::FaultInjector injector(7);
  fault::FaultSpec lag = fault::FaultSpec::Always();
  lag.stall_seconds = 0.25;
  injector.Arm(fault::sites::kNetLag, lag);
  exec::ExecContext routed = MakeContext(db.get());
  routed.fault = &injector;
  RequestOutcome outcome;
  auto result = coord.Execute(&scan, &routed, 7, &outcome);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Same answer, but the injected wire stalls are on the clock.
  EXPECT_EQ(Csv(result.value()), Csv(expected));
  EXPECT_GT(outcome.injected_lag_seconds, 0.0);
  EXPECT_DOUBLE_EQ(routed.meter.total_seconds(),
                   single.meter.total_seconds() +
                       outcome.injected_lag_seconds);
}

TEST(CoordinatorTest, StaleReplicaDetectedAndRerouted) {
  auto db = MakeDatabase();
  db->fault_injector()->Arm(fault::sites::kReplicaStaleStats,
                            fault::FaultSpec::Always());
  Coordinator coord(db.get(), FourNodes(), nullptr);
  coord.BeginWave(db->catalog()->data_epoch());
  EXPECT_TRUE(coord.AnyNodeStale());

  exec::SeqScanOp scan("readings", nullptr);
  exec::ExecContext ctx = MakeContext(db.get());
  RequestOutcome outcome;
  auto result = coord.Execute(&scan, &ctx, 7, &outcome);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(outcome.fallback_local);
  EXPECT_GT(outcome.stale_detected, 0u);
  EXPECT_EQ(result.value().num_rows(), 2000u);

  // Strict mode degrades typed instead.
  ClusterConfig strict_config = FourNodes();
  strict_config.strict = true;
  Coordinator strict(db.get(), strict_config, nullptr);
  strict.BeginWave(db->catalog()->data_epoch());
  RequestOutcome strict_outcome;
  exec::ExecContext strict_ctx = MakeContext(db.get());
  auto strict_result = strict.Execute(&scan, &strict_ctx, 7, &strict_outcome);
  ASSERT_FALSE(strict_result.ok());
  EXPECT_EQ(strict_result.status().code(), StatusCode::kUnavailable);

  // Disarm: the next wave's sync heals every node.
  db->fault_injector()->Disarm(fault::sites::kReplicaStaleStats);
  coord.NoteDrift();
  coord.BeginWave(db->catalog()->data_epoch());
  EXPECT_FALSE(coord.AnyNodeStale());
}

TEST(CoordinatorTest, ReportAndMetricsReflectAccumulatedOutcomes) {
  auto db = MakeDatabase();
  Coordinator coord(db.get(), FourNodes(), nullptr);
  coord.BeginWave(db->catalog()->data_epoch());

  exec::SeqScanOp scan("readings", Lt(Col("r_value"), LitInt(500)));
  exec::ExecContext ctx = MakeContext(db.get());
  RequestOutcome outcome;
  ASSERT_TRUE(coord.Execute(&scan, &ctx, 7, &outcome).ok());
  coord.Accumulate(outcome);

  const std::string report = coord.ReportText();
  EXPECT_NE(report.find("cluster: 4 nodes"), std::string::npos) << report;
  EXPECT_NE(report.find("requests: routed=1"), std::string::npos) << report;
  EXPECT_NE(report.find("node 0:"), std::string::npos) << report;

  obs::MetricsRegistry metrics;
  coord.PublishMetrics(&metrics);
  EXPECT_EQ(metrics.GetGauge("cluster.nodes")->value(), 4.0);
  EXPECT_EQ(metrics.GetCounter("cluster.requests.routed")->value(), 1u);
  // Publishing is idempotent: counters sync, never double.
  coord.PublishMetrics(&metrics);
  EXPECT_EQ(metrics.GetCounter("cluster.requests.routed")->value(), 1u);
}

TEST(CoordinatorTest, NodesFromEnvParsesAndClamps) {
  ::unsetenv("RQO_NODES");
  EXPECT_EQ(NodesFromEnv(), 1u);
  ::setenv("RQO_NODES", "4", 1);
  EXPECT_EQ(NodesFromEnv(), 4u);
  ::setenv("RQO_NODES", "0", 1);
  EXPECT_EQ(NodesFromEnv(), 1u);
  ::setenv("RQO_NODES", "banana", 1);
  EXPECT_EQ(NodesFromEnv(), 1u);
  ::unsetenv("RQO_NODES");
}

}  // namespace
}  // namespace cluster
}  // namespace robustqo
