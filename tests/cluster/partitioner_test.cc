#include "cluster/partitioner.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"

namespace robustqo {
namespace cluster {
namespace {

using storage::Catalog;
using storage::DataType;
using storage::Rid;
using storage::Schema;
using storage::Table;
using storage::Value;

std::unique_ptr<Table> MakeTable(const std::string& name, uint64_t rows) {
  auto t = std::make_unique<Table>(
      name, Schema({{"id", DataType::kInt64}, {"v", DataType::kInt64}}));
  Rng rng(99);
  for (uint64_t i = 0; i < rows; ++i) {
    t->AppendRow({Value::Int64(static_cast<int64_t>(i)),
                  Value::Int64(static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  return t;
}

TEST(HashPartitionerTest, NodeOfIsPureAndInRange) {
  HashPartitioner p(4, 42);
  for (Rid rid = 0; rid < 500; ++rid) {
    const size_t node = p.NodeOf("t", rid);
    EXPECT_LT(node, 4u);
    EXPECT_EQ(node, p.NodeOf("t", rid)) << "rid=" << rid;
  }
}

TEST(HashPartitionerTest, SingleNodeOwnsEverything) {
  HashPartitioner p(1, 42);
  for (Rid rid = 0; rid < 100; ++rid) EXPECT_EQ(p.NodeOf("t", rid), 0u);
}

TEST(HashPartitionerTest, AssignmentSpreadsAcrossNodesAndTables) {
  HashPartitioner p(4, 42);
  std::set<size_t> seen;
  for (Rid rid = 0; rid < 200; ++rid) seen.insert(p.NodeOf("t", rid));
  EXPECT_EQ(seen.size(), 4u) << "200 rows should hit all 4 nodes";
  // Different tables get different layouts for the same RID stream.
  bool differs = false;
  for (Rid rid = 0; rid < 200 && !differs; ++rid) {
    differs = p.NodeOf("a", rid) != p.NodeOf("b", rid);
  }
  EXPECT_TRUE(differs);
}

TEST(HashPartitionerTest, SeedChangesLayoutNodeCountPreservesPurity) {
  HashPartitioner a(4, 1);
  HashPartitioner b(4, 2);
  bool differs = false;
  for (Rid rid = 0; rid < 200 && !differs; ++rid) {
    differs = a.NodeOf("t", rid) != b.NodeOf("t", rid);
  }
  EXPECT_TRUE(differs);
}

TEST(HashPartitionerTest, RebuildPartitionsEveryVisibleRowExactlyOnce) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t", 1000)).ok());
  HashPartitioner p(4, 42);
  EXPECT_EQ(p.build_epoch(), UINT64_MAX);
  ASSERT_TRUE(p.Rebuild(catalog, catalog.data_epoch()));

  const Table* source = catalog.GetTable("t");
  std::set<Rid> covered;
  uint64_t total = 0;
  for (size_t node = 0; node < 4; ++node) {
    const TableFragment* frag = p.FragmentOf(node, "t");
    ASSERT_NE(frag, nullptr);
    ASSERT_EQ(frag->rows->num_rows(), frag->global_rids.size());
    for (size_t i = 0; i < frag->global_rids.size(); ++i) {
      const Rid rid = frag->global_rids[i];
      // Strictly increasing RIDs within a fragment (merge precondition).
      if (i > 0) EXPECT_GT(rid, frag->global_rids[i - 1]);
      EXPECT_EQ(p.NodeOf("t", rid), node);
      EXPECT_TRUE(covered.insert(rid).second) << "rid owned twice";
      // The fragment row is a faithful copy of the source row.
      EXPECT_EQ(frag->rows->ValueAt(i, 0).AsInt64(),
                source->ValueAt(rid, 0).AsInt64());
      ++total;
    }
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(p.total_fragment_rows(), 1000u);
  EXPECT_EQ(p.build_epoch(), catalog.data_epoch());
}

TEST(HashPartitionerTest, RebuildIsIdempotentPerEpoch) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t", 200)).ok());
  HashPartitioner p(2, 42);
  EXPECT_TRUE(p.Rebuild(catalog, catalog.data_epoch()));
  EXPECT_EQ(p.rebuilds(), 1u);
  // Same epoch: no-op.
  EXPECT_FALSE(p.Rebuild(catalog, catalog.data_epoch()));
  EXPECT_EQ(p.rebuilds(), 1u);
}

TEST(HashPartitionerTest, RebuildsAreByteIdenticalAcrossInstances) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t", 500)).ok());
  HashPartitioner a(3, 42);
  HashPartitioner b(3, 42);
  ASSERT_TRUE(a.Rebuild(catalog, catalog.data_epoch()));
  ASSERT_TRUE(b.Rebuild(catalog, catalog.data_epoch()));
  for (size_t node = 0; node < 3; ++node) {
    const TableFragment* fa = a.FragmentOf(node, "t");
    const TableFragment* fb = b.FragmentOf(node, "t");
    ASSERT_NE(fa, nullptr);
    ASSERT_NE(fb, nullptr);
    EXPECT_EQ(fa->global_rids, fb->global_rids);
    EXPECT_EQ(fa->rows->VisibleChecksum(), fb->rows->VisibleChecksum());
  }
}

TEST(HashPartitionerTest, UnknownTableAndPreBuildLookupsReturnNull) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t", 10)).ok());
  HashPartitioner p(2, 42);
  EXPECT_EQ(p.FragmentOf(0, "t"), nullptr);  // before first Rebuild
  ASSERT_TRUE(p.Rebuild(catalog, catalog.data_epoch()));
  EXPECT_EQ(p.FragmentOf(0, "missing"), nullptr);
  EXPECT_NE(p.FragmentOf(0, "t"), nullptr);
}

}  // namespace
}  // namespace cluster
}  // namespace robustqo
