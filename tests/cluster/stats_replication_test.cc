#include "cluster/stats_replication.h"

#include <gtest/gtest.h>

#include <memory>

#include "cluster/node.h"
#include "core/database.h"
#include "fault/fault_injector.h"
#include "learning/feedback_store.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"

namespace robustqo {
namespace cluster {
namespace {

std::unique_ptr<core::Database> MakeDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < 500; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  RQO_CHECK_MSG(db->catalog()->AddTable(std::move(table)).ok(),
                "table load failed");
  db->UpdateStatistics();
  return db;
}

TEST(StatsReplicationTest, FirstSyncShipsEverythingAndRecordsEpoch) {
  auto db = MakeDatabase();
  Node node(0);
  const SyncResult r = SyncNodeStatistics(&node, *db->statistics(),
                                          /*feedback=*/nullptr,
                                          /*injector=*/nullptr,
                                          /*force=*/false);
  EXPECT_TRUE(r.attempted);
  EXPECT_FALSE(r.stale);
  EXPECT_GT(r.shipped, 0u);
  EXPECT_EQ(r.skipped, 0u);
  EXPECT_EQ(node.synced_epoch(), db->statistics()->epoch());
  EXPECT_EQ(node.artifacts(), r.shipped);
  EXPECT_FALSE(node.samples()->empty());
}

TEST(StatsReplicationTest, FreshNodeIsANoOp) {
  auto db = MakeDatabase();
  Node node(0);
  SyncNodeStatistics(&node, *db->statistics(), nullptr, nullptr, false);
  const SyncResult r =
      SyncNodeStatistics(&node, *db->statistics(), nullptr, nullptr, false);
  EXPECT_FALSE(r.attempted);
  EXPECT_EQ(r.shipped + r.skipped, 0u);
}

TEST(StatsReplicationTest, ChecksumMatchSkipsUnchangedArtifacts) {
  auto db = MakeDatabase();
  Node node(0);
  const SyncResult first =
      SyncNodeStatistics(&node, *db->statistics(), nullptr, nullptr, false);
  // Re-open the epoch gap without changing any artifact content: the next
  // sync must recognize every replica copy by checksum and ship nothing.
  node.set_synced_epoch(UINT64_MAX);
  const SyncResult second =
      SyncNodeStatistics(&node, *db->statistics(), nullptr, nullptr, false);
  EXPECT_TRUE(second.attempted);
  EXPECT_EQ(second.shipped, 0u);
  EXPECT_EQ(second.skipped, first.shipped);
  EXPECT_EQ(node.synced_epoch(), db->statistics()->epoch());
}

TEST(StatsReplicationTest, ForceReshipsEvenOnChecksumMatch) {
  auto db = MakeDatabase();
  Node node(0);
  const SyncResult first =
      SyncNodeStatistics(&node, *db->statistics(), nullptr, nullptr, false);
  node.set_synced_epoch(UINT64_MAX);
  const SyncResult forced =
      SyncNodeStatistics(&node, *db->statistics(), nullptr, nullptr,
                         /*force=*/true);
  EXPECT_TRUE(forced.attempted);
  EXPECT_EQ(forced.shipped, first.shipped);
  EXPECT_EQ(forced.skipped, 0u);
}

TEST(StatsReplicationTest, StaleStatsFaultPinsNodeOnOldEpochUntilHealed) {
  auto db = MakeDatabase();
  Node node(0);
  fault::FaultInjector injector(7);
  injector.Arm(fault::sites::kReplicaStaleStats, fault::FaultSpec::FirstN(1));

  const SyncResult stale =
      SyncNodeStatistics(&node, *db->statistics(), nullptr, &injector, false);
  EXPECT_TRUE(stale.attempted);
  EXPECT_TRUE(stale.stale);
  EXPECT_EQ(stale.shipped, 0u);
  EXPECT_EQ(node.synced_epoch(), UINT64_MAX);
  EXPECT_TRUE(node.stale());
  EXPECT_EQ(node.stale_events, 1u);

  // The FirstN(1) spec is exhausted: the next sync heals the replica.
  const SyncResult healed =
      SyncNodeStatistics(&node, *db->statistics(), nullptr, &injector, false);
  EXPECT_TRUE(healed.attempted);
  EXPECT_FALSE(healed.stale);
  EXPECT_GT(healed.shipped, 0u);
  EXPECT_FALSE(node.stale());
  EXPECT_EQ(node.synced_epoch(), db->statistics()->epoch());
}

TEST(StatsReplicationTest, FeedbackEvidenceReplicatesAsDeltas) {
  auto db = MakeDatabase();
  learn::FeedbackStore store{learn::LearningConfig{}};
  ASSERT_TRUE(store
                  .Observe(/*fingerprint=*/0xabcdef, "seq",
                           /*estimated_selectivity=*/0.5,
                           /*actual_selectivity=*/0.25,
                           db->statistics()->epoch())
                  .ok());
  Node node(0);
  const SyncResult first =
      SyncNodeStatistics(&node, *db->statistics(), &store, nullptr, false);
  EXPECT_EQ(first.feedback_shipped, 1u);
  EXPECT_EQ(node.feedback_entries(), 1u);

  // Unchanged evidence is a delta of zero on the next attempted sync.
  node.set_synced_epoch(UINT64_MAX);
  const SyncResult second =
      SyncNodeStatistics(&node, *db->statistics(), &store, nullptr, false);
  EXPECT_EQ(second.feedback_shipped, 0u);

  // New evidence ships as a delta.
  ASSERT_TRUE(
      store.Observe(0xabcdef, "seq", 0.5, 0.30, db->statistics()->epoch())
          .ok());
  node.set_synced_epoch(UINT64_MAX);
  const SyncResult third =
      SyncNodeStatistics(&node, *db->statistics(), &store, nullptr, false);
  EXPECT_EQ(third.feedback_shipped, 1u);
  EXPECT_EQ(node.feedback_entries(), 1u);
}

}  // namespace
}  // namespace cluster
}  // namespace robustqo
