#include "cluster/sim_network.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace cluster {
namespace {

TEST(SimNetworkTest, LagIsPureAndBounded) {
  SimNetworkConfig config;
  config.seed = 7;
  SimNetwork net(config);
  for (size_t node = 0; node < 4; ++node) {
    for (uint64_t msg = 0; msg < 8; ++msg) {
      const double lag = net.LagSeconds(1234, node, msg);
      EXPECT_GE(lag, config.lag_min_seconds);
      EXPECT_LT(lag, config.lag_max_seconds);
      EXPECT_EQ(lag, net.LagSeconds(1234, node, msg));
    }
  }
}

TEST(SimNetworkTest, DistinctLinksAndRequestsDrawIndependentStreams) {
  SimNetwork net(SimNetworkConfig{});
  // Not all links can share a lag; not all requests can share a link lag.
  EXPECT_NE(net.LagSeconds(1, 0, 0), net.LagSeconds(1, 1, 0));
  EXPECT_NE(net.LagSeconds(1, 0, 0), net.LagSeconds(2, 0, 0));
  EXPECT_NE(net.LagSeconds(1, 0, 0), net.LagSeconds(1, 0, 1));
}

TEST(SimNetworkTest, ScatterGatherAccountsTwoMessagesPerNode) {
  SimNetwork net(SimNetworkConfig{});
  const NetDelivery d = net.ScatterGather(42, 4);
  EXPECT_EQ(d.messages, 8u);
  EXPECT_GT(d.total_lag_seconds, 0.0);
  // The critical path is one node's round trip: no longer than the sum of
  // all lags, no shorter than the mean round trip.
  EXPECT_LE(d.makespan_seconds, d.total_lag_seconds);
  EXPECT_GE(d.makespan_seconds,
            d.total_lag_seconds / 4.0 - 1e-12);
}

TEST(SimNetworkTest, ScatterGatherIsDeterministic) {
  SimNetworkConfig config;
  config.seed = 99;
  SimNetwork a(config);
  SimNetwork b(config);
  const NetDelivery da = a.ScatterGather(77, 3);
  const NetDelivery db = b.ScatterGather(77, 3);
  EXPECT_EQ(da.messages, db.messages);
  EXPECT_EQ(da.total_lag_seconds, db.total_lag_seconds);
  EXPECT_EQ(da.makespan_seconds, db.makespan_seconds);
}

TEST(SimNetworkTest, NetworkSeedShapesTheDraws) {
  SimNetworkConfig a_config;
  a_config.seed = 1;
  SimNetworkConfig b_config;
  b_config.seed = 2;
  SimNetwork a(a_config);
  SimNetwork b(b_config);
  EXPECT_NE(a.ScatterGather(42, 4).total_lag_seconds,
            b.ScatterGather(42, 4).total_lag_seconds);
}

}  // namespace
}  // namespace cluster
}  // namespace robustqo
