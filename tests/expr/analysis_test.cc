#include "expr/analysis.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace expr {
namespace {

using storage::Value;

TEST(SplitConjunctsTest, FlattensNestedAnds) {
  auto e = And({Eq(Col("a"), LitInt(1)),
                And({Eq(Col("b"), LitInt(2)), Eq(Col("c"), LitInt(3))})});
  EXPECT_EQ(SplitConjuncts(e).size(), 3u);
}

TEST(SplitConjunctsTest, NonAndIsSingleton) {
  EXPECT_EQ(SplitConjuncts(Eq(Col("a"), LitInt(1))).size(), 1u);
  EXPECT_EQ(SplitConjuncts(Or({Eq(Col("a"), LitInt(1))})).size(), 1u);
}

TEST(SplitConjunctsTest, EmptyAnd) {
  EXPECT_TRUE(SplitConjuncts(And({})).empty());
}

TEST(ConstantFoldingTest, DetectsConstants) {
  EXPECT_TRUE(IsConstant(*LitInt(5)));
  EXPECT_TRUE(IsConstant(*Arith(ArithOp::kAdd, LitInt(2), LitInt(3))));
  EXPECT_FALSE(IsConstant(*Col("a")));
  EXPECT_FALSE(IsConstant(*Arith(ArithOp::kAdd, Col("a"), LitInt(3))));
}

TEST(ConstantFoldingTest, FoldsArithmetic) {
  EXPECT_EQ(FoldConstant(*Arith(ArithOp::kAdd, LitInt(2), LitInt(3))).AsInt64(),
            5);
  EXPECT_EQ(
      FoldConstant(*Arith(ArithOp::kMul, LitDouble(2.0), LitDouble(3.5)))
          .AsDouble(),
      7.0);
  // Date + days stays a date (the Experiment-1 template's '+?' shift).
  storage::Value v =
      FoldConstant(*Arith(ArithOp::kAdd, LitDate(100), LitInt(30)));
  EXPECT_EQ(v.type(), storage::DataType::kDate);
  EXPECT_EQ(v.AsInt64(), 130);
}

TEST(ColumnRangeTest, ComparisonOperators) {
  auto le = TryExtractColumnRange(Le(Col("a"), LitInt(10)));
  ASSERT_TRUE(le.has_value());
  EXPECT_EQ(le->column, "a");
  EXPECT_FALSE(le->lo.has_value());
  EXPECT_EQ(*le->hi, 10.0);

  auto ge = TryExtractColumnRange(Ge(Col("a"), LitInt(3)));
  ASSERT_TRUE(ge.has_value());
  EXPECT_EQ(*ge->lo, 3.0);
  EXPECT_FALSE(ge->hi.has_value());

  auto eq = TryExtractColumnRange(Eq(Col("a"), LitInt(7)));
  ASSERT_TRUE(eq.has_value());
  EXPECT_TRUE(eq->IsPoint());
  EXPECT_EQ(*eq->lo, 7.0);
}

TEST(ColumnRangeTest, StrictInequalitiesNudgeBounds) {
  auto lt = TryExtractColumnRange(Lt(Col("a"), LitInt(10)));
  ASSERT_TRUE(lt.has_value());
  EXPECT_LT(*lt->hi, 10.0);
  EXPECT_GT(*lt->hi, 9.0);
  auto gt = TryExtractColumnRange(Gt(Col("a"), LitInt(10)));
  ASSERT_TRUE(gt.has_value());
  EXPECT_GT(*gt->lo, 10.0);
  EXPECT_LT(*gt->lo, 11.0);
}

TEST(ColumnRangeTest, FlippedOperandOrder) {
  // 10 >= a  is  a <= 10.
  auto r = TryExtractColumnRange(Ge(LitInt(10), Col("a")));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->column, "a");
  EXPECT_EQ(*r->hi, 10.0);
  EXPECT_FALSE(r->lo.has_value());
}

TEST(ColumnRangeTest, BetweenExtraction) {
  auto r = TryExtractColumnRange(
      Between(Col("d"), Value::Date(100), Value::Date(200)));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->column, "d");
  EXPECT_EQ(*r->lo, 100.0);
  EXPECT_EQ(*r->hi, 200.0);
  EXPECT_FALSE(r->IsPoint());
}

TEST(ColumnRangeTest, ConstantFoldedBound) {
  // a <= 100 + 30 is sargable after folding.
  auto r = TryExtractColumnRange(
      Le(Col("a"), Arith(ArithOp::kAdd, LitInt(100), LitInt(30))));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r->hi, 130.0);
}

TEST(ColumnRangeTest, NonSargableShapes) {
  EXPECT_FALSE(TryExtractColumnRange(Ne(Col("a"), LitInt(1))).has_value());
  EXPECT_FALSE(
      TryExtractColumnRange(Eq(Col("a"), Col("b"))).has_value());
  EXPECT_FALSE(
      TryExtractColumnRange(Eq(Col("s"), LitString("x"))).has_value());
  EXPECT_FALSE(TryExtractColumnRange(
                   Or({Eq(Col("a"), LitInt(1)), Eq(Col("a"), LitInt(2))}))
                   .has_value());
  // Arithmetic on the column side is not a bare column.
  EXPECT_FALSE(TryExtractColumnRange(
                   Le(Arith(ArithOp::kAdd, Col("a"), LitInt(1)), LitInt(5)))
                   .has_value());
}

TEST(ExtractColumnRangesTest, SplitsSargableAndResidual) {
  auto e = And({Between(Col("a"), Value::Int64(1), Value::Int64(5)),
                StringContains(Col("s"), "x"), Ge(Col("b"), LitDouble(0.5))});
  std::vector<ExprPtr> residual;
  auto ranges = ExtractColumnRanges(e, &residual);
  EXPECT_EQ(ranges.size(), 2u);
  ASSERT_EQ(residual.size(), 1u);
  EXPECT_EQ(residual[0]->kind(), ExprKind::kStringContains);
}

TEST(ExtractColumnRangesTest, NullSafeOnNoResidualSink) {
  auto e = And({Eq(Col("a"), LitInt(1)), StringContains(Col("s"), "x")});
  EXPECT_EQ(ExtractColumnRanges(e).size(), 1u);
}

}  // namespace
}  // namespace expr
}  // namespace robustqo
