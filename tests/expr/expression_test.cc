#include "expr/expression.h"

#include <gtest/gtest.h>

#include "storage/table.h"

namespace robustqo {
namespace expr {
namespace {

using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

class ExpressionTest : public ::testing::Test {
 protected:
  ExpressionTest()
      : table_("t", Schema({{"a", DataType::kInt64},
                            {"b", DataType::kDouble},
                            {"s", DataType::kString},
                            {"d", DataType::kDate}})) {
    table_.AppendRow({Value::Int64(10), Value::Double(1.5),
                      Value::String("hello world"), Value::Date(100)});
    table_.AppendRow({Value::Int64(20), Value::Double(2.5),
                      Value::String("goodbye"), Value::Date(200)});
    table_.AppendRow({Value::Int64(30), Value::Double(-1.0),
                      Value::String(""), Value::Date(300)});
  }

  bool Eval(const ExprPtr& e, storage::Rid rid) {
    return e->EvaluateBool(table_, rid);
  }

  Table table_;
};

TEST_F(ExpressionTest, ColumnRefReadsCell) {
  EXPECT_EQ(Col("a")->Evaluate(table_, 1).AsInt64(), 20);
  EXPECT_EQ(Col("s")->Evaluate(table_, 0).AsString(), "hello world");
}

TEST_F(ExpressionTest, LiteralIgnoresRow) {
  EXPECT_EQ(LitInt(7)->Evaluate(table_, 2).AsInt64(), 7);
  EXPECT_EQ(LitDouble(0.5)->Evaluate(table_, 0).AsDouble(), 0.5);
  EXPECT_EQ(LitDate(42)->Evaluate(table_, 0).type(), DataType::kDate);
}

TEST_F(ExpressionTest, ComparisonOperators) {
  EXPECT_TRUE(Eval(Eq(Col("a"), LitInt(10)), 0));
  EXPECT_FALSE(Eval(Eq(Col("a"), LitInt(10)), 1));
  EXPECT_TRUE(Eval(Ne(Col("a"), LitInt(10)), 1));
  EXPECT_TRUE(Eval(Lt(Col("a"), LitInt(15)), 0));
  EXPECT_TRUE(Eval(Le(Col("a"), LitInt(10)), 0));
  EXPECT_TRUE(Eval(Gt(Col("a"), LitInt(25)), 2));
  EXPECT_TRUE(Eval(Ge(Col("a"), LitInt(30)), 2));
  EXPECT_FALSE(Eval(Gt(Col("a"), LitInt(30)), 2));
}

TEST_F(ExpressionTest, ComparisonAcrossNumericTypes) {
  EXPECT_TRUE(Eval(Gt(Col("b"), LitInt(1)), 0));       // 1.5 > 1
  EXPECT_TRUE(Eval(Lt(Col("a"), LitDouble(10.5)), 0));  // 10 < 10.5
  EXPECT_TRUE(Eval(Eq(Col("d"), LitInt(100)), 0));      // date vs int
}

TEST_F(ExpressionTest, StringComparison) {
  EXPECT_TRUE(Eval(Eq(Col("s"), LitString("goodbye")), 1));
  EXPECT_TRUE(Eval(Lt(Col("s"), LitString("zzz")), 0));
}

TEST_F(ExpressionTest, BetweenInclusive) {
  auto e = Between(Col("a"), Value::Int64(10), Value::Int64(20));
  EXPECT_TRUE(Eval(e, 0));
  EXPECT_TRUE(Eval(e, 1));
  EXPECT_FALSE(Eval(e, 2));
}

TEST_F(ExpressionTest, BetweenOnDates) {
  auto e = Between(Col("d"), Value::Date(150), Value::Date(250));
  EXPECT_FALSE(Eval(e, 0));
  EXPECT_TRUE(Eval(e, 1));
  EXPECT_FALSE(Eval(e, 2));
}

TEST_F(ExpressionTest, BooleanConnectives) {
  auto both = And({Gt(Col("a"), LitInt(5)), Lt(Col("a"), LitInt(15))});
  EXPECT_TRUE(Eval(both, 0));
  EXPECT_FALSE(Eval(both, 1));
  auto either = Or({Eq(Col("a"), LitInt(10)), Eq(Col("a"), LitInt(20))});
  EXPECT_TRUE(Eval(either, 0));
  EXPECT_TRUE(Eval(either, 1));
  EXPECT_FALSE(Eval(either, 2));
  EXPECT_TRUE(Eval(Not(Eq(Col("a"), LitInt(99))), 0));
}

TEST_F(ExpressionTest, EmptyConnectives) {
  EXPECT_TRUE(Eval(And({}), 0));
  EXPECT_FALSE(Eval(Or({}), 0));
}

TEST_F(ExpressionTest, NestedConnectives) {
  auto e = And({Or({Eq(Col("a"), LitInt(10)), Eq(Col("a"), LitInt(30))}),
                Not(Eq(Col("s"), LitString("")))});
  EXPECT_TRUE(Eval(e, 0));
  EXPECT_FALSE(Eval(e, 1));  // Or fails
  EXPECT_FALSE(Eval(e, 2));  // Not fails
}

TEST_F(ExpressionTest, ArithmeticInteger) {
  EXPECT_EQ(Arith(ArithOp::kAdd, Col("a"), LitInt(5))
                ->Evaluate(table_, 0)
                .AsInt64(),
            15);
  EXPECT_EQ(Arith(ArithOp::kSub, Col("a"), LitInt(5))
                ->Evaluate(table_, 1)
                .AsInt64(),
            15);
  EXPECT_EQ(Arith(ArithOp::kMul, Col("a"), LitInt(3))
                ->Evaluate(table_, 0)
                .AsInt64(),
            30);
}

TEST_F(ExpressionTest, ArithmeticDivisionWidens) {
  storage::Value v =
      Arith(ArithOp::kDiv, Col("a"), LitInt(4))->Evaluate(table_, 0);
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST_F(ExpressionTest, DatePlusIntStaysDate) {
  storage::Value v =
      Arith(ArithOp::kAdd, Col("d"), LitInt(30))->Evaluate(table_, 0);
  EXPECT_EQ(v.type(), DataType::kDate);
  EXPECT_EQ(v.AsInt64(), 130);
}

TEST_F(ExpressionTest, ArithmeticInPredicate) {
  // a + 5 > b * 10  ->  15 > 15 false for row 0.
  auto e = Gt(Arith(ArithOp::kAdd, Col("a"), LitInt(5)),
              Arith(ArithOp::kMul, Col("b"), LitInt(10)));
  EXPECT_FALSE(Eval(e, 0));
  EXPECT_FALSE(Eval(e, 1));  // 25 > 25 false
  EXPECT_TRUE(Eval(e, 2));   // 35 > -10
}

TEST_F(ExpressionTest, StringContains) {
  EXPECT_TRUE(Eval(StringContains(Col("s"), "lo wo"), 0));
  EXPECT_FALSE(Eval(StringContains(Col("s"), "lo wo"), 1));
  EXPECT_TRUE(Eval(StringContains(Col("s"), ""), 2));
}

TEST_F(ExpressionTest, TruthinessOfScalars) {
  EXPECT_TRUE(LitInt(1)->EvaluateBool(table_, 0));
  EXPECT_FALSE(LitInt(0)->EvaluateBool(table_, 0));
  EXPECT_FALSE(LitString("")->EvaluateBool(table_, 0));
  EXPECT_TRUE(LitString("x")->EvaluateBool(table_, 0));
}

TEST_F(ExpressionTest, CollectColumns) {
  std::set<std::string> cols;
  And({Gt(Col("a"), LitInt(1)), StringContains(Col("s"), "x"),
       Between(Col("d"), Value::Date(0), Value::Date(9))})
      ->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<std::string>{"a", "s", "d"}));
}

TEST_F(ExpressionTest, ToStringRendering) {
  EXPECT_EQ(Eq(Col("a"), LitInt(5))->ToString(), "(a = 5)");
  EXPECT_EQ(And({})->ToString(), "TRUE");
  EXPECT_EQ(Or({})->ToString(), "FALSE");
  EXPECT_EQ(Not(Lt(Col("a"), LitInt(3)))->ToString(), "(NOT (a < 3))");
  EXPECT_EQ(StringContains(Col("s"), "ab")->ToString(), "(s LIKE '%ab%')");
}

TEST_F(ExpressionTest, CountSatisfying) {
  EXPECT_EQ(CountSatisfying(*Gt(Col("a"), LitInt(15)), table_), 2u);
  EXPECT_EQ(CountSatisfying(*And({}), table_), 3u);
  EXPECT_EQ(CountSatisfying(*Or({}), table_), 0u);
}

}  // namespace
}  // namespace expr
}  // namespace robustqo
