#include "workload/experiment_harness.h"

#include <gtest/gtest.h>

#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

namespace robustqo {
namespace workload {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new core::Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static core::Database* db_;
};

core::Database* HarnessTest::db_ = nullptr;

TEST_F(HarnessTest, PaperSettingsListThresholdsAndBaseline) {
  auto settings = PaperSettings();
  ASSERT_EQ(settings.size(), 6u);
  EXPECT_EQ(settings[0].label, "T=5%");
  EXPECT_EQ(settings[5].kind, core::EstimatorKind::kHistogram);
}

TEST_F(HarnessTest, SweepProducesCompleteResult) {
  SingleTableScenario scenario;
  QuerySweepExperiment experiment(
      db_,
      [&](double p) { return scenario.MakeQuery(p); },
      [&](double p) { return scenario.TrueSelectivity(*db_->catalog(), p); });
  SweepConfig config;
  config.params = {60, 75, 92};
  config.repetitions = 3;
  config.settings = {
      {"T=50%", core::EstimatorKind::kRobustSample, 0.50},
      {"Histograms", core::EstimatorKind::kHistogram, 0.0},
  };
  SweepResult result = experiment.Run(config);

  ASSERT_EQ(result.params.size(), 3u);
  ASSERT_EQ(result.true_selectivity.size(), 3u);
  EXPECT_GT(result.true_selectivity[0], result.true_selectivity[2]);
  ASSERT_EQ(result.mean_by_point.size(), 3u);
  for (const auto& point : result.mean_by_point) {
    ASSERT_EQ(point.size(), 2u);
    for (const auto& [label, seconds] : point) {
      EXPECT_GT(seconds, 0.0) << label;
    }
  }
  ASSERT_EQ(result.overall.size(), 2u);
  for (const auto& [label, agg] : result.overall) {
    EXPECT_GT(agg.mean_seconds, 0.0);
    EXPECT_GE(agg.std_dev_seconds, 0.0);
    // p95 is a valid upper-tail statistic: at least the mean minus a
    // std-dev, never negative.
    EXPECT_GT(agg.p95_seconds, 0.0);
    EXPECT_GE(agg.p95_seconds + 1e-12,
              agg.mean_seconds - agg.std_dev_seconds);
    EXPECT_FALSE(agg.plan_counts.empty());
  }
}

TEST_F(HarnessTest, HistogramSettingIsDeterministicAcrossReps) {
  SingleTableScenario scenario;
  QuerySweepExperiment experiment(
      db_,
      [&](double p) { return scenario.MakeQuery(p); },
      [&](double p) { return scenario.TrueSelectivity(*db_->catalog(), p); });
  SweepConfig config;
  config.params = {70};
  config.repetitions = 4;
  config.settings = {{"Histograms", core::EstimatorKind::kHistogram, 0.0}};
  SweepResult result = experiment.Run(config);
  // One deterministic plan, evaluated once.
  int total_plans = 0;
  for (const auto& [plan, count] :
       result.overall.at("Histograms").plan_counts) {
    total_plans += count;
  }
  EXPECT_EQ(total_plans, 1);
  EXPECT_EQ(result.overall.at("Histograms").std_dev_seconds, 0.0);
}

TEST_F(HarnessTest, FormatterRendersBothPanels) {
  SingleTableScenario scenario;
  QuerySweepExperiment experiment(
      db_,
      [&](double p) { return scenario.MakeQuery(p); },
      [&](double p) { return scenario.TrueSelectivity(*db_->catalog(), p); });
  SweepConfig config;
  config.params = {70, 92};
  config.repetitions = 2;
  config.settings = {
      {"T=80%", core::EstimatorKind::kRobustSample, 0.80},
      {"Histograms", core::EstimatorKind::kHistogram, 0.0},
  };
  const std::string text =
      FormatSweepResult(experiment.Run(config), "Experiment X");
  EXPECT_NE(text.find("Experiment X"), std::string::npos);
  EXPECT_NE(text.find("selectivity vs average execution time"),
            std::string::npos);
  EXPECT_NE(text.find("performance vs predictability"), std::string::npos);
  EXPECT_NE(text.find("T=80%"), std::string::npos);
  EXPECT_NE(text.find("Histograms"), std::string::npos);
}

}  // namespace
}  // namespace workload
}  // namespace robustqo
