// Traffic harness: simulated client populations against the query service.
// Replayability from the config alone, closed- vs open-loop behaviour,
// admission backpressure under tight limits, and plan-cache amortisation
// across a client population.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/database.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/macros.h"
#include "util/rng.h"
#include "workload/traffic_harness.h"

namespace robustqo {
namespace workload {
namespace {

std::unique_ptr<core::Database> MakeDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < 2000; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  RQO_CHECK_MSG(db->catalog()->AddTable(std::move(table)).ok(),
                "table load failed");
  db->UpdateStatistics();
  return db;
}

TrafficConfig SmallConfig() {
  TrafficConfig config;
  config.clients = 40;
  config.duration_seconds = 30.0;
  config.think_seconds = 5.0;
  config.statements = {
      "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50",
      "SELECT COUNT(*) AS n FROM readings WHERE r_value >= 500 AND "
      "r_value < 600",
  };
  config.thresholds = {0.0, 0.95};
  return config;
}

TEST(TrafficHarnessTest, ClosedLoopRunCompletesAndAmortisesPlanning) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  server::QueryService service(db.get());
  const TrafficReport report = RunTraffic(&service, SmallConfig());

  EXPECT_GT(report.issued, 40u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.completed + report.rejected, report.issued);
  EXPECT_GT(report.batches, 1u);
  EXPECT_GT(report.throughput_qps, 0.0);
  EXPECT_EQ(report.latency.count(), report.completed);

  // 40 clients share 2 statements at 2 thresholds: at most 4 distinct
  // plans are ever optimized; everything else must come from the cache.
  EXPECT_LE(report.plan_cache.insertions, 4u);
  EXPECT_GT(report.plan_cache.hits, report.plan_cache.misses);
  EXPECT_EQ(report.cache_hits, report.plan_cache.hits);

  // The harness closed every session it opened.
  EXPECT_EQ(service.sessions()->open_count(), 0u);
}

TEST(TrafficHarnessTest, ReportIsReplayableFromTheConfigAlone) {
  std::string first;
  for (int round = 0; round < 2; ++round) {
    std::unique_ptr<core::Database> db = MakeDatabase();
    server::QueryService service(db.get());
    const std::string summary = RunTraffic(&service, SmallConfig()).Summary();
    if (round == 0) {
      first = summary;
      EXPECT_NE(summary.find("traffic:"), std::string::npos);
      EXPECT_NE(summary.find("latency"), std::string::npos);
    } else {
      EXPECT_EQ(summary, first);
    }
  }
}

TEST(TrafficHarnessTest, OpenLoopLoadTriggersAdmissionBackpressure) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  server::ServerConfig server_config;
  server_config.admission.max_concurrent = 2;
  server_config.admission.max_queue_depth = 4;
  server::QueryService service(db.get(), server_config);

  TrafficConfig config = SmallConfig();
  config.mode = TrafficMode::kOpenLoop;
  config.interarrival_seconds = 2.0;  // well past the service's capacity
  const TrafficReport report = RunTraffic(&service, config);

  // Open-loop arrivals do not back off, so the tight queue must shed load
  // with typed rejections — and the harness retries them.
  EXPECT_GT(report.rejected, 0u);
  EXPECT_EQ(report.admission.rejected_queue_full, report.rejected);
  EXPECT_GT(report.admission.waited, 0u) << "some requests queued for waves";
  EXPECT_EQ(report.failed, 0u) << "rejections are retried, never failures";
  EXPECT_GT(report.completed, 0u);
}

TEST(TrafficHarnessTest, SeedChangesTheTrafficButNotItsInvariants) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  server::QueryService service(db.get());
  TrafficConfig config = SmallConfig();
  const std::string base = RunTraffic(&service, config).Summary();

  std::unique_ptr<core::Database> db2 = MakeDatabase();
  server::QueryService service2(db2.get());
  config.base_seed = 999;
  const TrafficReport reseeded = RunTraffic(&service2, config);
  EXPECT_NE(reseeded.Summary(), base) << "different seed, different arrivals";
  EXPECT_EQ(reseeded.completed + reseeded.rejected, reseeded.issued);
}

TrafficConfig MixedConfig() {
  TrafficConfig config = SmallConfig();
  config.write_fraction = 0.3;
  config.write_statements = {
      "UPDATE readings SET r_value = r_value + 1 WHERE r_id < 20",
      "INSERT INTO readings VALUES (9001, 1), (9002, 2)",
      "DELETE FROM readings WHERE r_id = 9001",
  };
  return config;
}

TEST(TrafficHarnessTest, MixedPopulationCommitsWritesAndKeepsInvariants) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  server::QueryService service(db.get());
  const TrafficReport report = RunTraffic(&service, MixedConfig());

  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.completed + report.rejected, report.issued);
  // With write_fraction 0.3 over hundreds of issues, both populations ran.
  EXPECT_GT(report.writes_issued, 0u);
  EXPECT_LT(report.writes_issued, report.issued);
  EXPECT_EQ(report.writes_committed, report.writes_issued);
  EXPECT_GT(report.write_rows, 0u);
  // The report's final epoch is the catalog's. (It can trail
  // writes_committed: a write matching zero rows commits without
  // publishing an epoch.)
  EXPECT_EQ(report.final_data_epoch,
            static_cast<uint64_t>(db->catalog()->data_epoch()));
  EXPECT_GT(report.final_data_epoch, 0u);
  // The summary grows a writes: line only for mixed runs.
  EXPECT_NE(report.Summary().find("writes:"), std::string::npos);
}

TEST(TrafficHarnessTest, ReadOnlySummaryCarriesNoWritesLine) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  server::QueryService service(db.get());
  const TrafficReport report = RunTraffic(&service, SmallConfig());
  EXPECT_EQ(report.writes_issued, 0u);
  EXPECT_EQ(report.final_data_epoch, 0u);
  EXPECT_EQ(report.Summary().find("writes:"), std::string::npos);
}

TEST(TrafficHarnessTest, MixedRunIsReplayableFromTheConfigAlone) {
  std::string first;
  for (int round = 0; round < 2; ++round) {
    std::unique_ptr<core::Database> db = MakeDatabase();
    server::QueryService service(db.get());
    const TrafficReport report = RunTraffic(&service, MixedConfig());
    if (round == 0) {
      first = report.Summary();
    } else {
      EXPECT_EQ(report.Summary(), first)
          << "same config + fresh database must replay byte-identically";
    }
  }
}

}  // namespace
}  // namespace workload
}  // namespace robustqo
