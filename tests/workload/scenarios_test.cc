#include "workload/scenarios.h"

#include <gtest/gtest.h>

#include "expr/analysis.h"
#include "tpch/tpch_gen.h"
#include "workload/star_schema.h"

namespace robustqo {
namespace workload {
namespace {

class ScenariosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new storage::Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.01;
    ASSERT_TRUE(tpch::LoadTpch(catalog_, config).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static storage::Catalog* catalog_;
};

storage::Catalog* ScenariosTest::catalog_ = nullptr;

TEST_F(ScenariosTest, Exp1QueryShape) {
  SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(60);
  ASSERT_EQ(query.tables.size(), 1u);
  EXPECT_EQ(query.tables[0].table, "lineitem");
  ASSERT_EQ(query.aggregates.size(), 1u);
  EXPECT_EQ(query.aggregates[0].column, "l_extendedprice");
  std::set<std::string> cols;
  query.tables[0].predicate->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<std::string>{"l_shipdate", "l_receiptdate"}));
}

TEST_F(ScenariosTest, Exp1SelectivityDecreasesWithOffset) {
  SingleTableScenario scenario;
  double prev = 1.0;
  for (double offset : {40.0, 60.0, 75.0, 92.0}) {
    const double sel = scenario.TrueSelectivity(*catalog_, offset);
    EXPECT_LE(sel, prev + 1e-6);
    prev = sel;
  }
  // Beyond window + max receipt lag the overlap is empty.
  EXPECT_EQ(scenario.TrueSelectivity(*catalog_, 95), 0.0);
}

TEST_F(ScenariosTest, Exp1DefaultParamsCoverPaperRange) {
  SingleTableScenario scenario;
  const auto params = SingleTableScenario::DefaultParams();
  ASSERT_GE(params.size(), 10u);
  const double max_sel = scenario.TrueSelectivity(*catalog_, params.front());
  const double min_sel = scenario.TrueSelectivity(*catalog_, params.back());
  EXPECT_GT(max_sel, 0.004);   // > 0.4%
  EXPECT_LT(max_sel, 0.012);   // but near the paper's 0.6% scale
  EXPECT_LT(min_sel, 0.0002);  // tail reaches ~0
}

TEST_F(ScenariosTest, Exp1MarginalsConstantAcrossOffsets) {
  // The free parameter must not change what 1-D histograms see: each
  // marginal predicate keeps constant selectivity.
  const storage::Table* lineitem = catalog_->GetTable("lineitem");
  SingleTableScenario scenario;
  double first_marginal = -1.0;
  for (double offset : {55.0, 70.0, 92.0}) {
    opt::QuerySpec query = scenario.MakeQuery(offset);
    auto conjuncts = expr::SplitConjuncts(query.tables[0].predicate);
    ASSERT_EQ(conjuncts.size(), 2u);
    const double receipt_sel =
        static_cast<double>(expr::CountSatisfying(*conjuncts[1], *lineitem)) /
        static_cast<double>(lineitem->num_rows());
    if (first_marginal < 0) {
      first_marginal = receipt_sel;
    } else {
      EXPECT_NEAR(receipt_sel, first_marginal, 0.1 * first_marginal);
    }
  }
}

TEST_F(ScenariosTest, Exp2QueryShape) {
  ThreeTableJoinScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(12.0);
  ASSERT_EQ(query.tables.size(), 3u);
  EXPECT_EQ(query.tables[0].table, "lineitem");
  EXPECT_EQ(query.tables[1].table, "orders");
  EXPECT_EQ(query.tables[2].table, "part");
  EXPECT_EQ(query.tables[0].predicate, nullptr);
  EXPECT_NE(query.tables[2].predicate, nullptr);
}

TEST_F(ScenariosTest, Exp2SelectivityCollapsesPastCorrelationWindow) {
  ThreeTableJoinScenario scenario;
  const double at_zero = scenario.TrueSelectivity(*catalog_, 0.0);
  const double at_ten = scenario.TrueSelectivity(*catalog_, 10.0);
  const double at_fifteen = scenario.TrueSelectivity(*catalog_, 15.0);
  EXPECT_NEAR(at_zero, 0.075, 0.02);
  EXPECT_NEAR(at_ten, 0.025, 0.012);
  EXPECT_LT(at_fifteen, 0.002);
}

TEST_F(ScenariosTest, Exp2MarginalsConstant) {
  // Both p_c1 and p_c2 bands select ~10% regardless of the offset.
  const storage::Table* part = catalog_->GetTable("part");
  ThreeTableJoinScenario scenario;
  for (double offset : {0.0, 8.0, 14.0}) {
    opt::QuerySpec query = scenario.MakeQuery(offset);
    auto conjuncts = expr::SplitConjuncts(query.tables[2].predicate);
    ASSERT_EQ(conjuncts.size(), 2u);
    for (const auto& conjunct : conjuncts) {
      const double sel =
          static_cast<double>(expr::CountSatisfying(*conjunct, *part)) /
          static_cast<double>(part->num_rows());
      EXPECT_NEAR(sel, 0.10, 0.025) << conjunct->ToString();
    }
  }
}

TEST_F(ScenariosTest, Exp3QueryShapeAndSweep) {
  storage::Catalog star;
  StarSchemaConfig config;
  config.fact_rows = 20000;
  config.dim_rows = 100;
  ASSERT_TRUE(LoadStarSchema(&star, config).ok());
  StarJoinScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(2);
  ASSERT_EQ(query.tables.size(), 4u);
  EXPECT_EQ(query.tables[0].table, "fact");
  EXPECT_EQ(query.aggregates.size(), 2u);
  // Selectivity decays with offset.
  const double s0 = scenario.TrueSelectivity(star, 0);
  const double s3 = scenario.TrueSelectivity(star, 3);
  const double s9 = scenario.TrueSelectivity(star, 9);
  EXPECT_GT(s0, s3);
  EXPECT_GT(s3, s9);
  EXPECT_EQ(StarJoinScenario::DefaultParams().size(), 10u);
}

TEST_F(ScenariosTest, DefaultParamListsNonEmpty) {
  EXPECT_FALSE(SingleTableScenario::DefaultParams().empty());
  EXPECT_FALSE(ThreeTableJoinScenario::DefaultParams().empty());
  EXPECT_FALSE(StarJoinScenario::DefaultParams().empty());
}

}  // namespace
}  // namespace workload
}  // namespace robustqo
