#include "workload/star_schema.h"

#include <gtest/gtest.h>

#include "workload/scenarios.h"

namespace robustqo {
namespace workload {
namespace {

class StarSchemaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new storage::Catalog();
    StarSchemaConfig config;
    config.fact_rows = 50000;
    config.dim_rows = 1000;
    ASSERT_TRUE(LoadStarSchema(catalog_, config).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static storage::Catalog* catalog_;
};

storage::Catalog* StarSchemaTest::catalog_ = nullptr;

TEST_F(StarSchemaTest, TablesAndSizes) {
  EXPECT_EQ(catalog_->GetTable("fact")->num_rows(), 50000u);
  for (const char* dim : {"dim1", "dim2", "dim3"}) {
    EXPECT_EQ(catalog_->GetTable(dim)->num_rows(), 1000u);
  }
}

TEST_F(StarSchemaTest, RejectsDoubleLoad) {
  EXPECT_EQ(LoadStarSchema(catalog_, {}).code(), StatusCode::kAlreadyExists);
}

TEST_F(StarSchemaTest, KeysAndIndexes) {
  EXPECT_EQ(catalog_->PrimaryKeyOf("fact"), "f_id");
  EXPECT_EQ(catalog_->PrimaryKeyOf("dim2"), "d2_id");
  for (const char* fk : {"f_d1", "f_d2", "f_d3"}) {
    EXPECT_TRUE(catalog_->HasIndex("fact", fk));
  }
  auto root =
      catalog_->FindRootTable({"fact", "dim1", "dim2", "dim3"});
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), "fact");
}

TEST_F(StarSchemaTest, DimFiltersSelectExactlyOneGroup) {
  const storage::Table* dim = catalog_->GetTable("dim1");
  uint64_t count = 0;
  for (storage::Rid r = 0; r < dim->num_rows(); ++r) {
    if (dim->column("d1_attr").Int64At(r) == 4) ++count;
  }
  EXPECT_EQ(count, 100u);  // exactly 10% of 1000
}

TEST_F(StarSchemaTest, FkValuesLandInDeclaredGroups) {
  // Every f_d1 value must reference a dim1 row; groups are contiguous id
  // blocks of 100.
  const storage::Table* fact = catalog_->GetTable("fact");
  for (storage::Rid r = 0; r < fact->num_rows(); r += 173) {
    const int64_t id = fact->column("f_d1").Int64At(r);
    EXPECT_GE(id, 1);
    EXPECT_LE(id, 1000);
  }
}

TEST_F(StarSchemaTest, ExpectedJoinFractionDecaysGeometrically) {
  StarSchemaConfig config;
  double prev = 1.0;
  for (uint64_t offset = 0; offset < config.groups; ++offset) {
    const double f = ExpectedJoinFraction(config, offset);
    EXPECT_LT(f, prev);
    EXPECT_GT(f, 0.0);
    if (offset > 0) {
      EXPECT_NEAR(f, prev * config.offset_decay, 1e-12);
    }
    prev = f;
  }
  // Offset 0 with decay 0.5 and 10 groups: ~5% of fact rows join.
  EXPECT_NEAR(ExpectedJoinFraction(config, 0), 0.05, 0.001);
}

TEST_F(StarSchemaTest, MeasuredJoinFractionTracksExpectation) {
  StarSchemaConfig config;  // defaults used by the loaded schema
  StarJoinScenario scenario;
  for (uint64_t offset : {0u, 1u, 3u}) {
    const double expected = ExpectedJoinFraction(config, offset);
    const double measured = scenario.TrueSelectivity(
        *catalog_, static_cast<double>(offset));
    EXPECT_NEAR(measured, expected, expected * 0.25 + 0.0005)
        << "offset=" << offset;
  }
}

TEST_F(StarSchemaTest, MarginalFkDistributionUniformAcrossGroups) {
  // Even though offsets correlate dims 2/3 with dim 1, each FK's marginal
  // hits every group equally — the property that fools AVI.
  const storage::Table* fact = catalog_->GetTable("fact");
  std::vector<uint64_t> counts(10, 0);
  for (storage::Rid r = 0; r < fact->num_rows(); ++r) {
    const int64_t id = fact->column("f_d2").Int64At(r);
    ++counts[static_cast<size_t>((id - 1) / 100)];
  }
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 5000.0, 350.0);
  }
}

TEST(StarSchemaConfigTest, GeneralizedDimensionCount) {
  for (uint64_t dims : {2u, 4u, 5u}) {
    storage::Catalog catalog;
    StarSchemaConfig config;
    config.fact_rows = 5000;
    config.dim_rows = 100;
    config.num_dims = dims;
    ASSERT_TRUE(LoadStarSchema(&catalog, config).ok()) << dims;
    const storage::Table* fact = catalog.GetTable("fact");
    ASSERT_NE(fact, nullptr);
    EXPECT_EQ(fact->schema().num_columns(), dims + 3);  // id + FKs + 2 measures
    for (uint64_t d = 1; d <= dims; ++d) {
      const std::string dim = "dim" + std::to_string(d);
      EXPECT_NE(catalog.GetTable(dim), nullptr);
      EXPECT_TRUE(catalog.HasIndex("fact", "f_d" + std::to_string(d)));
    }
    std::set<std::string> tables{"fact"};
    for (uint64_t d = 1; d <= dims; ++d) {
      tables.insert("dim" + std::to_string(d));
    }
    auto root = catalog.FindRootTable(tables);
    ASSERT_TRUE(root.ok());
    EXPECT_EQ(root.value(), "fact");
  }
}

TEST(StarSchemaConfigTest, ZeroDimsRejected) {
  storage::Catalog catalog;
  StarSchemaConfig config;
  config.num_dims = 0;
  EXPECT_EQ(LoadStarSchema(&catalog, config).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StarSchemaTest, DimRowsMustDivideIntoGroups) {
  storage::Catalog fresh;
  StarSchemaConfig bad;
  bad.dim_rows = 1001;  // not divisible by 10 groups
  EXPECT_DEATH(
      { (void)LoadStarSchema(&fresh, bad); }, "multiple of groups");
}

}  // namespace
}  // namespace workload
}  // namespace robustqo
