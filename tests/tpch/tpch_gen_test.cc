#include "tpch/tpch_gen.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "storage/date.h"

namespace robustqo {
namespace tpch {
namespace {

class TpchGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new storage::Catalog();
    TpchConfig config;
    config.scale_factor = 0.01;
    ASSERT_TRUE(LoadTpch(catalog_, config).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static storage::Catalog* catalog_;
};

storage::Catalog* TpchGenTest::catalog_ = nullptr;

TEST_F(TpchGenTest, AllTablesPresentWithScaledSizes) {
  EXPECT_EQ(catalog_->GetTable("region")->num_rows(), 5u);
  EXPECT_EQ(catalog_->GetTable("nation")->num_rows(), 25u);
  EXPECT_EQ(catalog_->GetTable("supplier")->num_rows(), 100u);
  EXPECT_EQ(catalog_->GetTable("customer")->num_rows(), 1500u);
  EXPECT_EQ(catalog_->GetTable("part")->num_rows(), 2000u);
  EXPECT_EQ(catalog_->GetTable("orders")->num_rows(), 15000u);
  // lineitem averages ~4 lines per order.
  const uint64_t lines = catalog_->GetTable("lineitem")->num_rows();
  EXPECT_GT(lines, 50000u);
  EXPECT_LT(lines, 70000u);
}

TEST_F(TpchGenTest, RejectsDoubleLoadAndBadScale) {
  EXPECT_EQ(LoadTpch(catalog_, {}).code(), StatusCode::kAlreadyExists);
  storage::Catalog fresh;
  TpchConfig bad;
  bad.scale_factor = 0.0;
  EXPECT_EQ(LoadTpch(&fresh, bad).code(), StatusCode::kInvalidArgument);
}

TEST_F(TpchGenTest, PrimaryKeysAreDense) {
  const storage::Table* orders = catalog_->GetTable("orders");
  std::unordered_set<int64_t> keys;
  for (storage::Rid r = 0; r < orders->num_rows(); ++r) {
    keys.insert(orders->column("o_orderkey").Int64At(r));
  }
  EXPECT_EQ(keys.size(), orders->num_rows());
}

TEST_F(TpchGenTest, ForeignKeyIntegrity) {
  const storage::Table* lineitem = catalog_->GetTable("lineitem");
  const int64_t num_orders =
      static_cast<int64_t>(catalog_->GetTable("orders")->num_rows());
  const int64_t num_parts =
      static_cast<int64_t>(catalog_->GetTable("part")->num_rows());
  for (storage::Rid r = 0; r < lineitem->num_rows(); r += 97) {
    const int64_t okey = lineitem->column("l_orderkey").Int64At(r);
    EXPECT_GE(okey, 1);
    EXPECT_LE(okey, num_orders);
    const int64_t pkey = lineitem->column("l_partkey").Int64At(r);
    EXPECT_GE(pkey, 1);
    EXPECT_LE(pkey, num_parts);
  }
}

TEST_F(TpchGenTest, LineitemClusteredByOrderKey) {
  const storage::Table* lineitem = catalog_->GetTable("lineitem");
  int64_t prev = 0;
  for (storage::Rid r = 0; r < lineitem->num_rows(); ++r) {
    const int64_t okey = lineitem->column("l_orderkey").Int64At(r);
    EXPECT_GE(okey, prev);
    prev = okey;
  }
  EXPECT_EQ(catalog_->ClusteringColumnOf("lineitem"), "l_orderkey");
}

TEST_F(TpchGenTest, DateCorrelationStructure) {
  // Receipt follows ship by 1-30 days; ship follows order by 1-121.
  const storage::Table* lineitem = catalog_->GetTable("lineitem");
  for (storage::Rid r = 0; r < lineitem->num_rows(); r += 131) {
    const int64_t ship = lineitem->column("l_shipdate").Int64At(r);
    const int64_t receipt = lineitem->column("l_receiptdate").Int64At(r);
    EXPECT_GE(receipt - ship, 1);
    EXPECT_LE(receipt - ship, 30);
    EXPECT_GE(ship, MinOrderDate() + 1);
    EXPECT_LE(ship, MaxOrderDate() + 121);
  }
}

TEST_F(TpchGenTest, PartCorrelationWindowHolds) {
  // p_c2 = (p_c1 + U[0, window]) mod 100 with window = 5.
  const storage::Table* part = catalog_->GetTable("part");
  for (storage::Rid r = 0; r < part->num_rows(); ++r) {
    const double c1 = part->column("p_c1").DoubleAt(r);
    const double c2 = part->column("p_c2").DoubleAt(r);
    EXPECT_GE(c1, 0.0);
    EXPECT_LT(c1, 100.0);
    double delta = c2 - c1;
    if (delta < 0) delta += 100.0;
    EXPECT_LE(delta, 5.0 + 1e-9);
  }
}

TEST_F(TpchGenTest, MarginalDatesSpreadAcrossYears) {
  // Order dates cover the 1992-1998 range roughly uniformly.
  const storage::Table* orders = catalog_->GetTable("orders");
  std::set<int> years;
  for (storage::Rid r = 0; r < orders->num_rows(); r += 59) {
    int y = 0;
    int m = 0;
    int d = 0;
    storage::DaysToDate(orders->column("o_orderdate").Int64At(r), &y, &m, &d);
    years.insert(y);
  }
  EXPECT_GE(years.size(), 7u);
}

TEST_F(TpchGenTest, PhysicalDesignApplied) {
  EXPECT_TRUE(catalog_->HasIndex("lineitem", "l_shipdate"));
  EXPECT_TRUE(catalog_->HasIndex("lineitem", "l_receiptdate"));
  EXPECT_TRUE(catalog_->HasIndex("lineitem", "l_partkey"));
  EXPECT_TRUE(catalog_->HasIndex("orders", "o_orderkey"));
  EXPECT_EQ(catalog_->PrimaryKeyOf("part"), "p_partkey");
  auto root = catalog_->FindRootTable({"lineitem", "orders", "part"});
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), "lineitem");
}

TEST_F(TpchGenTest, DeterministicAcrossRuns) {
  storage::Catalog a;
  storage::Catalog b;
  TpchConfig config;
  config.scale_factor = 0.001;
  ASSERT_TRUE(LoadTpch(&a, config).ok());
  ASSERT_TRUE(LoadTpch(&b, config).ok());
  const storage::Table* la = a.GetTable("lineitem");
  const storage::Table* lb = b.GetTable("lineitem");
  ASSERT_EQ(la->num_rows(), lb->num_rows());
  for (storage::Rid r = 0; r < la->num_rows(); r += 101) {
    EXPECT_EQ(la->column("l_shipdate").Int64At(r),
              lb->column("l_shipdate").Int64At(r));
    EXPECT_EQ(la->column("l_partkey").Int64At(r),
              lb->column("l_partkey").Int64At(r));
  }
}

TEST_F(TpchGenTest, NoIndexOption) {
  storage::Catalog fresh;
  TpchConfig config;
  config.scale_factor = 0.001;
  config.build_indexes = false;
  ASSERT_TRUE(LoadTpch(&fresh, config).ok());
  EXPECT_FALSE(fresh.HasIndex("lineitem", "l_shipdate"));
}

}  // namespace
}  // namespace tpch
}  // namespace robustqo
