#include "fault/governor.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace robustqo {
namespace fault {
namespace {

TEST(GovernorTest, DefaultGovernorIsUnlimited) {
  QueryGovernor governor;
  EXPECT_TRUE(governor.limits().Unlimited());
  EXPECT_TRUE(governor.ChargeMemory(1ull << 40).ok());
  EXPECT_TRUE(governor.ChargeRows(1ull << 40).ok());
  EXPECT_TRUE(governor.CheckTime(1e12).ok());
  EXPECT_FALSE(governor.tripped());
}

TEST(GovernorTest, MemoryBudgetTripsAndSticks) {
  GovernorLimits limits;
  limits.memory_limit_bytes = 1000;
  QueryGovernor governor(limits);
  EXPECT_TRUE(governor.ChargeMemory(600).ok());
  Status trip = governor.ChargeMemory(500);
  EXPECT_EQ(trip.code(), StatusCode::kResourceExhausted);
  // Sticky: even a tiny charge keeps failing after the trip.
  EXPECT_FALSE(governor.ChargeMemory(1).ok());
  EXPECT_EQ(governor.memory_trips(), 2u);
  EXPECT_TRUE(governor.tripped());
}

TEST(GovernorTest, ReleaseAllowsReuseBeforeTrip) {
  GovernorLimits limits;
  limits.memory_limit_bytes = 1000;
  QueryGovernor governor(limits);
  EXPECT_TRUE(governor.ChargeMemory(800).ok());
  governor.ReleaseMemory(800);
  EXPECT_EQ(governor.memory_in_use(), 0u);
  EXPECT_TRUE(governor.ChargeMemory(900).ok());
  EXPECT_EQ(governor.peak_memory_bytes(), 900u);
}

TEST(GovernorTest, RowBudgetTrips) {
  GovernorLimits limits;
  limits.row_limit = 10;
  QueryGovernor governor(limits);
  EXPECT_TRUE(governor.ChargeRows(10).ok());
  EXPECT_EQ(governor.ChargeRows(1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.rows_charged(), 11u);
  EXPECT_EQ(governor.row_trips(), 1u);
}

TEST(GovernorTest, TimeBudgetTrips) {
  GovernorLimits limits;
  limits.time_limit_seconds = 2.0;
  QueryGovernor governor(limits);
  EXPECT_TRUE(governor.CheckTime(1.9).ok());
  EXPECT_EQ(governor.CheckTime(2.1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.time_trips(), 1u);
}

TEST(GovernorTest, CancellationIsCooperativeAndTyped) {
  QueryGovernor governor;
  EXPECT_TRUE(governor.CheckCancelled().ok());
  governor.token()->Cancel("user hit ctrl-c");
  Status s = governor.CheckCancelled();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("ctrl-c"), std::string::npos);
  // First reason wins.
  governor.token()->Cancel("other");
  EXPECT_NE(governor.CheckCancelled().message().find("ctrl-c"),
            std::string::npos);
}

TEST(GovernorTest, ReservationReleasesOnScopeExit) {
  GovernorLimits limits;
  limits.memory_limit_bytes = 1000;
  QueryGovernor governor(limits);
  {
    MemoryReservation reservation(&governor);
    EXPECT_TRUE(reservation.Grow(400).ok());
    EXPECT_TRUE(reservation.Grow(300).ok());
    EXPECT_EQ(reservation.reserved_bytes(), 700u);
    EXPECT_EQ(governor.memory_in_use(), 700u);
  }
  EXPECT_EQ(governor.memory_in_use(), 0u);
  EXPECT_EQ(governor.peak_memory_bytes(), 700u);
}

TEST(GovernorTest, ReservationPropagatesTrip) {
  GovernorLimits limits;
  limits.memory_limit_bytes = 100;
  QueryGovernor governor(limits);
  MemoryReservation reservation(&governor);
  EXPECT_EQ(reservation.Grow(200).code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, NullGovernorReservationIsUnlimited) {
  MemoryReservation reservation(nullptr);
  EXPECT_TRUE(reservation.Grow(1ull << 50).ok());
  reservation.Release();  // must not crash
}

TEST(GovernorTest, PublishMetricsExportsAccounting) {
  GovernorLimits limits;
  limits.row_limit = 5;
  QueryGovernor governor(limits);
  EXPECT_TRUE(governor.ChargeMemory(123).ok());
  EXPECT_TRUE(governor.ChargeRows(5).ok());
  (void)governor.ChargeRows(1);  // trip
  obs::MetricsRegistry metrics;
  governor.PublishMetrics(&metrics);
#if ROBUSTQO_OBS_ENABLED
  EXPECT_EQ(metrics.GetGauge("governor.peak_memory_bytes")->value(), 123.0);
  EXPECT_EQ(metrics.GetGauge("governor.rows_charged")->value(), 6.0);
  EXPECT_EQ(metrics.GetCounter("governor.row_trips")->value(), 1u);
#endif
  governor.PublishMetrics(nullptr);  // no-op, must not crash
}

}  // namespace
}  // namespace fault
}  // namespace robustqo
