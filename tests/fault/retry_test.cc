#include "fault/retry.h"

#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace robustqo {
namespace fault {
namespace {

TEST(RetryTest, SucceedsFirstTryWithoutBackoff) {
  RetryStats stats;
  Status s = RetryWithBackoff(
      RetryPolicy{}, [] { return Status::OK(); }, &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.backoff_units, 0u);
  EXPECT_FALSE(stats.exhausted);
}

TEST(RetryTest, RetriesTransientUnavailability) {
  int calls = 0;
  RetryStats stats;
  Status s = RetryWithBackoff(
      RetryPolicy{},
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("flaky") : Status::OK();
      },
      &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  // Backoff doubles per retry: 1 before attempt 2, 2 before attempt 3.
  EXPECT_EQ(stats.backoff_units, 3u);
}

TEST(RetryTest, NonRetryableErrorsReturnImmediately) {
  int calls = 0;
  RetryStats stats;
  Status s = RetryWithBackoff(
      RetryPolicy{},
      [&] {
        ++calls;
        return Status::NotFound("gone for good");
      },
      &stats);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(stats.exhausted);
}

TEST(RetryTest, ExhaustionReturnsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  RetryStats stats;
  Status s = RetryWithBackoff(
      policy,
      [&] {
        ++calls;
        return Status::Unavailable("still down");
      },
      &stats);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.backoff_units, 1u + 2u + 4u);
}

TEST(RetryTest, WorksWithResultReturningFunctions) {
  int calls = 0;
  Result<int> r = RetryWithBackoff(RetryPolicy{}, [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::Unavailable("flaky");
    return 42;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, HealsFaultInjectedTransientFailure) {
  // The intended end-to-end use: a FirstN-armed site fails transiently and
  // the retry wrapper rides it out.
  FaultInjector injector;
  injector.Arm(sites::kSampleRead, FaultSpec::FirstN(2));
  RetryStats stats;
  Status s = RetryWithBackoff(
      RetryPolicy{}, [&] { return injector.Check(sites::kSampleRead); },
      &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(stats.attempts, 3);

  // An always-failing site exhausts the budget with a clean typed error.
  injector.Arm(sites::kSampleRead, FaultSpec::Always());
  s = RetryWithBackoff(
      RetryPolicy{}, [&] { return injector.Check(sites::kSampleRead); },
      &stats);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(stats.exhausted);
}

TEST(RetryTest, MetricsRecordRetriesAndExhaustion) {
  obs::MetricsRegistry metrics;
  int calls = 0;
  (void)RetryWithBackoff(
      RetryPolicy{},
      [&] {
        ++calls;
        return calls < 2 ? Status::Unavailable("flaky") : Status::OK();
      },
      nullptr, &metrics);
  (void)RetryWithBackoff(
      RetryPolicy{}, [] { return Status::Unavailable("down"); }, nullptr,
      &metrics);
#if ROBUSTQO_OBS_ENABLED
  // 1 retry from the healed call + 2 from the exhausted one.
  EXPECT_EQ(metrics.GetCounter("fault.retry.attempts")->value(), 3u);
  EXPECT_EQ(metrics.GetCounter("fault.retry.exhausted")->value(), 1u);
  EXPECT_GT(metrics.GetCounter("fault.retry.backoff_units")->value(), 0u);
#endif
}

TEST(RetryTest, ZeroOrNegativeMaxAttemptsStillTriesOnce) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  int calls = 0;
  (void)RetryWithBackoff(policy, [&] {
    ++calls;
    return Status::Unavailable("down");
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace fault
}  // namespace robustqo
