#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace robustqo {
namespace fault {
namespace {

TEST(FaultInjectorTest, UnarmedSitesNeverFire) {
  FaultInjector injector(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.ShouldFire(sites::kSampleRead));
    EXPECT_TRUE(injector.Check(sites::kCsvRead).ok());
    EXPECT_EQ(injector.CheckStall(sites::kClockStall), 0.0);
  }
  EXPECT_EQ(injector.total_fires(), 0u);
  // Unarmed probes are still counted, so coverage is observable.
  EXPECT_EQ(injector.hits(sites::kSampleRead), 100u);
}

TEST(FaultInjectorTest, AlwaysModeFiresEveryProbe) {
  FaultInjector injector;
  injector.Arm(sites::kSampleRead, FaultSpec::Always());
  for (int i = 0; i < 5; ++i) {
    Status s = injector.Check(sites::kSampleRead);
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
    EXPECT_NE(s.message().find(sites::kSampleRead), std::string::npos);
  }
  EXPECT_EQ(injector.fires(sites::kSampleRead), 5u);
}

TEST(FaultInjectorTest, FirstNThenRecovers) {
  FaultInjector injector;
  injector.Arm(sites::kSynopsisRead, FaultSpec::FirstN(3));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (!injector.Check(sites::kSynopsisRead).ok()) ++fired;
  }
  EXPECT_EQ(fired, 3);
  // Probes 4..10 all succeeded — the transient fault healed.
  EXPECT_TRUE(injector.Check(sites::kSynopsisRead).ok());
}

TEST(FaultInjectorTest, OnNthFiresExactlyOnce) {
  FaultInjector injector;
  injector.Arm(sites::kOperatorAlloc, FaultSpec::OnNth(4));
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) {
    fired.push_back(!injector.Check(sites::kOperatorAlloc).ok());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, false,
                                      false, false, false}));
}

TEST(FaultInjectorTest, CustomStatusCode) {
  FaultInjector injector;
  FaultSpec spec = FaultSpec::Always();
  spec.code = StatusCode::kResourceExhausted;
  injector.Arm(sites::kOperatorAlloc, spec);
  EXPECT_EQ(injector.Check(sites::kOperatorAlloc).code(),
            StatusCode::kResourceExhausted);
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector injector(seed);
    injector.Arm(sites::kSampleRead, FaultSpec::Probability(0.3));
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(injector.ShouldFire(sites::kSampleRead));
    }
    return fires;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // astronomically unlikely to collide
}

TEST(FaultInjectorTest, ProbabilityRoughlyMatchesP) {
  FaultInjector injector(11);
  injector.Arm(sites::kSampleRead, FaultSpec::Probability(0.25));
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    if (injector.ShouldFire(sites::kSampleRead)) ++fired;
  }
  EXPECT_GT(fired, 400);
  EXPECT_LT(fired, 600);
}

TEST(FaultInjectorTest, ArmingOrderDoesNotChangeStreams) {
  // Per-site streams derive from (seed, site), not from arming order.
  FaultInjector a(9);
  a.Arm(sites::kSampleRead, FaultSpec::Probability(0.5));
  a.Arm(sites::kSynopsisRead, FaultSpec::Probability(0.5));
  FaultInjector b(9);
  b.Arm(sites::kSynopsisRead, FaultSpec::Probability(0.5));
  b.Arm(sites::kSampleRead, FaultSpec::Probability(0.5));
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.ShouldFire(sites::kSampleRead),
              b.ShouldFire(sites::kSampleRead));
    EXPECT_EQ(a.ShouldFire(sites::kSynopsisRead),
              b.ShouldFire(sites::kSynopsisRead));
  }
}

TEST(FaultInjectorTest, ReseedRestartsHitCounters) {
  FaultInjector injector(1);
  injector.Arm(sites::kCsvRead, FaultSpec::OnNth(2));
  EXPECT_TRUE(injector.Check(sites::kCsvRead).ok());
  EXPECT_FALSE(injector.Check(sites::kCsvRead).ok());
  injector.Reseed(1);
  EXPECT_EQ(injector.hits(sites::kCsvRead), 0u);
  EXPECT_TRUE(injector.Check(sites::kCsvRead).ok());
  EXPECT_FALSE(injector.Check(sites::kCsvRead).ok());
}

TEST(FaultInjectorTest, StallReturnsConfiguredSeconds) {
  FaultInjector injector;
  FaultSpec spec = FaultSpec::OnNth(1);
  spec.stall_seconds = 12.5;
  injector.Arm(sites::kClockStall, spec);
  EXPECT_EQ(injector.CheckStall(sites::kClockStall), 12.5);
  EXPECT_EQ(injector.CheckStall(sites::kClockStall), 0.0);
}

TEST(FaultInjectorTest, DisarmStopsFiring) {
  FaultInjector injector;
  injector.Arm(sites::kSampleRead, FaultSpec::Always());
  EXPECT_FALSE(injector.Check(sites::kSampleRead).ok());
  injector.Disarm(sites::kSampleRead);
  EXPECT_TRUE(injector.Check(sites::kSampleRead).ok());
  EXPECT_FALSE(injector.IsArmed(sites::kSampleRead));
}

TEST(FaultInjectorTest, FiresEmitMetricsAndTraceEvents) {
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  FaultInjector injector;
  injector.set_metrics(&metrics);
  injector.set_tracer(&tracer);
  injector.Arm(sites::kSampleRead, FaultSpec::FirstN(2));
  for (int i = 0; i < 5; ++i) injector.ShouldFire(sites::kSampleRead);
#if ROBUSTQO_OBS_ENABLED
  EXPECT_EQ(metrics.GetCounter("fault.fired")->value(), 2u);
  EXPECT_EQ(
      metrics.GetCounter(std::string("fault.fired.") + sites::kSampleRead)
          ->value(),
      2u);
  int fault_events = 0;
  for (const auto& e : tracer.events()) {
    if (e.category == "fault" && e.name == "fired") ++fault_events;
  }
  EXPECT_EQ(fault_events, 2);
#endif
}

TEST(FaultInjectorTest, KnownSitesListedAndDescribed) {
  // Golden sorted-name list: adding a site is a one-line edit here, and
  // the size assertion below can never drift out of step with it.
  const std::vector<std::string> kExpectedSorted = {
      sites::kClockStall,      sites::kOperatorAlloc,
      sites::kLearningFeedbackApply,
      sites::kNetLag,          sites::kNetPartition,
      sites::kReplicaStaleStats,
      sites::kAdmissionEnqueue, sites::kPlanCacheLookup,
      sites::kReservoirUpdate, sites::kSampleRead,
      sites::kSynopsisRead,    sites::kCsvRead,
      sites::kWriteApply,      sites::kWriteCommit,
  };
  ASSERT_TRUE(std::is_sorted(kExpectedSorted.begin(), kExpectedSorted.end()));
  std::vector<std::string> actual_sorted = KnownFaultSites();
  std::sort(actual_sorted.begin(), actual_sorted.end());
  EXPECT_EQ(actual_sorted, kExpectedSorted);
  EXPECT_EQ(KnownFaultSites().size(), kExpectedSorted.size());

  FaultInjector injector;
  EXPECT_NE(injector.DescribeArmed().find("no faults"), std::string::npos);
  injector.Arm(sites::kCsvRead, FaultSpec::Probability(0.5));
  EXPECT_NE(injector.DescribeArmed().find(sites::kCsvRead),
            std::string::npos);
}

}  // namespace
}  // namespace fault
}  // namespace robustqo
