// Sessions: deterministic per-session seed streams, the per-session
// prepared-statement namespace, and the manager's dense id layout.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "server/session.h"

namespace robustqo {
namespace server {
namespace {

TEST(SessionTest, RequestSeedStreamIsDeterministicAndDistinct) {
  Session a(1, {}, 1234);
  Session b(2, {}, 5678);
  std::set<uint64_t> seeds;
  for (int i = 0; i < 100; ++i) {
    seeds.insert(a.NextRequestSeed());
    seeds.insert(b.NextRequestSeed());
  }
  EXPECT_EQ(seeds.size(), 200u) << "seed streams must not collide";

  // Replaying the same (id, options, seed) replays the exact stream.
  Session replay(1, {}, 1234);
  Session reference(1, {}, 1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(replay.NextRequestSeed(), reference.NextRequestSeed());
  }
}

TEST(SessionTest, PreparedStatementsAreAPerSessionNamespace) {
  Session session(1, {}, 7);
  PreparedStatement statement;
  statement.name = "q1";
  statement.sql = "SELECT COUNT(*) FROM region";
  statement.fingerprint = 42;
  ASSERT_TRUE(session.Prepare(statement).ok());

  const PreparedStatement* found = session.FindPrepared("q1");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->fingerprint, 42u);
  EXPECT_EQ(session.FindPrepared("nope"), nullptr);

  // PREPARE of an existing name is a typed error; DEALLOCATE first.
  statement.fingerprint = 43;
  EXPECT_EQ(session.Prepare(statement).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(session.FindPrepared("q1")->fingerprint, 42u);

  ASSERT_TRUE(session.Deallocate("q1").ok());
  ASSERT_TRUE(session.Prepare(statement).ok());
  EXPECT_EQ(session.FindPrepared("q1")->fingerprint, 43u);
  ASSERT_TRUE(session.Deallocate("q1").ok());
  EXPECT_EQ(session.FindPrepared("q1"), nullptr);
  EXPECT_EQ(session.Deallocate("q1").code(), StatusCode::kNotFound);
}

TEST(SessionManagerTest, IdsAreDenseAndMonotonic) {
  SessionManager manager(99);
  const SessionId a = manager.Open();
  const SessionId b = manager.Open();
  const SessionId c = manager.Open();
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(c, 3u);
  EXPECT_EQ(manager.open_count(), 3u);
  EXPECT_EQ(manager.opened_total(), 3u);

  ASSERT_TRUE(manager.Close(b).ok());
  EXPECT_EQ(manager.Get(b), nullptr);
  EXPECT_EQ(manager.Close(b).code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.open_count(), 2u);

  // Closed ids are never reused.
  EXPECT_EQ(manager.Open(), 4u);
}

TEST(SessionManagerTest, SeedsDeriveFromBaseSeedAndSessionId) {
  SessionManager a(1000);
  SessionManager b(1000);
  const SessionId id_a = a.Open();
  const SessionId id_b = b.Open();
  EXPECT_EQ(a.Get(id_a)->seed(), b.Get(id_b)->seed())
      << "same base seed + same session id must derive the same seed";

  SessionManager other(1001);
  EXPECT_NE(a.Get(id_a)->seed(), other.Get(other.Open())->seed());
}

TEST(SessionManagerTest, SnapshotAndReportCarrySessionState) {
  SessionManager manager(5);
  SessionOptions options;
  options.name = "analytics";
  options.confidence_threshold = 0.95;
  const SessionId id = manager.Open(options);
  const SessionId anon = manager.Open();

  manager.Get(id)->CountSubmitted();
  manager.Get(id)->CountCompleted();

  const std::vector<SessionInfo> infos = manager.Snapshot();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].id, id);
  EXPECT_EQ(infos[0].name, "analytics");
  EXPECT_DOUBLE_EQ(infos[0].confidence_threshold, 0.95);
  EXPECT_EQ(infos[0].submitted, 1u);
  EXPECT_EQ(infos[0].completed, 1u);
  EXPECT_EQ(infos[1].name, "session-2") << "default name derives from the id";

  const std::string report = manager.ReportText();
  EXPECT_NE(report.find("analytics"), std::string::npos);
  EXPECT_NE(report.find("session-2"), std::string::npos);
  (void)anon;
}

}  // namespace
}  // namespace server
}  // namespace robustqo
