// PlanCache: canonical statement fingerprints, LRU bounds, statistics-epoch
// invalidation, drift invalidation + re-insert blocking, and the fault-site
// degradation that turns a broken cache into misses instead of failures.

#include <gtest/gtest.h>

#include <memory>

#include "expr/expression.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "optimizer/plan.h"
#include "optimizer/query.h"
#include "server/plan_cache.h"

namespace robustqo {
namespace server {
namespace {

std::shared_ptr<const opt::PlannedQuery> DummyPlan(const std::string& label) {
  auto plan = std::make_shared<opt::PlannedQuery>();
  plan->label = label;
  return plan;
}

opt::QuerySpec TwoTableQuery(bool reversed) {
  opt::QuerySpec query;
  opt::TableRef lineitem{"lineitem",
                         expr::Lt(expr::Col("l_quantity"), expr::LitInt(10))};
  opt::TableRef orders{"orders", nullptr};
  if (reversed) {
    query.tables = {orders, lineitem};
  } else {
    query.tables = {lineitem, orders};
  }
  query.select_columns = {"l_orderkey"};
  return query;
}

TEST(FingerprintQueryTest, CanonicalisesFromOrderButNotSemantics) {
  const uint64_t forward = FingerprintQuery(TwoTableQuery(false));
  const uint64_t reversed = FingerprintQuery(TwoTableQuery(true));
  EXPECT_EQ(forward, reversed) << "FROM-list order is not semantic";

  opt::QuerySpec other = TwoTableQuery(false);
  other.tables[0].predicate =
      expr::Lt(expr::Col("l_quantity"), expr::LitInt(11));
  EXPECT_NE(FingerprintQuery(other), forward) << "predicates are semantic";

  opt::QuerySpec limited = TwoTableQuery(false);
  limited.limit = 5;
  EXPECT_NE(FingerprintQuery(limited), forward) << "LIMIT is semantic";

  opt::QuerySpec ordered = TwoTableQuery(false);
  ordered.order_by = "l_orderkey";
  EXPECT_NE(FingerprintQuery(ordered), forward) << "ORDER BY is semantic";
}

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  PlanCache cache(/*capacity=*/2);
  const PlanCacheKey a = PlanCacheKey::Make(
      1, 0.8, core::EstimatorKind::kRobustSample);
  const PlanCacheKey b = PlanCacheKey::Make(
      2, 0.8, core::EstimatorKind::kRobustSample);
  const PlanCacheKey c = PlanCacheKey::Make(
      3, 0.8, core::EstimatorKind::kRobustSample);

  cache.Insert(a, DummyPlan("A"), /*epoch=*/1);
  cache.Insert(b, DummyPlan("B"), 1);
  // Touch A so B becomes the LRU victim.
  ASSERT_NE(cache.Lookup(a, 1), nullptr);
  cache.Insert(c, DummyPlan("C"), 1);

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions_lru, 1u);
  EXPECT_NE(cache.Lookup(a, 1), nullptr);
  EXPECT_EQ(cache.Lookup(b, 1), nullptr) << "B was the LRU entry";
  EXPECT_NE(cache.Lookup(c, 1), nullptr);
}

TEST(PlanCacheTest, EpochMismatchInvalidatesLazily) {
  PlanCache cache(4);
  const PlanCacheKey key = PlanCacheKey::Make(
      7, 0.8, core::EstimatorKind::kRobustSample);
  cache.Insert(key, DummyPlan("stale"), /*epoch=*/1);

  // UPDATE STATISTICS bumped the epoch: the entry is dropped on lookup.
  EXPECT_EQ(cache.Lookup(key, /*current_epoch=*/2), nullptr);
  EXPECT_EQ(cache.stats().invalidated_epoch, 1u);
  EXPECT_EQ(cache.size(), 0u);

  // Re-inserted under the new epoch it serves again.
  cache.Insert(key, DummyPlan("fresh"), 2);
  ASSERT_NE(cache.Lookup(key, 2), nullptr);
  EXPECT_EQ(cache.Lookup(key, 2)->label, "fresh");
}

TEST(PlanCacheTest, DifferentThresholdsNeverShareAPlan) {
  // The paper's point: T% changes which plan is robust-optimal, so T% is
  // part of the key.
  PlanCache cache(8);
  const uint64_t fp = 99;
  const PlanCacheKey low = PlanCacheKey::Make(
      fp, 0.5, core::EstimatorKind::kRobustSample);
  const PlanCacheKey high = PlanCacheKey::Make(
      fp, 0.95, core::EstimatorKind::kRobustSample);
  const PlanCacheKey histogram = PlanCacheKey::Make(
      fp, 0.5, core::EstimatorKind::kHistogram);

  cache.Insert(low, DummyPlan("merge-heavy"), 1);
  EXPECT_EQ(cache.Lookup(high, 1), nullptr);
  EXPECT_EQ(cache.Lookup(histogram, 1), nullptr);

  cache.Insert(high, DummyPlan("index-conservative"), 1);
  cache.Insert(histogram, DummyPlan("histogram-pick"), 1);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Lookup(low, 1)->label, "merge-heavy");
  EXPECT_EQ(cache.Lookup(high, 1)->label, "index-conservative");
}

TEST(PlanCacheTest, DriftInvalidationEvictsAndBlocksUntilStatsRebuild) {
  PlanCache cache(8);
  const uint64_t drifted = 5;
  cache.Insert(PlanCacheKey::Make(drifted, 0.5,
                                  core::EstimatorKind::kRobustSample),
               DummyPlan("stale-low"), 1);
  cache.Insert(PlanCacheKey::Make(drifted, 0.95,
                                  core::EstimatorKind::kRobustSample),
               DummyPlan("stale-high"), 1);
  const PlanCacheKey healthy = PlanCacheKey::Make(
      6, 0.5, core::EstimatorKind::kRobustSample);
  cache.Insert(healthy, DummyPlan("healthy"), 1);

  // Every threshold's entry for the drifted fingerprint goes at once.
  EXPECT_EQ(cache.InvalidateFingerprint(drifted), 2u);
  EXPECT_EQ(cache.stats().invalidated_drift, 2u);
  EXPECT_TRUE(cache.IsDriftBlocked(drifted));
  EXPECT_NE(cache.Lookup(healthy, 1), nullptr) << "other statements keep serving";

  // A drift-blocked fingerprint cannot sneak back in: its statistics are
  // known-stale, so caching a fresh plan for it would re-freeze staleness.
  cache.Insert(PlanCacheKey::Make(drifted, 0.5,
                                  core::EstimatorKind::kRobustSample),
               DummyPlan("re-cached"), 1);
  EXPECT_EQ(cache.stats().rejected_drifted, 1u);
  EXPECT_EQ(cache.Lookup(PlanCacheKey::Make(
                             drifted, 0.5, core::EstimatorKind::kRobustSample),
                         1),
            nullptr);

  // UPDATE STATISTICS lifts the block.
  cache.ClearDriftBlocks();
  EXPECT_FALSE(cache.IsDriftBlocked(drifted));
  cache.Insert(PlanCacheKey::Make(drifted, 0.5,
                                  core::EstimatorKind::kRobustSample),
               DummyPlan("replanned"), 2);
  EXPECT_NE(cache.Lookup(PlanCacheKey::Make(
                             drifted, 0.5, core::EstimatorKind::kRobustSample),
                         2),
            nullptr);
}

TEST(PlanCacheTest, DriftBlockAutoLiftsAtNewerEpoch) {
  PlanCache cache(4);
  const uint64_t drifted = 0xD01F;
  cache.Insert(PlanCacheKey::Make(drifted, 0.5,
                                  core::EstimatorKind::kRobustSample),
               DummyPlan("stale"), /*epoch=*/3);
  // Block the fingerprint, recording the epoch the block was imposed under.
  cache.InvalidateFingerprint(drifted, /*blocked_epoch=*/3);
  ASSERT_TRUE(cache.IsDriftBlocked(drifted));

  // Same epoch: still blocked, re-inserts refused.
  cache.Insert(PlanCacheKey::Make(drifted, 0.5,
                                  core::EstimatorKind::kRobustSample),
               DummyPlan("still-stale"), 3);
  EXPECT_EQ(cache.stats().rejected_drifted, 1u);

  // The background rebuild bumps the statistics epoch; the first insert at
  // the newer epoch lifts the block automatically — no ClearDriftBlocks.
  cache.Insert(PlanCacheKey::Make(drifted, 0.5,
                                  core::EstimatorKind::kRobustSample),
               DummyPlan("fresh"), /*epoch=*/4);
  EXPECT_FALSE(cache.IsDriftBlocked(drifted));
  EXPECT_EQ(cache.stats().drift_blocks_lifted, 1u);
  ASSERT_NE(cache.Lookup(PlanCacheKey::Make(
                             drifted, 0.5, core::EstimatorKind::kRobustSample),
                         4),
            nullptr);
}

TEST(PlanCacheTest, DriftBlockAutoLiftsOnLookupToo) {
  PlanCache cache(4);
  const uint64_t drifted = 0xD02F;
  cache.InvalidateFingerprint(drifted, /*blocked_epoch=*/5);
  ASSERT_TRUE(cache.IsDriftBlocked(drifted));

  // A lookup at the imposing epoch leaves the block in place...
  EXPECT_EQ(cache.Lookup(PlanCacheKey::Make(
                             drifted, 0.5, core::EstimatorKind::kRobustSample),
                         5),
            nullptr);
  EXPECT_TRUE(cache.IsDriftBlocked(drifted));
  // ...and the first lookup at a later epoch lifts it.
  EXPECT_EQ(cache.Lookup(PlanCacheKey::Make(
                             drifted, 0.5, core::EstimatorKind::kRobustSample),
                         6),
            nullptr);
  EXPECT_FALSE(cache.IsDriftBlocked(drifted));
  EXPECT_EQ(cache.stats().drift_blocks_lifted, 1u);
}

TEST(PlanCacheTest, LookupFaultDegradesToCountedMiss) {
  fault::FaultInjector injector(3);
  injector.Arm(fault::sites::kPlanCacheLookup, fault::FaultSpec::FirstN(1));

  PlanCache cache(4);
  cache.set_fault_injector(&injector);
  const PlanCacheKey key = PlanCacheKey::Make(
      1, 0.8, core::EstimatorKind::kRobustSample);
  cache.Insert(key, DummyPlan("cached"), 1);

  // First lookup degrades (fault fires); the entry itself is intact.
  EXPECT_EQ(cache.Lookup(key, 1), nullptr);
  EXPECT_EQ(cache.stats().degraded_fault, 1u);
  EXPECT_NE(cache.Lookup(key, 1), nullptr);
}

TEST(PlanCacheTest, PublishMetricsIsIdempotent) {
  PlanCache cache(2);
  const PlanCacheKey key = PlanCacheKey::Make(
      1, 0.8, core::EstimatorKind::kRobustSample);
  cache.Insert(key, DummyPlan("p"), 1);
  ASSERT_NE(cache.Lookup(key, 1), nullptr);
  ASSERT_EQ(cache.Lookup(PlanCacheKey::Make(
                             2, 0.8, core::EstimatorKind::kRobustSample),
                         1),
            nullptr);

  obs::MetricsRegistry metrics;
  cache.PublishMetrics(&metrics);
  cache.PublishMetrics(&metrics);
  EXPECT_DOUBLE_EQ(metrics.GetCounter("perf.cache.plan.hits")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.GetCounter("perf.cache.plan.misses")->value(), 1.0);
  EXPECT_DOUBLE_EQ(
      metrics.GetCounter("perf.cache.plan.insertions")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("perf.cache.plan.size")->value(), 1.0);
}

}  // namespace
}  // namespace server
}  // namespace robustqo
