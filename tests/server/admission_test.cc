// Admission control: strict-FIFO waves under a concurrency cap and a
// shared memory budget, typed rejections, and the no-starvation property
// (every queued request is admitted after finitely many completions).

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "server/admission.h"

namespace robustqo {
namespace server {
namespace {

std::vector<uint64_t> Tickets(const std::vector<AdmissionTicket>& wave) {
  std::vector<uint64_t> out;
  for (const AdmissionTicket& t : wave) out.push_back(t.ticket);
  return out;
}

TEST(AdmissionTest, WavesAdmitInFifoOrderUnderConcurrencyCap) {
  AdmissionConfig config;
  config.max_concurrent = 2;
  AdmissionController admission(config);

  std::vector<uint64_t> submitted;
  for (int i = 0; i < 5; ++i) {
    Result<uint64_t> ticket = admission.Submit(/*session=*/1);
    ASSERT_TRUE(ticket.ok());
    submitted.push_back(ticket.value());
  }

  std::vector<AdmissionTicket> wave = admission.AdmitWave();
  EXPECT_EQ(Tickets(wave), (std::vector<uint64_t>{submitted[0], submitted[1]}));
  EXPECT_EQ(admission.in_flight(), 2u);
  EXPECT_EQ(admission.queue_depth(), 3u);
  // The cap holds until something completes.
  EXPECT_TRUE(admission.AdmitWave().empty());

  ASSERT_TRUE(admission.Complete(submitted[0]).ok());
  wave = admission.AdmitWave();
  EXPECT_EQ(Tickets(wave), (std::vector<uint64_t>{submitted[2]}));
}

TEST(AdmissionTest, EveryRequestIsEventuallyAdmittedInOrder) {
  // No starvation: with a cap of 1 and completions after every wave, the
  // admitted order is exactly the submission order.
  AdmissionConfig config;
  config.max_concurrent = 1;
  AdmissionController admission(config);

  std::vector<uint64_t> submitted;
  for (int i = 0; i < 32; ++i) {
    submitted.push_back(admission.Submit(1).value());
  }
  std::vector<uint64_t> admitted;
  size_t waves = 0;
  while (admitted.size() < submitted.size()) {
    ASSERT_LT(waves++, 64u) << "admission must make progress every wave";
    for (const AdmissionTicket& t : admission.AdmitWave()) {
      admitted.push_back(t.ticket);
      ASSERT_TRUE(admission.Complete(t.ticket).ok());
    }
  }
  EXPECT_EQ(admitted, submitted);
  EXPECT_EQ(admission.stats().completed, 32u);
  // Everyone but the first waited at least one wave.
  EXPECT_EQ(admission.stats().waited, 31u);
}

TEST(AdmissionTest, FullQueueRejectsTyped) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queue_depth = 2;
  AdmissionController admission(config);

  ASSERT_TRUE(admission.Submit(1).ok());
  ASSERT_TRUE(admission.Submit(1).ok());
  Result<uint64_t> rejected = admission.Submit(1);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.stats().rejected_queue_full, 1u);
}

TEST(AdmissionTest, MemoryBudgetBlocksHeadWithoutOvertaking) {
  AdmissionConfig config;
  config.max_concurrent = 8;
  config.memory_budget_bytes = 100;
  AdmissionController admission(config);

  const uint64_t big = admission.Submit(1, /*reservation_bytes=*/80).value();
  const uint64_t heavy = admission.Submit(1, 60).value();
  const uint64_t small = admission.Submit(1, 10).value();

  // big fits; heavy does not — and small must NOT jump the queue even
  // though it would fit (strict FIFO buys determinism + no starvation).
  EXPECT_EQ(Tickets(admission.AdmitWave()), (std::vector<uint64_t>{big}));
  EXPECT_TRUE(admission.AdmitWave().empty());
  EXPECT_EQ(admission.memory_reserved(), 80u);

  ASSERT_TRUE(admission.Complete(big).ok());
  EXPECT_EQ(Tickets(admission.AdmitWave()),
            (std::vector<uint64_t>{heavy, small}));
  EXPECT_EQ(admission.memory_reserved(), 70u);
}

TEST(AdmissionTest, OversizedReservationIsAdmittedAloneNotWedged) {
  AdmissionConfig config;
  config.memory_budget_bytes = 100;
  AdmissionController admission(config);

  const uint64_t giant = admission.Submit(1, 5000).value();
  const uint64_t after = admission.Submit(1, 10).value();

  // A reservation larger than the whole budget can never "fit"; admitting
  // it alone (when nothing is in flight) beats wedging the queue forever.
  EXPECT_EQ(Tickets(admission.AdmitWave()), (std::vector<uint64_t>{giant}));
  EXPECT_TRUE(admission.AdmitWave().empty());
  ASSERT_TRUE(admission.Complete(giant).ok());
  EXPECT_EQ(Tickets(admission.AdmitWave()), (std::vector<uint64_t>{after}));
}

TEST(AdmissionTest, EnqueueFaultSheds) {
  fault::FaultInjector injector(7);
  injector.Arm(fault::sites::kAdmissionEnqueue, fault::FaultSpec::FirstN(1));

  AdmissionController admission;
  admission.set_fault_injector(&injector);

  Result<uint64_t> shed = admission.Submit(1);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(admission.stats().rejected_fault, 1u);

  // The fault only fired on the first probe; service resumes.
  EXPECT_TRUE(admission.Submit(1).ok());
}

TEST(AdmissionTest, PublishMetricsIsIdempotent) {
  AdmissionController admission;
  const uint64_t ticket = admission.Submit(1).value();
  admission.AdmitWave();
  ASSERT_TRUE(admission.Complete(ticket).ok());

  obs::MetricsRegistry metrics;
  admission.PublishMetrics(&metrics);
  admission.PublishMetrics(&metrics);  // must not double-count
  EXPECT_DOUBLE_EQ(
      metrics.GetCounter("server.admission.submitted")->value(), 1.0);
  EXPECT_DOUBLE_EQ(
      metrics.GetCounter("server.admission.admitted")->value(), 1.0);
  EXPECT_DOUBLE_EQ(
      metrics.GetCounter("server.admission.completed")->value(), 1.0);
  EXPECT_DOUBLE_EQ(
      metrics.GetGauge("server.admission.in_flight")->value(), 0.0);
  EXPECT_DOUBLE_EQ(
      metrics.GetGauge("server.admission.peak_in_flight")->value(), 1.0);
}

}  // namespace
}  // namespace server
}  // namespace robustqo
