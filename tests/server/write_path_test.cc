// The write path through the query service: DML via one-shot SQL and
// prepared statements, snapshot isolation within a batch (reads admitted
// alongside a write see the pre-commit state; the next wave sees it),
// sequential commit order, and the DML response surface.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"

namespace robustqo {
namespace server {
namespace {

constexpr uint64_t kRows = 1000;

std::unique_ptr<core::Database> MakeDatabase() {
  auto db = std::make_unique<core::Database>();
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < kRows; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  EXPECT_TRUE(db->catalog()->AddTable(std::move(table)).ok());
  db->UpdateStatistics();
  return db;
}

const char kCountAll[] = "SELECT COUNT(*) AS n FROM readings";

int64_t CountOf(const QueryResponse& response) {
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.result.has_value());
  return response.result->rows.ValueAt(0, 0).AsInt64();
}

TEST(WritePathTest, OneShotDmlCommitsAndFillsDmlOutcome) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  const SessionId session = service.OpenSession();

  QueryResponse response = service.ExecuteSql(
      session, "INSERT INTO readings VALUES (9001, 5)");
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_TRUE(response.dml.has_value());
  EXPECT_FALSE(response.result.has_value());
  EXPECT_EQ(response.dml->rows_inserted, 1u);
  EXPECT_EQ(response.dml->epoch, 1u);
  EXPECT_EQ(db->catalog()->data_epoch(), 1u);
  EXPECT_FALSE(response.cache_hit);

  // The committed row is visible to the next request.
  EXPECT_EQ(CountOf(service.ExecuteSql(session, kCountAll)),
            static_cast<int64_t>(kRows + 1));
}

TEST(WritePathTest, PreparedDmlExecutesRepeatedly) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  const SessionId session = service.OpenSession();
  ASSERT_TRUE(service
                  .Prepare(session, "bump",
                           "UPDATE readings SET r_value = r_value + 1 "
                           "WHERE r_id < 10")
                  .ok());

  QueryResponse first = service.ExecutePrepared(session, "bump");
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_TRUE(first.dml.has_value());
  EXPECT_EQ(first.dml->rows_updated, 10u);
  EXPECT_EQ(first.dml->epoch, 1u);

  QueryResponse second = service.ExecutePrepared(session, "bump");
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.dml->epoch, 2u);
  // DML never comes from the plan cache.
  EXPECT_FALSE(second.cache_hit);
}

TEST(WritePathTest, ReadsInTheSameBatchSeePreCommitState) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  const SessionId session = service.OpenSession();

  // One wave: read, write, read. All three are admitted into the same
  // wave, so both reads execute at the snapshot captured at wave start —
  // neither sees the insert, regardless of position in the batch.
  std::vector<QueryRequest> batch;
  batch.push_back(QueryRequest::Sql(session, kCountAll));
  batch.push_back(QueryRequest::Sql(
      session, "INSERT INTO readings VALUES (9001, 5), (9002, 6)"));
  batch.push_back(QueryRequest::Sql(session, kCountAll));
  std::vector<QueryResponse> responses = service.ExecuteBatch(batch);
  ASSERT_EQ(responses.size(), 3u);

  EXPECT_EQ(CountOf(responses[0]), static_cast<int64_t>(kRows));
  ASSERT_TRUE(responses[1].dml.has_value());
  EXPECT_EQ(responses[1].dml->rows_inserted, 2u);
  EXPECT_EQ(CountOf(responses[2]), static_cast<int64_t>(kRows));

  // The next wave reads the committed state.
  EXPECT_EQ(CountOf(service.ExecuteSql(session, kCountAll)),
            static_cast<int64_t>(kRows + 2));
}

TEST(WritePathTest, WritesInOneBatchSerializeInAdmissionOrder) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  const SessionId session = service.OpenSession();

  std::vector<QueryRequest> batch;
  batch.push_back(
      QueryRequest::Sql(session, "INSERT INTO readings VALUES (9001, 1)"));
  batch.push_back(
      QueryRequest::Sql(session, "DELETE FROM readings WHERE r_id = 9001"));
  batch.push_back(
      QueryRequest::Sql(session, "INSERT INTO readings VALUES (9002, 2)"));
  std::vector<QueryResponse> responses = service.ExecuteBatch(batch);
  ASSERT_EQ(responses.size(), 3u);
  for (const QueryResponse& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_TRUE(r.dml.has_value());
  }
  // Epochs are assigned in admission (= request) order.
  EXPECT_EQ(responses[0].dml->epoch, 1u);
  EXPECT_EQ(responses[1].dml->epoch, 2u);
  EXPECT_EQ(responses[2].dml->epoch, 3u);
  // The second write targeted the first write's row: it must have seen it.
  EXPECT_EQ(responses[1].dml->rows_deleted, 1u);

  EXPECT_EQ(CountOf(service.ExecuteSql(session, kCountAll)),
            static_cast<int64_t>(kRows + 1));
}

TEST(WritePathTest, DmlParseErrorIsTypedAndCommitsNothing) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  const SessionId session = service.OpenSession();

  QueryResponse response = service.ExecuteSql(
      session, "UPDATE readings SET no_such_column = 1");
  EXPECT_FALSE(response.status.ok());
  EXPECT_FALSE(response.dml.has_value());
  EXPECT_EQ(db->catalog()->data_epoch(), 0u);
}

TEST(WritePathTest, SessionTalliesCountDmlAsQueries) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  const SessionId session = service.OpenSession();

  ASSERT_TRUE(service
                  .ExecuteSql(session, "DELETE FROM readings WHERE r_id = 0")
                  .status.ok());
  EXPECT_EQ(service.queries_completed(), 1u);
}

}  // namespace
}  // namespace server
}  // namespace robustqo
