// QueryService end to end on a small table: PREPARE/EXECUTE through the
// plan cache, per-session thresholds, session governor budgets, typed
// admission rejections under overload, statistics-epoch invalidation and
// the server.* metrics surface.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "expr/expression.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/query_service.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"

namespace robustqo {
namespace server {
namespace {

constexpr uint64_t kRows = 2000;

void LoadReadings(storage::Catalog* catalog) {
  auto table = std::make_unique<storage::Table>(
      "readings", storage::Schema({{"r_id", storage::DataType::kInt64},
                                   {"r_value", storage::DataType::kInt64}}));
  Rng rng(2026);
  for (uint64_t i = 0; i < kRows; ++i) {
    table->AppendRow({storage::Value::Int64(static_cast<int64_t>(i)),
                      storage::Value::Int64(
                          static_cast<int64_t>(rng.NextBounded(1000)))});
  }
  ASSERT_TRUE(catalog->AddTable(std::move(table)).ok());
}

std::unique_ptr<core::Database> MakeDatabase() {
  auto db = std::make_unique<core::Database>();
  LoadReadings(db->catalog());
  db->UpdateStatistics();
  return db;
}

const char kCountSql[] = "SELECT COUNT(*) AS n FROM readings WHERE r_value < 50";

TEST(QueryServiceTest, PreparedExecuteHitsCacheAfterFirstRun) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  const SessionId session = service.OpenSession();
  ASSERT_TRUE(service.Prepare(session, "q", kCountSql).ok());

  QueryResponse first = service.ExecutePrepared(session, "q");
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_NE(first.fingerprint, 0u);
  ASSERT_TRUE(first.result.has_value());
  EXPECT_EQ(first.result->rows.num_rows(), 1u);

  QueryResponse second = service.ExecutePrepared(session, "q");
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  // Same plan, same answer.
  EXPECT_EQ(second.result->rows.ValueAt(0, 0).ToString(),
            first.result->rows.ValueAt(0, 0).ToString());
  EXPECT_EQ(service.plan_cache()->stats().hits, 1u);
  EXPECT_EQ(service.queries_completed(), 2u);
}

TEST(QueryServiceTest, OneShotSqlAndSpecRequestsShareTheCache) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  const SessionId session = service.OpenSession();

  QueryResponse sql = service.ExecuteSql(session, kCountSql);
  ASSERT_TRUE(sql.status.ok()) << sql.status.ToString();
  EXPECT_FALSE(sql.cache_hit);

  // The same statement as a pre-parsed spec fingerprints identically, so
  // it hits the plan the SQL path cached.
  opt::QuerySpec spec;
  spec.tables.push_back(
      {"readings", expr::Lt(expr::Col("r_value"), expr::LitInt(50))});
  spec.aggregates.push_back(
      {exec::AggKind::kCount, "", "n"});
  QueryResponse by_spec = service.ExecuteSpec(session, spec);
  ASSERT_TRUE(by_spec.status.ok()) << by_spec.status.ToString();
  EXPECT_EQ(by_spec.fingerprint, sql.fingerprint);
  EXPECT_TRUE(by_spec.cache_hit);
}

TEST(QueryServiceTest, SessionsAtDifferentThresholdsNeverShareAPlan) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  SessionOptions low;
  low.confidence_threshold = 0.5;
  SessionOptions high;
  high.confidence_threshold = 0.95;
  const SessionId low_id = service.OpenSession(low);
  const SessionId high_id = service.OpenSession(high);
  ASSERT_TRUE(service.Prepare(low_id, "q", kCountSql).ok());
  ASSERT_TRUE(service.Prepare(high_id, "q", kCountSql).ok());

  QueryResponse a = service.ExecutePrepared(low_id, "q");
  QueryResponse b = service.ExecutePrepared(high_id, "q");
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.fingerprint, b.fingerprint) << "same statement";
  EXPECT_FALSE(b.cache_hit) << "different T% must be a different cache key";
  EXPECT_EQ(service.plan_cache()->size(), 2u);

  // Each session hits its own entry from now on.
  EXPECT_TRUE(service.ExecutePrepared(low_id, "q").cache_hit);
  EXPECT_TRUE(service.ExecutePrepared(high_id, "q").cache_hit);
}

TEST(QueryServiceTest, UpdateStatisticsInvalidatesCachedPlansByEpoch) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  const SessionId session = service.OpenSession();
  ASSERT_TRUE(service.Prepare(session, "q", kCountSql).ok());

  ASSERT_FALSE(service.ExecutePrepared(session, "q").cache_hit);
  ASSERT_TRUE(service.ExecutePrepared(session, "q").cache_hit);

  const uint64_t epoch_before = db->statistics()->epoch();
  service.UpdateStatistics();
  EXPECT_GT(db->statistics()->epoch(), epoch_before);

  // The cached plan predates the new statistics: one lazy invalidation,
  // then the statement re-caches under the new epoch.
  QueryResponse after = service.ExecutePrepared(session, "q");
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(service.plan_cache()->stats().invalidated_epoch, 1u);
  EXPECT_TRUE(service.ExecutePrepared(session, "q").cache_hit);
}

TEST(QueryServiceTest, OverloadedBatchRejectsTypedAndCompletesTheRest) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  ServerConfig config;
  config.admission.max_concurrent = 1;
  config.admission.max_queue_depth = 2;
  QueryService service(db.get(), config);
  const SessionId session = service.OpenSession();
  ASSERT_TRUE(service.Prepare(session, "q", kCountSql).ok());

  std::vector<QueryRequest> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(QueryRequest::Prepared(session, "q"));
  }
  std::vector<QueryResponse> responses = service.ExecuteBatch(batch);
  ASSERT_EQ(responses.size(), 5u);

  // Queue depth 2: the first two enter; the last three shed typed.
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(responses[i].status.ok()) << i;
    EXPECT_NE(responses[i].ticket, 0u);
  }
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(responses[i].status.code(), StatusCode::kResourceExhausted) << i;
    EXPECT_EQ(responses[i].ticket, 0u);
  }
  // With one slot, the second request waited at least one wave — the
  // backpressure the traffic harness charges latency for.
  EXPECT_GE(responses[1].waves_waited, 1u);

  const SessionInfo info = service.sessions()->Get(session)->Info();
  EXPECT_EQ(info.submitted, 5u);
  EXPECT_EQ(info.completed, 2u);
  EXPECT_EQ(info.rejected, 3u);
}

TEST(QueryServiceTest, SessionGovernorLimitsTripTyped) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  SessionOptions tight;
  tight.governor_limits.row_limit = 10;  // the scan alone charges 2000
  const SessionId session = service.OpenSession(tight);

  QueryResponse response = service.ExecuteSql(session, kCountSql);
  ASSERT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.queries_failed(), 1u);

  // An untight session on the same service is unaffected.
  const SessionId ok_session = service.OpenSession();
  EXPECT_TRUE(service.ExecuteSql(ok_session, kCountSql).status.ok());
}

TEST(QueryServiceTest, UnknownSessionAndStatementFailTyped) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  EXPECT_EQ(service.ExecuteSql(/*session=*/77, kCountSql).status.code(),
            StatusCode::kNotFound);

  const SessionId session = service.OpenSession();
  EXPECT_EQ(service.ExecutePrepared(session, "ghost").status.code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Prepare(77, "q", kCountSql).code(), StatusCode::kNotFound);

  ASSERT_TRUE(service.CloseSession(session).ok());
  EXPECT_EQ(service.ExecuteSql(session, kCountSql).status.code(),
            StatusCode::kNotFound);
}

#if ROBUSTQO_OBS_ENABLED
TEST(QueryServiceTest, PublishMetricsExportsTheServerFamily) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  QueryService service(db.get());
  const SessionId session = service.OpenSession();
  ASSERT_TRUE(service.Prepare(session, "q", kCountSql).ok());
  ASSERT_TRUE(service.ExecutePrepared(session, "q").status.ok());
  ASSERT_TRUE(service.ExecutePrepared(session, "q").status.ok());

  obs::MetricsRegistry metrics;
  service.PublishMetrics(&metrics);
  service.PublishMetrics(&metrics);  // idempotent
  EXPECT_DOUBLE_EQ(metrics.GetCounter("server.queries.completed")->value(),
                   2.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("server.sessions.open")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.GetCounter("server.admission.admitted")->value(),
                   2.0);
  EXPECT_DOUBLE_EQ(metrics.GetCounter("perf.cache.plan.hits")->value(), 1.0);
  EXPECT_DOUBLE_EQ(
      metrics.GetGauge("stats.epoch")->value(),
      static_cast<double>(db->statistics()->epoch()));
}

// Regression: a request's fault_fires must accumulate across all three
// phases — a degraded plan-cache lookup (PLAN), injector fires during
// execution (EXECUTE), and a dropped feedback observation (REDUCE) — not
// overwrite each other. The retained trace's counter must also agree with
// the "fault"/"fired" events actually recorded on the request's tracer.
TEST(QueryServiceTest, FaultFiresAccumulateAcrossPlanExecuteAndReduce) {
  std::unique_ptr<core::Database> db = MakeDatabase();
  db->fault_injector()->Arm(fault::sites::kPlanCacheLookup,
                            fault::FaultSpec::Always());
  fault::FaultSpec stall = fault::FaultSpec::Always();
  stall.stall_seconds = 0.001;
  db->fault_injector()->Arm(fault::sites::kClockStall, stall);
  db->fault_injector()->Arm(fault::sites::kLearningFeedbackApply,
                            fault::FaultSpec::Always());

  ServerConfig config;
  config.flight_recorder.enabled = true;
  QueryService service(db.get(), config);
  const SessionId session = service.OpenSession();
  const QueryResponse response = service.ExecuteSql(session, kCountSql);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();

  const auto traces = service.flight_recorder()->Snapshot();
  ASSERT_FALSE(traces.empty());
  const obs::RequestTrace* trace = traces.front();
  uint64_t fired_events = 0;
  bool plan_site = false;
  bool reduce_site = false;
  for (const obs::TraceEvent& event : trace->events) {
    if (event.category != "fault" || event.name != "fired") continue;
    ++fired_events;
    for (const auto& [key, value] : event.attrs) {
      if (key != "site") continue;
      plan_site |= value == fault::sites::kPlanCacheLookup;
      reduce_site |= value == fault::sites::kLearningFeedbackApply;
    }
  }
  // One PLAN fire + at least one EXECUTE fire + one REDUCE fire, all kept.
  EXPECT_GE(trace->fault_fires, 3u);
  EXPECT_EQ(trace->fault_fires, fired_events);
  EXPECT_TRUE(plan_site);
  EXPECT_TRUE(reduce_site);
  EXPECT_EQ(trace->cache_outcome, "degraded_fault");
}
#endif

}  // namespace
}  // namespace server
}  // namespace robustqo
