#include "core/database.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

namespace robustqo {
namespace core {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
    db_->UpdateStatistics();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* DatabaseTest::db_ = nullptr;

TEST_F(DatabaseTest, EstimatorAccessors) {
  EXPECT_NE(db_->histogram_estimator(), nullptr);
  EXPECT_NE(db_->robust_estimator(), nullptr);
  EXPECT_EQ(db_->estimator(EstimatorKind::kHistogram),
            db_->histogram_estimator());
  EXPECT_EQ(db_->estimator(EstimatorKind::kRobustSample),
            db_->robust_estimator());
}

TEST_F(DatabaseTest, RobustnessLevelsMapToThresholds) {
  db_->SetRobustnessLevel(stats::RobustnessLevel::kConservative);
  EXPECT_EQ(db_->confidence_threshold(), 0.95);
  db_->SetRobustnessLevel(stats::RobustnessLevel::kModerate);
  EXPECT_EQ(db_->confidence_threshold(), 0.80);
  db_->SetRobustnessLevel(stats::RobustnessLevel::kAggressive);
  EXPECT_EQ(db_->confidence_threshold(), 0.50);
  db_->SetConfidenceThreshold(0.33);
  EXPECT_EQ(db_->confidence_threshold(), 0.33);
}

TEST_F(DatabaseTest, PlanAndExecuteAgree) {
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(70);
  auto plan = db_->Plan(query, EstimatorKind::kRobustSample);
  ASSERT_TRUE(plan.ok());
  auto direct_result = db_->ExecutePlan(plan.value());
  ASSERT_TRUE(direct_result.ok());
  ExecutionResult direct = std::move(direct_result).value();
  auto via_execute = db_->Execute(query, EstimatorKind::kRobustSample);
  ASSERT_TRUE(via_execute.ok());
  EXPECT_EQ(direct.plan_label, via_execute.value().plan_label);
  EXPECT_DOUBLE_EQ(direct.simulated_seconds,
                   via_execute.value().simulated_seconds);
}

TEST_F(DatabaseTest, ExecuteReturnsAnswerAndMetrics) {
  workload::SingleTableScenario scenario;
  auto result = db_->Execute(scenario.MakeQuery(70),
                             EstimatorKind::kHistogram);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.num_rows(), 1u);
  EXPECT_GT(result.value().simulated_seconds, 0.0);
  EXPECT_GT(result.value().estimated_cost, 0.0);
  EXPECT_FALSE(result.value().plan_label.empty());
  EXPECT_FALSE(result.value().plan_tree.empty());
  EXPECT_GT(db_->last_optimizer_metrics().estimator_calls, 0u);
}

TEST_F(DatabaseTest, ExecutePropagatesPlanErrors) {
  opt::QuerySpec bad;
  bad.tables.push_back({"missing_table", nullptr});
  EXPECT_FALSE(db_->Execute(bad, EstimatorKind::kHistogram).ok());
}

TEST_F(DatabaseTest, BothEstimatorsComputeSameAnswer) {
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(64);
  auto hist = db_->Execute(query, EstimatorKind::kHistogram);
  auto robust = db_->Execute(query, EstimatorKind::kRobustSample);
  ASSERT_TRUE(hist.ok());
  ASSERT_TRUE(robust.ok());
  EXPECT_NEAR(hist.value().rows.ValueAt(0, 0).AsDouble(),
              robust.value().rows.ValueAt(0, 0).AsDouble(), 1e-6);
}

TEST_F(DatabaseTest, StatisticsPersistenceRoundTripThroughFacade) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "rqo_db_persist_test";
  fs::remove_all(dir);
  ASSERT_TRUE(db_->SaveStatisticsTo(dir.string()).ok());

  // A second database over the same data, statistics loaded from disk,
  // must plan identically to the original.
  Database twin;
  tpch::TpchConfig config;
  config.scale_factor = 0.005;
  ASSERT_TRUE(tpch::LoadTpch(twin.catalog(), config).ok());
  ASSERT_TRUE(twin.LoadStatisticsFrom(dir.string()).ok());

  workload::SingleTableScenario scenario;
  for (double offset : {60.0, 75.0, 90.0}) {
    opt::QuerySpec query = scenario.MakeQuery(offset);
    auto original = db_->Plan(query, EstimatorKind::kRobustSample);
    auto restored = twin.Plan(query, EstimatorKind::kRobustSample);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(original.value().label, restored.value().label);
    EXPECT_NEAR(original.value().estimated_cost,
                restored.value().estimated_cost, 1e-9);
  }
  fs::remove_all(dir);
}

TEST_F(DatabaseTest, MemoizationDisabledMatchesPlansButNotWork) {
  workload::ThreeTableJoinScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(12.0);
  auto memo = db_->Plan(query, EstimatorKind::kRobustSample);
  ASSERT_TRUE(memo.ok());
  const auto memo_metrics = db_->last_optimizer_metrics();
  opt::OptimizerOptions options;
  options.enable_estimate_memo = false;
  auto no_memo = db_->Plan(query, EstimatorKind::kRobustSample, options);
  ASSERT_TRUE(no_memo.ok());
  const auto raw_metrics = db_->last_optimizer_metrics();
  EXPECT_EQ(memo.value().label, no_memo.value().label);
  EXPECT_NEAR(memo.value().estimated_cost, no_memo.value().estimated_cost,
              1e-9);
  EXPECT_LT(memo_metrics.estimator_misses, raw_metrics.estimator_misses);
  EXPECT_EQ(raw_metrics.estimator_misses, raw_metrics.estimator_calls);
}

TEST_F(DatabaseTest, CostModelSwapAffectsPlanning) {
  // Make random I/O free: the index plan becomes unbeatable at any
  // selectivity estimate.
  workload::SingleTableScenario scenario;
  opt::QuerySpec query = scenario.MakeQuery(60);
  exec::CostModel cheap_io;
  cheap_io.random_io_cost = 0.0;
  cheap_io.index_seek_cost = 0.0;
  cheap_io.index_entry_cost = 0.0;
  Database db2;
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  ASSERT_TRUE(tpch::LoadTpch(db2.catalog(), config).ok());
  db2.UpdateStatistics();
  db2.set_cost_model(cheap_io);
  auto plan = db2.Plan(query, EstimatorKind::kRobustSample);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().label.find("Ix"), std::string::npos)
      << plan.value().label;
}

}  // namespace
}  // namespace core
}  // namespace robustqo
