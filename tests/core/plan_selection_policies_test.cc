#include "core/plan_selection_policies.h"

#include <gtest/gtest.h>

#include <cmath>

namespace robustqo {
namespace core {
namespace {

TEST(CostedPlanTest, LinearAndKneeShapes) {
  CostedPlan linear = LinearPlan("l", 10.0, 100.0);
  EXPECT_EQ(linear.cost(0.0), 10.0);
  EXPECT_EQ(linear.cost(0.5), 60.0);
  CostedPlan knee = KneePlan("k", 5.0, 10.0, 0.2, 1000.0);
  EXPECT_EQ(knee.cost(0.0), 5.0);
  EXPECT_NEAR(knee.cost(0.2), 7.0, 1e-12);
  EXPECT_NEAR(knee.cost(0.3), 7.0 + 100.0, 1e-12);
  // Continuous at the knee.
  EXPECT_NEAR(knee.cost(0.2 - 1e-9), knee.cost(0.2 + 1e-9), 1e-5);
}

TEST(ExpectedCostTest, ExactForLinearPlans) {
  stats::SelectivityPosterior posterior(50, 200);
  CostedPlan plan = LinearPlan("p", 3.0, 40.0);
  const double expected =
      3.0 + 40.0 * posterior.distribution().Mean();
  EXPECT_NEAR(ExpectedCost(plan, posterior), expected, 0.01);
}

TEST(ExpectedCostTest, ConstantPlanIsItsCost) {
  stats::SelectivityPosterior posterior(10, 100);
  CostedPlan flat{"flat", [](double) { return 42.0; }};
  EXPECT_NEAR(ExpectedCost(flat, posterior), 42.0, 0.01);
}

TEST(ExpectedCostTest, JensenInequalityForConvexCost) {
  // For convex cost, E[cost(s)] >= cost(E[s]) strictly when var > 0.
  stats::SelectivityPosterior posterior(20, 100);
  CostedPlan convex{"sq", [](double s) { return 1000.0 * s * s; }};
  const double lec = ExpectedCost(convex, posterior);
  const double classical = convex.cost(posterior.Mean());
  EXPECT_GT(lec, classical + 0.1);
}

TEST(PolicyScoreTest, LinearCostsMakeLecEqualClassical) {
  // With linear costs E[cost] = cost(E[s]): the policies coincide, which
  // is why the paper's running examples need plan costs that differ in
  // slope, not curvature, to separate threshold settings.
  stats::SelectivityPosterior posterior(30, 300);
  CostedPlan plan = LinearPlan("p", 2.0, 25.0);
  EXPECT_NEAR(
      PolicyScore(plan, posterior, SelectionPolicy::kClassicalPointEstimate),
      PolicyScore(plan, posterior, SelectionPolicy::kLeastExpectedCost),
      0.01);
}

TEST(SelectPlanTest, ClassicalAndLecDivergeOnKneePlans) {
  // Flat plan costs 26 always. Knee plan: cheap below 25% selectivity,
  // catastrophic above. Posterior mean sits below the knee, so the
  // classical policy picks the knee plan; LEC sees the upper tail's
  // blow-up and picks the flat plan.
  stats::SelectivityPosterior posterior(20, 100);  // mean ~20%
  std::vector<CostedPlan> plans;
  plans.push_back(KneePlan("risky", 0.0, 100.0, 0.25, 3000.0));
  plans.push_back(LinearPlan("flat", 26.0, 0.1));
  EXPECT_EQ(SelectPlan(plans, posterior,
                       SelectionPolicy::kClassicalPointEstimate),
            0u);
  EXPECT_EQ(SelectPlan(plans, posterior, SelectionPolicy::kLeastExpectedCost),
            1u);
}

TEST(SelectPlanTest, ThresholdPolicySweepsFromRiskyToSafe) {
  stats::SelectivityPosterior posterior(20, 100);
  std::vector<CostedPlan> plans;
  plans.push_back(LinearPlan("risky", 0.0, 120.0));  // cheap at low s
  plans.push_back(LinearPlan("flat", 25.0, 1.0));
  const size_t low_t = SelectPlan(plans, posterior,
                                  SelectionPolicy::kConfidenceThreshold,
                                  0.05);
  const size_t high_t = SelectPlan(plans, posterior,
                                   SelectionPolicy::kConfidenceThreshold,
                                   0.95);
  EXPECT_EQ(low_t, 0u);
  EXPECT_EQ(high_t, 1u);
}

TEST(MinimaxRegretTest, ZeroRegretWhenPlanDominates) {
  stats::SelectivityPosterior posterior(10, 100);
  std::vector<CostedPlan> plans{LinearPlan("cheap", 1.0, 1.0),
                                LinearPlan("dear", 50.0, 1.0)};
  EXPECT_EQ(MaxRegret(plans, 0, posterior), 0.0);
  EXPECT_NEAR(MaxRegret(plans, 1, posterior), 49.0, 1e-9);
  EXPECT_EQ(SelectPlanMinimaxRegret(plans, posterior), 0u);
}

TEST(MinimaxRegretTest, PrefersHedgeOverGamble) {
  // Risky plan: brilliant below the crossover, terrible above. Flat plan:
  // mediocre everywhere. With a posterior straddling the crossover, the
  // risky plan's worst-case regret is huge; the flat plan's is bounded by
  // its overpayment at low selectivity.
  stats::SelectivityPosterior posterior(20, 100);  // mean 20%, sd ~4%
  std::vector<CostedPlan> plans{
      LinearPlan("risky", 0.0, 200.0),  // crossover vs flat at 12.5%
      LinearPlan("flat", 25.0, 1.0),
  };
  const double regret_risky = MaxRegret(plans, 0, posterior);
  const double regret_flat = MaxRegret(plans, 1, posterior);
  EXPECT_GT(regret_risky, regret_flat);
  EXPECT_EQ(SelectPlanMinimaxRegret(plans, posterior), 1u);
  // A tight posterior safely below the crossover flips the choice.
  stats::SelectivityPosterior tight(50, 2000);  // mean 2.5%
  EXPECT_EQ(SelectPlanMinimaxRegret(plans, tight), 0u);
}

TEST(MinimaxRegretTest, NarrowCredibleRegionShrinksRegret) {
  stats::SelectivityPosterior posterior(20, 100);
  std::vector<CostedPlan> plans{LinearPlan("risky", 0.0, 200.0),
                                LinearPlan("flat", 25.0, 1.0)};
  EXPECT_LE(MaxRegret(plans, 0, posterior, 0.5),
            MaxRegret(plans, 0, posterior, 0.99));
}

TEST(SelectPlanTest, SingleCandidateAlwaysSelected) {
  stats::SelectivityPosterior posterior(1, 10);
  std::vector<CostedPlan> plans{LinearPlan("only", 1.0, 1.0)};
  for (auto policy : {SelectionPolicy::kClassicalPointEstimate,
                      SelectionPolicy::kLeastExpectedCost,
                      SelectionPolicy::kConfidenceThreshold}) {
    EXPECT_EQ(SelectPlan(plans, posterior, policy), 0u);
  }
}

}  // namespace
}  // namespace core
}  // namespace robustqo
