#include "core/cost_distribution.h"

#include <gtest/gtest.h>

#include <cmath>

namespace robustqo {
namespace core {
namespace {

// The paper's Figures 1-3 setup: two plans, selectivity inferred from a
// 200-tuple sample with 50 hits (Section 3.1.1).
class CostDistributionTest : public ::testing::Test {
 protected:
  CostDistributionTest()
      : posterior_(50, 200),
        // Chosen so plan1 is selectivity-sensitive and plan2 flat, with
        // costs in the paper's 20-45 range around s ~ 25%.
        plan1_{"Plan 1", 15.0, 60.0 / 1000.0},
        plan2_{"Plan 2", 30.0, 6.0 / 1000.0},
        d1_(posterior_, plan1_, 1000.0),
        d2_(posterior_, plan2_, 1000.0) {}

  stats::SelectivityPosterior posterior_;
  LinearCostPlan plan1_;
  LinearCostPlan plan2_;
  PlanCostDistribution d1_;
  PlanCostDistribution d2_;
};

TEST_F(CostDistributionTest, SelectivityForCostInvertsTheCostFunction) {
  for (double s : {0.1, 0.25, 0.5}) {
    const double cost = plan1_.CostAtSelectivity(s, 1000.0);
    EXPECT_NEAR(d1_.SelectivityForCost(cost), s, 1e-12);
  }
  EXPECT_EQ(d1_.SelectivityForCost(-100.0), 0.0);  // clamped
  EXPECT_EQ(d1_.SelectivityForCost(1e9), 1.0);
}

TEST_F(CostDistributionTest, CostCdfIsChangeOfVariable) {
  for (double s : {0.1, 0.25, 0.4}) {
    const double cost = plan1_.CostAtSelectivity(s, 1000.0);
    EXPECT_NEAR(d1_.CostCdf(cost), posterior_.Cdf(s), 1e-12);
  }
}

TEST_F(CostDistributionTest, CostPdfIntegratesToOne) {
  const double lo = plan1_.fixed;
  const double hi = plan1_.CostAtSelectivity(1.0, 1000.0);
  double integral = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    const double c = lo + (hi - lo) * (i + 0.5) / steps;
    integral += d1_.CostPdf(c) * (hi - lo) / steps;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST_F(CostDistributionTest, FlatPlanHasTighterCostDistribution) {
  // The paper's Figure 2 observation: uncertainty hits the
  // selectivity-sensitive plan much harder.
  const double spread1 = d1_.CostQuantile(0.95) - d1_.CostQuantile(0.05);
  const double spread2 = d2_.CostQuantile(0.95) - d2_.CostQuantile(0.05);
  EXPECT_GT(spread1, 5.0 * spread2);
}

TEST_F(CostDistributionTest, ShortcutEqualsExplicitInversion) {
  // Section 3.1.1's equivalence claim: inverting the selectivity cdf and
  // costing once equals inverting the execution-cost cdf.
  for (double t : {0.05, 0.2, 0.5, 0.8, 0.95}) {
    EXPECT_NEAR(d1_.CostQuantile(t), d1_.CostQuantileByInversion(t), 1e-6)
        << "t=" << t;
    EXPECT_NEAR(d2_.CostQuantile(t), d2_.CostQuantileByInversion(t), 1e-6);
  }
}

TEST_F(CostDistributionTest, ExpectedCostExactForLinearPlans) {
  const double expected =
      plan1_.fixed + plan1_.per_tuple * 1000.0 * posterior_.Mean();
  EXPECT_NEAR(d1_.ExpectedCost(), expected, 1e-9);
}

TEST_F(CostDistributionTest, VarianceScalesWithSlopeSquared) {
  // Slope ratio is 10x, so variance ratio must be 100x.
  EXPECT_NEAR(d1_.CostVariance() / d2_.CostVariance(), 100.0, 1e-6);
}

TEST_F(CostDistributionTest, PreferenceFlipsAtSomeThreshold) {
  // Figure 3: the aggressive end prefers the risky plan, the conservative
  // end the flat plan, with a single flip in between.
  const double lo_diff = d1_.CostQuantile(0.05) - d2_.CostQuantile(0.05);
  const double hi_diff = d1_.CostQuantile(0.95) - d2_.CostQuantile(0.95);
  ASSERT_LT(lo_diff, 0.0);
  ASSERT_GT(hi_diff, 0.0);
  auto crossover = PreferenceCrossoverThreshold(d1_, d2_);
  ASSERT_TRUE(crossover.has_value());
  EXPECT_GT(*crossover, 0.05);
  EXPECT_LT(*crossover, 0.95);
  // At the crossover the quantiles agree.
  EXPECT_NEAR(d1_.CostQuantile(*crossover), d2_.CostQuantile(*crossover),
              0.01);
}

TEST_F(CostDistributionTest, NoCrossoverWhenOnePlanDominates) {
  LinearCostPlan cheap{"cheap", 1.0, 0.001};
  PlanCostDistribution d_cheap(posterior_, cheap, 1000.0);
  EXPECT_FALSE(PreferenceCrossoverThreshold(d_cheap, d2_).has_value());
}

TEST_F(CostDistributionTest, QuantileMonotoneInThreshold) {
  double prev = 0.0;
  for (double t = 0.05; t < 1.0; t += 0.05) {
    const double q = d1_.CostQuantile(t);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

}  // namespace
}  // namespace core
}  // namespace robustqo
