#include <gtest/gtest.h>

#include "core/database.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

namespace robustqo {
namespace core {
namespace {

class FeedbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    tpch::TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
    db_->UpdateStatistics();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(FeedbackTest, DisabledByDefault) {
  workload::SingleTableScenario scenario;
  ASSERT_TRUE(db_->Execute(scenario.MakeQuery(70),
                           EstimatorKind::kRobustSample)
                  .ok());
  EXPECT_EQ(db_->feedback().count(), 0u);
}

TEST_F(FeedbackTest, ExecuteRecordsTrueSelectivity) {
  db_->EnableFeedback(true);
  workload::SingleTableScenario scenario;
  const double offset = 64;
  auto result =
      db_->Execute(scenario.MakeQuery(offset), EstimatorKind::kRobustSample);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(db_->feedback().count(), 1u);
  const double recorded = db_->feedback().observations()[0];
  const double truth = scenario.TrueSelectivity(*db_->catalog(), offset);
  EXPECT_NEAR(recorded, truth, 1e-12);
  EXPECT_EQ(result.value().spj_rows,
            static_cast<uint64_t>(
                truth *
                static_cast<double>(
                    db_->catalog()->GetTable("lineitem")->num_rows()) +
                0.5));
}

TEST_F(FeedbackTest, SpjRowsForAggregateFreeQuery) {
  db_->EnableFeedback(true);
  opt::QuerySpec query;
  query.tables.push_back({"part", nullptr});
  query.select_columns = {"p_partkey"};
  auto result = db_->Execute(query, EstimatorKind::kRobustSample);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().spj_rows,
            db_->catalog()->GetTable("part")->num_rows());
  EXPECT_EQ(db_->feedback().observations()[0], 1.0);
}

TEST_F(FeedbackTest, JoinFeedbackUsesRootTablePopulation) {
  db_->EnableFeedback(true);
  workload::ThreeTableJoinScenario scenario;
  const double offset = 11.0;
  ASSERT_TRUE(db_->Execute(scenario.MakeQuery(offset),
                           EstimatorKind::kRobustSample)
                  .ok());
  ASSERT_EQ(db_->feedback().count(), 1u);
  // Join selectivity relative to lineitem equals the part predicate's
  // selectivity (uniform FK references).
  const double part_sel = scenario.TrueSelectivity(*db_->catalog(), offset);
  EXPECT_NEAR(db_->feedback().observations()[0], part_sel, 0.35 * part_sel);
}

TEST_F(FeedbackTest, AdoptFeedbackPriorInstallsAndResets) {
  db_->EnableFeedback(true);
  workload::SingleTableScenario scenario;
  for (double offset : workload::SingleTableScenario::DefaultParams()) {
    ASSERT_TRUE(db_->Execute(scenario.MakeQuery(offset),
                             EstimatorKind::kRobustSample)
                    .ok());
  }
  auto prior = db_->AdoptFeedbackPrior(5);
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();
  ASSERT_TRUE(
      db_->robust_estimator()->config().custom_prior.has_value());
  // Workload selectivities are all below ~1%: the fitted prior is heavily
  // right-weighted (beta >> alpha).
  EXPECT_GT(prior.value().beta, prior.value().alpha * 10);
  db_->ResetPrior();
  EXPECT_FALSE(
      db_->robust_estimator()->config().custom_prior.has_value());
}

TEST_F(FeedbackTest, AdoptFailsOnTooFewObservations) {
  db_->EnableFeedback(true);
  workload::SingleTableScenario scenario;
  ASSERT_TRUE(db_->Execute(scenario.MakeQuery(70),
                           EstimatorKind::kRobustSample)
                  .ok());
  EXPECT_FALSE(db_->AdoptFeedbackPrior(10).ok());
  EXPECT_FALSE(
      db_->robust_estimator()->config().custom_prior.has_value());
}

}  // namespace
}  // namespace core
}  // namespace robustqo
