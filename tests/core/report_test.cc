#include "core/report.h"

#include <gtest/gtest.h>

#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

namespace robustqo {
namespace core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.01;
    ASSERT_TRUE(tpch::LoadTpch(db_->catalog(), config).ok());
    stats::StatisticsConfig stats_config;
    stats_config.seed = 99;
    db_->UpdateStatistics(stats_config);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* ReportTest::db_ = nullptr;

TEST_F(ReportTest, ReportCoversAllThresholds) {
  workload::SingleTableScenario scenario;
  auto report = ThresholdPreferenceReport(db_, scenario.MakeQuery(70));
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().size(), 5u);
  for (const auto& row : report.value()) {
    EXPECT_FALSE(row.plan_label.empty());
    EXPECT_GT(row.estimated_cost, 0.0);
  }
  // Estimated rows grow with the threshold (cdf-inverse is monotone).
  for (size_t i = 1; i < report.value().size(); ++i) {
    EXPECT_GE(report.value()[i].estimated_rows,
              report.value()[i - 1].estimated_rows - 1e-9);
  }
}

TEST_F(ReportTest, FlipVisibleAtLowSelectivity) {
  // Near-zero true selectivity: aggressive thresholds pick the index
  // intersection, conservative ones the scan — the report should show one
  // flip.
  workload::SingleTableScenario scenario;
  auto report = ThresholdPreferenceReport(db_, scenario.MakeQuery(92));
  ASSERT_TRUE(report.ok());
  const std::string first = report.value().front().plan_label;
  const std::string last = report.value().back().plan_label;
  EXPECT_NE(first, last);
  EXPECT_NE(first.find("IxSect"), std::string::npos) << first;
  EXPECT_NE(last.find("Seq("), std::string::npos) << last;
  const std::string text = FormatThresholdReport(report.value());
  EXPECT_NE(text.find("preference flips"), std::string::npos);
}

TEST_F(ReportTest, ErrorsPropagate) {
  opt::QuerySpec bad;
  bad.tables.push_back({"nope", nullptr});
  EXPECT_FALSE(ThresholdPreferenceReport(db_, bad).ok());
}

TEST_F(ReportTest, FormatterAlignsRows) {
  std::vector<ThresholdPreference> rows = {
      {0.5, "Agg(Seq(lineitem))", 0.7, 100.0},
      {0.8, "Agg(Seq(lineitem))", 0.7, 150.0},
  };
  const std::string text = FormatThresholdReport(rows);
  EXPECT_NE(text.find("est cost"), std::string::npos);
  EXPECT_EQ(text.find("preference flips"), std::string::npos);
}

TEST(QErrorTest, SymmetricAndAtLeastOne) {
  EXPECT_DOUBLE_EQ(QError(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(200.0, 100.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(100.0, 200.0), 2.0);  // symmetric in direction
  EXPECT_DOUBLE_EQ(QError(10.0, 1000.0), 100.0);
}

TEST(QErrorTest, FloorsAtOneRow) {
  // Empty results must not blow the ratio up: both sides floor at 1 row.
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(50.0, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 50.0), 50.0);
}

TEST(QErrorSummaryTest, MaxAndMedian) {
  const QErrorSummary s = SummarizeQErrors({4.0, 1.0, 2.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.max_q, 4.0);
  EXPECT_DOUBLE_EQ(s.median_q, 2.0);
}

TEST(QErrorSummaryTest, EvenCountTakesLowerMiddle) {
  const QErrorSummary s = SummarizeQErrors({1.0, 2.0, 3.0, 100.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.median_q, 2.0);
}

TEST(QErrorSummaryTest, EmptyInputIsZeroed) {
  const QErrorSummary s = SummarizeQErrors({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max_q, 0.0);
  EXPECT_DOUBLE_EQ(s.median_q, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace robustqo
