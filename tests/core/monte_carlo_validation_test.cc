// Cross-validation of the Section-5 closed-form analytical model against
// brute-force Monte Carlo simulation of the whole estimation pipeline:
// draw k ~ Binomial(n, p), infer the posterior, apply the threshold rule,
// pick a plan, pay its true cost. The closed form and the simulation must
// agree — this pins the algebra behind Figures 5-8.

#include <gtest/gtest.h>

#include <cmath>

#include "core/analytical_model.h"
#include "stats_math/binomial_distribution.h"
#include "util/rng.h"

namespace robustqo {
namespace core {
namespace {

class MonteCarloParam
    : public ::testing::TestWithParam<std::tuple<double, double, uint64_t>> {
};

TEST_P(MonteCarloParam, ClosedFormMatchesSimulation) {
  const auto [p, threshold, n] = GetParam();
  TwoPlanAnalyticalModel model;
  Rng rng(static_cast<uint64_t>(p * 1e7) + n + 1);
  math::BinomialDistribution binom(static_cast<int64_t>(n), p);

  const int trials = 4000;
  int plan1_count = 0;
  double total_time = 0.0;
  for (int t = 0; t < trials; ++t) {
    const uint64_t k = static_cast<uint64_t>(binom.Sample(&rng));
    const int choice = model.PlanChoice(k, n, threshold);
    if (choice == 1) ++plan1_count;
    const auto& plan =
        choice == 1 ? model.params().p1 : model.params().p2;
    total_time += plan.CostAtSelectivity(p, model.params().table_rows);
  }
  const double sim_prob1 = static_cast<double>(plan1_count) / trials;
  const double sim_time = total_time / trials;

  const double exact_prob1 = model.ProbabilityPlan1(p, n, threshold);
  const double exact_time = model.ExpectedExecutionTime(p, n, threshold);

  EXPECT_NEAR(sim_prob1, exact_prob1, 0.03)
      << "p=" << p << " T=" << threshold << " n=" << n;
  EXPECT_NEAR(sim_time, exact_time,
              0.05 * std::max(1.0, exact_time))
      << "p=" << p << " T=" << threshold << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MonteCarloParam,
    ::testing::Values(
        std::tuple<double, double, uint64_t>{0.0005, 0.50, 1000},
        std::tuple<double, double, uint64_t>{0.0014, 0.50, 1000},
        std::tuple<double, double, uint64_t>{0.0030, 0.50, 1000},
        std::tuple<double, double, uint64_t>{0.0014, 0.05, 1000},
        std::tuple<double, double, uint64_t>{0.0014, 0.95, 1000},
        std::tuple<double, double, uint64_t>{0.0020, 0.80, 500},
        std::tuple<double, double, uint64_t>{0.0020, 0.50, 50}));

TEST(MonteCarloValidation, WorkloadSummaryMatchesSimulation) {
  TwoPlanAnalyticalModel model;
  std::vector<double> sels{0.0002, 0.0008, 0.0014, 0.0030, 0.0080};
  const uint64_t n = 1000;
  const double threshold = 0.8;

  Rng rng(99);
  const int trials_per_sel = 3000;
  std::vector<double> times;
  times.reserve(sels.size() * trials_per_sel);
  for (double p : sels) {
    math::BinomialDistribution binom(static_cast<int64_t>(n), p);
    for (int t = 0; t < trials_per_sel; ++t) {
      const uint64_t k = static_cast<uint64_t>(binom.Sample(&rng));
      const auto& plan = model.PlanChoice(k, n, threshold) == 1
                             ? model.params().p1
                             : model.params().p2;
      times.push_back(plan.CostAtSelectivity(p, model.params().table_rows));
    }
  }
  double mean = 0.0;
  for (double t : times) mean += t;
  mean /= static_cast<double>(times.size());
  double var = 0.0;
  for (double t : times) var += (t - mean) * (t - mean);
  var /= static_cast<double>(times.size());

  const auto summary = model.SummarizeWorkload(sels, n, threshold);
  EXPECT_NEAR(mean, summary.mean_seconds,
              0.03 * std::max(1.0, summary.mean_seconds));
  EXPECT_NEAR(std::sqrt(var), summary.std_dev_seconds,
              0.15 * std::max(0.5, summary.std_dev_seconds));
}

}  // namespace
}  // namespace core
}  // namespace robustqo
