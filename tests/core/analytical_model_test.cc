#include "core/analytical_model.h"

#include <gtest/gtest.h>

namespace robustqo {
namespace core {
namespace {

TEST(LinearCostPlanTest, CostEvaluation) {
  LinearCostPlan plan{"p", 5.0, 2.0};
  EXPECT_EQ(plan.Cost(0), 5.0);
  EXPECT_EQ(plan.Cost(10), 25.0);
  EXPECT_EQ(plan.CostAtSelectivity(0.5, 100), 105.0);
}

TEST(AnalyticalModelTest, PaperCrossoverNearPoint14Percent) {
  TwoPlanAnalyticalModel model;
  // Paper Section 5.1: pc = (f1-f2)/((v2-v1)N) ~ 0.14%.
  EXPECT_NEAR(model.CrossoverSelectivity(), 0.0014, 0.0002);
}

TEST(AnalyticalModelTest, HighCrossoverParamsNearFivePercent) {
  TwoPlanAnalyticalModel model(HighCrossoverParams());
  EXPECT_NEAR(model.CrossoverSelectivity(), 0.052, 0.004);
}

TEST(AnalyticalModelTest, OptimalCostPicksCheaperPlan) {
  TwoPlanAnalyticalModel model;
  const double pc = model.CrossoverSelectivity();
  const auto& params = model.params();
  // Below the crossover plan 2 is optimal; above it plan 1.
  EXPECT_EQ(model.OptimalCost(pc / 10),
            params.p2.CostAtSelectivity(pc / 10, params.table_rows));
  EXPECT_EQ(model.OptimalCost(pc * 10),
            params.p1.CostAtSelectivity(pc * 10, params.table_rows));
}

TEST(AnalyticalModelTest, EstimateMatchesPosteriorQuantile) {
  TwoPlanAnalyticalModel model;
  stats::SelectivityPosterior posterior(10, 100);
  EXPECT_DOUBLE_EQ(model.EstimateForObservation(10, 100, 0.8),
                   posterior.EstimateAtConfidence(0.8));
}

TEST(AnalyticalModelTest, PlanChoiceThresholdMonotoneInK) {
  TwoPlanAnalyticalModel model;
  // Once k is large enough to choose plan 1, larger k must stay plan 1.
  const uint64_t n = 1000;
  const uint64_t kstar = model.Plan1ThresholdK(n, 0.5);
  ASSERT_LE(kstar, n);
  for (uint64_t k = 0; k <= n; k += 50) {
    EXPECT_EQ(model.PlanChoice(k, n, 0.5), k >= kstar ? 1 : 2);
  }
}

TEST(AnalyticalModelTest, HigherThresholdLowersPlan1Bar) {
  // A higher confidence threshold inflates the selectivity estimate, so
  // FEWER positive samples are needed before the flat plan looks right.
  TwoPlanAnalyticalModel model;
  const uint64_t n = 1000;
  EXPECT_LE(model.Plan1ThresholdK(n, 0.95), model.Plan1ThresholdK(n, 0.5));
  EXPECT_LE(model.Plan1ThresholdK(n, 0.5), model.Plan1ThresholdK(n, 0.05));
}

TEST(AnalyticalModelTest, T95NeverChoosesRiskyPlanAtN1000) {
  // Paper Section 5.2.1: at T = 95%, even k = 0 of 1000 leaves more than
  // 5% posterior mass above the crossover, so the optimizer can never be
  // 95% confident the risky (selectivity-sensitive) plan is safe — it
  // always picks the flat plan P1, already at k = 0.
  TwoPlanAnalyticalModel model;
  EXPECT_EQ(model.PlanChoice(0, 1000, 0.95), 1);
  EXPECT_EQ(model.Plan1ThresholdK(1000, 0.95), 0u);
}

TEST(AnalyticalModelTest, ProbabilityPlan1IncreasesWithSelectivity) {
  TwoPlanAnalyticalModel model;
  double prev = -1.0;
  for (double p : {0.0, 0.0005, 0.001, 0.002, 0.005, 0.01}) {
    const double prob = model.ProbabilityPlan1(p, 1000, 0.5);
    EXPECT_GE(prob, prev - 1e-12);
    prev = prob;
  }
}

TEST(AnalyticalModelTest, ProbabilityBoundsAndExtremes) {
  TwoPlanAnalyticalModel model;
  const double lo = model.ProbabilityPlan1(0.00001, 1000, 0.5);
  const double hi = model.ProbabilityPlan1(0.01, 1000, 0.5);
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(lo, 0.2);
  EXPECT_GE(hi, 0.95);
  EXPECT_LE(hi, 1.0);
}

TEST(AnalyticalModelTest, ExpectedTimeIsMixtureOfPlanCosts) {
  TwoPlanAnalyticalModel model;
  const double p = 0.001;
  const auto& params = model.params();
  const double c1 = params.p1.CostAtSelectivity(p, params.table_rows);
  const double c2 = params.p2.CostAtSelectivity(p, params.table_rows);
  const double e = model.ExpectedExecutionTime(p, 1000, 0.5);
  EXPECT_GE(e, std::min(c1, c2) - 1e-9);
  EXPECT_LE(e, std::max(c1, c2) + 1e-9);
}

TEST(AnalyticalModelTest, SecondMomentAtLeastMeanSquared) {
  TwoPlanAnalyticalModel model;
  for (double p : {0.0002, 0.0014, 0.006}) {
    const double mean = model.ExpectedExecutionTime(p, 500, 0.8);
    const double second = model.SecondMomentExecutionTime(p, 500, 0.8);
    EXPECT_GE(second, mean * mean - 1e-9);
  }
}

TEST(AnalyticalModelTest, HighThresholdReducesWorkloadVariance) {
  // Paper Figure 6: higher confidence thresholds trade mean for variance.
  TwoPlanAnalyticalModel model;
  std::vector<double> sels;
  for (int i = 0; i <= 20; ++i) sels.push_back(i * 0.0005);
  const auto aggressive = model.SummarizeWorkload(sels, 1000, 0.05);
  const auto conservative = model.SummarizeWorkload(sels, 1000, 0.95);
  EXPECT_LT(conservative.std_dev_seconds, aggressive.std_dev_seconds);
}

TEST(AnalyticalModelTest, ModerateThresholdBeatsExtremesOnMeanTime) {
  // Paper Section 5.2.1: moderate settings give the lowest expected time.
  TwoPlanAnalyticalModel model;
  std::vector<double> sels;
  for (int i = 0; i <= 20; ++i) sels.push_back(i * 0.0005);
  const double mean_5 = model.SummarizeWorkload(sels, 1000, 0.05).mean_seconds;
  const double mean_80 =
      model.SummarizeWorkload(sels, 1000, 0.80).mean_seconds;
  const double mean_95 =
      model.SummarizeWorkload(sels, 1000, 0.95).mean_seconds;
  EXPECT_LT(mean_80, mean_5);
  EXPECT_LT(mean_80, mean_95);
}

TEST(AnalyticalModelTest, LargerSamplesImproveExpectedTime) {
  // Paper Figure 7/12: among samples large enough to ever choose the risky
  // plan, bigger is better on both mean and variability. (n = 50 is the
  // paper's exception: it self-adjusts to always-seq-scan, giving a low
  // mean but suboptimal very-low-selectivity queries — covered by
  // TinySampleSelfAdjustsToSafePlan.)
  TwoPlanAnalyticalModel model;
  std::vector<double> sels;
  for (int i = 1; i <= 20; ++i) sels.push_back(i * 0.0005);
  // Small samples (n <= ~250 here) never choose the risky plan at all.
  EXPECT_EQ(model.Plan1ThresholdK(100, 0.5), 0u);
  EXPECT_GT(model.Plan1ThresholdK(500, 0.5), 0u);
  const double t500 = model.SummarizeWorkload(sels, 500, 0.5).mean_seconds;
  const double t1000 = model.SummarizeWorkload(sels, 1000, 0.5).mean_seconds;
  const double t2500 = model.SummarizeWorkload(sels, 2500, 0.5).mean_seconds;
  EXPECT_LT(t1000, t500);
  EXPECT_LT(t2500, t1000);
  const double s500 =
      model.SummarizeWorkload(sels, 500, 0.5).std_dev_seconds;
  const double s2500 =
      model.SummarizeWorkload(sels, 2500, 0.5).std_dev_seconds;
  EXPECT_LT(s2500, s500);
}

TEST(AnalyticalModelTest, TinySampleSelfAdjustsToSafePlan) {
  // Paper Section 6.2.4: with a 50-tuple sample at T = 50%, even k = 0
  // yields an estimate above the crossover, so the safe plan is always
  // chosen.
  TwoPlanAnalyticalModel model;
  EXPECT_EQ(model.Plan1ThresholdK(50, 0.5), 0u);
  EXPECT_EQ(model.ProbabilityPlan1(0.0001, 50, 0.5), 1.0);
}

TEST(AnalyticalModelTest, HighCrossoverInsensitiveToThreshold) {
  // Paper Figure 8: with the crossover at ~5.2%, expected times barely
  // depend on the threshold.
  TwoPlanAnalyticalModel model(HighCrossoverParams());
  std::vector<double> sels;
  for (int i = 0; i <= 20; ++i) sels.push_back(i * 0.01);
  const double m5 = model.SummarizeWorkload(sels, 1000, 0.05).mean_seconds;
  const double m95 = model.SummarizeWorkload(sels, 1000, 0.95).mean_seconds;
  EXPECT_NEAR(m5, m95, 0.05 * std::max(m5, m95));
}

}  // namespace
}  // namespace core
}  // namespace robustqo
