// Risk tuning: the paper's deployment story (Section 6.2.5). A reporting
// application that demands consistent response times sets the system-wide
// robustness to "conservative"; an analyst session overrides it per query
// with an aggressive hint. This example runs the same mixed workload under
// each policy and prints the mean/variability tradeoff each achieves.
//
//   $ ./build/examples/risk_tuning

#include <cstdio>
#include <vector>

#include "core/database.h"
#include "stats_math/descriptive.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

using namespace robustqo;

int main() {
  core::Database db;
  tpch::TpchConfig data_cfg;
  data_cfg.scale_factor = 0.02;
  Status loaded = tpch::LoadTpch(db.catalog(), data_cfg);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  db.UpdateStatistics();

  // A mixed dashboard workload: the same template across parameters whose
  // selectivities span the plan crossover.
  workload::SingleTableScenario scenario;
  const std::vector<double> offsets =
      workload::SingleTableScenario::DefaultParams();

  struct Policy {
    const char* name;
    stats::RobustnessLevel level;
  };
  const Policy policies[] = {
      {"aggressive  (T=50%)", stats::RobustnessLevel::kAggressive},
      {"moderate    (T=80%)", stats::RobustnessLevel::kModerate},
      {"conservative(T=95%)", stats::RobustnessLevel::kConservative},
  };

  std::printf("system-wide robustness policies over a %zu-query dashboard "
              "workload:\n\n",
              offsets.size());
  std::printf("%-22s %12s %12s %12s %12s\n", "policy", "mean (s)",
              "std dev (s)", "min (s)", "max (s)");
  for (const Policy& policy : policies) {
    db.SetRobustnessLevel(policy.level);
    std::vector<double> times;
    for (double offset : offsets) {
      auto result = db.Execute(scenario.MakeQuery(offset),
                               core::EstimatorKind::kRobustSample);
      times.push_back(result.value().simulated_seconds);
    }
    math::Summary s = math::Summarize(times);
    std::printf("%-22s %12.3f %12.3f %12.3f %12.3f\n", policy.name, s.mean,
                s.std_dev, s.min, s.max);
  }

  // Per-query hints override the system default: the analyst's exploratory
  // query runs aggressive even while the system stays conservative.
  db.SetRobustnessLevel(stats::RobustnessLevel::kConservative);
  opt::QuerySpec exploratory = scenario.MakeQuery(90);  // tiny selectivity
  auto default_run =
      db.Execute(exploratory, core::EstimatorKind::kRobustSample);
  opt::OptimizerOptions hint;
  hint.confidence_threshold_hint = 0.50;  // "OPTION (ROBUSTNESS AGGRESSIVE)"
  auto hinted_run =
      db.Execute(exploratory, core::EstimatorKind::kRobustSample, hint);
  std::printf("\nper-query hint on a near-empty exploratory query:\n");
  std::printf("  system default (conservative): %-46s %6.2fs\n",
              default_run.value().plan_label.c_str(),
              default_run.value().simulated_seconds);
  std::printf("  with aggressive hint:          %-46s %6.2fs\n",
              hinted_run.value().plan_label.c_str(),
              hinted_run.value().simulated_seconds);
  std::printf("\nthe hint takes the risky-but-right plan for this query "
              "without\nchanging the stability guarantees of the rest of "
              "the system.\n");
  return 0;
}
