// Data-warehouse star join walkthrough (the paper's Experiment 3 scenario):
// three 10%-selective dimension filters whose *combination* selects
// anywhere from ~5% to ~0.01% of the fact table depending on how the
// filtered groups align. Shows the full EXPLAIN output of the plans the
// robust optimizer picks at both extremes and what the histogram baseline
// does instead.
//
//   $ ./build/examples/star_schema_dw

#include <cstdio>

#include "core/database.h"
#include "workload/scenarios.h"
#include "workload/star_schema.h"

using namespace robustqo;

namespace {

void RunAndExplain(core::Database* db, const opt::QuerySpec& query,
                   core::EstimatorKind kind, const char* title) {
  auto result = db->Execute(query, kind);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("--- %s ---\n", title);
  std::printf("plan: %s\n", result.value().plan_label.c_str());
  std::printf("%s", result.value().plan_tree.c_str());
  std::printf("predicted cost %.2fs, simulated execution %.2fs, "
              "SUM(f_m1)=%.1f\n\n",
              result.value().estimated_cost,
              result.value().simulated_seconds,
              result.value().rows.ValueAt(0, 0).AsDouble());
}

}  // namespace

int main() {
  core::Database db;
  workload::StarSchemaConfig config;
  config.fact_rows = 200000;
  config.dim_rows = 1000;
  Status loaded = workload::LoadStarSchema(db.catalog(), config);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  db.UpdateStatistics();
  db.SetRobustnessLevel(stats::RobustnessLevel::kModerate);

  workload::StarJoinScenario scenario;

  std::printf("fact table: %llu rows; each dimension filter selects 10%%.\n",
              static_cast<unsigned long long>(config.fact_rows));
  std::printf("AVI therefore always predicts 0.1%% of fact rows joining;\n"
              "the real fraction depends on group alignment:\n\n");
  for (double offset : {0.0, 4.0, 9.0}) {
    std::printf("  offset %.0f: true join fraction %7.4f%%\n", offset,
                scenario.TrueSelectivity(*db.catalog(), offset) * 100.0);
  }
  std::printf("\n");

  // Aligned filters: ~5% of the fact table joins. Fetching 10k rows by RID
  // would be a disaster; the robust optimizer cascades hash joins.
  RunAndExplain(&db, scenario.MakeQuery(0),
                core::EstimatorKind::kRobustSample,
                "aligned filters (join fraction ~5%), robust T=80%");

  // Misaligned filters: ~0.02% joins. Now the per-dimension semijoin +
  // RID-intersection strategy touches almost nothing.
  RunAndExplain(&db, scenario.MakeQuery(8),
                core::EstimatorKind::kRobustSample,
                "misaligned filters (join fraction ~0.02%), robust T=80%");

  // The baseline can't tell these apart: same 0.1% estimate, same plan.
  RunAndExplain(&db, scenario.MakeQuery(0),
                core::EstimatorKind::kHistogram,
                "aligned filters, histogram baseline (estimate stuck at 0.1%)");
  return 0;
}
