// Quickstart: load a TPC-H database, build statistics, and watch the robust
// optimizer trade performance for predictability as the confidence
// threshold moves — the paper's core idea in ~80 lines of API use.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"
#include "statistics/statistics_catalog.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

using namespace robustqo;

int main() {
  // 1) Load TPC-H-lite (scale 0.01: ~60k lineitem rows) with the
  //    experiments' physical design (clustering + secondary indexes).
  core::Database db;
  tpch::TpchConfig data_cfg;
  data_cfg.scale_factor = 0.01;
  Status loaded = tpch::LoadTpch(db.catalog(), data_cfg);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }
  std::printf("loaded lineitem with %llu rows\n",
              static_cast<unsigned long long>(
                  db.catalog()->GetTable("lineitem")->num_rows()));

  // 2) UPDATE STATISTICS: 250-bucket histograms for the baseline estimator,
  //    500-tuple samples + join synopses for the robust one.
  stats::StatisticsConfig stats_cfg;
  stats_cfg.sample_size = 500;
  db.UpdateStatistics(stats_cfg);

  // 3) A query with two correlated date predicates — the kind of query
  //    where the attribute-value-independence assumption goes badly wrong.
  workload::SingleTableScenario scenario;
  const double offset_days = 61;  // moderate overlap of the two windows
  opt::QuerySpec query = scenario.MakeQuery(offset_days);
  std::printf("\nquery: %s\n", query.ToString().c_str());
  std::printf("true selectivity: %.4f%%\n",
              scenario.TrueSelectivity(*db.catalog(), offset_days) * 100.0);

  // 4) Plan + execute with the histogram baseline.
  {
    Result<core::ExecutionResult> r =
        db.Execute(query, core::EstimatorKind::kHistogram);
    std::printf("\n[histograms] plan=%s\n  simulated time: %.3fs  answer: %s\n",
                r.value().plan_label.c_str(), r.value().simulated_seconds,
                r.value().rows.ValueAt(0, 0).ToString().c_str());
  }

  // 5) Plan + execute with the robust estimator at several confidence
  //    thresholds. Low T = aggressive (risky plan), high T = conservative.
  for (double threshold : {0.05, 0.50, 0.80, 0.95}) {
    opt::OptimizerOptions options;
    options.confidence_threshold_hint = threshold;  // per-query hint
    Result<core::ExecutionResult> r =
        db.Execute(query, core::EstimatorKind::kRobustSample, options);
    std::printf("[robust T=%2.0f%%] plan=%s\n  simulated time: %.3fs\n",
                threshold * 100.0, r.value().plan_label.c_str(),
                r.value().simulated_seconds);
  }

  // 6) Or set a system-wide robustness level instead of per-query hints.
  db.SetRobustnessLevel(stats::RobustnessLevel::kModerate);  // T = 80%
  Result<core::ExecutionResult> r =
      db.Execute(query, core::EstimatorKind::kRobustSample);
  std::printf("\n[system 'moderate'] plan=%s  time=%.3fs\n",
              r.value().plan_label.c_str(), r.value().simulated_seconds);
  std::printf("\nplan tree:\n%s", r.value().plan_tree.c_str());
  return 0;
}
