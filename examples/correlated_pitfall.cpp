// The correlated-predicate pitfall: why the attribute-value-independence
// (AVI) assumption is "arguably the single biggest source of significant
// query optimizer errors" (paper Section 2), and how Bayesian sampling
// sees through it.
//
// We sweep the Experiment-1 query's offset parameter and print, side by
// side: the exact selectivity, the histogram/AVI estimate (constant — it
// only sees the marginals), and the robust estimator's posterior interval.
//
//   $ ./build/examples/correlated_pitfall

#include <cstdio>

#include "core/database.h"
#include "statistics/robust_sample_estimator.h"
#include "tpch/tpch_gen.h"
#include "workload/scenarios.h"

using namespace robustqo;

int main() {
  core::Database db;
  tpch::TpchConfig data_cfg;
  data_cfg.scale_factor = 0.02;
  Status loaded = tpch::LoadTpch(db.catalog(), data_cfg);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  db.UpdateStatistics();
  const double rows = static_cast<double>(
      db.catalog()->GetTable("lineitem")->num_rows());

  workload::SingleTableScenario scenario;
  std::printf(
      "lineitem receipt dates trail ship dates by 1-30 days, so the two\n"
      "BETWEEN predicates below are strongly correlated. Histograms track\n"
      "each marginal perfectly and multiply them (AVI); the joint truth\n"
      "moves by two orders of magnitude while AVI never budges.\n\n");
  std::printf("%-8s %12s %16s %28s\n", "offset", "true sel%",
              "histogram/AVI%", "robust posterior [5%..95%]");
  for (double offset : {55.0, 64.0, 73.0, 82.0, 88.0, 92.0}) {
    opt::QuerySpec query = scenario.MakeQuery(offset);
    const double truth =
        scenario.TrueSelectivity(*db.catalog(), offset) * 100.0;

    stats::CardinalityRequest request{{"lineitem"},
                                      query.tables[0].predicate};
    const double avi =
        db.histogram_estimator()->EstimateRows(request).value() / rows *
        100.0;
    auto posterior = db.robust_estimator()->EstimatePosterior(request);
    const double lo = posterior.value().EstimateAtConfidence(0.05) * 100.0;
    const double hi = posterior.value().EstimateAtConfidence(0.95) * 100.0;
    std::printf("%-8.0f %12.4f %16.4f %15.4f .. %.4f\n", offset, truth, avi,
                lo, hi);
  }

  // What the estimates do to plan choice and execution time at one
  // interesting point: truth well above the ~0.15% crossover.
  const double offset = 61;
  opt::QuerySpec query = scenario.MakeQuery(offset);
  std::printf("\nat offset %.0f (true sel %.3f%%):\n", offset,
              scenario.TrueSelectivity(*db.catalog(), offset) * 100.0);
  auto hist = db.Execute(query, core::EstimatorKind::kHistogram);
  std::printf("  histograms chose  %-50s -> %6.2f simulated s\n",
              hist.value().plan_label.c_str(),
              hist.value().simulated_seconds);
  auto robust = db.Execute(query, core::EstimatorKind::kRobustSample);
  std::printf("  robust T=80%% chose %-49s -> %6.2f simulated s\n",
              robust.value().plan_label.c_str(),
              robust.value().simulated_seconds);
  std::printf("\nAVI's 40x underestimate sends the baseline into the risky\n"
              "index-intersection plan: one random I/O per qualifying row.\n");
  return 0;
}
