// SQL interface: the paper's experiment queries written as plain SQL and
// run end to end (parse -> robust plan -> cost-metered execution). Also
// demonstrates how the robustness hint wraps per-statement, mirroring the
// query-hint deployment of Section 6.2.5.
//
//   $ ./build/examples/sql_interface

#include <cstdio>

#include "core/database.h"
#include "tpch/tpch_gen.h"

using namespace robustqo;

namespace {

void Run(core::Database* db, const std::string& sql,
         core::EstimatorKind kind, const opt::OptimizerOptions& options = {},
         const char* note = "") {
  std::printf("sql> %s\n", sql.c_str());
  auto result = db->ExecuteSql(sql, kind, options);
  if (!result.ok()) {
    std::printf("  error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  plan %-55s %7.3fs%s\n", result.value().plan_label.c_str(),
              result.value().simulated_seconds, note);
  const storage::Table& rows = result.value().rows;
  for (storage::Rid r = 0; r < std::min<uint64_t>(rows.num_rows(), 5); ++r) {
    std::printf("  row:");
    for (size_t c = 0; c < rows.schema().num_columns(); ++c) {
      std::printf(" %s=%s", rows.schema().column(c).name.c_str(),
                  rows.ValueAt(r, c).ToString().c_str());
    }
    std::printf("\n");
  }
  if (rows.num_rows() > 5) {
    std::printf("  ... (%llu rows)\n",
                static_cast<unsigned long long>(rows.num_rows()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  core::Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  Status loaded = tpch::LoadTpch(db.catalog(), config);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  db.UpdateStatistics();
  db.SetRobustnessLevel(stats::RobustnessLevel::kModerate);

  // Experiment 1's correlated-predicate query, straight from the paper.
  Run(&db,
      "SELECT SUM(l_extendedprice) FROM lineitem "
      "WHERE l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-08-29' "
      "AND l_receiptdate BETWEEN DATE '1997-07-01' + 61 AND "
      "DATE '1997-08-29' + 61",
      core::EstimatorKind::kRobustSample);

  // Same statement under the histogram baseline.
  Run(&db,
      "SELECT SUM(l_extendedprice) FROM lineitem "
      "WHERE l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-08-29' "
      "AND l_receiptdate BETWEEN DATE '1997-07-01' + 61 AND "
      "DATE '1997-08-29' + 61",
      core::EstimatorKind::kHistogram, {}, "   <- AVI baseline");

  // A three-way join with a correlated part-band selection (Experiment 2).
  Run(&db,
      "SELECT SUM(l_extendedprice) AS revenue, COUNT(*) AS lines "
      "FROM lineitem, orders, part "
      "WHERE p_c1 BETWEEN 50 AND 60 AND p_c2 BETWEEN 63.5 AND 73.5",
      core::EstimatorKind::kRobustSample);

  // Grouped aggregation sized via sample-based distinct estimation.
  Run(&db,
      "SELECT COUNT(*) AS orders_per_priority FROM orders "
      "GROUP BY o_orderdate",
      core::EstimatorKind::kRobustSample);

  // A per-statement aggressive hint (exploratory query).
  opt::OptimizerOptions aggressive;
  aggressive.confidence_threshold_hint = 0.50;
  Run(&db,
      "SELECT COUNT(*) FROM lineitem "
      "WHERE l_shipdate BETWEEN DATE '1998-06-01' AND DATE '1998-06-03' "
      "AND l_receiptdate BETWEEN DATE '1998-06-01' AND DATE '1998-06-03'",
      core::EstimatorKind::kRobustSample, aggressive,
      "   <- aggressive hint");
  return 0;
}
