// rqo_shell: a minimal interactive SQL shell over a TPC-H-lite database.
// Reads one statement per line from stdin. Dot-commands:
//   .estimator robust|histogram     switch the estimation module
//   .threshold <percent>            set the system confidence threshold
//   .explain <sql>                  threshold-preference report for a query
//   .dot <sql>                      Graphviz digraph of the chosen plan
//   .tables                         list tables
//   .quit                           exit
// Statements:
//   EXPLAIN ANALYZE <sql>           plan + execute; per-operator estimated
//                                   vs. actual rows, q-error, costs, and the
//                                   estimator's per-predicate evidence
//   EXPLAIN ANALYZE JSON <sql>      same report as deterministic JSON
//   EXPLAIN ANALYZE DOT <sql>       same report as a Graphviz digraph
//
//   $ echo "SELECT COUNT(*) FROM lineitem" | ./build/examples/rqo_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "core/database.h"
#include "core/explain_analyze.h"
#include "core/report.h"
#include "exec/plan_dot.h"
#include "tpch/tpch_gen.h"
#include "util/string_util.h"

using namespace robustqo;

namespace {

void PrintResult(const core::ExecutionResult& result) {
  std::printf("-- plan: %s   (%.3f simulated s, predicted %.3f)\n",
              result.plan_label.c_str(), result.simulated_seconds,
              result.estimated_cost);
  const storage::Table& rows = result.rows;
  const uint64_t limit = std::min<uint64_t>(rows.num_rows(), 20);
  for (size_t c = 0; c < rows.schema().num_columns(); ++c) {
    std::printf("%s%s", c > 0 ? " | " : "",
                rows.schema().column(c).name.c_str());
  }
  std::printf("\n");
  for (storage::Rid r = 0; r < limit; ++r) {
    for (size_t c = 0; c < rows.schema().num_columns(); ++c) {
      std::printf("%s%s", c > 0 ? " | " : "",
                  rows.ValueAt(r, c).ToString().c_str());
    }
    std::printf("\n");
  }
  if (rows.num_rows() > limit) {
    std::printf("... (%llu rows total)\n",
                static_cast<unsigned long long>(rows.num_rows()));
  }
}

}  // namespace

int main() {
  core::Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  Status loaded = tpch::LoadTpch(db.catalog(), config);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  db.UpdateStatistics();
  core::EstimatorKind kind = core::EstimatorKind::kRobustSample;

  std::printf("robustqo shell — TPC-H sf=%.2f loaded; robust estimator at "
              "T=%.0f%%. Type SQL or .quit\n",
              config.scale_factor, db.confidence_threshold() * 100.0);
  std::string line;
  while (std::printf("rqo> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".tables") {
      for (const auto& name : db.catalog()->TableNames()) {
        std::printf("  %-10s %10llu rows\n", name.c_str(),
                    static_cast<unsigned long long>(
                        db.catalog()->GetTable(name)->num_rows()));
      }
      continue;
    }
    if (StartsWith(line, ".estimator")) {
      kind = Contains(line, "hist") ? core::EstimatorKind::kHistogram
                                    : core::EstimatorKind::kRobustSample;
      std::printf("estimator: %s\n",
                  kind == core::EstimatorKind::kHistogram ? "histogram"
                                                          : "robust");
      continue;
    }
    if (StartsWith(line, ".threshold")) {
      const double pct = std::atof(line.substr(10).c_str());
      if (pct > 0.0 && pct < 100.0) {
        db.SetConfidenceThreshold(pct / 100.0);
        std::printf("confidence threshold: %.0f%%\n", pct);
      } else {
        std::printf("usage: .threshold <1-99>\n");
      }
      continue;
    }
    if (StartsWith(line, ".explain ")) {
      auto query = db.ParseSql(line.substr(9));
      if (!query.ok()) {
        std::printf("error: %s\n", query.status().ToString().c_str());
        continue;
      }
      auto report = core::ThresholdPreferenceReport(&db, query.value());
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("%s", core::FormatThresholdReport(report.value()).c_str());
      continue;
    }
    if (StartsWith(line, "EXPLAIN ANALYZE ") ||
        StartsWith(line, "explain analyze ")) {
      std::string rest = line.substr(16);
      enum { kText, kJson, kDot } format = kText;
      if (StartsWith(rest, "JSON ") || StartsWith(rest, "json ")) {
        format = kJson;
        rest = rest.substr(5);
      } else if (StartsWith(rest, "DOT ") || StartsWith(rest, "dot ")) {
        format = kDot;
        rest = rest.substr(4);
      }
      auto query = db.ParseSql(rest);
      if (!query.ok()) {
        std::printf("error: %s\n", query.status().ToString().c_str());
        continue;
      }
      auto analyzed = core::ExplainAnalyze(&db, query.value(), kind);
      if (!analyzed.ok()) {
        std::printf("error: %s\n", analyzed.status().ToString().c_str());
        continue;
      }
      switch (format) {
        case kText:
          std::printf("%s", analyzed.value().ToText().c_str());
          break;
        case kJson:
          std::printf("%s\n", analyzed.value().ToJson().c_str());
          break;
        case kDot:
          std::printf("%s", analyzed.value().ToDot().c_str());
          break;
      }
      continue;
    }
    if (StartsWith(line, ".dot ")) {
      auto query = db.ParseSql(line.substr(5));
      if (!query.ok()) {
        std::printf("error: %s\n", query.status().ToString().c_str());
        continue;
      }
      auto plan = db.Plan(query.value(), kind);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      std::printf("%s", exec::PlanToDot(*plan.value().root).c_str());
      continue;
    }
    auto result = db.ExecuteSql(line, kind);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(result.value());
  }
  return 0;
}
