// rqo_shell: a minimal interactive SQL shell over a TPC-H-lite database.
// Reads one statement per line from stdin. Dot-commands:
//   .estimator robust|histogram     switch the estimation module
//   .threshold <percent>            set the system confidence threshold
//   .explain <sql>                  threshold-preference report for a query
//   .dot <sql>                      Graphviz digraph of the chosen plan
//   .tables                         list tables
//   .faults                         list armed fault sites + known sites
//   .metrics [om]                   session + last-query metrics as JSON
//                                   (or OpenMetrics text with "om")
//   .trace export <file>            last EXPLAIN ANALYZE trace as Chrome
//                                   trace_event JSON (chrome://tracing)
//   .quality                        per-fingerprint estimation-quality
//                                   report (fed by EXPLAIN ANALYZE runs)
//   .sessions                       query-service session table
//   .plancache                      plan-cache contents + hit/miss stats
//   .blackbox [json]                flight recorder: retained request
//                                   traces (incidents + slowest-K) as a
//                                   table, or the deterministic JSON dump
//   .blackbox export <file>         write the JSON dump to a file
//   .blackbox trace <file>          write a per-request Chrome trace
//                                   (Perfetto lanes grouped by session)
//   .slo                            queue-wait/service/regret quantiles
//                                   and threshold-breach counters
//   .cluster                        multi-node serving report: partition
//                                   layout, routed/pushdown request
//                                   counts, simulated network traffic and
//                                   per-node statistics-sync state (see
//                                   SET NODES)
//   .learning                       learning subsystem report: feedback
//                                   store evidence (per-fingerprint Beta
//                                   pseudo-counts fed by EXECUTE and
//                                   EXPLAIN ANALYZE runs) and the regret-
//                                   driven T% overrides
//   .epoch                          data + statistics epochs and the
//                                   per-table online-maintenance state
//                                   (reservoir fill, modifications,
//                                   pending-rebuild flags)
//   .whyplan [<fphex>|last]         plan-choice provenance: why the plan
//                                   for a fingerprint won, its cost curve
//                                   across the selectivity posterior, and
//                                   what changed on re-plans (no argument:
//                                   every retained record)
//   .traffic [seconds]              mixed read/write traffic demo through
//                                   the query service (write share set by
//                                   SET WRITE_FRACTION); prints the
//                                   deterministic traffic summary
//   .quit                           exit
// Statements:
//   INSERT INTO <t> VALUES (...)    DML commits atomically, bumps the data
//   UPDATE <t> SET ... [WHERE ...]  epoch, and feeds the statistics
//   DELETE FROM <t> [WHERE ...]     reservoir (see .epoch)
//   PREPARE <name> AS <sql>         register a prepared statement in the
//                                   shell's server session
//   EXECUTE <name>                  run it through the query service's
//                                   admission control + plan cache (the
//                                   result line reports HIT/MISS
//                                   provenance)
//   EXPLAIN ANALYZE <sql>           plan + execute; per-operator estimated
//                                   vs. actual rows, q-error, costs, and the
//                                   estimator's per-predicate evidence
//   EXPLAIN ANALYZE JSON <sql>      same report as deterministic JSON
//   EXPLAIN ANALYZE DOT <sql>       same report as a Graphviz digraph
//   SET FAULT SEED <n>              reseed the fault injector
//   SET FAULT <site> ALWAYS         arm a fault site (see .faults)
//   SET FAULT <site> P=<0..1>       ... fire with seeded probability
//   SET FAULT <site> FIRST=<n>      ... fire on the first n probes
//   SET FAULT <site> NTH=<n>        ... fire on exactly the n-th probe
//   SET FAULT <site> OFF            disarm one site (OFF alone: all)
//   SET MEMORY_LIMIT <bytes>        per-query governor budgets; 0 = off
//   SET ROW_LIMIT <rows>
//   SET TIME_LIMIT <seconds>
//   SET THREADS <n>                 sampling-engine worker threads (0 = #cores);
//                                   results are identical at any setting
//   SET NODES <n>                   rebuild the query service over an
//                                   n-node cluster (1 = single-node; the
//                                   initial count comes from RQO_NODES);
//                                   results are identical at any setting
//                                   but prepared statements are dropped
//   SET BETA_CACHE_CAPACITY <n>     inverse-Beta LRU entries (default 4096)
//   SET WRITE_FRACTION <0..1>       write share of the .traffic demo
//   SET LEARNING ON|OFF             learned selectivity corrections + T%
//                                   retuning (OFF reproduces the
//                                   pre-learning estimates bit-for-bit)
//   SET PROVENANCE ON|OFF           plan-choice provenance capture (OFF
//                                   reproduces pre-provenance reports and
//                                   metrics bit-for-bit)
//   SET PROVENANCE_TOPK <n>         runner-up candidates kept per plan
//
//   $ echo "SELECT COUNT(*) FROM lineitem" | ./build/examples/rqo_shell

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "core/database.h"
#include "core/explain_analyze.h"
#include "core/report.h"
#include "exec/plan_dot.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/plan_provenance.h"
#include "obs/quality_monitor.h"
#include "perf/task_pool.h"
#include "server/query_service.h"
#include "tpch/tpch_gen.h"
#include "util/string_util.h"
#include "workload/quality_report.h"
#include "workload/traffic_harness.h"

using namespace robustqo;

namespace {

void PrintResult(const core::ExecutionResult& result) {
  std::printf("-- plan: %s   (%.3f simulated s, predicted %.3f)\n",
              result.plan_label.c_str(), result.simulated_seconds,
              result.estimated_cost);
  const storage::Table& rows = result.rows;
  const uint64_t limit = std::min<uint64_t>(rows.num_rows(), 20);
  for (size_t c = 0; c < rows.schema().num_columns(); ++c) {
    std::printf("%s%s", c > 0 ? " | " : "",
                rows.schema().column(c).name.c_str());
  }
  std::printf("\n");
  for (storage::Rid r = 0; r < limit; ++r) {
    for (size_t c = 0; c < rows.schema().num_columns(); ++c) {
      std::printf("%s%s", c > 0 ? " | " : "",
                  rows.ValueAt(r, c).ToString().c_str());
    }
    std::printf("\n");
  }
  if (rows.num_rows() > limit) {
    std::printf("... (%llu rows total)\n",
                static_cast<unsigned long long>(rows.num_rows()));
  }
}

// Handles "SET FAULT ..." and "SET <LIMIT> ..." statements; returns false
// when `line` is not a SET statement.
bool HandleSet(core::Database* db, server::QueryService* service,
               double* write_fraction, const std::string& line) {
  std::vector<std::string> tokens = SplitString(line, ' ');
  tokens.erase(std::remove(tokens.begin(), tokens.end(), std::string()),
               tokens.end());
  if (tokens.size() < 2 || ToUpper(tokens[0]) != "SET") return false;
  const std::string verb = ToUpper(tokens[1]);

  if (verb == "FAULT") {
    if (tokens.size() == 3 && ToUpper(tokens[2]) == "OFF") {
      db->fault_injector()->DisarmAll();
      std::printf("all fault sites disarmed\n");
      return true;
    }
    if (tokens.size() != 4) {
      std::printf("usage: SET FAULT <site>|SEED ALWAYS|OFF|P=|FIRST=|NTH=\n");
      return true;
    }
    if (ToUpper(tokens[2]) == "SEED") {
      db->fault_injector()->Reseed(std::strtoull(tokens[3].c_str(), nullptr, 10));
      std::printf("fault seed: %llu\n",
                  static_cast<unsigned long long>(db->fault_injector()->seed()));
      return true;
    }
    const std::string& site = tokens[2];
    const std::string arg = ToUpper(tokens[3]);
    if (arg == "OFF") {
      db->fault_injector()->Disarm(site);
      std::printf("disarmed %s\n", site.c_str());
      return true;
    }
    fault::FaultSpec spec;
    if (arg == "ALWAYS") {
      spec = fault::FaultSpec::Always();
    } else if (StartsWith(arg, "P=")) {
      spec = fault::FaultSpec::Probability(std::atof(arg.substr(2).c_str()));
    } else if (StartsWith(arg, "FIRST=")) {
      spec = fault::FaultSpec::FirstN(
          std::strtoull(arg.substr(6).c_str(), nullptr, 10));
    } else if (StartsWith(arg, "NTH=")) {
      spec = fault::FaultSpec::OnNth(
          std::strtoull(arg.substr(4).c_str(), nullptr, 10));
    } else {
      std::printf("unknown fault mode: %s\n", tokens[3].c_str());
      return true;
    }
    // The alloc site models an out-of-memory, not a transient read.
    if (site == fault::sites::kOperatorAlloc) {
      spec.code = StatusCode::kResourceExhausted;
    }
    db->fault_injector()->Arm(site, spec);
    std::printf("armed %s %s\n", site.c_str(), spec.ToString().c_str());
    return true;
  }

  if (verb == "MEMORY_LIMIT" || verb == "ROW_LIMIT" || verb == "TIME_LIMIT") {
    if (tokens.size() != 3) {
      std::printf("usage: SET %s <n>   (0 = unlimited)\n", verb.c_str());
      return true;
    }
    fault::GovernorLimits limits = db->governor_limits();
    if (verb == "MEMORY_LIMIT") {
      limits.memory_limit_bytes =
          std::strtoull(tokens[2].c_str(), nullptr, 10);
    } else if (verb == "ROW_LIMIT") {
      limits.row_limit = std::strtoull(tokens[2].c_str(), nullptr, 10);
    } else {
      limits.time_limit_seconds = std::atof(tokens[2].c_str());
    }
    db->SetGovernorLimits(limits);
    std::printf("governor: memory=%llu bytes, rows=%llu, time=%.3f s\n",
                static_cast<unsigned long long>(limits.memory_limit_bytes),
                static_cast<unsigned long long>(limits.row_limit),
                limits.time_limit_seconds);
    return true;
  }

  if (verb == "THREADS") {
    if (tokens.size() != 3) {
      std::printf("usage: SET THREADS <n>   (0 = hardware concurrency)\n");
      return true;
    }
    perf::SetThreadCount(
        static_cast<unsigned>(std::strtoul(tokens[2].c_str(), nullptr, 10)));
    std::printf("threads: %u (results are bit-identical at any setting)\n",
                perf::ThreadCount());
    return true;
  }

  if (verb == "BETA_CACHE_CAPACITY") {
    if (tokens.size() != 3) {
      std::printf("usage: SET BETA_CACHE_CAPACITY <entries>\n");
      return true;
    }
    db->robust_estimator()->beta_cache()->set_capacity(
        std::strtoull(tokens[2].c_str(), nullptr, 10));
    std::printf("inverse-beta cache capacity: %zu entries\n",
                db->robust_estimator()->beta_cache()->capacity());
    return true;
  }

  if (verb == "LEARNING") {
    if (tokens.size() != 3 || (ToUpper(tokens[2]) != "ON" &&
                               ToUpper(tokens[2]) != "OFF")) {
      std::printf("usage: SET LEARNING ON|OFF\n");
      return true;
    }
    const bool on = ToUpper(tokens[2]) == "ON";
    service->SetLearningEnabled(on);
    std::printf("learning: %s%s\n", on ? "on" : "off",
                on ? "" : " (estimates match the pre-learning cascade"
                          " bit-for-bit)");
    return true;
  }

  if (verb == "PROVENANCE") {
    if (tokens.size() != 3 || (ToUpper(tokens[2]) != "ON" &&
                               ToUpper(tokens[2]) != "OFF")) {
      std::printf("usage: SET PROVENANCE ON|OFF\n");
      return true;
    }
    const bool on = ToUpper(tokens[2]) == "ON";
    // Keep the service observatory and the database's direct EXPLAIN
    // ANALYZE capture in lockstep so `.whyplan` and the sensitivity
    // section agree on what is being recorded.
    service->SetProvenanceEnabled(on);
    db->SetProvenanceCapture(on);
    std::printf("provenance: %s%s\n", on ? "on" : "off",
                on ? "" : " (reports and metrics match the pre-provenance"
                          " output bit-for-bit)");
    return true;
  }

  if (verb == "PROVENANCE_TOPK") {
    if (tokens.size() != 3) {
      std::printf("usage: SET PROVENANCE_TOPK <runner-ups>\n");
      return true;
    }
    const size_t top_k = std::strtoull(tokens[2].c_str(), nullptr, 10);
    service->SetProvenanceTopK(top_k);
    db->SetProvenanceTopK(top_k);
    std::printf("provenance top-k runner-ups: %zu\n", top_k);
    return true;
  }

  if (verb == "WRITE_FRACTION") {
    if (tokens.size() != 3) {
      std::printf("usage: SET WRITE_FRACTION <0..1>\n");
      return true;
    }
    const double fraction = std::atof(tokens[2].c_str());
    if (fraction < 0.0 || fraction > 1.0) {
      std::printf("usage: SET WRITE_FRACTION <0..1>\n");
      return true;
    }
    *write_fraction = fraction;
    std::printf("traffic write fraction: %.3f\n", fraction);
    return true;
  }
  return false;
}

// `.epoch`: the two epochs and the per-table online-maintenance state.
void PrintEpochs(core::Database* db) {
  std::printf("data epoch:       %llu  (committed DML batches)\n",
              static_cast<unsigned long long>(db->catalog()->data_epoch()));
  std::printf("statistics epoch: %llu  (rebuilds; keys the plan cache)\n",
              static_cast<unsigned long long>(db->statistics()->epoch()));
  std::printf("%-10s %10s %12s %14s %8s\n", "table", "reservoir", "stream",
              "modifications", "pending");
  for (const auto& entry : db->statistics()->MaintenanceState()) {
    std::printf("%-10s %6zu/%-3zu %12llu %14llu %8s\n", entry.table.c_str(),
                entry.reservoir_filled, entry.reservoir_capacity,
                static_cast<unsigned long long>(entry.reservoir_seen),
                static_cast<unsigned long long>(entry.modifications),
                entry.pending_rebuild ? "yes" : "no");
  }
}

// `.traffic [seconds]`: a small mixed read/write closed-loop demo through
// the query service, with the write share set by SET WRITE_FRACTION.
void RunTrafficDemo(server::QueryService* service, double write_fraction,
                    double duration_seconds) {
  workload::TrafficConfig config;
  config.base_seed = 42;
  config.clients = 50;
  config.duration_seconds = duration_seconds;
  config.think_seconds = 2.0;
  config.write_fraction = write_fraction;
  config.statements = {
      "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25",
      "SELECT COUNT(*) FROM orders WHERE o_totalprice < 50000",
      "SELECT COUNT(*) FROM customer WHERE c_acctbal < 5000",
  };
  // The demo writes keep referential integrity intact: new lineitems
  // reference existing orders/parts/suppliers and the DELETE only removes
  // rows this demo inserted (l_linenumber 99 never occurs in generated
  // data, where orders have at most 7 lines).
  config.write_statements = {
      "UPDATE orders SET o_totalprice = o_totalprice * 1.01 "
      "WHERE o_orderkey < 40",
      "INSERT INTO lineitem VALUES (1, 1, 1, 99, 10.0, 1000.0, 0.05, "
      "DATE '1995-06-17', DATE '1995-07-01', DATE '1995-07-15')",
      "DELETE FROM lineitem WHERE l_linenumber = 99",
  };
  const workload::TrafficReport report = workload::RunTraffic(service, config);
  std::printf("%s", report.Summary().c_str());
}

}  // namespace

int main() {
  core::Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  Status loaded = tpch::LoadTpch(db.catalog(), config);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  db.UpdateStatistics();
  core::EstimatorKind kind = core::EstimatorKind::kRobustSample;

  // Session-scoped telemetry: every statement records into a per-query
  // registry which merges into the session registry afterwards, so
  // `.metrics` can show both scopes. EXPLAIN ANALYZE runs additionally
  // feed the quality monitor and refresh the exportable trace.
  obs::MetricsRegistry session_metrics;
  obs::MetricsRegistry query_metrics;
  obs::EstimationQualityMonitor quality;
  std::vector<obs::TraceEvent> last_trace;
  db.SetMetrics(&query_metrics);

  // The shell is one interactive client of the concurrent query service:
  // PREPARE/EXECUTE route through its admission controller and plan cache.
  // The flight recorder is on so `.blackbox` has incidents and slow
  // requests to show after EXECUTE traffic.
  // Plan provenance is on by default so `.whyplan` has history and
  // EXPLAIN ANALYZE carries its sensitivity section; SET PROVENANCE OFF
  // restores the pre-provenance output byte-for-byte.
  server::ServerConfig server_config;
  server_config.flight_recorder.enabled = true;
  server_config.provenance.enabled = true;
  // Node count starts from RQO_NODES (default 1, the single-node serving
  // path with no coordinator at all); SET NODES rebuilds the service on a
  // fresh cluster. Results are identical at every count.
  server_config.cluster.nodes = cluster::NodesFromEnv();
  auto service = std::make_unique<server::QueryService>(&db, server_config);
  service->set_metrics(&query_metrics);
  db.SetProvenanceCapture(true);
  server::SessionOptions shell_options;
  shell_options.name = "shell";
  server::SessionId shell_session = service->OpenSession(shell_options);
  double write_fraction = 0.2;  // write share of the .traffic demo

  std::printf("robustqo shell — TPC-H sf=%.2f loaded; robust estimator at "
              "T=%.0f%%. Type SQL or .quit\n",
              config.scale_factor, db.confidence_threshold() * 100.0);
  std::string line;
  while (std::printf("rqo> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".faults") {
      const std::string armed = db.fault_injector()->DescribeArmed();
      std::printf("armed (seed %llu):\n%s",
                  static_cast<unsigned long long>(db.fault_injector()->seed()),
                  armed.empty() ? "  (none)\n" : armed.c_str());
      std::printf("known sites:\n");
      for (const std::string& site : fault::KnownFaultSites()) {
        std::printf("  %s\n", site.c_str());
      }
      continue;
    }
    if (StartsWith(ToUpper(line), "SET NODES")) {
      const size_t nodes =
          std::strtoull(line.substr(strlen("SET NODES")).c_str(), nullptr, 10);
      if (nodes < 1) {
        std::printf("usage: SET NODES <n>   (n >= 1; 1 = single-node)\n");
        continue;
      }
      // Rebuilding the service drops its plan cache, sessions and prepared
      // statements; the database (data, statistics, learning evidence) is
      // shared and untouched.
      server_config.cluster.nodes = nodes;
      service = std::make_unique<server::QueryService>(&db, server_config);
      service->set_metrics(&query_metrics);
      shell_session = service->OpenSession(shell_options);
      std::printf("nodes: %zu (results are bit-identical at any setting;"
                  " prepared statements dropped)\n", nodes);
      continue;
    }
    if (HandleSet(&db, service.get(), &write_fraction, line)) continue;
    if (line == ".epoch") {
      PrintEpochs(&db);
      continue;
    }
    if (line == ".traffic" || StartsWith(line, ".traffic ")) {
      double seconds = 60.0;
      if (line.size() > strlen(".traffic ")) {
        seconds = std::atof(line.substr(strlen(".traffic ")).c_str());
        if (seconds <= 0.0) {
          std::printf("usage: .traffic [simulated seconds]\n");
          continue;
        }
      }
      RunTrafficDemo(service.get(), write_fraction, seconds);
      continue;
    }
    if (line == ".metrics" || line == ".metrics om") {
      quality.PublishMetrics(&session_metrics);
      if (line == ".metrics") {
        std::printf("session:    %s\n", session_metrics.ToJson().c_str());
        std::printf("last query: %s\n", query_metrics.ToJson().c_str());
      } else {
        std::printf("# scope: session\n%s",
                    obs::ToOpenMetrics(session_metrics).c_str());
        std::printf("# scope: last query\n%s",
                    obs::ToOpenMetrics(query_metrics).c_str());
      }
      continue;
    }
    if (StartsWith(line, ".trace")) {
      if (!StartsWith(line, ".trace export ") ||
          line.size() <= strlen(".trace export ")) {
        std::printf("usage: .trace export <file>\n");
        continue;
      }
      if (last_trace.empty()) {
        std::printf("no trace recorded — run EXPLAIN ANALYZE first\n");
        continue;
      }
      const std::string path = line.substr(strlen(".trace export "));
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::printf("cannot open %s\n", path.c_str());
        continue;
      }
      const std::string json = obs::ToChromeTrace(last_trace);
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %zu trace events to %s\n", last_trace.size(),
                  path.c_str());
      continue;
    }
    if (line == ".quality") {
      std::printf("%s", quality.ReportText().c_str());
      continue;
    }
    if (line == ".sessions") {
      std::printf("%s", service->sessions()->ReportText().c_str());
      continue;
    }
    if (line == ".plancache") {
      std::printf("%s", service->plan_cache()->ReportText().c_str());
      continue;
    }
    if (StartsWith(line, ".blackbox")) {
      obs::FlightRecorder* recorder = service->flight_recorder();
      if (line == ".blackbox") {
        std::printf("%s", recorder->ReportText().c_str());
      } else if (line == ".blackbox json") {
        std::printf("%s\n", recorder->ToJson().c_str());
      } else if (StartsWith(line, ".blackbox export ") &&
                 line.size() > strlen(".blackbox export ")) {
        const std::string path = line.substr(strlen(".blackbox export "));
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
          std::printf("cannot open %s\n", path.c_str());
          continue;
        }
        const std::string json = recorder->ToJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %zu retained traces to %s\n", recorder->size(),
                    path.c_str());
      } else if (StartsWith(line, ".blackbox trace ") &&
                 line.size() > strlen(".blackbox trace ")) {
        const std::string path = line.substr(strlen(".blackbox trace "));
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
          std::printf("cannot open %s\n", path.c_str());
          continue;
        }
        const std::string json = recorder->ToChromeTrace();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %zu request lanes to %s\n", recorder->size(),
                    path.c_str());
      } else {
        std::printf("usage: .blackbox [json|export <file>|trace <file>]\n");
      }
      continue;
    }
    if (line == ".whyplan" || StartsWith(line, ".whyplan ")) {
      obs::PlanProvenanceStore* provenance = service->provenance();
      if (line == ".whyplan") {
        std::printf("%s", provenance->ReportText().c_str());
      } else {
        const std::string arg = line.substr(strlen(".whyplan "));
        if (arg == "last") {
          const obs::PlanProvenanceRecord* latest = provenance->Latest();
          if (latest == nullptr) {
            std::printf("no plans recorded — run EXECUTE traffic first\n");
          } else {
            std::printf("%s", provenance->ReportFor(latest->fingerprint)
                                  .c_str());
          }
        } else {
          const uint64_t fp = std::strtoull(arg.c_str(), nullptr, 16);
          std::printf("%s", provenance->ReportFor(fp).c_str());
        }
      }
      continue;
    }
    if (line == ".slo") {
      std::printf("%s", service->slo_monitor()->ReportText().c_str());
      continue;
    }
    if (line == ".cluster") {
      std::printf("%s", service->ClusterReportText().c_str());
      continue;
    }
    if (line == ".learning") {
      std::printf("%s", service->LearningReportText().c_str());
      continue;
    }
    if (StartsWith(line, "PREPARE ") || StartsWith(line, "prepare ")) {
      const std::string rest = line.substr(8);
      size_t as_pos = rest.find(" AS ");
      if (as_pos == std::string::npos) as_pos = rest.find(" as ");
      if (as_pos == std::string::npos || as_pos == 0) {
        std::printf("usage: PREPARE <name> AS <sql>\n");
        continue;
      }
      const std::string name = rest.substr(0, as_pos);
      const std::string sql = rest.substr(as_pos + 4);
      Status prepared = service->Prepare(shell_session, name, sql);
      if (!prepared.ok()) {
        std::printf("error: %s\n", prepared.ToString().c_str());
        continue;
      }
      std::printf("prepared %s\n", name.c_str());
      continue;
    }
    if (StartsWith(line, "EXECUTE ") || StartsWith(line, "execute ")) {
      const std::string name = line.substr(8);
      query_metrics.Reset();
      server::QueryResponse response =
          service->ExecutePrepared(shell_session, name);
      session_metrics.MergeFrom(query_metrics);
      if (!response.status.ok()) {
        std::printf("error: %s\n", response.status.ToString().c_str());
        continue;
      }
      std::printf("-- plan cache: %s   (fingerprint %016llx)\n",
                  response.cache_hit ? "HIT" : "MISS",
                  static_cast<unsigned long long>(response.fingerprint));
      PrintResult(*response.result);
      continue;
    }
    if (line == ".tables") {
      for (const auto& name : db.catalog()->TableNames()) {
        std::printf("  %-10s %10llu rows\n", name.c_str(),
                    static_cast<unsigned long long>(
                        db.catalog()->GetTable(name)->num_rows()));
      }
      continue;
    }
    if (StartsWith(line, ".estimator")) {
      kind = Contains(line, "hist") ? core::EstimatorKind::kHistogram
                                    : core::EstimatorKind::kRobustSample;
      std::printf("estimator: %s\n",
                  kind == core::EstimatorKind::kHistogram ? "histogram"
                                                          : "robust");
      continue;
    }
    if (StartsWith(line, ".threshold")) {
      const double pct = std::atof(line.substr(10).c_str());
      if (pct > 0.0 && pct < 100.0) {
        db.SetConfidenceThreshold(pct / 100.0);
        std::printf("confidence threshold: %.0f%%\n", pct);
      } else {
        std::printf("usage: .threshold <1-99>\n");
      }
      continue;
    }
    if (StartsWith(line, ".explain ")) {
      auto query = db.ParseSql(line.substr(9));
      if (!query.ok()) {
        std::printf("error: %s\n", query.status().ToString().c_str());
        continue;
      }
      auto report = core::ThresholdPreferenceReport(&db, query.value());
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("%s", core::FormatThresholdReport(report.value()).c_str());
      continue;
    }
    if (StartsWith(line, "EXPLAIN ANALYZE ") ||
        StartsWith(line, "explain analyze ")) {
      std::string rest = line.substr(16);
      enum { kText, kJson, kDot } format = kText;
      if (StartsWith(rest, "JSON ") || StartsWith(rest, "json ")) {
        format = kJson;
        rest = rest.substr(5);
      } else if (StartsWith(rest, "DOT ") || StartsWith(rest, "dot ")) {
        format = kDot;
        rest = rest.substr(4);
      }
      auto query = db.ParseSql(rest);
      if (!query.ok()) {
        std::printf("error: %s\n", query.status().ToString().c_str());
        continue;
      }
      query_metrics.Reset();
      auto analyzed =
          core::ExplainAnalyze(&db, query.value(), kind, {}, &last_trace);
      session_metrics.MergeFrom(query_metrics);
      if (!analyzed.ok()) {
        std::printf("error: %s\n", analyzed.status().ToString().c_str());
        continue;
      }
      // Close the loop from the interactive path too: the run's actuals
      // feed both the drift monitor and the learned-correction store.
      workload::RecordAnalyzedPlan(analyzed.value(), &quality,
                                   service->feedback_store(),
                                   db.statistics()->epoch());
      switch (format) {
        case kText:
          std::printf("%s", analyzed.value().ToText().c_str());
          break;
        case kJson:
          std::printf("%s\n", analyzed.value().ToJson().c_str());
          break;
        case kDot:
          std::printf("%s", analyzed.value().ToDot().c_str());
          break;
      }
      continue;
    }
    if (StartsWith(line, ".dot ")) {
      auto query = db.ParseSql(line.substr(5));
      if (!query.ok()) {
        std::printf("error: %s\n", query.status().ToString().c_str());
        continue;
      }
      auto plan = db.Plan(query.value(), kind);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      std::printf("%s", exec::PlanToDot(*plan.value().root).c_str());
      continue;
    }
    query_metrics.Reset();
    auto result = db.ExecuteStatement(line, kind);
    session_metrics.MergeFrom(query_metrics);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (result.value().dml.has_value()) {
      const exec::DmlResult& dml = *result.value().dml;
      std::printf("-- %llu row(s) affected; data epoch %llu"
                  "%s\n",
                  static_cast<unsigned long long>(dml.rows_affected()),
                  static_cast<unsigned long long>(dml.epoch),
                  dml.retry.attempts > 1
                      ? StrPrintf(" (%llu commit attempts)",
                                  static_cast<unsigned long long>(
                                      dml.retry.attempts))
                            .c_str()
                      : "");
      continue;
    }
    PrintResult(*result.value().query);
  }
  return 0;
}
