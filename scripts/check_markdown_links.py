#!/usr/bin/env python3
"""Checks intra-repo markdown links.

Scans every tracked *.md file for inline links/images and reference
definitions, resolves relative targets against the linking file, and fails
(exit 1) when a target file or directory does not exist. External links
(http/https/mailto) and pure in-page anchors (#section) are skipped;
anchors on intra-repo links are checked against the target file's headings
and explicit <a name=...> anchors.

Usage: scripts/check_markdown_links.py [repo_root]
"""

import os
import re
import sys

# [text](target) and ![alt](target); target may carry a #fragment.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# [label]: target reference definitions.
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
HTML_ANCHOR = re.compile(r"<a\s+(?:name|id)=\"([^\"]+)\"")
FENCE = re.compile(r"^(```|~~~).*$\n(?:.*\n)*?^\1\s*$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, strip punctuation."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: str, cache: dict) -> set:
    if path not in cache:
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError:
            cache[path] = set()
            return cache[path]
        slugs = set()
        counts = {}
        for match in HEADING.finditer(FENCE.sub("", text)):
            slug = github_slug(match.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        slugs.update(HTML_ANCHOR.findall(text))
        cache[path] = slugs
    return cache[path]


def check_file(md_path: str, root: str, anchor_cache: dict) -> list:
    errors = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    # Links inside fenced code blocks are examples, not navigation.
    text = FENCE.sub("", text)
    targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
    for target in targets:
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # http:, https:, mailto:, ...
        target, _, fragment = target.partition("#")
        if not target:
            # Pure in-page anchor: check against this file's headings.
            if fragment and fragment not in anchors_of(md_path, anchor_cache):
                errors.append(f"{md_path}: dead anchor #{fragment}")
            continue
        base = root if target.startswith("/") else os.path.dirname(md_path)
        resolved = os.path.normpath(os.path.join(base, target.lstrip("/")))
        if not os.path.exists(resolved):
            errors.append(f"{md_path}: dead link {target}")
        elif fragment and resolved.endswith(".md"):
            if fragment not in anchors_of(resolved, anchor_cache):
                errors.append(
                    f"{md_path}: dead anchor {target}#{fragment}")
    return errors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    skip_dirs = {".git", "build", ".claude"}
    md_files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in skip_dirs]
        md_files.extend(
            os.path.join(dirpath, f) for f in filenames if f.endswith(".md"))
    anchor_cache = {}
    errors = []
    for md in sorted(md_files):
        errors.extend(check_file(md, root, anchor_cache))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(md_files)} markdown files: "
          f"{'FAILED, ' + str(len(errors)) + ' dead links' if errors else 'all links OK'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
