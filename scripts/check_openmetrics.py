#!/usr/bin/env python3
"""Validates OpenMetrics text-exposition files (stdlib only).

Checks the subset of the OpenMetrics 1.0 grammar that the C++ exporter in
src/obs/exporters.cc emits:

  * every line is a `# TYPE`/`# HELP` comment, a sample, or the final
    `# EOF`, which must be the last line;
  * metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]*;
  * every sample belongs to a declared metric family, respecting the
    suffix rules per type (counter `_total`, histogram `_bucket`/`_sum`/
    `_count`, summary `{quantile=...}` plus `_sum`/`_count`);
  * sample values parse as OpenMetrics numbers (decimal or the exact
    spellings +Inf/-Inf/NaN);
  * histogram `le` buckets are cumulative, end with `le="+Inf"`, and the
    +Inf bucket equals `_count`;
  * no metric family or sample (name + label set) appears twice.

Usage: scripts/check_openmetrics.py FILE [FILE...]
"""

import re
import sys

NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)
LABEL = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')
TYPES = {"counter", "gauge", "histogram", "summary", "unknown"}


def parse_number(text):
    """An OpenMetrics number, or None. Infinities and NaN are spelled
    exactly +Inf/-Inf/NaN in the exposition format."""
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf"))
    if re.search(r"(?i)inf|nan", text):
        return None
    try:
        return float(text)
    except ValueError:
        return None


def split_labels(raw):
    """Parses `a="x",b="y"` into a list of (name, value); None on error."""
    if raw is None or raw == "":
        return []
    out = []
    for part in re.findall(r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"', raw):
        m = LABEL.match(part)
        if m is None:
            return None
        out.append((m.group("name"), m.group("value")))
    # Everything must have been consumed (no trailing garbage).
    if ",".join(f'{n}="{v}"' for n, v in out) != re.sub(r'",\s*', '",', raw):
        rebuilt = ",".join(re.findall(
            r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"', raw))
        if rebuilt != raw:
            return None
    return out


def family_of(name, families):
    """The declared family a sample name belongs to, honouring suffixes."""
    if name in families:
        return name
    for suffix in ("_total", "_bucket", "_sum", "_count", "_created"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def check_file(path):
    errors = []

    def err(lineno, message):
        errors.append(f"{path}:{lineno}: {message}")

    with open(path, "rb") as f:
        blob = f.read()
    if not blob.endswith(b"\n"):
        err(0, "file must end with a newline")
    text = blob.decode("utf-8", errors="replace")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()

    families = {}  # name -> type
    seen_samples = set()
    histograms = {}  # family -> {"buckets": [(le, value)], "count": float}
    saw_eof = False

    for lineno, line in enumerate(lines, start=1):
        if saw_eof:
            err(lineno, "content after # EOF")
            break
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                err(lineno, f"malformed TYPE line: {line!r}")
                continue
            _, _, name, mtype = parts
            if not NAME.match(name):
                err(lineno, f"bad metric name {name!r}")
            if mtype not in TYPES:
                err(lineno, f"unknown metric type {mtype!r}")
            if name in families:
                err(lineno, f"duplicate family {name!r}")
            families[name] = mtype
            continue
        if line.startswith("# HELP ") or line.startswith("# UNIT "):
            continue
        if line.startswith("#"):
            err(lineno, f"unrecognized comment line: {line!r}")
            continue

        m = SAMPLE.match(line)
        if m is None:
            err(lineno, f"unparseable sample line: {line!r}")
            continue
        name = m.group("name")
        labels = split_labels(m.group("labels"))
        if labels is None:
            err(lineno, f"malformed label set: {m.group('labels')!r}")
            continue
        value = parse_number(m.group("value"))
        if value is None:
            err(lineno, f"bad sample value {m.group('value')!r}")
            continue

        family = family_of(name, families)
        if family is None:
            err(lineno, f"sample {name!r} has no # TYPE declaration")
            continue
        mtype = families[family]

        key = (name, tuple(sorted(labels)))
        if key in seen_samples:
            err(lineno, f"duplicate sample {name!r} {labels!r}")
        seen_samples.add(key)

        if mtype == "counter" and not name.endswith(("_total", "_created")):
            err(lineno, f"counter sample {name!r} must end in _total")
        if mtype == "summary" and name == family:
            quantiles = [v for (n, v) in labels if n == "quantile"]
            if len(quantiles) != 1:
                err(lineno, f"summary sample {name!r} needs a quantile label")
            elif parse_number(quantiles[0]) is None:
                err(lineno, f"bad quantile value {quantiles[0]!r}")
        if mtype == "histogram":
            h = histograms.setdefault(family, {"buckets": [], "count": None})
            if name == family + "_bucket":
                les = [v for (n, v) in labels if n == "le"]
                if len(les) != 1:
                    err(lineno, f"bucket sample {name!r} needs an le label")
                else:
                    h["buckets"].append((lineno, les[0], value))
            elif name == family + "_count":
                h["count"] = value

    if not saw_eof:
        errors.append(f"{path}: missing # EOF terminator")

    for family, h in histograms.items():
        buckets = h["buckets"]
        if not buckets:
            errors.append(f"{path}: histogram {family!r} has no buckets")
            continue
        last_value = None
        for lineno, le, value in buckets:
            if parse_number(le) is None:
                errors.append(f"{path}:{lineno}: bad le value {le!r}")
            if last_value is not None and value < last_value:
                errors.append(
                    f"{path}:{lineno}: histogram {family!r} buckets are "
                    f"not cumulative ({value} < {last_value})")
            last_value = value
        if buckets[-1][1] != "+Inf":
            errors.append(
                f"{path}: histogram {family!r} must end with le=\"+Inf\"")
        elif h["count"] is not None and buckets[-1][2] != h["count"]:
            errors.append(
                f"{path}: histogram {family!r} +Inf bucket "
                f"({buckets[-1][2]}) != _count ({h['count']})")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for e in all_errors:
        print(e)
    if all_errors:
        print(f"check_openmetrics: {len(all_errors)} error(s)")
        return 1
    print(f"check_openmetrics: {len(argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
