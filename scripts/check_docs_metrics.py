#!/usr/bin/env python3
"""Checks that metric names cited in the docs exist in the source tree.

The docs (README.md and docs/*.md) name metric series like
`estimator.learned.hit` or families like `server.slo.*`; nothing stops a
doc from citing a series that was renamed or never shipped. This script
extracts every `estimator.*` / `server.*` / `perf.*` / `optimizer.*` /
`cluster.*` name from the docs and verifies each one against the
metric-name string literals in src/:

  * an exact literal match is valid;
  * a docs name ending in `.*` (or a bare `family.` prefix) is valid when
    at least one source literal starts with that prefix;
  * a docs name is also valid when a source literal *prefix* ending in '.'
    (e.g. "perf.cache." built up by concatenation) is a prefix of it, or
    when the docs name is a dot-boundary prefix of a full source literal
    (a family cited without the trailing `.*`).

Cited-but-missing names fail the run (exit 1). Source metrics never
mentioned in any doc are listed as warnings — undocumented telemetry is a
docs smell, not an error.

Usage: scripts/check_docs_metrics.py [repo_root]
"""

import os
import re
import sys

METRIC = re.compile(
    r"\b((?:estimator|server|perf|optimizer|cluster)\.[a-z0-9_.*]+)")
STRING_LITERAL = re.compile(r'"((?:[^"\\\n]|\\.)*)"')
# `optimizer.cc`, `docs/…/optimizer.h` and friends are file paths that
# happen to start with a metric family, not metric names.
FILE_EXT = re.compile(r"\.(h|cc|cpp|hpp|md|py|txt|json)$")


def doc_files(root):
    docs = []
    readme = os.path.join(root, "README.md")
    if os.path.isfile(readme):
        docs.append(readme)
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                docs.append(os.path.join(docs_dir, name))
    return docs


def source_files(root):
    sources = []
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc", ".cpp")):
                sources.append(os.path.join(dirpath, name))
    return sources


def collect_doc_citations(paths):
    """{name: [(file, line), ...]} for every metric-shaped docs mention."""
    citations = {}
    for path in paths:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in METRIC.finditer(line):
                name = match.group(1).rstrip(".")
                if "." not in name or FILE_EXT.search(name):
                    continue
                citations.setdefault(name, []).append((path, lineno))
    return citations


def collect_source_metrics(paths):
    """(full_names, prefixes): literals in src/ that look like metrics.

    A literal ending in '.' is a concatenation prefix (the code appends a
    suffix at runtime), kept separately so docs names under it validate.
    """
    full_names = set()
    prefixes = set()
    for path in paths:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for literal in STRING_LITERAL.findall(text):
            for match in METRIC.finditer(literal):
                name = match.group(1)
                if name.endswith("."):
                    prefixes.add(name)
                    continue
                if "*" in name or FILE_EXT.search(name):
                    continue
                if "." in name:
                    full_names.add(name)
    return full_names, prefixes


def is_cited_name_valid(name, full_names, prefixes):
    if name.endswith(".*") or name.endswith("*"):
        family = name.rstrip("*").rstrip(".") + "."
        return any(full.startswith(family) for full in full_names) or any(
            prefix.startswith(family) or family.startswith(prefix)
            for prefix in prefixes
        )
    if name in full_names:
        return True
    # A source-side concatenation prefix covers the docs name.
    if any(name.startswith(prefix) for prefix in prefixes):
        return True
    # A family cited without the `.*` suffix: valid when some full metric
    # lives under it at a dot boundary.
    return any(full.startswith(name + ".") for full in full_names)


def is_source_metric_documented(name, citations):
    for cited in citations:
        if cited == name:
            return True
        family = cited.rstrip("*").rstrip(".")
        if family and name.startswith(family + "."):
            return True
    return False


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    docs = doc_files(root)
    sources = source_files(root)
    if not docs or not sources:
        print(f"error: no docs or no sources found under {root!r}")
        return 1

    citations = collect_doc_citations(docs)
    full_names, prefixes = collect_source_metrics(sources)

    errors = []
    for name in sorted(citations):
        if not is_cited_name_valid(name, full_names, prefixes):
            for path, lineno in citations[name]:
                rel = os.path.relpath(path, root)
                errors.append(f"{rel}:{lineno}: cited metric `{name}` "
                              "not found in src/")

    undocumented = sorted(
        name for name in full_names
        if not is_source_metric_documented(name, citations)
    )

    for error in errors:
        print(error)
    if undocumented:
        print(f"warning: {len(undocumented)} source metric(s) not mentioned "
              "in any doc:")
        for name in undocumented:
            print(f"  {name}")

    checked = len(citations)
    if errors:
        print(f"{len(errors)} missing metric citation(s) "
              f"({checked} names checked across {len(docs)} docs)")
        return 1
    print(f"OK: {checked} docs-cited metric names all exist in src/ "
          f"({len(full_names)} source metrics, {len(docs)} docs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
