#!/usr/bin/env python3
"""Validates Chrome trace_event JSON files (stdlib only).

Checks that a file produced by obs::ToChromeTrace (src/obs/exporters.cc)
is loadable by chrome://tracing / Perfetto:

  * the file is a well-formed JSON array (the trace_event "JSON Array
    Format"; a trailing `]` is optional in the spec but our exporter
    always emits it);
  * every event object carries the required keys: name, cat, ph, ts, pid,
    tid — with ts numeric and non-negative;
  * phases are drawn from the exporter's vocabulary (B, E, i);
  * per (pid, tid), B/E events nest: every E closes the most recent open
    B and repeats its name, and no B is left open at end of trace;
  * instant events carry the scope key "s";
  * timestamps never decrease per (pid, tid) (the exporter uses a logical
    event sequence, so this is strict).

Usage: scripts/check_trace_json.py FILE [FILE...]
"""

import json
import sys

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")
PHASES = {"B", "E", "i"}


def check_file(path):
    errors = []

    def err(message):
        errors.append(f"{path}: {message}")

    with open(path, "rb") as f:
        blob = f.read()
    try:
        events = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        err(f"not valid JSON: {e}")
        return errors
    if not isinstance(events, list):
        err(f"top level must be a JSON array, got {type(events).__name__}")
        return errors

    open_spans = {}  # (pid, tid) -> [names of open B spans]
    last_ts = {}  # (pid, tid) -> last timestamp seen

    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            err(f"{where}: not an object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if missing:
            err(f"{where}: missing keys {missing}")
            continue
        ph = event["ph"]
        if ph not in PHASES:
            err(f"{where}: unexpected phase {ph!r}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            err(f"{where}: ts must be a non-negative number, got {ts!r}")
            continue
        if "args" in event and not isinstance(event["args"], dict):
            err(f"{where}: args must be an object")

        track = (event["pid"], event["tid"])
        if track in last_ts and ts < last_ts[track]:
            err(f"{where}: ts went backwards on track {track} "
                f"({ts} < {last_ts[track]})")
        last_ts[track] = ts

        if ph == "B":
            open_spans.setdefault(track, []).append(event["name"])
        elif ph == "E":
            stack = open_spans.get(track, [])
            if not stack:
                err(f"{where}: E with no open B on track {track}")
            else:
                opened = stack.pop()
                if opened != event["name"]:
                    err(f"{where}: E name {event['name']!r} does not match "
                        f"open B {opened!r}")
        elif ph == "i":
            if "s" not in event:
                err(f"{where}: instant event missing scope key \"s\"")
            elif event["s"] not in ("t", "p", "g"):
                err(f"{where}: bad instant scope {event['s']!r}")

    for track, stack in open_spans.items():
        if stack:
            err(f"unclosed B span(s) on track {track}: {stack}")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for e in all_errors:
        print(e)
    if all_errors:
        print(f"check_trace_json: {len(all_errors)} error(s)")
        return 1
    print(f"check_trace_json: {len(argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
