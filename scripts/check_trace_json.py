#!/usr/bin/env python3
"""Validates Chrome trace_event JSON files (stdlib only).

Checks that a file produced by obs::ToChromeTrace (src/obs/exporters.cc)
— either the single-tracer rendering or the multi-lane flight-recorder
rendering — is loadable by chrome://tracing / Perfetto:

  * the file is a well-formed JSON array (the trace_event "JSON Array
    Format"; a trailing `]` is optional in the spec but our exporter
    always emits it);
  * every event object carries the required keys: name, cat, ph, ts, pid,
    tid — with ts numeric and non-negative;
  * phases are drawn from the exporter's vocabulary (B, E, i, M, C);
  * metadata events (ph "M") carry an args.name payload;
  * counter events (ph "C") carry a non-empty args object whose values
    are all finite numbers (booleans rejected), and every sample of the
    same counter — keyed by (pid, name) — uses the same set of series
    keys, so Perfetto renders one stable stacked track per counter;
  * per (pid, tid), B/E events nest: every E closes the most recent open
    B, repeats its name, and — when span ids are emitted (the lane
    rendering) — repeats its id; no B is left open at end of trace;
  * span ids are unique among the open spans of a track (an id may be
    reused only after its span ends, which never happens in our
    exporters but is legal in the format);
  * instant events carry the scope key "s";
  * timestamps never decrease per (pid, tid) (the exporter uses a logical
    event sequence, so this is strict).

Usage: scripts/check_trace_json.py FILE [FILE...]
"""

import json
import sys

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")
PHASES = {"B", "E", "i", "M", "C"}


def check_file(path):
    errors = []

    def err(message):
        errors.append(f"{path}: {message}")

    with open(path, "rb") as f:
        blob = f.read()
    try:
        events = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        err(f"not valid JSON: {e}")
        return errors
    if not isinstance(events, list):
        err(f"top level must be a JSON array, got {type(events).__name__}")
        return errors

    open_spans = {}  # (pid, tid) -> [(name, id or None) of open B spans]
    last_ts = {}  # (pid, tid) -> last timestamp seen
    counter_keys = {}  # (pid, name) -> sorted series keys of first sample

    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            err(f"{where}: not an object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if missing:
            err(f"{where}: missing keys {missing}")
            continue
        ph = event["ph"]
        if ph not in PHASES:
            err(f"{where}: unexpected phase {ph!r}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            err(f"{where}: ts must be a non-negative number, got {ts!r}")
            continue
        if "args" in event and not isinstance(event["args"], dict):
            err(f"{where}: args must be an object")

        if ph == "M":
            # Metadata (process_name / thread_name): named payload, no
            # ordering or nesting constraints.
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                err(f"{where}: metadata event missing args.name")
            continue

        track = (event["pid"], event["tid"])
        if track in last_ts and ts < last_ts[track]:
            err(f"{where}: ts went backwards on track {track} "
                f"({ts} < {last_ts[track]})")
        last_ts[track] = ts

        if ph == "B":
            span_id = event.get("id")
            stack = open_spans.setdefault(track, [])
            if span_id is not None and any(s[1] == span_id for s in stack):
                err(f"{where}: duplicate open span id {span_id!r} on track "
                    f"{track}")
            stack.append((event["name"], span_id))
        elif ph == "E":
            stack = open_spans.get(track, [])
            if not stack:
                err(f"{where}: E with no open B on track {track}")
            else:
                opened_name, opened_id = stack.pop()
                if opened_name != event["name"]:
                    err(f"{where}: E name {event['name']!r} does not match "
                        f"open B {opened_name!r}")
                span_id = event.get("id")
                if (opened_id is not None or span_id is not None) and \
                        span_id != opened_id:
                    err(f"{where}: E id {span_id!r} does not match "
                        f"open B id {opened_id!r}")
        elif ph == "C":
            # Counter sample: args maps series name -> numeric value, and
            # a counter (keyed by pid+name per the trace_event format)
            # must expose the same series in every sample.
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                err(f"{where}: counter event needs a non-empty args object")
                continue
            for key, value in args.items():
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)):
                    err(f"{where}: counter series {key!r} value must be "
                        f"numeric, got {value!r}")
                elif value != value or value in (float("inf"),
                                                 float("-inf")):
                    err(f"{where}: counter series {key!r} value must be "
                        f"finite, got {value!r}")
            counter = (event["pid"], event["name"])
            keys = sorted(args.keys())
            if counter not in counter_keys:
                counter_keys[counter] = keys
            elif counter_keys[counter] != keys:
                err(f"{where}: counter {counter} changed series keys "
                    f"{counter_keys[counter]} -> {keys}")
        elif ph == "i":
            if "s" not in event:
                err(f"{where}: instant event missing scope key \"s\"")
            elif event["s"] not in ("t", "p", "g"):
                err(f"{where}: bad instant scope {event['s']!r}")

    for track, stack in open_spans.items():
        if stack:
            names = [name for name, _ in stack]
            err(f"unclosed B span(s) on track {track}: {names}")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for e in all_errors:
        print(e)
    if all_errors:
        print(f"check_trace_json: {len(all_errors)} error(s)")
        return 1
    print(f"check_trace_json: {len(argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
