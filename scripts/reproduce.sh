#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, and regenerates every
# figure of the paper into bench_output.txt (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then "$b"; fi
done 2>&1 | tee bench_output.txt
