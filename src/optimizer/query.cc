#include "optimizer/query.h"

#include "util/string_util.h"

namespace robustqo {
namespace opt {

std::set<std::string> QuerySpec::TableNames() const {
  std::set<std::string> names;
  for (const TableRef& ref : tables) names.insert(ref.table);
  return names;
}

expr::ExprPtr QuerySpec::CombinedPredicate(
    const std::set<std::string>& subset) const {
  std::vector<expr::ExprPtr> conjuncts;
  for (const TableRef& ref : tables) {
    if (ref.predicate != nullptr && subset.count(ref.table) > 0) {
      conjuncts.push_back(ref.predicate);
    }
  }
  if (conjuncts.empty()) return nullptr;
  if (conjuncts.size() == 1) return conjuncts[0];
  return expr::And(std::move(conjuncts));
}

std::string QuerySpec::ToString() const {
  std::vector<std::string> froms;
  std::vector<std::string> wheres;
  for (const TableRef& ref : tables) {
    froms.push_back(ref.table);
    if (ref.predicate != nullptr) wheres.push_back(ref.predicate->ToString());
  }
  std::string out = "SELECT ";
  if (aggregates.empty()) {
    out += select_columns.empty() ? "*" : StrJoin(select_columns, ", ");
  } else {
    std::vector<std::string> aggs;
    for (const auto& a : aggregates) aggs.push_back(a.output_name);
    out += StrJoin(aggs, ", ");
  }
  out += " FROM " + StrJoin(froms, " NATURAL JOIN ");
  if (!wheres.empty()) out += " WHERE " + StrJoin(wheres, " AND ");
  if (!group_by.empty()) out += " GROUP BY " + StrJoin(group_by, ", ");
  if (!order_by.empty()) out += " ORDER BY " + order_by;
  if (limit > 0) {
    out += StrPrintf(" LIMIT %llu", static_cast<unsigned long long>(limit));
  }
  return out;
}

}  // namespace opt
}  // namespace robustqo
