#include "optimizer/optimizer.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "exec/agg_ops.h"
#include "exec/join_ops.h"
#include "exec/scan_ops.h"
#include "exec/sort_op.h"
#include "expr/analysis.h"
#include "obs/obs.h"
#include "optimizer/run_state.h"
#include "perf/caches.h"
#include "statistics/magic.h"
#include "statistics/robust_sample_estimator.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace opt {

using exec::CostModel;
using exec::OperatorPtr;

namespace {

// Temporarily overrides the robust estimator's confidence threshold when a
// query hint is present; restores it on destruction.
class ThresholdHintScope {
 public:
  ThresholdHintScope(stats::CardinalityEstimator* estimator,
                     std::optional<double> hint) {
    if (!hint.has_value()) return;
    robust_ = dynamic_cast<stats::RobustSampleEstimator*>(estimator);
    if (robust_ != nullptr) {
      saved_ = robust_->config().confidence_threshold;
      robust_->set_confidence_threshold(*hint);
    }
  }
  ~ThresholdHintScope() {
    if (robust_ != nullptr) robust_->set_confidence_threshold(saved_);
  }

 private:
  stats::RobustSampleEstimator* robust_ = nullptr;
  double saved_ = 0.0;
};

std::string SubsetKey(uint32_t subset) {
  return StrPrintf("%u", subset);
}

// Sargable conjunct with its extracted range.
struct SargableConjunct {
  expr::ExprPtr conjunct;
  expr::ColumnRange range;
};

std::vector<SargableConjunct> IndexedSargables(
    const storage::Catalog& catalog, const std::string& table,
    const expr::ExprPtr& predicate) {
  std::vector<SargableConjunct> out;
  if (predicate == nullptr) return out;
  for (const auto& conjunct : expr::SplitConjuncts(predicate)) {
    auto range = expr::TryExtractColumnRange(conjunct);
    if (range.has_value() && catalog.HasIndex(table, range->column)) {
      out.push_back({conjunct, *range});
    }
  }
  return out;
}

}  // namespace

Optimizer::Optimizer(const storage::Catalog* catalog,
                     stats::CardinalityEstimator* estimator,
                     CostModel cost_model)
    : catalog_(catalog), estimator_(estimator), cost_model_(cost_model) {
  RQO_CHECK(catalog != nullptr && estimator != nullptr);
}

double Optimizer::EstimateRowsWithPredicate(RunState* run, uint32_t subset,
                                            const expr::ExprPtr& predicate,
                                            const std::string& cache_tag) {
  ++metrics_.estimator_calls;
  RQO_IF_OBS(run->metric_estimates) run->metric_estimates->Increment();
  const std::string key = SubsetKey(subset) + "|" + cache_tag;
  if (run->options.enable_estimate_memo) {
    auto it = run->estimate_cache.find(key);
    if (it != run->estimate_cache.end()) {
      RQO_IF_OBS(run->metric_cache_hits) run->metric_cache_hits->Increment();
      return it->second;
    }
  }
  ++metrics_.estimator_misses;

  stats::CardinalityRequest request;
  request.tables = run->SubsetNames(subset);
  request.predicate = predicate;
  Result<double> rows = estimator_->EstimateRows(request);
  double value;
  if (rows.ok()) {
    value = std::max(0.0, rows.value());
  } else {
    // Last-resort guess: largest table in the subset, scaled by the magic
    // selectivity once per predicate conjunct.
    double base = 1.0;
    for (const std::string& name : request.tables) {
      base = std::max(
          base, static_cast<double>(catalog_->GetTable(name)->num_rows()));
    }
    double sel = 1.0;
    if (predicate != nullptr) {
      for (size_t i = 0; i < expr::SplitConjuncts(predicate).size(); ++i) {
        sel *= stats::kMagicUnknownSelectivity;
      }
    }
    value = base * sel;
  }
  RQO_IF_OBS(run->options.tracer) {
    std::vector<std::string> names(request.tables.begin(),
                                   request.tables.end());
    run->options.tracer->Event(
        "optimizer", "estimate",
        {{"tables", StrJoin(names, ",")},
         {"tag", cache_tag},
         {"fallback", rows.ok() ? "false" : "true"},
         {"est_rows", obs::AttrF(value)}});
  }
  run->estimate_cache.emplace(key, value);
  return value;
}

double Optimizer::EstimateRows(RunState* run, uint32_t subset) {
  const expr::ExprPtr predicate =
      run->query->CombinedPredicate(run->SubsetNames(subset));
  return EstimateRowsWithPredicate(run, subset, predicate, "own");
}

void Optimizer::AddAccessPaths(RunState* run, size_t table_idx,
                               std::vector<PlanCandidate>* out) {
  const storage::Table* table = run->tables[table_idx];
  const std::string name = table->name();
  const expr::ExprPtr predicate = run->query->tables[table_idx].predicate;
  const std::vector<std::string>& columns = run->needed_columns[table_idx];
  const double total_rows = static_cast<double>(table->num_rows());
  const uint32_t bit = 1u << table_idx;
  const double est_rows = EstimateRows(run, bit);

  auto in_projection = [&columns](const std::string& col) {
    return std::find(columns.begin(), columns.end(), col) != columns.end();
  };

  // 1) Sequential scan — the selectivity-insensitive plan.
  {
    PlanCandidate cand;
    cand.cost = exec::SeqScanCost(cost_model_, total_rows, est_rows);
    cand.rows = est_rows;
    const std::string cluster = catalog_->ClusteringColumnOf(name);
    cand.sort_order = in_projection(cluster) ? cluster : "";
    cand.label = "Seq(" + name + ")";
    cand.build = [name, predicate, columns, est_rows]() -> OperatorPtr {
      auto op = std::make_unique<exec::SeqScanOp>(name, predicate, columns);
      op->set_planner_estimated_rows(est_rows);
      return op;
    };
    if (run->options.provenance_enabled) {
      const CostModel cm = cost_model_;
      cand.cost_at = [cm, total_rows, est_rows](double ratio) {
        return exec::SeqScanCost(cm, total_rows, est_rows * ratio);
      };
    }
    out->push_back(std::move(cand));
    ++metrics_.candidates;
  }

  const std::vector<SargableConjunct> sargables =
      IndexedSargables(*catalog_, name, predicate);

  // 2) Single-index range scans.
  for (const SargableConjunct& s : sargables) {
    const double conj_rows = EstimateRowsWithPredicate(
        run, bit, s.conjunct, "conj:" + s.conjunct->ToString());
    const double entries =
        total_rows * std::min(1.0, conj_rows / std::max(1.0, total_rows));
    PlanCandidate cand;
    cand.cost =
        exec::IndexRangeScanCost(cost_model_, entries, entries, est_rows);
    cand.rows = est_rows;
    cand.sort_order = in_projection(s.range.column) ? s.range.column : "";
    cand.label = "Ix(" + name + "." + s.range.column + ")";
    exec::IndexRange range{s.range.column, s.range.lo, s.range.hi};
    cand.build = [name, range, predicate, columns,
                  est_rows]() -> OperatorPtr {
      auto op = std::make_unique<exec::IndexRangeScanOp>(name, range,
                                                         predicate, columns);
      op->set_planner_estimated_rows(est_rows);
      return op;
    };
    if (run->options.provenance_enabled) {
      const CostModel cm = cost_model_;
      cand.cost_at = [cm, total_rows, conj_rows, est_rows](double ratio) {
        const double e = total_rows *
                         std::min(1.0, conj_rows * ratio /
                                           std::max(1.0, total_rows));
        return exec::IndexRangeScanCost(cm, e, e, est_rows * ratio);
      };
    }
    out->push_back(std::move(cand));
    ++metrics_.candidates;
  }

  // 3) Index intersections over every subset of >= 2 sargable indexes.
  if (run->options.enable_index_intersection && sargables.size() >= 2) {
    const uint32_t limit = 1u << sargables.size();
    for (uint32_t mask = 0; mask < limit; ++mask) {
      if (__builtin_popcount(mask) < 2) continue;
      std::vector<exec::IndexRange> ranges;
      std::vector<expr::ExprPtr> conjuncts;
      std::vector<std::string> range_cols;
      std::vector<double> conj_rows;
      double entries_total = 0.0;
      for (size_t i = 0; i < sargables.size(); ++i) {
        if (!(mask & (1u << i))) continue;
        const SargableConjunct& s = sargables[i];
        ranges.push_back({s.range.column, s.range.lo, s.range.hi});
        conjuncts.push_back(s.conjunct);
        range_cols.push_back(s.range.column);
        const double rows_i = EstimateRowsWithPredicate(
            run, bit, s.conjunct, "conj:" + s.conjunct->ToString());
        conj_rows.push_back(rows_i);
        entries_total +=
            total_rows * std::min(1.0, rows_i / std::max(1.0, total_rows));
      }
      // Survivors of the RID intersection: the *joint* selectivity of the
      // chosen conjuncts — this estimate is where AVI goes wrong on
      // correlated data and where the robust estimator shines.
      expr::ExprPtr joint = conjuncts.size() == 1
                                ? conjuncts[0]
                                : expr::And(conjuncts);
      const double fetches = EstimateRowsWithPredicate(
          run, bit, joint, "conj:" + joint->ToString());
      PlanCandidate cand;
      cand.cost = exec::IndexIntersectionCost(
          cost_model_, static_cast<int>(ranges.size()), entries_total,
          fetches, est_rows);
      cand.rows = est_rows;
      cand.sort_order = "";
      cand.label =
          "IxSect(" + name + ":" + StrJoin(range_cols, "&") + ")";
      cand.build = [name, ranges, predicate, columns,
                    est_rows]() -> OperatorPtr {
        auto op = std::make_unique<exec::IndexIntersectionOp>(
            name, ranges, predicate, columns);
        op->set_planner_estimated_rows(est_rows);
        return op;
      };
      if (run->options.provenance_enabled) {
        const CostModel cm = cost_model_;
        const int nranges = static_cast<int>(ranges.size());
        cand.cost_at = [cm, nranges, conj_rows, total_rows, fetches,
                        est_rows](double ratio) {
          double entries = 0.0;
          for (double rows_i : conj_rows) {
            entries += total_rows *
                       std::min(1.0, rows_i * ratio /
                                         std::max(1.0, total_rows));
          }
          return exec::IndexIntersectionCost(cm, nranges, entries,
                                             fetches * ratio,
                                             est_rows * ratio);
        };
      }
      out->push_back(std::move(cand));
      ++metrics_.candidates;
    }
  }
}

void Optimizer::AddJoinCandidates(RunState* run, uint32_t s1, uint32_t s2,
                                  const std::vector<PlanCandidate>& left,
                                  const std::vector<PlanCandidate>& right,
                                  std::vector<PlanCandidate>* out) {
  const size_t edge_idx = run->CrossingEdge(s1, s2);
  if (edge_idx == SIZE_MAX) return;
  const RunState::Edge& edge = run->edges[edge_idx];
  // Join columns on each side of the partition.
  const bool from_in_s1 =
      (s1 & (1u << run->IndexOf(edge.fk.from_table))) != 0;
  const std::string key1 =
      from_in_s1 ? edge.fk.from_column : edge.fk.to_column;
  const std::string key2 =
      from_in_s1 ? edge.fk.to_column : edge.fk.from_column;

  const uint32_t joined = s1 | s2;
  const double out_rows = EstimateRows(run, joined);

  for (const PlanCandidate& l : left) {
    for (const PlanCandidate& r : right) {
      // Hash join, both build directions.
      if (run->options.enable_hash_join) {
        PlanCandidate cand;
        cand.cost = l.cost + r.cost +
                    exec::HashJoinCost(cost_model_, l.rows, r.rows, out_rows);
        cand.rows = out_rows;
        cand.sort_order = r.sort_order;  // probe-side order is preserved
        cand.label = "HJ(" + l.label + "," + r.label + ")";
        auto lb = l.build;
        auto rb = r.build;
        cand.build = [lb, rb, key1, key2, out_rows]() -> OperatorPtr {
          auto op =
              std::make_unique<exec::HashJoinOp>(lb(), rb(), key1, key2);
          op->set_planner_estimated_rows(out_rows);
          return op;
        };
        if (run->options.provenance_enabled && l.cost_at && r.cost_at) {
          const CostModel cm = cost_model_;
          auto lc = l.cost_at;
          auto rc = r.cost_at;
          const double l_rows = l.rows;
          const double r_rows = r.rows;
          cand.cost_at = [cm, lc, rc, l_rows, r_rows,
                          out_rows](double ratio) {
            return lc(ratio) + rc(ratio) +
                   exec::HashJoinCost(cm, l_rows * ratio, r_rows * ratio,
                                      out_rows * ratio);
          };
        }
        out->push_back(std::move(cand));
        ++metrics_.candidates;
      }
      if (run->options.enable_hash_join) {
        PlanCandidate cand;
        cand.cost = l.cost + r.cost +
                    exec::HashJoinCost(cost_model_, r.rows, l.rows, out_rows);
        cand.rows = out_rows;
        cand.sort_order = l.sort_order;
        cand.label = "HJ(" + r.label + "," + l.label + ")";
        auto lb = l.build;
        auto rb = r.build;
        cand.build = [lb, rb, key1, key2, out_rows]() -> OperatorPtr {
          auto op =
              std::make_unique<exec::HashJoinOp>(rb(), lb(), key2, key1);
          op->set_planner_estimated_rows(out_rows);
          return op;
        };
        if (run->options.provenance_enabled && l.cost_at && r.cost_at) {
          const CostModel cm = cost_model_;
          auto lc = l.cost_at;
          auto rc = r.cost_at;
          const double l_rows = l.rows;
          const double r_rows = r.rows;
          cand.cost_at = [cm, lc, rc, l_rows, r_rows,
                          out_rows](double ratio) {
            return lc(ratio) + rc(ratio) +
                   exec::HashJoinCost(cm, r_rows * ratio, l_rows * ratio,
                                      out_rows * ratio);
          };
        }
        out->push_back(std::move(cand));
        ++metrics_.candidates;
      }
      // Merge join: directly when both inputs arrive sorted on the join
      // keys; otherwise (optionally) below explicit Sort operators.
      if (run->options.enable_merge_join) {
        const bool l_sorted = l.sort_order == key1;
        const bool r_sorted = r.sort_order == key2;
        const bool need_sorts = !l_sorted || !r_sorted;
        if (!need_sorts || run->options.enable_sort_for_merge) {
          PlanCandidate cand;
          cand.cost = l.cost + r.cost +
                      exec::MergeJoinCost(cost_model_, l.rows, r.rows,
                                          out_rows);
          std::string l_label = l.label;
          std::string r_label = r.label;
          if (!l_sorted) {
            cand.cost += exec::SortCost(cost_model_, l.rows);
            l_label = "Sort(" + l_label + ")";
          }
          if (!r_sorted) {
            cand.cost += exec::SortCost(cost_model_, r.rows);
            r_label = "Sort(" + r_label + ")";
          }
          cand.rows = out_rows;
          cand.sort_order = key1;
          cand.label = "MJ(" + l_label + "," + r_label + ")";
          auto lb = l.build;
          auto rb = r.build;
          const double l_rows = l.rows;
          const double r_rows = r.rows;
          cand.build = [lb, rb, key1, key2, l_sorted, r_sorted, out_rows,
                        l_rows, r_rows]() -> OperatorPtr {
            OperatorPtr left_op = lb();
            OperatorPtr right_op = rb();
            if (!l_sorted) {
              left_op =
                  std::make_unique<exec::SortOp>(std::move(left_op), key1);
              left_op->set_planner_estimated_rows(l_rows);
            }
            if (!r_sorted) {
              right_op =
                  std::make_unique<exec::SortOp>(std::move(right_op), key2);
              right_op->set_planner_estimated_rows(r_rows);
            }
            auto op = std::make_unique<exec::MergeJoinOp>(
                std::move(left_op), std::move(right_op), key1, key2);
            op->set_planner_estimated_rows(out_rows);
            return op;
          };
          if (run->options.provenance_enabled && l.cost_at && r.cost_at) {
            const CostModel cm = cost_model_;
            auto lc = l.cost_at;
            auto rc = r.cost_at;
            cand.cost_at = [cm, lc, rc, l_rows, r_rows, l_sorted, r_sorted,
                            out_rows](double ratio) {
              double c = lc(ratio) + rc(ratio) +
                         exec::MergeJoinCost(cm, l_rows * ratio,
                                             r_rows * ratio,
                                             out_rows * ratio);
              if (!l_sorted) c += exec::SortCost(cm, l_rows * ratio);
              if (!r_sorted) c += exec::SortCost(cm, r_rows * ratio);
              return c;
            };
          }
          out->push_back(std::move(cand));
          ++metrics_.candidates;
        }
      }
    }
  }

  // Indexed nested-loop join: inner side must be a single base table with
  // an index on its join column. Try each orientation.
  if (run->options.enable_index_nested_loop) {
    struct Orientation {
      uint32_t outer_set;
      uint32_t inner_set;
      const std::vector<PlanCandidate>* outer_cands;
      std::string outer_key;
      std::string inner_key;
    };
    const Orientation orientations[2] = {
        {s1, s2, &left, key1, key2},
        {s2, s1, &right, key2, key1},
    };
    for (const Orientation& o : orientations) {
      if (__builtin_popcount(o.inner_set) != 1) continue;
      const size_t inner_idx =
          static_cast<size_t>(__builtin_ctz(o.inner_set));
      const std::string inner_name = run->tables[inner_idx]->name();
      if (!catalog_->HasIndex(inner_name, o.inner_key)) continue;

      // Matching index entries before the inner predicate: the join of the
      // outer subset with the bare inner table.
      const expr::ExprPtr outer_pred =
          run->query->CombinedPredicate(run->SubsetNames(o.outer_set));
      const double entries = EstimateRowsWithPredicate(
          run, joined, outer_pred,
          "noinner:" + inner_name +
              (outer_pred ? outer_pred->ToString() : ""));
      const expr::ExprPtr inner_pred =
          run->query->tables[inner_idx].predicate;
      const std::vector<std::string> inner_cols =
          run->needed_columns[inner_idx];
      for (const PlanCandidate& outer : *o.outer_cands) {
        PlanCandidate cand;
        cand.cost = outer.cost + exec::IndexNestedLoopJoinCost(
                                     cost_model_, outer.rows, entries,
                                     entries, out_rows);
        cand.rows = out_rows;
        cand.sort_order = outer.sort_order;
        cand.label = "INLJ(" + outer.label + ">" + inner_name + ")";
        auto ob = outer.build;
        const std::string outer_key = o.outer_key;
        const std::string inner_key = o.inner_key;
        cand.build = [ob, outer_key, inner_name, inner_key, inner_pred,
                      out_rows]() -> OperatorPtr {
          auto op = std::make_unique<exec::IndexNestedLoopJoinOp>(
              ob(), outer_key, inner_name, inner_key, inner_pred);
          op->set_planner_estimated_rows(out_rows);
          return op;
        };
        if (run->options.provenance_enabled && outer.cost_at) {
          const CostModel cm = cost_model_;
          auto oc = outer.cost_at;
          const double outer_rows = outer.rows;
          cand.cost_at = [cm, oc, outer_rows, entries,
                          out_rows](double ratio) {
            return oc(ratio) + exec::IndexNestedLoopJoinCost(
                                   cm, outer_rows * ratio, entries * ratio,
                                   entries * ratio, out_rows * ratio);
          };
        }
        out->push_back(std::move(cand));
        ++metrics_.candidates;
      }
    }
  }
}

void Optimizer::PruneCandidates(std::vector<PlanCandidate>* candidates) {
  if (candidates->empty()) return;
  std::unordered_map<std::string, PlanCandidate> best_by_order;
  for (PlanCandidate& cand : *candidates) {
    auto it = best_by_order.find(cand.sort_order);
    // Pinned tie-break: lower cost wins, and an exact cost tie goes to
    // the lexicographically smaller label — the survivor (and the
    // provenance top-K built from the surviving order) must never depend
    // on candidate generation order.
    if (it == best_by_order.end() || cand.cost < it->second.cost ||
        (cand.cost == it->second.cost && cand.label < it->second.label)) {
      best_by_order[cand.sort_order] = std::move(cand);
    }
  }
  candidates->clear();
  // Drop sorted candidates that are dominated by the cheapest unsorted one
  // only if the unsorted one is cheaper AND the sorted one adds nothing —
  // sorted outputs are retained because merge join may exploit them.
  for (auto& [order, cand] : best_by_order) {
    candidates->push_back(std::move(cand));
  }
  std::sort(candidates->begin(), candidates->end(),
            [](const PlanCandidate& a, const PlanCandidate& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              if (a.label != b.label) return a.label < b.label;
              return a.sort_order < b.sort_order;
            });
}

const std::vector<double>& Optimizer::SensitivityGrid() {
  static const std::vector<double> kGrid = {0.10, 0.25, 0.50,
                                            0.75, 0.90, 0.95};
  return kGrid;
}

void Optimizer::CaptureSensitivity(
    RunState* run, uint32_t full_subset,
    const std::vector<PlanCandidate>& finalists) {
  sensitivity_ = obs::PlanSensitivity{};
  sensitivity_.captured = true;
  sensitivity_.grid = SensitivityGrid();
  if (!finalists.empty()) sensitivity_.plan_label = finalists.front().label;

  auto* robust = dynamic_cast<stats::RobustSampleEstimator*>(estimator_);
  double threshold_selectivity = 0.0;
  if (robust == nullptr) {
    sensitivity_.unavailable_reason = "estimator has no posterior";
  } else {
    sensitivity_.threshold = robust->config().confidence_threshold;
    stats::CardinalityRequest request;
    request.tables = run->SubsetNames(full_subset);
    request.predicate = run->query->CombinedPredicate(request.tables);
    if (request.predicate == nullptr) {
      sensitivity_.unavailable_reason = "query has no predicate";
    } else {
      Result<stats::SelectivityPosterior> posterior =
          robust->EstimatePosterior(request);
      if (!posterior.ok()) {
        sensitivity_.unavailable_reason = "no covering posterior";
      } else {
        // All cdf^{-1} evaluations go through the shared inverse-Beta LRU,
        // so a re-planned fingerprint re-reads its whole grid from cache.
        const math::BetaDistribution& dist =
            posterior.value().distribution();
        perf::InverseBetaCache* beta = robust->beta_cache();
        threshold_selectivity =
            beta->Value(dist.alpha(), dist.beta(), sensitivity_.threshold);
        for (double q : sensitivity_.grid) {
          sensitivity_.selectivity.push_back(
              beta->Value(dist.alpha(), dist.beta(), q));
        }
        if (threshold_selectivity > 0.0) {
          sensitivity_.available = true;
        } else {
          sensitivity_.selectivity.clear();
          sensitivity_.unavailable_reason =
              "degenerate threshold selectivity";
        }
      }
    }
  }

  if (sensitivity_.available) {
    const size_t keep =
        std::min(finalists.size(), run->options.provenance_top_k + 1);
    for (size_t c = 0; c < keep; ++c) {
      const PlanCandidate& cand = finalists[c];
      obs::CandidateCurve curve;
      curve.label = cand.label;
      curve.cost = cand.cost;
      curve.rows = cand.rows;
      curve.curve_available = static_cast<bool>(cand.cost_at);
      for (double selectivity : sensitivity_.selectivity) {
        const double ratio = selectivity / threshold_selectivity;
        curve.cost_at.push_back(curve.curve_available ? cand.cost_at(ratio)
                                                      : cand.cost);
      }
      sensitivity_.candidates.push_back(std::move(curve));
    }
  }
  obs::FinalizeSensitivity(&sensitivity_);
}

Result<PlannedQuery> Optimizer::Optimize(const QuerySpec& query,
                                         const OptimizerOptions& options) {
  metrics_ = Metrics();
  sensitivity_ = obs::PlanSensitivity{};
  if (query.tables.empty()) {
    return Status::InvalidArgument("query has no tables");
  }
  // Exhaustive subset DP enumerates O(3^n) partitions; 12 tables (~0.5M
  // partitions) is a comfortable ceiling for this optimizer.
  if (query.tables.size() > 12) {
    return Status::Unsupported("more than 12 tables");
  }

  ThresholdHintScope hint_scope(estimator_, options.confidence_threshold_hint);

  // Per-run probe-count memo on the robust estimator: the DP re-costs the
  // same conjunct under many (subset, context) combinations, and the probe
  // cache collapses those to one sample scan each. Fresh per run, so
  // entries never outlive the statistics; restored on every return path.
  perf::ProbeCountCache probe_cache;
  struct ProbeCacheScope {
    stats::RobustSampleEstimator* robust = nullptr;
    perf::ProbeCountCache* saved = nullptr;
    ~ProbeCacheScope() {
      if (robust != nullptr) robust->set_probe_cache(saved);
    }
  } probe_scope;
  probe_scope.robust = dynamic_cast<stats::RobustSampleEstimator*>(estimator_);
  if (probe_scope.robust != nullptr && options.enable_probe_cache) {
    probe_scope.saved = probe_scope.robust->probe_cache();
    probe_scope.robust->set_probe_cache(&probe_cache);
  }

  RunState run;
  run.query = &query;
  run.options = options;
#if ROBUSTQO_OBS_ENABLED
  if (options.metrics != nullptr) {
    run.metric_estimates =
        options.metrics->GetCounter("optimizer.estimate_calls");
    run.metric_cache_hits =
        options.metrics->GetCounter("optimizer.estimate_cache_hits");
    run.metric_candidates = options.metrics->GetCounter("optimizer.candidates");
  }
  // Scope the estimator's trace/metrics sinks to this run so estimation
  // events nest under the optimize span and degradations are counted
  // (restored on every return path).
  struct EstimatorSinkScope {
    stats::CardinalityEstimator* estimator;
    obs::Tracer* saved_tracer;
    obs::MetricsRegistry* saved_metrics;
    ~EstimatorSinkScope() {
      estimator->set_tracer(saved_tracer);
      estimator->set_metrics(saved_metrics);
    }
  } estimator_sink_scope{estimator_, estimator_->tracer(),
                         estimator_->metrics()};
  if (options.tracer != nullptr) estimator_->set_tracer(options.tracer);
  if (options.metrics != nullptr) estimator_->set_metrics(options.metrics);
  obs::SpanGuard optimize_span(
      options.tracer, "optimizer", "optimize",
      {{"tables", obs::AttrU64(query.tables.size())},
       {"estimator", estimator_->name()}});
#endif
  const size_t n = query.tables.size();
  for (const TableRef& ref : query.tables) {
    const storage::Table* table = catalog_->GetTable(ref.table);
    if (table == nullptr) return Status::NotFound("table " + ref.table);
    run.tables.push_back(table);
  }

  // FK edges among the query tables.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      auto fk = catalog_->ForeignKeyBetween(run.tables[i]->name(),
                                            run.tables[j]->name());
      if (fk.ok()) run.edges.push_back({i, j, fk.value()});
    }
  }

  // Needed output columns per table: join keys plus whatever the SELECT
  // list / aggregates / grouping reference. Predicates are evaluated
  // against base-table rows inside the scans, so their columns need not be
  // carried.
  std::set<std::string> wanted;
  for (const auto& edge : run.edges) {
    wanted.insert(edge.fk.from_column);
    wanted.insert(edge.fk.to_column);
  }
  for (const auto& agg : query.aggregates) {
    if (!agg.column.empty()) wanted.insert(agg.column);
  }
  for (const auto& g : query.group_by) wanted.insert(g);
  for (const auto& s : query.select_columns) wanted.insert(s);
  run.needed_columns.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const storage::Schema& schema = run.tables[i]->schema();
    for (const std::string& w : wanted) {
      if (schema.HasColumn(w)) run.needed_columns[i].push_back(w);
    }
    if (run.needed_columns[i].empty()) {
      // Keep at least one (narrow) column so results stay well-formed.
      run.needed_columns[i].push_back(schema.column(0).name);
    }
  }

  // Dynamic programming over FK-connected subsets.
  std::unordered_map<uint32_t, std::vector<PlanCandidate>> plans;
  for (size_t i = 0; i < n; ++i) {
    std::vector<PlanCandidate> cands;
    AddAccessPaths(&run, i, &cands);
    const size_t considered = cands.size();
    PruneCandidates(&cands);
    RQO_IF_OBS(run.options.tracer) {
      run.options.tracer->Event(
          "optimizer", "prune",
          {{"tables", run.tables[i]->name()},
           {"considered", obs::AttrU64(considered)},
           {"kept", obs::AttrU64(cands.size())},
           {"best", cands.empty() ? "" : cands.front().label},
           {"best_cost",
            obs::AttrF(cands.empty() ? 0.0 : cands.front().cost)}});
    }
    plans[1u << i] = std::move(cands);
  }
  const uint32_t full = (n >= 32) ? 0xffffffffu : ((1u << n) - 1);
  for (uint32_t subset = 1; subset <= full; ++subset) {
    if (__builtin_popcount(subset) < 2) continue;
    std::vector<PlanCandidate> cands;
    for (uint32_t s1 = (subset - 1) & subset; s1 != 0;
         s1 = (s1 - 1) & subset) {
      const uint32_t s2 = subset ^ s1;
      if (s1 > s2) continue;  // unordered partition; methods try both sides
      auto it1 = plans.find(s1);
      auto it2 = plans.find(s2);
      if (it1 == plans.end() || it2 == plans.end()) continue;
      if (it1->second.empty() || it2->second.empty()) continue;
      AddJoinCandidates(&run, s1, s2, it1->second, it2->second, &cands);
    }
    if (subset == full && run.options.enable_star_strategies) {
      AddStarCandidates(&run, &cands);
    }
    if (!cands.empty()) {
      const size_t considered = cands.size();
      PruneCandidates(&cands);
      RQO_IF_OBS(run.options.tracer) {
        const std::set<std::string> subset_names = run.SubsetNames(subset);
        std::vector<std::string> names(subset_names.begin(),
                                       subset_names.end());
        run.options.tracer->Event(
            "optimizer", "prune",
            {{"tables", StrJoin(names, ",")},
             {"considered", obs::AttrU64(considered)},
             {"kept", obs::AttrU64(cands.size())},
             {"best", cands.front().label},
             {"best_cost", obs::AttrF(cands.front().cost)}});
      }
      plans[subset] = std::move(cands);
    }
  }

  auto final_it = plans.find(full);
  if (final_it == plans.end() || final_it->second.empty()) {
    return Status::NotFound(
        "no plan: query tables are not foreign-key-connected");
  }
  const PlanCandidate& best = final_it->second.front();

  // Aggregation / final projection on top.
  PlannedQuery planned;
  planned.estimated_rows = best.rows;
  planned.estimated_spj_rows = best.rows;
  planned.estimated_cost = best.cost;
  OperatorPtr root = best.build();
  std::string label = best.label;
  if (!query.aggregates.empty()) {
    if (query.group_by.empty()) {
      planned.estimated_cost +=
          exec::AggregateCost(cost_model_, best.rows, 1.0);
      planned.estimated_rows = 1.0;
      root = std::make_unique<exec::ScalarAggregateOp>(std::move(root),
                                                       query.aggregates);
      root->set_planner_estimated_rows(planned.estimated_rows);
    } else {
      // GROUP BY output size: product of per-column distinct-value
      // estimates (Section 3.5 extension), capped by the input rows;
      // heuristic cap when no estimate is available.
      double distinct_product = 1.0;
      bool have_estimate = false;
      for (const std::string& column : query.group_by) {
        for (const TableRef& ref : query.tables) {
          const storage::Table* t = catalog_->GetTable(ref.table);
          if (t != nullptr && t->schema().HasColumn(column)) {
            Result<double> d =
                estimator_->EstimateDistinctValues(ref.table, column);
            if (d.ok()) {
              distinct_product *= std::max(1.0, d.value());
              have_estimate = true;
            }
            break;
          }
        }
      }
      const double groups =
          have_estimate ? std::min(best.rows, distinct_product)
                        : std::min(best.rows, 1000.0);
      planned.estimated_cost +=
          exec::AggregateCost(cost_model_, best.rows, groups);
      planned.estimated_rows = groups;
      root = std::make_unique<exec::GroupByAggregateOp>(
          std::move(root), query.group_by, query.aggregates);
      root->set_planner_estimated_rows(planned.estimated_rows);
    }
    label = "Agg(" + label + ")";
  } else if (!query.select_columns.empty()) {
    planned.estimated_cost +=
        cost_model_.output_tuple_cost * planned.estimated_rows;
    root = std::make_unique<exec::ProjectOp>(std::move(root),
                                             query.select_columns);
    root->set_planner_estimated_rows(planned.estimated_rows);
  }
  // Final ORDER BY / LIMIT decoration.
  if (!query.order_by.empty()) {
    planned.estimated_cost +=
        exec::SortCost(cost_model_, planned.estimated_rows);
    root = std::make_unique<exec::SortOp>(std::move(root), query.order_by);
    root->set_planner_estimated_rows(planned.estimated_rows);
    label = "Sort(" + label + ")";
  }
  if (query.limit > 0) {
    planned.estimated_rows =
        std::min(planned.estimated_rows, static_cast<double>(query.limit));
    planned.estimated_cost +=
        cost_model_.output_tuple_cost * planned.estimated_rows;
    root = std::make_unique<exec::LimitOp>(std::move(root), query.limit);
    root->set_planner_estimated_rows(planned.estimated_rows);
    label = StrPrintf("Limit%llu(%s)",
                      static_cast<unsigned long long>(query.limit),
                      label.c_str());
  }
  planned.root = std::move(root);
  planned.label = std::move(label);
  if (probe_scope.robust != nullptr) {
    // Per-query counters (both tallied on the per-run probe cache), so the
    // report is a function of the query alone — byte-identical across runs
    // and thread counts even though the inverse-Beta LRU persists.
    metrics_.probe_cache_hits = static_cast<size_t>(probe_cache.hits());
    metrics_.probe_cache_misses = static_cast<size_t>(probe_cache.misses());
    metrics_.beta_cache_hits = static_cast<size_t>(probe_cache.beta_hits());
    metrics_.beta_cache_misses =
        static_cast<size_t>(probe_cache.beta_misses());
  }
  // After the per-query cache counters are copied, so the extra posterior
  // read + grid quantile lookups never perturb the EXPLAIN ANALYZE
  // perf.cache numbers.
  if (run.options.provenance_enabled) {
    CaptureSensitivity(&run, full, final_it->second);
  }
#if ROBUSTQO_OBS_ENABLED
  if (sensitivity_.captured) {
    RQO_IF_OBS(options.tracer) {
      obs::SpanGuard sens_span(
          options.tracer, "optimizer", "sensitivity",
          {{"plan", sensitivity_.plan_label},
           {"threshold", obs::AttrF(sensitivity_.threshold)},
           {"grid_points", obs::AttrU64(sensitivity_.grid.size())},
           {"candidates", obs::AttrU64(sensitivity_.candidates.size())}});
      if (sensitivity_.available) {
        for (size_t i = 0; i < sensitivity_.grid.size(); ++i) {
          options.tracer->Event(
              "optimizer", "sensitivity.point",
              {{"quantile", obs::AttrF(sensitivity_.grid[i])},
               {"selectivity", obs::AttrF(sensitivity_.selectivity[i])},
               {"winner_cost",
                obs::AttrF(sensitivity_.candidates.front().cost_at[i])}});
        }
      }
      sens_span.Attr("stable", obs::AttrU64(sensitivity_.stable ? 1 : 0));
      sens_span.Attr("crossover_quantile",
                     obs::AttrF(sensitivity_.crossover_quantile));
      sens_span.Attr("max_regret_pct",
                     obs::AttrF(sensitivity_.max_regret_pct));
      sens_span.Attr("verdict", sensitivity_.verdict);
    }
    RQO_IF_OBS(options.metrics) {
      if (sensitivity_.available) {
        options.metrics->GetCounter("optimizer.sensitivity.captured")
            ->Increment();
        options.metrics->GetGauge("optimizer.sensitivity.max_regret_pct")
            ->Set(sensitivity_.max_regret_pct);
      } else {
        options.metrics->GetCounter("optimizer.sensitivity.unavailable")
            ->Increment();
      }
    }
  }
#endif
#if ROBUSTQO_OBS_ENABLED
  RQO_IF_OBS(run.metric_candidates) {
    run.metric_candidates->Increment(metrics_.candidates);
  }
  RQO_IF_OBS(options.tracer) {
    options.tracer->Event(
        "perf", "cache",
        {{"probe_hits", obs::AttrU64(metrics_.probe_cache_hits)},
         {"probe_misses", obs::AttrU64(metrics_.probe_cache_misses)},
         {"beta_hits", obs::AttrU64(metrics_.beta_cache_hits)},
         {"beta_misses", obs::AttrU64(metrics_.beta_cache_misses)}});
  }
  if (options.tracer != nullptr) {
    optimize_span.Attr("candidates", obs::AttrU64(metrics_.candidates));
    optimize_span.Attr("estimator_calls",
                       obs::AttrU64(metrics_.estimator_calls));
    optimize_span.Attr("estimator_misses",
                       obs::AttrU64(metrics_.estimator_misses));
    optimize_span.Attr("chosen_label", planned.label);
    optimize_span.Attr("chosen_cost", obs::AttrF(planned.estimated_cost));
    optimize_span.Attr("chosen_rows", obs::AttrF(planned.estimated_rows));
  }
#endif
  return planned;
}

}  // namespace opt
}  // namespace robustqo
