// Star-join-specific plan strategies (paper Section 6.2.3): semijoin the
// fact table with a subset of the filtered dimensions via the indexed FK
// columns, intersect, fetch the qualifying fact rows, then hash-join any
// remaining dimensions. The all-dimensions case is the paper's "semijoin
// plan"; proper subsets are its "hybrid" plans; the empty subset (pure
// cascaded hash joins) is covered by the regular DP enumeration.

#include <algorithm>

#include "exec/join_ops.h"
#include "exec/scan_ops.h"
#include "exec/star_ops.h"
#include "optimizer/optimizer.h"
#include "optimizer/run_state.h"
#include "util/string_util.h"

namespace robustqo {
namespace opt {

using exec::OperatorPtr;

void Optimizer::AddStarCandidates(RunState* run,
                                  std::vector<PlanCandidate>* out) {
  const size_t n = run->tables.size();
  if (n < 3) return;

  // Identify the star shape: a fact table with FK edges to every other
  // table, each FK column indexed on the fact side.
  size_t fact_idx = SIZE_MAX;
  for (size_t f = 0; f < n && fact_idx == SIZE_MAX; ++f) {
    const std::string& fact = run->tables[f]->name();
    bool is_star_fact = true;
    for (size_t d = 0; d < n; ++d) {
      if (d == f) continue;
      bool found = false;
      for (const auto& edge : run->edges) {
        if (((edge.a == f && edge.b == d) || (edge.a == d && edge.b == f)) &&
            edge.fk.from_table == fact &&
            catalog_->HasIndex(fact, edge.fk.from_column)) {
          found = true;
          break;
        }
      }
      if (!found) {
        is_star_fact = false;
        break;
      }
    }
    if (is_star_fact) fact_idx = f;
  }
  if (fact_idx == SIZE_MAX) return;

  const std::string fact = run->tables[fact_idx]->name();
  const uint32_t fact_bit = 1u << fact_idx;

  // Dimension positions and their FK metadata.
  struct Dim {
    size_t idx;
    storage::ForeignKey fk;  // fact -> dim
  };
  std::vector<Dim> dims;
  for (const auto& edge : run->edges) {
    if (edge.fk.from_table != fact) continue;
    const size_t dim_idx = edge.a == fact_idx ? edge.b : edge.a;
    dims.push_back({dim_idx, edge.fk});
  }
  if (dims.size() + 1 != n) return;  // pure star queries only

  // Every subset of >= 2 dimensions participates in the semijoin phase.
  const uint32_t dim_limit = 1u << dims.size();
  for (uint32_t mask = 0; mask < dim_limit; ++mask) {
    if (__builtin_popcount(mask) < 2) continue;

    double cost = 0.0;
    std::vector<exec::DimSemiJoin> semis;
    std::vector<std::string> semi_names;
    uint32_t covered = fact_bit;
    for (size_t i = 0; i < dims.size(); ++i) {
      if (!(mask & (1u << i))) continue;
      const Dim& dim = dims[i];
      const storage::Table* dim_table = run->tables[dim.idx];
      const uint32_t dim_bit = 1u << dim.idx;
      covered |= dim_bit;
      const double dim_rows = static_cast<double>(dim_table->num_rows());
      const double selected_dims = EstimateRows(run, dim_bit);
      // |fact |x| sigma(dim)|: index entries touched for this dimension.
      const expr::ExprPtr dim_pred = run->query->tables[dim.idx].predicate;
      const double entries = EstimateRowsWithPredicate(
          run, fact_bit | dim_bit, dim_pred,
          "star:" + dim_table->name());
      cost += cost_model_.seq_tuple_cost * dim_rows +
              cost_model_.index_seek_cost * selected_dims +
              cost_model_.index_entry_cost * entries +
              cost_model_.cpu_tuple_cost * entries;
      semis.push_back({dim_table->name(), dim_pred, dim.fk.to_column,
                       dim.fk.from_column});
      semi_names.push_back(dim_table->name());
    }

    // Fact rows surviving the RID intersection, fetched one random I/O
    // each — the risky part of the plan.
    const double survivors = EstimateRowsWithPredicate(
        run, covered, run->query->CombinedPredicate(run->SubsetNames(covered)),
        "own");
    cost += cost_model_.random_io_cost * survivors +
            cost_model_.output_tuple_cost * survivors;

    std::string label =
        "Star(" + fact + ";" + StrJoin(semi_names, ",") + ")";
    const std::vector<std::string> fact_cols =
        run->needed_columns[fact_idx];
    auto semis_copy = semis;
    std::function<OperatorPtr()> build = [fact, semis_copy, fact_cols,
                                          survivors]() -> OperatorPtr {
      auto op = std::make_unique<exec::StarSemiJoinOp>(fact, semis_copy,
                                                       fact_cols);
      op->set_planner_estimated_rows(survivors);
      return op;
    };
    double rows = survivors;

    // Hash-join the remaining dimensions (build = filtered dimension).
    for (size_t i = 0; i < dims.size(); ++i) {
      if (mask & (1u << i)) continue;
      const Dim& dim = dims[i];
      const storage::Table* dim_table = run->tables[dim.idx];
      const uint32_t dim_bit = 1u << dim.idx;
      covered |= dim_bit;
      const double dim_rows = static_cast<double>(dim_table->num_rows());
      const double selected_dims = EstimateRows(run, dim_bit);
      const double next_rows = EstimateRowsWithPredicate(
          run, covered,
          run->query->CombinedPredicate(run->SubsetNames(covered)), "own");
      cost += exec::SeqScanCost(cost_model_, dim_rows, selected_dims) +
              exec::HashJoinCost(cost_model_, selected_dims, rows, next_rows);
      const std::string dim_name = dim_table->name();
      const expr::ExprPtr dim_pred = run->query->tables[dim.idx].predicate;
      const std::vector<std::string> dim_cols = run->needed_columns[dim.idx];
      const std::string build_key = dim.fk.to_column;
      const std::string probe_key = dim.fk.from_column;
      auto prev = build;
      build = [prev, dim_name, dim_pred, dim_cols, build_key, probe_key,
               selected_dims, next_rows]() -> OperatorPtr {
        auto dim_scan =
            std::make_unique<exec::SeqScanOp>(dim_name, dim_pred, dim_cols);
        dim_scan->set_planner_estimated_rows(selected_dims);
        auto op = std::make_unique<exec::HashJoinOp>(
            std::move(dim_scan), prev(), build_key, probe_key);
        op->set_planner_estimated_rows(next_rows);
        return op;
      };
      label = "HJ(Seq(" + dim_name + ")," + label + ")";
      rows = next_rows;
    }

    PlanCandidate cand;
    cand.cost = cost;
    cand.rows = rows;
    cand.sort_order = "";
    cand.label = std::move(label);
    cand.build = std::move(build);
    out->push_back(std::move(cand));
    ++metrics_.candidates;
  }
}

}  // namespace opt
}  // namespace robustqo
