// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Cost-based query optimizer: single-table access-path selection (seq scan,
// index range scan, index intersection), System-R-style dynamic programming
// over FK-connected join subsets with hash/merge/indexed-nested-loop
// methods, and star-specific semijoin strategies. Cardinalities come from a
// pluggable CardinalityEstimator — the ONLY part of the optimizer that
// changes between the histogram baseline and the paper's robust estimator.
// Plan enumeration, cost formulas and search are identical for both, per
// the paper's integration argument (Section 3.1.1).

#ifndef ROBUSTQO_OPTIMIZER_OPTIMIZER_H_
#define ROBUSTQO_OPTIMIZER_OPTIMIZER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exec/cost_model.h"
#include "obs/metrics.h"
#include "obs/plan_provenance.h"
#include "obs/trace.h"
#include "optimizer/plan.h"
#include "optimizer/query.h"
#include "statistics/cardinality_estimator.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace robustqo {
namespace opt {

/// Per-query optimizer knobs. The confidence-threshold hint models the
/// paper's SQL query hint overriding the system-wide robustness setting
/// (Section 6.2.5); it only has effect when the estimator is the robust
/// sample-based one.
struct OptimizerOptions {
  std::optional<double> confidence_threshold_hint;
  bool enable_index_intersection = true;
  bool enable_hash_join = true;
  bool enable_merge_join = true;
  /// Allow explicit Sort operators to feed merge joins whose inputs do not
  /// arrive in key order.
  bool enable_sort_for_merge = true;
  bool enable_index_nested_loop = true;
  bool enable_star_strategies = true;
  /// Memoize cardinality estimates within one Optimize() call. Disabling
  /// reproduces the paper's unmemoized prototype (Section 6.1) for the
  /// overhead ablation.
  bool enable_estimate_memo = true;
  /// Install a per-run (k, n) probe-count cache on the robust estimator,
  /// keyed by canonical predicate fingerprints, so the same conjunct
  /// re-costed under different join subsets/contexts scans its sample only
  /// once. Orthogonal to enable_estimate_memo (which dedupes whole
  /// (subset, tag) estimates; the probe cache catches the sample scans
  /// behind distinct estimates sharing conjuncts).
  bool enable_probe_cache = true;
  /// Observability sinks (borrowed, nullable). With a tracer attached the
  /// optimizer records an "optimize" span covering every cardinality
  /// estimate (subset, cache hit/miss, value) and per-subset pruning
  /// decisions; metrics get estimate/cache/candidate counters.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Plan-provenance capture — strictly read-only with respect to plan
  /// choice. When enabled, every candidate carries a sensitivity re-cost
  /// closure and Optimize() leaves a PlanSensitivity in
  /// last_sensitivity(): the winner plus the top provenance_top_k
  /// runner-ups (post-prune), each re-costed at the posterior quantile
  /// grid, with a stability/crossover verdict. The added cdf^{-1} work
  /// goes through the robust estimator's InverseBetaCache and is excluded
  /// from last_metrics()'s per-query cache counters.
  bool provenance_enabled = false;
  size_t provenance_top_k = 3;
};

/// Cost-based SPJ optimizer.
class Optimizer {
 public:
  /// `catalog` and `estimator` must outlive the optimizer.
  Optimizer(const storage::Catalog* catalog,
            stats::CardinalityEstimator* estimator,
            exec::CostModel cost_model = exec::CostModel::Default());

  /// Plans `query`, returning the cheapest plan found.
  Result<PlannedQuery> Optimize(const QuerySpec& query,
                                const OptimizerOptions& options = {});

  /// Bookkeeping from the most recent Optimize() call.
  struct Metrics {
    size_t estimator_calls = 0;    ///< total cardinality requests issued
    size_t estimator_misses = 0;   ///< requests that were not cached
    size_t candidates = 0;         ///< physical plan candidates costed
    // perf.cache.* effectiveness of the run (robust estimator only; all
    // zero otherwise). Probe cache: (k, n) sample scans saved. Beta
    // cache: inverse-Beta quantile evaluations saved.
    size_t probe_cache_hits = 0;
    size_t probe_cache_misses = 0;
    size_t beta_cache_hits = 0;
    size_t beta_cache_misses = 0;
  };
  const Metrics& last_metrics() const { return metrics_; }

  /// Sensitivity of the most recent Optimize() call's plan choice.
  /// `captured` is false unless that call ran with provenance_enabled.
  const obs::PlanSensitivity& last_sensitivity() const {
    return sensitivity_;
  }

  const exec::CostModel& cost_model() const { return cost_model_; }

  /// The quantile grid sensitivity curves are evaluated on.
  static const std::vector<double>& SensitivityGrid();

  /// Keeps only the cheapest candidate overall and per distinct sort
  /// order. Tie-break is pinned (lower cost, then lexicographically
  /// smaller label) so the surviving order — which feeds the provenance
  /// top-K — never depends on candidate generation order. Public for
  /// tests.
  static void PruneCandidates(std::vector<PlanCandidate>* candidates);

 private:
  // -- Per-run state (reset by Optimize) --
  struct RunState;

  // Estimated output rows of the SPJ subexpression over `subset` (as a
  // bitmask over query_->tables) with all its predicates applied; when
  // `predicate_override` is set it replaces the subset's own predicates
  // (used e.g. to cost INLJ inner lookups before the inner predicate).
  double EstimateRows(RunState* run, uint32_t subset);
  double EstimateRowsWithPredicate(RunState* run, uint32_t subset,
                                   const expr::ExprPtr& predicate,
                                   const std::string& cache_tag);

  // Access paths for a single table; appends candidates.
  void AddAccessPaths(RunState* run, size_t table_idx,
                      std::vector<PlanCandidate>* out);

  // Join candidates combining `left` plans (for subset `s1`) and `right`
  // plans (for subset `s2`); appends to `out`.
  void AddJoinCandidates(RunState* run, uint32_t s1, uint32_t s2,
                         const std::vector<PlanCandidate>& left,
                         const std::vector<PlanCandidate>& right,
                         std::vector<PlanCandidate>* out);

  // Star semijoin strategies for the full table set (implemented in
  // star_strategies.cc); appends to `out`.
  void AddStarCandidates(RunState* run, std::vector<PlanCandidate>* out);

  // Fills sensitivity_ from the pruned finalists of the full table set:
  // posterior quantile grid via the robust estimator's beta cache, one
  // cost curve per retained candidate, verdict via FinalizeSensitivity.
  void CaptureSensitivity(RunState* run, uint32_t full_subset,
                          const std::vector<PlanCandidate>& finalists);

  const storage::Catalog* catalog_;
  stats::CardinalityEstimator* estimator_;
  exec::CostModel cost_model_;
  Metrics metrics_;
  obs::PlanSensitivity sensitivity_;
};

}  // namespace opt
}  // namespace robustqo

#endif  // ROBUSTQO_OPTIMIZER_OPTIMIZER_H_
