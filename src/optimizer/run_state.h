// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Internal per-Optimize() state shared between optimizer.cc and
// star_strategies.cc. Not part of the public API.

#ifndef ROBUSTQO_OPTIMIZER_RUN_STATE_H_
#define ROBUSTQO_OPTIMIZER_RUN_STATE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "optimizer/optimizer.h"

namespace robustqo {
namespace opt {

struct Optimizer::RunState {
  const QuerySpec* query = nullptr;
  OptimizerOptions options;

  /// Base tables by query position.
  std::vector<const storage::Table*> tables;
  /// Columns each table's scan must output (join keys, aggregate inputs,
  /// grouping and select columns).
  std::vector<std::vector<std::string>> needed_columns;

  /// FK join edge between two query tables (a, b are query positions;
  /// fk.from_table is one of them).
  struct Edge {
    size_t a = 0;
    size_t b = 0;
    storage::ForeignKey fk;
  };
  std::vector<Edge> edges;

  /// Cardinality cache: "<subset>|<tag-or-predicate>" -> rows.
  std::map<std::string, double> estimate_cache;

  /// Metric pointers resolved once per Optimize() run (null when no
  /// registry is attached); incremented on the estimate hot path.
  obs::Counter* metric_estimates = nullptr;
  obs::Counter* metric_cache_hits = nullptr;
  obs::Counter* metric_candidates = nullptr;

  /// Table names for a subset bitmask.
  std::set<std::string> SubsetNames(uint32_t subset) const {
    std::set<std::string> names;
    for (size_t i = 0; i < tables.size(); ++i) {
      if (subset & (1u << i)) names.insert(tables[i]->name());
    }
    return names;
  }

  /// Query position of `table` (SIZE_MAX if absent).
  size_t IndexOf(const std::string& table) const {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i]->name() == table) return i;
    }
    return SIZE_MAX;
  }

  /// The edge crossing the (s1, s2) partition, if any (index into edges,
  /// SIZE_MAX if none).
  size_t CrossingEdge(uint32_t s1, uint32_t s2) const {
    for (size_t e = 0; e < edges.size(); ++e) {
      const uint32_t abit = 1u << edges[e].a;
      const uint32_t bbit = 1u << edges[e].b;
      if (((s1 & abit) && (s2 & bbit)) || ((s2 & abit) && (s1 & bbit))) {
        return e;
      }
    }
    return SIZE_MAX;
  }
};

}  // namespace opt
}  // namespace robustqo

#endif  // ROBUSTQO_OPTIMIZER_RUN_STATE_H_
