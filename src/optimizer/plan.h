// Copyright (c) robustqo authors. Licensed under the MIT license.

#ifndef ROBUSTQO_OPTIMIZER_PLAN_H_
#define ROBUSTQO_OPTIMIZER_PLAN_H_

#include <functional>
#include <memory>
#include <string>

#include "exec/operator.h"

namespace robustqo {
namespace opt {

/// The optimizer's output: an executable physical plan with its predicted
/// cost and a compact structural label for experiment classification.
struct PlannedQuery {
  exec::OperatorPtr root;
  /// Predicted execution cost (simulated seconds) under the estimator's
  /// cardinalities.
  double estimated_cost = 0.0;
  /// Predicted output rows of the plan root.
  double estimated_rows = 0.0;
  /// Predicted rows of the SPJ core (before aggregation / grouping /
  /// LIMIT decoration). This is the quantity the cardinality estimator
  /// actually produced, so q-error is measured against it.
  double estimated_spj_rows = 0.0;
  /// Compact structure label, e.g. "Agg(HJ(INLJ(part>lineitem),orders))".
  std::string label;
  /// Human-readable plan tree.
  std::string Explain() const { return root->TreeString(); }
};

/// A candidate plan during enumeration: metadata plus a builder that
/// constructs the operator tree on demand (candidates are freely copied
/// during dynamic programming; operator trees are built once at the end).
struct PlanCandidate {
  double cost = 0.0;
  double rows = 0.0;
  /// Column the output is physically sorted on; empty when unsorted.
  std::string sort_order;
  /// Structure label, composed bottom-up.
  std::string label;
  std::function<exec::OperatorPtr()> build;
  /// Sensitivity re-cost closure, composed bottom-up like `build`: the
  /// candidate's cost with every predicate-derived cardinality scaled by
  /// `ratio` (a posterior selectivity divided by the planning-threshold
  /// selectivity). cost_at(1.0) == cost exactly. Only populated when
  /// OptimizerOptions::provenance_enabled — null otherwise, and null for
  /// candidates with no re-cost model (star strategies).
  std::function<double(double ratio)> cost_at;
};

}  // namespace opt
}  // namespace robustqo

#endif  // ROBUSTQO_OPTIMIZER_PLAN_H_
