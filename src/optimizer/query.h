// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Logical query model: select-project-join blocks over foreign-key joins
// (the query class the paper's technique covers, Section 3.2), with
// optional aggregation on top.

#ifndef ROBUSTQO_OPTIMIZER_QUERY_H_
#define ROBUSTQO_OPTIMIZER_QUERY_H_

#include <set>
#include <string>
#include <vector>

#include "exec/agg_ops.h"
#include "expr/expression.h"

namespace robustqo {
namespace opt {

/// One table in the FROM list with its local selection predicate.
struct TableRef {
  std::string table;
  expr::ExprPtr predicate;  ///< over this table's columns only; may be null
};

/// An SPJ(+aggregate) query. Join predicates are implicit: every pair of
/// tables related by a catalog foreign key is natural-joined on that key.
struct QuerySpec {
  std::vector<TableRef> tables;

  /// Scalar or grouped aggregates computed over the join result. Empty
  /// means the query returns the (projected) join rows themselves.
  std::vector<exec::AggSpec> aggregates;
  /// Grouping columns; requires non-empty `aggregates`.
  std::vector<std::string> group_by;
  /// Columns to return when there is no aggregate; empty keeps everything.
  std::vector<std::string> select_columns;
  /// Final ascending sort on one numeric output column; empty = none.
  std::string order_by;
  /// Row cap on the final result; 0 = no limit.
  uint64_t limit = 0;

  /// Set of table names in the query.
  std::set<std::string> TableNames() const;

  /// Conjunction of the predicates of the given tables (null if none).
  expr::ExprPtr CombinedPredicate(const std::set<std::string>& subset) const;

  /// SQL-ish rendering for logs.
  std::string ToString() const;
};

}  // namespace opt
}  // namespace robustqo

#endif  // ROBUSTQO_OPTIMIZER_QUERY_H_
