// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Physical-operator base. Operators execute for real — they compute the
// correct relational result — while charging the cost meter for every unit
// of simulated work. Results are materialized tables (fine at experiment
// scale, and it keeps operator semantics trivially auditable in tests).
//
// Execution is fallible by design: Execute() returns Result<Table> and
// operators cooperate with the per-query governor (memory/row/time budgets,
// cancellation) and the fault injector inside their loops, so a tripped
// budget or injected fault surfaces as a typed Status — never a crash.

#ifndef ROBUSTQO_EXEC_OPERATOR_H_
#define ROBUSTQO_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/cost_model.h"
#include "expr/expression.h"
#include "fault/fault_injector.h"
#include "fault/governor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/status.h"

namespace robustqo {
namespace exec {

/// Execution environment: the database plus the cost meter that accumulates
/// this query's simulated execution time.
struct ExecContext {
  const storage::Catalog* catalog = nullptr;
  CostModel cost_model = CostModel::Default();
  CostMeter meter;
  /// Rows that entered the topmost aggregation operator (the SPJ result
  /// size), recorded by the aggregate operators; used for execution
  /// feedback. UINT64_MAX until an aggregate runs.
  uint64_t aggregate_input_rows = UINT64_MAX;
  /// Observability sinks (borrowed, nullable). When `tracer` is set, Run()
  /// emits one "exec" span per operator with its actual output rows and
  /// simulated cost — the raw material of EXPLAIN ANALYZE.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-query resource governor (borrowed, nullable = unlimited).
  /// Operators account materialized rows/bytes and poll cancellation and
  /// the simulated-time budget through Tick()/CheckPoint().
  fault::QueryGovernor* governor = nullptr;
  /// Fault injector (borrowed, nullable = no faults). Run() probes the
  /// operator-alloc and clock-stall sites.
  fault::FaultInjector* fault = nullptr;
  /// Snapshot (data) epoch this query reads at. Scans skip row versions
  /// not visible at it, so a request admitted before a DML commit keeps
  /// reading the pre-commit state. kLatestSnapshot (the default) sees
  /// every committed version; unversioned tables ignore it entirely.
  uint64_t snapshot_epoch = storage::kLatestSnapshot;

  /// Cooperative checkpoint: cancellation plus the simulated-time budget.
  Status CheckPoint();

  /// Accounts `rows` materialized rows and `bytes` materialized bytes
  /// against the governor, checkpointing every few hundred rows so a
  /// runaway loop is caught promptly without paying per-row overhead.
  Status Tick(uint64_t rows, uint64_t bytes);

 private:
  uint64_t rows_since_checkpoint_ = 0;
};

/// Base class for physical operators.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  /// Runs the operator (and its subtree), returning the materialized
  /// result and charging `ctx->meter`. Fails with a typed Status on
  /// malformed plans (kNotFound/kInvalidArgument), governor trips
  /// (kResourceExhausted/kCancelled) or injected faults.
  virtual Result<storage::Table> Execute(ExecContext* ctx) const = 0;

  /// Instrumented entry point: Execute() wrapped in an "exec" trace span
  /// recording actual output rows and the simulated cost charged by the
  /// subtree. All internal operator-to-child calls (and Database) go
  /// through Run so the span tree mirrors the plan tree; with tracing
  /// compiled out or no sink attached this is exactly Execute() plus the
  /// fault-site probes.
  Result<storage::Table> Run(ExecContext* ctx) const;

  /// One-line description ("HashJoin(l_orderkey = o_orderkey)").
  virtual std::string Describe() const = 0;

  /// Child operators, for plan printing.
  virtual std::vector<const PhysicalOperator*> children() const { return {}; }

  /// Multi-line indented plan tree.
  std::string TreeString(int indent = 0) const;

  /// Planner annotation: the optimizer's estimated output rows for this
  /// operator, set once after plan construction (-1 = not annotated).
  /// EXPLAIN ANALYZE compares it against the traced actual rows.
  double planner_estimated_rows() const { return planner_estimated_rows_; }
  void set_planner_estimated_rows(double rows) {
    planner_estimated_rows_ = rows;
  }

 private:
  double planner_estimated_rows_ = -1.0;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

// ---- Shared helpers for operator implementations ----

/// Approximate in-memory bytes of one row of `schema` (8 bytes per cell,
/// matching the statistics catalog's summary-size approximation).
uint64_t ApproximateRowBytes(const storage::Schema& schema);

/// Schema containing the named columns of `schema` in the given order.
Result<storage::Schema> ProjectSchema(const storage::Schema& schema,
                                      const std::vector<std::string>& columns);

/// Appends row `rid` of `source` to `dest`, restricted to `column_indexes`.
void AppendProjectedRow(const storage::Table& source, storage::Rid rid,
                        const std::vector<size_t>& column_indexes,
                        storage::Table* dest);

/// Resolves column names to indexes in `schema`.
Result<std::vector<size_t>> ResolveColumns(
    const storage::Schema& schema, const std::vector<std::string>& columns);

/// Concatenation of two schemas (column names must stay unique).
storage::Schema ConcatSchemas(const storage::Schema& a,
                              const storage::Schema& b);

/// The catalog table named `table`, or kNotFound.
Result<const storage::Table*> LookupTable(const ExecContext& ctx,
                                          const std::string& table);

/// The sorted index on `table`.`column`, or kNotFound.
Result<const storage::SortedIndex*> LookupIndex(const ExecContext& ctx,
                                                const std::string& table,
                                                const std::string& column);

}  // namespace exec
}  // namespace robustqo

#endif  // ROBUSTQO_EXEC_OPERATOR_H_
