// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Join operators: hash join, merge join (sorted inputs), and indexed
// nested-loop join — the three join strategies whose crossovers drive the
// paper's Experiment 2.

#ifndef ROBUSTQO_EXEC_JOIN_OPS_H_
#define ROBUSTQO_EXEC_JOIN_OPS_H_

#include <string>
#include <vector>

#include "exec/operator.h"

namespace robustqo {
namespace exec {

/// Hash join: builds on the left child, probes with the right child.
/// Join keys must be integer-physical columns.
class HashJoinOp final : public PhysicalOperator {
 public:
  /// `output_columns` names columns of the concatenated (build ++ probe)
  /// schema; empty keeps everything.
  HashJoinOp(OperatorPtr build, OperatorPtr probe, std::string build_key,
             std::string probe_key,
             std::vector<std::string> output_columns = {});

  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;
  std::vector<const PhysicalOperator*> children() const override;

 private:
  OperatorPtr build_;
  OperatorPtr probe_;
  std::string build_key_;
  std::string probe_key_;
  std::vector<std::string> output_columns_;
};

/// Merge join over inputs already sorted on their join keys (the optimizer
/// only offers this path for clustering-order-preserving scans).
class MergeJoinOp final : public PhysicalOperator {
 public:
  MergeJoinOp(OperatorPtr left, OperatorPtr right, std::string left_key,
              std::string right_key,
              std::vector<std::string> output_columns = {});

  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;
  std::vector<const PhysicalOperator*> children() const override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::string left_key_;
  std::string right_key_;
  std::vector<std::string> output_columns_;
};

/// Indexed nested-loop join: for each outer row, probes the index on
/// `inner_table.inner_index_column` and fetches matching inner records by
/// RID. Output schema is (outer ++ inner).
class IndexNestedLoopJoinOp final : public PhysicalOperator {
 public:
  IndexNestedLoopJoinOp(OperatorPtr outer, std::string outer_key,
                        std::string inner_table,
                        std::string inner_index_column,
                        expr::ExprPtr inner_residual = nullptr,
                        std::vector<std::string> output_columns = {});

  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;
  std::vector<const PhysicalOperator*> children() const override;

 private:
  OperatorPtr outer_;
  std::string outer_key_;
  std::string inner_table_;
  std::string inner_index_column_;
  expr::ExprPtr inner_residual_;
  std::vector<std::string> output_columns_;
};

}  // namespace exec
}  // namespace robustqo

#endif  // ROBUSTQO_EXEC_JOIN_OPS_H_
