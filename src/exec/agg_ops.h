// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Filtering, projection and aggregation operators.

#ifndef ROBUSTQO_EXEC_AGG_OPS_H_
#define ROBUSTQO_EXEC_AGG_OPS_H_

#include <string>
#include <vector>

#include "exec/operator.h"

namespace robustqo {
namespace exec {

/// Residual predicate applied to a child's output.
class FilterOp final : public PhysicalOperator {
 public:
  FilterOp(OperatorPtr child, expr::ExprPtr predicate);
  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;
  std::vector<const PhysicalOperator*> children() const override;

 private:
  OperatorPtr child_;
  expr::ExprPtr predicate_;
};

/// Emits at most the first `limit` rows of the child's output (SQL LIMIT;
/// children are materialized, so this truncates rather than short-circuits).
class LimitOp final : public PhysicalOperator {
 public:
  LimitOp(OperatorPtr child, uint64_t limit);
  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;
  std::vector<const PhysicalOperator*> children() const override;

 private:
  OperatorPtr child_;
  uint64_t limit_;
};

/// Column projection of a child's output.
class ProjectOp final : public PhysicalOperator {
 public:
  ProjectOp(OperatorPtr child, std::vector<std::string> columns);
  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;
  std::vector<const PhysicalOperator*> children() const override;

 private:
  OperatorPtr child_;
  std::vector<std::string> columns_;
};

/// Aggregate function kinds.
enum class AggKind { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate: kind applied to `column` (ignored for COUNT(*)),
/// emitted as `output_name`.
struct AggSpec {
  AggKind kind;
  std::string column;       // empty for COUNT(*)
  std::string output_name;
};

/// Aggregation without grouping; always emits exactly one row.
class ScalarAggregateOp final : public PhysicalOperator {
 public:
  ScalarAggregateOp(OperatorPtr child, std::vector<AggSpec> aggs);
  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;
  std::vector<const PhysicalOperator*> children() const override;

  /// Read-only plan shape, for the cluster coordinator's partial-
  /// aggregation push-down routing.
  const PhysicalOperator* child() const { return child_.get(); }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

 private:
  OperatorPtr child_;
  std::vector<AggSpec> aggs_;
};

/// Hash aggregation with grouping columns (integer-physical group keys).
class GroupByAggregateOp final : public PhysicalOperator {
 public:
  GroupByAggregateOp(OperatorPtr child, std::vector<std::string> group_columns,
                     std::vector<AggSpec> aggs);
  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;
  std::vector<const PhysicalOperator*> children() const override;

 private:
  OperatorPtr child_;
  std::vector<std::string> group_columns_;
  std::vector<AggSpec> aggs_;
};

}  // namespace exec
}  // namespace robustqo

#endif  // ROBUSTQO_EXEC_AGG_OPS_H_
