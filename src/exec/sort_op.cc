#include "exec/sort_op.h"

#include <algorithm>
#include <numeric>

#include "util/macros.h"

namespace robustqo {
namespace exec {

SortOp::SortOp(OperatorPtr child, std::string column)
    : child_(std::move(child)), column_(std::move(column)) {}

storage::Table SortOp::Execute(ExecContext* ctx) const {
  const storage::Table input = child_->Run(ctx);
  const uint64_t n = input.num_rows();
  ctx->meter.ChargeSortWork(ctx->cost_model, n);

  auto key_idx = input.schema().ColumnIndex(column_);
  RQO_CHECK_MSG(key_idx.ok(), key_idx.status().ToString().c_str());
  const storage::ColumnVector& key = input.column(key_idx.value());
  RQO_CHECK_MSG(key.type() != storage::DataType::kString,
                "sort keys must be numeric-physical");

  std::vector<storage::Rid> order(n);
  std::iota(order.begin(), order.end(), storage::Rid{0});
  if (storage::IsIntegerPhysical(key.type())) {
    std::stable_sort(order.begin(), order.end(),
                     [&key](storage::Rid a, storage::Rid b) {
                       return key.Int64At(a) < key.Int64At(b);
                     });
  } else {
    std::stable_sort(order.begin(), order.end(),
                     [&key](storage::Rid a, storage::Rid b) {
                       return key.DoubleAt(a) < key.DoubleAt(b);
                     });
  }

  storage::Table out("sort", input.schema());
  std::vector<size_t> all_cols(input.schema().num_columns());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  for (storage::Rid rid : order) {
    AppendProjectedRow(input, rid, all_cols, &out);
  }
  return out;
}

std::string SortOp::Describe() const { return "Sort(" + column_ + ")"; }

std::vector<const PhysicalOperator*> SortOp::children() const {
  return {child_.get()};
}

}  // namespace exec
}  // namespace robustqo
