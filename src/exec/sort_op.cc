#include "exec/sort_op.h"

#include <algorithm>
#include <numeric>

#include "util/macros.h"

namespace robustqo {
namespace exec {

SortOp::SortOp(OperatorPtr child, std::string column)
    : child_(std::move(child)), column_(std::move(column)) {}

Result<storage::Table> SortOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const storage::Table input, child_->Run(ctx));
  const uint64_t n = input.num_rows();
  ctx->meter.ChargeSortWork(ctx->cost_model, n);

  RQO_ASSIGN_OR_RETURN(const size_t key_idx,
                       input.schema().ColumnIndex(column_));
  const storage::ColumnVector& key = input.column(key_idx);
  if (key.type() == storage::DataType::kString) {
    return Status::InvalidArgument("sort key " + column_ +
                                   " must be numeric-physical");
  }

  // Order vector is transient sort workspace.
  fault::MemoryReservation workspace(ctx->governor);
  RQO_RETURN_NOT_OK(workspace.Grow(n * sizeof(storage::Rid)));
  std::vector<storage::Rid> order(n);
  std::iota(order.begin(), order.end(), storage::Rid{0});
  if (storage::IsIntegerPhysical(key.type())) {
    std::stable_sort(order.begin(), order.end(),
                     [&key](storage::Rid a, storage::Rid b) {
                       return key.Int64At(a) < key.Int64At(b);
                     });
  } else {
    std::stable_sort(order.begin(), order.end(),
                     [&key](storage::Rid a, storage::Rid b) {
                       return key.DoubleAt(a) < key.DoubleAt(b);
                     });
  }
  RQO_RETURN_NOT_OK(ctx->CheckPoint());

  storage::Table out("sort", input.schema());
  const uint64_t row_bytes = ApproximateRowBytes(out.schema());
  std::vector<size_t> all_cols(input.schema().num_columns());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  for (storage::Rid rid : order) {
    AppendProjectedRow(input, rid, all_cols, &out);
    RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
  }
  return out;
}

std::string SortOp::Describe() const { return "Sort(" + column_ + ")"; }

std::vector<const PhysicalOperator*> SortOp::children() const {
  return {child_.get()};
}

}  // namespace exec
}  // namespace robustqo
