#include "exec/plan_dot.h"

#include "util/string_util.h"

namespace robustqo {
namespace exec {

namespace {

std::string EscapeLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// Emits the node for `op` and edges to its children; returns its node id.
int EmitNode(const PhysicalOperator& op, int* counter, std::string* out) {
  const int id = (*counter)++;
  *out += StrPrintf("  n%d [shape=box, label=\"%s\"];\n", id,
                    EscapeLabel(op.Describe()).c_str());
  for (const PhysicalOperator* child : op.children()) {
    const int child_id = EmitNode(*child, counter, out);
    *out += StrPrintf("  n%d -> n%d;\n", id, child_id);
  }
  return id;
}

}  // namespace

std::string PlanToDot(const PhysicalOperator& root,
                      const std::string& graph_name) {
  std::string out = "digraph " + graph_name + " {\n";
  out += "  rankdir=BT;\n";  // data flows bottom-up, like EXPLAIN trees
  int counter = 0;
  EmitNode(root, &counter, &out);
  out += "}\n";
  return out;
}

}  // namespace exec
}  // namespace robustqo
