// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// The execution cost model. Operators charge these costs while actually
// executing (the cost meter *is* the experiment's "execution time", in
// simulated seconds), and the optimizer predicts plan costs with the same
// formulas applied to estimated cardinalities — so estimation error, not
// cost-formula mismatch, is the only source of bad plan choices, exactly
// the variable the paper studies.
//
// Constants are calibrated to the paper's Section 5 analytical model on
// TPC-H SF 1: a 6M-row sequential scan costs ~35s (f1 = 35,
// v1 = 3.5e-6 per qualifying tuple) and each RID fetch costs 3.5ms
// (v2 = 3.5e-3), matching 2005-era disk behaviour.

#ifndef ROBUSTQO_EXEC_COST_MODEL_H_
#define ROBUSTQO_EXEC_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace robustqo {
namespace exec {

/// Tunable per-operation cost constants (simulated seconds).
struct CostModel {
  /// Per tuple read by a sequential scan (includes predicate evaluation).
  double seq_tuple_cost = 35.0 / 6.0e6;  // ~5.83e-6
  /// Per record fetched from the heap by RID (one random disk read).
  double random_io_cost = 3.5e-3;
  /// Per index leaf entry scanned in a range.
  double index_entry_cost = 5.0e-6;
  /// Per index probe (B-tree root-to-leaf descent).
  double index_seek_cost = 1.0e-4;
  /// Per tuple of generic operator CPU work (aggregation, RID-list ops).
  double cpu_tuple_cost = 3.5e-6;
  /// Per build-side tuple of a hash join (hash + insert).
  double hash_build_cost = 1.0e-5;
  /// Per probe-side tuple of a hash join.
  double hash_probe_cost = 3.5e-6;
  /// Per tuple emitted by any operator.
  double output_tuple_cost = 1.0e-6;

  /// The default, paper-calibrated model.
  static CostModel Default() { return CostModel(); }
};

/// Work counters + accumulated simulated cost. Shared by actual execution
/// (counts real work) and optimizer prediction (counts estimated work).
class CostMeter {
 public:
  void Reset();

  /// Charges `count` sequentially scanned tuples.
  void ChargeSeqTuples(const CostModel& m, uint64_t count);
  /// Charges one index seek plus `entries` leaf entries.
  void ChargeIndexProbe(const CostModel& m, uint64_t entries);
  /// Charges `count` random record fetches.
  void ChargeRandomIo(const CostModel& m, uint64_t count);
  /// Charges `count` tuples of CPU work.
  void ChargeCpuTuples(const CostModel& m, uint64_t count);
  /// Charges `build` + `probe` hash-join work.
  void ChargeHashJoin(const CostModel& m, uint64_t build, uint64_t probe);
  /// Charges `count` output tuples.
  void ChargeOutputTuples(const CostModel& m, uint64_t count);

  /// Charges a full sort of `rows` tuples (n log2 n CPU + re-emission),
  /// matching the SortCost formula exactly.
  void ChargeSortWork(const CostModel& m, uint64_t rows);

  /// Charges raw simulated seconds outside the per-tuple formulas (used by
  /// the fault injector's clock-stall site).
  void ChargePenaltySeconds(double seconds) { total_seconds_ += seconds; }

  /// Total simulated seconds so far.
  double total_seconds() const { return total_seconds_; }

  uint64_t seq_tuples() const { return seq_tuples_; }
  uint64_t index_seeks() const { return index_seeks_; }
  uint64_t index_entries() const { return index_entries_; }
  uint64_t random_ios() const { return random_ios_; }
  uint64_t cpu_tuples() const { return cpu_tuples_; }
  uint64_t output_tuples() const { return output_tuples_; }

  /// One-line summary for reports.
  std::string ToString() const;

 private:
  double total_seconds_ = 0.0;
  uint64_t seq_tuples_ = 0;
  uint64_t index_seeks_ = 0;
  uint64_t index_entries_ = 0;
  uint64_t random_ios_ = 0;
  uint64_t cpu_tuples_ = 0;
  uint64_t output_tuples_ = 0;
};

// ---- Closed-form plan-cost formulas, shared with the optimizer ----

/// Sequential scan of `rows` tuples producing `out_rows`.
double SeqScanCost(const CostModel& m, double rows, double out_rows);

/// Index range scan touching `entries` leaf entries and fetching `fetches`
/// records by RID, producing `out_rows` after residual filtering.
double IndexRangeScanCost(const CostModel& m, double entries, double fetches,
                          double out_rows);

/// Intersection of `num_indexes` RID lists with `entries_total` combined
/// leaf entries, fetching `fetches` records, producing `out_rows`.
double IndexIntersectionCost(const CostModel& m, int num_indexes,
                             double entries_total, double fetches,
                             double out_rows);

/// Hash join of `build_rows` x `probe_rows` producing `out_rows`.
double HashJoinCost(const CostModel& m, double build_rows, double probe_rows,
                    double out_rows);

/// Merge join of two sorted inputs (no sort step) producing `out_rows`.
double MergeJoinCost(const CostModel& m, double left_rows, double right_rows,
                     double out_rows);

/// Indexed nested-loop join: `outer_rows` probes into an index whose
/// matching entries total `inner_entries`, fetching `inner_fetches` inner
/// records, producing `out_rows`.
double IndexNestedLoopJoinCost(const CostModel& m, double outer_rows,
                               double inner_entries, double inner_fetches,
                               double out_rows);

/// Scalar/grouped aggregation over `in_rows` producing `out_rows`.
double AggregateCost(const CostModel& m, double in_rows, double out_rows);

/// Full sort of `rows` tuples: n log2(max(2, n)) CPU plus re-emission.
double SortCost(const CostModel& m, double rows);

}  // namespace exec
}  // namespace robustqo

#endif  // ROBUSTQO_EXEC_COST_MODEL_H_
