// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Table access paths: sequential scan, single-index range scan, and the
// index-intersection plan the paper uses as its canonical "risky" plan
// (fast at low selectivity, disastrous at high selectivity because every
// qualifying record costs one random I/O).

#ifndef ROBUSTQO_EXEC_SCAN_OPS_H_
#define ROBUSTQO_EXEC_SCAN_OPS_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace robustqo {
namespace exec {

/// Full sequential scan with optional predicate; the "stable" plan whose
/// cost is essentially independent of selectivity.
class SeqScanOp final : public PhysicalOperator {
 public:
  /// `output_columns` empty means all columns.
  SeqScanOp(std::string table, expr::ExprPtr predicate,
            std::vector<std::string> output_columns = {});

  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;

  /// Read-only plan shape, for the cluster coordinator's scatter-gather
  /// routing (it re-executes the same scan against per-node fragments).
  const std::string& table() const { return table_; }
  const expr::Expr* predicate() const { return predicate_.get(); }
  const std::vector<std::string>& output_columns() const {
    return output_columns_;
  }

 private:
  std::string table_;
  expr::ExprPtr predicate_;
  std::vector<std::string> output_columns_;
};

/// One sargable range on one indexed column.
struct IndexRange {
  std::string column;
  std::optional<double> lo;  // inclusive
  std::optional<double> hi;  // inclusive
};

/// Range scan of a single nonclustered index followed by RID fetches, with
/// an optional residual predicate applied to the fetched rows.
class IndexRangeScanOp final : public PhysicalOperator {
 public:
  IndexRangeScanOp(std::string table, IndexRange range,
                   expr::ExprPtr residual_predicate,
                   std::vector<std::string> output_columns = {});

  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;

 private:
  std::string table_;
  IndexRange range_;
  expr::ExprPtr residual_;
  std::vector<std::string> output_columns_;
};

/// Index-intersection access path: scan several indexes, intersect the RID
/// lists, fetch only the survivors. One random I/O per surviving record.
class IndexIntersectionOp final : public PhysicalOperator {
 public:
  IndexIntersectionOp(std::string table, std::vector<IndexRange> ranges,
                      expr::ExprPtr residual_predicate,
                      std::vector<std::string> output_columns = {});

  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;

 private:
  std::string table_;
  std::vector<IndexRange> ranges_;
  expr::ExprPtr residual_;
  std::vector<std::string> output_columns_;
};

}  // namespace exec
}  // namespace robustqo

#endif  // ROBUSTQO_EXEC_SCAN_OPS_H_
