// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// DML executor: the write-path counterpart of the physical operators. It
// targets rows with the same expression trees the read path uses, stages
// the mutation into a storage::WriteBatch, and commits under a retry
// policy — transient (kUnavailable) write faults are retried with
// deterministic backoff, everything else surfaces as a typed Status with
// the table fully rolled back.
//
// Life of a write:
//   1. resolve the target table (kNotFound if absent);
//   2. UPDATE/DELETE: scan RIDs visible at the writer's snapshot, evaluate
//      the WHERE predicate per row, charge the governor per scanned row;
//   3. UPDATE: evaluate SET expressions against the old row version and
//      coerce results to the column types (kInvalidArgument on mismatch);
//   4. stage deletes/inserts/updates into a WriteBatch, charge the
//      governor for the staged rows;
//   5. WriteBatch::Commit under RetryWithBackoff — the fault sites
//      storage.write.apply / storage.write.commit / stats.reservoir.update
//      fire inside, and a failed attempt leaves the table byte-identical
//      to its pre-write state before the next attempt (or the error);
//   6. on success the data epoch is published and, when a statistics
//      catalog is attached, the committed rows have been fed to the
//      table's reservoir sample (pre-publish, so sample and table never
//      diverge).
//
// The executor is deliberately independent of the SQL front end: callers
// hand it tables, literal rows and expression trees, so the core layer can
// drive it from a parsed DmlSpec and tests can drive it directly.

#ifndef ROBUSTQO_EXEC_DML_H_
#define ROBUSTQO_EXEC_DML_H_

#include <string>
#include <utility>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"
#include "fault/retry.h"
#include "statistics/statistics_catalog.h"
#include "storage/catalog.h"
#include "storage/value.h"
#include "storage/write_batch.h"
#include "util/status.h"

namespace robustqo {
namespace exec {

/// What one DML statement did.
struct DmlResult {
  uint64_t rows_matched = 0;   ///< rows the WHERE clause targeted
  uint64_t rows_inserted = 0;  ///< new row versions (updates count here too)
  uint64_t rows_deleted = 0;   ///< delete stamps placed
  uint64_t rows_updated = 0;   ///< rows rewritten in place (delete+insert)
  /// Data epoch the mutation published; readers at snapshots >= epoch see
  /// it. Unchanged current epoch when the statement matched nothing.
  uint64_t epoch = 0;
  /// What the commit retry loop did (attempts == 1 when no fault fired).
  fault::RetryStats retry;

  /// Rows affected in the conventional client-facing sense.
  uint64_t rows_affected() const {
    return rows_updated != 0 ? rows_updated
                             : (rows_inserted != 0 ? rows_inserted
                                                   : rows_deleted);
  }
};

/// Executes INSERT / UPDATE / DELETE against one catalog. Borrowed
/// pointers; `statistics` is nullable (no online maintenance then).
class DmlExecutor {
 public:
  DmlExecutor(storage::Catalog* catalog,
              stats::StatisticsCatalog* statistics = nullptr)
      : catalog_(catalog), statistics_(statistics) {}

  /// Retry schedule for transient commit failures (default: 3 attempts).
  void set_retry_policy(const fault::RetryPolicy& policy) {
    retry_policy_ = policy;
  }
  const fault::RetryPolicy& retry_policy() const { return retry_policy_; }

  /// INSERT INTO `table` VALUES `rows`. Rows must be full rows in schema
  /// column order; int64 literals widen to DOUBLE columns and coerce to
  /// DATE columns, anything else mismatched is kInvalidArgument.
  Result<DmlResult> Insert(ExecContext* ctx, const std::string& table,
                           const std::vector<std::vector<storage::Value>>& rows);

  /// UPDATE `table` SET `sets` [WHERE `where`]. SET expressions are
  /// evaluated against the old row version; null `where` targets every
  /// visible row.
  Result<DmlResult> Update(
      ExecContext* ctx, const std::string& table,
      const std::vector<std::pair<std::string, expr::ExprPtr>>& sets,
      const expr::ExprPtr& where);

  /// DELETE FROM `table` [WHERE `where`].
  Result<DmlResult> Delete(ExecContext* ctx, const std::string& table,
                           const expr::ExprPtr& where);

 private:
  /// Visible-row targets of `where` at the writer's snapshot, with the
  /// governor charged for every row scanned.
  Result<std::vector<storage::Rid>> TargetRids(ExecContext* ctx,
                                               const storage::Table& table,
                                               const expr::ExprPtr& where);

  /// Commits `batch` under the retry policy, feeding committed rows to the
  /// statistics reservoir pre-publish. Fills the commit fields of `out`.
  Status CommitBatch(ExecContext* ctx, storage::WriteBatch* batch,
                     DmlResult* out);

  storage::Catalog* catalog_;
  stats::StatisticsCatalog* statistics_;
  fault::RetryPolicy retry_policy_;
};

}  // namespace exec
}  // namespace robustqo

#endif  // ROBUSTQO_EXEC_DML_H_
