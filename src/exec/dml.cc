#include "exec/dml.h"

#include <utility>

#include "storage/write_batch.h"
#include "util/macros.h"

namespace robustqo {
namespace exec {
namespace {

using storage::DataType;
using storage::Rid;
using storage::Table;
using storage::Value;

// Mirrors the parser's literal coercion so callers that bypass SQL get the
// same conversions: int64 widens to DOUBLE and interconverts with DATE.
Result<Value> CoerceToColumn(const Value& v, const storage::ColumnDef& col) {
  if (v.type() == col.type) return v;
  if (v.type() == DataType::kInt64 && col.type == DataType::kDouble) {
    return Value::Double(static_cast<double>(v.AsInt64()));
  }
  if (v.type() == DataType::kInt64 && col.type == DataType::kDate) {
    return Value::Date(v.AsInt64());
  }
  if (v.type() == DataType::kDate && col.type == DataType::kInt64) {
    return Value::Int64(v.AsInt64());
  }
  return Status::InvalidArgument(
      std::string("cannot store a ") + storage::DataTypeName(v.type()) +
      " value in " + storage::DataTypeName(col.type) + " column " + col.name);
}

}  // namespace

Result<std::vector<Rid>> DmlExecutor::TargetRids(ExecContext* ctx,
                                                 const Table& table,
                                                 const expr::ExprPtr& where) {
  std::vector<Rid> targets;
  const uint64_t num_rows = table.num_rows();
  for (Rid rid = 0; rid < num_rows; ++rid) {
    if (!table.VisibleAt(rid, ctx->snapshot_epoch)) continue;
    RQO_RETURN_NOT_OK(ctx->Tick(1, 0));
    if (where != nullptr && !where->EvaluateBool(table, rid)) continue;
    targets.push_back(rid);
  }
  return targets;
}

Status DmlExecutor::CommitBatch(ExecContext* ctx, storage::WriteBatch* batch,
                                DmlResult* out) {
  if (batch->empty()) {
    out->epoch = catalog_->data_epoch();
    out->retry.attempts = 0;
    return Status::OK();
  }
  const std::string table = batch->table()->name();
  auto pre_publish = [&](const storage::CommitStats& stats) -> Status {
    if (statistics_ == nullptr) return Status::OK();
    return statistics_->ObserveCommit(table, batch->staged_insert_rows(),
                                      stats.rows_deleted);
  };
  // Retryable (kUnavailable) commit failures leave the table byte-identical
  // to its pre-write state, so re-running Commit on the same staged batch
  // is safe; the fault injector's per-site streams advance across attempts.
  Result<storage::CommitStats> committed =
      fault::RetryWithBackoff(
          retry_policy_,
          [&]() { return batch->Commit(ctx->fault, pre_publish); },
          &out->retry, ctx->metrics);
  if (!committed.ok()) return committed.status();
  out->rows_inserted = committed.value().rows_inserted;
  out->rows_deleted = committed.value().rows_deleted;
  out->rows_updated = committed.value().rows_updated;
  out->epoch = committed.value().epoch;
  return Status::OK();
}

Result<DmlResult> DmlExecutor::Insert(
    ExecContext* ctx, const std::string& table,
    const std::vector<std::vector<Value>>& rows) {
  Table* target = catalog_->GetMutableTable(table);
  if (target == nullptr) {
    return Status::NotFound("no table named " + table);
  }
  const storage::Schema& schema = target->schema();
  const uint64_t row_bytes = ApproximateRowBytes(schema);
  storage::WriteBatch batch(catalog_, target);
  for (const std::vector<Value>& row : rows) {
    if (row.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "INSERT row has " + std::to_string(row.size()) + " values; " +
          table + " has " + std::to_string(schema.num_columns()) +
          " columns");
    }
    std::vector<Value> coerced;
    coerced.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      RQO_ASSIGN_OR_RETURN(Value v, CoerceToColumn(row[i], schema.column(i)));
      coerced.push_back(std::move(v));
    }
    RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
    batch.StageInsert(std::move(coerced));
  }
  DmlResult result;
  RQO_RETURN_NOT_OK(CommitBatch(ctx, &batch, &result));
  return result;
}

Result<DmlResult> DmlExecutor::Update(
    ExecContext* ctx, const std::string& table,
    const std::vector<std::pair<std::string, expr::ExprPtr>>& sets,
    const expr::ExprPtr& where) {
  Table* target = catalog_->GetMutableTable(table);
  if (target == nullptr) {
    return Status::NotFound("no table named " + table);
  }
  if (sets.empty()) {
    return Status::InvalidArgument("UPDATE with no SET assignments");
  }
  const storage::Schema& schema = target->schema();
  std::vector<size_t> set_cols;
  set_cols.reserve(sets.size());
  for (const auto& [column, value_expr] : sets) {
    (void)value_expr;
    RQO_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(column));
    set_cols.push_back(idx);
  }
  RQO_ASSIGN_OR_RETURN(std::vector<Rid> targets,
                       TargetRids(ctx, *target, where));

  const uint64_t row_bytes = ApproximateRowBytes(schema);
  storage::WriteBatch batch(catalog_, target);
  for (Rid rid : targets) {
    // New version = old row with the SET columns re-evaluated against the
    // old version (so "SET c = c + 1" reads the pre-update value).
    std::vector<Value> new_row = target->RowAt(rid);
    for (size_t i = 0; i < sets.size(); ++i) {
      Value raw = sets[i].second->Evaluate(*target, rid);
      RQO_ASSIGN_OR_RETURN(Value v,
                           CoerceToColumn(raw, schema.column(set_cols[i])));
      new_row[set_cols[i]] = std::move(v);
    }
    RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
    batch.StageUpdate(rid, std::move(new_row));
  }

  DmlResult result;
  result.rows_matched = targets.size();
  RQO_RETURN_NOT_OK(CommitBatch(ctx, &batch, &result));
  return result;
}

Result<DmlResult> DmlExecutor::Delete(ExecContext* ctx,
                                      const std::string& table,
                                      const expr::ExprPtr& where) {
  Table* target = catalog_->GetMutableTable(table);
  if (target == nullptr) {
    return Status::NotFound("no table named " + table);
  }
  RQO_ASSIGN_OR_RETURN(std::vector<Rid> targets,
                       TargetRids(ctx, *target, where));

  storage::WriteBatch batch(catalog_, target);
  for (Rid rid : targets) {
    RQO_RETURN_NOT_OK(ctx->Tick(1, 0));
    batch.StageDelete(rid);
  }

  DmlResult result;
  result.rows_matched = targets.size();
  RQO_RETURN_NOT_OK(CommitBatch(ctx, &batch, &result));
  return result;
}

}  // namespace exec
}  // namespace robustqo
