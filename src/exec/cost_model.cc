#include "exec/cost_model.h"

#include <cmath>

#include "util/string_util.h"

namespace robustqo {
namespace exec {

void CostMeter::Reset() { *this = CostMeter(); }

void CostMeter::ChargeSeqTuples(const CostModel& m, uint64_t count) {
  seq_tuples_ += count;
  total_seconds_ += m.seq_tuple_cost * static_cast<double>(count);
}

void CostMeter::ChargeIndexProbe(const CostModel& m, uint64_t entries) {
  index_seeks_ += 1;
  index_entries_ += entries;
  total_seconds_ +=
      m.index_seek_cost + m.index_entry_cost * static_cast<double>(entries);
}

void CostMeter::ChargeRandomIo(const CostModel& m, uint64_t count) {
  random_ios_ += count;
  total_seconds_ += m.random_io_cost * static_cast<double>(count);
}

void CostMeter::ChargeCpuTuples(const CostModel& m, uint64_t count) {
  cpu_tuples_ += count;
  total_seconds_ += m.cpu_tuple_cost * static_cast<double>(count);
}

void CostMeter::ChargeHashJoin(const CostModel& m, uint64_t build,
                               uint64_t probe) {
  cpu_tuples_ += build + probe;
  total_seconds_ += m.hash_build_cost * static_cast<double>(build) +
                    m.hash_probe_cost * static_cast<double>(probe);
}

void CostMeter::ChargeOutputTuples(const CostModel& m, uint64_t count) {
  output_tuples_ += count;
  total_seconds_ += m.output_tuple_cost * static_cast<double>(count);
}

std::string CostMeter::ToString() const {
  return StrPrintf(
      "cost=%.4fs seq=%llu seeks=%llu entries=%llu rio=%llu cpu=%llu out=%llu",
      total_seconds_, static_cast<unsigned long long>(seq_tuples_),
      static_cast<unsigned long long>(index_seeks_),
      static_cast<unsigned long long>(index_entries_),
      static_cast<unsigned long long>(random_ios_),
      static_cast<unsigned long long>(cpu_tuples_),
      static_cast<unsigned long long>(output_tuples_));
}

void CostMeter::ChargeSortWork(const CostModel& m, uint64_t rows) {
  cpu_tuples_ += rows;
  output_tuples_ += rows;
  total_seconds_ += SortCost(m, static_cast<double>(rows));
}

double SortCost(const CostModel& m, double rows) {
  const double n = std::fmax(2.0, rows);
  return m.cpu_tuple_cost * rows * std::log2(n) +
         m.output_tuple_cost * rows;
}

double SeqScanCost(const CostModel& m, double rows, double out_rows) {
  return m.seq_tuple_cost * rows + m.output_tuple_cost * out_rows;
}

double IndexRangeScanCost(const CostModel& m, double entries, double fetches,
                          double out_rows) {
  return m.index_seek_cost + m.index_entry_cost * entries +
         m.random_io_cost * fetches + m.output_tuple_cost * out_rows;
}

double IndexIntersectionCost(const CostModel& m, int num_indexes,
                             double entries_total, double fetches,
                             double out_rows) {
  // One seek per index, scan all entries, RID-list intersection CPU over
  // every entry, then fetch the survivors.
  return m.index_seek_cost * num_indexes +
         m.index_entry_cost * entries_total +
         m.cpu_tuple_cost * entries_total + m.random_io_cost * fetches +
         m.output_tuple_cost * out_rows;
}

double HashJoinCost(const CostModel& m, double build_rows, double probe_rows,
                    double out_rows) {
  return m.hash_build_cost * build_rows + m.hash_probe_cost * probe_rows +
         m.output_tuple_cost * out_rows;
}

double MergeJoinCost(const CostModel& m, double left_rows, double right_rows,
                     double out_rows) {
  return m.cpu_tuple_cost * (left_rows + right_rows) +
         m.output_tuple_cost * out_rows;
}

double IndexNestedLoopJoinCost(const CostModel& m, double outer_rows,
                               double inner_entries, double inner_fetches,
                               double out_rows) {
  return m.index_seek_cost * outer_rows + m.index_entry_cost * inner_entries +
         m.random_io_cost * inner_fetches + m.output_tuple_cost * out_rows;
}

double AggregateCost(const CostModel& m, double in_rows, double out_rows) {
  return m.cpu_tuple_cost * in_rows + m.output_tuple_cost * out_rows;
}

}  // namespace exec
}  // namespace robustqo
