#include "exec/scan_ops.h"

#include <algorithm>

#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace exec {

using storage::Rid;
using storage::Table;

namespace {

std::vector<std::string> AllColumnNames(const storage::Schema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.num_columns());
  for (const auto& col : schema.columns()) names.push_back(col.name);
  return names;
}

std::vector<std::string> EffectiveColumns(
    const storage::Schema& schema, const std::vector<std::string>& requested) {
  return requested.empty() ? AllColumnNames(schema) : requested;
}

}  // namespace

// ----- SeqScanOp -----

SeqScanOp::SeqScanOp(std::string table, expr::ExprPtr predicate,
                     std::vector<std::string> output_columns)
    : table_(std::move(table)),
      predicate_(std::move(predicate)),
      output_columns_(std::move(output_columns)) {}

Result<Table> SeqScanOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table* source, LookupTable(*ctx, table_));
  const std::vector<std::string> cols =
      EffectiveColumns(source->schema(), output_columns_);
  RQO_ASSIGN_OR_RETURN(storage::Schema schema,
                       ProjectSchema(source->schema(), cols));
  Table out(table_ + "$scan", std::move(schema));
  RQO_ASSIGN_OR_RETURN(const std::vector<size_t> col_idx,
                       ResolveColumns(source->schema(), cols));
  const uint64_t row_bytes = ApproximateRowBytes(out.schema());

  const uint64_t n = source->num_rows();
  ctx->meter.ChargeSeqTuples(ctx->cost_model, n);
  for (Rid rid = 0; rid < n; ++rid) {
    if (!source->VisibleAt(rid, ctx->snapshot_epoch)) continue;
    if (predicate_ == nullptr || predicate_->EvaluateBool(*source, rid)) {
      AppendProjectedRow(*source, rid, col_idx, &out);
      RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
    }
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string SeqScanOp::Describe() const {
  return StrPrintf("SeqScan(%s%s%s)", table_.c_str(),
                   predicate_ == nullptr ? "" : ", ",
                   predicate_ == nullptr ? "" : predicate_->ToString().c_str());
}

// ----- IndexRangeScanOp -----

IndexRangeScanOp::IndexRangeScanOp(std::string table, IndexRange range,
                                   expr::ExprPtr residual_predicate,
                                   std::vector<std::string> output_columns)
    : table_(std::move(table)),
      range_(std::move(range)),
      residual_(std::move(residual_predicate)),
      output_columns_(std::move(output_columns)) {}

Result<Table> IndexRangeScanOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table* source, LookupTable(*ctx, table_));
  RQO_ASSIGN_OR_RETURN(const storage::SortedIndex* index,
                       LookupIndex(*ctx, table_, range_.column));

  uint64_t entries = 0;
  std::vector<Rid> rids = index->RangeLookup(range_.lo, range_.hi, &entries);
  ctx->meter.ChargeIndexProbe(ctx->cost_model, entries);
  ctx->meter.ChargeRandomIo(ctx->cost_model, rids.size());

  const std::vector<std::string> cols =
      EffectiveColumns(source->schema(), output_columns_);
  RQO_ASSIGN_OR_RETURN(storage::Schema schema,
                       ProjectSchema(source->schema(), cols));
  Table out(table_ + "$ixscan", std::move(schema));
  RQO_ASSIGN_OR_RETURN(const std::vector<size_t> col_idx,
                       ResolveColumns(source->schema(), cols));
  const uint64_t row_bytes = ApproximateRowBytes(out.schema());
  for (Rid rid : rids) {
    if (!source->VisibleAt(rid, ctx->snapshot_epoch)) continue;
    if (residual_ == nullptr || residual_->EvaluateBool(*source, rid)) {
      AppendProjectedRow(*source, rid, col_idx, &out);
      RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
    }
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string IndexRangeScanOp::Describe() const {
  return StrPrintf("IndexRangeScan(%s.%s)", table_.c_str(),
                   range_.column.c_str());
}

// ----- IndexIntersectionOp -----

IndexIntersectionOp::IndexIntersectionOp(
    std::string table, std::vector<IndexRange> ranges,
    expr::ExprPtr residual_predicate, std::vector<std::string> output_columns)
    : table_(std::move(table)),
      ranges_(std::move(ranges)),
      residual_(std::move(residual_predicate)),
      output_columns_(std::move(output_columns)) {
  RQO_CHECK_MSG(ranges_.size() >= 2,
                "index intersection needs at least two indexes");
}

Result<Table> IndexIntersectionOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table* source, LookupTable(*ctx, table_));

  uint64_t entries_total = 0;
  std::vector<std::vector<Rid>> rid_lists;
  rid_lists.reserve(ranges_.size());
  fault::MemoryReservation rid_workspace(ctx->governor);
  for (const IndexRange& range : ranges_) {
    RQO_ASSIGN_OR_RETURN(const storage::SortedIndex* index,
                         LookupIndex(*ctx, table_, range.column));
    uint64_t entries = 0;
    rid_lists.push_back(index->RangeLookup(range.lo, range.hi, &entries));
    RQO_RETURN_NOT_OK(
        rid_workspace.Grow(rid_lists.back().size() * sizeof(Rid)));
    ctx->meter.ChargeIndexProbe(ctx->cost_model, entries);
    entries_total += entries;
  }
  // RID-list intersection (sort + progressive set_intersection); charged as
  // CPU work proportional to the combined list lengths.
  ctx->meter.ChargeCpuTuples(ctx->cost_model, entries_total);
  RQO_RETURN_NOT_OK(ctx->CheckPoint());
  for (auto& list : rid_lists) std::sort(list.begin(), list.end());
  std::vector<Rid> survivors = std::move(rid_lists[0]);
  for (size_t i = 1; i < rid_lists.size(); ++i) {
    std::vector<Rid> next;
    std::set_intersection(survivors.begin(), survivors.end(),
                          rid_lists[i].begin(), rid_lists[i].end(),
                          std::back_inserter(next));
    survivors = std::move(next);
  }
  ctx->meter.ChargeRandomIo(ctx->cost_model, survivors.size());

  const std::vector<std::string> cols =
      EffectiveColumns(source->schema(), output_columns_);
  RQO_ASSIGN_OR_RETURN(storage::Schema schema,
                       ProjectSchema(source->schema(), cols));
  Table out(table_ + "$ixintersect", std::move(schema));
  RQO_ASSIGN_OR_RETURN(const std::vector<size_t> col_idx,
                       ResolveColumns(source->schema(), cols));
  const uint64_t row_bytes = ApproximateRowBytes(out.schema());
  for (Rid rid : survivors) {
    if (!source->VisibleAt(rid, ctx->snapshot_epoch)) continue;
    if (residual_ == nullptr || residual_->EvaluateBool(*source, rid)) {
      AppendProjectedRow(*source, rid, col_idx, &out);
      RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
    }
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string IndexIntersectionOp::Describe() const {
  std::vector<std::string> cols;
  cols.reserve(ranges_.size());
  for (const auto& r : ranges_) cols.push_back(r.column);
  return StrPrintf("IndexIntersection(%s: %s)", table_.c_str(),
                   StrJoin(cols, " & ").c_str());
}

}  // namespace exec
}  // namespace robustqo
