// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Star-join semijoin strategy (paper Section 6.2.3): compute the semijoin
// of the fact table with each filtered dimension via the indexed foreign-
// key columns, intersect the resulting fact RID sets, and fetch only the
// qualifying fact records. Like index intersection, this plan is cheap when
// few fact rows survive and pays one random I/O per survivor otherwise.

#ifndef ROBUSTQO_EXEC_STAR_OPS_H_
#define ROBUSTQO_EXEC_STAR_OPS_H_

#include <string>
#include <vector>

#include "exec/operator.h"

namespace robustqo {
namespace exec {

/// One dimension participating in the semijoin phase.
struct DimSemiJoin {
  std::string dim_table;
  expr::ExprPtr dim_predicate;   ///< filter on the dimension (may be null)
  std::string dim_pk_column;     ///< dimension primary key
  std::string fact_fk_column;    ///< indexed FK column of the fact table
};

/// Semijoin-intersect-fetch star strategy. Output rows are fact-table rows
/// (projected to `output_columns`; empty keeps all fact columns).
class StarSemiJoinOp final : public PhysicalOperator {
 public:
  StarSemiJoinOp(std::string fact_table, std::vector<DimSemiJoin> dims,
                 std::vector<std::string> output_columns = {});

  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;

 private:
  std::string fact_table_;
  std::vector<DimSemiJoin> dims_;
  std::vector<std::string> output_columns_;
};

}  // namespace exec
}  // namespace robustqo

#endif  // ROBUSTQO_EXEC_STAR_OPS_H_
