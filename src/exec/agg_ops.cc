#include "exec/agg_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace exec {

using storage::DataType;
using storage::Rid;
using storage::Table;
using storage::Value;

namespace {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kAvg:
      return "AVG";
  }
  return "?";
}

// Running state for one aggregate.
struct AggState {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t count = 0;

  void Update(double v) {
    sum += v;
    min = std::fmin(min, v);
    max = std::fmax(max, v);
    ++count;
  }

  Value Finalize(AggKind kind) const {
    switch (kind) {
      case AggKind::kCount:
        return Value::Int64(static_cast<int64_t>(count));
      case AggKind::kSum:
        return Value::Double(sum);
      case AggKind::kMin:
        return Value::Double(count == 0 ? 0.0 : min);
      case AggKind::kMax:
        return Value::Double(count == 0 ? 0.0 : max);
      case AggKind::kAvg:
        return Value::Double(count == 0 ? 0.0
                                        : sum / static_cast<double>(count));
    }
    return Value();
  }
};

Result<storage::Schema> AggOutputSchema(
    const std::vector<std::string>& group_names, const storage::Schema& input,
    const std::vector<AggSpec>& aggs) {
  std::vector<storage::ColumnDef> defs;
  for (const std::string& g : group_names) {
    auto idx = input.ColumnIndex(g);
    if (!idx.ok()) return idx.status();
    defs.push_back(input.column(idx.value()));
  }
  for (const AggSpec& agg : aggs) {
    const DataType type =
        agg.kind == AggKind::kCount ? DataType::kInt64 : DataType::kDouble;
    defs.push_back({agg.output_name, type});
  }
  return storage::Schema(std::move(defs));
}

// Column index for each aggregate's input (SIZE_MAX for COUNT(*)).
Result<std::vector<size_t>> AggInputColumns(const storage::Schema& input,
                                            const std::vector<AggSpec>& aggs) {
  std::vector<size_t> cols;
  cols.reserve(aggs.size());
  for (const AggSpec& agg : aggs) {
    if (agg.kind == AggKind::kCount && agg.column.empty()) {
      cols.push_back(SIZE_MAX);
      continue;
    }
    auto idx = input.ColumnIndex(agg.column);
    if (!idx.ok()) return idx.status();
    cols.push_back(idx.value());
  }
  return cols;
}

void UpdateStates(const Table& input, Rid rid,
                  const std::vector<size_t>& agg_cols,
                  std::vector<AggState>* states) {
  for (size_t a = 0; a < agg_cols.size(); ++a) {
    if (agg_cols[a] == SIZE_MAX) {
      (*states)[a].Update(0.0);  // COUNT(*): only the count matters
    } else {
      (*states)[a].Update(input.ValueAt(rid, agg_cols[a]).NumericValue());
    }
  }
}

std::string DescribeAggs(const std::vector<AggSpec>& aggs) {
  std::vector<std::string> parts;
  parts.reserve(aggs.size());
  for (const AggSpec& a : aggs) {
    parts.push_back(StrPrintf("%s(%s)", AggKindName(a.kind),
                              a.column.empty() ? "*" : a.column.c_str()));
  }
  return StrJoin(parts, ", ");
}

}  // namespace

// ----- FilterOp -----

FilterOp::FilterOp(OperatorPtr child, expr::ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  RQO_CHECK(predicate_ != nullptr);
}

Result<Table> FilterOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table input, child_->Run(ctx));
  ctx->meter.ChargeCpuTuples(ctx->cost_model, input.num_rows());
  Table out("filter", input.schema());
  const uint64_t row_bytes = ApproximateRowBytes(out.schema());
  std::vector<size_t> all_cols(input.schema().num_columns());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  for (Rid rid = 0; rid < input.num_rows(); ++rid) {
    if (predicate_->EvaluateBool(input, rid)) {
      AppendProjectedRow(input, rid, all_cols, &out);
      RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
    }
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string FilterOp::Describe() const {
  return "Filter(" + predicate_->ToString() + ")";
}

std::vector<const PhysicalOperator*> FilterOp::children() const {
  return {child_.get()};
}

// ----- LimitOp -----

LimitOp::LimitOp(OperatorPtr child, uint64_t limit)
    : child_(std::move(child)), limit_(limit) {}

Result<Table> LimitOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table input, child_->Run(ctx));
  Table out("limit", input.schema());
  const uint64_t row_bytes = ApproximateRowBytes(out.schema());
  std::vector<size_t> all_cols(input.schema().num_columns());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  const uint64_t n = std::min(input.num_rows(), limit_);
  for (Rid rid = 0; rid < n; ++rid) {
    AppendProjectedRow(input, rid, all_cols, &out);
    RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string LimitOp::Describe() const {
  return StrPrintf("Limit(%llu)", static_cast<unsigned long long>(limit_));
}

std::vector<const PhysicalOperator*> LimitOp::children() const {
  return {child_.get()};
}

// ----- ProjectOp -----

ProjectOp::ProjectOp(OperatorPtr child, std::vector<std::string> columns)
    : child_(std::move(child)), columns_(std::move(columns)) {}

Result<Table> ProjectOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table input, child_->Run(ctx));
  RQO_ASSIGN_OR_RETURN(storage::Schema schema,
                       ProjectSchema(input.schema(), columns_));
  Table out("project", std::move(schema));
  const uint64_t row_bytes = ApproximateRowBytes(out.schema());
  RQO_ASSIGN_OR_RETURN(const std::vector<size_t> col_idx,
                       ResolveColumns(input.schema(), columns_));
  for (Rid rid = 0; rid < input.num_rows(); ++rid) {
    AppendProjectedRow(input, rid, col_idx, &out);
    RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string ProjectOp::Describe() const {
  return "Project(" + StrJoin(columns_, ", ") + ")";
}

std::vector<const PhysicalOperator*> ProjectOp::children() const {
  return {child_.get()};
}

// ----- ScalarAggregateOp -----

ScalarAggregateOp::ScalarAggregateOp(OperatorPtr child,
                                     std::vector<AggSpec> aggs)
    : child_(std::move(child)), aggs_(std::move(aggs)) {
  RQO_CHECK(!aggs_.empty());
}

Result<Table> ScalarAggregateOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table input, child_->Run(ctx));
  ctx->aggregate_input_rows = input.num_rows();
  ctx->meter.ChargeCpuTuples(ctx->cost_model, input.num_rows());
  RQO_ASSIGN_OR_RETURN(const std::vector<size_t> agg_cols,
                       AggInputColumns(input.schema(), aggs_));
  std::vector<AggState> states(aggs_.size());
  for (Rid rid = 0; rid < input.num_rows(); ++rid) {
    UpdateStates(input, rid, agg_cols, &states);
  }
  RQO_RETURN_NOT_OK(ctx->CheckPoint());
  RQO_ASSIGN_OR_RETURN(storage::Schema schema,
                       AggOutputSchema({}, input.schema(), aggs_));
  Table out("aggregate", std::move(schema));
  std::vector<Value> row;
  row.reserve(aggs_.size());
  for (size_t a = 0; a < aggs_.size(); ++a) {
    row.push_back(states[a].Finalize(aggs_[a].kind));
  }
  out.AppendRow(row);
  RQO_RETURN_NOT_OK(ctx->Tick(1, ApproximateRowBytes(out.schema())));
  ctx->meter.ChargeOutputTuples(ctx->cost_model, 1);
  return out;
}

std::string ScalarAggregateOp::Describe() const {
  return "ScalarAggregate(" + DescribeAggs(aggs_) + ")";
}

std::vector<const PhysicalOperator*> ScalarAggregateOp::children() const {
  return {child_.get()};
}

// ----- GroupByAggregateOp -----

GroupByAggregateOp::GroupByAggregateOp(OperatorPtr child,
                                       std::vector<std::string> group_columns,
                                       std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_columns_(std::move(group_columns)),
      aggs_(std::move(aggs)) {
  RQO_CHECK(!group_columns_.empty());
}

Result<Table> GroupByAggregateOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table input, child_->Run(ctx));
  ctx->aggregate_input_rows = input.num_rows();
  ctx->meter.ChargeCpuTuples(ctx->cost_model, input.num_rows());
  RQO_ASSIGN_OR_RETURN(const std::vector<size_t> group_idx,
                       ResolveColumns(input.schema(), group_columns_));
  for (size_t g : group_idx) {
    if (!storage::IsIntegerPhysical(input.schema().column(g).type)) {
      return Status::InvalidArgument(
          "group-by key " + input.schema().column(g).name +
          " must be integer-physical");
    }
  }
  RQO_ASSIGN_OR_RETURN(const std::vector<size_t> agg_cols,
                       AggInputColumns(input.schema(), aggs_));

  // Ordered map keeps output deterministic (sorted by group key). The group
  // table is transient workspace, charged per inserted group and released
  // when the operator finishes.
  fault::MemoryReservation workspace(ctx->governor);
  const uint64_t group_bytes =
      (group_idx.size() + aggs_.size() * 4 + 4) * sizeof(int64_t);
  std::map<std::vector<int64_t>, std::vector<AggState>> groups;
  for (Rid rid = 0; rid < input.num_rows(); ++rid) {
    std::vector<int64_t> key;
    key.reserve(group_idx.size());
    for (size_t g : group_idx) {
      key.push_back(input.ValueAt(rid, g).AsInt64());
    }
    auto [it, inserted] =
        groups.try_emplace(std::move(key), aggs_.size(), AggState());
    if (inserted) RQO_RETURN_NOT_OK(workspace.Grow(group_bytes));
    UpdateStates(input, rid, agg_cols, &it->second);
  }
  RQO_RETURN_NOT_OK(ctx->CheckPoint());

  RQO_ASSIGN_OR_RETURN(
      storage::Schema schema,
      AggOutputSchema(group_columns_, input.schema(), aggs_));
  Table out("groupby", std::move(schema));
  const uint64_t row_bytes = ApproximateRowBytes(out.schema());
  for (const auto& [key, states] : groups) {
    std::vector<Value> row;
    row.reserve(key.size() + aggs_.size());
    for (size_t g = 0; g < key.size(); ++g) {
      const DataType type = input.schema().column(group_idx[g]).type;
      row.push_back(type == DataType::kDate ? Value::Date(key[g])
                                            : Value::Int64(key[g]));
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      row.push_back(states[a].Finalize(aggs_[a].kind));
    }
    out.AppendRow(row);
    RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string GroupByAggregateOp::Describe() const {
  return "GroupByAggregate(" + StrJoin(group_columns_, ", ") + "; " +
         DescribeAggs(aggs_) + ")";
}

std::vector<const PhysicalOperator*> GroupByAggregateOp::children() const {
  return {child_.get()};
}

}  // namespace exec
}  // namespace robustqo
