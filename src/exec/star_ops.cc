#include "exec/star_ops.h"

#include <algorithm>

#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace exec {

using storage::Rid;
using storage::Table;

StarSemiJoinOp::StarSemiJoinOp(std::string fact_table,
                               std::vector<DimSemiJoin> dims,
                               std::vector<std::string> output_columns)
    : fact_table_(std::move(fact_table)),
      dims_(std::move(dims)),
      output_columns_(std::move(output_columns)) {
  RQO_CHECK_MSG(!dims_.empty(), "star semijoin needs at least one dimension");
}

Result<Table> StarSemiJoinOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table* fact, LookupTable(*ctx, fact_table_));

  // Phase 1: per-dimension semijoin — find qualifying fact RIDs via the FK
  // index, one probe per selected dimension key. The RID sets are transient
  // workspace held until the intersection phase.
  fault::MemoryReservation workspace(ctx->governor);
  std::vector<std::vector<Rid>> rid_sets;
  rid_sets.reserve(dims_.size());
  for (const DimSemiJoin& dim : dims_) {
    RQO_ASSIGN_OR_RETURN(const Table* dim_table,
                         LookupTable(*ctx, dim.dim_table));
    RQO_ASSIGN_OR_RETURN(
        const storage::SortedIndex* fk_index,
        LookupIndex(*ctx, fact_table_, dim.fact_fk_column));
    RQO_ASSIGN_OR_RETURN(const size_t pk_idx,
                         dim_table->schema().ColumnIndex(dim.dim_pk_column));

    ctx->meter.ChargeSeqTuples(ctx->cost_model, dim_table->num_rows());
    std::vector<Rid> fact_rids;
    uint64_t entries_this_dim = 0;
    for (Rid drid = 0; drid < dim_table->num_rows(); ++drid) {
      if (dim.dim_predicate != nullptr &&
          !dim.dim_predicate->EvaluateBool(*dim_table, drid)) {
        continue;
      }
      const int64_t pk = dim_table->column(pk_idx).Int64At(drid);
      uint64_t entries = 0;
      std::vector<Rid> matches =
          fk_index->EqualLookup(static_cast<double>(pk), &entries);
      ctx->meter.ChargeIndexProbe(ctx->cost_model, entries);
      entries_this_dim += entries;
      fact_rids.insert(fact_rids.end(), matches.begin(), matches.end());
    }
    // RID-set bookkeeping (sorting for the intersection phase).
    ctx->meter.ChargeCpuTuples(ctx->cost_model, entries_this_dim);
    RQO_RETURN_NOT_OK(workspace.Grow(fact_rids.size() * sizeof(Rid)));
    RQO_RETURN_NOT_OK(ctx->CheckPoint());
    std::sort(fact_rids.begin(), fact_rids.end());
    rid_sets.push_back(std::move(fact_rids));
  }

  // Phase 2: intersect the per-dimension RID sets.
  std::vector<Rid> survivors = std::move(rid_sets[0]);
  for (size_t i = 1; i < rid_sets.size(); ++i) {
    std::vector<Rid> next;
    std::set_intersection(survivors.begin(), survivors.end(),
                          rid_sets[i].begin(), rid_sets[i].end(),
                          std::back_inserter(next));
    survivors = std::move(next);
  }

  // Phase 3: fetch the qualifying fact records (one random I/O each).
  ctx->meter.ChargeRandomIo(ctx->cost_model, survivors.size());
  std::vector<std::string> cols = output_columns_;
  if (cols.empty()) {
    for (const auto& c : fact->schema().columns()) cols.push_back(c.name);
  }
  RQO_ASSIGN_OR_RETURN(storage::Schema schema,
                       ProjectSchema(fact->schema(), cols));
  Table out(fact_table_ + "$starsemi", std::move(schema));
  const uint64_t row_bytes = ApproximateRowBytes(out.schema());
  RQO_ASSIGN_OR_RETURN(const std::vector<size_t> col_idx,
                       ResolveColumns(fact->schema(), cols));
  for (Rid rid : survivors) {
    AppendProjectedRow(*fact, rid, col_idx, &out);
    RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string StarSemiJoinOp::Describe() const {
  std::vector<std::string> dims;
  dims.reserve(dims_.size());
  for (const auto& d : dims_) dims.push_back(d.dim_table);
  return StrPrintf("StarSemiJoin(%s |x| {%s})", fact_table_.c_str(),
                   StrJoin(dims, ", ").c_str());
}

}  // namespace exec
}  // namespace robustqo
