// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Explicit sort operator: materializes the child's output ordered by one
// integer-physical column. Enables merge joins on inputs that do not
// already arrive in clustering order.

#ifndef ROBUSTQO_EXEC_SORT_OP_H_
#define ROBUSTQO_EXEC_SORT_OP_H_

#include <string>

#include "exec/operator.h"

namespace robustqo {
namespace exec {

/// Sorts the child output ascending by `column`. Costing uses the shared
/// SortCost formula from cost_model.h.
class SortOp final : public PhysicalOperator {
 public:
  SortOp(OperatorPtr child, std::string column);

  Result<storage::Table> Execute(ExecContext* ctx) const override;
  std::string Describe() const override;
  std::vector<const PhysicalOperator*> children() const override;

 private:
  OperatorPtr child_;
  std::string column_;
};

}  // namespace exec
}  // namespace robustqo

#endif  // ROBUSTQO_EXEC_SORT_OP_H_
