#include "exec/operator.h"

#include "util/macros.h"

namespace robustqo {
namespace exec {

std::string PhysicalOperator::TreeString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const PhysicalOperator* child : children()) {
    out += child->TreeString(indent + 1);
  }
  return out;
}

storage::Schema ProjectSchema(const storage::Schema& schema,
                              const std::vector<std::string>& columns) {
  std::vector<storage::ColumnDef> defs;
  defs.reserve(columns.size());
  for (const std::string& name : columns) {
    auto idx = schema.ColumnIndex(name);
    RQO_CHECK_MSG(idx.ok(), idx.status().ToString().c_str());
    defs.push_back(schema.column(idx.value()));
  }
  return storage::Schema(std::move(defs));
}

void AppendProjectedRow(const storage::Table& source, storage::Rid rid,
                        const std::vector<size_t>& column_indexes,
                        storage::Table* dest) {
  std::vector<storage::Value> row;
  row.reserve(column_indexes.size());
  for (size_t col : column_indexes) row.push_back(source.ValueAt(rid, col));
  dest->AppendRow(row);
}

std::vector<size_t> ResolveColumns(const storage::Schema& schema,
                                   const std::vector<std::string>& columns) {
  std::vector<size_t> out;
  out.reserve(columns.size());
  for (const std::string& name : columns) {
    auto idx = schema.ColumnIndex(name);
    RQO_CHECK_MSG(idx.ok(), idx.status().ToString().c_str());
    out.push_back(idx.value());
  }
  return out;
}

storage::Schema ConcatSchemas(const storage::Schema& a,
                              const storage::Schema& b) {
  std::vector<storage::ColumnDef> defs = a.columns();
  defs.insert(defs.end(), b.columns().begin(), b.columns().end());
  return storage::Schema(std::move(defs));
}

}  // namespace exec
}  // namespace robustqo
