#include "exec/operator.h"

#include "util/macros.h"

namespace robustqo {
namespace exec {

namespace {

// Rows between cooperative governor checkpoints inside operator loops.
constexpr uint64_t kCheckpointInterval = 256;

}  // namespace

Status ExecContext::CheckPoint() {
  if (governor == nullptr) return Status::OK();
  RQO_RETURN_NOT_OK(governor->CheckCancelled());
  return governor->CheckTime(meter.total_seconds());
}

Status ExecContext::Tick(uint64_t rows, uint64_t bytes) {
  if (governor == nullptr) return Status::OK();
  if (rows > 0) RQO_RETURN_NOT_OK(governor->ChargeRows(rows));
  if (bytes > 0) RQO_RETURN_NOT_OK(governor->ChargeMemory(bytes));
  rows_since_checkpoint_ += rows;
  if (rows_since_checkpoint_ >= kCheckpointInterval) {
    rows_since_checkpoint_ = 0;
    return CheckPoint();
  }
  return Status::OK();
}

Result<storage::Table> PhysicalOperator::Run(ExecContext* ctx) const {
  // Fault sites every operator passes through: workspace allocation (fails
  // with the site's typed code) and a clock stall (charges simulated
  // seconds, which the governor's time budget then sees).
  if (ctx->fault != nullptr) {
    Status alloc = ctx->fault->Check(fault::sites::kOperatorAlloc);
    if (!alloc.ok()) {
      return Status(alloc.code(),
                    alloc.message() + " in " + Describe());
    }
    const double stall = ctx->fault->CheckStall(fault::sites::kClockStall);
    if (stall > 0.0) ctx->meter.ChargePenaltySeconds(stall);
  }
  RQO_RETURN_NOT_OK(ctx->CheckPoint());
#if ROBUSTQO_OBS_ENABLED
  if (ctx->tracer != nullptr || ctx->metrics != nullptr) {
    const double cost_before = ctx->meter.total_seconds();
    uint64_t span = 0;
    if (ctx->tracer != nullptr) {
      span = ctx->tracer->BeginSpan("exec", Describe());
    }
    Result<storage::Table> out = Execute(ctx);
    const double cost = ctx->meter.total_seconds() - cost_before;
    if (ctx->tracer != nullptr) {
      obs::TraceAttrs attrs = {{"cost_seconds", obs::AttrF(cost)}};
      if (out.ok()) {
        attrs.emplace_back("rows_out", obs::AttrU64(out.value().num_rows()));
      } else {
        attrs.emplace_back("error", out.status().ToString());
      }
      ctx->tracer->EndSpan(span, std::move(attrs));
    }
    if (ctx->metrics != nullptr) {
      ctx->metrics->GetCounter("exec.operators_run")->Increment();
      if (out.ok()) {
        ctx->metrics->GetCounter("exec.rows_out")
            ->Increment(out.value().num_rows());
      } else {
        ctx->metrics->GetCounter("exec.operator_errors")->Increment();
      }
    }
    return out;
  }
#endif
  return Execute(ctx);
}

std::string PhysicalOperator::TreeString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const PhysicalOperator* child : children()) {
    out += child->TreeString(indent + 1);
  }
  return out;
}

uint64_t ApproximateRowBytes(const storage::Schema& schema) {
  return static_cast<uint64_t>(schema.num_columns()) * 8;
}

Result<storage::Schema> ProjectSchema(
    const storage::Schema& schema, const std::vector<std::string>& columns) {
  std::vector<storage::ColumnDef> defs;
  defs.reserve(columns.size());
  for (const std::string& name : columns) {
    auto idx = schema.ColumnIndex(name);
    if (!idx.ok()) return idx.status();
    defs.push_back(schema.column(idx.value()));
  }
  return storage::Schema(std::move(defs));
}

void AppendProjectedRow(const storage::Table& source, storage::Rid rid,
                        const std::vector<size_t>& column_indexes,
                        storage::Table* dest) {
  std::vector<storage::Value> row;
  row.reserve(column_indexes.size());
  for (size_t col : column_indexes) row.push_back(source.ValueAt(rid, col));
  dest->AppendRow(row);
}

Result<std::vector<size_t>> ResolveColumns(
    const storage::Schema& schema, const std::vector<std::string>& columns) {
  std::vector<size_t> out;
  out.reserve(columns.size());
  for (const std::string& name : columns) {
    auto idx = schema.ColumnIndex(name);
    if (!idx.ok()) return idx.status();
    out.push_back(idx.value());
  }
  return out;
}

storage::Schema ConcatSchemas(const storage::Schema& a,
                              const storage::Schema& b) {
  std::vector<storage::ColumnDef> defs = a.columns();
  defs.insert(defs.end(), b.columns().begin(), b.columns().end());
  return storage::Schema(std::move(defs));
}

Result<const storage::Table*> LookupTable(const ExecContext& ctx,
                                          const std::string& table) {
  if (ctx.catalog == nullptr) {
    return Status::Internal("ExecContext has no catalog");
  }
  const storage::Table* t = ctx.catalog->GetTable(table);
  if (t == nullptr) return Status::NotFound("no table " + table);
  return t;
}

Result<const storage::SortedIndex*> LookupIndex(const ExecContext& ctx,
                                                const std::string& table,
                                                const std::string& column) {
  if (ctx.catalog == nullptr) {
    return Status::Internal("ExecContext has no catalog");
  }
  const storage::SortedIndex* index = ctx.catalog->GetIndex(table, column);
  if (index == nullptr) {
    return Status::NotFound("no index on " + table + "." + column);
  }
  return index;
}

}  // namespace exec
}  // namespace robustqo
