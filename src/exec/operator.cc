#include "exec/operator.h"

#include "util/macros.h"

namespace robustqo {
namespace exec {

storage::Table PhysicalOperator::Run(ExecContext* ctx) const {
#if ROBUSTQO_OBS_ENABLED
  if (ctx->tracer != nullptr || ctx->metrics != nullptr) {
    const double cost_before = ctx->meter.total_seconds();
    uint64_t span = 0;
    if (ctx->tracer != nullptr) {
      span = ctx->tracer->BeginSpan("exec", Describe());
    }
    storage::Table out = Execute(ctx);
    const double cost = ctx->meter.total_seconds() - cost_before;
    if (ctx->tracer != nullptr) {
      ctx->tracer->EndSpan(span, {{"rows_out", obs::AttrU64(out.num_rows())},
                                  {"cost_seconds", obs::AttrF(cost)}});
    }
    if (ctx->metrics != nullptr) {
      ctx->metrics->GetCounter("exec.operators_run")->Increment();
      ctx->metrics->GetCounter("exec.rows_out")->Increment(out.num_rows());
    }
    return out;
  }
#endif
  return Execute(ctx);
}

std::string PhysicalOperator::TreeString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const PhysicalOperator* child : children()) {
    out += child->TreeString(indent + 1);
  }
  return out;
}

storage::Schema ProjectSchema(const storage::Schema& schema,
                              const std::vector<std::string>& columns) {
  std::vector<storage::ColumnDef> defs;
  defs.reserve(columns.size());
  for (const std::string& name : columns) {
    auto idx = schema.ColumnIndex(name);
    RQO_CHECK_MSG(idx.ok(), idx.status().ToString().c_str());
    defs.push_back(schema.column(idx.value()));
  }
  return storage::Schema(std::move(defs));
}

void AppendProjectedRow(const storage::Table& source, storage::Rid rid,
                        const std::vector<size_t>& column_indexes,
                        storage::Table* dest) {
  std::vector<storage::Value> row;
  row.reserve(column_indexes.size());
  for (size_t col : column_indexes) row.push_back(source.ValueAt(rid, col));
  dest->AppendRow(row);
}

std::vector<size_t> ResolveColumns(const storage::Schema& schema,
                                   const std::vector<std::string>& columns) {
  std::vector<size_t> out;
  out.reserve(columns.size());
  for (const std::string& name : columns) {
    auto idx = schema.ColumnIndex(name);
    RQO_CHECK_MSG(idx.ok(), idx.status().ToString().c_str());
    out.push_back(idx.value());
  }
  return out;
}

storage::Schema ConcatSchemas(const storage::Schema& a,
                              const storage::Schema& b) {
  std::vector<storage::ColumnDef> defs = a.columns();
  defs.insert(defs.end(), b.columns().begin(), b.columns().end());
  return storage::Schema(std::move(defs));
}

}  // namespace exec
}  // namespace robustqo
