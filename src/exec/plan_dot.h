// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Graphviz export of physical plan trees (EXPLAIN as a picture):
//   dot -Tsvg plan.dot -o plan.svg

#ifndef ROBUSTQO_EXEC_PLAN_DOT_H_
#define ROBUSTQO_EXEC_PLAN_DOT_H_

#include <string>

#include "exec/operator.h"

namespace robustqo {
namespace exec {

/// Renders the operator tree rooted at `root` as a Graphviz digraph.
/// `graph_name` must be a valid dot identifier.
std::string PlanToDot(const PhysicalOperator& root,
                      const std::string& graph_name = "plan");

}  // namespace exec
}  // namespace robustqo

#endif  // ROBUSTQO_EXEC_PLAN_DOT_H_
