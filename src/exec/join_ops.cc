#include "exec/join_ops.h"

#include <unordered_map>

#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace exec {

using storage::Rid;
using storage::Table;

namespace {

// Integer join key of row `rid` in `table.column(idx)`.
int64_t KeyAt(const Table& table, size_t idx, Rid rid) {
  const storage::ColumnVector& col = table.column(idx);
  RQO_CHECK_MSG(storage::IsIntegerPhysical(col.type()),
                "join keys must be integer-physical");
  return col.Int64At(rid);
}

// Output plumbing for binary joins: maps each requested output column to
// (which input, column index there).
struct JoinOutput {
  storage::Schema schema;
  std::vector<std::pair<int, size_t>> sources;  // {0=left/build, 1=right}

  static Result<JoinOutput> Plan(const storage::Schema& left,
                                 const storage::Schema& right,
                                 const std::vector<std::string>& requested) {
    JoinOutput out;
    std::vector<storage::ColumnDef> defs;
    auto add = [&](const storage::Schema& schema, int side, size_t i) {
      defs.push_back(schema.column(i));
      out.sources.emplace_back(side, i);
    };
    if (requested.empty()) {
      for (size_t i = 0; i < left.num_columns(); ++i) add(left, 0, i);
      for (size_t i = 0; i < right.num_columns(); ++i) add(right, 1, i);
    } else {
      for (const std::string& name : requested) {
        auto li = left.ColumnIndex(name);
        if (li.ok()) {
          add(left, 0, li.value());
          continue;
        }
        auto ri = right.ColumnIndex(name);
        if (!ri.ok()) return ri.status();
        add(right, 1, ri.value());
      }
    }
    out.schema = storage::Schema(std::move(defs));
    return out;
  }

  void AppendJoined(const Table& left, Rid lrid, const Table& right,
                    Rid rrid, Table* dest) const {
    std::vector<storage::Value> row;
    row.reserve(sources.size());
    for (const auto& [side, idx] : sources) {
      row.push_back(side == 0 ? left.ValueAt(lrid, idx)
                              : right.ValueAt(rrid, idx));
    }
    dest->AppendRow(row);
  }
};

}  // namespace

// ----- HashJoinOp -----

HashJoinOp::HashJoinOp(OperatorPtr build, OperatorPtr probe,
                       std::string build_key, std::string probe_key,
                       std::vector<std::string> output_columns)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_key_(std::move(build_key)),
      probe_key_(std::move(probe_key)),
      output_columns_(std::move(output_columns)) {}

Result<Table> HashJoinOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table build_rows, build_->Run(ctx));
  RQO_ASSIGN_OR_RETURN(const Table probe_rows, probe_->Run(ctx));
  RQO_ASSIGN_OR_RETURN(const size_t build_key_idx,
                       build_rows.schema().ColumnIndex(build_key_));
  RQO_ASSIGN_OR_RETURN(const size_t probe_key_idx,
                       probe_rows.schema().ColumnIndex(probe_key_));

  ctx->meter.ChargeHashJoin(ctx->cost_model, build_rows.num_rows(),
                            probe_rows.num_rows());

  // Hash-table workspace: key + rid + bucket overhead per build entry.
  fault::MemoryReservation workspace(ctx->governor);
  RQO_RETURN_NOT_OK(workspace.Grow(build_rows.num_rows() * 24));
  std::unordered_multimap<int64_t, Rid> hash_table;
  hash_table.reserve(build_rows.num_rows() * 2);
  for (Rid rid = 0; rid < build_rows.num_rows(); ++rid) {
    hash_table.emplace(KeyAt(build_rows, build_key_idx, rid), rid);
  }
  RQO_RETURN_NOT_OK(ctx->CheckPoint());

  RQO_ASSIGN_OR_RETURN(
      const JoinOutput plan,
      JoinOutput::Plan(build_rows.schema(), probe_rows.schema(),
                       output_columns_));
  Table out("hashjoin", plan.schema);
  const uint64_t row_bytes = ApproximateRowBytes(plan.schema);
  for (Rid prid = 0; prid < probe_rows.num_rows(); ++prid) {
    const int64_t key = KeyAt(probe_rows, probe_key_idx, prid);
    auto [begin, end] = hash_table.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      plan.AppendJoined(build_rows, it->second, probe_rows, prid, &out);
      RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
    }
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string HashJoinOp::Describe() const {
  return StrPrintf("HashJoin(%s = %s)", build_key_.c_str(),
                   probe_key_.c_str());
}

std::vector<const PhysicalOperator*> HashJoinOp::children() const {
  return {build_.get(), probe_.get()};
}

// ----- MergeJoinOp -----

MergeJoinOp::MergeJoinOp(OperatorPtr left, OperatorPtr right,
                         std::string left_key, std::string right_key,
                         std::vector<std::string> output_columns)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      output_columns_(std::move(output_columns)) {}

Result<Table> MergeJoinOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table left_rows, left_->Run(ctx));
  RQO_ASSIGN_OR_RETURN(const Table right_rows, right_->Run(ctx));
  RQO_ASSIGN_OR_RETURN(const size_t lk,
                       left_rows.schema().ColumnIndex(left_key_));
  RQO_ASSIGN_OR_RETURN(const size_t rk,
                       right_rows.schema().ColumnIndex(right_key_));

  ctx->meter.ChargeCpuTuples(
      ctx->cost_model, left_rows.num_rows() + right_rows.num_rows());

  RQO_ASSIGN_OR_RETURN(
      const JoinOutput plan,
      JoinOutput::Plan(left_rows.schema(), right_rows.schema(),
                       output_columns_));
  Table out("mergejoin", plan.schema);
  const uint64_t row_bytes = ApproximateRowBytes(plan.schema);

  Rid li = 0;
  Rid ri = 0;
  const Rid ln = left_rows.num_rows();
  const Rid rn = right_rows.num_rows();
  while (li < ln && ri < rn) {
    const int64_t lkey = KeyAt(left_rows, lk, li);
    const int64_t rkey = KeyAt(right_rows, rk, ri);
    RQO_DCHECK(li == 0 || KeyAt(left_rows, lk, li - 1) <= lkey);
    RQO_DCHECK(ri == 0 || KeyAt(right_rows, rk, ri - 1) <= rkey);
    if (lkey < rkey) {
      ++li;
    } else if (lkey > rkey) {
      ++ri;
    } else {
      // Emit the cross product of the two equal-key runs.
      Rid lend = li;
      while (lend < ln && KeyAt(left_rows, lk, lend) == lkey) ++lend;
      Rid rend = ri;
      while (rend < rn && KeyAt(right_rows, rk, rend) == rkey) ++rend;
      for (Rid a = li; a < lend; ++a) {
        for (Rid b = ri; b < rend; ++b) {
          plan.AppendJoined(left_rows, a, right_rows, b, &out);
          RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
        }
      }
      li = lend;
      ri = rend;
    }
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string MergeJoinOp::Describe() const {
  return StrPrintf("MergeJoin(%s = %s)", left_key_.c_str(),
                   right_key_.c_str());
}

std::vector<const PhysicalOperator*> MergeJoinOp::children() const {
  return {left_.get(), right_.get()};
}

// ----- IndexNestedLoopJoinOp -----

IndexNestedLoopJoinOp::IndexNestedLoopJoinOp(
    OperatorPtr outer, std::string outer_key, std::string inner_table,
    std::string inner_index_column, expr::ExprPtr inner_residual,
    std::vector<std::string> output_columns)
    : outer_(std::move(outer)),
      outer_key_(std::move(outer_key)),
      inner_table_(std::move(inner_table)),
      inner_index_column_(std::move(inner_index_column)),
      inner_residual_(std::move(inner_residual)),
      output_columns_(std::move(output_columns)) {}

Result<Table> IndexNestedLoopJoinOp::Execute(ExecContext* ctx) const {
  RQO_ASSIGN_OR_RETURN(const Table outer_rows, outer_->Run(ctx));
  RQO_ASSIGN_OR_RETURN(const Table* inner, LookupTable(*ctx, inner_table_));
  RQO_ASSIGN_OR_RETURN(
      const storage::SortedIndex* index,
      LookupIndex(*ctx, inner_table_, inner_index_column_));
  RQO_ASSIGN_OR_RETURN(const size_t ok,
                       outer_rows.schema().ColumnIndex(outer_key_));

  RQO_ASSIGN_OR_RETURN(
      const JoinOutput plan,
      JoinOutput::Plan(outer_rows.schema(), inner->schema(),
                       output_columns_));
  Table out("inlj", plan.schema);
  const uint64_t row_bytes = ApproximateRowBytes(plan.schema);

  for (Rid orid = 0; orid < outer_rows.num_rows(); ++orid) {
    const int64_t key = KeyAt(outer_rows, ok, orid);
    uint64_t entries = 0;
    std::vector<Rid> matches =
        index->EqualLookup(static_cast<double>(key), &entries);
    ctx->meter.ChargeIndexProbe(ctx->cost_model, entries);
    ctx->meter.ChargeRandomIo(ctx->cost_model, matches.size());
    for (Rid irid : matches) {
      if (inner_residual_ == nullptr ||
          inner_residual_->EvaluateBool(*inner, irid)) {
        plan.AppendJoined(outer_rows, orid, *inner, irid, &out);
        RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
      }
    }
  }
  ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());
  return out;
}

std::string IndexNestedLoopJoinOp::Describe() const {
  return StrPrintf("IndexNestedLoopJoin(%s -> %s.%s)", outer_key_.c_str(),
                   inner_table_.c_str(), inner_index_column_.c_str());
}

std::vector<const PhysicalOperator*> IndexNestedLoopJoinOp::children() const {
  return {outer_.get()};
}

}  // namespace exec
}  // namespace robustqo
