#include "obs/flight_recorder.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "obs/exporters.h"
#include "util/string_util.h"

namespace robustqo {
namespace obs {

namespace {

std::string FingerprintHex(uint64_t fingerprint) {
  return StrPrintf("%016llx", static_cast<unsigned long long>(fingerprint));
}

/// The retention reasons of a record as a JSON array fragment.
std::string ReasonsJson(bool incident, bool slow) {
  std::string out = "[";
  if (incident) out += "\"incident\"";
  if (slow) {
    if (incident) out += ",";
    out += "\"slow\"";
  }
  out += "]";
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {}

bool FlightRecorder::WouldRetainSlow(double service_seconds,
                                     uint64_t request_id) const {
  if (config_.slowest_k == 0) return false;
  if (slow_.size() < config_.slowest_k) return true;
  // A candidate's offer order would be the largest so far, so it loses a
  // full tie to the incumbent — mirror that with the maximal order.
  const SlowKey candidate{service_seconds, request_id, UINT64_MAX};
  return candidate < *std::prev(slow_.end());
}

void FlightRecorder::DropIfUnreferenced(uint64_t order) {
  auto it = records_.find(order);
  if (it != records_.end() && !it->second.incident && !it->second.slow) {
    records_.erase(it);
  }
}

void FlightRecorder::Offer(RequestTrace trace) {
  ++stats_.offered;
  const bool incident = config_.incident_capacity > 0 && trace.IsIncident();
  const bool slow_candidate = config_.slowest_k > 0;
  if (!incident && !slow_candidate) return;

  const uint64_t order = next_order_++;
  const double seconds = trace.service_seconds;
  const uint64_t request_id = trace.request_id;
  Record record;
  record.trace = std::move(trace);

  if (incident) {
    record.incident = true;
    ++stats_.retained_incident;
  }
  records_.emplace(order, std::move(record));

  if (incident) {
    incident_fifo_.push_back(order);
    if (incident_fifo_.size() > config_.incident_capacity) {
      const uint64_t oldest = incident_fifo_.front();
      incident_fifo_.pop_front();
      records_.at(oldest).incident = false;
      ++stats_.evicted_incident;
      DropIfUnreferenced(oldest);
    }
  }

  if (slow_candidate) {
    slow_.insert({seconds, request_id, order});
    if (slow_.size() > config_.slowest_k) {
      const auto worst = std::prev(slow_.end());
      const uint64_t displaced = worst->order;
      slow_.erase(worst);
      if (displaced != order) {
        // The new trace bumped an incumbent out of the slowest-K.
        records_.at(order).slow = true;
        ++stats_.retained_slow;
        records_.at(displaced).slow = false;
        ++stats_.evicted_slow;
        DropIfUnreferenced(displaced);
      }
      // Otherwise the new trace itself lost — it was never retained-slow.
    } else {
      records_.at(order).slow = true;
      ++stats_.retained_slow;
    }
  }
  DropIfUnreferenced(order);
}

void FlightRecorder::Absorb(FlightRecorder&& other, const std::string& tag) {
  for (auto& [order, record] : other.records_) {
    (void)order;
    RequestTrace trace = std::move(record.trace);
    trace.tag = trace.tag.empty() ? tag : tag + "/" + trace.tag;
    // Re-offered traces re-run retention here; the donor's own offered
    // count is not inherited (stats describe this recorder's intake).
    Offer(std::move(trace));
  }
  other.Clear();
}

std::vector<const RequestTrace*> FlightRecorder::Snapshot() const {
  std::vector<const RequestTrace*> out;
  out.reserve(records_.size());
  for (const auto& [order, record] : records_) {
    (void)order;
    out.push_back(&record.trace);
  }
  return out;
}

std::string FlightRecorder::ToJson() const {
  std::string out = StrPrintf(
      "{\"flight_recorder\":{\"incident_capacity\":%zu,\"slowest_k\":%zu,"
      "\"stats\":{\"offered\":%llu,\"retained_incident\":%llu,"
      "\"retained_slow\":%llu,\"evicted_incident\":%llu,"
      "\"evicted_slow\":%llu},\"records\":[",
      config_.incident_capacity, config_.slowest_k,
      static_cast<unsigned long long>(stats_.offered),
      static_cast<unsigned long long>(stats_.retained_incident),
      static_cast<unsigned long long>(stats_.retained_slow),
      static_cast<unsigned long long>(stats_.evicted_incident),
      static_cast<unsigned long long>(stats_.evicted_slow));
  bool first = true;
  for (const auto& [order, record] : records_) {
    (void)order;
    const RequestTrace& t = record.trace;
    if (!first) out += ",";
    first = false;
    out += StrPrintf(
        "{\"request_id\":%llu,\"session\":%llu,\"session_label\":\"%s\","
        "\"ticket\":%llu,\"fingerprint\":\"%s\",\"status\":\"%s\","
        "\"failed\":%s,\"governor_tripped\":%s,\"fault_fires\":%llu,"
        "\"cache\":\"%s\",\"waves_waited\":%llu,"
        "\"queue_wait_seconds\":%.6f,\"service_seconds\":%.6f,"
        "\"tag\":\"%s\",\"retained\":%s,\"events\":",
        static_cast<unsigned long long>(t.request_id),
        static_cast<unsigned long long>(t.session_id),
        JsonEscape(t.session_label).c_str(),
        static_cast<unsigned long long>(t.ticket),
        FingerprintHex(t.fingerprint).c_str(), JsonEscape(t.status).c_str(),
        t.failed ? "true" : "false", t.governor_tripped ? "true" : "false",
        static_cast<unsigned long long>(t.fault_fires),
        JsonEscape(t.cache_outcome).c_str(),
        static_cast<unsigned long long>(t.waves_waited), t.queue_wait_seconds,
        t.service_seconds, JsonEscape(t.tag).c_str(),
        ReasonsJson(record.incident, record.slow).c_str());
    out += TraceEventsToJson(t.events);
    out += "}";
  }
  out += "]}}";
  return out;
}

std::string FlightRecorder::ToChromeTrace() const {
  // One lane per retained request, grouped by session pid. Lanes are
  // emitted in (session, request) order so the export never depends on
  // retention bookkeeping order.
  std::vector<TraceLane> lanes;
  lanes.reserve(records_.size());
  for (const auto& [order, record] : records_) {
    (void)order;
    const RequestTrace& t = record.trace;
    TraceLane lane;
    lane.pid = t.session_id;
    lane.tid = t.request_id;
    lane.process_name =
        t.session_label.empty()
            ? StrPrintf("session %llu",
                        static_cast<unsigned long long>(t.session_id))
            : t.session_label;
    lane.thread_name = StrPrintf(
        "request %llu [%s]%s%s",
        static_cast<unsigned long long>(t.request_id), t.status.c_str(),
        t.tag.empty() ? "" : " ", t.tag.c_str());
    lane.events = t.events;
    lanes.push_back(std::move(lane));
  }
  std::sort(lanes.begin(), lanes.end(),
            [](const TraceLane& a, const TraceLane& b) {
              return std::tie(a.pid, a.tid) < std::tie(b.pid, b.tid);
            });
  return obs::ToChromeTrace(lanes);
}

std::string FlightRecorder::ReportText() const {
  std::string out = StrPrintf(
      "flight recorder: %zu retained (offered=%llu incidents=%llu "
      "slow=%llu evicted=%llu)\n",
      records_.size(), static_cast<unsigned long long>(stats_.offered),
      static_cast<unsigned long long>(stats_.retained_incident),
      static_cast<unsigned long long>(stats_.retained_slow),
      static_cast<unsigned long long>(stats_.evicted_incident +
                                      stats_.evicted_slow));
  for (const auto& [order, record] : records_) {
    (void)order;
    const RequestTrace& t = record.trace;
    std::string reasons;
    if (record.incident) reasons += "incident";
    if (record.slow) reasons += reasons.empty() ? "slow" : ",slow";
    out += StrPrintf(
        "  [%-13s] req=%-5llu session=%llu (%s) status=%-18s cache=%-13s "
        "waves=%llu queue_wait=%.6f service=%.6f faults=%llu%s%s\n",
        reasons.c_str(), static_cast<unsigned long long>(t.request_id),
        static_cast<unsigned long long>(t.session_id),
        t.session_label.c_str(), t.status.c_str(),
        t.cache_outcome.empty() ? "-" : t.cache_outcome.c_str(),
        static_cast<unsigned long long>(t.waves_waited), t.queue_wait_seconds,
        t.service_seconds, static_cast<unsigned long long>(t.fault_fires),
        t.tag.empty() ? "" : " tag=", t.tag.c_str());
  }
  return out;
}

void FlightRecorder::PublishMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  const auto sync = [metrics](const char* name, uint64_t value) {
    Counter* counter = metrics->GetCounter(name);
    counter->Increment(value - counter->value());
  };
  sync("server.flight_recorder.offered", stats_.offered);
  sync("server.flight_recorder.retained.incident", stats_.retained_incident);
  sync("server.flight_recorder.retained.slow", stats_.retained_slow);
  sync("server.flight_recorder.evicted.incident", stats_.evicted_incident);
  sync("server.flight_recorder.evicted.slow", stats_.evicted_slow);
  metrics->GetGauge("server.flight_recorder.size")
      ->Set(static_cast<double>(records_.size()));
}

void FlightRecorder::Clear() {
  records_.clear();
  incident_fifo_.clear();
  slow_.clear();
  stats_ = FlightRecorderStats{};
  next_order_ = 0;
}

}  // namespace obs
}  // namespace robustqo
