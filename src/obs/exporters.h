// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Machine-readable exporters for the obs layer:
//
//   * ToOpenMetrics — Prometheus/OpenMetrics text exposition of a
//     MetricsRegistry snapshot (counters -> `_total`, gauges, histograms
//     -> cumulative `_bucket{le=...}` series, quantile sketches ->
//     summaries), ready for a scrape endpoint or a file target.
//   * ToChromeTrace — Chrome `trace_event` JSON of a Tracer's records,
//     loadable in Perfetto / chrome://tracing; span begin/end become B/E
//     pairs, instantaneous events become `i`.
//
// Both renderings are deterministic: metric families sort by name, trace
// timestamps default to the tracer's logical clock (one tick = one
// microsecond on the trace timeline), and all numbers use fixed formats —
// so exports are byte-identical across same-seed runs at any thread count
// and can be pinned as golden files (tests/golden/, validated by
// scripts/check_openmetrics.py and scripts/check_trace_json.py).
//
// Neither exporter is gated on ROBUSTQO_OBS: like the obs classes, they
// always work when called directly.

#ifndef ROBUSTQO_OBS_EXPORTERS_H_
#define ROBUSTQO_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace robustqo {
namespace obs {

/// Sanitizes a metric name for OpenMetrics: every character outside
/// [a-zA-Z0-9_:] becomes '_', and a leading digit gets a '_' prefix. The
/// registry's dotted names ("db.queries_planned") map to the conventional
/// underscore form.
std::string OpenMetricsName(const std::string& name);

/// Escapes a label value for OpenMetrics exposition (backslash, double
/// quote, newline).
std::string OpenMetricsLabelEscape(const std::string& value);

/// Renders `registry` in OpenMetrics text format. Families are emitted in
/// a fixed section order (counters, gauges, histograms, summaries), each
/// sorted by name and prefixed with `prefix`; the exposition ends with the
/// required `# EOF` line.
std::string ToOpenMetrics(const MetricsRegistry& registry,
                          const std::string& prefix = "rqo_");

/// Renders trace records as a Chrome `trace_event` JSON array. Span
/// begin/end pairs become "B"/"E" events (the end inherits the begin's
/// name and category, as the format requires); instantaneous records
/// become thread-scoped "i" events; attributes become `args`. With
/// `use_wall_time` false (the default) timestamps are the logical clock,
/// so the export is byte-identical across same-seed runs; pass true for
/// human-facing dumps with real durations.
std::string ToChromeTrace(const std::vector<TraceEvent>& events,
                          bool use_wall_time = false);

/// One track of a multi-lane Chrome trace: a record stream rendered under
/// its own (pid, tid) with human-readable process/thread names. The
/// flight recorder exports one lane per retained request (pid = session,
/// tid = request id) so Perfetto groups request lanes per session.
struct TraceLane {
  uint64_t pid = 1;
  uint64_t tid = 1;
  /// Emitted once per distinct pid as a process_name metadata record
  /// (the first lane with that pid wins).
  std::string process_name;
  std::string thread_name;
  std::vector<TraceEvent> events;
};

/// Multi-lane Chrome trace rendering: process/thread metadata ("M")
/// records first, then each lane's events in order. Span begin/end
/// records additionally carry the span id (as hex "id"), which the
/// extended scripts/check_trace_json.py uses to validate span-tree
/// well-formedness per track.
std::string ToChromeTrace(const std::vector<TraceLane>& lanes,
                          bool use_wall_time = false);

/// One sample of a Chrome counter track ("ph":"C"): at logical timestamp
/// `ts` the track's series take the given numeric values. Counter args
/// must be numbers (Perfetto stacks them); non-finite values render as 0
/// to keep the JSON well-formed.
struct CounterSample {
  uint64_t ts = 0;
  std::vector<std::pair<std::string, double>> values;
};

/// A named counter track. Chrome groups counter events by (pid, name), so
/// distinct tracks need distinct names; the plan-provenance exporter names
/// tracks per fingerprint.
struct CounterTrack {
  uint64_t pid = 1;
  uint64_t tid = 1;
  std::string name;
  std::string category = "counter";
  /// Emitted once per distinct pid as process_name metadata (first track
  /// with that pid wins; lanes' metadata takes precedence when both are
  /// rendered).
  std::string process_name;
  std::vector<CounterSample> samples;
};

/// Multi-lane rendering with counter tracks appended: metadata first, then
/// lane events, then every track's "C" samples in order. Samples must be
/// in non-decreasing ts order per (pid, tid) — checked by
/// scripts/check_trace_json.py like every other phase.
std::string ToChromeTrace(const std::vector<TraceLane>& lanes,
                          const std::vector<CounterTrack>& counters,
                          bool use_wall_time = false);

}  // namespace obs
}  // namespace robustqo

#endif  // ROBUSTQO_OBS_EXPORTERS_H_
