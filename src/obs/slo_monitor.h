// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// SloMonitor: the serving layer's latency and regret watchdog. The paper's
// promise is predictable latency — plans picked at cdf⁻¹(T%) should keep
// the tail flat — and this monitor is where that promise is checked in
// production terms. For every request the query service's reduce phase
// records:
//
//   * queue wait — admission waves waited, charged at the configured
//     simulated seconds per wave (the traffic harness's charging model);
//   * service time — the engine's simulated execution seconds plus the
//     planning charge when the plan missed the cache;
//   * realized regret — how far the plan's actual simulated cost exceeded
//     the estimate the robust optimizer promised when it chose the plan at
//     cdf⁻¹(T%). The promise comes from PlannedQuery::estimated_cost, the
//     actual from the same cost meter EXPLAIN ANALYZE reports, so regret
//     is measured in the one currency both sides share. Positive regret
//     means the posterior's T%-quantile undersold this execution — the
//     feedback signal the ROADMAP's AQO/PARQO items consume.
//
// Each signal lands in mergeable QuantileSketches at three scopes: global,
// per-session (keyed by session label) and per-fingerprint. Configurable
// thresholds turn observations into typed breach counters. Everything is
// recorded from the sequential reduce phase in admission order, so reports,
// JSON and published metrics (server.slo.* / optimizer.regret.*) are
// byte-identical at any RQO_THREADS setting.

#ifndef ROBUSTQO_OBS_SLO_MONITOR_H_
#define ROBUSTQO_OBS_SLO_MONITOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/quantile_sketch.h"

namespace robustqo {
namespace obs {

struct SloMonitorConfig {
  /// Master switch read by the query service (recording sites also
  /// compile out under -DROBUSTQO_OBS=OFF).
  bool enabled = true;
  /// Simulated queueing delay charged per admission wave waited. Defaults
  /// match workload::TrafficConfig; the traffic harness aligns them.
  double wave_delay_seconds = 0.05;
  /// Simulated planning charge for a request whose plan missed the cache.
  double plan_charge_seconds = 0.25;
  /// Breach thresholds in simulated seconds; 0 disables that breach
  /// counter.
  double queue_wait_breach_seconds = 0.0;
  double service_breach_seconds = 0.0;
  double regret_breach_seconds = 0.0;
  /// Worst sessions/fingerprints listed in ReportText (0 = none).
  size_t report_top_k = 3;
  double sketch_accuracy = 0.01;
};

/// Raw per-request inputs; the monitor derives the charged/regret values.
struct SloObservation {
  uint64_t session = 0;
  std::string session_label;
  uint64_t fingerprint = 0;
  bool failed = false;
  bool cache_hit = false;
  uint64_t queue_waves = 0;
  /// Simulated execution seconds actually metered (0 when failed).
  double actual_seconds = 0.0;
  /// The chosen plan's estimated cost at selection time (the cdf⁻¹(T%)
  /// promise); 0 when the request never got a plan.
  double estimated_seconds = 0.0;
};

class SloMonitor {
 public:
  /// One scope's accumulated signals. Queue wait is recorded for every
  /// observed request (queueing happens whether or not execution
  /// succeeds); service and regret only for successful ones.
  struct Scope {
    explicit Scope(double accuracy)
        : queue_wait(accuracy), service(accuracy), regret(accuracy) {}
    QuantileSketch queue_wait;
    QuantileSketch service;
    QuantileSketch regret;
    uint64_t observed = 0;
    uint64_t failed = 0;
    /// Successful requests whose actual exceeded the estimate.
    uint64_t regret_positive = 0;
    double worst_regret_ratio = 0.0;
    uint64_t breach_queue_wait = 0;
    uint64_t breach_service = 0;
    uint64_t breach_regret = 0;
  };

  explicit SloMonitor(SloMonitorConfig config = {});

  const SloMonitorConfig& config() const { return config_; }

  /// Aligns the charging model with a harness's (simulated seconds per
  /// admission wave, planning charge per cache miss).
  void ConfigureCharging(double wave_delay_seconds,
                         double plan_charge_seconds);

  /// The charged values the monitor would derive — shared with the flight
  /// recorder so both report identical numbers.
  double QueueWaitSeconds(uint64_t queue_waves) const {
    return static_cast<double>(queue_waves) * config_.wave_delay_seconds;
  }
  double ServiceSeconds(double actual_seconds, bool cache_hit) const {
    return actual_seconds + (cache_hit ? 0.0 : config_.plan_charge_seconds);
  }

  /// Records one finished request into the global, per-session and
  /// per-fingerprint scopes. Must be called in a deterministic order (the
  /// service's reduce phase guarantees admission order).
  void Record(const SloObservation& observation);

  const Scope& global() const { return global_; }
  /// nullptr when the scope has never been observed.
  const Scope* SessionScope(const std::string& label) const;
  const Scope* FingerprintScope(uint64_t fingerprint) const;
  size_t sessions_tracked() const { return sessions_.size(); }
  size_t fingerprints_tracked() const { return fingerprints_.size(); }
  /// Every fingerprint with an observed scope, ascending (deterministic) —
  /// the iteration surface the T% tuner retunes over.
  std::vector<uint64_t> TrackedFingerprints() const;

  /// Fixed-precision text block: global quantiles, breach counters, and
  /// the worst sessions/fingerprints by tail service time / tail regret.
  /// Byte-identical at any thread count; pinned by the determinism suite
  /// via TrafficReport::Summary.
  std::string ReportText() const;

  /// Deterministic JSON of the same content.
  std::string ToJson() const;

  /// Publishes server.slo.* and optimizer.regret.* series (no-op on
  /// null). Idempotent: counters sync to absolute values, sketches are
  /// rebuilt from the monitor's state.
  void PublishMetrics(MetricsRegistry* metrics) const;

  void Reset();

 private:
  Scope* MutableSession(const std::string& label);
  Scope* MutableFingerprint(uint64_t fingerprint);
  void RecordInto(Scope* scope, const SloObservation& observation,
                  double queue_wait, double service, double regret,
                  double ratio);

  SloMonitorConfig config_;
  Scope global_;
  std::map<std::string, Scope> sessions_;
  std::map<uint64_t, Scope> fingerprints_;
};

}  // namespace obs
}  // namespace robustqo

#endif  // ROBUSTQO_OBS_SLO_MONITOR_H_
