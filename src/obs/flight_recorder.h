// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// FlightRecorder: the serving layer's black box. The query service traces
// every request while a recorder is enabled, but full traces are only
// *retained* for the requests a postmortem would actually ask about:
//
//   * incidents — requests that failed with a typed Status, tripped their
//     query governor, or hit an armed fault site (kept in a bounded FIFO
//     ring: when the ring is full the oldest incident is evicted first);
//   * the slowest-K by simulated service seconds (ties broken toward the
//     lower request id, so the retained set is a pure function of the
//     offered multiset, never of arrival interleaving).
//
// A trace can be retained for both reasons at once; it is stored once and
// dropped only when it holds neither slot. Offers happen from the query
// service's sequential reduce phase in admission order, so the recorder's
// contents — and both dump formats — are byte-identical at any RQO_THREADS
// setting. ToJson() renders the raw span records (validated by
// scripts/check_trace_json.py's tree checks via the Chrome rendering);
// ToChromeTrace() renders one Perfetto lane per request, grouped by
// session, for the shell's `.blackbox trace` export.
//
// Like the other obs classes the recorder always works when used directly;
// only the query-service call sites compile out under -DROBUSTQO_OBS=OFF.

#ifndef ROBUSTQO_OBS_FLIGHT_RECORDER_H_
#define ROBUSTQO_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace robustqo {
namespace obs {

/// One request's finished trace plus the summary fields retention and the
/// dump headers need without walking the span records.
struct RequestTrace {
  /// Dense per-service request ordinal (1-based), assigned at submit time
  /// in request order — covers requests that never reached the queue.
  uint64_t request_id = 0;
  uint64_t session_id = 0;
  std::string session_label;
  /// Admission ticket (0 = rejected before entering the queue).
  uint64_t ticket = 0;
  uint64_t fingerprint = 0;
  /// "OK" or the typed StatusCode name of the failure.
  std::string status = "OK";
  bool failed = false;
  bool governor_tripped = false;
  /// Armed fault-site firings observed by this request's injector.
  uint64_t fault_fires = 0;
  /// Plan-cache outcome: "hit", "miss", "stale_epoch", "drift_blocked",
  /// "degraded_fault", or "" when the request never reached planning.
  std::string cache_outcome;
  uint64_t waves_waited = 0;
  double queue_wait_seconds = 0.0;
  /// Simulated service seconds (execution plus any planning charge).
  double service_seconds = 0.0;
  /// Harness grouping tag (e.g. "run=17" from a chaos sweep); empty for
  /// traces recorded directly by a service.
  std::string tag;
  std::vector<TraceEvent> events;

  /// Whether this trace qualifies for the incident ring.
  bool IsIncident() const {
    return failed || governor_tripped || fault_fires > 0;
  }
};

struct FlightRecorderConfig {
  /// Master switch read by the query service: tracing is only materialized
  /// per request while this is true (and observability is compiled in).
  bool enabled = false;
  /// Incident ring size; 0 disables incident retention.
  size_t incident_capacity = 32;
  /// Slowest-request slots; 0 disables slowest-K retention.
  size_t slowest_k = 8;
};

/// Retention accounting, exported under server.flight_recorder.*.
struct FlightRecorderStats {
  uint64_t offered = 0;
  uint64_t retained_incident = 0;
  uint64_t retained_slow = 0;
  uint64_t evicted_incident = 0;
  uint64_t evicted_slow = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  const FlightRecorderConfig& config() const { return config_; }
  const FlightRecorderStats& stats() const { return stats_; }

  /// Retained trace count (each trace counted once, whatever its reasons).
  size_t size() const { return records_.size(); }

  /// Whether a trace with `service_seconds` from request `request_id`
  /// would currently win a slowest-K slot. Ties on seconds break toward
  /// the lower request id; a full tie loses to the incumbent (earlier
  /// offer).
  bool WouldRetainSlow(double service_seconds, uint64_t request_id) const;

  /// Offers a finished trace; the recorder keeps it only if it is an
  /// incident or lands in the slowest-K. Evictions follow: oldest incident
  /// first (FIFO ring), least-slow first (ties evict the higher request
  /// id). Must be called in a deterministic order (the service's reduce
  /// phase guarantees admission order).
  void Offer(RequestTrace trace);

  /// Re-offers every trace retained by `other`, in `other`'s retained
  /// order, tagging each with `tag` (prefixed onto an existing tag as
  /// "tag/existing"). The chaos harness uses this to merge per-run
  /// recorders in run-index order.
  void Absorb(FlightRecorder&& other, const std::string& tag);

  /// Retained traces in offer order (stable across thread counts).
  std::vector<const RequestTrace*> Snapshot() const;

  /// Deterministic JSON dump: config, stats, and every retained trace with
  /// its retention reasons and raw span records. No wall time anywhere.
  std::string ToJson() const;

  /// Chrome trace_event rendering: one lane (pid = session, tid = request)
  /// per retained trace, with process/thread metadata so Perfetto groups
  /// lanes per session and labels each request's outcome.
  std::string ToChromeTrace() const;

  /// Aligned text listing for the shell's `.blackbox`.
  std::string ReportText() const;

  /// Publishes server.flight_recorder.* counters/gauges (no-op on null).
  /// Idempotent.
  void PublishMetrics(MetricsRegistry* metrics) const;

  void Clear();

 private:
  /// Slowest-K ordering: more service seconds ranks higher; ties prefer
  /// the lower request id, then the earlier offer.
  struct SlowKey {
    double seconds = 0.0;
    uint64_t request_id = 0;
    uint64_t order = 0;
    bool operator<(const SlowKey& o) const {
      if (seconds != o.seconds) return seconds > o.seconds;
      if (request_id != o.request_id) return request_id < o.request_id;
      return order < o.order;
    }
  };

  struct Record {
    RequestTrace trace;
    bool incident = false;
    bool slow = false;
  };

  void DropIfUnreferenced(uint64_t order);

  FlightRecorderConfig config_;
  FlightRecorderStats stats_;
  uint64_t next_order_ = 0;
  std::map<uint64_t, Record> records_;  // offer order -> record
  std::deque<uint64_t> incident_fifo_;  // offer orders, oldest first
  std::set<SlowKey> slow_;              // slowest first
};

}  // namespace obs
}  // namespace robustqo

#endif  // ROBUSTQO_OBS_FLIGHT_RECORDER_H_
