#include "obs/plan_provenance.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/exporters.h"
#include "util/string_util.h"

namespace robustqo {
namespace obs {

namespace {

std::string FingerprintHex(uint64_t fingerprint) {
  return StrPrintf("%016llx", static_cast<unsigned long long>(fingerprint));
}

std::string Num(double value) {
  if (std::isnan(value)) return "null";
  if (std::isinf(value)) return "null";
  return StrPrintf("%.9g", value);
}

std::string DoubleArrayJson(const std::vector<double>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += Num(values[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string SensitivityJson(const PlanSensitivity& s) {
  std::string out = StrPrintf(
      "{\"captured\":%s,\"available\":%s,\"threshold\":%s,"
      "\"stable\":%s,\"max_regret_pct\":%s,\"crossover_quantile\":%s,"
      "\"crossover_rival\":\"%s\",\"verdict\":\"%s\","
      "\"unavailable_reason\":\"%s\",\"grid\":",
      s.captured ? "true" : "false", s.available ? "true" : "false",
      Num(s.threshold).c_str(), s.stable ? "true" : "false",
      Num(s.max_regret_pct).c_str(), Num(s.crossover_quantile).c_str(),
      JsonEscape(s.crossover_rival).c_str(), JsonEscape(s.verdict).c_str(),
      JsonEscape(s.unavailable_reason).c_str());
  out += DoubleArrayJson(s.grid);
  out += ",\"selectivity\":" + DoubleArrayJson(s.selectivity);
  out += ",\"candidates\":[";
  for (size_t i = 0; i < s.candidates.size(); ++i) {
    const CandidateCurve& c = s.candidates[i];
    if (i > 0) out += ",";
    out += StrPrintf(
        "{\"label\":\"%s\",\"cost\":%s,\"rows\":%s,"
        "\"curve_available\":%s,\"cost_at\":",
        JsonEscape(c.label).c_str(), Num(c.cost).c_str(), Num(c.rows).c_str(),
        c.curve_available ? "true" : "false");
    out += DoubleArrayJson(c.cost_at);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string QuantileLabel(double quantile) {
  return StrPrintf("p%.0f", quantile * 100.0);
}

void FinalizeSensitivity(PlanSensitivity* s) {
  s->stable = false;
  s->max_regret_pct = 0.0;
  s->crossover_quantile = -1.0;
  s->crossover_rival.clear();
  if (!s->available || s->candidates.empty() || s->grid.empty()) {
    if (s->verdict.empty()) {
      s->verdict = "sensitivity unavailable";
      if (!s->unavailable_reason.empty()) {
        s->verdict += " (" + s->unavailable_reason + ")";
      }
    }
    return;
  }
  const CandidateCurve& winner = s->candidates.front();
  const size_t points = std::min(s->grid.size(), winner.cost_at.size());
  bool dominates = true;
  for (size_t i = 0; i < points; ++i) {
    const double wc = winner.cost_at[i];
    double best = wc;
    std::string best_label;
    size_t best_rival = 0;
    for (size_t c = 1; c < s->candidates.size(); ++c) {
      const CandidateCurve& rival = s->candidates[c];
      if (i >= rival.cost_at.size()) continue;
      if (rival.cost_at[i] < best) {
        best = rival.cost_at[i];
        best_label = rival.label;
        best_rival = c;
      }
    }
    if (best < wc) {
      if (dominates) {
        // First grid point a rival undercuts the winner: interpolate the
        // crossing quantile between the previous (winner-optimal) grid
        // point and this one using the winning rival's own curve.
        double crossing = s->grid[i];
        if (i > 0) {
          const CandidateCurve& rival = s->candidates[best_rival];
          const double prev_gap = winner.cost_at[i - 1] - rival.cost_at[i - 1];
          const double now_gap = wc - best;
          const double denom = now_gap - prev_gap;
          if (prev_gap <= 0.0 && denom > 0.0) {
            const double f = -prev_gap / denom;
            crossing = s->grid[i - 1] + f * (s->grid[i] - s->grid[i - 1]);
          }
        }
        s->crossover_quantile = crossing;
        s->crossover_rival = best_label;
      }
      dominates = false;
      const double regret = (wc - best) / std::max(best, 1e-12) * 100.0;
      s->max_regret_pct = std::max(s->max_regret_pct, regret);
    }
  }
  s->stable = dominates;
  const std::string span = s->grid.empty()
                               ? ""
                               : QuantileLabel(s->grid.front()) + "-" +
                                     QuantileLabel(s->grid.back());
  if (s->stable) {
    s->verdict = "winner dominates at every grid point across " + span +
                 " (stable)";
  } else {
    s->verdict = StrPrintf(
        "winner within %.1f%% of per-quantile optimum across %s; "
        "crossover at %s vs %s",
        s->max_regret_pct, span.c_str(),
        QuantileLabel(s->crossover_quantile).c_str(),
        s->crossover_rival.c_str());
  }
}

PlanProvenanceStore::PlanProvenanceStore(PlanProvenanceConfig config)
    : config_(config) {}

void PlanProvenanceStore::Record(PlanProvenanceRecord record) {
  if (!config_.enabled || config_.capacity == 0) return;
  Key key{record.fingerprint, record.threshold_bits, record.estimator};
  record.sequence = next_sequence_++;
  ++stats_.recorded;
  if (record.sensitivity.available) {
    if (record.sensitivity.stable) ++stats_.stable;
    if (record.sensitivity.crossover_quantile >= 0.0) {
      ++stats_.fragile;
      last_crossover_ = record.sensitivity.crossover_quantile;
    }
  }
  records_[key] = std::move(record);
  while (records_.size() > config_.capacity) {
    // LRU by recording order: refreshing a key bumped its sequence, so
    // the minimum sequence is the least recently (re)recorded key.
    auto victim = records_.begin();
    for (auto it = records_.begin(); it != records_.end(); ++it) {
      if (it->second.sequence < victim->second.sequence) victim = it;
    }
    records_.erase(victim);
    ++stats_.evicted;
  }
}

void PlanProvenanceStore::RecordDiff(PlanDiffRecord diff) {
  if (!config_.enabled || config_.diff_capacity == 0) return;
  diff.sequence = next_sequence_++;
  ++stats_.diffs;
  diffs_.push_back(std::move(diff));
  while (diffs_.size() > config_.diff_capacity) {
    diffs_.pop_front();
    ++stats_.diffs_evicted;
  }
}

const PlanProvenanceRecord* PlanProvenanceStore::Find(
    uint64_t fingerprint) const {
  const PlanProvenanceRecord* best = nullptr;
  for (const auto& [key, record] : records_) {
    if (key.fingerprint != fingerprint) continue;
    if (best == nullptr || record.sequence > best->sequence) best = &record;
  }
  return best;
}

const PlanProvenanceRecord* PlanProvenanceStore::Latest() const {
  const PlanProvenanceRecord* best = nullptr;
  for (const auto& [key, record] : records_) {
    (void)key;
    if (best == nullptr || record.sequence > best->sequence) best = &record;
  }
  return best;
}

std::vector<const PlanProvenanceRecord*> PlanProvenanceStore::Snapshot()
    const {
  std::vector<const PlanProvenanceRecord*> out;
  out.reserve(records_.size());
  for (const auto& [key, record] : records_) {
    (void)key;
    out.push_back(&record);
  }
  std::sort(out.begin(), out.end(),
            [](const PlanProvenanceRecord* a, const PlanProvenanceRecord* b) {
              return a->sequence < b->sequence;
            });
  return out;
}

std::vector<const PlanDiffRecord*> PlanProvenanceStore::Diffs() const {
  std::vector<const PlanDiffRecord*> out;
  out.reserve(diffs_.size());
  for (const PlanDiffRecord& diff : diffs_) out.push_back(&diff);
  return out;
}

void PlanProvenanceStore::Absorb(PlanProvenanceStore&& other,
                                 const std::string& tag) {
  // Interleave the donor's records and diffs back in its own recording
  // order so the merged history reads like one chronological stream.
  std::vector<std::pair<uint64_t, bool>> order;  // (sequence, is_diff)
  for (const auto& [key, record] : other.records_) {
    (void)key;
    order.push_back({record.sequence, false});
  }
  for (const PlanDiffRecord& diff : other.diffs_) {
    order.push_back({diff.sequence, true});
  }
  std::sort(order.begin(), order.end());
  std::map<uint64_t, PlanProvenanceRecord> records_by_seq;
  for (auto& [key, record] : other.records_) {
    (void)key;
    records_by_seq.emplace(record.sequence, std::move(record));
  }
  std::map<uint64_t, PlanDiffRecord> diffs_by_seq;
  for (PlanDiffRecord& diff : other.diffs_) {
    diffs_by_seq.emplace(diff.sequence, std::move(diff));
  }
  for (const auto& [sequence, is_diff] : order) {
    if (is_diff) {
      PlanDiffRecord diff = std::move(diffs_by_seq.at(sequence));
      diff.tag = diff.tag.empty() ? tag : tag + "/" + diff.tag;
      RecordDiff(std::move(diff));
    } else {
      PlanProvenanceRecord record = std::move(records_by_seq.at(sequence));
      record.tag = record.tag.empty() ? tag : tag + "/" + record.tag;
      Record(std::move(record));
    }
    ++stats_.absorbed;
  }
  other.Clear();
}

std::string PlanProvenanceStore::ReportText() const {
  std::string out = StrPrintf(
      "plan provenance: %zu records, %zu diffs (recorded=%llu evicted=%llu "
      "fragile=%llu stable=%llu absorbed=%llu)\n",
      records_.size(), diffs_.size(),
      static_cast<unsigned long long>(stats_.recorded),
      static_cast<unsigned long long>(stats_.evicted),
      static_cast<unsigned long long>(stats_.fragile),
      static_cast<unsigned long long>(stats_.stable),
      static_cast<unsigned long long>(stats_.absorbed));
  for (const PlanProvenanceRecord* r : Snapshot()) {
    const char* badge = "-       ";
    if (r->sensitivity.available) {
      badge = r->sensitivity.stable ? "stable  " : "fragile ";
    }
    out += StrPrintf(
        "  [%s] fp=%s T=%.4g est=%s epoch=%llu plan=%s cost=%.6g%s%s\n",
        badge, FingerprintHex(r->fingerprint).c_str(),
        r->sensitivity.threshold, r->estimator.c_str(),
        static_cast<unsigned long long>(r->epoch), r->plan_label.c_str(),
        r->estimated_cost, r->tag.empty() ? "" : " tag=", r->tag.c_str());
  }
  for (const PlanDiffRecord* d : Diffs()) {
    out += StrPrintf(
        "  [diff    ] fp=%s trigger=%s epoch %llu->%llu plan %s -> %s "
        "cost %.6g -> %.6g%s%s\n",
        FingerprintHex(d->fingerprint).c_str(), d->trigger.c_str(),
        static_cast<unsigned long long>(d->old_epoch),
        static_cast<unsigned long long>(d->new_epoch), d->old_label.c_str(),
        d->new_label.c_str(), d->old_cost, d->new_cost,
        d->tag.empty() ? "" : " tag=", d->tag.c_str());
  }
  return out;
}

std::string PlanProvenanceStore::ReportFor(uint64_t fingerprint) const {
  const PlanProvenanceRecord* r = Find(fingerprint);
  if (r == nullptr) {
    return StrPrintf("whyplan: no provenance retained for fp=%s\n",
                     FingerprintHex(fingerprint).c_str());
  }
  const PlanSensitivity& s = r->sensitivity;
  std::string out = StrPrintf("whyplan fp=%s%s%s\n",
                              FingerprintHex(r->fingerprint).c_str(),
                              r->tag.empty() ? "" : " tag=", r->tag.c_str());
  out += StrPrintf(
      "  winner: %s cost=%.6g rows=%.6g epoch=%llu T=%.4g estimator=%s\n",
      r->plan_label.c_str(), r->estimated_cost, r->estimated_rows,
      static_cast<unsigned long long>(r->epoch), s.threshold,
      r->estimator.c_str());
  if (!s.available) {
    out += "  sensitivity: " + s.verdict + "\n";
  } else {
    out += "  grid:       ";
    for (double q : s.grid) out += StrPrintf(" %12s", QuantileLabel(q).c_str());
    out += "\n  selectivity:";
    for (double sel : s.selectivity) out += StrPrintf(" %12.6g", sel);
    out += "\n";
    for (size_t c = 0; c < s.candidates.size(); ++c) {
      const CandidateCurve& cand = s.candidates[c];
      out += StrPrintf("  %-12s",
                       c == 0 ? "[winner]" : StrPrintf("[#%zu]", c + 1).c_str());
      for (double cost : cand.cost_at) out += StrPrintf(" %12.6g", cost);
      out += StrPrintf("  %s%s\n", cand.label.c_str(),
                       cand.curve_available ? "" : " (flat: no curve)");
    }
    out += "  verdict: " + s.verdict + "\n";
  }
  bool any_diff = false;
  for (const PlanDiffRecord& d : diffs_) {
    if (d.fingerprint != fingerprint) continue;
    if (!any_diff) {
      out += "  diffs:\n";
      any_diff = true;
    }
    out += StrPrintf(
        "    [%s] epoch %llu->%llu plan %s -> %s cost %.6g -> %.6g "
        "(delta %+.6g) changed=%s\n",
        d.trigger.c_str(), static_cast<unsigned long long>(d.old_epoch),
        static_cast<unsigned long long>(d.new_epoch), d.old_label.c_str(),
        d.new_label.c_str(), d.old_cost, d.new_cost, d.new_cost - d.old_cost,
        d.plan_changed ? "yes" : "no");
    const size_t points = std::min(d.old_curve.size(), d.new_curve.size());
    if (points > 0 && points == d.grid.size()) {
      out += "      curve delta:";
      for (size_t i = 0; i < points; ++i) {
        out += StrPrintf(" %s=%+.6g", QuantileLabel(d.grid[i]).c_str(),
                         d.new_curve[i] - d.old_curve[i]);
      }
      out += "\n";
    }
    if (!d.new_verdict.empty()) {
      out += "      now: " + d.new_verdict + "\n";
    }
  }
  return out;
}

std::string PlanProvenanceStore::ToJson() const {
  std::string out = StrPrintf(
      "{\"plan_provenance\":{\"capacity\":%zu,\"diff_capacity\":%zu,"
      "\"stats\":{\"recorded\":%llu,\"evicted\":%llu,\"diffs\":%llu,"
      "\"diffs_evicted\":%llu,\"absorbed\":%llu,\"fragile\":%llu,"
      "\"stable\":%llu},\"records\":[",
      config_.capacity, config_.diff_capacity,
      static_cast<unsigned long long>(stats_.recorded),
      static_cast<unsigned long long>(stats_.evicted),
      static_cast<unsigned long long>(stats_.diffs),
      static_cast<unsigned long long>(stats_.diffs_evicted),
      static_cast<unsigned long long>(stats_.absorbed),
      static_cast<unsigned long long>(stats_.fragile),
      static_cast<unsigned long long>(stats_.stable));
  bool first = true;
  for (const PlanProvenanceRecord* r : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += StrPrintf(
        "{\"fingerprint\":\"%s\",\"threshold_bits\":\"%016llx\","
        "\"estimator\":\"%s\",\"epoch\":%llu,\"sequence\":%llu,"
        "\"plan\":\"%s\",\"cost\":%s,\"rows\":%s,\"tag\":\"%s\","
        "\"sensitivity\":",
        FingerprintHex(r->fingerprint).c_str(),
        static_cast<unsigned long long>(r->threshold_bits),
        JsonEscape(r->estimator).c_str(),
        static_cast<unsigned long long>(r->epoch),
        static_cast<unsigned long long>(r->sequence),
        JsonEscape(r->plan_label).c_str(), Num(r->estimated_cost).c_str(),
        Num(r->estimated_rows).c_str(), JsonEscape(r->tag).c_str());
    out += SensitivityJson(r->sensitivity);
    out += "}";
  }
  out += "],\"diffs\":[";
  first = true;
  for (const PlanDiffRecord* d : Diffs()) {
    if (!first) out += ",";
    first = false;
    out += StrPrintf(
        "{\"fingerprint\":\"%s\",\"trigger\":\"%s\",\"sequence\":%llu,"
        "\"old_epoch\":%llu,\"new_epoch\":%llu,\"old_plan\":\"%s\","
        "\"new_plan\":\"%s\",\"old_cost\":%s,\"new_cost\":%s,"
        "\"plan_changed\":%s,\"old_verdict\":\"%s\",\"new_verdict\":\"%s\","
        "\"tag\":\"%s\",\"grid\":",
        FingerprintHex(d->fingerprint).c_str(), JsonEscape(d->trigger).c_str(),
        static_cast<unsigned long long>(d->sequence),
        static_cast<unsigned long long>(d->old_epoch),
        static_cast<unsigned long long>(d->new_epoch),
        JsonEscape(d->old_label).c_str(), JsonEscape(d->new_label).c_str(),
        Num(d->old_cost).c_str(), Num(d->new_cost).c_str(),
        d->plan_changed ? "true" : "false",
        JsonEscape(d->old_verdict).c_str(),
        JsonEscape(d->new_verdict).c_str(), JsonEscape(d->tag).c_str());
    out += DoubleArrayJson(d->grid);
    out += ",\"old_curve\":" + DoubleArrayJson(d->old_curve);
    out += ",\"new_curve\":" + DoubleArrayJson(d->new_curve);
    out += "}";
  }
  out += "]}}";
  return out;
}

std::string PlanProvenanceStore::ToChromeTrace() const {
  std::vector<CounterTrack> tracks;
  uint64_t tid = 1;
  for (const PlanProvenanceRecord* r : Snapshot()) {
    const PlanSensitivity& s = r->sensitivity;
    if (!s.available) continue;
    CounterTrack track;
    track.pid = 1;
    track.tid = tid++;
    track.process_name = "plan provenance";
    track.name = StrPrintf("plancost %s T=%.4g",
                           FingerprintHex(r->fingerprint).c_str(),
                           s.threshold);
    const size_t points = s.grid.size();
    for (size_t i = 0; i < points; ++i) {
      CounterSample sample;
      sample.ts = static_cast<uint64_t>(
          std::llround(std::max(0.0, s.grid[i]) * 100.0));
      for (const CandidateCurve& cand : s.candidates) {
        if (i < cand.cost_at.size()) {
          sample.values.push_back({cand.label, cand.cost_at[i]});
        }
      }
      if (!sample.values.empty()) track.samples.push_back(std::move(sample));
    }
    if (!track.samples.empty()) tracks.push_back(std::move(track));
  }
  return obs::ToChromeTrace({}, tracks);
}

void PlanProvenanceStore::PublishMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr || !config_.enabled) return;
  const auto sync = [metrics](const char* name, uint64_t value) {
    Counter* counter = metrics->GetCounter(name);
    counter->Increment(value - counter->value());
  };
  sync("optimizer.provenance.recorded", stats_.recorded);
  sync("optimizer.provenance.evicted", stats_.evicted);
  sync("optimizer.provenance.diffs", stats_.diffs);
  sync("optimizer.provenance.diffs_evicted", stats_.diffs_evicted);
  sync("optimizer.provenance.absorbed", stats_.absorbed);
  sync("optimizer.sensitivity.fragile_plans", stats_.fragile);
  sync("optimizer.sensitivity.stable_plans", stats_.stable);
  metrics->GetGauge("optimizer.provenance.records")
      ->Set(static_cast<double>(records_.size()));
  metrics->GetGauge("optimizer.sensitivity.crossover_quantile")
      ->Set(last_crossover_);
}

void PlanProvenanceStore::Clear() {
  records_.clear();
  diffs_.clear();
  stats_ = PlanProvenanceStats{};
  next_sequence_ = 0;
  last_crossover_ = -1.0;
}

}  // namespace obs
}  // namespace robustqo
