// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Compile-time gate for the observability layer. Instrumentation call
// sites are wrapped in RQO_IF_OBS(sink) so that a -DROBUSTQO_OBS=OFF build
// (ROBUSTQO_OBS_ENABLED=0) compiles them into an `if constexpr (false)`
// branch: the code still type-checks in both configurations, but the
// disabled build emits no instructions for it — bench numbers stay honest.
//
// The obs classes themselves (MetricsRegistry, Tracer) are NOT gated; they
// always work when called directly. Only the hot-path hooks inside the
// optimizer, estimators and executor disappear in a disabled build.

#ifndef ROBUSTQO_OBS_OBS_H_
#define ROBUSTQO_OBS_OBS_H_

#ifndef ROBUSTQO_OBS_ENABLED
#define ROBUSTQO_OBS_ENABLED 1
#endif

/// Guards an instrumentation block on a nullable sink pointer. Enabled
/// build: `if (sink != nullptr) { ... }` — the runtime opt-out. Disabled
/// build: `if constexpr (false) { ... }` — the block is type-checked but
/// produces no code, so attribute formatting etc. is never evaluated.
#if ROBUSTQO_OBS_ENABLED
#define RQO_IF_OBS(sink) if ((sink) != nullptr)
#else
#define RQO_IF_OBS(sink) if constexpr (false)
#endif

#endif  // ROBUSTQO_OBS_OBS_H_
