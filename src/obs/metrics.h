// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Metrics registry: named counters, gauges and fixed-bucket histograms,
// snapshot-able to deterministic JSON. Two scopes are conventional:
// MetricsRegistry::Global() for process-wide totals, and short-lived
// per-query registries (EXPLAIN ANALYZE creates one per statement).
//
// Hot-path discipline: look the metric pointer up ONCE per scope (query,
// Optimize() run, ...) and increment through the pointer — Get* does a map
// lookup; Increment/Set/Observe are a handful of instructions. Instances
// are not thread-safe; give each worker its own registry and merge
// snapshots (the planned sharding model) rather than sharing one.

#ifndef ROBUSTQO_OBS_METRICS_H_
#define ROBUSTQO_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace robustqo {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: observations are counted into the first bucket
/// whose upper bound is >= the value; one implicit overflow bucket catches
/// the rest. Bounds are fixed at registration — no allocation on Observe.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Inclusive bucket upper bounds (the overflow bucket is implicit).
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (last=overflow).
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  void Reset();

 private:
  std::vector<double> upper_bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Name -> metric registry. Metric pointers are stable for the registry's
/// lifetime (safe to cache across calls).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, registering it on first use. A histogram's
  /// bounds are taken from the first registration; later calls ignore
  /// `upper_bounds`.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& upper_bounds);

  /// Zeroes every metric, keeping registrations (and cached pointers)
  /// valid.
  void Reset();

  /// Deterministic JSON snapshot: metrics sorted by name, values formatted
  /// with fixed precision. Byte-identical across runs that recorded the
  /// same values.
  std::string ToJson() const;

  /// Process-wide registry for system totals.
  static MetricsRegistry* Global();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace robustqo

#endif  // ROBUSTQO_OBS_METRICS_H_
