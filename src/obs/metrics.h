// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Metrics registry: named counters, gauges and fixed-bucket histograms,
// snapshot-able to deterministic JSON. Two scopes are conventional:
// MetricsRegistry::Global() for process-wide totals, and short-lived
// per-query registries (EXPLAIN ANALYZE creates one per statement).
//
// Hot-path discipline: look the metric pointer up ONCE per scope (query,
// Optimize() run, ...) and increment through the pointer — Get* does a map
// lookup; Increment/Set/Observe are a handful of instructions. Instances
// are not thread-safe; give each worker its own registry and merge
// snapshots (the planned sharding model) rather than sharing one.

#ifndef ROBUSTQO_OBS_METRICS_H_
#define ROBUSTQO_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/quantile_sketch.h"

namespace robustqo {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: observations are counted into the first bucket
/// whose upper bound is >= the value; one implicit overflow bucket catches
/// the rest. Bounds are fixed at registration — no allocation on Observe.
///
/// Non-finite observations never poison the aggregate: NaN goes into a
/// dedicated counter (outside count() and the buckets), ±inf land in the
/// overflow/first bucket respectively, and sum() only accumulates finite
/// values.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  /// Bucketed observations (everything except NaN).
  uint64_t count() const { return count_; }
  /// NaN observations — the dedicated "invalid" bucket.
  uint64_t nan_count() const { return nan_count_; }
  /// Sum of the finite observations.
  double sum() const { return sum_; }
  /// Inclusive bucket upper bounds (the overflow bucket is implicit).
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (last=overflow).
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  void Reset();

 private:
  friend class MetricsRegistry;  // MergeFrom

  std::vector<double> upper_bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t nan_count_ = 0;
  double sum_ = 0.0;
};

/// Name -> metric registry. Metric pointers are stable for the registry's
/// lifetime (safe to cache across calls).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, registering it on first use. A histogram's
  /// bounds are taken from the first registration; later calls ignore
  /// `upper_bounds`.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& upper_bounds);
  /// A sketch's accuracy is taken from the first registration; later calls
  /// ignore `relative_accuracy`.
  QuantileSketch* GetSketch(const std::string& name,
                            double relative_accuracy = 0.01);

  /// Zeroes every metric, keeping registrations (and cached pointers)
  /// valid.
  void Reset();

  /// Sums `other` into this registry, the reduction step of the per-worker
  /// sharding model: counters and same-bounded histograms add, sketches
  /// merge, gauges take the maximum (the only merge that is independent of
  /// how observations were partitioned across workers). Merging histograms
  /// of non-integral values can perturb the last bits of sum() depending on
  /// the partition; every other merged value is partition-independent.
  void MergeFrom(const MetricsRegistry& other);

  /// Deterministic JSON snapshot: metrics sorted by name, values formatted
  /// with fixed precision. Byte-identical across runs that recorded the
  /// same values.
  std::string ToJson() const;

  /// Process-wide registry for system totals.
  static MetricsRegistry* Global();

  // Read-only iteration, sorted by name (exporters, tests).
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::unique_ptr<QuantileSketch>>& sketches()
      const {
    return sketches_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<QuantileSketch>> sketches_;
};

}  // namespace obs
}  // namespace robustqo

#endif  // ROBUSTQO_OBS_METRICS_H_
