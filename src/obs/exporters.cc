#include "obs/exporters.h"

#include <cmath>
#include <map>

#include "util/string_util.h"

namespace robustqo {
namespace obs {

namespace {

// OpenMetrics sample values: fixed precision, spec spellings for the
// non-finite values.
std::string OmValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return StrPrintf("%.9g", value);
}

std::string OmValue(uint64_t value) {
  return StrPrintf("%llu", static_cast<unsigned long long>(value));
}

void EmitFamily(std::string* out, const std::string& name, const char* type) {
  *out += "# TYPE " + name + " " + type + "\n";
}

}  // namespace

std::string OpenMetricsName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string OpenMetricsLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ToOpenMetrics(const MetricsRegistry& registry,
                          const std::string& prefix) {
  std::string out;
  for (const auto& [name, c] : registry.counters()) {
    const std::string om = prefix + OpenMetricsName(name);
    EmitFamily(&out, om, "counter");
    out += om + "_total " + OmValue(c->value()) + "\n";
  }
  for (const auto& [name, g] : registry.gauges()) {
    const std::string om = prefix + OpenMetricsName(name);
    EmitFamily(&out, om, "gauge");
    out += om + " " + OmValue(g->value()) + "\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string om = prefix + OpenMetricsName(name);
    EmitFamily(&out, om, "histogram");
    uint64_t cumulative = 0;
    const std::vector<double>& bounds = h->upper_bounds();
    const std::vector<uint64_t>& counts = h->bucket_counts();
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += om + "_bucket{le=\"" + OmValue(bounds[i]) + "\"} " +
             OmValue(cumulative) + "\n";
    }
    cumulative += counts.back();  // the implicit overflow bucket
    out += om + "_bucket{le=\"+Inf\"} " + OmValue(cumulative) + "\n";
    out += om + "_sum " + OmValue(h->sum()) + "\n";
    out += om + "_count " + OmValue(h->count()) + "\n";
    // The dedicated NaN bucket rides as a sibling counter family so the
    // histogram series stay internally consistent (+Inf bucket == count).
    EmitFamily(&out, om + "_nan", "counter");
    out += om + "_nan_total " + OmValue(h->nan_count()) + "\n";
  }
  for (const auto& [name, s] : registry.sketches()) {
    const std::string om = prefix + OpenMetricsName(name);
    EmitFamily(&out, om, "summary");
    for (double q : {0.5, 0.9, 0.99}) {
      out += om + "{quantile=\"" + OmValue(q) + "\"} " +
             OmValue(s->Quantile(q)) + "\n";
    }
    out += om + "_sum " + OmValue(s->ApproxSum()) + "\n";
    out += om + "_count " + OmValue(s->count()) + "\n";
    EmitFamily(&out, om + "_nan", "counter");
    out += om + "_nan_total " + OmValue(s->nan_count()) + "\n";
  }
  out += "# EOF\n";
  return out;
}

namespace {

/// Renders one record stream under (pid, tid). Span ends carry no
/// name/category of their own; the format wants the matching "E" to repeat
/// the "B"'s, so they are remembered per span id. With `emit_ids` the span
/// id rides along on B/E records (the lane exporter's contract with
/// scripts/check_trace_json.py); the single-tracer rendering omits it so
/// its pinned goldens stay stable.
void AppendChromeEvents(std::string* out, bool* first,
                        const std::vector<TraceEvent>& events, uint64_t pid,
                        uint64_t tid, bool use_wall_time, bool emit_ids) {
  std::map<uint64_t, std::pair<std::string, std::string>> span_names;
  for (const TraceEvent& e : events) {
    const char* phase = "i";
    std::string name = e.name;
    std::string category = e.category.empty() ? "trace" : e.category;
    if (e.kind == TraceKind::kSpanBegin) {
      phase = "B";
      span_names[e.span_id] = {name, category};
    } else if (e.kind == TraceKind::kSpanEnd) {
      phase = "E";
      const auto it = span_names.find(e.span_id);
      if (it != span_names.end()) {
        name = it->second.first;
        category = it->second.second;
      }
    }
    if (!*first) *out += ",";
    *first = false;
    *out += "{\"name\":\"" + JsonEscape(name) + "\"";
    *out += ",\"cat\":\"" + JsonEscape(category) + "\"";
    *out += StrPrintf(",\"ph\":\"%s\"", phase);
    // One logical-clock tick renders as one microsecond on the timeline.
    if (use_wall_time) {
      *out += StrPrintf(",\"ts\":%.3f", e.wall_micros);
    } else {
      *out += StrPrintf(",\"ts\":%llu", static_cast<unsigned long long>(e.seq));
    }
    *out += StrPrintf(",\"pid\":%llu,\"tid\":%llu",
                      static_cast<unsigned long long>(pid),
                      static_cast<unsigned long long>(tid));
    if (emit_ids && e.kind != TraceKind::kEvent) {
      *out += StrPrintf(",\"id\":\"0x%llx\"",
                        static_cast<unsigned long long>(e.span_id));
    }
    if (e.kind == TraceKind::kEvent) *out += ",\"s\":\"t\"";
    if (!e.attrs.empty()) {
      *out += ",\"args\":{";
      for (size_t a = 0; a < e.attrs.size(); ++a) {
        if (a > 0) *out += ",";
        *out += "\"";
        *out += JsonEscape(e.attrs[a].first);
        *out += "\":\"";
        *out += JsonEscape(e.attrs[a].second);
        *out += "\"";
      }
      *out += "}";
    }
    *out += "}";
  }
}

/// A process_name / thread_name metadata record.
void AppendChromeMetadata(std::string* out, bool* first, const char* kind,
                          uint64_t pid, uint64_t tid,
                          const std::string& value) {
  if (!*first) *out += ",";
  *first = false;
  *out += StrPrintf(
      "{\"name\":\"%s\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,"
      "\"pid\":%llu,\"tid\":%llu,\"args\":{\"name\":\"%s\"}}",
      kind, static_cast<unsigned long long>(pid),
      static_cast<unsigned long long>(tid), JsonEscape(value).c_str());
}

}  // namespace

std::string ToChromeTrace(const std::vector<TraceEvent>& events,
                          bool use_wall_time) {
  std::string out = "[";
  bool first = true;
  AppendChromeEvents(&out, &first, events, /*pid=*/1, /*tid=*/1,
                     use_wall_time, /*emit_ids=*/false);
  out += "]";
  return out;
}

std::string ToChromeTrace(const std::vector<TraceLane>& lanes,
                          bool use_wall_time) {
  return ToChromeTrace(lanes, {}, use_wall_time);
}

std::string ToChromeTrace(const std::vector<TraceLane>& lanes,
                          const std::vector<CounterTrack>& counters,
                          bool use_wall_time) {
  std::string out = "[";
  bool first = true;
  // Metadata first: one process_name per distinct pid (first lane wins,
  // then counter tracks for pids no lane named), then a thread_name per
  // lane.
  std::map<uint64_t, bool> named_pids;
  for (const TraceLane& lane : lanes) {
    if (!lane.process_name.empty() && !named_pids[lane.pid]) {
      named_pids[lane.pid] = true;
      AppendChromeMetadata(&out, &first, "process_name", lane.pid, 0,
                           lane.process_name);
    }
    if (!lane.thread_name.empty()) {
      AppendChromeMetadata(&out, &first, "thread_name", lane.pid, lane.tid,
                           lane.thread_name);
    }
  }
  for (const CounterTrack& track : counters) {
    if (!track.process_name.empty() && !named_pids[track.pid]) {
      named_pids[track.pid] = true;
      AppendChromeMetadata(&out, &first, "process_name", track.pid, 0,
                           track.process_name);
    }
  }
  for (const TraceLane& lane : lanes) {
    AppendChromeEvents(&out, &first, lane.events, lane.pid, lane.tid,
                       use_wall_time, /*emit_ids=*/true);
  }
  for (const CounterTrack& track : counters) {
    for (const CounterSample& sample : track.samples) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"" + JsonEscape(track.name) + "\"";
      out += ",\"cat\":\"" + JsonEscape(track.category) + "\"";
      out += StrPrintf(",\"ph\":\"C\",\"ts\":%llu",
                       static_cast<unsigned long long>(sample.ts));
      out += StrPrintf(",\"pid\":%llu,\"tid\":%llu",
                       static_cast<unsigned long long>(track.pid),
                       static_cast<unsigned long long>(track.tid));
      out += ",\"args\":{";
      for (size_t v = 0; v < sample.values.size(); ++v) {
        if (v > 0) out += ",";
        const double value = sample.values[v].second;
        out += "\"" + JsonEscape(sample.values[v].first) + "\":";
        out += StrPrintf("%.9g", std::isfinite(value) ? value : 0.0);
      }
      out += "}}";
    }
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace robustqo
