// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Structured trace recorder: typed span/event records ordered by a
// deterministic logical clock (a per-tracer sequence number), with wall
// time carried alongside for humans. Spans nest via an explicit stack, so
// the exec spans of one query form a tree isomorphic to the plan tree —
// which is exactly what core::PlanAnnotator exploits to merge actual row
// counts back onto the plan for EXPLAIN ANALYZE.
//
// The tracer is a runtime-nullable sink: instrumented code holds a
// `Tracer*` that is usually nullptr (no events, a pointer test of cost),
// and call sites are additionally gated by RQO_IF_OBS so a
// -DROBUSTQO_OBS=OFF build compiles them away entirely.

#ifndef ROBUSTQO_OBS_TRACE_H_
#define ROBUSTQO_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/stopwatch.h"

namespace robustqo {
namespace obs {

/// Ordered attribute list; values are preformatted strings so rendering is
/// trivially deterministic.
using TraceAttrs = std::vector<std::pair<std::string, std::string>>;

/// Attribute-value formatting helpers (fixed formats keep JSON stable).
std::string AttrU64(uint64_t value);
std::string AttrF(double value);

enum class TraceKind {
  kSpanBegin,  ///< opens span `span_id` under `parent_id`
  kSpanEnd,    ///< closes span `span_id`, carrying its result attributes
  kEvent,      ///< instantaneous event inside the current span
};

const char* TraceKindName(TraceKind kind);

/// One trace record.
struct TraceEvent {
  uint64_t seq = 0;        ///< logical clock: unique, strictly increasing
  TraceKind kind = TraceKind::kEvent;
  uint64_t span_id = 0;    ///< span opened/closed, or enclosing span (0=root)
  uint64_t parent_id = 0;  ///< enclosing span at record time (0 = root)
  std::string category;    ///< subsystem: "optimizer", "estimator", "exec"
  std::string name;        ///< e.g. "estimate", "HashJoin(a = b)"
  double wall_micros = 0;  ///< real time since tracer creation (non-deterministic)
  TraceAttrs attrs;
};

/// Append-only trace recorder. Not thread-safe; use one per query (or per
/// worker) and merge offline.
class Tracer {
 public:
  /// `clock` feeds the wall_micros column only (logical order never depends
  /// on it); nullptr means the process monotonic clock.
  explicit Tracer(const Clock* clock = nullptr);

  /// Opens a span and returns its id (ids start at 1; 0 means "root").
  uint64_t BeginSpan(std::string category, std::string name,
                     TraceAttrs attrs = {});

  /// Closes `span_id`, attaching result attributes (e.g. rows produced).
  /// Spans must close in LIFO order.
  void EndSpan(uint64_t span_id, TraceAttrs attrs = {});

  /// Records an instantaneous event inside the innermost open span.
  void Event(std::string category, std::string name, TraceAttrs attrs = {});

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Moves the records out, leaving the tracer cleared (logical clock and
  /// span ids reset). For handing a finished per-request trace to a
  /// retention buffer without copying.
  std::vector<TraceEvent> ReleaseEvents();

  /// Next logical-clock value (== number of records so far).
  uint64_t logical_clock() const { return next_seq_; }

  /// Innermost open span id (0 when none).
  uint64_t current_span() const {
    return stack_.empty() ? 0 : stack_.back();
  }

  /// Drops all records and resets the logical clock (span ids keep
  /// increasing so ids stay unique across a tracer's lifetime).
  void Clear();

  /// JSON array of records ordered by the logical clock. Wall-time fields
  /// are excluded by default so two runs with the same seed serialize
  /// byte-identically; pass true for human-facing dumps.
  std::string ToJson(bool include_wall_time = false) const;

 private:
  TraceEvent MakeRecord(TraceKind kind, std::string category,
                        std::string name, TraceAttrs attrs);

  Stopwatch wall_;
  std::vector<TraceEvent> events_;
  std::vector<uint64_t> stack_;  ///< open span ids, innermost last
  uint64_t next_seq_ = 0;
  uint64_t next_span_id_ = 1;
};

/// JSON array of trace records ordered as given — the rendering behind
/// Tracer::ToJson, usable on any event vector (e.g. a retained trace).
std::string TraceEventsToJson(const std::vector<TraceEvent>& events,
                              bool include_wall_time = false);

/// RAII span: begins on construction (when the tracer is non-null), ends on
/// destruction with any attributes added in between.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, std::string category, std::string name,
            TraceAttrs attrs = {});
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Adds an attribute to the span-end record.
  void Attr(std::string key, std::string value);

  uint64_t span_id() const { return span_id_; }

 private:
  Tracer* tracer_;
  uint64_t span_id_ = 0;
  TraceAttrs end_attrs_;
};

}  // namespace obs
}  // namespace robustqo

#endif  // ROBUSTQO_OBS_TRACE_H_
