#include "obs/quantile_sketch.h"

#include <cmath>
#include <cstdlib>

#include "util/macros.h"

namespace robustqo {
namespace obs {

namespace {

// Exponentiation by squaring: a fixed IEEE multiply sequence, so bucket
// representatives are identical wherever the sketch is rendered.
double PowInt(double base, uint32_t exponent) {
  double result = 1.0;
  double b = base;
  while (exponent != 0) {
    if (exponent & 1u) result *= b;
    b *= b;
    exponent >>= 1;
  }
  return result;
}

// |v| below this collapses into the zero bucket, bounding the index range.
constexpr double kMinMagnitude = 1e-12;

}  // namespace

QuantileSketch::QuantileSketch(double relative_accuracy)
    : relative_accuracy_(relative_accuracy),
      gamma_((1.0 + relative_accuracy) / (1.0 - relative_accuracy)),
      log_gamma_(std::log(gamma_)) {
  RQO_CHECK_MSG(relative_accuracy > 0.0 && relative_accuracy < 1.0,
                "sketch accuracy must be in (0, 1)");
}

void QuantileSketch::Observe(double value) {
  count_ += 1;
  if (std::isnan(value)) {
    nan_count_ += 1;
    return;
  }
  if (std::isinf(value)) {
    (value > 0 ? pos_inf_count_ : neg_inf_count_) += 1;
    return;
  }
  const double magnitude = std::fabs(value);
  if (magnitude < kMinMagnitude) {
    zero_count_ += 1;
    return;
  }
  const int32_t index =
      static_cast<int32_t>(std::ceil(std::log(magnitude) / log_gamma_));
  (value > 0 ? positive_ : negative_)[index] += 1;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  RQO_CHECK_MSG(relative_accuracy_ == other.relative_accuracy_,
                "cannot merge sketches with different accuracies");
  for (const auto& [index, n] : other.positive_) positive_[index] += n;
  for (const auto& [index, n] : other.negative_) negative_[index] += n;
  zero_count_ += other.zero_count_;
  nan_count_ += other.nan_count_;
  pos_inf_count_ += other.pos_inf_count_;
  neg_inf_count_ += other.neg_inf_count_;
  count_ += other.count_;
}

double QuantileSketch::BucketValue(int32_t index) const {
  const double power = PowInt(gamma_, static_cast<uint32_t>(std::abs(index)));
  const double upper = index >= 0 ? power : 1.0 / power;
  // Geometric midpoint of the bucket (upper/gamma, upper].
  return upper * 2.0 / (1.0 + gamma_);
}

double QuantileSketch::Quantile(double q) const {
  const uint64_t rankable = count_ - nan_count_;
  if (rankable == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The rank-th smallest (0-based), ranks ordered
  // -inf < negatives < 0 < positives < +inf.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(rankable - 1));
  if (rank >= rankable) rank = rankable - 1;

  if (rank < neg_inf_count_) return -HUGE_VAL;
  rank -= neg_inf_count_;
  // Negatives: most negative first = descending |v| bucket index.
  for (auto it = negative_.rbegin(); it != negative_.rend(); ++it) {
    if (rank < it->second) return -BucketValue(it->first);
    rank -= it->second;
  }
  if (rank < zero_count_) return 0.0;
  rank -= zero_count_;
  for (const auto& [index, n] : positive_) {
    if (rank < n) return BucketValue(index);
    rank -= n;
  }
  return HUGE_VAL;
}

double QuantileSketch::ApproxSum() const {
  double sum = 0.0;
  for (const auto& [index, n] : negative_) {
    sum -= BucketValue(index) * static_cast<double>(n);
  }
  for (const auto& [index, n] : positive_) {
    sum += BucketValue(index) * static_cast<double>(n);
  }
  return sum;
}

void QuantileSketch::Reset() {
  positive_.clear();
  negative_.clear();
  zero_count_ = 0;
  nan_count_ = 0;
  pos_inf_count_ = 0;
  neg_inf_count_ = 0;
  count_ = 0;
}

}  // namespace obs
}  // namespace robustqo
