#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace obs {

namespace {

// Fixed-precision double used in JSON so snapshots are stable and short.
std::string JsonNumber(double value) { return StrPrintf("%.9g", value); }

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  RQO_CHECK_MSG(!upper_bounds_.empty(), "histogram needs >= 1 bucket bound");
  RQO_CHECK_MSG(
      std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()) &&
          std::adjacent_find(upper_bounds_.begin(), upper_bounds_.end()) ==
              upper_bounds_.end(),
      "histogram bounds must be strictly increasing");
}

void Histogram::Observe(double value) {
  // NaN compares false against every bound, so it must never reach
  // lower_bound; it counts into its own bucket instead. ±inf order
  // correctly (below the first / above the last bound) but are excluded
  // from the sum so one bad observation cannot poison the aggregate.
  if (std::isnan(value)) {
    nan_count_ += 1;
    return;
  }
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  counts_[static_cast<size_t>(it - upper_bounds_.begin())] += 1;
  count_ += 1;
  if (std::isfinite(value)) sum_ += value;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  nan_count_ = 0;
  sum_ = 0.0;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& upper_bounds) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(upper_bounds);
  return slot.get();
}

QuantileSketch* MetricsRegistry::GetSketch(const std::string& name,
                                           double relative_accuracy) {
  auto& slot = sketches_[name];
  if (slot == nullptr) slot = std::make_unique<QuantileSketch>(relative_accuracy);
  return slot.get();
}

void MetricsRegistry::Reset() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, s] : sketches_) s->Reset();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    GetCounter(name)->Increment(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge* mine = GetGauge(name);
    mine->Set(std::max(mine->value(), g->value()));
  }
  for (const auto& [name, h] : other.histograms_) {
    Histogram* mine = GetHistogram(name, h->upper_bounds());
    RQO_CHECK_MSG(mine->upper_bounds() == h->upper_bounds(),
                  "cannot merge histograms with different bounds");
    for (size_t i = 0; i < h->counts_.size(); ++i) {
      mine->counts_[i] += h->counts_[i];
    }
    mine->count_ += h->count_;
    mine->nan_count_ += h->nan_count_;
    mine->sum_ += h->sum_;
  }
  for (const auto& [name, s] : other.sketches_) {
    GetSketch(name, s->relative_accuracy())->Merge(*s);
  }
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += StrPrintf("%s\"%s\":%llu", first ? "" : ",",
                     JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(c->value()));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += StrPrintf("%s\"%s\":%s", first ? "" : ",",
                     JsonEscape(name).c_str(),
                     JsonNumber(g->value()).c_str());
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::vector<std::string> bounds;
    for (double b : h->upper_bounds()) bounds.push_back(JsonNumber(b));
    std::vector<std::string> counts;
    for (uint64_t c : h->bucket_counts()) {
      counts.push_back(StrPrintf("%llu", static_cast<unsigned long long>(c)));
    }
    out += StrPrintf(
        "%s\"%s\":{\"count\":%llu,\"nan\":%llu,\"sum\":%s,\"bounds\":[%s],"
        "\"counts\":[%s]}",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<unsigned long long>(h->count()),
        static_cast<unsigned long long>(h->nan_count()),
        JsonNumber(h->sum()).c_str(), StrJoin(bounds, ",").c_str(),
        StrJoin(counts, ",").c_str());
    first = false;
  }
  out += "},\"sketches\":{";
  first = true;
  for (const auto& [name, s] : sketches_) {
    out += StrPrintf(
        "%s\"%s\":{\"count\":%llu,\"nan\":%llu,\"approx_sum\":%s,"
        "\"p50\":%s,\"p90\":%s,\"p99\":%s}",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<unsigned long long>(s->count()),
        static_cast<unsigned long long>(s->nan_count()),
        JsonNumber(s->ApproxSum()).c_str(),
        JsonNumber(s->Quantile(0.5)).c_str(),
        JsonNumber(s->Quantile(0.9)).c_str(),
        JsonNumber(s->Quantile(0.99)).c_str());
    first = false;
  }
  out += "}}";
  return out;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return &registry;
}

}  // namespace obs
}  // namespace robustqo
