// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// EstimationQualityMonitor: watches cardinality-estimation quality drift
// over a long workload. Every executed query feeds back one or more
// (fingerprint, estimated rows, actual rows, confidence threshold)
// observations — the fingerprint is the canonical predicate fingerprint
// (perf/fingerprint.h) the estimator keyed its caches with, so repeated
// shapes accumulate into one profile no matter how the workload phrases
// them.
//
// Per fingerprint the monitor maintains:
//   * a cumulative q-error quantile sketch (p50/p90/p99) plus the exact
//     maximum;
//   * posterior-calibration tallies: for estimates produced by inverting
//     the Beta posterior at the T% confidence threshold, the bound "held"
//     when the actual came in at or under the estimate — over a healthy
//     workload the hit-rate should track T;
//   * a drift detector comparing the median q-error of a trailing window
//     against the median over the profile's baseline (first) window. A
//     fingerprint whose recent median regresses by `drift_factor` or more
//     is flagged — the signal that data moved underneath stale statistics.
//
// The monitor is plain deterministic state (no clocks, no allocation
// surprises); it lives in obs so the estimator layer above can stay
// ignorant of it. The join from EXPLAIN ANALYZE reports into observations
// lives in workload/quality_report.h.

#ifndef ROBUSTQO_OBS_QUALITY_MONITOR_H_
#define ROBUSTQO_OBS_QUALITY_MONITOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/quantile_sketch.h"

namespace robustqo {
namespace obs {

/// One piece of execution feedback for a fingerprinted estimate.
struct QualityObservation {
  uint64_t fingerprint = 0;
  /// Human-readable identity, first occurrence wins (e.g. "tables :: pred").
  std::string label;
  double estimated_rows = 0.0;
  double actual_rows = 0.0;
  /// The T at which the posterior was inverted; 0 = not a confidence-bound
  /// estimate (no calibration tally).
  double confidence_threshold = 0.0;
};

struct QualityMonitorConfig {
  /// Observations forming a profile's frozen baseline window.
  size_t baseline_window = 32;
  /// Trailing observations compared against the baseline.
  size_t recent_window = 32;
  /// Flag when recent median q-error >= drift_factor * baseline median.
  double drift_factor = 4.0;
  /// Minimum observations in each window before drift is evaluated.
  size_t min_observations = 8;
};

/// Snapshot of one fingerprint's profile.
struct FingerprintQuality {
  uint64_t fingerprint = 0;
  std::string label;
  uint64_t observations = 0;
  double q_p50 = 0.0;
  double q_p90 = 0.0;
  double q_p99 = 0.0;
  double q_max = 0.0;
  uint64_t bound_checks = 0;
  uint64_t bound_holds = 0;
  /// bound_holds / bound_checks (0 when never checked).
  double bound_hit_rate = 0.0;
  /// Mean confidence threshold over the checked estimates — the value the
  /// hit-rate should track.
  double mean_threshold = 0.0;
  double baseline_median_q = 0.0;
  double recent_median_q = 0.0;
  /// recent / baseline median (0 until both windows are evaluable).
  double drift_ratio = 0.0;
  bool drifted = false;
};

class EstimationQualityMonitor {
 public:
  explicit EstimationQualityMonitor(QualityMonitorConfig config = {});

  void Record(const QualityObservation& observation);

  uint64_t observation_count() const { return observation_count_; }
  size_t fingerprint_count() const { return profiles_.size(); }

  /// Per-fingerprint snapshots ordered by fingerprint (deterministic).
  std::vector<FingerprintQuality> Snapshot() const;
  /// The flagged subset of Snapshot().
  std::vector<FingerprintQuality> Drifted() const;

  /// Aligned text drift report (the shell's `.quality`).
  std::string ReportText() const;
  /// Deterministic JSON rendering of Snapshot().
  std::string ReportJson() const;

  /// Publishes the `estimator.quality.*` family into `metrics`: gauges for
  /// fingerprint/observation/drift totals and calibration tallies, plus the
  /// merged q-error sketch. Idempotent — safe to call after every query.
  void PublishMetrics(MetricsRegistry* metrics) const;

  void Reset();

 private:
  struct Profile {
    std::string label;
    uint64_t observations = 0;
    QuantileSketch q_sketch;
    double q_max = 0.0;
    uint64_t bound_checks = 0;
    uint64_t bound_holds = 0;
    double threshold_sum = 0.0;
    std::vector<double> baseline;  // first baseline_window q-errors
    std::deque<double> recent;     // trailing recent_window q-errors
  };

  FingerprintQuality Summarize(uint64_t fingerprint,
                               const Profile& profile) const;

  QualityMonitorConfig config_;
  std::map<uint64_t, Profile> profiles_;
  uint64_t observation_count_ = 0;
};

}  // namespace obs
}  // namespace robustqo

#endif  // ROBUSTQO_OBS_QUALITY_MONITOR_H_
