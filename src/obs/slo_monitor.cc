#include "obs/slo_monitor.h"

#include <algorithm>
#include <vector>

#include "util/string_util.h"

namespace robustqo {
namespace obs {

SloMonitor::SloMonitor(SloMonitorConfig config)
    : config_(config), global_(config.sketch_accuracy) {}

void SloMonitor::ConfigureCharging(double wave_delay_seconds,
                                   double plan_charge_seconds) {
  config_.wave_delay_seconds = wave_delay_seconds;
  config_.plan_charge_seconds = plan_charge_seconds;
}

SloMonitor::Scope* SloMonitor::MutableSession(const std::string& label) {
  auto it = sessions_.find(label);
  if (it == sessions_.end()) {
    it = sessions_.emplace(label, Scope(config_.sketch_accuracy)).first;
  }
  return &it->second;
}

SloMonitor::Scope* SloMonitor::MutableFingerprint(uint64_t fingerprint) {
  auto it = fingerprints_.find(fingerprint);
  if (it == fingerprints_.end()) {
    it = fingerprints_.emplace(fingerprint, Scope(config_.sketch_accuracy))
             .first;
  }
  return &it->second;
}

void SloMonitor::RecordInto(Scope* scope, const SloObservation& observation,
                            double queue_wait, double service, double regret,
                            double ratio) {
  ++scope->observed;
  scope->queue_wait.Observe(queue_wait);
  if (config_.queue_wait_breach_seconds > 0.0 &&
      queue_wait > config_.queue_wait_breach_seconds) {
    ++scope->breach_queue_wait;
  }
  if (observation.failed) {
    ++scope->failed;
    return;
  }
  scope->service.Observe(service);
  scope->regret.Observe(regret);
  if (regret > 0.0) ++scope->regret_positive;
  scope->worst_regret_ratio = std::max(scope->worst_regret_ratio, ratio);
  if (config_.service_breach_seconds > 0.0 &&
      service > config_.service_breach_seconds) {
    ++scope->breach_service;
  }
  if (config_.regret_breach_seconds > 0.0 &&
      regret > config_.regret_breach_seconds) {
    ++scope->breach_regret;
  }
}

void SloMonitor::Record(const SloObservation& observation) {
  const double queue_wait = QueueWaitSeconds(observation.queue_waves);
  const double service =
      ServiceSeconds(observation.actual_seconds, observation.cache_hit);
  // Realized regret: how far the execution overshot the plan's promise.
  // An actual below the estimate is zero regret, not negative — the
  // robust choice delivered what it advertised (or better).
  const double regret = observation.failed
                            ? 0.0
                            : std::max(0.0, observation.actual_seconds -
                                                observation.estimated_seconds);
  const double ratio =
      (observation.failed || observation.estimated_seconds <= 0.0)
          ? 0.0
          : observation.actual_seconds / observation.estimated_seconds;
  RecordInto(&global_, observation, queue_wait, service, regret, ratio);
  RecordInto(MutableSession(observation.session_label), observation,
             queue_wait, service, regret, ratio);
  RecordInto(MutableFingerprint(observation.fingerprint), observation,
             queue_wait, service, regret, ratio);
}

const SloMonitor::Scope* SloMonitor::SessionScope(
    const std::string& label) const {
  auto it = sessions_.find(label);
  return it == sessions_.end() ? nullptr : &it->second;
}

const SloMonitor::Scope* SloMonitor::FingerprintScope(
    uint64_t fingerprint) const {
  auto it = fingerprints_.find(fingerprint);
  return it == fingerprints_.end() ? nullptr : &it->second;
}

std::vector<uint64_t> SloMonitor::TrackedFingerprints() const {
  std::vector<uint64_t> fingerprints;
  fingerprints.reserve(fingerprints_.size());
  for (const auto& [fingerprint, scope] : fingerprints_) {
    fingerprints.push_back(fingerprint);
  }
  return fingerprints;
}

namespace {

std::string QuantileLine(const char* label, const QuantileSketch& sketch) {
  return StrPrintf(
      "  %-10s (simulated s): p50=%.6f p95=%.6f p99=%.6f n=%llu\n", label,
      sketch.Quantile(0.5), sketch.Quantile(0.95), sketch.Quantile(0.99),
      static_cast<unsigned long long>(sketch.count()));
}

/// Worst scopes by a tail statistic: (p99 desc, key asc) so listings are
/// deterministic even under ties.
template <typename Map, typename KeyFormat, typename TailOf>
std::string WorstScopes(const Map& scopes, size_t top_k, const char* title,
                        KeyFormat format_key, TailOf tail_of) {
  if (top_k == 0 || scopes.empty()) return "";
  std::vector<std::pair<double, const typename Map::value_type*>> ranked;
  ranked.reserve(scopes.size());
  for (const auto& entry : scopes) {
    ranked.emplace_back(tail_of(entry.second), &entry);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  std::string out = StrPrintf("  %s:", title);
  const size_t n = std::min(top_k, ranked.size());
  for (size_t i = 0; i < n; ++i) {
    out += StrPrintf(" %s p99=%.6f n=%llu%s",
                     format_key(ranked[i].second->first).c_str(),
                     ranked[i].first,
                     static_cast<unsigned long long>(
                         ranked[i].second->second.observed),
                     i + 1 < n ? ";" : "");
  }
  out += "\n";
  return out;
}

}  // namespace

std::string SloMonitor::ReportText() const {
  std::string out = StrPrintf(
      "slo: observed=%llu failed=%llu sessions=%zu fingerprints=%zu\n",
      static_cast<unsigned long long>(global_.observed),
      static_cast<unsigned long long>(global_.failed), sessions_.size(),
      fingerprints_.size());
  out += QuantileLine("queue_wait", global_.queue_wait);
  out += QuantileLine("service", global_.service);
  out += QuantileLine("regret", global_.regret);
  out += StrPrintf(
      "  regret: positive=%llu worst_ratio=%.4f\n",
      static_cast<unsigned long long>(global_.regret_positive),
      global_.worst_regret_ratio);
  out += StrPrintf(
      "  breaches: queue_wait=%llu service=%llu regret=%llu\n",
      static_cast<unsigned long long>(global_.breach_queue_wait),
      static_cast<unsigned long long>(global_.breach_service),
      static_cast<unsigned long long>(global_.breach_regret));
  out += WorstScopes(
      sessions_, config_.report_top_k, "worst sessions (service p99)",
      [](const std::string& label) { return label; },
      [](const Scope& s) { return s.service.Quantile(0.99); });
  out += WorstScopes(
      fingerprints_, config_.report_top_k, "worst fingerprints (regret p99)",
      [](uint64_t fingerprint) {
        return StrPrintf("%016llx",
                         static_cast<unsigned long long>(fingerprint));
      },
      [](const Scope& s) { return s.regret.Quantile(0.99); });
  return out;
}

namespace {

std::string ScopeJson(const SloMonitor::Scope& s) {
  return StrPrintf(
      "{\"observed\":%llu,\"failed\":%llu,"
      "\"queue_wait\":{\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f},"
      "\"service\":{\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f},"
      "\"regret\":{\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f,"
      "\"positive\":%llu,\"worst_ratio\":%.4f},"
      "\"breaches\":{\"queue_wait\":%llu,\"service\":%llu,\"regret\":%llu}}",
      static_cast<unsigned long long>(s.observed),
      static_cast<unsigned long long>(s.failed), s.queue_wait.Quantile(0.5),
      s.queue_wait.Quantile(0.95), s.queue_wait.Quantile(0.99),
      s.service.Quantile(0.5), s.service.Quantile(0.95),
      s.service.Quantile(0.99), s.regret.Quantile(0.5),
      s.regret.Quantile(0.95), s.regret.Quantile(0.99),
      static_cast<unsigned long long>(s.regret_positive),
      s.worst_regret_ratio,
      static_cast<unsigned long long>(s.breach_queue_wait),
      static_cast<unsigned long long>(s.breach_service),
      static_cast<unsigned long long>(s.breach_regret));
}

}  // namespace

std::string SloMonitor::ToJson() const {
  std::string out = "{\"slo\":{\"global\":" + ScopeJson(global_);
  out += ",\"sessions\":{";
  bool first = true;
  for (const auto& [label, scope] : sessions_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(label) + "\":" + ScopeJson(scope);
  }
  out += "},\"fingerprints\":{";
  first = true;
  for (const auto& [fingerprint, scope] : fingerprints_) {
    if (!first) out += ",";
    first = false;
    out += StrPrintf("\"%016llx\":",
                     static_cast<unsigned long long>(fingerprint)) +
           ScopeJson(scope);
  }
  out += "}}}";
  return out;
}

void SloMonitor::PublishMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  const auto sync = [metrics](const char* name, uint64_t value) {
    Counter* counter = metrics->GetCounter(name);
    counter->Increment(value - counter->value());
  };
  sync("server.slo.observed", global_.observed);
  sync("server.slo.failed", global_.failed);
  sync("server.slo.breach.queue_wait", global_.breach_queue_wait);
  sync("server.slo.breach.service", global_.breach_service);
  sync("server.slo.breach.regret", global_.breach_regret);
  sync("optimizer.regret.positive", global_.regret_positive);
  metrics->GetGauge("server.slo.sessions_tracked")
      ->Set(static_cast<double>(sessions_.size()));
  metrics->GetGauge("server.slo.fingerprints_tracked")
      ->Set(static_cast<double>(fingerprints_.size()));
  metrics->GetGauge("optimizer.regret.worst_ratio")
      ->Set(global_.worst_regret_ratio);
  // Sketches rebuild from the monitor's state so republishing never
  // double-counts (same pattern as the quality monitor).
  const auto republish = [metrics, this](const char* name,
                                         const QuantileSketch& source) {
    QuantileSketch* sketch = metrics->GetSketch(name, config_.sketch_accuracy);
    sketch->Reset();
    sketch->Merge(source);
  };
  republish("server.slo.queue_wait_seconds", global_.queue_wait);
  republish("server.slo.service_seconds", global_.service);
  republish("optimizer.regret.seconds", global_.regret);
}

void SloMonitor::Reset() {
  global_ = Scope(config_.sketch_accuracy);
  sessions_.clear();
  fingerprints_.clear();
}

}  // namespace obs
}  // namespace robustqo
