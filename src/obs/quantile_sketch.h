// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Mergeable quantile sketch over logarithmic buckets (the DDSketch idea):
// a positive value v lands in bucket ceil(log(v)/log(gamma)), so every
// bucket spans a fixed relative width and Quantile() is accurate to a
// configurable relative error (default 1%). Negative values mirror into
// their own bucket map; zero, NaN and the infinities get dedicated
// counters so a single bad observation can never poison the sketch.
//
// The determinism contract (the reason this exists instead of a sampling
// or centroid sketch): the sketch state is a pure function of the
// *multiset* of observations — bucket counts are commutative integer
// adds, and no exact floating-point sum is kept (ApproxSum() is derived
// from the buckets in key order at render time). Per-worker sketches
// merged in any grouping therefore serialize byte-identically to the
// sequential sketch, which is what lets exporter output be pinned across
// RQO_THREADS=1/4/8.

#ifndef ROBUSTQO_OBS_QUANTILE_SKETCH_H_
#define ROBUSTQO_OBS_QUANTILE_SKETCH_H_

#include <cstdint>
#include <map>

namespace robustqo {
namespace obs {

class QuantileSketch {
 public:
  /// `relative_accuracy` bounds |Quantile(q) - exact| / exact for finite
  /// nonzero values; must be in (0, 1). The default 1% keeps the bucket
  /// maps small (~2300 buckets span 1e-12 .. 1e12).
  explicit QuantileSketch(double relative_accuracy = 0.01);

  void Observe(double value);

  /// Sums another sketch into this one. Both must have been built with the
  /// same relative accuracy. Commutative and associative.
  void Merge(const QuantileSketch& other);

  /// Total observations, including zero/NaN/±inf.
  uint64_t count() const { return count_; }
  /// NaN observations (excluded from quantiles and the sum).
  uint64_t nan_count() const { return nan_count_; }

  /// q-quantile (q in [0,1]) over the ranked observations, ordered
  /// -inf < negatives < 0 < positives < +inf; NaNs are excluded. Returns
  /// 0 when nothing rankable was observed. Infinite observations at the
  /// selected rank return ±HUGE_VAL.
  double Quantile(double q) const;

  /// Sum of finite observations, reconstructed from bucket representatives
  /// in key order — deterministic for any observation order or merge
  /// grouping, accurate to the sketch's relative error.
  double ApproxSum() const;

  double relative_accuracy() const { return relative_accuracy_; }

  /// Drops all observations, keeping the accuracy configuration.
  void Reset();

 private:
  double BucketValue(int32_t index) const;

  double relative_accuracy_;
  double gamma_;      // bucket growth factor (1+a)/(1-a)
  double log_gamma_;  // cached std::log(gamma_)
  std::map<int32_t, uint64_t> positive_;  // index -> count
  std::map<int32_t, uint64_t> negative_;  // index of |v| -> count
  uint64_t zero_count_ = 0;
  uint64_t nan_count_ = 0;
  uint64_t pos_inf_count_ = 0;
  uint64_t neg_inf_count_ = 0;
  uint64_t count_ = 0;
};

}  // namespace obs
}  // namespace robustqo

#endif  // ROBUSTQO_OBS_QUANTILE_SKETCH_H_
